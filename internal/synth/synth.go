// Package synth generates synthetic PIPE workloads: parameterized loops
// for sensitivity studies (e.g. the cache-size "knee" as a function of
// inner-loop size) and random — but always well-formed and halting —
// programs for differential testing of the fetch engines.
//
// Differential testing is the package's main verification role: any two
// fetch strategies must execute the identical dynamic instruction stream
// and produce identical memory contents for every program; only cycle
// counts may differ. Random programs explore corner cases (branch delay
// slots of every length, not-taken branches, queue pressure, mid-line
// branch targets) that hand-written kernels miss.
package synth

import (
	"fmt"
	"math/rand"

	"pipesim/internal/isa"
	"pipesim/internal/program"
)

// LoopSpec parameterizes one synthetic inner loop.
type LoopSpec struct {
	// BodyInstr is the inner-loop size in instructions (including the
	// counter decrement, PBR and delay slots). Minimum 6.
	BodyInstr int
	// Iterations is the trip count (1..32767).
	Iterations int
	// Loads and Stores per iteration (data traffic knobs).
	Loads  int
	Stores int
	// DelaySlots for the loop-closing PBR (0..7; capped by body size).
	DelaySlots int
}

// Validate reports errors in the specification.
func (s LoopSpec) Validate() error {
	if s.BodyInstr < 6 {
		return fmt.Errorf("synth: body of %d instructions too small (min 6)", s.BodyInstr)
	}
	if s.Iterations < 1 || s.Iterations > 0x7FFF {
		return fmt.Errorf("synth: iterations %d out of range", s.Iterations)
	}
	if s.DelaySlots < 0 || s.DelaySlots > isa.MaxDelaySlots {
		return fmt.Errorf("synth: %d delay slots out of range", s.DelaySlots)
	}
	minBody := 2 + s.DelaySlots + 2*s.Stores + s.Loads*2
	if s.BodyInstr < minBody {
		return fmt.Errorf("synth: body %d too small for %d loads, %d stores and %d slots (need %d)",
			s.BodyInstr, s.Loads, s.Stores, s.DelaySlots, minBody)
	}
	return nil
}

// Loop builds a standalone program with one synthetic inner loop of the
// exact requested size. Register use: r2 = moving pointer, r3 = value
// accumulator, r5 = counter.
func Loop(spec LoopSpec) (*program.Image, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	b := program.NewBuilder()
	b.LA(2, "data", 0)
	b.LI(3, 1)
	b.LI(5, int32(spec.Iterations))
	b.SetB(0, "loop", 0)
	b.Label("loop")
	emitted := 0
	budget := spec.BodyInstr - 2 - spec.DelaySlots // minus ADDI ctr + PBR
	// Loads followed by pops keep the LDQ balanced.
	for i := 0; i < spec.Loads && emitted+2 <= budget-2*spec.Stores; i++ {
		b.LD(2, int32(4*i))
		b.RI(isa.OpADDI, 3, isa.QueueReg, 0)
		emitted += 2
	}
	for i := 0; i < spec.Stores && emitted+2 <= budget; i++ {
		b.ST(2, int32(4*i))
		b.RI(isa.OpADDI, isa.QueueReg, 3, 0)
		emitted += 2
	}
	for emitted < budget {
		b.RI(isa.OpADDI, 4, 4, 1)
		emitted++
	}
	b.RI(isa.OpADDI, 5, 5, -1)
	b.PBR(isa.CondNE, 5, 0, uint8(spec.DelaySlots))
	slots := 0
	if spec.DelaySlots > 0 {
		b.RI(isa.OpADDI, 2, 2, 4) // advance pointer in the first slot
		slots++
	}
	for ; slots < spec.DelaySlots; slots++ {
		b.Nop()
	}
	b.Halt()
	b.DataLabel("data")
	b.Space(spec.Iterations + 64)
	return b.Link()
}

// RandomOptions bounds random program generation.
type RandomOptions struct {
	MaxBlocks     int // straight-line blocks (default 6)
	MaxBlockInstr int // instructions per block (default 12)
	MaxLoopIters  int // trip count bound for backward branches (default 6)
}

func (o RandomOptions) withDefaults() RandomOptions {
	if o.MaxBlocks == 0 {
		o.MaxBlocks = 6
	}
	if o.MaxBlockInstr == 0 {
		o.MaxBlockInstr = 12
	}
	if o.MaxLoopIters == 0 {
		o.MaxLoopIters = 6
	}
	return o
}

// Random generates a random, well-formed, halting program.
//
// Structure: a sequence of blocks. Each block is straight-line code over
// registers r0..r4 with optional loads/stores through r2 into a private
// data region; some blocks become counted loops closed by a PBR with a
// random delay-slot count (counter r5, branch register b1..b7 round-robin).
// R7 reads always follow an earlier LD or FPU result in the same block, so
// the LDQ stays balanced; HALT terminates the final block.
func Random(rng *rand.Rand, opts RandomOptions) (*program.Image, error) {
	o := opts.withDefaults()
	b := program.NewBuilder()
	b.LA(2, "data", 0)
	b.LI(3, int32(rng.Intn(100)))
	b.LI(4, 1)

	nBlocks := 1 + rng.Intn(o.MaxBlocks)
	breg := uint8(1)
	for blk := 0; blk < nBlocks; blk++ {
		loop := rng.Intn(2) == 0
		label := fmt.Sprintf("blk%d", blk)
		var iters int
		if loop {
			iters = 1 + rng.Intn(o.MaxLoopIters)
			b.LI(5, int32(iters))
			b.SetB(breg, label, 0)
		}
		b.Label(label)
		n := 1 + rng.Intn(o.MaxBlockInstr)
		pendingPops := 0
		// Scratch registers exclude r2 (the data pointer — clobbering it
		// would turn loads into format-dependent reads of the program's
		// own code) and the loop counter r5.
		scratch := []uint8{0, 1, 3, 4}
		pick := func() uint8 { return scratch[rng.Intn(len(scratch))] }
		for i := 0; i < n; i++ {
			switch rng.Intn(7) {
			case 0: // load + later pop
				b.LD(2, int32(4*rng.Intn(16)))
				pendingPops++
			case 1: // store pair
				b.ST(2, int32(4*rng.Intn(16)))
				b.RI(isa.OpADDI, isa.QueueReg, 3, 0)
			case 2, 3:
				b.R3(isa.OpADD, pick(), pick(), pick())
			case 4:
				b.RI(isa.OpADDI, pick(), pick(), int32(rng.Intn(64)-32))
			case 5:
				b.RI(isa.OpXORI, pick(), pick(), int32(rng.Intn(255)))
			case 6:
				b.Nop()
			}
			if pendingPops > 0 && rng.Intn(2) == 0 {
				b.RI(isa.OpADDI, pick(), isa.QueueReg, 0)
				pendingPops--
			}
		}
		for ; pendingPops > 0; pendingPops-- {
			b.RI(isa.OpADDI, pick(), isa.QueueReg, 0)
		}
		if loop {
			slots := rng.Intn(isa.MaxDelaySlots + 1)
			b.RI(isa.OpADDI, 5, 5, -1)
			b.PBR(isa.CondNE, 5, breg, uint8(slots))
			for s := 0; s < slots; s++ {
				b.RI(isa.OpADDI, 4, 4, 1)
			}
			breg++
			if breg >= isa.NumBranchRegs {
				breg = 1
			}
		}
	}
	b.Halt()
	b.DataLabel("data")
	b.Space(128)
	return b.Link()
}
