package synth_test

import (
	"math/rand"
	"testing"

	"pipesim/internal/core"
	"pipesim/internal/isa"
	"pipesim/internal/program"
	"pipesim/internal/synth"
	"pipesim/internal/trace"
)

func TestLoopSpecValidation(t *testing.T) {
	bad := []synth.LoopSpec{
		{BodyInstr: 3, Iterations: 10},
		{BodyInstr: 20, Iterations: 0},
		{BodyInstr: 20, Iterations: 40000},
		{BodyInstr: 20, Iterations: 10, DelaySlots: 9},
		{BodyInstr: 6, Iterations: 10, Loads: 5, Stores: 5},
	}
	for _, s := range bad {
		if _, err := synth.Loop(s); err == nil {
			t.Errorf("Loop(%+v) accepted", s)
		}
	}
}

func TestLoopExactBodySize(t *testing.T) {
	for _, bodyInstr := range []int{9, 14, 29, 64, 100} {
		spec := synth.LoopSpec{BodyInstr: bodyInstr, Iterations: 5, Loads: 1, Stores: 1, DelaySlots: 3}
		img, err := synth.Loop(spec)
		if err != nil {
			t.Fatal(err)
		}
		start, ok := img.Lookup("loop")
		if !ok {
			t.Fatal("no loop label")
		}
		// The loop body runs from the label to the HALT.
		haltAt := uint32(0)
		for i, w := range img.Text {
			if isa.Decode(w).Op == isa.OpHALT {
				haltAt = program.TextBase + uint32(4*i)
				break
			}
		}
		if got := int(haltAt-start) / 4; got != bodyInstr {
			t.Errorf("body = %d instructions, want %d", got, bodyInstr)
		}
		// And it executes: iterations * body + prologue + halt.
		cfg := core.DefaultConfig()
		sim, err := core.New(cfg, img)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		prologue := int(start-program.TextBase) / 4
		want := uint64(prologue + 5*bodyInstr + 1)
		if st.CPU.Instructions != want {
			t.Errorf("body %d: retired %d, want %d", bodyInstr, st.CPU.Instructions, want)
		}
	}
}

// runWithTrace executes img under cfg recording the retired PC stream.
func runWithTrace(t *testing.T, cfg core.Config, img *program.Image) ([]uint32, []uint32) {
	t.Helper()
	sim, err := core.New(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := trace.NewRing(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetRetireTracer(ring)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	var pcs []uint32
	for _, e := range ring.Events() {
		pcs = append(pcs, e.PC)
	}
	// Probe a slice of the data region for memory equivalence.
	base, _ := img.Lookup("data")
	var mem []uint32
	for i := 0; i < 64; i++ {
		mem = append(mem, sim.ReadWord(base+uint32(4*i)))
	}
	return pcs, mem
}

// TestDifferentialEnginesOnRandomPrograms is the heavyweight correctness
// test: every fetch strategy must execute the same dynamic stream and leave
// identical memory, on dozens of random programs across random machine
// configurations.
func TestDifferentialEnginesOnRandomPrograms(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		img, err := synth.Random(rng, synth.RandomOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Random machine parameters (shared across engines).
		mk := func(strat core.FetchStrategy) core.Config {
			cfg := core.DefaultConfig()
			cfg.Fetch = strat
			cfg.CacheBytes = []int{32, 64, 128, 256}[rng.Intn(4)]
			cfg.LineBytes = []int{8, 16}[rng.Intn(2)]
			cfg.IQBytes = cfg.LineBytes
			cfg.IQBBytes = cfg.LineBytes
			cfg.Mem.AccessTime = []int{1, 2, 6}[rng.Intn(3)]
			cfg.Mem.BusWidthBytes = []int{4, 8}[rng.Intn(2)]
			cfg.Mem.Pipelined = rng.Intn(2) == 0
			cfg.TIBEntries = 2
			cfg.TIBLineBytes = 16
			return cfg
		}
		base := mk(core.FetchPIPE) // fix parameters for all three engines
		refPCs, refMem := runWithTrace(t, base, img)
		for _, strat := range []core.FetchStrategy{core.FetchConventional, core.FetchTIB} {
			cfg := base
			cfg.Fetch = strat
			pcs, mem := runWithTrace(t, cfg, img)
			if len(pcs) != len(refPCs) {
				t.Fatalf("seed %d %v: stream length %d != %d", seed, strat, len(pcs), len(refPCs))
			}
			for i := range pcs {
				if pcs[i] != refPCs[i] {
					t.Fatalf("seed %d %v: stream diverges at %d (%#x vs %#x)", seed, strat, i, pcs[i], refPCs[i])
				}
			}
			for i := range mem {
				if mem[i] != refMem[i] {
					t.Fatalf("seed %d %v: memory word %d differs (%#x vs %#x)", seed, strat, i, mem[i], refMem[i])
				}
			}
		}
	}
}

// TestDifferentialTruePrefetchSemantics: the original-chip fetch policy may
// only change timing, never the executed stream.
func TestDifferentialTruePrefetchSemantics(t *testing.T) {
	for seed := 100; seed < 115; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		img, err := synth.Random(rng, synth.RandomOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Mem.AccessTime = 6
		cfg.CacheBytes = 64
		on, onMem := runWithTrace(t, cfg, img)
		cfg.TruePrefetch = false
		off, offMem := runWithTrace(t, cfg, img)
		if len(on) != len(off) {
			t.Fatalf("seed %d: stream lengths differ %d vs %d", seed, len(on), len(off))
		}
		for i := range on {
			if on[i] != off[i] {
				t.Fatalf("seed %d: stream diverges at %d", seed, i)
			}
		}
		for i := range onMem {
			if onMem[i] != offMem[i] {
				t.Fatalf("seed %d: memory differs at %d", seed, i)
			}
		}
	}
}

// TestDifferentialDeepPrefetchSemantics: deeper IQB lookahead may only
// change timing, never the executed stream or memory contents.
func TestDifferentialDeepPrefetchSemantics(t *testing.T) {
	for seed := 400; seed < 415; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		img, err := synth.Random(rng, synth.RandomOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Mem.AccessTime = 6
		cfg.CacheBytes = 64
		cfg.IQBBytes = 32
		shallow, memS := runWithTrace(t, cfg, img)
		cfg.DeepPrefetch = true
		deep, memD := runWithTrace(t, cfg, img)
		if len(shallow) != len(deep) {
			t.Fatalf("seed %d: stream lengths differ", seed)
		}
		for i := range shallow {
			if shallow[i] != deep[i] {
				t.Fatalf("seed %d: stream diverges at %d", seed, i)
			}
		}
		for i := range memS {
			if memS[i] != memD[i] {
				t.Fatalf("seed %d: deep prefetch changed memory word %d", seed, i)
			}
		}
	}
}

// TestDifferentialDCacheSemantics: the data cache may only change timing.
func TestDifferentialDCacheSemantics(t *testing.T) {
	for seed := 200; seed < 215; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		img, err := synth.Random(rng, synth.RandomOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Mem.AccessTime = 3
		without, memW := runWithTrace(t, cfg, img)
		cfg.CPU.DCacheBytes = 64
		with, memD := runWithTrace(t, cfg, img)
		if len(without) != len(with) {
			t.Fatalf("seed %d: stream lengths differ", seed)
		}
		for i := range memW {
			if memW[i] != memD[i] {
				t.Fatalf("seed %d: dcache changed memory word %d", seed, i)
			}
		}
	}
}

// TestDifferentialNativeFormatSemantics: the native 16/32-bit encoding may
// only change timing — the executed instruction sequence and final memory
// must match the fixed format exactly. PCs differ (the layouts differ), so
// streams are compared by length and by final memory.
func TestDifferentialNativeFormatSemantics(t *testing.T) {
	for seed := 500; seed < 525; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		img, err := synth.Random(rng, synth.RandomOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []core.FetchStrategy{core.FetchPIPE, core.FetchConventional} {
			cfg := core.DefaultConfig()
			cfg.Fetch = strat
			cfg.Mem.AccessTime = 6
			cfg.CacheBytes = 64
			fixedStream, fixedMem := runWithTrace(t, cfg, img)
			cfg.NativeFormat = true
			nativeStream, nativeMem := runWithTrace(t, cfg, img)
			if len(fixedStream) != len(nativeStream) {
				t.Fatalf("seed %d %v: stream lengths differ: fixed %d, native %d",
					seed, strat, len(fixedStream), len(nativeStream))
			}
			for i := range fixedMem {
				if fixedMem[i] != nativeMem[i] {
					t.Fatalf("seed %d %v: native format changed memory word %d", seed, strat, i)
				}
			}
		}
	}
}

func TestRandomProgramsAlwaysHalt(t *testing.T) {
	for seed := 300; seed < 340; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		img, err := synth.Random(rng, synth.RandomOptions{MaxBlocks: 10, MaxBlockInstr: 20})
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.MaxCycles = 2_000_000
		sim, err := core.New(cfg, img)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
