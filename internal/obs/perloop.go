package obs

import "pipesim/internal/stats"

// LoopStat aggregates everything attributed to one Livermore loop (or to
// the region outside every configured range: Loop 0, the program prologue
// and trailing filler).
type LoopStat struct {
	Loop         int    // loop number (1..14); 0 = outside every range
	Name         string // kernel name, empty for loop 0
	Cycles       uint64 // cycles spent while this loop was the current one
	Instructions uint64 // instructions retired in the loop's PC range
	CacheHits    uint64 // fetch-engine lookups satisfied on chip
	CacheMisses  uint64 // fetch-engine lookups that went off chip
	BranchFlush  uint64 // taken-branch flushes
	OffChipWords uint64 // 32-bit words the input bus delivered during the loop

	// MissCompulsory/MissCapacity/MissConflict split CacheMisses by the 3C
	// classification carried on KindCacheMiss events. All zero when the run
	// did not enable cache introspection; otherwise they sum to CacheMisses.
	MissCompulsory uint64
	MissCapacity   uint64
	MissConflict   uint64

	// Buckets is the loop's share of the run's cycle attribution, indexed
	// by stats.CycleBucket. Buckets sum to Cycles.
	Buckets [stats.NumCycleBuckets]uint64
}

// StallCycles returns the loop's non-issuing cycles (everything but
// CycleIssue).
func (s *LoopStat) StallCycles() uint64 {
	var sum uint64
	for b, n := range s.Buckets {
		if stats.CycleBucket(b) != stats.CycleIssue {
			sum += n
		}
	}
	return sum
}

// PerLoop folds the event stream into per-Livermore-loop statistics — the
// Table-I-style view the paper's explanations ask for: which loops fit the
// cache, which starve, which saturate the bus. The current loop follows the
// KindLoopEnter events the simulator core emits from the retirement stream;
// cycles, misses, stalls and bus words land on whichever loop is current
// when they happen, so the per-loop cycle counts sum exactly to the run's
// total cycles.
type PerLoop struct {
	stats   []LoopStat  // index 0 = outside any range, 1.. = loops
	byLoop  map[int]int // loop number -> stats index
	current int         // stats index receiving events
}

// NewPerLoop builds a collector for the given loop ranges (the ranges
// themselves live in the core's transition watcher; the collector only
// needs the numbering).
func NewPerLoop(ranges []LoopRange) *PerLoop {
	p := &PerLoop{
		stats:  make([]LoopStat, 1, len(ranges)+1),
		byLoop: make(map[int]int, len(ranges)),
	}
	p.stats[0] = LoopStat{Loop: 0, Name: "outside"}
	for _, r := range ranges {
		p.byLoop[r.Loop] = len(p.stats)
		p.stats = append(p.stats, LoopStat{Loop: r.Loop, Name: r.Name})
	}
	return p
}

// Event consumes one simulator event.
func (p *PerLoop) Event(e Event) {
	switch e.Kind {
	case KindLoopEnter:
		idx, ok := p.byLoop[int(e.Arg)]
		if !ok {
			idx = 0
		}
		p.current = idx
		return
	case KindLoopExit:
		p.current = 0
		return
	}
	s := &p.stats[p.current]
	switch e.Kind {
	case KindCycle:
		s.Cycles++
		if int(e.Arg) < len(s.Buckets) {
			s.Buckets[e.Arg]++
		}
	case KindRetire:
		s.Instructions++
	case KindCacheHit:
		s.CacheHits++
	case KindCacheMiss:
		s.CacheMisses++
		switch stats.MissClass(e.Arg) {
		case stats.MissCompulsory:
			s.MissCompulsory++
		case stats.MissCapacity:
			s.MissCapacity++
		case stats.MissConflict:
			s.MissConflict++
		}
	case KindBranchFlush:
		s.BranchFlush++
	case KindBusBusy:
		s.OffChipWords += e.Value
	}
}

// Stats returns the collected per-loop statistics: index 0 is the region
// outside every range (prologue, trailing filler, drain after the last
// loop exit), followed by the configured loops in range order.
func (p *PerLoop) Stats() []LoopStat {
	out := make([]LoopStat, len(p.stats))
	copy(out, p.stats)
	return out
}

// TotalCycles sums the per-loop cycle counts — by construction equal to the
// run's total cycles.
func (p *PerLoop) TotalCycles() uint64 {
	var sum uint64
	for i := range p.stats {
		sum += p.stats[i].Cycles
	}
	return sum
}
