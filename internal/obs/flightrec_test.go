package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestFlightRecorderRetainsMostRecent(t *testing.T) {
	var clock uint64
	r := NewFlightRecorder(4, &clock)
	if r.Depth() != 4 {
		t.Fatalf("Depth = %d, want 4", r.Depth())
	}
	for i := 0; i < 10; i++ {
		clock = uint64(i)
		r.Record(KindRetire, uint32(i), 0, 0)
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d, want 10", r.Total())
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("Events retained %d, want 4", len(ev))
	}
	// Oldest first: the ring must hold exactly the last four records.
	for i, e := range ev {
		if want := uint64(6 + i); e.Cycle != want {
			t.Errorf("event %d: cycle %d, want %d", i, e.Cycle, want)
		}
	}
}

func TestFlightRecorderPartialFill(t *testing.T) {
	var clock uint64 = 7
	r := NewFlightRecorder(8, &clock)
	r.Record(KindCacheMiss, 0x40, 0, 0)
	r.Record(KindCacheHit, 0x44, 0, 0)
	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("Events retained %d, want 2", len(ev))
	}
	if ev[0].Kind != KindCacheMiss || ev[1].Kind != KindCacheHit {
		t.Errorf("order wrong: %v then %v", ev[0].Kind, ev[1].Kind)
	}
	if ev[0].Cycle != 7 {
		t.Errorf("cycle stamp = %d, want the clock value 7", ev[0].Cycle)
	}
}

func TestFlightRecorderDepthRounding(t *testing.T) {
	var clock uint64
	if d := NewFlightRecorder(5, &clock).Depth(); d != 8 {
		t.Errorf("depth 5 rounded to %d, want 8", d)
	}
	if d := NewFlightRecorder(0, &clock).Depth(); d != DefaultFlightRecDepth {
		t.Errorf("depth 0 = %d, want the default %d", d, DefaultFlightRecDepth)
	}
}

func TestNilFlightRecorderReads(t *testing.T) {
	var r *FlightRecorder
	if r.Events() != nil || r.Total() != 0 || r.Depth() != 0 {
		t.Error("nil recorder read-side methods must be zero-valued no-ops")
	}
}

func TestEventStringFormats(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Kind: KindRetire, Cycle: 12, Addr: 0x40}, "[12] retire pc=0x00040"},
		{Event{Kind: KindCacheMiss, Cycle: 3, Addr: 0x100}, "[3] cache-miss addr=0x00100"},
		{Event{Kind: KindBusBusy, Cycle: 9, Addr: 0x80, Value: 2}, "[9] bus-busy addr=0x00080 words=2"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestRecordsJSONRendering(t *testing.T) {
	events := []Event{
		{Kind: KindRetire, Cycle: 5, Addr: 0x44},
		{Kind: KindBusBusy, Cycle: 6, Addr: 0x80, Value: 4},
	}
	recs := Records(events)
	if len(recs) != 2 {
		t.Fatalf("Records = %d entries", len(recs))
	}
	if recs[0].Kind != "retire" || recs[0].Addr != "0x00044" {
		t.Errorf("retire record = %+v", recs[0])
	}
	if recs[1].Value != 4 {
		t.Errorf("bus-busy record lost the word count: %+v", recs[1])
	}
	if Records(nil) != nil {
		t.Error("Records(nil) must be nil for omitempty")
	}
	if _, err := json.Marshal(recs); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

func TestWriteFlightTraceIsChromeJSON(t *testing.T) {
	events := []Event{
		{Kind: KindFetchIssue, Cycle: 1, Addr: 0x40},
		{Kind: KindCacheMiss, Cycle: 1, Addr: 0x40},
		{Kind: KindMemAccept, Cycle: 2, Addr: 0x40},
		{Kind: KindFetchComplete, Cycle: 8, Addr: 0x40},
		{Kind: KindRetire, Cycle: 9, Addr: 0x40},
	}
	var buf bytes.Buffer
	if err := WriteFlightTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid Chrome-trace JSON: %v\n%s", err, buf.String())
	}
	// The replay must render the post-mortem-only kinds (cache miss, memory
	// accept, retire) that the live timeline does not emit as instants.
	for _, want := range []string{"cache-miss", "mem-accept", "retire"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("flight trace missing %q events:\n%s", want, buf.String())
		}
	}
}
