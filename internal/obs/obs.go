// Package obs is the cycle-attribution observability layer: a typed event
// stream emitted by the memory system, the fetch engines, the CPU and the
// simulator core, consumed by pluggable probes.
//
// Every headline claim of the paper is an *explanation* of a cycle count —
// the knee at 128 B exists because half the Livermore loops fit in the
// cache, bus width matters below the knee because small caches are
// fetch-starved. The probe layer turns those explanations into
// measurements: every simulated cycle is classified into exactly one
// attribution bucket (the sum of buckets equals the run's total cycles),
// every fetch, prefetch, flush and bus transfer is an event, and
// higher-level collectors fold the stream into per-Livermore-loop
// statistics (PerLoop) or a Chrome-trace timeline (Timeline).
//
// The layer is strictly pay-for-what-you-use: with no probe attached the
// instrumented components perform only a nil check per event site, which
// disappears in the noise of a simulation cycle (see BenchmarkProbeOverhead
// at the repository root).
package obs

import "pipesim/internal/stats"

// Kind enumerates the typed events emitted by the simulator.
type Kind uint8

// Event kinds. Addr, Arg and Value carry kind-specific payloads, documented
// per kind.
const (
	// KindCycle is emitted exactly once per simulated cycle by the CPU's
	// issue stage; Arg is the stats.CycleBucket the cycle was attributed
	// to. Summing KindCycle events reproduces the run's total cycle count.
	KindCycle Kind = iota
	// KindCacheHit: the fetch engine satisfied a lookup on chip. Addr is
	// the requested address.
	KindCacheHit
	// KindCacheMiss: a lookup went (or wanted to go) off chip. Addr is the
	// requested address. When cache introspection is enabled Arg carries
	// the stats.MissClass (compulsory/capacity/conflict); it is
	// MissUnclassified (zero) otherwise, matching the pre-introspection
	// event layout.
	KindCacheMiss
	// KindFetchIssue / KindFetchComplete bracket a demand instruction
	// fetch. Addr is the line (or chunk) address on both events, so a
	// collector pairs them by matching the stamped cycles; an issue with no
	// complete was canceled at the memory interface.
	KindFetchIssue
	KindFetchComplete
	// KindPrefetchIssue / KindPrefetchComplete bracket an instruction
	// prefetch, with the same payload convention as demand fetches.
	KindPrefetchIssue
	KindPrefetchComplete
	// KindPrefetchBlocked: the engine wanted to prefetch but the
	// execution guarantee (no true prefetch) forbade it. Addr is the
	// blocked address.
	KindPrefetchBlocked
	// KindBranchFlush: a resolved taken branch discarded queued words.
	// Addr is the branch target.
	KindBranchFlush
	// KindQueueDepth samples a hardware queue's occupancy after it
	// changed. Arg is the Queue identifier, Value the new occupancy (in
	// entries).
	KindQueueDepth
	// KindBusBusy: the input bus carried data this cycle. Value is the
	// number of 32-bit words delivered.
	KindBusBusy
	// KindMemAccept: the memory interface accepted a request. Arg is the
	// stats.ReqKind, Addr the request address.
	KindMemAccept
	// KindRetire: an instruction retired. Addr is its PC.
	KindRetire
	// KindLoopEnter: the retirement stream entered a new Livermore loop's
	// PC range. Arg is the loop number (1..14; 0 is the region outside
	// any range). Emitted only when loop ranges are configured.
	KindLoopEnter
	// KindLoopExit: the retirement stream left a loop's PC range; Arg is
	// the loop number being left. Always paired before the next
	// KindLoopEnter.
	KindLoopExit
	// KindCacheEvict: the cache array displaced a resident line for a new
	// tag. Addr is the evicted line address, Arg the set (frame) index,
	// Value 1 when the line was dead (never referenced after its fill).
	// Emitted only when cache introspection is enabled.
	KindCacheEvict
	numKinds
)

var kindNames = [...]string{
	"cycle", "cache-hit", "cache-miss", "fetch-issue", "fetch-complete",
	"prefetch-issue", "prefetch-complete", "prefetch-blocked", "branch-flush",
	"queue-depth", "bus-busy", "mem-accept", "retire", "loop-enter", "loop-exit",
	"cache-evict",
}

// String names the event kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(?)"
}

// Queue identifies a hardware queue in KindQueueDepth events.
type Queue uint8

// Queue identifiers.
const (
	QueueIQ  Queue = iota // PIPE Instruction Queue
	QueueIQB              // PIPE Instruction Queue Buffer
	QueueTIB              // TIB sequential fetch buffer
	QueueLAQ              // Load Address Queue
	QueueLDQ              // Load Data Queue
	QueueSAQ              // Store Address Queue
	QueueSDQ              // Store Data Queue
	NumQueues
)

var queueNames = [...]string{"IQ", "IQB", "TIBBuf", "LAQ", "LDQ", "SAQ", "SDQ"}

// String names the queue.
func (q Queue) String() string {
	if int(q) < len(queueNames) {
		return queueNames[q]
	}
	return "queue(?)"
}

// Event is one typed occurrence in a simulation. Cycle is stamped by the
// simulator core; emitting components leave it zero.
type Event struct {
	Kind  Kind
	Cycle uint64
	Addr  uint32 // PC / line address / request address (kind-specific)
	Arg   uint32 // bucket / queue / request kind / loop number
	Value uint64 // occupancy / words / issue cycle
}

// Probe consumes the event stream. Implementations must not mutate
// simulator state; they are called synchronously from inside the simulated
// cycle.
type Probe interface {
	Event(e Event)
}

// ProbeFunc adapts a plain function to the Probe interface.
type ProbeFunc func(e Event)

// Event calls the function.
func (f ProbeFunc) Event(e Event) { f(e) }

// Multi fans one event stream out to several probes.
type Multi []Probe

// Event forwards the event to every probe.
func (m Multi) Event(e Event) {
	for _, p := range m {
		p.Event(e)
	}
}

// Stamper fills in Event.Cycle from a shared clock before forwarding to the
// target probe. The simulator core wraps every attached probe in one so
// that emitting components do not need their own cycle counters.
type Stamper struct {
	Clock  *uint64
	Target Probe
}

// Event stamps and forwards.
func (s *Stamper) Event(e Event) {
	e.Cycle = *s.Clock
	s.Target.Event(e)
}

// LoopRange maps one Livermore loop to its PC range [Start, End) in the
// program image. The simulator core watches the retirement stream and
// emits KindLoopEnter/KindLoopExit events at range transitions.
type LoopRange struct {
	Loop  int // 1-based loop number
	Name  string
	Start uint32 // first PC of the loop's code (prologue included)
	End   uint32 // first PC past the loop's code
}

// Counter is a trivial probe counting events per kind, for tests and quick
// diagnostics.
type Counter struct {
	Counts [numKinds]uint64
}

// Event tallies the event.
func (c *Counter) Event(e Event) {
	if int(e.Kind) < len(c.Counts) {
		c.Counts[e.Kind]++
	}
}

// CycleSum returns the number of KindCycle events attributed to the given
// bucket across all recorded cycles — a convenience for invariant checks.
func (c *Counter) CycleSum() uint64 { return c.Counts[KindCycle] }

// Buckets re-exports the attribution bucket count for collectors that
// aggregate per bucket without importing stats directly.
const Buckets = int(stats.NumCycleBuckets)
