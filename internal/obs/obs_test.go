package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"pipesim/internal/stats"
)

type record struct {
	events []Event
}

func (r *record) Event(e Event) { r.events = append(r.events, e) }

func TestStamperFillsCycle(t *testing.T) {
	var clock uint64
	rec := &record{}
	s := &Stamper{Clock: &clock, Target: rec}
	clock = 7
	s.Event(Event{Kind: KindRetire, Addr: 0x100})
	clock = 9
	s.Event(Event{Kind: KindRetire, Addr: 0x104, Cycle: 999}) // emitter-set cycles are overwritten
	if len(rec.events) != 2 {
		t.Fatalf("forwarded %d events, want 2", len(rec.events))
	}
	if rec.events[0].Cycle != 7 || rec.events[1].Cycle != 9 {
		t.Errorf("stamped cycles %d, %d; want 7, 9", rec.events[0].Cycle, rec.events[1].Cycle)
	}
	if rec.events[0].Addr != 0x100 {
		t.Errorf("payload not preserved: Addr = %#x", rec.events[0].Addr)
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := &record{}, &record{}
	m := Multi{a, b}
	m.Event(Event{Kind: KindCacheHit})
	m.Event(Event{Kind: KindCacheMiss})
	if len(a.events) != 2 || len(b.events) != 2 {
		t.Errorf("probes received %d and %d events, want 2 each", len(a.events), len(b.events))
	}
}

func TestCounter(t *testing.T) {
	c := &Counter{}
	for i := 0; i < 3; i++ {
		c.Event(Event{Kind: KindCycle, Arg: uint32(stats.CycleIssue)})
	}
	c.Event(Event{Kind: KindCacheMiss})
	if c.CycleSum() != 3 {
		t.Errorf("CycleSum = %d, want 3", c.CycleSum())
	}
	if c.Counts[KindCacheMiss] != 1 || c.Counts[KindCacheHit] != 0 {
		t.Errorf("counts = %v", c.Counts)
	}
}

func TestKindAndQueueNames(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "kind(?)" || k.String() == "" {
			t.Errorf("Kind %d has no name", k)
		}
	}
	if got := Kind(200).String(); got != "kind(?)" {
		t.Errorf("out-of-range kind name = %q", got)
	}
	for q := Queue(0); q < NumQueues; q++ {
		if q.String() == "queue(?)" || q.String() == "" {
			t.Errorf("Queue %d has no name", q)
		}
	}
	if got := Queue(200).String(); got != "queue(?)" {
		t.Errorf("out-of-range queue name = %q", got)
	}
}

// TestPerLoopAttribution drives the collector with a synthetic stream:
// two loops with an outside region between them, checking every event
// lands on the loop that was current when it happened.
func TestPerLoopAttribution(t *testing.T) {
	ranges := []LoopRange{
		{Loop: 1, Name: "hydro", Start: 0x100, End: 0x200},
		{Loop: 2, Name: "iccg", Start: 0x200, End: 0x300},
	}
	p := NewPerLoop(ranges)

	cycle := func(bucket stats.CycleBucket) Event {
		return Event{Kind: KindCycle, Arg: uint32(bucket)}
	}
	stream := []Event{
		cycle(stats.CycleOther), // prologue: outside
		{Kind: KindLoopEnter, Arg: 1},
		{Kind: KindRetire, Addr: 0x100},
		cycle(stats.CycleIssue),
		{Kind: KindCacheMiss, Addr: 0x120},
		cycle(stats.CycleFetchStarved),
		{Kind: KindBusBusy, Value: 4},
		{Kind: KindRetire, Addr: 0x104},
		{Kind: KindLoopExit, Arg: 1},
		cycle(stats.CycleDrain), // between loops: outside
		{Kind: KindLoopEnter, Arg: 2},
		{Kind: KindRetire, Addr: 0x200},
		cycle(stats.CycleIssue),
		{Kind: KindBranchFlush, Addr: 0x200},
		{Kind: KindCacheHit, Addr: 0x204},
		{Kind: KindLoopExit, Arg: 2},
	}
	for _, e := range stream {
		p.Event(e)
	}

	got := p.Stats()
	if len(got) != 3 {
		t.Fatalf("Stats returned %d entries, want 3 (outside + 2 loops)", len(got))
	}
	outside, hydro, iccg := got[0], got[1], got[2]
	if outside.Cycles != 2 || outside.Instructions != 0 {
		t.Errorf("outside = %+v, want 2 cycles, 0 instructions", outside)
	}
	if hydro.Cycles != 2 || hydro.Instructions != 2 || hydro.CacheMisses != 1 || hydro.OffChipWords != 4 {
		t.Errorf("hydro = %+v, want 2 cycles, 2 instructions, 1 miss, 4 words", hydro)
	}
	if hydro.Buckets[stats.CycleIssue] != 1 || hydro.Buckets[stats.CycleFetchStarved] != 1 {
		t.Errorf("hydro buckets = %v", hydro.Buckets)
	}
	if hydro.StallCycles() != 1 {
		t.Errorf("hydro StallCycles = %d, want 1", hydro.StallCycles())
	}
	if iccg.Cycles != 1 || iccg.Instructions != 1 || iccg.BranchFlush != 1 || iccg.CacheHits != 1 {
		t.Errorf("iccg = %+v, want 1 cycle, 1 instruction, 1 flush, 1 hit", iccg)
	}
	if p.TotalCycles() != 5 {
		t.Errorf("TotalCycles = %d, want 5", p.TotalCycles())
	}
}

func TestPerLoopUnknownLoopFallsOutside(t *testing.T) {
	p := NewPerLoop(nil)
	p.Event(Event{Kind: KindLoopEnter, Arg: 42}) // not configured
	p.Event(Event{Kind: KindCycle, Arg: uint32(stats.CycleIssue)})
	got := p.Stats()
	if len(got) != 1 || got[0].Cycles != 1 {
		t.Errorf("Stats = %+v, want one outside entry with 1 cycle", got)
	}
}

// decodeTrace unmarshals a timeline's output for inspection.
func decodeTrace(t *testing.T, tl *Timeline) chromeTrace {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var trace chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	return trace
}

// find returns the trace events with the given name and phase.
func find(trace chromeTrace, name, ph string) []chromeEvent {
	var out []chromeEvent
	for _, e := range trace.TraceEvents {
		if e.Name == name && e.Ph == ph {
			out = append(out, e)
		}
	}
	return out
}

// TestTimelineCoalescesBuckets checks runs of same-bucket cycles become one
// span and that WriteTo closes the open span one cycle past the last event.
func TestTimelineCoalescesBuckets(t *testing.T) {
	tl := NewTimeline()
	issue := uint32(stats.CycleIssue)
	starved := uint32(stats.CycleFetchStarved)
	for c, b := range []uint32{issue, issue, issue, starved, starved, issue} {
		tl.Event(Event{Kind: KindCycle, Cycle: uint64(c + 1), Arg: b})
	}
	trace := decodeTrace(t, tl)

	issueSpans := find(trace, stats.CycleIssue.String(), "X")
	starvedSpans := find(trace, stats.CycleFetchStarved.String(), "X")
	if len(issueSpans) != 2 || len(starvedSpans) != 1 {
		t.Fatalf("got %d issue and %d starved spans, want 2 and 1",
			len(issueSpans), len(starvedSpans))
	}
	if issueSpans[0].Ts != 1 || issueSpans[0].Dur != 3 {
		t.Errorf("first issue span = ts %d dur %d, want ts 1 dur 3", issueSpans[0].Ts, issueSpans[0].Dur)
	}
	if starvedSpans[0].Ts != 4 || starvedSpans[0].Dur != 2 {
		t.Errorf("starved span = ts %d dur %d, want ts 4 dur 2", starvedSpans[0].Ts, starvedSpans[0].Dur)
	}
	// The trailing issue cycle (cycle 6) is closed by WriteTo at last+1.
	if issueSpans[1].Ts != 6 || issueSpans[1].Dur != 1 {
		t.Errorf("final issue span = ts %d dur %d, want ts 6 dur 1", issueSpans[1].Ts, issueSpans[1].Dur)
	}
	var total uint64
	for _, s := range append(issueSpans, starvedSpans...) {
		total += s.Dur
	}
	if total != 6 {
		t.Errorf("pipeline spans cover %d cycles, want 6", total)
	}
}

// TestTimelineFetchPairing checks issue/complete pairing, including a
// canceled request (second issue before any complete drops the first).
func TestTimelineFetchPairing(t *testing.T) {
	tl := NewTimeline()
	tl.Event(Event{Kind: KindFetchIssue, Cycle: 10, Addr: 0x40})
	tl.Event(Event{Kind: KindFetchIssue, Cycle: 12, Addr: 0x80}) // 0x40 canceled
	tl.Event(Event{Kind: KindFetchComplete, Cycle: 15, Addr: 0x80})
	tl.Event(Event{Kind: KindPrefetchIssue, Cycle: 20, Addr: 0xc0})
	tl.Event(Event{Kind: KindPrefetchComplete, Cycle: 23, Addr: 0xc0})
	trace := decodeTrace(t, tl)

	fetches := find(trace, "demand-fetch", "X")
	if len(fetches) != 1 {
		t.Fatalf("got %d demand-fetch spans, want 1 (canceled issue dropped)", len(fetches))
	}
	if fetches[0].Ts != 12 || fetches[0].Dur != 4 {
		t.Errorf("demand-fetch span = ts %d dur %d, want ts 12 dur 4 (issue..complete inclusive)",
			fetches[0].Ts, fetches[0].Dur)
	}
	if addr := fetches[0].Args["addr"]; addr != "0x00080" {
		t.Errorf("demand-fetch addr = %v, want 0x00080", addr)
	}
	pre := find(trace, "prefetch", "X")
	if len(pre) != 1 || pre[0].Ts != 20 || pre[0].Dur != 4 {
		t.Errorf("prefetch spans = %+v, want one at ts 20 dur 4", pre)
	}
}

// TestTimelineBusCounter checks idle gaps get explicit zero samples so the
// counter track renders as steps, and a trailing zero closes the series.
func TestTimelineBusCounter(t *testing.T) {
	tl := NewTimeline()
	tl.Event(Event{Kind: KindBusBusy, Cycle: 5, Value: 4})
	tl.Event(Event{Kind: KindBusBusy, Cycle: 6, Value: 4}) // adjacent: no gap sample
	tl.Event(Event{Kind: KindBusBusy, Cycle: 10, Value: 2})
	trace := decodeTrace(t, tl)

	samples := find(trace, "input-bus", "C")
	if len(samples) != 5 {
		t.Fatalf("got %d bus samples, want 5 (3 busy + gap zero + trailing zero)", len(samples))
	}
	type sample struct {
		ts    uint64
		words float64
	}
	want := []sample{{5, 4}, {6, 4}, {7, 0}, {10, 2}, {11, 0}}
	for i, s := range samples {
		if s.Ts != want[i].ts || s.Args["words"] != want[i].words {
			t.Errorf("sample %d = ts %d words %v, want ts %d words %v",
				i, s.Ts, s.Args["words"], want[i].ts, want[i].words)
		}
	}
}

func TestTimelineLoopSpans(t *testing.T) {
	tl := NewTimeline()
	tl.Event(Event{Kind: KindLoopEnter, Cycle: 100, Arg: 1})
	tl.Event(Event{Kind: KindLoopExit, Cycle: 250, Arg: 1})
	tl.Event(Event{Kind: KindLoopEnter, Cycle: 300, Arg: 2})
	tl.Event(Event{Kind: KindQueueDepth, Cycle: 310, Arg: uint32(QueueLDQ), Value: 3})
	trace := decodeTrace(t, tl)

	l1 := find(trace, "loop 1", "X")
	if len(l1) != 1 || l1[0].Ts != 100 || l1[0].Dur != 150 {
		t.Errorf("loop 1 spans = %+v, want one at ts 100 dur 150", l1)
	}
	// Loop 2 is still open at WriteTo; closed at last+1 = 311.
	l2 := find(trace, "loop 2", "X")
	if len(l2) != 1 || l2[0].Ts != 300 || l2[0].Dur != 11 {
		t.Errorf("loop 2 spans = %+v, want one at ts 300 dur 11", l2)
	}
	ldq := find(trace, "LDQ", "C")
	if len(ldq) != 1 || ldq[0].Args["entries"] != float64(3) {
		t.Errorf("LDQ samples = %+v, want one with entries=3", ldq)
	}
}
