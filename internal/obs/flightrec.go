package obs

// This file is the flight recorder: an always-on, fixed-size ring of the
// most recent probe events, kept by every simulation regardless of whether
// a probe is attached. When a run dies — machine check, watchdog deadlock —
// the ring is snapshotted into the error so the post-mortem shows what the
// machine was doing in the cycles leading up to the fault, not just the
// retirement tail.
//
// The recorder deliberately does NOT ride the Probe interface: the
// interface dispatch alone costs ~45% of an unobserved run (see
// BenchmarkProbeOverhead/null-probe), far outside the always-on budget.
// Instead instrumented components hold a concrete *FlightRecorder and call
// the inlinable Record at their medium- and low-volume event sites
// (cache hits/misses, fetch/prefetch brackets, flushes, bus transfers,
// memory accepts, retirements). The two per-cycle-rate kinds — KindCycle
// and KindQueueDepth, together ~70% of the stream — are not recorded:
// they carry no fault context the retained kinds don't, and skipping them
// keeps the always-on overhead under the 5% BenchmarkSingleRun bound
// (measured ~3%, see BenchmarkFlightRecorderOverhead).

import (
	"fmt"
	"io"

	"pipesim/internal/stats"
)

// DefaultFlightRecDepth is the flight-recorder ring depth used when a
// configuration leaves it zero: deep enough to span several cache-miss /
// refill rounds before a fault, small enough (256 × 32 B = 8 KiB) to be
// irrelevant next to the simulated memory image.
const DefaultFlightRecDepth = 256

// FlightRecorder is a bounded ring of recent events. It is single-writer
// (the simulation goroutine) and is preallocated at construction: Record
// performs no allocation and no interface dispatch. A nil *FlightRecorder
// is a valid "disabled" recorder for the read-side methods; writers guard
// their Record calls with a nil check instead, keeping the hot path one
// compare + one store.
type FlightRecorder struct {
	clock *uint64 // the simulator's cycle counter, read at record time
	buf   []Event // power-of-two ring
	mask  uint64
	n     uint64 // total events ever recorded
}

// NewFlightRecorder returns a recorder of at least the requested depth
// (rounded up to a power of two; depth <= 0 selects DefaultFlightRecDepth)
// stamping each event with *clock.
func NewFlightRecorder(depth int, clock *uint64) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultFlightRecDepth
	}
	d := 1
	for d < depth {
		d <<= 1
	}
	return &FlightRecorder{clock: clock, buf: make([]Event, d), mask: uint64(d - 1)}
}

// Record appends one event, overwriting the oldest when the ring is full.
// It is kept small enough for the inliner so the per-event cost at a call
// site is one predictable branch plus one 32-byte store.
func (r *FlightRecorder) Record(kind Kind, addr, arg uint32, value uint64) {
	r.buf[r.n&r.mask] = Event{Kind: kind, Cycle: *r.clock, Addr: addr, Arg: arg, Value: value}
	r.n++
}

// Events returns a copy of the retained events, oldest first. Safe on a nil
// recorder (returns nil). Must not race with Record: call it only after the
// run has stopped (error constructors do) or from the run goroutine.
func (r *FlightRecorder) Events() []Event {
	if r == nil || r.n == 0 {
		return nil
	}
	n := r.n
	if max := uint64(len(r.buf)); n > max {
		n = max
	}
	out := make([]Event, n)
	start := r.n - n
	for i := uint64(0); i < n; i++ {
		out[i] = r.buf[(start+i)&r.mask]
	}
	return out
}

// Total returns how many events have ever been recorded (including
// overwritten ones). Safe on a nil recorder.
func (r *FlightRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.n
}

// Depth returns the ring capacity. Safe on a nil recorder.
func (r *FlightRecorder) Depth() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// String renders the event as one stable diagnostic line, used by the
// machine-check and deadlock Detail reports and the /debug/flightrecorder
// endpoint. The format is `[cycle] kind payload` with kind-specific payload
// fields.
func (e Event) String() string {
	switch e.Kind {
	case KindCycle:
		return fmt.Sprintf("[%d] cycle %s", e.Cycle, stats.CycleBucket(e.Arg))
	case KindQueueDepth:
		return fmt.Sprintf("[%d] queue-depth %s=%d", e.Cycle, Queue(e.Arg), e.Value)
	case KindBusBusy:
		return fmt.Sprintf("[%d] bus-busy addr=%#05x words=%d", e.Cycle, e.Addr, e.Value)
	case KindMemAccept:
		return fmt.Sprintf("[%d] mem-accept %s addr=%#05x", e.Cycle, stats.ReqKind(e.Arg), e.Addr)
	case KindRetire:
		return fmt.Sprintf("[%d] retire pc=%#05x", e.Cycle, e.Addr)
	case KindLoopEnter, KindLoopExit:
		return fmt.Sprintf("[%d] %s loop=%d", e.Cycle, e.Kind, e.Arg)
	case KindCacheEvict:
		return fmt.Sprintf("[%d] cache-evict line=%#05x set=%d dead=%v", e.Cycle, e.Addr, e.Arg, e.Value != 0)
	default:
		return fmt.Sprintf("[%d] %s addr=%#05x", e.Cycle, e.Kind, e.Addr)
	}
}

// EventRecord is the JSON rendering of one flight-recorder event, used in
// pipesimd error bodies and the /debug/flightrecorder endpoint. Addresses
// are hex strings so a human reading the response can match them against a
// disassembly without mentally converting decimals.
type EventRecord struct {
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`
	Addr  string `json:"addr,omitempty"`
	Queue string `json:"queue,omitempty"`
	Req   string `json:"req,omitempty"`
	Loop  uint32 `json:"loop,omitempty"`
	Value uint64 `json:"value,omitempty"`
}

// RecordOf converts one event to its JSON rendering.
func RecordOf(e Event) EventRecord {
	r := EventRecord{Cycle: e.Cycle, Kind: e.Kind.String()}
	switch e.Kind {
	case KindQueueDepth:
		r.Queue, r.Value = Queue(e.Arg).String(), e.Value
	case KindBusBusy:
		r.Addr, r.Value = fmt.Sprintf("%#05x", e.Addr), e.Value
	case KindMemAccept:
		r.Addr, r.Req = fmt.Sprintf("%#05x", e.Addr), stats.ReqKind(e.Arg).String()
	case KindLoopEnter, KindLoopExit:
		r.Loop = e.Arg
	case KindCacheEvict:
		r.Addr, r.Value = fmt.Sprintf("%#05x", e.Addr), e.Value
	case KindCycle:
		r.Value = uint64(e.Arg)
	default:
		r.Addr = fmt.Sprintf("%#05x", e.Addr)
	}
	return r
}

// Records converts a snapshot to its JSON rendering, oldest first.
func Records(events []Event) []EventRecord {
	if len(events) == 0 {
		return nil
	}
	out := make([]EventRecord, len(events))
	for i, e := range events {
		out[i] = RecordOf(e)
	}
	return out
}

// WriteFlightTrace replays a flight-recorder snapshot through a
// replay-mode Timeline and writes the Chrome-trace JSON, so a post-mortem
// ring loads in the same chrome://tracing / Perfetto UI as a full -timeline
// run. Events must be in recording order (Events() returns them so).
func WriteFlightTrace(w io.Writer, events []Event) error {
	t := NewReplayTimeline()
	for _, e := range events {
		t.Event(e)
	}
	_, err := t.WriteTo(w)
	return err
}
