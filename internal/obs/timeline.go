package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"pipesim/internal/stats"
)

// Chrome trace event format constants. The exported file loads in
// chrome://tracing and https://ui.perfetto.dev: one process ("pipesim"),
// one thread per pipeline resource, counter tracks for the queues and the
// input bus, and complete ("X") events for stall spans, off-chip fetches
// and Livermore loops. Timestamps are simulated cycles expressed as
// microseconds (1 cycle = 1 µs).
const (
	tidPipeline = 1 // issue-stage attribution spans
	tidIFetch   = 2 // demand fetch / prefetch spans and instants
	tidLoops    = 3 // Livermore loop spans
	tidMem      = 4 // memory-interface instants (replay mode only)
)

// chromeEvent is one entry of the trace's traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object format of the Chrome trace event spec.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Timeline is a probe that renders the event stream as a Chrome-trace /
// Perfetto timeline: duration events for the pipeline's per-cycle stall
// attribution (coalesced into spans), off-chip demand fetches and
// prefetches, and Livermore loops; counter events for queue occupancy and
// input-bus words; instant events for branch flushes and blocked
// prefetches. Attach with Simulation.Observe, run, then WriteTo.
type Timeline struct {
	events []chromeEvent
	last   uint64 // highest cycle seen, to close open spans

	// replay additionally renders the kinds a live timeline ignores —
	// cache hits/misses, memory accepts, retirements — as instants, so a
	// sparse flight-recorder snapshot still paints a useful picture. Off
	// for live probes: at full stream rate those kinds would multiply the
	// trace size without adding structure. Enable via NewReplayTimeline.
	replay bool

	// Pipeline attribution span state.
	bucketOpen  bool
	bucket      uint32
	bucketStart uint64

	// Fetch/prefetch span state: issue cycle of the pending request, or 0.
	// A second issue before the complete means the first was canceled at
	// the memory interface and is dropped.
	fetchIssue    uint64
	fetchAddr     uint32
	prefetchIssue uint64
	prefetchAddr  uint32

	// Loop span state.
	loopOpen  bool
	loopArg   uint32
	loopStart uint64

	// Input-bus counter state: cycle of the last busy sample, so idle
	// gaps get an explicit zero sample and the counter renders as steps.
	busLast uint64

	// Cache-introspection counter state: cumulative miss counts per 3C
	// class and cumulative evictions, sampled on each classified event so
	// the tracks render as monotone steps. Populated only when the run
	// enabled introspection (unclassified misses emit no counter row).
	missClasses [stats.NumMissClasses]uint64
	evictions   uint64
	deadEvicts  uint64
}

// NewTimeline returns an empty timeline with the process/thread metadata
// pre-recorded.
func NewTimeline() *Timeline {
	t := &Timeline{}
	t.meta(0, "process_name", "pipesim")
	t.meta(tidPipeline, "thread_name", "pipeline")
	t.meta(tidIFetch, "thread_name", "ifetch")
	t.meta(tidLoops, "thread_name", "loops")
	return t
}

// NewReplayTimeline returns a timeline in replay mode, for re-rendering a
// bounded event snapshot (a flight-recorder ring) rather than consuming a
// live stream. See Timeline.replay; used by WriteFlightTrace.
func NewReplayTimeline() *Timeline {
	t := NewTimeline()
	t.replay = true
	t.meta(tidMem, "thread_name", "memory")
	return t
}

func (t *Timeline) meta(tid int, name, value string) {
	e := chromeEvent{Name: name, Ph: "M", Pid: 1, Args: map[string]any{"name": value}}
	if tid != 0 {
		e.Tid = tid
	}
	t.events = append(t.events, e)
}

// Event consumes one simulator event.
func (t *Timeline) Event(e Event) {
	if e.Cycle > t.last {
		t.last = e.Cycle
	}
	switch e.Kind {
	case KindCycle:
		if t.bucketOpen && t.bucket == e.Arg {
			return // span continues
		}
		t.closeBucket(e.Cycle)
		t.bucketOpen, t.bucket, t.bucketStart = true, e.Arg, e.Cycle
	case KindFetchIssue:
		t.fetchIssue, t.fetchAddr = e.Cycle, e.Addr
	case KindFetchComplete:
		if t.fetchIssue != 0 {
			t.span(tidIFetch, "demand-fetch", t.fetchIssue, e.Cycle+1,
				map[string]any{"addr": fmt.Sprintf("%#05x", t.fetchAddr)})
			t.fetchIssue = 0
		}
	case KindPrefetchIssue:
		t.prefetchIssue, t.prefetchAddr = e.Cycle, e.Addr
	case KindPrefetchComplete:
		if t.prefetchIssue != 0 {
			t.span(tidIFetch, "prefetch", t.prefetchIssue, e.Cycle+1,
				map[string]any{"addr": fmt.Sprintf("%#05x", t.prefetchAddr)})
			t.prefetchIssue = 0
		}
	case KindPrefetchBlocked:
		t.instant(tidIFetch, "prefetch-blocked")
	case KindBranchFlush:
		t.instant(tidIFetch, "branch-flush")
	case KindLoopEnter:
		t.closeLoop(e.Cycle)
		t.loopOpen, t.loopArg, t.loopStart = true, e.Arg, e.Cycle
	case KindLoopExit:
		t.closeLoop(e.Cycle)
	case KindCacheHit, KindCacheMiss:
		if e.Kind == KindCacheMiss && e.Arg != 0 && int(e.Arg) < len(t.missClasses) {
			t.missClasses[e.Arg]++
			t.counter("miss-classes", e.Cycle, map[string]any{
				"compulsory": t.missClasses[stats.MissCompulsory],
				"capacity":   t.missClasses[stats.MissCapacity],
				"conflict":   t.missClasses[stats.MissConflict],
			})
		}
		if t.replay {
			t.mark(tidIFetch, e.Kind.String(), e.Cycle,
				map[string]any{"addr": fmt.Sprintf("%#05x", e.Addr)})
		}
	case KindCacheEvict:
		t.evictions++
		if e.Value != 0 {
			t.deadEvicts++
		}
		t.counter("evictions", e.Cycle, map[string]any{
			"total": t.evictions,
			"dead":  t.deadEvicts,
		})
		if t.replay {
			t.mark(tidIFetch, "cache-evict", e.Cycle, map[string]any{
				"line": fmt.Sprintf("%#05x", e.Addr),
				"set":  e.Arg,
				"dead": e.Value != 0,
			})
		}
	case KindMemAccept:
		if t.replay {
			t.mark(tidMem, "mem-accept", e.Cycle, map[string]any{
				"addr": fmt.Sprintf("%#05x", e.Addr),
				"req":  stats.ReqKind(e.Arg).String(),
			})
		}
	case KindRetire:
		if t.replay {
			t.mark(tidPipeline, "retire", e.Cycle,
				map[string]any{"pc": fmt.Sprintf("%#05x", e.Addr)})
		}
	case KindQueueDepth:
		t.counter(Queue(e.Arg).String(), e.Cycle, map[string]any{"entries": e.Value})
	case KindBusBusy:
		if t.busLast != 0 && e.Cycle > t.busLast+1 {
			t.counter("input-bus", t.busLast+1, map[string]any{"words": 0})
		}
		t.counter("input-bus", e.Cycle, map[string]any{"words": e.Value})
		t.busLast = e.Cycle
	}
}

func (t *Timeline) closeBucket(now uint64) {
	if !t.bucketOpen {
		return
	}
	t.span(tidPipeline, stats.CycleBucket(t.bucket).String(), t.bucketStart, now, nil)
	t.bucketOpen = false
}

func (t *Timeline) closeLoop(now uint64) {
	if !t.loopOpen {
		return
	}
	name := "outside"
	if t.loopArg != 0 {
		name = fmt.Sprintf("loop %d", t.loopArg)
	}
	t.span(tidLoops, name, t.loopStart, now, nil)
	t.loopOpen = false
}

func (t *Timeline) span(tid int, name string, start, end uint64, args map[string]any) {
	if end <= start {
		end = start + 1
	}
	t.events = append(t.events, chromeEvent{
		Name: name, Ph: "X", Ts: start, Dur: end - start, Pid: 1, Tid: tid, Args: args,
	})
}

func (t *Timeline) instant(tid int, name string) {
	t.events = append(t.events, chromeEvent{Name: name, Ph: "i", Ts: t.last, Pid: 1, Tid: tid, S: "t"})
}

func (t *Timeline) mark(tid int, name string, ts uint64, args map[string]any) {
	t.events = append(t.events, chromeEvent{Name: name, Ph: "i", Ts: ts, Pid: 1, Tid: tid, S: "t", Args: args})
}

func (t *Timeline) counter(name string, ts uint64, args map[string]any) {
	t.events = append(t.events, chromeEvent{Name: name, Ph: "C", Ts: ts, Pid: 1, Tid: 0, Args: args})
}

// Events returns how many trace events have been recorded (including
// metadata), for tests and size diagnostics.
func (t *Timeline) Events() int { return len(t.events) }

// WriteTo finalizes the timeline (closing any open spans one cycle past the
// last event) and writes the Chrome trace JSON object. Call after the run
// completes.
func (t *Timeline) WriteTo(w io.Writer) (int64, error) {
	t.closeBucket(t.last + 1)
	t.closeLoop(t.last + 1)
	if t.busLast != 0 {
		t.counter("input-bus", t.busLast+1, map[string]any{"words": 0})
		t.busLast = 0
	}
	data, err := json.Marshal(chromeTrace{TraceEvents: t.events, DisplayTimeUnit: "ms"})
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}
