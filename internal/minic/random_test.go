package minic_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"pipesim/internal/core"
	"pipesim/internal/minic"
)

// Randomized end-to-end verification: generate a random kernel-language
// program together with a Go float32 reference evaluator built from the
// same structure, compile and simulate it, and compare every array element
// bit for bit. This exercises the parser, the FIFO expression codegen, the
// CPU, the queues and the FPU as one chain.

// rexpr is a random expression that can render itself as source and
// evaluate itself against reference arrays.
type rexpr interface {
	src() string
	eval(arrays map[string][]float32, consts map[string]float32, k int) float32
}

type rElem struct {
	arr string
	off int
}

func (e rElem) src() string {
	switch {
	case e.off == 0:
		return fmt.Sprintf("%s[k]", e.arr)
	case e.off > 0:
		return fmt.Sprintf("%s[k+%d]", e.arr, e.off)
	default:
		return fmt.Sprintf("%s[k-%d]", e.arr, -e.off)
	}
}

func (e rElem) eval(arrays map[string][]float32, _ map[string]float32, k int) float32 {
	return arrays[e.arr][k+e.off]
}

type rConst struct{ name string }

func (c rConst) src() string { return c.name }
func (c rConst) eval(_ map[string][]float32, consts map[string]float32, _ int) float32 {
	return consts[c.name]
}

type rBin struct {
	op   byte
	a, b rexpr
}

func (b rBin) src() string { return fmt.Sprintf("(%s %c %s)", b.a.src(), b.op, b.b.src()) }

func (b rBin) eval(arrays map[string][]float32, consts map[string]float32, k int) float32 {
	x := b.a.eval(arrays, consts, k)
	y := b.b.eval(arrays, consts, k)
	switch b.op {
	case '+':
		return x + y
	case '-':
		return x - y
	case '*':
		return x * y
	default:
		return x / y
	}
}

type rAssign struct {
	arr string
	off int
	e   rexpr
}

type rProgram struct {
	arrays map[string][]float32  // name -> initial contents
	inits  map[string][2]float32 // name -> (base, step) used by linear()
	consts map[string]float32
	loops  []struct {
		iters   int
		assigns []rAssign
	}
}

func genExpr(rng *rand.Rand, depth int, arrNames []string, constNames []string) rexpr {
	if depth <= 0 || rng.Intn(3) == 0 {
		if len(constNames) > 0 && rng.Intn(4) == 0 {
			return rConst{name: constNames[rng.Intn(len(constNames))]}
		}
		return rElem{arr: arrNames[rng.Intn(len(arrNames))], off: rng.Intn(5) - 1}
	}
	// Division is kept rare and guarded by nonzero initial data.
	ops := []byte{'+', '-', '*', '*', '+'}
	return rBin{
		op: ops[rng.Intn(len(ops))],
		a:  genExpr(rng, depth-1, arrNames, constNames),
		b:  genExpr(rng, depth-1, arrNames, constNames),
	}
}

func genProgram(rng *rand.Rand) *rProgram {
	p := &rProgram{arrays: map[string][]float32{}, inits: map[string][2]float32{}, consts: map[string]float32{}}
	nArr := 2 + rng.Intn(2)
	size := 40 + rng.Intn(30)
	var arrNames []string
	for i := 0; i < nArr; i++ {
		name := fmt.Sprintf("a%d", i)
		arrNames = append(arrNames, name)
		vals := make([]float32, size)
		base := 0.25 + 0.25*float32(rng.Intn(4))
		step := 0.001 * float32(rng.Intn(5))
		for j := range vals {
			vals[j] = base + step*float32(j) // same float32 formula as minic's linear()
		}
		p.arrays[name] = vals
		p.inits[name] = [2]float32{base, step}
	}
	var constNames []string
	for i := 0; i < rng.Intn(3); i++ {
		name := fmt.Sprintf("c%d", i)
		constNames = append(constNames, name)
		p.consts[name] = 0.125 * float32(1+rng.Intn(8))
	}
	nLoops := 1 + rng.Intn(2)
	for i := 0; i < nLoops; i++ {
		iters := 10 + rng.Intn(size-15)
		var assigns []rAssign
		for j := 0; j < 1+rng.Intn(3); j++ {
			assigns = append(assigns, rAssign{
				arr: arrNames[rng.Intn(len(arrNames))],
				off: rng.Intn(3) - 1,
				e:   genExpr(rng, 2, arrNames, constNames),
			})
		}
		p.loops = append(p.loops, struct {
			iters   int
			assigns []rAssign
		}{iters, assigns})
	}
	return p
}

// source renders the program as kernel-language text.
func (p *rProgram) source() string {
	var sb strings.Builder
	for name, v := range p.consts {
		fmt.Fprintf(&sb, "const %s = %v\n", name, v)
	}
	// Arrays render with the exact linear initializer they were built
	// from (float32 %v formatting round-trips).
	for _, name := range sortedArrayNames(p) {
		init := p.inits[name]
		fmt.Fprintf(&sb, "array %s[%d] = linear(%v, %v)\n", name, len(p.arrays[name]), init[0], init[1])
	}
	for _, l := range p.loops {
		fmt.Fprintf(&sb, "loop %d {\n", l.iters)
		for _, a := range l.assigns {
			fmt.Fprintf(&sb, "  %s = %s\n", rElem{arr: a.arr, off: a.off}.src(), a.e.src())
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

func sortedArrayNames(p *rProgram) []string {
	var names []string
	for i := 0; ; i++ {
		name := fmt.Sprintf("a%d", i)
		if _, ok := p.arrays[name]; !ok {
			break
		}
		names = append(names, name)
	}
	return names
}

// reference runs the program on float32 arrays in Go, mirroring minic's
// semantics: each loop's index shift is the most negative offset used, and
// statements apply sequentially.
func (p *rProgram) reference() map[string][]float32 {
	arrays := map[string][]float32{}
	for name, v := range p.arrays {
		arrays[name] = append([]float32(nil), v...)
	}
	for _, l := range p.loops {
		shift := 0
		walkOffsets(l.assigns, func(off int) {
			if -off > shift {
				shift = -off
			}
		})
		for i := 0; i < l.iters; i++ {
			k := shift + i
			for _, a := range l.assigns {
				arrays[a.arr][k+a.off] = a.e.eval(arrays, p.consts, k)
			}
		}
	}
	return arrays
}

func walkOffsets(assigns []rAssign, f func(int)) {
	var walk func(e rexpr)
	walk = func(e rexpr) {
		switch e := e.(type) {
		case rElem:
			f(e.off)
		case rBin:
			walk(e.a)
			walk(e.b)
		}
	}
	for _, a := range assigns {
		f(a.off)
		walk(a.e)
	}
}

func TestRandomKernelProgramsMatchReference(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	tested := 0
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		p := genProgram(rng)
		src := p.source()
		u, err := minic.Compile(src)
		if err != nil {
			// Bounds rejections are legitimate generator outcomes; a
			// parse error is not.
			if strings.Contains(err.Error(), "ranges over") || strings.Contains(err.Error(), "too many constants") {
				continue
			}
			t.Fatalf("seed %d: unexpected compile error: %v\nsource:\n%s", seed, err, src)
		}
		cfg := core.DefaultConfig()
		cfg.Mem.AccessTime = []int{1, 3, 6}[seed%3]
		cfg.CacheBytes = []int{32, 128, 512}[seed%3]
		sim, err := core.New(cfg, u.Image)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, src)
		}
		ref := p.reference()
		for name, want := range ref {
			for idx, w := range want {
				addr, ok := u.ArrayAddr(name, idx)
				if !ok {
					t.Fatalf("seed %d: no address for %s", seed, name)
				}
				got := math.Float32frombits(sim.ReadWord(addr))
				if math.Float32bits(got) != math.Float32bits(w) {
					t.Fatalf("seed %d: %s[%d] = %v (%#x), reference %v (%#x)\nsource:\n%s",
						seed, name, idx, got, math.Float32bits(got), w, math.Float32bits(w), src)
				}
			}
		}
		tested++
	}
	if tested < seeds/2 {
		t.Fatalf("only %d/%d random programs were in bounds; generator too loose", tested, seeds)
	}
}
