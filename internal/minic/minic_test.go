package minic_test

import (
	"math"
	"strings"
	"testing"

	"pipesim/internal/core"
	"pipesim/internal/minic"
)

func compileRun(t *testing.T, src string) (*minic.Unit, *core.Simulator) {
	t.Helper()
	u, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	sim, err := core.New(core.DefaultConfig(), u.Image)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	return u, sim
}

func readF32(t *testing.T, u *minic.Unit, sim *core.Simulator, name string, idx int) float32 {
	t.Helper()
	addr, ok := u.ArrayAddr(name, idx)
	if !ok {
		t.Fatalf("no array %q", name)
	}
	return math.Float32frombits(sim.ReadWord(addr))
}

func TestCompileHydroFragment(t *testing.T) {
	u, sim := compileRun(t, `
const q = 1.25
const r = 0.5
array x[120]
array y[120] = linear(0.25, 0.001)
array z[140] = cycle(0.0625, 17)
loop 100 {
  x[k] = q + y[k] * (r * z[k+10])
}
`)
	for _, k := range []int{0, 1, 50, 99} {
		y := float32(0.25) + 0.001*float32(k)
		z := float32(0.0625) * float32((k+10)%17)
		want := 1.25 + y*(0.5*z)
		if got := readF32(t, u, sim, "x", k); got != want {
			t.Fatalf("x[%d] = %v, want %v", k, got, want)
		}
	}
}

func TestCompileRecurrenceShiftsIndex(t *testing.T) {
	u, sim := compileRun(t, `
array x[60] = fill(2.0)
array y[60] = fill(0.5)
loop 50 {
  x[k] = y[k] * x[k-1]
}
`)
	if len(u.Loops) != 1 || u.Loops[0].IndexShift != 1 {
		t.Fatalf("loops = %+v, want shift 1", u.Loops)
	}
	// x[k] = 0.5 * x[k-1], x[0] = 2: x[k] = 2 * 0.5^k for k in 1..50.
	want := float32(2.0)
	for k := 1; k <= 50; k++ {
		want *= 0.5
		if k == 1 || k == 25 || k == 50 {
			if got := readF32(t, u, sim, "x", k); got != want {
				t.Fatalf("x[%d] = %v, want %v", k, got, want)
			}
		}
	}
}

func TestCompileLiteralsInterned(t *testing.T) {
	u, sim := compileRun(t, `
array x[20]
array y[20] = fill(3.0)
loop 10 {
  x[k] = y[k] * 2.0 + 2.0
}
`)
	if got := readF32(t, u, sim, "x", 5); got != 8.0 {
		t.Fatalf("x[5] = %v, want 8", got)
	}
	_ = u
}

func TestCompileMultipleLoopsSequential(t *testing.T) {
	u, sim := compileRun(t, `
array a[40] = fill(1.0)
array b[40]
loop 30 {
  b[k] = a[k] + a[k]
}
loop 30 {
  a[k] = b[k] * b[k]
}
`)
	if got := readF32(t, u, sim, "b", 7); got != 2.0 {
		t.Fatalf("b[7] = %v, want 2", got)
	}
	if got := readF32(t, u, sim, "a", 7); got != 4.0 {
		t.Fatalf("a[7] = %v, want 4", got)
	}
}

func TestCompileDivision(t *testing.T) {
	u, sim := compileRun(t, `
array x[20]
array n[20] = linear(2.0, 2.0)
array d[20] = fill(4.0)
loop 10 {
  x[k] = n[k] / d[k]
}
`)
	for _, k := range []int{0, 3, 9} {
		want := (2.0 + 2.0*float32(k)) / 4.0
		if got := readF32(t, u, sim, "x", k); got != want {
			t.Fatalf("x[%d] = %v, want %v", k, got, want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"loop 10 { x[k] = 1.0 }", "unknown array"},
		{"array x[5]\nloop 10 { x[k] = 1.0 }", "ranges over"},
		{"array x[20]\nloop 10 { x[k] = q }", "unknown constant"},
		{"array x[20]\nloop 10 { x[j] = 1.0 }", "indexed by k"},
		{"array x[20]\nloop 0 { x[k] = 1.0 }", "bad iteration count"},
		{"array x[20]\nloop 10 { }", "empty loop body"},
		{"array x[20]", "no loops"},
		{"const a = 1.0\nconst b = 2.0\nconst c = 3.0\narray x[20]\nloop 10 { x[k] = a + b + c + 4.0 }", "too many constants"},
		{"array x[20]\narray x[20]\nloop 10 { x[k] = 1.0 }", "duplicate array"},
		{"const x = 1.0\narray x[20]\nloop 10 { x[k] = 1.0 }", "both array and const"},
		{"array x[20] = wave(1.0)\nloop 10 { x[k] = 1.0 }", "unknown initializer"},
		{"array x[20] = fill(1.0, 2.0)\nloop 10 { x[k] = 1.0 }", "wants 1 argument"},
		{"frobnicate\n", "expected const, array or loop"},
		{"array x[20]\nloop 10 { x[k] = (1.0 }", `expected ")"`},
	}
	for _, c := range cases {
		_, err := minic.Compile(c.src)
		if err == nil {
			t.Errorf("Compile(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Compile(%q) error = %v, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestCompiledLoopsRunOnAllEngines(t *testing.T) {
	u, err := minic.Compile(`
const r = 0.5
array x[80] = linear(1.0, 0.5)
array y[80] = fill(0.25)
loop 60 {
  x[k] = x[k] - r * y[k] * x[k+5]
}
`)
	if err != nil {
		t.Fatal(err)
	}
	var ref []uint32
	for _, strat := range []core.FetchStrategy{core.FetchPIPE, core.FetchConventional, core.FetchTIB} {
		cfg := core.DefaultConfig()
		cfg.Fetch = strat
		cfg.TIBEntries = 2
		cfg.TIBLineBytes = 16
		sim, err := core.New(cfg, u.Image)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		base, _ := u.ArrayAddr("x", 0)
		var got []uint32
		for i := 0; i < 70; i++ {
			got = append(got, sim.ReadWord(base+uint32(4*i)))
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%v: x[%d] differs", strat, i)
			}
		}
	}
}

func TestUnitMetadata(t *testing.T) {
	u, err := minic.Compile(`
const c = 2.5
array x[30]
loop 20 { x[k] = c }
`)
	if err != nil {
		t.Fatal(err)
	}
	if u.Consts["c"] != 2.5 {
		t.Errorf("Consts = %v", u.Consts)
	}
	if _, ok := u.ArrayAddr("x", 0); !ok {
		t.Error("ArrayAddr(x) missing")
	}
	if _, ok := u.ArrayAddr("nope", 0); ok {
		t.Error("ArrayAddr(nope) found")
	}
	if len(u.Loops) != 1 || u.Loops[0].Iterations != 20 {
		t.Errorf("Loops = %+v", u.Loops)
	}
}
