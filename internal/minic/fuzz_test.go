package minic

import "testing"

// FuzzCompile checks the compiler never panics on arbitrary source and that
// accepted programs link.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"array x[10]\nloop 5 { x[k] = 1.0 }",
		"const a = 2.0\narray x[10]\nloop 5 { x[k] = a * a }",
		"array x[30]\narray y[30]\nloop 20 { x[k] = y[k+1] - y[k-1] }",
		"loop 5 { }",
		"array x[10] = linear(1.0, 0.5)\nloop 5 { x[k] = x[k] / 2.0 }",
		"array x[10]\nloop 5 { x[k] = ((((1.0)))) }",
		"# only a comment",
		"array x[10]\nloop 5 { x[k] = y[k] }",
		"}{)(",
		"const = =",
		"array x[999999999999999999999]\nloop 1 { x[k] = 1.0 }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		u, err := Compile(src)
		if err != nil {
			return
		}
		if u.Image == nil || len(u.Image.Text) == 0 {
			t.Fatal("accepted program with empty image")
		}
	})
}
