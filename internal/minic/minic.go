// Package minic compiles a small kernel-description language to PIPE
// programs, playing the role of the paper's Fortran compiler for
// user-written workloads. It reuses the same FIFO-disciplined expression
// code generator as the Livermore workload (internal/kernels), so compiled
// loops exercise the architectural queues and the memory-mapped FPU exactly
// like the paper's benchmark.
//
// # Language
//
//	# comments run to end of line
//	const q = 1.25                     # kept in a register (at most 3)
//	array x[500]                       # zero-initialized float32 array
//	array y[500] = linear(0.25, 0.001) # y[i] = 0.25 + 0.001*i
//	array z[520] = fill(0.0625)        # all elements 0.0625
//	array w[520] = cycle(0.0625, 17)   # w[i] = 0.0625 * (i % 17)
//
//	loop 400 {
//	  x[k] = q + y[k] * (q * z[k+10])
//	  y[k] = y[k] - x[k-1]             # negative offsets allowed
//	}
//	loop 10 { ... }                    # loops run in sequence
//
// Expressions combine array elements (indexed k plus a constant offset),
// named constants and numeric literals with + - * / and parentheses. All
// arithmetic is float32 and performed by the external FPU. Literals are
// interned as hidden constants; constants and literals together may not
// exceed three (they occupy registers r0, r4 and r6; whatever remains
// serves as spill space for deep expressions).
//
// The loop index covers iterations 0..n-1 shifted up by the most negative
// offset used, so every access stays in bounds; the compiler rejects
// programs whose arrays are too small.
package minic

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"pipesim/internal/isa"
	"pipesim/internal/kernels"
	"pipesim/internal/program"
)

// Unit is a compiled program plus its symbol information.
type Unit struct {
	Image  *program.Image
	Arrays map[string]uint32  // array name -> base byte address
	Consts map[string]float32 // const name -> value
	// Loops records iteration counts and index shifts, in program order.
	Loops []LoopInfo
}

// LoopInfo describes one compiled loop.
type LoopInfo struct {
	Iterations int
	IndexShift int // first source index value of k
	BodyInstr  int
}

// ArrayAddr returns the byte address of array element name[idx].
func (u *Unit) ArrayAddr(name string, idx int) (uint32, bool) {
	base, ok := u.Arrays[name]
	if !ok {
		return 0, false
	}
	return base + uint32(4*idx), true
}

// Compile translates source text into a runnable PIPE program.
func Compile(src string) (*Unit, error) {
	p := &parser{toks: lex(src)}
	decls, loops, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	return generate(decls, loops)
}

// ---- lexer ----

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tPunct // single-character punctuation or operator
)

type token struct {
	kind tokKind
	text string
	line int
}

func lex(src string) []token {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, token{tIdent, src[i:j], line})
			i = j
		case c >= '0' && c <= '9' || c == '.':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' || src[j] == 'e' ||
				src[j] == 'E' || ((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{tNumber, src[i:j], line})
			i = j
		case strings.ContainsRune("[]{}()=+-*/,", rune(c)):
			toks = append(toks, token{tPunct, string(c), line})
			i++
		default:
			toks = append(toks, token{tPunct, string(c), line}) // reported by the parser
			i++
		}
	}
	toks = append(toks, token{tEOF, "", line})
	return toks
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// ---- AST ----

type constDecl struct {
	name  string
	value float32
}

type arrayDecl struct {
	name string
	size int
	init string // "", "linear", "fill", "cycle"
	args []float32
	line int
}

type decls struct {
	consts []constDecl
	arrays []arrayDecl
}

type assignStmt struct {
	array  string
	offset int
	expr   node
	line   int
}

type loopDecl struct {
	iters int
	body  []assignStmt
	line  int
}

// node is a parsed expression.
type node interface{ isNode() }

type numNode struct{ v float32 }
type constNode struct{ name string }
type elemNode struct {
	array  string
	offset int
}
type binNode struct {
	op   byte
	a, b node
}

func (numNode) isNode()   {}
func (constNode) isNode() {}
func (elemNode) isNode()  {}
func (binNode) isNode()   {}

// ---- parser ----

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("minic: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tPunct || t.text != s {
		return p.errf(t, "expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *parser) parseProgram() (*decls, []loopDecl, error) {
	d := &decls{}
	var loops []loopDecl
	for {
		t := p.peek()
		switch {
		case t.kind == tEOF:
			if len(loops) == 0 {
				return nil, nil, fmt.Errorf("minic: program has no loops")
			}
			return d, loops, nil
		case t.kind == tIdent && t.text == "const":
			c, err := p.parseConst()
			if err != nil {
				return nil, nil, err
			}
			d.consts = append(d.consts, c)
		case t.kind == tIdent && t.text == "array":
			a, err := p.parseArray()
			if err != nil {
				return nil, nil, err
			}
			d.arrays = append(d.arrays, a)
		case t.kind == tIdent && t.text == "loop":
			l, err := p.parseLoop()
			if err != nil {
				return nil, nil, err
			}
			loops = append(loops, l)
		default:
			return nil, nil, p.errf(t, "expected const, array or loop, got %q", t.text)
		}
	}
}

func (p *parser) parseConst() (constDecl, error) {
	p.next() // const
	name := p.next()
	if name.kind != tIdent {
		return constDecl{}, p.errf(name, "expected constant name")
	}
	if err := p.expectPunct("="); err != nil {
		return constDecl{}, err
	}
	v, err := p.parseNumber()
	if err != nil {
		return constDecl{}, err
	}
	return constDecl{name: name.text, value: v}, nil
}

func (p *parser) parseNumber() (float32, error) {
	neg := false
	if t := p.peek(); t.kind == tPunct && t.text == "-" {
		p.next()
		neg = true
	}
	t := p.next()
	if t.kind != tNumber {
		return 0, p.errf(t, "expected number, got %q", t.text)
	}
	v, err := strconv.ParseFloat(t.text, 32)
	if err != nil {
		return 0, p.errf(t, "bad number %q", t.text)
	}
	if neg {
		v = -v
	}
	return float32(v), nil
}

func (p *parser) parseArray() (arrayDecl, error) {
	start := p.next() // array
	name := p.next()
	if name.kind != tIdent {
		return arrayDecl{}, p.errf(name, "expected array name")
	}
	if err := p.expectPunct("["); err != nil {
		return arrayDecl{}, err
	}
	sz := p.next()
	n, err := strconv.Atoi(sz.text)
	if err != nil || n <= 0 {
		return arrayDecl{}, p.errf(sz, "bad array size %q", sz.text)
	}
	if err := p.expectPunct("]"); err != nil {
		return arrayDecl{}, err
	}
	a := arrayDecl{name: name.text, size: n, line: start.line}
	if t := p.peek(); t.kind == tPunct && t.text == "=" {
		p.next()
		fn := p.next()
		if fn.kind != tIdent {
			return arrayDecl{}, p.errf(fn, "expected initializer name")
		}
		switch fn.text {
		case "linear", "fill", "cycle":
			a.init = fn.text
		default:
			return arrayDecl{}, p.errf(fn, "unknown initializer %q (want linear, fill or cycle)", fn.text)
		}
		if err := p.expectPunct("("); err != nil {
			return arrayDecl{}, err
		}
		for {
			v, err := p.parseNumber()
			if err != nil {
				return arrayDecl{}, err
			}
			a.args = append(a.args, v)
			t := p.next()
			if t.kind == tPunct && t.text == ")" {
				break
			}
			if t.kind != tPunct || t.text != "," {
				return arrayDecl{}, p.errf(t, "expected , or ) in initializer")
			}
		}
		want := map[string]int{"linear": 2, "fill": 1, "cycle": 2}[a.init]
		if len(a.args) != want {
			return arrayDecl{}, p.errf(fn, "%s wants %d argument(s), got %d", a.init, want, len(a.args))
		}
	}
	return a, nil
}

func (p *parser) parseLoop() (loopDecl, error) {
	start := p.next() // loop
	it := p.next()
	n, err := strconv.Atoi(it.text)
	if err != nil || n < 1 || n > 0x7FFF {
		return loopDecl{}, p.errf(it, "bad iteration count %q (want 1..32767)", it.text)
	}
	if err := p.expectPunct("{"); err != nil {
		return loopDecl{}, err
	}
	l := loopDecl{iters: n, line: start.line}
	for {
		t := p.peek()
		if t.kind == tPunct && t.text == "}" {
			p.next()
			if len(l.body) == 0 {
				return loopDecl{}, p.errf(t, "empty loop body")
			}
			return l, nil
		}
		s, err := p.parseAssign()
		if err != nil {
			return loopDecl{}, err
		}
		l.body = append(l.body, s)
	}
}

func (p *parser) parseAssign() (assignStmt, error) {
	name := p.next()
	if name.kind != tIdent {
		return assignStmt{}, p.errf(name, "expected array name, got %q", name.text)
	}
	off, err := p.parseIndex()
	if err != nil {
		return assignStmt{}, err
	}
	if err := p.expectPunct("="); err != nil {
		return assignStmt{}, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return assignStmt{}, err
	}
	return assignStmt{array: name.text, offset: off, expr: e, line: name.line}, nil
}

// parseIndex parses "[k]", "[k+N]" or "[k-N]".
func (p *parser) parseIndex() (int, error) {
	if err := p.expectPunct("["); err != nil {
		return 0, err
	}
	k := p.next()
	if k.kind != tIdent || k.text != "k" {
		return 0, p.errf(k, "arrays are indexed by k, got %q", k.text)
	}
	off := 0
	t := p.next()
	switch {
	case t.kind == tPunct && t.text == "]":
		return 0, nil
	case t.kind == tPunct && (t.text == "+" || t.text == "-"):
		n := p.next()
		v, err := strconv.Atoi(n.text)
		if err != nil {
			return 0, p.errf(n, "bad index offset %q", n.text)
		}
		if t.text == "-" {
			v = -v
		}
		off = v
		if err := p.expectPunct("]"); err != nil {
			return 0, err
		}
		return off, nil
	default:
		return 0, p.errf(t, "expected ], + or - in index")
	}
}

func (p *parser) parseExpr() (node, error) {
	a, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tPunct && (t.text == "+" || t.text == "-") {
			p.next()
			b, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			a = binNode{op: t.text[0], a: a, b: b}
			continue
		}
		return a, nil
	}
}

func (p *parser) parseTerm() (node, error) {
	a, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tPunct && (t.text == "*" || t.text == "/") {
			p.next()
			b, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			a = binNode{op: t.text[0], a: a, b: b}
			continue
		}
		return a, nil
	}
}

func (p *parser) parseFactor() (node, error) {
	t := p.peek()
	switch {
	case t.kind == tNumber:
		v, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		return numNode{v: v}, nil
	case t.kind == tPunct && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tIdent:
		p.next()
		if n := p.peek(); n.kind == tPunct && n.text == "[" {
			off, err := p.parseIndex()
			if err != nil {
				return nil, err
			}
			return elemNode{array: t.text, offset: off}, nil
		}
		return constNode{name: t.text}, nil
	default:
		return nil, p.errf(t, "expected number, constant, array element or (, got %q", t.text)
	}
}

// ---- code generation ----

// constRegs are the registers available for constants and literals; the
// unused remainder serves as expression spill space.
var constRegs = []uint8{0, 4, 6}

// arrayInfo is an array's placement within the shared data region.
type arrayInfo struct {
	off  int32 // word offset within the region
	size int
}

func generate(d *decls, loops []loopDecl) (*Unit, error) {
	b := program.NewBuilder()
	u := &Unit{Arrays: map[string]uint32{}, Consts: map[string]float32{}}

	// Layout: all arrays in one region, then the hidden constant block.
	arrays := map[string]arrayInfo{}
	regionBase := b.DataPC()
	off := int32(0)
	for _, a := range d.arrays {
		if _, dup := arrays[a.name]; dup {
			return nil, fmt.Errorf("minic: line %d: duplicate array %q", a.line, a.name)
		}
		arrays[a.name] = arrayInfo{off: off, size: a.size}
		u.Arrays[a.name] = regionBase + uint32(4*off)
		b.DataLabel("arr." + a.name)
		for i := 0; i < a.size; i++ {
			b.Word(initValue(a, i))
		}
		off += int32(a.size)
	}
	// Collect constants: declared first, then interned literals.
	constIdx := map[string]int{}
	var constVals []float32
	for _, c := range d.consts {
		if _, dup := constIdx[c.name]; dup {
			return nil, fmt.Errorf("minic: duplicate const %q", c.name)
		}
		if _, isArr := arrays[c.name]; isArr {
			return nil, fmt.Errorf("minic: %q declared as both array and const", c.name)
		}
		constIdx[c.name] = len(constVals)
		constVals = append(constVals, c.value)
		u.Consts[c.name] = c.value
	}
	internLiteral := func(v float32) (int, error) {
		key := fmt.Sprintf("lit:%08x", math.Float32bits(v))
		if i, ok := constIdx[key]; ok {
			return i, nil
		}
		if len(constVals) >= len(constRegs) {
			return 0, fmt.Errorf("minic: too many constants and literals (at most %d)", len(constRegs))
		}
		constIdx[key] = len(constVals)
		constVals = append(constVals, v)
		return len(constVals) - 1, nil
	}
	// Walk expressions to intern literals and validate references before
	// emitting anything.
	var walk func(n node, l loopDecl) error
	walk = func(n node, l loopDecl) error {
		switch n := n.(type) {
		case numNode:
			_, err := internLiteral(n.v)
			return err
		case constNode:
			if _, ok := constIdx[n.name]; !ok {
				return fmt.Errorf("minic: line %d: unknown constant %q", l.line, n.name)
			}
			return nil
		case elemNode:
			if _, ok := arrays[n.array]; !ok {
				return fmt.Errorf("minic: line %d: unknown array %q", l.line, n.array)
			}
			return nil
		case binNode:
			if err := walk(n.a, l); err != nil {
				return err
			}
			return walk(n.b, l)
		}
		return fmt.Errorf("minic: unknown expression node")
	}
	for _, l := range loops {
		for _, s := range l.body {
			if _, ok := arrays[s.array]; !ok {
				return nil, fmt.Errorf("minic: line %d: unknown array %q", s.line, s.array)
			}
			if err := walk(s.expr, l); err != nil {
				return nil, err
			}
		}
	}
	if len(constVals) > len(constRegs) {
		return nil, fmt.Errorf("minic: too many constants (at most %d)", len(constRegs))
	}
	constBlockOff := off
	b.DataLabel("arr.minic.consts")
	for _, v := range constVals {
		b.Word(math.Float32bits(v))
	}
	off += int32(len(constVals))
	if off*4 > 0x7000 {
		return nil, fmt.Errorf("minic: data region %d bytes exceeds the 16-bit offset budget", off*4)
	}
	scratch := constRegs[len(constVals):]

	// Program prologue: FPU base and constants.
	b.LAAddr(kernels.RegFPU, program.FPUBase)
	if len(constVals) > 0 {
		b.LAAddr(kernels.RegPtr, regionBase)
		for i := range constVals {
			b.LD(kernels.RegPtr, 4*(constBlockOff+int32(i)))
			b.RI(isa.OpADDI, constRegs[i], isa.QueueReg, 0)
		}
	}

	// Loops.
	for li, l := range loops {
		shift := 0
		for _, s := range l.body {
			if -s.offset > shift {
				shift = -s.offset
			}
			shift = maxInt(shift, minOffsetNeed(s.expr))
		}
		// Bounds: every access k+off with k in [shift, shift+iters) must
		// fit its array.
		for _, s := range l.body {
			if err := checkBounds(arrays[s.array].size, shift, l.iters, s.offset, s.array, l.line); err != nil {
				return nil, err
			}
			if err := checkExprBounds(s.expr, arrays, shift, l.iters, l.line); err != nil {
				return nil, err
			}
		}
		// Lower to codegen statements.
		var stmts []kernels.Stmt
		for _, s := range l.body {
			e, err := lower(s.expr, arrays, constIdx)
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, kernels.StoreX(arrays[s.array].off+int32(s.offset), e))
		}
		body, err := kernels.CompileBody(stmts, scratch)
		if err != nil {
			return nil, fmt.Errorf("minic: line %d: %v (hint: fewer constants frees spill registers)", l.line, err)
		}
		// Emit the counted loop.
		label := fmt.Sprintf("minic.loop%d", li)
		b.LAAddr(kernels.RegPtr, regionBase+uint32(4*shift))
		b.LI(kernels.RegCounter, int32(l.iters))
		b.SetB(0, label, 0)
		b.Label(label)
		for _, in := range body {
			b.Emit(in)
		}
		b.RI(isa.OpADDI, kernels.RegCounter, kernels.RegCounter, -1)
		b.PBR(isa.CondNE, kernels.RegCounter, 0, 1)
		b.RI(isa.OpADDI, kernels.RegPtr, kernels.RegPtr, 4)
		u.Loops = append(u.Loops, LoopInfo{Iterations: l.iters, IndexShift: shift, BodyInstr: len(body) + 3})
	}
	b.Halt()
	img, err := b.Link()
	if err != nil {
		return nil, err
	}
	u.Image = img
	return u, nil
}

// lower converts an AST expression to a codegen expression. The moving
// pointer sits at element (shift+k) of the region, and arrays[...].off is
// absolute within the region, so X offsets are region-relative minus the
// pointer's start — which kernels.StoreX/X expect as "array offset + index
// offset" because the pointer base already includes the shift.
func lower(n node, arrays map[string]arrayInfo, constIdx map[string]int) (kernels.Expr, error) {
	switch n := n.(type) {
	case numNode:
		key := fmt.Sprintf("lit:%08x", math.Float32bits(n.v))
		return kernels.R(constRegs[constIdx[key]]), nil
	case constNode:
		return kernels.R(constRegs[constIdx[n.name]]), nil
	case elemNode:
		return kernels.X(arrays[n.array].off + int32(n.offset)), nil
	case binNode:
		a, err := lower(n.a, arrays, constIdx)
		if err != nil {
			return nil, err
		}
		b, err := lower(n.b, arrays, constIdx)
		if err != nil {
			return nil, err
		}
		switch n.op {
		case '+':
			return kernels.Add(a, b), nil
		case '-':
			return kernels.Sub(a, b), nil
		case '*':
			return kernels.Mul(a, b), nil
		case '/':
			return kernels.Div(a, b), nil
		}
	}
	return nil, fmt.Errorf("minic: unknown expression node")
}

// minOffsetNeed returns how far the index must be shifted up so the most
// negative offset in the expression stays in bounds.
func minOffsetNeed(n node) int {
	switch n := n.(type) {
	case elemNode:
		if n.offset < 0 {
			return -n.offset
		}
	case binNode:
		return maxInt(minOffsetNeed(n.a), minOffsetNeed(n.b))
	}
	return 0
}

func checkExprBounds(n node, arrays map[string]arrayInfo, shift, iters, line int) error {
	switch n := n.(type) {
	case elemNode:
		return checkBounds(arrays[n.array].size, shift, iters, n.offset, n.array, line)
	case binNode:
		if err := checkExprBounds(n.a, arrays, shift, iters, line); err != nil {
			return err
		}
		return checkExprBounds(n.b, arrays, shift, iters, line)
	}
	return nil
}

func checkBounds(size, shift, iters, offset int, name string, line int) error {
	lo := shift + offset
	hi := shift + iters - 1 + offset
	if lo < 0 || hi >= size {
		return fmt.Errorf("minic: line %d: %s[k%+d] ranges over [%d,%d] but the array has %d elements",
			line, name, offset, lo, hi, size)
	}
	return nil
}

func initValue(a arrayDecl, i int) uint32 {
	switch a.init {
	case "linear":
		return math.Float32bits(a.args[0] + a.args[1]*float32(i))
	case "fill":
		return math.Float32bits(a.args[0])
	case "cycle":
		m := int(a.args[1])
		if m <= 0 {
			m = 1
		}
		return math.Float32bits(a.args[0] * float32(i%m))
	default:
		return 0
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
