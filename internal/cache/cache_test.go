package cache

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, size, line, sub int) *Cache {
	t.Helper()
	c, err := New(size, line, sub)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	bad := [][3]int{
		{0, 4, 4}, {128, 0, 4}, {128, 8, 0},
		{100, 4, 4},   // size not power of two
		{128, 12, 4},  // line not power of two
		{128, 8, 3},   // sub not power of two
		{128, 256, 4}, // line > size
		{128, 8, 16},  // sub > line
		{-128, 8, 4},
	}
	for _, c := range bad {
		if _, err := New(c[0], c[1], c[2]); err == nil {
			t.Errorf("New(%v) succeeded, want error", c)
		}
	}
	if _, err := New(128, 8, 4); err != nil {
		t.Errorf("New(128,8,4) = %v", err)
	}
	// Degenerate but legal: one line, whole-line sub-block.
	if _, err := New(16, 16, 16); err != nil {
		t.Errorf("New(16,16,16) = %v", err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustNew(t, 128, 16, 4)
	if c.Lookup(0x40) {
		t.Fatal("cold lookup hit")
	}
	c.FillSub(0x40)
	if !c.Lookup(0x40) {
		t.Fatal("lookup after fill missed")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestSubBlockGranularity(t *testing.T) {
	c := mustNew(t, 128, 16, 4)
	c.FillSub(0x40)
	// Same line, different sub-block: still a miss.
	if c.Present(0x44) {
		t.Error("neighbouring sub-block valid after single fill")
	}
	if c.LinePresent(0x40) {
		t.Error("line reported fully present after one sub-block fill")
	}
	for a := uint32(0x40); a < 0x50; a += 4 {
		c.FillSub(a)
	}
	if !c.LinePresent(0x40) || !c.LinePresent(0x4C) {
		t.Error("line not present after filling all sub-blocks")
	}
}

func TestFillLine(t *testing.T) {
	c := mustNew(t, 128, 16, 4)
	c.FillLine(0x23) // unaligned address within the line
	for a := uint32(0x20); a < 0x30; a += 4 {
		if !c.Present(a) {
			t.Errorf("addr %#x not present after FillLine", a)
		}
	}
	if c.Present(0x30) || c.Present(0x1C) {
		t.Error("FillLine leaked into a neighbouring line")
	}
}

func TestConflictEviction(t *testing.T) {
	c := mustNew(t, 128, 16, 4) // 8 lines; addresses 128 apart conflict
	c.FillLine(0x00)
	if !c.Present(0x00) {
		t.Fatal("fill failed")
	}
	c.FillSub(0x80) // same index, different tag: evicts line 0's contents
	if c.Present(0x00) {
		t.Error("old tag still present after conflict fill")
	}
	if !c.Present(0x80) {
		t.Error("new sub-block absent")
	}
	if c.Present(0x84) {
		t.Error("unfilled sub-block of new tag valid")
	}
}

func TestTagIndexSeparation(t *testing.T) {
	c := mustNew(t, 64, 8, 4) // 8 lines of 8 bytes
	// 0x08 and 0x48 differ in tag, same index (0x48/8 = 9, 9%8 = 1).
	c.FillLine(0x08)
	if c.Present(0x48) {
		t.Error("different tag matched")
	}
	// 0x08 and 0x10 are different indices; both can be resident.
	c.FillLine(0x10)
	if !c.Present(0x08) || !c.Present(0x10) {
		t.Error("distinct indices evicted each other")
	}
}

func TestLookupLineCounts(t *testing.T) {
	c := mustNew(t, 64, 8, 4)
	if c.LookupLine(0x18) {
		t.Fatal("cold line lookup hit")
	}
	c.FillLine(0x18)
	if !c.LookupLine(0x18) {
		t.Fatal("line lookup after fill missed")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestPresentDoesNotCount(t *testing.T) {
	c := mustNew(t, 64, 8, 4)
	c.Present(0)
	c.LinePresent(0)
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("Present touched the counters")
	}
}

func TestReset(t *testing.T) {
	c := mustNew(t, 64, 8, 4)
	c.FillLine(0x18)
	c.Lookup(0x18)
	c.Reset()
	if c.Present(0x18) {
		t.Error("entry survived Reset")
	}
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("counters survived Reset")
	}
}

func TestLineAddr(t *testing.T) {
	c := mustNew(t, 128, 16, 4)
	cases := map[uint32]uint32{0: 0, 0x13: 0x10, 0x1F: 0x10, 0x20: 0x20}
	for in, want := range cases {
		if got := c.LineAddr(in); got != want {
			t.Errorf("LineAddr(%#x) = %#x, want %#x", in, got, want)
		}
	}
}

// TestQuickPresenceMatchesReference compares the cache against a map-based
// reference model under random fill/probe sequences.
func TestQuickPresenceMatchesReference(t *testing.T) {
	f := func(ops []uint16, cfgPick uint8) bool {
		cfgs := [][3]int{{64, 8, 4}, {128, 16, 4}, {256, 32, 4}, {32, 8, 8}}
		cfg := cfgs[int(cfgPick)%len(cfgs)]
		c, err := New(cfg[0], cfg[1], cfg[2])
		if err != nil {
			return false
		}
		line := uint32(cfg[1])
		sub := uint32(cfg[2])
		nLines := uint32(cfg[0] / cfg[1])
		// Reference validity is tracked per sub-block (a fill makes the
		// whole sub-block containing the address valid).
		ref := map[int]map[uint32]bool{} // index -> {sub-block addr: valid}
		refTag := map[int]uint32{}
		for _, op := range ops {
			addr := uint32(op) &^ 3 // word-aligned, 16-bit space
			idx := int(addr / line % nLines)
			tag := addr / line / nLines
			key := addr &^ (sub - 1)
			switch op % 3 {
			case 0: // FillSub
				c.FillSub(addr)
				if refTag[idx] != tag || ref[idx] == nil {
					ref[idx] = map[uint32]bool{}
					refTag[idx] = tag
				}
				ref[idx][key] = true
			case 1: // FillLine
				c.FillLine(addr)
				ref[idx] = map[uint32]bool{}
				refTag[idx] = tag
				base := addr &^ (line - 1)
				for a := base; a < base+line; a += sub {
					ref[idx][a] = true
				}
			case 2: // probe
				want := ref[idx] != nil && refTag[idx] == tag && ref[idx][key]
				if c.Present(addr) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
