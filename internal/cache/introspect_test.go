package cache

import (
	"testing"

	"pipesim/internal/stats"
)

// newIntro builds the canonical test geometry: a 32-byte cache with
// 16-byte lines, i.e. two direct-mapped frames. Addresses 0x00, 0x20,
// 0x40, ... all map to set 0, so conflict behaviour is easy to provoke
// while the equal-size FA shadow holds any two lines.
func newIntro(topN int) *Introspector { return NewIntrospector(32, 16, topN) }

// TestIntrospectorClassification walks a crafted miss stream through the
// textbook 3C outcomes: never-seen lines are compulsory, lines the
// fully-associative shadow still holds are conflicts of the direct-mapped
// placement, and lines even the FA shadow lost are capacity misses.
func TestIntrospectorClassification(t *testing.T) {
	in := newIntro(0)
	steps := []struct {
		addr uint32
		want stats.MissClass
	}{
		{0x00, stats.MissCompulsory}, // never seen
		{0x20, stats.MissCompulsory}, // never seen; FA = {00, 20}
		{0x00, stats.MissConflict},   // direct-mapped evicted it, FA kept it
		{0x40, stats.MissCompulsory}, // FA evicts LRU 0x20
		{0x20, stats.MissCapacity},   // even the FA shadow lost it
		{0x00, stats.MissCapacity},   // 0x20's reinsertion displaced it
	}
	for i, s := range steps {
		if got := in.Reference(s.addr, false); got != s.want {
			t.Errorf("step %d: Reference(%#x) = %v, want %v", i, s.addr, got, s.want)
		}
	}
	classes := in.Classes()
	if classes[stats.MissCompulsory] != 3 || classes[stats.MissConflict] != 1 || classes[stats.MissCapacity] != 2 {
		t.Errorf("class totals = %v", classes)
	}
	cs := in.Stats()
	if cs.Misses() != 6 {
		t.Errorf("Misses() = %d, want 6", cs.Misses())
	}
	if len(cs.Sets) != 2 {
		t.Fatalf("Sets = %d entries, want 2", len(cs.Sets))
	}
	if cs.Sets[0].Accesses != 6 || cs.Sets[0].Misses != 6 {
		t.Errorf("set 0 = %+v, want 6 accesses / 6 misses", cs.Sets[0])
	}
	if cs.Sets[1] != (stats.CacheSetStats{}) {
		t.Errorf("set 1 = %+v, want untouched", cs.Sets[1])
	}
}

// TestIntrospectorHitRecency: hits feed the FA shadow too, so a line that
// keeps hitting stays most-recently-used. Without the hit below, 0x00
// would be the FA's LRU victim and the final miss would read capacity.
func TestIntrospectorHitRecency(t *testing.T) {
	in := newIntro(0)
	in.Reference(0x00, false)
	in.Reference(0x20, false)
	if got := in.Reference(0x04, true); got != stats.MissUnclassified {
		t.Errorf("hit classified as %v", got)
	}
	in.Reference(0x40, false) // FA evicts 0x20, not the freshly-hit 0x00
	if got := in.Reference(0x00, false); got != stats.MissConflict {
		t.Errorf("Reference(0x00) after hit refresh = %v, want conflict", got)
	}
}

// TestIntrospectorEvictions covers TrackFill's dead-on-eviction logic and
// the OnEvict callback wiring.
func TestIntrospectorEvictions(t *testing.T) {
	in := newIntro(0)
	type evt struct {
		set  int
		line uint32
		dead bool
	}
	var got []evt
	in.OnEvict = func(set int, lineAddr uint32, dead bool) {
		got = append(got, evt{set, lineAddr, dead})
	}

	in.TrackFill(0, false, 0) // first fill of an empty frame: no eviction
	in.Reference(0x04, true)  // resident line hits
	in.TrackFill(0, true, 0x00)
	in.TrackFill(0, true, 0x20) // no hit since the previous fill: dead

	cs := in.Stats()
	if cs.Evictions != 2 || cs.DeadEvictions != 1 {
		t.Errorf("evictions = %d (dead %d), want 2 (dead 1)", cs.Evictions, cs.DeadEvictions)
	}
	if cs.Sets[0].Evictions != 2 || cs.Sets[0].DeadEvictions != 1 {
		t.Errorf("set 0 = %+v, want 2 evictions, 1 dead", cs.Sets[0])
	}
	want := []evt{{0, 0x00, false}, {0, 0x20, true}}
	if len(got) != len(want) {
		t.Fatalf("OnEvict calls = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("OnEvict[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestIntrospectorHotPCs checks the hot-PC table's ordering (misses
// descending, PC ascending on ties) and top-N truncation.
func TestIntrospectorHotPCs(t *testing.T) {
	miss := func(in *Introspector, addr uint32, n int) {
		for range n {
			in.Reference(addr, false)
		}
	}
	in := newIntro(0)
	miss(in, 0x300, 1)
	miss(in, 0x100, 3)
	miss(in, 0x400, 1)
	miss(in, 0x200, 2)

	all := in.Stats().HotPCs
	wantAll := []stats.CacheHotPC{{PC: 0x100, Misses: 3}, {PC: 0x200, Misses: 2}, {PC: 0x300, Misses: 1}, {PC: 0x400, Misses: 1}}
	if len(all) != len(wantAll) {
		t.Fatalf("HotPCs = %+v, want %+v", all, wantAll)
	}
	for i := range wantAll {
		if all[i] != wantAll[i] {
			t.Errorf("HotPCs[%d] = %+v, want %+v", i, all[i], wantAll[i])
		}
	}

	in2 := newIntro(2)
	miss(in2, 0x300, 1)
	miss(in2, 0x100, 3)
	miss(in2, 0x200, 2)
	top := in2.Stats().HotPCs
	if len(top) != 2 || top[0].PC != 0x100 || top[1].PC != 0x200 {
		t.Errorf("top-2 HotPCs = %+v", top)
	}
}

// TestFALRUSingleLine: the degenerate one-line shadow still behaves as a
// correct LRU of capacity one.
func TestFALRUSingleLine(t *testing.T) {
	var l faLRU
	l.init(1)
	l.reference(0x10)
	if !l.contains(0x10) {
		t.Fatal("0x10 missing after reference")
	}
	l.reference(0x20)
	if l.contains(0x10) || !l.contains(0x20) {
		t.Errorf("capacity-1 LRU holds 0x10=%v 0x20=%v, want false/true", l.contains(0x10), l.contains(0x20))
	}
	l.reference(0x20) // re-touch must not grow or corrupt the list
	l.reference(0x30)
	if l.contains(0x20) || !l.contains(0x30) {
		t.Errorf("after 0x30: 0x20=%v 0x30=%v, want false/true", l.contains(0x20), l.contains(0x30))
	}
}
