package cache

// This file is the cache-introspection core: the shadow models that
// classify every miss of the real direct-mapped array as compulsory,
// capacity or conflict (the standard 3C method), plus the per-set
// access/miss/eviction heatmap, dead-on-eviction tracking and the hot
// miss-PC table.
//
// Two shadow structures observe the engine's demand reference stream at
// line granularity:
//
//   - an infinite cache (the set of every line address ever referenced):
//     a miss on a never-seen line is compulsory — no finite cache avoids
//     it;
//   - a fully-associative LRU cache of the same capacity and line size:
//     a real-array miss that this shadow would have hit is a conflict of
//     the direct-mapped placement; a miss in both is a capacity miss.
//
// The shadows are fed from the fetch engines' own hit/miss accounting
// points (not from the array's Lookup counters), so the per-class counts
// sum exactly to the engine's CacheMisses statistic by construction. The
// introspector is purely observational: it never influences the array or
// the engines, so cycle counts are bit-identical with introspection on or
// off.

import (
	"sort"

	"pipesim/internal/stats"
)

// Introspector classifies the misses of one cache array and accumulates
// the attribution tables. It is single-goroutine, like the simulator core
// that drives it.
type Introspector struct {
	lineBytes uint32
	nLines    uint32

	seen map[uint32]struct{} // infinite shadow: line addresses ever referenced
	fa   faLRU               // equal-size fully-associative LRU shadow

	sets    []stats.CacheSetStats
	lineHit []bool // resident line of each set has hit since its fill

	classes   [stats.NumMissClasses]uint64
	evictions uint64
	dead      uint64

	hot  map[uint32]uint64 // miss PC -> miss count
	topN int

	// OnEvict, when set, observes every eviction of the real array:
	// the set index, the displaced line address, and whether the line was
	// dead (never referenced after its fill). The simulator core wires it
	// to emit obs.KindCacheEvict probe events.
	OnEvict func(set int, lineAddr uint32, dead bool)
}

// NewIntrospector builds an introspector for a direct-mapped cache of the
// given geometry. topN bounds the hot miss-PC table returned by Stats
// (<= 0 keeps every PC).
func NewIntrospector(sizeBytes, lineBytes, topN int) *Introspector {
	nLines := sizeBytes / lineBytes
	in := &Introspector{
		lineBytes: uint32(lineBytes),
		nLines:    uint32(nLines),
		seen:      make(map[uint32]struct{}),
		sets:      make([]stats.CacheSetStats, nLines),
		lineHit:   make([]bool, nLines),
		hot:       make(map[uint32]uint64),
		topN:      topN,
	}
	in.fa.init(nLines)
	return in
}

// set returns the direct-mapped frame index of addr.
func (in *Introspector) set(addr uint32) int {
	return int((addr / in.lineBytes) % in.nLines)
}

// Reference observes one demand reference of the fetch engine at its own
// hit/miss accounting point and returns the miss class (MissUnclassified
// for a hit). Both shadows see every reference — hits included — so the
// fully-associative shadow's LRU order tracks true recency.
func (in *Introspector) Reference(addr uint32, hit bool) stats.MissClass {
	line := addr - addr%in.lineBytes
	set := in.set(addr)
	s := &in.sets[set]
	s.Accesses++
	class := stats.MissUnclassified
	_, seen := in.seen[line]
	if hit {
		in.lineHit[set] = true
	} else {
		s.Misses++
		in.hot[addr]++
		switch {
		case !seen:
			class = stats.MissCompulsory
		case in.fa.contains(line):
			class = stats.MissConflict
		default:
			class = stats.MissCapacity
		}
		in.classes[class]++
	}
	if !seen {
		in.seen[line] = struct{}{}
	}
	in.fa.reference(line)
	return class
}

// TrackFill records that the array claimed frame `set` for a new tag,
// displacing the resident line at oldLine when evicted is true. Called by
// Cache.FillSub/FillLine on their tag-change branch.
func (in *Introspector) TrackFill(set int, evicted bool, oldLine uint32) {
	if evicted {
		dead := !in.lineHit[set]
		in.evictions++
		in.sets[set].Evictions++
		if dead {
			in.dead++
			in.sets[set].DeadEvictions++
		}
		if in.OnEvict != nil {
			in.OnEvict(set, oldLine, dead)
		}
	}
	in.lineHit[set] = false
}

// Classes returns the per-class miss totals accumulated so far.
func (in *Introspector) Classes() [stats.NumMissClasses]uint64 { return in.classes }

// Stats snapshots the collected attribution into a plain-data block: the
// class totals, the per-set heatmap, eviction counts and the hot miss PCs
// sorted by miss count (descending, ties by ascending PC), truncated to
// the configured top N.
func (in *Introspector) Stats() *stats.CacheStats {
	out := &stats.CacheStats{
		Compulsory:    in.classes[stats.MissCompulsory],
		Capacity:      in.classes[stats.MissCapacity],
		Conflict:      in.classes[stats.MissConflict],
		Evictions:     in.evictions,
		DeadEvictions: in.dead,
		Sets:          append([]stats.CacheSetStats(nil), in.sets...),
	}
	if len(in.hot) > 0 {
		pcs := make([]stats.CacheHotPC, 0, len(in.hot))
		for pc, n := range in.hot {
			pcs = append(pcs, stats.CacheHotPC{PC: pc, Misses: n})
		}
		sort.Slice(pcs, func(i, j int) bool {
			if pcs[i].Misses != pcs[j].Misses {
				return pcs[i].Misses > pcs[j].Misses
			}
			return pcs[i].PC < pcs[j].PC
		})
		if in.topN > 0 && len(pcs) > in.topN {
			pcs = pcs[:in.topN]
		}
		out.HotPCs = pcs
	}
	return out
}

// faLRU is the fully-associative LRU shadow: a map plus an index-linked
// circular list (node 0 is the sentinel), preallocated to the cache's
// line count so steady-state references allocate nothing.
type faLRU struct {
	cap   int
	index map[uint32]int
	nodes []faNode // nodes[0] is the sentinel; head.next = MRU, head.prev = LRU
	free  []int
}

type faNode struct {
	prev, next int
	addr       uint32
}

func (l *faLRU) init(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	l.cap = capacity
	l.index = make(map[uint32]int, capacity)
	l.nodes = make([]faNode, 1, capacity+1)
	l.nodes[0] = faNode{prev: 0, next: 0}
}

// contains reports whether line is resident, without touching recency.
func (l *faLRU) contains(line uint32) bool {
	_, ok := l.index[line]
	return ok
}

// reference touches line as most recently used, inserting it (and evicting
// the LRU line if full) when absent.
func (l *faLRU) reference(line uint32) {
	if i, ok := l.index[line]; ok {
		l.unlink(i)
		l.pushFront(i)
		return
	}
	if len(l.index) >= l.cap {
		lru := l.nodes[0].prev
		l.unlink(lru)
		delete(l.index, l.nodes[lru].addr)
		l.free = append(l.free, lru)
	}
	var i int
	if n := len(l.free); n > 0 {
		i = l.free[n-1]
		l.free = l.free[:n-1]
		l.nodes[i].addr = line
	} else {
		i = len(l.nodes)
		l.nodes = append(l.nodes, faNode{addr: line})
	}
	l.index[line] = i
	l.pushFront(i)
}

func (l *faLRU) unlink(i int) {
	n := &l.nodes[i]
	l.nodes[n.prev].next = n.next
	l.nodes[n.next].prev = n.prev
}

func (l *faLRU) pushFront(i int) {
	head := &l.nodes[0]
	n := &l.nodes[i]
	n.prev, n.next = 0, head.next
	l.nodes[head.next].prev = i
	head.next = i
}
