// Package cache implements the direct-mapped, sub-blocked on-chip
// instruction cache array shared by both fetch strategies in the paper.
//
// The cache tracks only presence (tags and per-sub-block valid bits), not
// instruction bytes: the simulator reads instruction words from the program
// image, and the cache decides whether doing so costs an off-chip access.
// This is the standard arrangement for trace-driven cache simulation and is
// timing-equivalent to storing the bytes.
//
// Hill's conventional always-prefetch cache uses one-instruction (4-byte)
// sub-blocks with individual valid bits; the PIPE cache fills whole lines,
// which the same structure models by setting every sub-block of a line.
package cache

import "fmt"

// Cache is a direct-mapped cache with sub-block valid bits.
type Cache struct {
	sizeBytes     int
	lineBytes     int
	subBlockBytes int

	nLines      int
	subsPerLine int
	tags        []uint32
	tagValid    []bool
	valid       []bool // nLines * subsPerLine

	// Precomputed shift/mask forms of the geometry divisions. Every
	// field is a power of two (enforced by New), and index/tag/sub sit
	// on the per-word hot path of both fetch engines, where a hardware
	// divide per probe is measurable.
	lineShift uint32 // log2(lineBytes)
	indexMask uint32 // nLines - 1
	tagShift  uint32 // log2(lineBytes * nLines)
	subShift  uint32 // log2(subBlockBytes)
	lineMask  uint32 // lineBytes - 1
	subsShift uint32 // log2(subsPerLine)

	// Hits and Misses count Lookup results since the last Reset.
	Hits   uint64
	Misses uint64

	// intr, when attached, observes evictions (tag replacements) for the
	// introspection heatmaps. Fill paths pay one nil check when detached.
	intr *Introspector
}

// New constructs a cache. Size, line and sub-block must be powers of two
// with subBlock <= line <= size.
func New(sizeBytes, lineBytes, subBlockBytes int) (*Cache, error) {
	for _, v := range []struct {
		name string
		n    int
	}{{"size", sizeBytes}, {"line", lineBytes}, {"sub-block", subBlockBytes}} {
		if v.n <= 0 || v.n&(v.n-1) != 0 {
			return nil, fmt.Errorf("cache: %s %d must be a positive power of two", v.name, v.n)
		}
	}
	if subBlockBytes > lineBytes {
		return nil, fmt.Errorf("cache: sub-block %d larger than line %d", subBlockBytes, lineBytes)
	}
	if lineBytes > sizeBytes {
		return nil, fmt.Errorf("cache: line %d larger than cache %d", lineBytes, sizeBytes)
	}
	c := &Cache{
		sizeBytes:     sizeBytes,
		lineBytes:     lineBytes,
		subBlockBytes: subBlockBytes,
		nLines:        sizeBytes / lineBytes,
		subsPerLine:   lineBytes / subBlockBytes,
	}
	c.tags = make([]uint32, c.nLines)
	c.tagValid = make([]bool, c.nLines)
	c.valid = make([]bool, c.nLines*c.subsPerLine)
	c.lineShift = log2u(uint32(lineBytes))
	c.indexMask = uint32(c.nLines - 1)
	c.tagShift = c.lineShift + log2u(uint32(c.nLines))
	c.subShift = log2u(uint32(subBlockBytes))
	c.lineMask = uint32(lineBytes - 1)
	c.subsShift = log2u(uint32(c.subsPerLine))
	return c, nil
}

// log2u returns log2 of a power of two.
func log2u(v uint32) uint32 {
	var n uint32
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// SizeBytes returns the cache capacity.
func (c *Cache) SizeBytes() int { return c.sizeBytes }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// SubBlockBytes returns the sub-block size.
func (c *Cache) SubBlockBytes() int { return c.subBlockBytes }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint32) uint32 { return addr &^ uint32(c.lineBytes-1) }

// SetIntrospector attaches the introspection observer to the array's fill
// paths (nil detaches). The observer sees every tag replacement; it never
// influences the array's contents or counters.
func (c *Cache) SetIntrospector(in *Introspector) { c.intr = in }

// residentLine reconstructs the line address resident in frame i from its
// stored tag.
func (c *Cache) residentLine(i int) uint32 {
	return (c.tags[i]*uint32(c.nLines) + uint32(i)) * uint32(c.lineBytes)
}

func (c *Cache) index(addr uint32) int {
	return int((addr >> c.lineShift) & c.indexMask)
}

func (c *Cache) tag(addr uint32) uint32 {
	return addr >> c.tagShift
}

func (c *Cache) sub(addr uint32) int {
	return int((addr & c.lineMask) >> c.subShift)
}

// Present reports whether the sub-block containing addr is valid, without
// touching the hit/miss counters. Use for prefetch-side probes.
func (c *Cache) Present(addr uint32) bool {
	i := c.index(addr)
	return c.tagValid[i] && c.tags[i] == c.tag(addr) && c.valid[i*c.subsPerLine+c.sub(addr)]
}

// LinePresent reports whether every sub-block of the line containing addr
// is valid.
func (c *Cache) LinePresent(addr uint32) bool {
	i := c.index(addr)
	if !c.tagValid[i] || c.tags[i] != c.tag(addr) {
		return false
	}
	for s := 0; s < c.subsPerLine; s++ {
		if !c.valid[i*c.subsPerLine+s] {
			return false
		}
	}
	return true
}

// Lookup probes for the sub-block containing addr and counts a hit or miss.
func (c *Cache) Lookup(addr uint32) bool {
	if c.Present(addr) {
		c.Hits++
		return true
	}
	c.Misses++
	return false
}

// LookupLine probes for the full line containing addr and counts a hit or
// miss.
func (c *Cache) LookupLine(addr uint32) bool {
	if c.LinePresent(addr) {
		c.Hits++
		return true
	}
	c.Misses++
	return false
}

// FillSub makes the sub-block containing addr valid, claiming the line for
// addr's tag. If the tag differs from the resident line, every other
// sub-block of the frame is invalidated first.
func (c *Cache) FillSub(addr uint32) {
	i := c.index(addr)
	t := c.tag(addr)
	if !c.tagValid[i] || c.tags[i] != t {
		if c.intr != nil {
			c.intr.TrackFill(i, c.tagValid[i], c.residentLine(i))
		}
		c.tagValid[i] = true
		c.tags[i] = t
		for s := 0; s < c.subsPerLine; s++ {
			c.valid[i*c.subsPerLine+s] = false
		}
	}
	c.valid[i*c.subsPerLine+c.sub(addr)] = true
}

// FillLine makes the whole line containing addr valid.
func (c *Cache) FillLine(addr uint32) {
	i := c.index(addr)
	t := c.tag(addr)
	if c.intr != nil && (!c.tagValid[i] || c.tags[i] != t) {
		c.intr.TrackFill(i, c.tagValid[i], c.residentLine(i))
	}
	c.tagValid[i] = true
	c.tags[i] = t
	for s := 0; s < c.subsPerLine; s++ {
		c.valid[i*c.subsPerLine+s] = true
	}
}

// Reset invalidates the whole cache and clears the counters.
func (c *Cache) Reset() {
	for i := range c.tagValid {
		c.tagValid[i] = false
	}
	for i := range c.valid {
		c.valid[i] = false
	}
	c.Hits, c.Misses = 0, 0
}
