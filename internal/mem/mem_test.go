package mem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipesim/internal/program"
	"pipesim/internal/stats"
)

func testImage(t *testing.T) *program.Image {
	t.Helper()
	b := program.NewBuilder()
	b.Halt()
	b.DataLabel("v")
	for i := 0; i < 64; i++ {
		b.Word(uint32(0x1000 + i))
	}
	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func newSys(t *testing.T, cfg Config) (*System, *stats.Mem) {
	t.Helper()
	st := &stats.Mem{}
	s, err := New(cfg, testImage(t), st)
	if err != nil {
		t.Fatal(err)
	}
	return s, st
}

type delivery struct {
	cycle uint64
	addr  uint32
	word  uint32
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{AccessTime: 0, BusWidthBytes: 4, FPULatency: 4},
		{AccessTime: 1, BusWidthBytes: 3, FPULatency: 4},
		{AccessTime: 1, BusWidthBytes: 4, FPULatency: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
	good := Config{AccessTime: 6, BusWidthBytes: 8, FPULatency: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(%+v) = %v", good, err)
	}
}

// TestReadTimingTable checks first-word latency and transfer counts for the
// parameter combinations used in the paper's figures.
func TestReadTimingTable(t *testing.T) {
	cases := []struct {
		name        string
		accessTime  int
		busWidth    int
		size        int
		wantCycles  []uint64 // cycles (relative to acceptance) words arrive
		wantPerWord int
	}{
		{"T1_W4_4B", 1, 4, 4, []uint64{1}, 1},
		{"T1_W8_8B", 1, 8, 8, []uint64{1, 1}, 1},
		{"T6_W4_16B", 6, 4, 16, []uint64{6, 7, 8, 9}, 1},
		{"T6_W8_16B", 6, 8, 16, []uint64{6, 6, 7, 7}, 1},
		{"T6_W8_32B", 6, 8, 32, []uint64{6, 6, 7, 7, 8, 8, 9, 9}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, _ := newSys(t, Config{AccessTime: c.accessTime, BusWidthBytes: c.busWidth, FPULatency: 4})
			var got []delivery
			s.Submit(&Request{
				Kind: stats.ReqDataLoad,
				Addr: program.DataBase,
				Size: c.size,
				OnWord: func(addr, w uint32, _ uint64) {
					got = append(got, delivery{cycle: s.Cycle(), addr: addr, word: w})
				},
			})
			for cyc := uint64(1); cyc <= 40; cyc++ {
				s.Tick(cyc)
			}
			if len(got) != len(c.wantCycles) {
				t.Fatalf("delivered %d words, want %d", len(got), len(c.wantCycles))
			}
			// Request is accepted at cycle 1 (first tick).
			for i, d := range got {
				if d.cycle != 1+c.wantCycles[i] {
					t.Errorf("word %d at cycle %d, want %d", i, d.cycle, 1+c.wantCycles[i])
				}
				wantAddr := program.DataBase + uint32(4*i)
				if d.addr != wantAddr {
					t.Errorf("word %d addr %#x, want %#x", i, d.addr, wantAddr)
				}
				if d.word != uint32(0x1000+i) {
					t.Errorf("word %d value %#x, want %#x", i, d.word, 0x1000+i)
				}
			}
		})
	}
}

// TestNonPipelinedAcceptanceCadence verifies the initiation interval
// T + n - 1 for back-to-back single requests, including the paper's claim
// that pipelining is irrelevant at T=1 with single transfers.
func TestNonPipelinedAcceptanceCadence(t *testing.T) {
	cases := []struct {
		accessTime, busWidth, size int
		pipelined                  bool
		wantInterval               uint64 // between consecutive first words
	}{
		{1, 4, 4, false, 1}, // T=1: one request per cycle even non-pipelined
		{1, 4, 4, true, 1},
		{6, 4, 4, false, 6},
		{6, 4, 4, true, 1}, // pipelined: bus-limited, 1 word/cycle
		{6, 8, 16, false, 7},
		{6, 8, 16, true, 2}, // two transfers per request
	}
	for _, c := range cases {
		s, _ := newSys(t, Config{AccessTime: c.accessTime, BusWidthBytes: c.busWidth, Pipelined: c.pipelined, FPULatency: 4})
		var firstWords []uint64
		for i := 0; i < 3; i++ {
			idx := i
			s.Submit(&Request{
				Kind: stats.ReqDataLoad,
				Addr: program.DataBase + uint32(idx*c.size),
				Size: c.size,
				OnWord: func(addr, _ uint32, _ uint64) {
					if int(addr-program.DataBase) == idx*c.size {
						firstWords = append(firstWords, s.Cycle())
					}
				},
			})
		}
		for cyc := uint64(1); cyc <= 100; cyc++ {
			s.Tick(cyc)
		}
		if len(firstWords) != 3 {
			t.Fatalf("%+v: got %d responses", c, len(firstWords))
		}
		for i := 1; i < 3; i++ {
			if got := firstWords[i] - firstWords[i-1]; got != c.wantInterval {
				t.Errorf("config %+v: interval %d, want %d", c, got, c.wantInterval)
			}
		}
	}
}

// TestPipelinedOverlappingRequests: with pipelined memory, two multi-word
// requests accepted on consecutive cycles overlap their access times and
// serialize only on the input bus.
func TestPipelinedOverlappingRequests(t *testing.T) {
	s, _ := newSys(t, Config{AccessTime: 6, BusWidthBytes: 8, Pipelined: true, FPULatency: 4})
	type arrival struct {
		addr  uint32
		cycle uint64
	}
	var got []arrival
	for i := 0; i < 2; i++ {
		s.Submit(&Request{
			Kind: stats.ReqDataLoad,
			Addr: program.DataBase + uint32(16*i),
			Size: 16,
			OnWord: func(addr, _ uint32, _ uint64) {
				got = append(got, arrival{addr: addr, cycle: s.Cycle()})
			},
		})
	}
	for cyc := uint64(1); cyc <= 30; cyc++ {
		s.Tick(cyc)
	}
	if len(got) != 8 {
		t.Fatalf("delivered %d words", len(got))
	}
	// Request 0 accepted at 1: transfers at 7,7,8,8. Request 1 accepted
	// at 2: earliest at 8, but the bus is busy until 9: transfers 9,9,10,10.
	wantCycles := []uint64{7, 7, 8, 8, 9, 9, 10, 10}
	for i, a := range got {
		if a.cycle != wantCycles[i] {
			t.Errorf("word %d arrived at %d, want %d", i, a.cycle, wantCycles[i])
		}
	}
	// Words of the two requests must not interleave.
	for i := 0; i < 4; i++ {
		if got[i].addr >= program.DataBase+16 {
			t.Errorf("request 1 word delivered before request 0 finished")
		}
	}
}

func TestStoreAppliesAndCompletes(t *testing.T) {
	s, st := newSys(t, Config{AccessTime: 6, BusWidthBytes: 4, FPULatency: 4})
	var doneAt uint64
	s.Submit(&Request{
		Kind:       stats.ReqDataStore,
		Addr:       program.DataBase + 8,
		Size:       4,
		Store:      true,
		Data:       []uint32{0xDEAD},
		OnComplete: func(_ uint64) { doneAt = s.Cycle() },
	})
	for cyc := uint64(1); cyc <= 20; cyc++ {
		s.Tick(cyc)
	}
	if got := s.ReadWord(program.DataBase + 8); got != 0xDEAD {
		t.Errorf("stored word = %#x", got)
	}
	if doneAt != 7 { // accepted at 1, completes at 1+6
		t.Errorf("store completed at %d, want 7", doneAt)
	}
	if st.StoreWords != 1 {
		t.Errorf("StoreWords = %d", st.StoreWords)
	}
}

func TestLoadSnapshotsAtAcceptance(t *testing.T) {
	// A load accepted before a (timing-bypassed) later write must return
	// the old value even though it delivers after the write.
	s, _ := newSys(t, Config{AccessTime: 6, BusWidthBytes: 4, FPULatency: 4})
	var got uint32
	s.Submit(&Request{
		Kind: stats.ReqDataLoad, Addr: program.DataBase, Size: 4,
		OnWord: func(_, w uint32, _ uint64) { got = w },
	})
	s.Tick(1) // accepted here
	s.WriteWord(program.DataBase, 0xFFFF)
	for cyc := uint64(2); cyc <= 10; cyc++ {
		s.Tick(cyc)
	}
	if got != 0x1000 {
		t.Errorf("load observed %#x, want acceptance-time value 0x1000", got)
	}
}

func TestArbitrationPriorityInstrFirst(t *testing.T) {
	s, st := newSys(t, Config{AccessTime: 6, BusWidthBytes: 4, InstrPriority: true, FPULatency: 4})
	order := []stats.ReqKind{}
	mk := func(kind stats.ReqKind, addr uint32) *Request {
		return &Request{
			Kind: kind, Addr: addr, Size: 4,
			OnWord: func(_, _ uint32, _ uint64) {},
			OnComplete: func(_ uint64) {
				order = append(order, kind)
			},
		}
	}
	// Submit in inverse priority order; acceptance should re-sort them.
	s.Submit(mk(stats.ReqIPrefetch, program.DataBase))
	s.Submit(mk(stats.ReqDataLoad, program.DataBase+4))
	s.Submit(mk(stats.ReqIFetch, program.TextBase))
	for cyc := uint64(1); cyc <= 60; cyc++ {
		s.Tick(cyc)
	}
	want := []stats.ReqKind{stats.ReqIFetch, stats.ReqDataLoad, stats.ReqIPrefetch}
	if len(order) != len(want) {
		t.Fatalf("completions = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order = %v, want %v", order, want)
		}
	}
	if st.Accepted[stats.ReqIFetch] != 1 || st.Accepted[stats.ReqDataLoad] != 1 {
		t.Error("acceptance counters wrong")
	}
}

func TestArbitrationPriorityDataFirst(t *testing.T) {
	s, _ := newSys(t, Config{AccessTime: 6, BusWidthBytes: 4, InstrPriority: false, FPULatency: 4})
	var order []stats.ReqKind
	mk := func(kind stats.ReqKind, addr uint32) *Request {
		return &Request{
			Kind: kind, Addr: addr, Size: 4,
			OnWord:     func(_, _ uint32, _ uint64) {},
			OnComplete: func(_ uint64) { order = append(order, kind) },
		}
	}
	s.Submit(mk(stats.ReqIFetch, program.TextBase))
	s.Submit(mk(stats.ReqDataLoad, program.DataBase))
	for cyc := uint64(1); cyc <= 40; cyc++ {
		s.Tick(cyc)
	}
	if len(order) != 2 || order[0] != stats.ReqDataLoad {
		t.Fatalf("order = %v, want data load first", order)
	}
}

func TestCancelQueuedRequest(t *testing.T) {
	s, st := newSys(t, Config{AccessTime: 6, BusWidthBytes: 4, FPULatency: 4})
	delivered := false
	// Occupy the memory with a load, then queue a prefetch and cancel it
	// before it can be accepted.
	s.Submit(&Request{Kind: stats.ReqDataLoad, Addr: program.DataBase, Size: 4})
	h := s.Submit(&Request{
		Kind: stats.ReqIPrefetch, Addr: program.TextBase, Size: 4,
		OnWord: func(_, _ uint32, _ uint64) { delivered = true },
	})
	s.Tick(1)
	if !h.Queued() {
		t.Fatal("prefetch should still be queued behind the busy memory")
	}
	if !h.Cancel() {
		t.Fatal("Cancel failed on queued request")
	}
	if h.Cancel() {
		t.Fatal("second Cancel succeeded")
	}
	for cyc := uint64(2); cyc <= 40; cyc++ {
		s.Tick(cyc)
	}
	if delivered {
		t.Error("canceled prefetch still delivered")
	}
	if st.Accepted[stats.ReqIPrefetch] != 0 {
		t.Error("canceled prefetch was accepted")
	}
	if !s.Drained() {
		t.Error("system not drained after cancel")
	}
}

func TestCancelAcceptedRequestFails(t *testing.T) {
	s, _ := newSys(t, Config{AccessTime: 6, BusWidthBytes: 4, FPULatency: 4})
	h := s.Submit(&Request{Kind: stats.ReqDataLoad, Addr: program.DataBase, Size: 4})
	s.Tick(1)
	if h.Queued() || h.Cancel() {
		t.Error("accepted request reported queued / canceled")
	}
}

func TestFPUMultiplyProtocol(t *testing.T) {
	s, st := newSys(t, Config{AccessTime: 1, BusWidthBytes: 4, FPULatency: 4})
	var result uint32
	var seq uint64
	var at uint64
	s.FPUSink = func(sq uint64, v uint32) { result, seq, at = v, sq, s.Cycle() }
	a, b := float32(2.5), float32(4.0)
	s.Submit(&Request{Kind: stats.ReqDataStore, Store: true, Addr: AddrFPUA, Size: 4,
		Data: []uint32{math.Float32bits(a)}})
	s.Submit(&Request{Kind: stats.ReqDataStore, Store: true, Addr: AddrFPUMul, Size: 4,
		Data: []uint32{math.Float32bits(b)}, Seq: 77})
	for cyc := uint64(1); cyc <= 40; cyc++ {
		s.Tick(cyc)
	}
	if math.Float32frombits(result) != 10.0 {
		t.Errorf("FPU result = %v, want 10", math.Float32frombits(result))
	}
	if seq != 77 {
		t.Errorf("FPU seq = %d, want 77", seq)
	}
	if st.FPUOps != 1 {
		t.Errorf("FPUOps = %d", st.FPUOps)
	}
	// Trigger store accepted at cycle 2 (store A at 1), arrives at 2+1,
	// ready at 3+4=7, result request submitted at 7, accepted at 7,
	// bus transfer at 8.
	if at != 8 {
		t.Errorf("FPU result delivered at %d, want 8", at)
	}
}

func TestFPUAllOps(t *testing.T) {
	ops := []struct {
		trigger uint32
		want    float32
	}{
		{AddrFPUMul, 3 * 7},
		{AddrFPUAdd, 3 + 7},
		{AddrFPUSub, 3 - 7},
		{AddrFPUDiv, 3.0 / 7.0},
	}
	for _, op := range ops {
		s, _ := newSys(t, Config{AccessTime: 1, BusWidthBytes: 4, FPULatency: 4})
		var result uint32
		s.FPUSink = func(_ uint64, v uint32) { result = v }
		s.Submit(&Request{Kind: stats.ReqDataStore, Store: true, Addr: AddrFPUA, Size: 4,
			Data: []uint32{math.Float32bits(3)}})
		s.Submit(&Request{Kind: stats.ReqDataStore, Store: true, Addr: op.trigger, Size: 4,
			Data: []uint32{math.Float32bits(7)}})
		for cyc := uint64(1); cyc <= 40; cyc++ {
			s.Tick(cyc)
		}
		if got := math.Float32frombits(result); got != op.want {
			t.Errorf("trigger %#x: result = %v, want %v", op.trigger, got, op.want)
		}
	}
}

func TestFPUSerializesOperations(t *testing.T) {
	// Two back-to-back multiplies must finish FPULatency apart, not
	// together: the unit is not internally pipelined.
	s, _ := newSys(t, Config{AccessTime: 1, BusWidthBytes: 4, FPULatency: 4})
	var arrivals []uint64
	s.FPUSink = func(_ uint64, _ uint32) { arrivals = append(arrivals, s.Cycle()) }
	for i := 0; i < 2; i++ {
		s.Submit(&Request{Kind: stats.ReqDataStore, Store: true, Addr: AddrFPUA, Size: 4,
			Data: []uint32{math.Float32bits(1)}})
		s.Submit(&Request{Kind: stats.ReqDataStore, Store: true, Addr: AddrFPUMul, Size: 4,
			Data: []uint32{math.Float32bits(1)}})
	}
	for cyc := uint64(1); cyc <= 60; cyc++ {
		s.Tick(cyc)
	}
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[1]-arrivals[0] < 4 {
		t.Errorf("second result only %d cycles after first; FPU must serialize", arrivals[1]-arrivals[0])
	}
}

func TestIsFPUTrigger(t *testing.T) {
	for _, a := range []uint32{AddrFPUMul, AddrFPUAdd, AddrFPUSub, AddrFPUDiv} {
		if !IsFPUTrigger(a) {
			t.Errorf("IsFPUTrigger(%#x) = false", a)
		}
	}
	if IsFPUTrigger(AddrFPUA) || IsFPUTrigger(program.DataBase) {
		t.Error("non-trigger address reported as trigger")
	}
}

func TestFPUResultBypassesBusyMemory(t *testing.T) {
	// With non-pipelined slow memory saturated by loads, FPU results
	// (which need only the input bus) must still get through.
	s, _ := newSys(t, Config{AccessTime: 6, BusWidthBytes: 4, FPULatency: 4, InstrPriority: true})
	gotResult := false
	s.FPUSink = func(_ uint64, _ uint32) { gotResult = true }
	s.Submit(&Request{Kind: stats.ReqDataStore, Store: true, Addr: AddrFPUA, Size: 4,
		Data: []uint32{math.Float32bits(1)}})
	s.Submit(&Request{Kind: stats.ReqDataStore, Store: true, Addr: AddrFPUMul, Size: 4,
		Data: []uint32{math.Float32bits(1)}})
	var resultAt uint64
	for cyc := uint64(1); cyc <= 64; cyc++ {
		// Keep the memory permanently busy with queued loads from cycle
		// 8 on (after the operand stores have been accepted).
		if cyc >= 8 {
			s.Submit(&Request{Kind: stats.ReqDataLoad, Addr: program.DataBase, Size: 4})
		}
		s.Tick(cyc)
		if gotResult && resultAt == 0 {
			resultAt = cyc
		}
	}
	if !gotResult {
		t.Fatal("FPU result starved behind busy memory")
	}
	// Operand A accepted at 1, trigger at 7 (store occupies memory 6
	// cycles), op starts when the trigger store completes at 13, ready at
	// 17, bus transfer shortly after — well before the load queue drains.
	if resultAt > 25 {
		t.Errorf("FPU result arrived at cycle %d; it should bypass the busy memory", resultAt)
	}
}

func TestMalformedRequestsPanic(t *testing.T) {
	s, _ := newSys(t, Config{AccessTime: 1, BusWidthBytes: 4, FPULatency: 4})
	bad := []*Request{
		{Kind: stats.ReqDataLoad, Addr: 2, Size: 4},                                  // unaligned
		{Kind: stats.ReqDataLoad, Addr: 0, Size: 0},                                  // empty
		{Kind: stats.ReqDataLoad, Addr: 0, Size: 6},                                  // not word multiple
		{Kind: stats.ReqDataStore, Addr: 0, Size: 8, Store: true, Data: []uint32{1}}, // short data
	}
	for _, r := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Submit(%+v) did not panic", r)
				}
			}()
			s.Submit(r)
		}()
	}
}

// TestQuickDeliveryInvariants drives a random request mix and checks the
// invariants every configuration must uphold: words arrive in address order
// per request, never earlier than acceptance+T, the input bus is never
// double-booked, and every non-canceled request completes.
func TestQuickDeliveryInvariants(t *testing.T) {
	f := func(seed int64, pipelined bool, t6 bool, wide bool) bool {
		cfg := Config{AccessTime: 1, BusWidthBytes: 4, Pipelined: pipelined, FPULatency: 4}
		if t6 {
			cfg.AccessTime = 6
		}
		if wide {
			cfg.BusWidthBytes = 8
		}
		st := &stats.Mem{}
		b := program.NewBuilder()
		b.Halt()
		b.Space(256)
		img, _ := b.Link()
		s, err := New(cfg, img, st)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		type tracker struct {
			lastAddr  int64
			lastCycle uint64
			complete  bool
			submitted uint64
			words     int
			expected  int
		}
		var trackers []*tracker
		busCycles := map[uint64]int{}
		submitted := 0
		for cyc := uint64(1); cyc <= 400; cyc++ {
			if submitted < 25 && rng.Intn(3) == 0 {
				size := 4 * (1 + rng.Intn(8))
				tr := &tracker{lastAddr: -1, submitted: cyc, expected: size / 4}
				trackers = append(trackers, tr)
				kind := []stats.ReqKind{stats.ReqDataLoad, stats.ReqIFetch, stats.ReqIPrefetch}[rng.Intn(3)]
				s.Submit(&Request{
					Kind: kind,
					Addr: program.DataBase + uint32(4*rng.Intn(64)),
					Size: size,
					OnWord: func(addr, _ uint32, _ uint64) {
						if int64(addr) <= tr.lastAddr {
							t.Errorf("out-of-order word delivery")
						}
						tr.lastAddr = int64(addr)
						tr.lastCycle = s.Cycle()
						tr.words++
						busCycles[s.Cycle()]++
					},
					OnComplete: func(_ uint64) { tr.complete = true },
				})
				submitted++
			}
			s.Tick(cyc)
		}
		wordsPerCycle := cfg.BusWidthBytes / 4
		for c, n := range busCycles {
			if n > wordsPerCycle {
				t.Errorf("cycle %d carried %d words on a %d-byte bus", c, n, cfg.BusWidthBytes)
				return false
			}
		}
		for _, tr := range trackers {
			if !tr.complete || tr.words != tr.expected {
				return false
			}
			if tr.lastCycle < tr.submitted+uint64(cfg.AccessTime) {
				return false
			}
		}
		return s.Drained()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
