// Package mem models everything off-chip: the large external cache that
// services both instruction and data requests (assumed to hit 100% of the
// time, as in the paper), the separate input and output busses that connect
// it to the processor, the priority arbitration between request classes,
// and the memory-mapped external floating point unit.
//
// # Timing model
//
// A request accepted at cycle t for s bytes with input-bus width w delivers
// ⌈s/w⌉ transfers on the input bus at cycles t+T, t+T+1, …, where T is the
// external memory access time.
//
//   - Non-pipelined memory may accept its next request at cycle t+T+⌈s/w⌉−1:
//     the address of the next request may overlap the final data transfer.
//     With T=1 and single-transfer requests this sustains one request per
//     cycle, which is why the paper notes that pipelining is irrelevant at a
//     1-cycle access time.
//   - Pipelined memory accepts a new request every cycle; input-bus
//     transfers from distinct requests serialize in acceptance order.
//
// Stores carry their data on the output bus and occupy the (non-pipelined)
// memory for T cycles; they use no input-bus slots. Floating-point results
// are produced by the FPU, not the memory, and compete only for the input
// bus, at their own (low) arbitration priority.
//
// # Arbitration
//
// At most one request is accepted per cycle, picked from the per-class FIFO
// queues in priority order. With instruction priority (used for all results
// presented in the paper) the order is: instruction demand fetch, data
// loads, data stores, FPU results, instruction prefetch. Without it, data
// loads and stores outrank instruction fetch.
package mem

import (
	"fmt"
	"math"

	"pipesim/internal/obs"
	"pipesim/internal/program"
	"pipesim/internal/queue"
	"pipesim/internal/stats"
)

// Config selects the memory-system parameters varied in the paper.
type Config struct {
	// AccessTime is the external memory access time T in processor cycles
	// (the paper sweeps 1, 2, 3 and 6).
	AccessTime int
	// BusWidthBytes is the width of the input (return) bus in bytes (the
	// paper uses 4 and 8).
	BusWidthBytes int
	// Pipelined permits the memory to accept a new request every cycle.
	Pipelined bool
	// InstrPriority gives instruction fetches priority over data requests
	// at the memory interface (selected for all presented results).
	InstrPriority bool
	// FPULatency is the external floating-point operation time in cycles
	// (the paper holds it constant at 4).
	FPULatency int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.AccessTime < 1 {
		return fmt.Errorf("mem: access time %d must be >= 1", c.AccessTime)
	}
	if c.BusWidthBytes != 4 && c.BusWidthBytes != 8 && c.BusWidthBytes != 16 {
		return fmt.Errorf("mem: bus width %d bytes not supported (want 4, 8 or 16)", c.BusWidthBytes)
	}
	if c.FPULatency < 1 {
		return fmt.Errorf("mem: FPU latency %d must be >= 1", c.FPULatency)
	}
	return nil
}

// Memory-mapped FPU register addresses. A store to AddrFPUA latches operand
// A; a store to one of the operation addresses latches operand B and starts
// the operation, so "a pair of data stores ... will cause a multiply to
// occur" exactly as in the paper. The result returns autonomously over the
// input bus.
const (
	AddrFPUA   = program.FPUBase + 0
	AddrFPUMul = program.FPUBase + 4
	AddrFPUAdd = program.FPUBase + 8
	AddrFPUSub = program.FPUBase + 12
	AddrFPUDiv = program.FPUBase + 16
)

// IsFPUTrigger reports whether a store to addr starts a floating-point
// operation (and therefore produces a result that will occupy a load-data
// queue slot).
func IsFPUTrigger(addr uint32) bool {
	switch addr {
	case AddrFPUMul, AddrFPUAdd, AddrFPUSub, AddrFPUDiv:
		return true
	}
	return false
}

// Request is one off-chip transaction. Reads deliver words through OnWord
// (one call per word, in address order) and then call OnComplete; stores
// call only OnComplete. Seq is an opaque tag passed back to the callbacks.
//
// Requesters on the simulator's hot path obtain Requests from the owning
// System's pool via AllocRequest, which recycles them once they complete;
// a Request built directly with a composite literal works identically but
// is garbage-collected instead.
type Request struct {
	Kind       stats.ReqKind
	Addr       uint32 // must be 4-byte aligned
	Size       int    // bytes, multiple of 4
	Store      bool
	Data       []uint32 // store data, Size/4 words
	Seq        uint64
	OnWord     func(addr uint32, word uint32, seq uint64)
	OnComplete func(seq uint64)

	canceled bool
	accepted bool
	pooled   bool   // recycled by the System once completed or canceled
	gen      uint32 // bumped on recycle; stale Handles become inert

	fpuResult uint32 // FPU-result payload (internal requests only)
}

// Handle lets a requester cancel a request that has not yet been accepted
// by the memory interface (used by the conventional cache to replace a
// queued prefetch with a demand fetch). The generation tag makes a Handle
// held past its request's completion inert rather than aliasing whatever
// transaction reuses the pooled Request next.
type Handle struct {
	r   *Request
	gen uint32
}

// Cancel withdraws the request if it is still waiting for acceptance and
// reports whether it did so. A request already accepted runs to completion,
// as in the paper's single-outstanding-request model.
func (h Handle) Cancel() bool {
	if h.r == nil || h.r.gen != h.gen || h.r.accepted || h.r.canceled {
		return false
	}
	h.r.canceled = true
	return true
}

// Queued reports whether the request is still waiting (not accepted, not
// canceled).
func (h Handle) Queued() bool {
	return h.r != nil && h.r.gen == h.gen && !h.r.accepted && !h.r.canceled
}

type inflight struct {
	req           *Request
	firstTransfer uint64   // cycle of the first input-bus transfer
	transfers     int      // number of input-bus transfers
	done          uint64   // cycle OnComplete fires
	delivered     int      // words delivered so far
	word0         uint32   // single-word read data (the common case)
	data          []uint32 // multi-word read data; both are snapshotted at
	// acceptance so an in-flight load never observes a younger store
	hasData bool
}

type fpuOp struct {
	readyAt uint64
	result  uint32
	seq     uint64
}

// System is the complete off-chip world: memory, busses, arbiter and FPU.
type System struct {
	cfg Config
	st  *stats.Mem

	ram []uint32 // the full 20-bit word-indexed address space

	cycle          uint64
	queues         [numClasses]*queue.Queue[*Request]
	inflight       []*inflight
	memFreeAt      uint64 // non-pipelined: earliest next acceptance
	inputBusFreeAt uint64 // watermark of the next free input-bus cycle

	// Cached earliest-action cycles, so the per-cycle BeginCycle phases
	// and NextEvent are O(1) instead of scanning transaction lists. Both
	// are conservative: they may be earlier than the true next action
	// (the scan then runs and re-tightens them) but never later.
	nextInflightAt uint64 // min over inflight of next transfer/completion
	nextFPUAt      uint64 // min readyAt over fpuOps

	prio    [numClasses]int // arbitration order, fixed by the config
	pending int             // queued requests across all classes (arbiter fast path)

	// Free lists for the per-transaction bookkeeping objects. A simulated
	// run issues hundreds of thousands of requests; recycling them keeps
	// the hot loop allocation-free after warm-up. Single-threaded like the
	// rest of the System.
	freeReq []*Request
	freeInf []*inflight

	fpuA         uint32
	fpuLastReady uint64
	fpuOps       []fpuOp
	// FPUSink receives floating-point results (set by the CPU). It is
	// invoked via the normal input-bus delivery path.
	FPUSink func(seq uint64, value uint32)

	// probe, when set, observes bus transfers and request acceptances.
	probe obs.Probe

	// flight, when set, keeps bus transfers and request acceptances in the
	// always-on post-mortem ring (concrete type: the Probe interface
	// dispatch is too slow for an always-on path).
	flight *obs.FlightRecorder
}

// SetProbe attaches an observability probe. Call before the first cycle.
func (s *System) SetProbe(p obs.Probe) { s.probe = p }

// SetFlightRecorder attaches the post-mortem flight recorder (nil detaches).
// Call before the first cycle.
func (s *System) SetFlightRecorder(r *obs.FlightRecorder) { s.flight = r }

// New builds a memory system preloaded with the program image's text and
// data segments.
func New(cfg Config, img *program.Image, st *stats.Mem) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if st == nil {
		st = &stats.Mem{}
	}
	s := &System{cfg: cfg, st: st, ram: make([]uint32, (program.AddrMask+1)/4),
		nextInflightAt: NoEvent, nextFPUAt: NoEvent}
	for i, w := range img.RAMWords() {
		s.ram[(program.TextBase/4)+uint32(i)] = w
	}
	for i, w := range img.Data {
		s.ram[(program.DataBase/4)+uint32(i)] = w
	}
	for k := range s.queues {
		q, err := queue.New[*Request](64)
		if err != nil {
			return nil, fmt.Errorf("mem: request queue: %w", err)
		}
		s.queues[k] = q
	}
	if cfg.InstrPriority {
		s.prio = [...]int{classIFetch, classData, classFPUResult, classIPrefetch}
	} else {
		s.prio = [...]int{classData, classIFetch, classFPUResult, classIPrefetch}
	}
	return s, nil
}

// AllocRequest returns a zeroed Request from the System's pool. The System
// recycles it automatically when the transaction completes (or its queued
// request is dropped after cancelation); the caller must not retain the
// pointer past that point — Handles are safe to keep, they go inert.
func (s *System) AllocRequest() *Request {
	if n := len(s.freeReq); n > 0 {
		r := s.freeReq[n-1]
		s.freeReq = s.freeReq[:n-1]
		return r
	}
	return &Request{pooled: true}
}

// releaseRequest returns a pooled request to the free list. Callbacks and
// store data are cleared (the Data slice keeps its capacity for reuse) and
// the generation advances so outstanding Handles cannot observe the next
// transaction.
func (s *System) releaseRequest(r *Request) {
	if !r.pooled {
		return
	}
	// Field-by-field reset instead of a struct literal: this is one of the
	// hottest pool paths and the literal form re-zeroes and re-stores the
	// whole struct including the Data slice header. Callbacks MUST go nil
	// (several requesters rely on a fresh request having none) and Store
	// must clear (read sites leave it at the zero value).
	r.Kind = 0
	r.Addr = 0
	r.Size = 0
	r.Store = false
	r.Data = r.Data[:0]
	r.Seq = 0
	r.OnWord = nil
	r.OnComplete = nil
	r.canceled = false
	r.accepted = false
	r.gen++
	r.fpuResult = 0
	s.freeReq = append(s.freeReq, r)
}

// Cycle returns the current cycle number (the cycle most recently passed to
// Tick).
func (s *System) Cycle() uint64 { return s.cycle }

// DebugState renders the per-class queue occupancy and in-flight state in
// one line, for deadlock and machine-check diagnostics.
func (s *System) DebugState() string {
	return fmt.Sprintf("mem{ifetch %d data %d fpu-result %d iprefetch %d inflight %d fpu-ops %d mem-free-at %d bus-free-at %d}",
		s.queues[classIFetch].Len(), s.queues[classData].Len(),
		s.queues[classFPUResult].Len(), s.queues[classIPrefetch].Len(),
		len(s.inflight), len(s.fpuOps), s.memFreeAt, s.inputBusFreeAt)
}

// ReadWord returns the current memory word at a 4-byte-aligned address.
// Used by tests and examples to inspect results after a run.
func (s *System) ReadWord(addr uint32) uint32 { return s.ram[(addr&program.AddrMask)/4] }

// WriteWord stores directly into memory, bypassing timing. Used by tests.
func (s *System) WriteWord(addr uint32, v uint32) { s.ram[(addr&program.AddrMask)/4] = v }

// Submit enqueues a request for arbitration. The returned handle can cancel
// it while it is still queued. Submit panics on malformed requests, which
// indicate simulator bugs rather than user errors.
func (s *System) Submit(r *Request) Handle {
	if r.Addr%4 != 0 || r.Size <= 0 || r.Size%4 != 0 {
		panic(fmt.Sprintf("mem: malformed request addr=%#x size=%d", r.Addr, r.Size))
	}
	if r.Store && len(r.Data) != r.Size/4 {
		panic(fmt.Sprintf("mem: store data length %d != %d words", len(r.Data), r.Size/4))
	}
	s.queues[classOf(r.Kind)].MustPush(r)
	s.pending++
	return Handle{r: r, gen: r.gen}
}

// Arbitration classes. Data loads and stores share one FIFO class so that
// the processor's program-order dispatch of its memory operations is
// preserved end to end; instruction fetch, FPU results and instruction
// prefetch each form their own class.
const (
	classIFetch = iota
	classData
	classFPUResult
	classIPrefetch
	numClasses
)

// classOf maps a request kind to its arbitration class.
func classOf(k stats.ReqKind) int {
	switch k {
	case stats.ReqIFetch:
		return classIFetch
	case stats.ReqDataLoad, stats.ReqDataStore:
		return classData
	case stats.ReqFPUResult:
		return classFPUResult
	default:
		return classIPrefetch
	}
}

// Tick advances the memory system one full cycle: BeginCycle followed by
// EndCycle. Convenient for tests; the simulator core calls the phases
// separately so that requests submitted by the CPU and fetch engines during
// a cycle are arbitrated at the end of that same cycle (the address bus is
// driven in the cycle the request is made).
func (s *System) Tick(cycle uint64) {
	s.BeginCycle(cycle)
	s.EndCycle()
}

// BeginCycle starts cycle processing: completed FPU operations become
// result-return requests and this cycle's input-bus transfers are
// delivered. Call before the fetch engines and CPU tick.
func (s *System) BeginCycle(cycle uint64) {
	s.cycle = cycle
	s.fpuComplete()
	s.deliver()
}

// EndCycle runs the arbiter over everything submitted up to and including
// this cycle, accepting at most one request. Call after the fetch engines
// and CPU tick.
func (s *System) EndCycle() {
	s.accept()
}

// fpuComplete turns finished FPU operations into result-return requests.
// The result value rides in the request itself and is delivered straight to
// FPUSink, so no per-operation closure is allocated.
func (s *System) fpuComplete() {
	if s.cycle < s.nextFPUAt {
		return // no operation finishes this early (covers the empty case)
	}
	rest := s.fpuOps[:0]
	next := NoEvent
	for _, op := range s.fpuOps {
		if op.readyAt <= s.cycle {
			r := s.AllocRequest()
			r.Kind = stats.ReqFPUResult
			r.Addr = AddrFPUA // nominal source address
			r.Size = 4
			r.Seq = op.seq
			r.fpuResult = op.result
			s.Submit(r)
		} else {
			if op.readyAt < next {
				next = op.readyAt
			}
			rest = append(rest, op)
		}
	}
	s.fpuOps = rest
	s.nextFPUAt = next
}

// deliver performs this cycle's input-bus transfers and completions.
func (s *System) deliver() {
	if s.cycle < s.nextInflightAt {
		return // nothing transfers or completes this early (covers empty)
	}
	next := NoEvent
	kept := s.inflight[:0]
	for _, f := range s.inflight {
		if !f.req.Store && f.transfers > 0 {
			// Which transfer slot (if any) lands on this cycle?
			if s.cycle >= f.firstTransfer && s.cycle < f.firstTransfer+uint64(f.transfers) {
				s.st.InputBusCycles++
				wordsPerTransfer := s.cfg.BusWidthBytes / 4
				totalWords := f.req.Size / 4
				wordsBefore := f.delivered
				for k := 0; k < wordsPerTransfer && f.delivered < totalWords; k++ {
					addr := f.req.Addr + uint32(f.delivered*4)
					var w uint32
					switch {
					case len(f.data) > 0:
						w = f.data[f.delivered]
					case f.hasData:
						w = f.word0
					}
					if f.req.OnWord != nil {
						f.req.OnWord(addr, w, f.req.Seq)
					} else if f.req.Kind == stats.ReqFPUResult && s.FPUSink != nil {
						s.FPUSink(f.req.Seq, w)
					}
					f.delivered++
					s.st.WordsDelivered++
				}
				if f.delivered > wordsBefore {
					if s.flight != nil {
						s.flight.Record(obs.KindBusBusy, f.req.Addr, 0, uint64(f.delivered-wordsBefore))
					}
					if s.probe != nil {
						s.probe.Event(obs.Event{Kind: obs.KindBusBusy, Addr: f.req.Addr,
							Value: uint64(f.delivered - wordsBefore)})
					}
				}
			}
		}
		if s.cycle >= f.done {
			if f.req.OnComplete != nil {
				f.req.OnComplete(f.req.Seq)
			}
			s.releaseRequest(f.req)
			s.releaseInflight(f)
			continue
		}
		// Next action for a kept entry: its completion, or the next
		// input-bus transfer (cycle+1 once inside the transfer window).
		na := f.done
		if !f.req.Store && f.transfers > 0 && f.firstTransfer < na {
			if s.cycle+1 >= f.firstTransfer {
				na = s.cycle + 1
			} else {
				na = f.firstTransfer
			}
		}
		if na < next {
			next = na
		}
		kept = append(kept, f)
	}
	s.inflight = kept
	s.nextInflightAt = next
}

// allocInflight draws a transaction record from the pool.
func (s *System) allocInflight() *inflight {
	if n := len(s.freeInf); n > 0 {
		f := s.freeInf[n-1]
		s.freeInf = s.freeInf[:n-1]
		return f
	}
	return &inflight{}
}

// releaseInflight recycles a completed transaction record, keeping the
// multi-word data buffer's capacity.
func (s *System) releaseInflight(f *inflight) {
	f.req = nil
	f.firstTransfer = 0
	f.transfers = 0
	f.done = 0
	f.delivered = 0
	f.word0 = 0
	if f.data != nil {
		f.data = f.data[:0]
	}
	f.hasData = false
	s.freeInf = append(s.freeInf, f)
}

// accept runs the priority arbiter and starts at most one request.
func (s *System) accept() {
	if s.pending == 0 {
		return // nothing queued anywhere: the common idle cycle
	}
	if !s.cfg.Pipelined && s.cycle < s.memFreeAt && s.queues[classFPUResult].Len() == 0 {
		// The memory is busy and nothing bus-only is waiting: the scan
		// below could not accept anything, so skip it. (Canceled heads
		// stay queued a little longer; the arbiter drops them at the
		// next cycle it could actually accept, which changes nothing
		// observable — they occupy no memory resources.)
		return
	}
	for _, class := range s.prio {
		q := s.queues[class]
		if q.Len() == 0 {
			continue
		}
		// Drop canceled requests at the head.
		for {
			head, ok := q.Peek()
			if !ok || !head.canceled {
				break
			}
			q.MustPop()
			s.pending--
			s.releaseRequest(head)
		}
		head, ok := q.Peek()
		if !ok {
			continue
		}
		usesMemory := head.Kind != stats.ReqFPUResult
		if usesMemory && !s.cfg.Pipelined && s.cycle < s.memFreeAt {
			// The memory itself is busy; lower-priority classes must
			// not sneak past it to the memory either, but an FPU
			// result (bus-only) still may. Keep scanning only for
			// bus-only classes.
			continue
		}
		q.MustPop()
		s.pending--
		s.start(head)
		return
	}
}

// start schedules an accepted request.
func (s *System) start(r *Request) {
	r.accepted = true
	s.st.Accepted[r.Kind]++
	if s.flight != nil {
		s.flight.Record(obs.KindMemAccept, r.Addr, uint32(r.Kind), 0)
	}
	if s.probe != nil {
		s.probe.Event(obs.Event{Kind: obs.KindMemAccept, Addr: r.Addr, Arg: uint32(r.Kind)})
	}
	T := uint64(s.cfg.AccessTime)
	if r.Store {
		done := s.cycle + T
		s.applyStore(r)
		if !s.cfg.Pipelined {
			s.memFreeAt = done
		}
		f := s.allocInflight()
		f.req = r
		f.done = done
		s.inflight = append(s.inflight, f)
		if done < s.nextInflightAt {
			s.nextInflightAt = done
		}
		return
	}
	n := (r.Size + s.cfg.BusWidthBytes - 1) / s.cfg.BusWidthBytes
	var first uint64
	if r.Kind == stats.ReqFPUResult {
		// Produced by the FPU: needs only the input bus, one cycle
		// after the grant at the earliest.
		first = max64(s.cycle+1, s.inputBusFreeAt)
	} else {
		first = max64(s.cycle+T, s.inputBusFreeAt)
		if !s.cfg.Pipelined {
			s.memFreeAt = first + uint64(n) - 1
		}
	}
	s.inputBusFreeAt = first + uint64(n)
	f := s.allocInflight()
	f.req = r
	f.firstTransfer = first
	f.transfers = n
	f.done = first + uint64(n) - 1
	switch {
	case r.Kind == stats.ReqFPUResult:
		// The FPU produced the value; it rides in the request.
		f.hasData = true
		f.word0 = r.fpuResult
	case r.Size == 4:
		f.hasData = true
		f.word0 = s.ReadWord(r.Addr)
	default:
		f.hasData = true
		words := r.Size / 4
		if cap(f.data) >= words {
			f.data = f.data[:words]
		} else {
			f.data = make([]uint32, words)
		}
		for i := range f.data {
			f.data[i] = s.ReadWord(r.Addr + uint32(i*4))
		}
	}
	s.inflight = append(s.inflight, f)
	if first < s.nextInflightAt {
		s.nextInflightAt = first
	}
}

// applyStore writes store data into memory or the FPU. Writes become
// visible immediately on acceptance; the completion callback still waits
// for the access time, which is what frees the store queues.
func (s *System) applyStore(r *Request) {
	for i, w := range r.Data {
		addr := r.Addr + uint32(i*4)
		s.st.StoreWords++
		if addr >= program.FPUBase {
			s.fpuStore(addr, w, r.Seq)
			continue
		}
		s.WriteWord(addr, w)
	}
}

// fpuStore implements the memory-mapped FPU protocol.
func (s *System) fpuStore(addr, w uint32, seq uint64) {
	if addr == AddrFPUA {
		s.fpuA = w
		return
	}
	if !IsFPUTrigger(addr) {
		return // stores to other FPU-range addresses are ignored
	}
	a := math.Float32frombits(s.fpuA)
	b := math.Float32frombits(w)
	var r float32
	switch addr {
	case AddrFPUMul:
		r = a * b
	case AddrFPUAdd:
		r = a + b
	case AddrFPUSub:
		r = a - b
	case AddrFPUDiv:
		r = a / b
	}
	s.st.FPUOps++
	// The operand arrives when the store completes (T cycles); the unit
	// is not internally pipelined, so a new operation starts only after
	// the previous one finishes.
	startAt := max64(s.cycle+uint64(s.cfg.AccessTime), s.fpuLastReady)
	readyAt := startAt + uint64(s.cfg.FPULatency)
	s.fpuLastReady = readyAt
	s.fpuOps = append(s.fpuOps, fpuOp{readyAt: readyAt, result: math.Float32bits(r), seq: seq})
	if readyAt < s.nextFPUAt {
		s.nextFPUAt = readyAt
	}
}

// NoEvent is the NextEvent value meaning "no self-scheduled event": the
// unit's state cannot change until an external call mutates it. It compares
// greater than every real cycle number.
const NoEvent = ^uint64(0)

// NextEvent returns the earliest future cycle at which the memory system
// can act on its own — deliver an input-bus transfer, fire a completion
// callback, turn a finished FPU operation into a result request, or accept
// a queued request — or NoEvent when nothing is pending anywhere. Callers
// may advance the simulation clock to the returned cycle without running
// the intermediate BeginCycle/EndCycle pairs: every skipped cycle is
// provably a no-op for the System. Call after EndCycle; strictly read-only.
func (s *System) NextEvent() uint64 {
	next := NoEvent
	if s.pending > 0 {
		// A queued request is accepted by the first EndCycle the memory
		// can take it: immediately when pipelined or when a bus-only FPU
		// result is waiting (it bypasses the memory-busy gate), otherwise
		// once the non-pipelined memory frees up. Canceled requests also
		// count (conservatively): the arbiter drops them at the head scan.
		if s.cfg.Pipelined || s.queues[classFPUResult].Len() > 0 {
			return s.cycle + 1
		}
		next = max64(s.cycle+1, s.memFreeAt)
	}
	if s.nextInflightAt < next {
		next = s.nextInflightAt
	}
	if s.nextFPUAt < next {
		next = s.nextFPUAt
	}
	if next <= s.cycle {
		return s.cycle + 1
	}
	return next
}

// Drained reports whether no requests are queued or in flight and the FPU
// is idle. The simulator stops when the program has retired HALT and the
// memory system is drained.
func (s *System) Drained() bool {
	for _, q := range s.queues {
		for i := 0; i < q.Len(); i++ {
			if r, _ := q.At(i); !r.canceled {
				return false
			}
		}
	}
	return len(s.inflight) == 0 && len(s.fpuOps) == 0
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
