package eventbus

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// drain pops everything currently buffered.
func drain(s *Subscriber) []Event {
	var out []Event
	for {
		ev, ok := s.Pop()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

func TestPublishDeliversInOrder(t *testing.T) {
	b := New()
	s := b.Subscribe(SubOptions{Buffer: 16})
	defer s.Close()
	for i := 0; i < 5; i++ {
		if seq := b.Publish(Event{Kind: "k", Data: i}); seq != uint64(i+1) {
			t.Fatalf("publish %d returned seq %d", i, seq)
		}
	}
	evs := drain(s)
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) || ev.Kind != "k" || ev.Data.(int) != i {
			t.Errorf("event %d = %+v", i, ev)
		}
		if ev.TimeMS == 0 {
			t.Errorf("event %d missing timestamp", i)
		}
	}
	if b.Published() != 5 || b.Dropped() != 0 {
		t.Errorf("bus counters: published %d dropped %d", b.Published(), b.Dropped())
	}
}

func TestKindAndJobFilters(t *testing.T) {
	b := New()
	all := b.Subscribe(SubOptions{})
	jobOnly := b.Subscribe(SubOptions{Job: "j-1"})
	kinds := b.Subscribe(SubOptions{Kinds: []string{"point", "job.end"}})
	defer all.Close()
	defer jobOnly.Close()
	defer kinds.Close()

	b.Publish(Event{Kind: "job.start", Job: "j-1"})
	b.Publish(Event{Kind: "point.ok", Job: "j-2"})
	b.Publish(Event{Kind: "pointer"}) // prefix must match on dot boundary
	b.Publish(Event{Kind: "job.end", Job: "j-1"})
	b.Publish(Event{Kind: "sweep.experiment"})

	if got := len(drain(all)); got != 5 {
		t.Errorf("unfiltered subscriber got %d events, want 5", got)
	}
	jevs := drain(jobOnly)
	if len(jevs) != 2 || jevs[0].Kind != "job.start" || jevs[1].Kind != "job.end" {
		t.Errorf("job filter got %+v", jevs)
	}
	kevs := drain(kinds)
	if len(kevs) != 2 || kevs[0].Kind != "point.ok" || kevs[1].Kind != "job.end" {
		t.Errorf("kind filter got %+v", kevs)
	}
}

// TestSlowConsumerDropsOldest is the ring-semantics contract: a stalled
// subscriber loses the oldest events, keeps the freshest, and every loss
// is counted on the subscriber and the bus.
func TestSlowConsumerDropsOldest(t *testing.T) {
	b := New()
	fast := b.Subscribe(SubOptions{Buffer: 64})
	slow := b.Subscribe(SubOptions{Buffer: 4})
	defer fast.Close()
	defer slow.Close()

	for i := 1; i <= 10; i++ {
		b.Publish(Event{Kind: "k", Data: i})
	}
	if got := len(drain(fast)); got != 10 {
		t.Errorf("keeping-up subscriber got %d events, want all 10", got)
	}
	evs := drain(slow)
	if len(evs) != 4 {
		t.Fatalf("stalled subscriber has %d buffered, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := 7 + i; ev.Data.(int) != want {
			t.Errorf("stalled subscriber kept %v at %d, want %d (freshest survive)", ev.Data, i, want)
		}
	}
	if slow.Dropped() != 6 {
		t.Errorf("subscriber dropped %d, want 6", slow.Dropped())
	}
	if fast.Dropped() != 0 {
		t.Errorf("fast subscriber dropped %d, want 0", fast.Dropped())
	}
	if b.Dropped() != 6 {
		t.Errorf("bus-wide dropped %d, want 6", b.Dropped())
	}
}

func TestWaitCoalescesAndWakes(t *testing.T) {
	b := New()
	s := b.Subscribe(SubOptions{Buffer: 8})
	defer s.Close()

	got := make(chan Event, 8)
	go func() {
		for {
			ev, ok := s.Pop()
			if ok {
				got <- ev
				continue
			}
			select {
			case <-s.Wait():
			case <-s.Done():
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		b.Publish(Event{Kind: "k", Data: i})
	}
	for i := 0; i < 3; i++ {
		select {
		case ev := <-got:
			if ev.Data.(int) != i {
				t.Errorf("got %v, want %d", ev.Data, i)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("subscriber never woke up")
		}
	}
	s.Close()
}

func TestCloseUnsubscribesAndBusCloseDrains(t *testing.T) {
	b := New()
	s1 := b.Subscribe(SubOptions{})
	s2 := b.Subscribe(SubOptions{})
	if n := b.Subscribers(); n != 2 {
		t.Fatalf("subscribers %d, want 2", n)
	}
	s1.Close()
	s1.Close() // idempotent
	if n := b.Subscribers(); n != 1 {
		t.Fatalf("subscribers after close %d, want 1", n)
	}
	b.Publish(Event{Kind: "k"})
	if got := len(drain(s1)); got != 0 {
		t.Errorf("closed subscriber received %d events", got)
	}

	// Bus close: buffered events stay readable, Done closes, later
	// publishes and subscribes are inert.
	b.Close()
	select {
	case <-s2.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("bus close did not close subscriber Done")
	}
	if got := len(drain(s2)); got != 1 {
		t.Errorf("subscriber drained %d buffered events after bus close, want 1", got)
	}
	if seq := b.Publish(Event{Kind: "k"}); seq != 0 {
		t.Errorf("publish on closed bus returned seq %d, want 0", seq)
	}
	s3 := b.Subscribe(SubOptions{})
	select {
	case <-s3.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("subscribe on closed bus returned an open subscription")
	}
}

// TestConcurrentPublishSubscribe hammers the bus from many publishers
// while subscribers come and go; run under -race this is the data-race
// gate for the whole package.
func TestConcurrentPublishSubscribe(t *testing.T) {
	b := New()
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Publish(Event{Kind: "k", Job: fmt.Sprintf("j-%d", i%3)})
			}
		}(p)
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := b.Subscribe(SubOptions{Buffer: 8, Job: "j-1"})
				s.Pop()
				s.Close()
			}
		}()
	}
	wg.Wait()
	if b.Published() != 2000 {
		t.Errorf("published %d, want 2000", b.Published())
	}
	if b.Subscribers() != 0 {
		t.Errorf("%d subscribers leaked", b.Subscribers())
	}
}

// TestNoSubscriberGetsEventAfterClose pins the Subscribe/Publish
// ordering contract: an event published after Subscribe returns is
// either delivered or counted as dropped — never silently skipped.
func TestSubscribeThenPublishNeverMisses(t *testing.T) {
	b := New()
	for i := 0; i < 100; i++ {
		s := b.Subscribe(SubOptions{Buffer: 1})
		b.Publish(Event{Kind: "k"})
		if _, ok := s.Pop(); !ok && s.Dropped() == 0 {
			t.Fatalf("iteration %d: event neither delivered nor counted", i)
		}
		s.Close()
	}
}

// BenchmarkEventBusPublish measures the publish cost the jobs and sweep
// layers pay per event (the bus is off the simulation hot path; this
// bounds the overhead of instrumenting job execution).
func BenchmarkEventBusPublish(b *testing.B) {
	b.Run("no-subscribers", func(b *testing.B) {
		bus := New()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bus.Publish(Event{Kind: "point.ok", Job: "j-1"})
		}
	})
	b.Run("one-subscriber", func(b *testing.B) {
		bus := New()
		s := bus.Subscribe(SubOptions{Buffer: 1024})
		defer s.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bus.Publish(Event{Kind: "point.ok", Job: "j-1"})
			if i%512 == 0 {
				drainBench(s)
			}
		}
	})
	b.Run("eight-subscribers-filtered", func(b *testing.B) {
		bus := New()
		for i := 0; i < 8; i++ {
			s := bus.Subscribe(SubOptions{Buffer: 64, Kinds: []string{"other"}})
			defer s.Close()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bus.Publish(Event{Kind: "point.ok", Job: "j-1"})
		}
	})
}

func drainBench(s *Subscriber) {
	for {
		if _, ok := s.Pop(); !ok {
			return
		}
	}
}
