// Package eventbus is a dependency-free in-process publish/subscribe bus
// for telemetry events: the push-based counterpart to the pull-based
// /metrics endpoint. Producers (the durable-job manager, the sweep
// runner, the daemon itself) publish small structured events; consumers
// (SSE streams, dashboards, tests) subscribe with optional kind/job
// filters and read at their own pace.
//
// Delivery is best-effort by design. Each subscriber owns a bounded ring
// buffer: a consumer that keeps up sees every matching event in publish
// order; a stalled consumer loses the OLDEST buffered events first (ring
// semantics — the freshest state always survives) and every loss is
// counted, per subscriber and bus-wide, so slow consumers are an
// observable condition instead of a silent gap or — worse — backpressure
// into the simulation path. Publish never blocks and never allocates
// proportionally to subscriber count beyond the fan-out loop itself.
package eventbus

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one telemetry record. Seq and Time are assigned by Publish;
// producers fill Kind, optionally Job and Point, and an arbitrary
// JSON-marshalable Data payload.
type Event struct {
	// Seq is the bus-wide publish sequence number, starting at 1. It
	// orders the firehose and doubles as the SSE event ID on the global
	// stream.
	Seq uint64 `json:"seq"`
	// TimeMS is the publish wall-clock time in Unix milliseconds.
	TimeMS int64 `json:"time_ms"`
	// Kind names the event in dotted-hierarchy form ("job.start",
	// "point.ok", "sweep.experiment"). Filters match exact kinds or
	// dotted prefixes.
	Kind string `json:"kind"`
	// Job is the owning job ID, when the event belongs to one.
	Job string `json:"job,omitempty"`
	// Data is the kind-specific payload (a struct or map that marshals
	// to JSON).
	Data any `json:"data,omitempty"`
}

// DefaultBuffer is the per-subscriber ring capacity when SubOptions does
// not set one.
const DefaultBuffer = 256

// Bus fans events out to subscribers. The zero value is not usable; call
// New. All methods are safe for concurrent use.
type Bus struct {
	seq       atomic.Uint64
	published atomic.Uint64
	dropped   atomic.Uint64

	mu     sync.Mutex
	subs   map[*Subscriber]struct{}
	closed bool
}

// New returns an empty bus.
func New() *Bus {
	return &Bus{subs: make(map[*Subscriber]struct{})}
}

// SubOptions filters and sizes one subscription.
type SubOptions struct {
	// Buffer is the ring capacity (<= 0 selects DefaultBuffer). When the
	// ring is full the oldest buffered event is dropped and counted.
	Buffer int
	// Kinds restricts delivery to matching kinds: an entry matches an
	// event whose Kind equals it, or begins with it followed by a dot
	// ("job" matches "job.start"). Empty means every kind.
	Kinds []string
	// Job restricts delivery to events of one job ID ("" = all; events
	// with no job are only delivered to unrestricted subscribers).
	Job string
}

// Subscribe registers a new subscriber. On a closed (draining) bus the
// subscription is returned already closed: Done is closed and Pop drains
// nothing, so callers need no special case.
func (b *Bus) Subscribe(opt SubOptions) *Subscriber {
	if opt.Buffer <= 0 {
		opt.Buffer = DefaultBuffer
	}
	s := &Subscriber{
		bus:    b,
		job:    opt.Job,
		buf:    make([]Event, opt.Buffer),
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	if len(opt.Kinds) > 0 {
		s.kinds = append([]string(nil), opt.Kinds...)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		close(s.done)
		s.closed = true
		return s
	}
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// Publish stamps the event with the next sequence number and the current
// time and delivers it to every matching subscriber, dropping the oldest
// buffered event of any subscriber whose ring is full. It returns the
// assigned sequence number (0 when the bus is closed).
func (b *Bus) Publish(ev Event) uint64 {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0
	}
	ev.Seq = b.seq.Add(1)
	ev.TimeMS = time.Now().UnixMilli()
	b.published.Add(1)
	// Fan out under the bus lock: subscriber set mutation and delivery
	// serialize, so a subscriber never misses an event published after
	// its Subscribe returned. Per-subscriber work is O(1) (a ring slot
	// write), so the critical section stays short.
	for s := range b.subs {
		if !s.matches(ev) {
			continue
		}
		if s.push(ev) {
			b.dropped.Add(1)
		}
	}
	b.mu.Unlock()
	return ev.Seq
}

// Close shuts the bus down: every subscriber's Done channel closes (after
// its buffered events are drained by Pop), later Publishes are dropped,
// and later Subscribes return closed subscriptions. Used by the daemon's
// drain path so every open stream can send a terminal event and exit.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*Subscriber, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.subs = make(map[*Subscriber]struct{})
	b.mu.Unlock()
	for _, s := range subs {
		s.markClosed()
	}
}

// Published returns the total events accepted by Publish.
func (b *Bus) Published() uint64 { return b.published.Load() }

// Dropped returns the total events lost to full subscriber rings,
// bus-wide (the per-subscriber counts are on Subscriber.Dropped).
func (b *Bus) Dropped() uint64 { return b.dropped.Load() }

// Subscribers returns the current subscriber count.
func (b *Bus) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Subscriber is one bounded-buffer subscription. Read it with Pop (and
// Wait/Done for blocking); call Close when finished.
type Subscriber struct {
	bus   *Bus
	kinds []string
	job   string

	mu      sync.Mutex
	buf     []Event // ring
	head, n int
	dropped uint64
	closed  bool

	notify chan struct{} // capacity 1: "the ring may be non-empty"
	done   chan struct{} // closed by Close / bus Close
}

// matches reports whether the subscriber's filters admit the event.
func (s *Subscriber) matches(ev Event) bool {
	if s.job != "" && ev.Job != s.job {
		return false
	}
	if len(s.kinds) == 0 {
		return true
	}
	for _, k := range s.kinds {
		if ev.Kind == k || (strings.HasPrefix(ev.Kind, k) && len(ev.Kind) > len(k) && ev.Kind[len(k)] == '.') {
			return true
		}
	}
	return false
}

// push buffers one event, evicting the oldest when full. It reports
// whether an event was dropped. Called with the bus lock held.
func (s *Subscriber) push(ev Event) (droppedOne bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if s.n == len(s.buf) {
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		s.dropped++
		droppedOne = true
	}
	s.buf[(s.head+s.n)%len(s.buf)] = ev
	s.n++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return droppedOne
}

// Pop returns the oldest buffered event, if any. It keeps returning
// buffered events after the subscription closes, so a drain can deliver
// everything already queued before the terminal close.
func (s *Subscriber) Pop() (Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Event{}, false
	}
	ev := s.buf[s.head]
	s.buf[s.head] = Event{} // release payload references
	s.head = (s.head + 1) % len(s.buf)
	s.n--
	return ev, true
}

// Wait returns a channel that receives after new events arrive. After a
// receive, drain Pop until it returns false before waiting again (the
// channel coalesces bursts into one wakeup).
func (s *Subscriber) Wait() <-chan struct{} { return s.notify }

// Done returns a channel closed when the subscription (or the bus) is
// closed. Events buffered before the close remain Poppable.
func (s *Subscriber) Done() <-chan struct{} { return s.done }

// Dropped returns how many events this subscriber lost to a full ring.
func (s *Subscriber) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Len returns how many events are currently buffered.
func (s *Subscriber) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Close unregisters the subscriber and closes Done. Safe to call more
// than once and concurrently with Publish.
func (s *Subscriber) Close() {
	s.bus.mu.Lock()
	delete(s.bus.subs, s)
	s.bus.mu.Unlock()
	s.markClosed()
}

// markClosed flips the closed state exactly once.
func (s *Subscriber) markClosed() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
}
