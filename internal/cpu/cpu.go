// Package cpu implements the five-stage PIPE processor pipeline:
// Instruction Fetch, Instruction Decode, Instruction Issue, ALU1 and ALU2.
//
// The model is cycle-accurate for the properties the paper measures and
// functionally exact: every instruction computes real values, so the
// Livermore-loop kernels produce checkable numerical results. Operands are
// read and results computed as an instruction issues (full forwarding: a
// dependent instruction can issue the cycle after its producer, so ALU
// dependences never stall). What does stall issue, exactly as in the PIPE
// architecture, is the decoupled memory access path:
//
//   - reading R7 pops the Load Data Queue and blocks while it is empty —
//     the fundamental mechanism by which memory latency reaches the
//     pipeline;
//   - a full Load Address Queue, Store Address Queue or Store Data Queue
//     blocks the instruction that would push it;
//   - an empty instruction supply (the fetch engine has nothing to offer)
//     starves the front end.
//
// Memory operations dispatch from the queues to the external memory system
// in strict program order, one per cycle (one address-bus slot). A store to
// one of the FPU trigger addresses reserves a Load Data Queue slot for the
// operation's result, which returns over the input bus tagged with that
// reservation; an in-order completion buffer guarantees LDQ values appear
// in program order even when a fast load overtakes a slow FPU result.
package cpu

import (
	"fmt"

	"pipesim/internal/cache"
	"pipesim/internal/fetch"
	"pipesim/internal/isa"
	"pipesim/internal/mem"
	"pipesim/internal/obs"
	"pipesim/internal/program"
	"pipesim/internal/queue"
	"pipesim/internal/stats"
	"pipesim/internal/trace"
)

// Config sizes the architectural queues and the optional on-chip data
// cache.
type Config struct {
	LAQDepth int // Load Address Queue entries
	LDQDepth int // Load Data Queue entries (R7 read side)
	SAQDepth int // Store Address Queue entries
	SDQDepth int // Store Data Queue entries (R7 write side)

	// DCacheBytes enables a small on-chip data cache (0 = none, the
	// paper's machine). The paper's conclusion suggests exactly this
	// future use of higher circuit densities. The cache is direct
	// mapped, write-through and write-allocate at word granularity; a
	// load hit returns in one cycle without touching the busses.
	DCacheBytes     int
	DCacheLineBytes int // tag granularity; defaults to 16 when zero
}

// DefaultConfig returns the queue depths used throughout the paper's
// simulations (deep enough that data queues are not the bottleneck).
func DefaultConfig() Config {
	return Config{LAQDepth: 8, LDQDepth: 8, SAQDepth: 8, SDQDepth: 8}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.LAQDepth < 1 || c.LDQDepth < 1 || c.SAQDepth < 1 || c.SDQDepth < 1 {
		return fmt.Errorf("cpu: queue depths must be at least 1: %+v", c)
	}
	return nil
}

// slot is one pipeline latch.
type slot struct {
	valid bool
	pc    uint32
	in    isa.Inst

	// Values computed at issue, applied at the timed stages.
	result   int32  // register result (also SDQ datum for R7 writes)
	memAddr  uint32 // effective address for LD/ST
	pbrTaken bool
	pbrBn    uint8
}

// laqEntry is a queued load address. seq is the program-order tag assigned
// when the address was generated, used to interleave loads and stores in
// program order at the memory interface.
type laqEntry struct {
	addr uint32
	seq  uint64
}

// saqEntry is a queued store address.
type saqEntry struct {
	addr uint32
	seq  uint64
}

// dcacheHit is a data-cache hit scheduled to fill its LDQ reservation on
// the next cycle (one-cycle on-chip access).
type dcacheHit struct {
	seq   uint64
	value uint32
	at    uint64
}

// arrivedSlot is one entry of the LDQ in-order completion buffer.
type arrivedSlot struct {
	value int32
	valid bool
}

// CPU is the processor model.
type CPU struct {
	cfg Config
	eng fetch.Engine
	sys *mem.System
	st  *stats.CPU

	regs  [isa.NumDataRegs]int32
	bank  [isa.QueueReg]int32 // background register set (R7 is not banked)
	bregs [isa.NumBranchRegs]uint32

	// Pipeline latches: id <- fetch, is <- id, ex1 <- is, ex2 <- ex1.
	id, is, ex1, ex2 slot

	laq *queue.Queue[laqEntry]
	ldq *queue.Queue[int32]
	saq *queue.Queue[saqEntry]
	sdq *queue.Queue[int32]

	// LDQ sequencing: slots are reserved in dispatch (= program) order;
	// arrivals are buffered and pushed in order. The reorder buffer is a
	// ring indexed seq mod LDQDepth: at most LDQDepth reservations are
	// outstanding (the dispatch gate), so slots never collide.
	ldqSeqNext    uint64
	ldqSeqHead    uint64
	arrived       []arrivedSlot
	inflightLoads int

	// memSeqNext tags LAQ/SAQ entries in program order at address
	// generation (EX1).
	memSeqNext uint64

	// lastData throttles dispatch: the address bus holds one data request
	// until the memory interface accepts it, so the architectural queues
	// (not a hidden buffer) absorb memory-system backpressure.
	lastData mem.Handle

	// onLoadWord is the shared load-return callback (avoids one closure
	// allocation per load).
	onLoadWord func(addr uint32, w uint32, seq uint64)

	// fst caches eng.Stats() so starvation accounting does not repeat the
	// interface dispatch every starved cycle.
	fst *stats.Fetch

	// dec, when non-nil, is the image's shared predecoded text segment:
	// the instruction at byte address 4*i is dec[i] (fixed format only).
	// Consuming an instruction then skips isa.Decode entirely.
	dec []isa.Inst

	fetchHalted bool // HALT has been fetched; stop consuming
	halted      bool // HALT has retired
	execErr     error

	cycle      uint64            // local cycle counter (Tick calls)
	lastBucket stats.CycleBucket // attribution of the last ticked cycle

	// Optional data cache: presence bits only; values come from the
	// memory image, which is exact because loads dispatch only after
	// every older store has been accepted and applied.
	dcache *cache.Cache
	dhits  []dcacheHit // hits delivering next cycle

	// OnRetire, when set, observes every retired instruction (used by the
	// tracing facility). It must not mutate simulator state.
	OnRetire func(cycle uint64, pc uint32, in isa.Inst)

	// retireRing and flight receive every retirement directly when set.
	// They cover the standard observability configuration (diagnostic
	// trace ring + flight recorder) without paying for an OnRetire
	// closure, which the core installs only when a user tracer or probe
	// needs the full event.
	retireRing *trace.Ring
	flight     *obs.FlightRecorder

	// probe, when set, receives typed observability events; the per-cycle
	// attribution event (obs.KindCycle) is emitted exactly once per Tick.
	// lastDepth tracks the last-emitted occupancy of each architectural
	// queue so depth events fire only on change.
	probe     obs.Probe
	lastDepth [obs.NumQueues]int

	// Single-level interrupt state (paper §3.1: "a single-level
	// interrupt"). Entry waits for a clean boundary: no open delay-slot
	// window, no unresolved PBR, pipeline drained. The hardware then
	// saves the resume address in B7, exchanges the register banks (this
	// is what the background set is for), and redirects fetch to the
	// vector. The handler must not touch R7 or the data queues and
	// returns with `bank` followed by `pbr al, r0, b7, 0`.
	irqPending  bool
	irqVector   uint32
	irqDraining bool
	irqTaken    bool // single-level: at most one interrupt per run
	windowOpen  int  // delay slots still to fetch for the newest PBR
	pbrInFlight int  // PBRs consumed but not yet resolved
}

// New builds a CPU reading instructions from eng and memory through sys.
func New(cfg Config, eng fetch.Engine, sys *mem.System, st *stats.CPU) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if st == nil {
		st = &stats.CPU{}
	}
	laq, err := queue.New[laqEntry](cfg.LAQDepth)
	if err != nil {
		return nil, fmt.Errorf("cpu: LAQ: %w", err)
	}
	ldq, err := queue.New[int32](cfg.LDQDepth)
	if err != nil {
		return nil, fmt.Errorf("cpu: LDQ: %w", err)
	}
	saq, err := queue.New[saqEntry](cfg.SAQDepth)
	if err != nil {
		return nil, fmt.Errorf("cpu: SAQ: %w", err)
	}
	sdq, err := queue.New[int32](cfg.SDQDepth)
	if err != nil {
		return nil, fmt.Errorf("cpu: SDQ: %w", err)
	}
	c := &CPU{
		cfg:     cfg,
		eng:     eng,
		sys:     sys,
		st:      st,
		laq:     laq,
		ldq:     ldq,
		saq:     saq,
		sdq:     sdq,
		arrived: make([]arrivedSlot, cfg.LDQDepth),
		fst:     eng.Stats(),
	}
	if cfg.DCacheBytes > 0 {
		line := cfg.DCacheLineBytes
		if line == 0 {
			line = 16
		}
		dc, err := cache.New(cfg.DCacheBytes, line, 4)
		if err != nil {
			return nil, err
		}
		c.dcache = dc
	}
	sys.FPUSink = c.loadArrived
	c.onLoadWord = func(addr uint32, w uint32, seq uint64) {
		if c.dcache != nil && addr < program.FPUBase {
			c.dcache.FillSub(addr) // load-allocate
		}
		c.loadArrived(seq, w)
	}
	return c, nil
}

// SetDecodeTable installs the image's shared predecoded text segment (see
// program.Image.Decoded). Fixed-format images only; pass nil to decode from
// the instruction word on every consume.
func (c *CPU) SetDecodeTable(dec []isa.Inst) { c.dec = dec }

// SetProbe attaches an observability probe. Call before the first Tick.
func (c *CPU) SetProbe(p obs.Probe) {
	c.probe = p
	for i := range c.lastDepth {
		c.lastDepth[i] = -1
	}
}

// SetRetireSinks attaches the direct retirement observers: the diagnostic
// trace ring and the flight recorder (either may be nil). They fire before
// OnRetire for every retired instruction.
func (c *CPU) SetRetireSinks(ring *trace.Ring, fr *obs.FlightRecorder) {
	c.retireRing = ring
	c.flight = fr
}

// Halted reports whether the HALT instruction has retired.
func (c *CPU) Halted() bool { return c.halted }

// Err returns the first execution error (undefined opcode), if any.
func (c *CPU) Err() error { return c.execErr }

// Reg returns the current value of data register r (for tests/examples).
func (c *CPU) Reg(r int) int32 { return c.regs[r] }

// LDQLen returns the current Load Data Queue occupancy (for tests).
func (c *CPU) LDQLen() int { return c.ldq.Len() }

// DebugState renders the architectural-queue occupancy and pipeline state
// in one line, for deadlock and machine-check diagnostics: a stall on an
// empty LDQ with no load in flight, for example, reads directly off it.
func (c *CPU) DebugState() string {
	return fmt.Sprintf("cpu{laq %d/%d ldq %d/%d saq %d/%d sdq %d/%d inflight-loads %d "+
		"stalls[ldq-empty %d queue-full %d fetch-empty %d] pbr-inflight %d halted=%v fetch-halted=%v}",
		c.laq.Len(), c.laq.Cap(), c.ldq.Len(), c.ldq.Cap(),
		c.saq.Len(), c.saq.Cap(), c.sdq.Len(), c.sdq.Cap(), c.inflightLoads,
		c.st.StallLDQEmpty, c.st.StallQueueFull, c.st.StallFetchEmpty,
		c.pbrInFlight, c.halted, c.fetchHalted)
}

// RaiseInterrupt requests the single-level interrupt: at the next clean
// instruction boundary the CPU saves the resume address in B7, switches to
// the background register bank, and redirects fetch to vector. Only the
// first request in a run is honoured (single-level).
func (c *CPU) RaiseInterrupt(vector uint32) {
	if c.irqTaken || c.halted {
		return
	}
	c.irqPending = true
	c.irqVector = vector
}

// loadArrived buffers a returned load/FPU value and pushes buffered values
// into the LDQ in reservation order.
func (c *CPU) loadArrived(seq uint64, value uint32) {
	n := uint64(len(c.arrived))
	c.arrived[seq%n] = arrivedSlot{value: int32(value), valid: true}
	for {
		s := &c.arrived[c.ldqSeqHead%n]
		if !s.valid {
			break
		}
		c.ldq.MustPush(s.value) // slot was reserved at dispatch
		s.valid = false
		c.inflightLoads--
		c.ldqSeqHead++
	}
}

// Tick advances the processor one cycle. Call after the fetch engine's Tick
// and before the memory system's EndCycle.
//
// Every Tick attributes its cycle to exactly one stats.CycleBucket, so the
// buckets always sum to the run's total cycle count.
func (c *CPU) Tick() {
	c.cycle++
	if c.halted || c.execErr != nil {
		c.account(stats.CycleDrain)
		c.dispatchMemory()
		return
	}
	c.retire()  // EX2
	c.execute() // EX1 (timed effects of the instruction that issued last cycle)
	stalled, bucket := c.issue()
	if !stalled {
		c.decodeAndFetch()
	}
	c.account(bucket)
	c.maybeEnterInterrupt()
	c.dispatchMemory()
	if c.probe != nil {
		c.sampleQueues()
	}
}

// StallProfile classifies what the next Tick would do, for the core's
// skip-ahead machinery. StallNone means Tick can change machine state and
// must run; every other value names a foldable stall: a Tick that would
// only bump the cycle counter and a fixed set of per-cycle counters,
// leaving all other state untouched. While the fetch engine and memory
// system are also quiescent, the core may replace n such Ticks with one
// FoldStall(profile, n) call and produce bit-identical results.
type StallProfile uint8

// Foldable stall profiles. Each names the per-cycle counter set a folded
// Tick of that kind would have incremented.
const (
	StallNone      StallProfile = iota // active: Tick must run
	StallDrain                         // post-HALT drain (CycleDrain)
	StallStarved                       // supply empty (CycleFetchStarved + starvation counters)
	StallQueueFull                     // full LAQ/SAQ/SDQ (CycleQueueFull + StallQueueFull)
	StallLDQWait                       // empty LDQ (CycleLDQWait + StallLDQEmpty)
)

// StallProfile classifies the CPU's current state read-only, mirroring the
// decision structure of Tick exactly. Conservative: anything it cannot
// prove to be a pure counter fold is StallNone.
func (c *CPU) StallProfile() StallProfile {
	if c.halted || c.execErr != nil {
		if c.dispatchQuiescent() {
			return StallDrain
		}
		return StallNone
	}
	if c.ex2.valid || c.ex1.valid {
		return StallNone // retire/execute would act
	}
	var p StallProfile
	if c.is.valid {
		// Mirror issue()'s stall checks; the EX1 pending adjustments are
		// zero because ex1 is invalid here.
		in := c.is.in
		switch {
		case in.Op == isa.OpLD && c.laq.Len() >= c.laq.Cap(),
			in.Op == isa.OpST && c.saq.Len() >= c.saq.Cap(),
			in.WritesSDQ() && c.sdq.Len() >= c.sdq.Cap():
			p = StallQueueFull
		default:
			need := 0
			readsA, readsB := c.operandReads(in)
			if readsA && in.Ra == isa.QueueReg {
				need++
			}
			if readsB && in.Rb == isa.QueueReg {
				need++
			}
			if c.ldq.Len() >= need {
				return StallNone // would issue
			}
			p = StallLDQWait
		}
	} else {
		// Front-end bubble: decodeAndFetch would run. Anything that moves
		// a latch, begins interrupt entry, or consumes an instruction is
		// active; only true starvation (engine has nothing) folds.
		if c.id.valid || c.irqDraining || c.fetchHalted {
			return StallNone
		}
		if c.irqPending && c.windowOpen == 0 && c.pbrInFlight == 0 {
			return StallNone // interrupt entry would begin draining
		}
		if _, _, ok := c.eng.Head(); ok {
			return StallNone // an instruction would be consumed
		}
		p = StallStarved
	}
	if !c.dispatchQuiescent() {
		return StallNone
	}
	return p
}

// dispatchQuiescent mirrors dispatchMemory read-only: true when the next
// call provably submits nothing and delivers nothing. The data-cache probe
// deliberately stays off this path — Lookup counts hits/misses, and a
// dispatchable load head is active regardless of where its value comes
// from.
func (c *CPU) dispatchQuiescent() bool {
	if len(c.dhits) > 0 {
		return false // a one-cycle data-cache hit is due next cycle
	}
	if c.lastData.Queued() {
		return true // waiting on the interface: acceptance is a memory event
	}
	la, laOK := c.laq.Peek()
	sa, saOK := c.saq.Peek()
	if laOK && saOK {
		if la.seq < sa.seq {
			saOK = false
		} else {
			laOK = false
		}
	}
	switch {
	case saOK:
		if c.sdq.Empty() {
			return true // the datum has not reached the SDQ head yet
		}
		if mem.IsFPUTrigger(sa.addr) && c.ldq.Len()+c.inflightLoads >= c.ldq.Cap() {
			return true // result needs an LDQ slot; the store holds
		}
		return false
	case laOK:
		return c.ldq.Len()+c.inflightLoads >= c.ldq.Cap()
	}
	return true
}

// FoldStall applies n cycles of a foldable stall profile at once: exactly
// the counter increments n consecutive Ticks in that state would have
// performed, with no other state change. The caller (the core's skip-ahead)
// guarantees the profile was just reported by StallProfile and that no
// external event lands inside the folded span.
func (c *CPU) FoldStall(p StallProfile, n uint64) {
	c.cycle += n
	switch p {
	case StallDrain:
		c.st.CycleBuckets[stats.CycleDrain] += n
	case StallStarved:
		c.st.CycleBuckets[stats.CycleFetchStarved] += n
		c.st.StallFetchEmpty += n
		c.fst.StarvedCycles += n
	case StallQueueFull:
		c.st.CycleBuckets[stats.CycleQueueFull] += n
		c.st.StallQueueFull += n
	case StallLDQWait:
		c.st.CycleBuckets[stats.CycleLDQWait] += n
		c.st.StallLDQEmpty += n
	}
}

// account classifies the current cycle.
func (c *CPU) account(bucket stats.CycleBucket) {
	c.st.CycleBuckets[bucket]++
	c.lastBucket = bucket
	if c.probe != nil {
		c.probe.Event(obs.Event{Kind: obs.KindCycle, Arg: uint32(bucket)})
	}
}

// MaybeStalled reports whether the cycle just ticked was attributed to a
// stall or drain bucket. A false return proves StallProfile would answer
// StallNone (a successful issue leaves EX1 occupied; CycleOther covers
// interrupt drains and front-end halt bubbles, which never fold), so the
// core's skip-ahead uses this one-comparison gate to bypass the full
// quiescence analysis on active cycles. The converse does not hold: a
// stall bucket only makes folding worth checking, not certain.
func (c *CPU) MaybeStalled() bool {
	return c.lastBucket != stats.CycleIssue && c.lastBucket != stats.CycleOther
}

// sampleQueues emits occupancy events for the architectural queues that
// changed since the last sample (probe attached only).
func (c *CPU) sampleQueues() {
	sample := func(q obs.Queue, n int) {
		if c.lastDepth[q] == n {
			return
		}
		c.lastDepth[q] = n
		c.probe.Event(obs.Event{Kind: obs.KindQueueDepth, Arg: uint32(q), Value: uint64(n)})
	}
	sample(obs.QueueLAQ, c.laq.Len())
	sample(obs.QueueLDQ, c.ldq.Len())
	sample(obs.QueueSAQ, c.saq.Len())
	sample(obs.QueueSDQ, c.sdq.Len())
}

// maybeEnterInterrupt performs interrupt entry once the pipeline has
// drained past a clean boundary.
func (c *CPU) maybeEnterInterrupt() {
	if !c.irqDraining {
		return
	}
	if c.id.valid || c.is.valid || c.ex1.valid || c.ex2.valid {
		return // still draining
	}
	c.irqDraining = false
	c.irqTaken = true
	c.bregs[isa.NumBranchRegs-1] = c.eng.ResumePC()
	for i := 0; i < isa.QueueReg; i++ { // hardware bank switch
		c.regs[i], c.bank[i] = c.bank[i], c.regs[i]
	}
	c.eng.Redirect(c.irqVector)
}

// retire completes the instruction in EX2.
func (c *CPU) retire() {
	if !c.ex2.valid {
		return
	}
	in := c.ex2.in
	c.st.Instructions++
	if c.retireRing != nil {
		c.retireRing.Record(trace.Event{Cycle: c.cycle, PC: c.ex2.pc, Inst: in})
	}
	if c.flight != nil {
		c.flight.Record(obs.KindRetire, c.ex2.pc, 0, 0)
	}
	if c.OnRetire != nil {
		c.OnRetire(c.cycle, c.ex2.pc, in)
	}
	switch in.Op {
	case isa.OpHALT:
		c.halted = true
	case isa.OpPBR:
		c.st.Branches++
		if c.ex2.pbrTaken {
			c.st.TakenBranches++
		}
	case isa.OpLD:
		c.st.Loads++
	case isa.OpST:
		c.st.Stores++
	}
	c.ex2.valid = false
}

// execute applies the EX1-stage timed effects (address-queue pushes and the
// PBR resolution) and moves the instruction to EX2.
func (c *CPU) execute() {
	if c.ex2.valid {
		panic("cpu: EX2 occupied at EX1 advance")
	}
	c.ex2 = c.ex1
	c.ex1.valid = false
	if !c.ex2.valid {
		return
	}
	s := &c.ex2
	switch s.in.Op {
	case isa.OpLD:
		c.laq.MustPush(laqEntry{addr: s.memAddr, seq: c.memSeqNext})
		c.memSeqNext++
	case isa.OpST:
		c.saq.MustPush(saqEntry{addr: s.memAddr, seq: c.memSeqNext})
		c.memSeqNext++
	case isa.OpPBR:
		c.pbrInFlight--
		c.eng.Resolve(s.pbrTaken, c.bregs[s.pbrBn])
	}
	if s.in.WritesSDQ() {
		c.sdq.MustPush(s.result)
	}
}

// issue reads operands, computes the result, and moves the instruction from
// IS to EX1. It reports whether issue stalled (freezing ID and IF) and the
// attribution bucket for this cycle.
func (c *CPU) issue() (stalled bool, bucket stats.CycleBucket) {
	if !c.is.valid {
		// Nothing to issue: a front-end bubble. While the fetch side is
		// merely slow this is starvation; once HALT has been fetched or an
		// interrupt entry is draining, the emptiness is intentional.
		if c.fetchHalted || c.irqDraining {
			return false, stats.CycleOther
		}
		return false, stats.CycleFetchStarved
	}
	in := c.is.in

	// Structural hazards: room in every queue this instruction pushes,
	// counting the in-flight push of the instruction currently in EX1.
	pendingLAQ, pendingSAQ, pendingSDQ := 0, 0, 0
	if c.ex1.valid {
		switch c.ex1.in.Op {
		case isa.OpLD:
			pendingLAQ++
		case isa.OpST:
			pendingSAQ++
		}
		if c.ex1.in.WritesSDQ() {
			pendingSDQ++
		}
	}
	switch {
	case in.Op == isa.OpLD && c.laq.Len()+pendingLAQ >= c.laq.Cap(),
		in.Op == isa.OpST && c.saq.Len()+pendingSAQ >= c.saq.Cap(),
		in.WritesSDQ() && c.sdq.Len()+pendingSDQ >= c.sdq.Cap():
		c.st.StallQueueFull++
		return true, stats.CycleQueueFull
	}

	// R7 source operands pop the LDQ; stall until enough data arrived.
	need := 0
	readsA, readsB := c.operandReads(in)
	if readsA && in.Ra == isa.QueueReg {
		need++
	}
	if readsB && in.Rb == isa.QueueReg {
		need++
	}
	if c.ldq.Len() < need {
		c.st.StallLDQEmpty++
		return true, stats.CycleLDQWait
	}

	readReg := func(r uint8) int32 {
		if r == isa.QueueReg {
			return c.ldq.MustPop()
		}
		return c.regs[r]
	}
	var a, b int32
	if readsA {
		a = readReg(in.Ra)
	}
	if readsB {
		b = readReg(in.Rb)
	}

	s := c.is
	c.is.valid = false
	if err := c.compute(&s, a, b); err != nil {
		c.execErr = err
		return true, stats.CycleOther
	}
	if c.ex1.valid {
		panic("cpu: EX1 occupied at issue")
	}
	c.ex1 = s
	return false, stats.CycleIssue
}

// operandReads reports which register operand fields the opcode actually
// reads.
func (c *CPU) operandReads(in isa.Inst) (ra, rb bool) {
	switch in.Op {
	case isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpSLL, isa.OpSRL, isa.OpSRA:
		return true, true
	case isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI, isa.OpSLLI, isa.OpSRLI, isa.OpSRAI,
		isa.OpLD, isa.OpST, isa.OpSETBR:
		return true, false
	case isa.OpPBR:
		return in.Cond != isa.CondAL, false
	}
	return false, false
}

// compute performs the instruction's functional work at issue time and
// records timed effects in the slot. Register and branch-register writes
// apply immediately (full forwarding); queue pushes are recorded for EX1.
func (c *CPU) compute(s *slot, a, b int32) error {
	in := s.in
	writeReg := func(v int32) {
		s.result = v
		if in.Rd != isa.QueueReg {
			c.regs[in.Rd] = v
		}
	}
	switch in.Op {
	case isa.OpNOP, isa.OpHALT:
	case isa.OpADD:
		writeReg(a + b)
	case isa.OpSUB:
		writeReg(a - b)
	case isa.OpAND:
		writeReg(a & b)
	case isa.OpOR:
		writeReg(a | b)
	case isa.OpXOR:
		writeReg(a ^ b)
	case isa.OpSLL:
		writeReg(a << (uint32(b) & 31))
	case isa.OpSRL:
		writeReg(int32(uint32(a) >> (uint32(b) & 31)))
	case isa.OpSRA:
		writeReg(a >> (uint32(b) & 31))
	case isa.OpADDI:
		writeReg(a + in.Imm)
	case isa.OpANDI:
		// Logical immediates zero-extend (so ORI can build the low half
		// of an address); arithmetic immediates sign-extend.
		writeReg(a & int32(uint32(in.Imm)&0xFFFF))
	case isa.OpORI:
		writeReg(a | int32(uint32(in.Imm)&0xFFFF))
	case isa.OpXORI:
		writeReg(a ^ int32(uint32(in.Imm)&0xFFFF))
	case isa.OpSLLI:
		writeReg(a << (uint32(in.Imm) & 31))
	case isa.OpSRLI:
		writeReg(int32(uint32(a) >> (uint32(in.Imm) & 31)))
	case isa.OpSRAI:
		writeReg(a >> (uint32(in.Imm) & 31))
	case isa.OpLI:
		writeReg(in.Imm)
	case isa.OpLUI:
		writeReg(in.Imm << 16)
	case isa.OpLD, isa.OpST:
		s.memAddr = uint32(a+in.Imm) & program.AddrMask
	case isa.OpSETB:
		c.bregs[in.Bn] = uint32(in.Imm)
	case isa.OpSETBR:
		c.bregs[in.Bn] = uint32(a) & program.AddrMask
	case isa.OpBANK:
		// Exchange foreground and background registers R0..R6.
		for i := 0; i < isa.QueueReg; i++ {
			c.regs[i], c.bank[i] = c.bank[i], c.regs[i]
		}
	case isa.OpPBR:
		s.pbrTaken = in.Cond.Holds(a)
		s.pbrBn = in.Bn
	default:
		return fmt.Errorf("cpu: undefined opcode %#02x at pc %#x", uint8(in.Op), s.pc)
	}
	return nil
}

// decodeAndFetch moves ID to IS and consumes the next instruction from the
// fetch engine into ID.
func (c *CPU) decodeAndFetch() {
	if c.is.valid {
		panic("cpu: IS occupied after successful issue")
	}
	c.is = c.id
	c.id.valid = false
	if c.fetchHalted || c.irqDraining {
		return
	}
	// Interrupt entry may only begin at a clean boundary: no delay slots
	// owed and no unresolved branch in flight.
	if c.irqPending && c.windowOpen == 0 && c.pbrInFlight == 0 {
		c.irqPending = false
		c.irqDraining = true
		return
	}
	pc, w, ok := c.eng.Head()
	if !ok {
		c.st.StallFetchEmpty++
		c.fst.StarvedCycles++
		return
	}
	c.eng.Consume()
	var in isa.Inst
	if idx := (pc - program.TextBase) / isa.WordBytes; c.dec != nil &&
		pc%isa.WordBytes == 0 && idx < uint32(len(c.dec)) {
		in = c.dec[idx]
	} else {
		in = isa.Decode(w)
	}
	c.id = slot{valid: true, pc: pc, in: in}
	if c.windowOpen > 0 {
		c.windowOpen--
	}
	switch c.id.in.Op {
	case isa.OpHALT:
		c.fetchHalted = true
	case isa.OpPBR:
		c.windowOpen = int(c.id.in.N)
		c.pbrInFlight++
	}
}

// dispatchMemory sends at most one data request per cycle (one address-bus
// slot) to the memory system, in strict program order: the Load Address
// Queue and the Store Address/Data Queue pair drain in the order the
// instructions executed, which the single-issue in-order pipeline
// guarantees matches program order.
func (c *CPU) dispatchMemory() {
	// Deliver data-cache hits that completed their one-cycle access.
	if len(c.dhits) > 0 {
		kept := c.dhits[:0]
		for _, h := range c.dhits {
			if h.at <= c.cycle {
				c.loadArrived(h.seq, h.value)
			} else {
				kept = append(kept, h)
			}
		}
		c.dhits = kept
	}
	if c.lastData.Queued() {
		return // previous data request still waiting for the interface
	}
	la, laOK := c.laq.Peek()
	sa, saOK := c.saq.Peek()
	// Strict program order: dispatch the older queue head; a not-yet-
	// ready older store blocks younger loads (the conservative PIPE
	// memory-interface rule that keeps same-address ordering correct).
	if laOK && saOK {
		if la.seq < sa.seq {
			saOK = false
		} else {
			laOK = false
		}
	}
	switch {
	case saOK:
		if c.sdq.Empty() {
			return // the datum has not reached the SDQ head yet
		}
		fpuTrigger := mem.IsFPUTrigger(sa.addr)
		if fpuTrigger && c.ldq.Len()+c.inflightLoads >= c.ldq.Cap() {
			return // the result needs an LDQ slot; hold the store
		}
		c.saq.MustPop()
		datum := c.sdq.MustPop()
		req := c.sys.AllocRequest()
		req.Kind = stats.ReqDataStore
		req.Addr = sa.addr &^ 3
		req.Size = 4
		req.Store = true
		req.Data = append(req.Data[:0], uint32(datum))
		if fpuTrigger {
			req.Seq = c.ldqSeqNext
			c.ldqSeqNext++
			c.inflightLoads++
		}
		if c.dcache != nil && !fpuTrigger && sa.addr < program.FPUBase {
			// Write-through, write-allocate: the word becomes
			// cacheable; the store still travels down the bus.
			c.dcache.FillSub(sa.addr &^ 3)
		}
		c.lastData = c.sys.Submit(req)
	case laOK:
		if c.ldq.Len()+c.inflightLoads >= c.ldq.Cap() {
			return // no LDQ room; hold the load
		}
		if c.dcache != nil && la.addr < program.FPUBase && c.dcache.Lookup(la.addr&^3) {
			// On-chip hit: one-cycle access, no bus traffic. Every
			// older store has already been accepted and applied (the
			// single outstanding data request gate), so the memory
			// image holds the architecturally correct value.
			c.laq.MustPop()
			c.st.DCacheHits++
			seq := c.ldqSeqNext
			c.ldqSeqNext++
			c.inflightLoads++
			c.dhits = append(c.dhits, dcacheHit{seq: seq, value: c.sys.ReadWord(la.addr &^ 3), at: c.cycle + 1})
			return
		}
		if c.dcache != nil {
			c.st.DCacheMisses++
		}
		c.laq.MustPop()
		seq := c.ldqSeqNext
		c.ldqSeqNext++
		c.inflightLoads++
		req := c.sys.AllocRequest()
		req.Kind = stats.ReqDataLoad
		req.Addr = la.addr &^ 3
		req.Size = 4
		req.Seq = seq
		req.OnWord = c.onLoadWord
		c.lastData = c.sys.Submit(req)
	}
}

// Drained reports whether the CPU-side memory machinery is idle: no queued
// addresses or store data and no outstanding loads.
func (c *CPU) Drained() bool {
	return c.laq.Empty() && c.saq.Empty() && c.sdq.Empty() && c.inflightLoads == 0
}
