package cpu_test

import (
	"math"
	"strings"
	"testing"

	"pipesim/internal/asm"
	"pipesim/internal/core"
	"pipesim/internal/cpu"
	"pipesim/internal/mem"
	"pipesim/internal/program"
	"pipesim/internal/stats"
)

// runAsm assembles src and runs it under cfg, returning the simulator (for
// memory/register inspection) and the statistics.
func runAsm(t *testing.T, cfg core.Config, src string) (*core.Simulator, *stats.Sim) {
	t.Helper()
	img, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	sim, err := core.New(cfg, img)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return sim, st
}

func defCfg() core.Config { return core.DefaultConfig() }

func TestALUOperations(t *testing.T) {
	sim, _ := runAsm(t, defCfg(), `
        li   r1, 20
        li   r2, 3
        add  r3, r1, r2    ; 23
        sub  r4, r1, r2    ; 17
        slli r5, r2, 4     ; 48
        xor  r6, r1, r2    ; 23
        halt
`)
	want := map[int]int32{1: 20, 2: 3, 3: 23, 4: 17, 5: 48, 6: 23}
	for r, v := range want {
		if got := sim.Reg(r); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestForwardingNoALUStalls(t *testing.T) {
	// A chain of dependent adds must not stall: full forwarding.
	var sb strings.Builder
	sb.WriteString("li r1, 0\n")
	for i := 0; i < 50; i++ {
		sb.WriteString("addi r1, r1, 1\n")
	}
	sb.WriteString("halt\n")
	sim, st := runAsm(t, defCfg(), sb.String())
	if got := sim.Reg(1); got != 50 {
		t.Fatalf("r1 = %d, want 50", got)
	}
	if st.CPU.StallLDQEmpty != 0 || st.CPU.StallQueueFull != 0 {
		t.Errorf("unexpected issue stalls: %+v", st.CPU)
	}
	// 52 instructions; pipeline depth and cold-start fetch add a small
	// constant. Anything beyond ~1.5 CPI means supply is broken.
	if st.Cycles > uint64(float64(st.CPU.Instructions)*3/2) {
		t.Errorf("cycles = %d for %d instructions", st.Cycles, st.CPU.Instructions)
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	sim, st := runAsm(t, defCfg(), `
        la   r1, buf
        li   r2, 1234
        st   0(r1)         ; address of buf
        mov  r7, r2        ; datum 1234 -> SDQ
        ld   0(r1)         ; read it back
        mov  r3, r7        ; r3 <- LDQ
        halt
        .data
buf:    .word 0
`)
	if got := sim.Reg(3); got != 1234 {
		t.Errorf("loaded value = %d, want 1234", got)
	}
	img, _ := asm.Assemble("halt\n.data\nbuf: .word 0\n")
	bufAddr, _ := img.Lookup("buf")
	if got := sim.ReadWord(bufAddr); got != 1234 {
		t.Errorf("memory word = %d, want 1234", got)
	}
	if st.CPU.Loads != 1 || st.CPU.Stores != 1 {
		t.Errorf("loads=%d stores=%d", st.CPU.Loads, st.CPU.Stores)
	}
}

func TestMultipleOutstandingLoadsPreserveOrder(t *testing.T) {
	sim, _ := runAsm(t, defCfg(), `
        la   r1, vec
        ld   0(r1)
        ld   4(r1)
        ld   8(r1)
        mov  r2, r7        ; first value
        mov  r3, r7        ; second
        mov  r4, r7        ; third
        halt
        .data
vec:    .word 11, 22, 33
`)
	if sim.Reg(2) != 11 || sim.Reg(3) != 22 || sim.Reg(4) != 33 {
		t.Errorf("LDQ order broken: r2=%d r3=%d r4=%d", sim.Reg(2), sim.Reg(3), sim.Reg(4))
	}
}

func TestLoadUseStallOnSlowMemory(t *testing.T) {
	cfg := defCfg()
	cfg.Mem.AccessTime = 6
	_, st := runAsm(t, cfg, `
        la   r1, v
        ld   0(r1)
        mov  r2, r7        ; uses the datum immediately: must stall
        halt
        .data
v:      .word 5
`)
	if st.CPU.StallLDQEmpty == 0 {
		t.Error("no LDQ-empty stall at 6-cycle memory with immediate use")
	}
}

func TestLoopWithPBR(t *testing.T) {
	// Sum 1..10 with a countdown loop.
	sim, st := runAsm(t, defCfg(), `
        li    r1, 10       ; counter
        li    r2, 0        ; sum
        setb  b0, loop
loop:   add   r2, r2, r1
        addi  r1, r1, -1
        pbr   ne, r1, b0, 2
        nop
        nop
        halt
`)
	if got := sim.Reg(2); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	if st.CPU.Branches != 10 || st.CPU.TakenBranches != 9 {
		t.Errorf("branches=%d taken=%d, want 10/9", st.CPU.Branches, st.CPU.TakenBranches)
	}
}

func TestPBRConditionVariants(t *testing.T) {
	// CondLE taken on zero: skip the fall-through marker.
	sim, _ := runAsm(t, defCfg(), `
        li    r1, 0
        li    r3, 0
        setb  b1, out
        pbr   le, r1, b1, 1
        nop
        li    r3, 99       ; must be skipped
out:    halt
`)
	if got := sim.Reg(3); got != 0 {
		t.Errorf("fall-through executed: r3 = %d", got)
	}
}

func TestFPUMultiplyThroughQueues(t *testing.T) {
	src := `
        la   r1, a
        la   r2, fpu_a
        la   r3, fpu_mul
        ld   0(r1)         ; a
        ld   4(r1)         ; b
        st   0(r2)         ; -> FPU A register
        mov  r7, r7        ; datum: pops a from LDQ, pushes to SDQ
        st   0(r3)         ; -> FPU MUL trigger
        mov  r7, r7        ; datum: b
        mov  r4, r7        ; result pops from LDQ
        la   r5, out
        st   0(r5)
        mov  r7, r4
        halt
        .data
a:      .float 2.5, 4.0
out:    .word 0
`
	// Patch in the FPU addresses via symbols: simplest is textual
	// substitution since the assembler has no constant expressions.
	src = strings.ReplaceAll(src, "la   r2, fpu_a", "lui r2, 0x7\nori r2, r2, 0xF000")
	src = strings.ReplaceAll(src, "la   r3, fpu_mul", "lui r3, 0x7\nori r3, r3, 0xF004")
	sim, st := runAsm(t, defCfg(), src)
	if got := math.Float32frombits(uint32(sim.Reg(4))); got != 10.0 {
		t.Errorf("FPU product = %v, want 10", got)
	}
	img, _ := asm.Assemble(src)
	outAddr, _ := img.Lookup("out")
	if got := math.Float32frombits(sim.ReadWord(outAddr)); got != 10.0 {
		t.Errorf("stored product = %v, want 10", got)
	}
	if st.Mem.FPUOps != 1 {
		t.Errorf("FPUOps = %d, want 1", st.Mem.FPUOps)
	}
}

func TestFPUResultOrderAmongLoads(t *testing.T) {
	// Trigger a (slow) multiply, then issue a (fast) load; R7 reads must
	// see the multiply result first because it was requested first.
	src := `
        lui  r2, 0x7
        ori  r2, r2, 0xF000   ; FPU A
        lui  r3, 0x7
        ori  r3, r3, 0xF004   ; FPU MUL
        la   r1, v
        ld   0(r1)            ; operand a = 3.0
        ld   4(r1)            ; operand b = 5.0
        st   0(r2)
        mov  r7, r7           ; a -> FPU A
        st   0(r3)
        mov  r7, r7           ; b -> trigger multiply (result reserved)
        ld   8(r1)            ; fast integer load, requested after
        mov  r4, r7           ; must be the product 15.0
        mov  r5, r7           ; must be 777
        halt
        .data
v:      .float 3.0, 5.0
        .word 777
`
	sim, _ := runAsm(t, defCfg(), src)
	if got := math.Float32frombits(uint32(sim.Reg(4))); got != 15.0 {
		t.Errorf("first R7 read = %v, want the FPU product 15", got)
	}
	if got := sim.Reg(5); got != 777 {
		t.Errorf("second R7 read = %d, want 777", got)
	}
}

func TestSDQFullStall(t *testing.T) {
	// A hot loop issuing one store per seven instructions against very
	// slow non-pipelined memory (one store drains every ~12 cycles) must
	// fill 2-entry store queues and stall issue.
	cfg := defCfg()
	cfg.Mem.AccessTime = 12
	cfg.CacheBytes = 512
	cfg.CPU = cpu.Config{LAQDepth: 8, LDQDepth: 8, SAQDepth: 2, SDQDepth: 2}
	_, st := runAsm(t, cfg, `
        la    r1, buf
        li    r2, 7
        li    r3, 16
        setb  b0, loop
loop:   st    0(r1)
        mov   r7, r2
        addi  r3, r3, -1
        pbr   ne, r3, b0, 3
        addi  r1, r1, 4
        nop
        nop
        halt
        .data
buf:    .space 16
`)
	if st.CPU.StallQueueFull == 0 {
		t.Error("no structural stall with tiny store queues and slow memory")
	}
	if st.CPU.Stores != 16 {
		t.Errorf("stores = %d, want 16", st.CPU.Stores)
	}
}

func TestSETBRIndirectBranch(t *testing.T) {
	sim, _ := runAsm(t, defCfg(), `
        la    r1, dest
        setbr b2, r1
        li    r3, 1
        pbr   al, r0, b2, 0
        li    r3, 99       ; skipped
dest:   halt
`)
	if got := sim.Reg(3); got != 1 {
		t.Errorf("r3 = %d, want 1", got)
	}
}

func TestDeterminism(t *testing.T) {
	src := `
        li    r1, 30
        li    r2, 0
        la    r3, buf
        setb  b0, loop
loop:   st    0(r3)
        mov   r7, r1
        ld    0(r3)
        add   r2, r2, r7
        addi  r1, r1, -1
        pbr   ne, r1, b0, 2
        addi  r3, r3, 0
        nop
        halt
        .data
buf:    .word 0
`
	cfg := defCfg()
	cfg.Mem.AccessTime = 3
	var cycles []uint64
	for i := 0; i < 3; i++ {
		_, st := runAsm(t, cfg, src)
		cycles = append(cycles, st.Cycles)
	}
	if cycles[0] != cycles[1] || cycles[1] != cycles[2] {
		t.Errorf("non-deterministic cycle counts: %v", cycles)
	}
}

func TestConventionalEngineExecutesIdentically(t *testing.T) {
	src := `
        li    r1, 10
        li    r2, 0
        setb  b0, loop
loop:   add   r2, r2, r1
        addi  r1, r1, -1
        pbr   ne, r1, b0, 2
        nop
        nop
        halt
`
	for _, strat := range []core.FetchStrategy{core.FetchPIPE, core.FetchConventional} {
		cfg := defCfg()
		cfg.Fetch = strat
		sim, st := runAsm(t, cfg, src)
		if got := sim.Reg(2); got != 55 {
			t.Errorf("%v: sum = %d, want 55", strat, got)
		}
		if st.CPU.Instructions == 0 {
			t.Errorf("%v: no instructions retired", strat)
		}
	}
}

func TestTIBEngineExecutesIdentically(t *testing.T) {
	cfg := defCfg()
	cfg.Fetch = core.FetchTIB
	cfg.TIBEntries = 4
	cfg.TIBLineBytes = 16
	sim, _ := runAsm(t, cfg, `
        li    r1, 10
        li    r2, 0
        setb  b0, loop
loop:   add   r2, r2, r1
        addi  r1, r1, -1
        pbr   ne, r1, b0, 2
        nop
        nop
        halt
`)
	if got := sim.Reg(2); got != 55 {
		t.Errorf("TIB: sum = %d, want 55", got)
	}
}

func TestQueueRegisterWriteThenStorePairing(t *testing.T) {
	// Two stores with data pushed before/after address generation.
	sim, _ := runAsm(t, defCfg(), `
        la   r1, buf
        li   r2, 5
        li   r3, 6
        mov  r7, r2        ; datum for first store, pushed early
        st   0(r1)
        st   4(r1)
        mov  r7, r3        ; datum for second store, pushed late
        ld   0(r1)
        ld   4(r1)
        mov  r4, r7
        mov  r5, r7
        halt
        .data
buf:    .word 0, 0
`)
	if sim.Reg(4) != 5 || sim.Reg(5) != 6 {
		t.Errorf("store pairing broken: got %d,%d want 5,6", sim.Reg(4), sim.Reg(5))
	}
}

func TestRunTwiceFails(t *testing.T) {
	img, _ := asm.Assemble("halt\n")
	sim, err := core.New(defCfg(), img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("second Run succeeded")
	}
}

func TestInstructionCountExact(t *testing.T) {
	// 3 setup + 10 iterations of 5 + halt = 54 retired instructions.
	_, st := runAsm(t, defCfg(), `
        li    r1, 10
        li    r2, 0
        setb  b0, loop
loop:   add   r2, r2, r1
        addi  r1, r1, -1
        pbr   ne, r1, b0, 2
        nop
        nop
        halt
`)
	want := uint64(3 + 10*5 + 1)
	if st.CPU.Instructions != want {
		t.Errorf("instructions = %d, want %d", st.CPU.Instructions, want)
	}
}

func TestConfigValidation(t *testing.T) {
	img, _ := asm.Assemble("halt\n")
	bad := defCfg()
	bad.CPU.LDQDepth = 0
	if _, err := core.New(bad, img); err == nil {
		t.Error("zero LDQ depth accepted")
	}
	bad2 := defCfg()
	bad2.Mem = mem.Config{}
	if _, err := core.New(bad2, img); err == nil {
		t.Error("zero mem config accepted")
	}
	bad3 := defCfg()
	bad3.CacheBytes = 0
	if _, err := core.New(bad3, img); err == nil {
		t.Error("zero cache accepted")
	}
}

func TestDataQueuesTolerateLatency(t *testing.T) {
	// The decoupling claim (paper §2.2): moving loads ahead of their uses
	// lets the queues hide memory latency. Run the same work in a hot
	// loop (so instruction supply is from the cache) with loads hoisted
	// to the loop top versus loads immediately before each use; the
	// hoisted schedule must be faster at a 6-cycle access time.
	run := func(body string) uint64 {
		cfg := defCfg()
		cfg.Mem.AccessTime = 6
		cfg.Mem.Pipelined = true
		cfg.CacheBytes = 512
		_, st := runAsm(t, cfg, `
        li    r1, 100
        la    r2, vec
        li    r3, 0
        setb  b0, loop
loop:`+body+`
        addi  r1, r1, -1
        pbr   ne, r1, b0, 2
        nop
        nop
        halt
        .data
vec:    .word 1, 2, 3, 4
`)
		return st.Cycles
	}
	early := run(`
        ld    0(r2)
        ld    4(r2)
        ld    8(r2)
        nop
        nop
        nop
        add   r3, r3, r7
        add   r3, r3, r7
        add   r3, r3, r7
`)
	late := run(`
        ld    0(r2)
        add   r3, r3, r7
        nop
        ld    4(r2)
        add   r3, r3, r7
        nop
        ld    8(r2)
        add   r3, r3, r7
        nop
`)
	if early >= late {
		t.Errorf("early-scheduled loads (%d cycles) not faster than load-use schedule (%d cycles)", early, late)
	}
}

func TestBankSwitchSubroutine(t *testing.T) {
	// A subroutine call in the PIPE style: the callee runs on the
	// background register set ("to improve the speed of subroutine
	// calling"), so the caller's registers survive untouched.
	sim, _ := runAsm(t, defCfg(), `
        li    r1, 111        ; caller state
        li    r2, 222
        setb  b0, callee
        setb  b1, back
        pbr   al, r0, b0, 0  ; call
        li    r4, 9          ; skipped (not a delay slot)
back:   mov   r3, r1         ; caller resumes: r1/r2 must be intact
        halt
callee: bank                 ; switch to background registers
        li    r1, 900        ; clobber freely
        li    r2, 901
        bank                 ; restore the caller's set
        pbr   al, r0, b1, 1
        nop
`)
	if sim.Reg(1) != 111 || sim.Reg(2) != 222 {
		t.Errorf("caller registers clobbered: r1=%d r2=%d", sim.Reg(1), sim.Reg(2))
	}
	if sim.Reg(3) != 111 {
		t.Errorf("r3 = %d, want 111", sim.Reg(3))
	}
	if sim.Reg(4) == 9 {
		t.Error("fall-through instruction executed despite taken call")
	}
}

func TestBankPreservesQueueRegister(t *testing.T) {
	// R7 is not banked: a value loaded before BANK pops after it.
	sim, _ := runAsm(t, defCfg(), `
        la   r1, v
        ld   0(r1)
        bank
        mov  r2, r7
        bank
        halt
        .data
v:      .word 4242
`)
	// r2 was written in the background bank; after the second BANK the
	// foreground r2 is back (0), and the background one held 4242. Check
	// via a third read after swapping once more is simpler: re-run with a
	// single bank and read r2 directly.
	_ = sim
	sim2, _ := runAsm(t, defCfg(), `
        la   r1, v
        ld   0(r1)
        bank
        mov  r2, r7
        halt
        .data
v:      .word 4242
`)
	if got := sim2.Reg(2); got != 4242 {
		t.Errorf("r7 across BANK = %d, want 4242 (queue register is shared)", got)
	}
}

func TestDataCacheCorrectnessAndSpeedup(t *testing.T) {
	// A reduction that rereads the same words every iteration: the data
	// cache must keep results identical while cutting bus loads and
	// cycles at a slow memory.
	src := `
        li    r1, 40
        li    r2, 0
        la    r3, vec
        setb  b0, loop
loop:   ld    0(r3)
        ld    4(r3)
        ld    8(r3)
        mov   r4, r7
        add   r2, r2, r4
        mov   r4, r7
        add   r2, r2, r4
        mov   r4, r7
        add   r2, r2, r4
        addi  r1, r1, -1
        pbr   ne, r1, b0, 2
        nop
        nop
        halt
        .data
vec:    .word 3, 5, 7
`
	run := func(dcache int) (int32, uint64, uint64, *stats.Sim) {
		cfg := defCfg()
		cfg.Mem.AccessTime = 6
		cfg.CacheBytes = 512
		cfg.CPU.DCacheBytes = dcache
		sim, st := runAsm(t, cfg, src)
		return sim.Reg(2), st.Cycles, st.Mem.Accepted[stats.ReqDataLoad], st
	}
	sumNo, cycNo, loadsNo, _ := run(0)
	sumD, cycD, loadsD, stD := run(64)
	want := int32(40 * (3 + 5 + 7))
	if sumNo != want || sumD != want {
		t.Fatalf("sums = %d / %d, want %d", sumNo, sumD, want)
	}
	if stD.CPU.DCacheHits == 0 {
		t.Fatal("data cache recorded no hits on a rereading loop")
	}
	if loadsD >= loadsNo {
		t.Errorf("bus loads with dcache %d, without %d; cache should cut traffic", loadsD, loadsNo)
	}
	if cycD >= cycNo {
		t.Errorf("cycles with dcache %d, without %d; hits should help at T=6", cycD, cycNo)
	}
}

func TestDataCacheWithRecurrenceKernel(t *testing.T) {
	// LL5 loads the value stored the previous iteration; write-allocate
	// must serve it correctly (same-address store->load ordering).
	cfg := defCfg()
	cfg.CPU.DCacheBytes = 128
	cfg.Mem.AccessTime = 3
	img, err := asm.Assemble(`
        la    r1, x+4
        li    r5, 50
        li    r2, 3
        setb  b0, loop
loop:   ld    -4(r1)       ; x[k-1], stored last iteration
        mov   r3, r7
        add   r3, r3, r2
        st    0(r1)
        mov   r7, r3       ; x[k] = x[k-1] + 3
        addi  r5, r5, -1
        pbr   ne, r5, b0, 1
        addi  r1, r1, 4
        halt
        .data
x:      .word 10
        .space 64
`)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := core.New(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.CPU.DCacheHits == 0 {
		t.Error("recurrence never hit the write-allocated line")
	}
	base, _ := img.Lookup("x")
	for k := 0; k <= 50; k++ {
		want := uint32(10 + 3*k)
		if got := sim.ReadWord(base + uint32(4*k)); got != want {
			t.Fatalf("x[%d] = %d, want %d (stale data-cache value?)", k, got, want)
		}
	}
}

var _ = program.TextBase // keep import for doc reference
