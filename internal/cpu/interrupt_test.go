package cpu_test

import (
	"testing"

	"pipesim/internal/asm"
	"pipesim/internal/core"
	"pipesim/internal/isa"
	"pipesim/internal/trace"
)

// interruptProgram: a main loop summing 1..40 into r2, plus a handler that
// increments a memory counter on its own register bank and returns. The
// handler must leave the interrupted computation bit-identical.
const interruptProgram = `
        li    r1, 40
        li    r2, 0
        setb  b0, loop
loop:   add   r2, r2, r1
        addi  r1, r1, -1
        pbr   ne, r1, b0, 2
        nop
        nop
        la    r3, out
        st    0(r3)
        mov   r7, r2
        halt

isr:    la    r1, counter     ; background bank: registers are free
        ld    0(r1)
        mov   r2, r7
        addi  r2, r2, 1
        st    0(r1)
        mov   r7, r2
        bank                  ; restore the interrupted context's registers
        pbr   al, r0, b7, 0   ; B7 holds the resume address

        .data
out:     .word 0
counter: .word 0
`

func runWithInterrupt(t *testing.T, strat core.FetchStrategy, at uint64) (*core.Simulator, uint64, uint64) {
	t.Helper()
	img, err := asm.Assemble(interruptProgram)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Fetch = strat
	cfg.TIBEntries = 2
	cfg.TIBLineBytes = 16
	cfg.Mem.AccessTime = 3
	cfg.InterruptAt = at
	if at != 0 {
		isr, ok := img.Lookup("isr")
		if !ok {
			t.Fatal("no isr symbol")
		}
		cfg.InterruptVector = isr
	}
	sim, err := core.New(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	out, _ := img.Lookup("out")
	counter, _ := img.Lookup("counter")
	return sim, uint64(sim.ReadWord(out)), uint64(sim.ReadWord(counter))
}

func TestInterruptPreservesComputation(t *testing.T) {
	for _, strat := range []core.FetchStrategy{core.FetchPIPE, core.FetchConventional, core.FetchTIB} {
		// Baseline without interrupt.
		_, base, cnt0 := runWithInterrupt(t, strat, 0)
		if base != 820 || cnt0 != 0 {
			t.Fatalf("%v baseline: out=%d counter=%d", strat, base, cnt0)
		}
		// Interrupt mid-loop at several points.
		for _, at := range []uint64{25, 60, 111} {
			_, out, cnt := runWithInterrupt(t, strat, at)
			if out != 820 {
				t.Errorf("%v interrupt@%d: sum = %d, want 820 (context corrupted)", strat, at, out)
			}
			if cnt != 1 {
				t.Errorf("%v interrupt@%d: handler ran %d times, want 1", strat, at, cnt)
			}
		}
	}
}

func TestInterruptIsSingleLevel(t *testing.T) {
	// A second RaiseInterrupt after the first is ignored; core only raises
	// once anyway, so drive the CPU directly through a tracer hook check:
	// the handler body must appear exactly once in the retired stream.
	img, err := asm.Assemble(interruptProgram)
	if err != nil {
		t.Fatal(err)
	}
	isr, _ := img.Lookup("isr")
	cfg := core.DefaultConfig()
	cfg.InterruptAt = 30
	cfg.InterruptVector = isr
	sim, err := core.New(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := trace.NewRing(1 << 14)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetRetireTracer(ring)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	entries := 0
	banks := 0
	for _, e := range ring.Events() {
		if e.PC == isr {
			entries++
		}
		if e.Inst.Op == isa.OpBANK {
			banks++
		}
	}
	if entries != 1 {
		t.Errorf("handler entered %d times, want 1", entries)
	}
	if banks != 1 {
		t.Errorf("retired %d BANKs, want 1 (the handler's return swap)", banks)
	}
}

func TestInterruptDuringHaltedIgnored(t *testing.T) {
	img, err := asm.Assemble("halt\n")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.InterruptAt = 50 // long after HALT retires
	cfg.InterruptVector = 0
	sim, err := core.New(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.CPU.Instructions != 1 {
		t.Errorf("instructions = %d, want 1", st.CPU.Instructions)
	}
}

// TestInterruptWithLoadsInFlight: the decoupled queues survive an
// interrupt — loads issued before the interrupt arrive (in order) during
// or after the register-only handler, and the resumed context pops them
// correctly.
func TestInterruptWithLoadsInFlight(t *testing.T) {
	img, err := asm.Assemble(`
        la    r1, vec
        ld    0(r1)
        ld    4(r1)
        ld    8(r1)
        nop
        nop
        nop
        nop
        nop
        mov   r2, r7
        mov   r3, r7
        mov   r4, r7
        halt
isr:    addi  r1, r1, 1      ; background bank, registers only
        bank
        pbr   al, r0, b7, 0
        .data
vec:    .word 100, 200, 300
`)
	if err != nil {
		t.Fatal(err)
	}
	isr, _ := img.Lookup("isr")
	for at := uint64(2); at <= 20; at++ {
		cfg := core.DefaultConfig()
		cfg.Mem.AccessTime = 6
		cfg.InterruptAt = at
		cfg.InterruptVector = isr
		sim, err := core.New(cfg, img)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatalf("interrupt@%d: %v", at, err)
		}
		if sim.Reg(2) != 100 || sim.Reg(3) != 200 || sim.Reg(4) != 300 {
			t.Fatalf("interrupt@%d: r2=%d r3=%d r4=%d; queue order broken across the interrupt",
				at, sim.Reg(2), sim.Reg(3), sim.Reg(4))
		}
	}
}

func TestInterruptNeverLandsInDelayWindow(t *testing.T) {
	// Sweep every early cycle: the interrupt must never corrupt the sum,
	// no matter where it lands relative to PBRs and delay slots.
	for at := uint64(5); at <= 120; at += 7 {
		_, out, cnt := runWithInterrupt(t, core.FetchPIPE, at)
		if out != 820 || cnt != 1 {
			t.Fatalf("interrupt@%d: out=%d counter=%d", at, out, cnt)
		}
	}
}
