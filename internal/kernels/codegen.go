// Package kernels generates the benchmark program of the paper: the first
// 14 Lawrence Livermore Loops compiled to PIPE assembly, calibrated so that
// every inner loop's byte size matches the paper's Table I exactly and a
// full run executes exactly 150,575 instructions.
//
// The kernels are written against a small expression code generator that
// plays the role of the PIPE compiler. Floating-point arithmetic goes
// through the memory-mapped external FPU ("a pair of data stores causes a
// multiply to occur"), and all array traffic flows through the
// architectural queues, so each inner loop generates the heavy data-request
// stream the paper relies on to study the interaction of instruction and
// data fetching.
//
// # Code generation model
//
// Values travel through the Load Data Queue (R7). The LDQ is FIFO, so the
// generator enforces the fundamental discipline that values must be
// requested in exactly the order they will be consumed:
//
//   - a Load leaf issues LD off(ptr) and its value is popped later;
//   - an FPU operation stores operand A (popping it from the LDQ or moving
//     it from a register), then stores operand B to the trigger address;
//     the result occupies the next LDQ slot;
//   - an operation's right operand must be a register or a direct load —
//     compound right operands are first evaluated and spilled to a scratch
//     register (one extra instruction), keeping the request/pop orders
//     aligned.
//
// Register convention inside a kernel:
//
//	r1 — FPU base pointer (program-wide)
//	r2 — moving array pointer (advanced each iteration)
//	r3 — second moving pointer or scratch, per kernel
//	r5 — loop counter (counts down)
//	r0, r4, r6 — constants and spill scratch, per kernel
//	r7 — the architectural queue register
package kernels

import (
	"fmt"

	"pipesim/internal/isa"
)

// Register roles. Exported aliases let other front ends (internal/minic)
// target the same convention.
const (
	regFPU     = 1 // FPU base pointer, program-wide
	regPtr     = 2 // primary moving array pointer
	regPtr2    = 3 // secondary pointer / scratch
	regCounter = 5 // loop counter
)

// Exported register-convention names for other code generators.
const (
	RegFPU     = regFPU
	RegPtr     = regPtr
	RegPtr2    = regPtr2
	RegCounter = regCounter
)

// FPU register offsets from the FPU base pointer (see internal/mem).
const (
	fpuOffA   = 0
	fpuOffMul = 4
	fpuOffAdd = 8
	fpuOffSub = 12
	fpuOffDiv = 16
)

// Expr is a floating-point expression evaluated through the FPU.
type Expr interface{ isExpr() }

// LoadX reads the array word at off(r2), the moving primary pointer.
type LoadX struct{ Off int32 }

// LoadY reads the array word at off(r3), the moving secondary pointer.
type LoadY struct{ Off int32 }

// Reg uses a register's bits directly (preloaded constants, spilled
// temporaries, accumulators).
type Reg struct{ R uint8 }

// Op applies an FPU operation to two subexpressions.
type Op struct {
	Kind byte // '*', '+', '-', '/'
	A, B Expr
}

func (LoadX) isExpr() {}
func (LoadY) isExpr() {}
func (Reg) isExpr()   {}
func (Op) isExpr()    {}

// Convenience constructors.

// Mul returns a*b.
func Mul(a, b Expr) Expr { return Op{Kind: '*', A: a, B: b} }

// Add returns a+b.
func Add(a, b Expr) Expr { return Op{Kind: '+', A: a, B: b} }

// Sub returns a-b.
func Sub(a, b Expr) Expr { return Op{Kind: '-', A: a, B: b} }

// Div returns a/b.
func Div(a, b Expr) Expr { return Op{Kind: '/', A: a, B: b} }

// X reads element off words past the primary pointer.
func X(off int32) Expr { return LoadX{Off: 4 * off} }

// Y reads element off words past the secondary pointer.
func Y(off int32) Expr { return LoadY{Off: 4 * off} }

// R reads a register.
func R(r uint8) Expr { return Reg{R: r} }

// gen emits instructions for one kernel iteration body into a buffer, so
// the kernel emitter can place the prepare-to-branch ahead of the trailing
// body instructions and use them as delay slots.
type gen struct {
	out     []isa.Inst
	scratch []uint8 // registers free for spills, used LIFO
}

func (g *gen) emitInst(in isa.Inst) {
	if err := isa.Validate(in); err != nil {
		panic("kernels: " + err.Error())
	}
	g.out = append(g.out, in)
}

func (g *gen) ld(base uint8, off int32) {
	g.emitInst(isa.Inst{Op: isa.OpLD, Ra: base, Imm: off})
}

func (g *gen) st(base uint8, off int32) {
	g.emitInst(isa.Inst{Op: isa.OpST, Ra: base, Imm: off})
}

func (g *gen) mov(rd, ra uint8) {
	g.emitInst(isa.Inst{Op: isa.OpADDI, Rd: rd, Ra: ra, Imm: 0})
}

// popTo pops the LDQ head into a register.
func (g *gen) popTo(rd uint8) { g.mov(rd, isa.QueueReg) }

// takeScratch allocates a spill register.
func (g *gen) takeScratch() uint8 {
	if len(g.scratch) == 0 {
		panic("kernels: out of scratch registers; restructure the expression")
	}
	r := g.scratch[len(g.scratch)-1]
	g.scratch = g.scratch[:len(g.scratch)-1]
	return r
}

func (g *gen) releaseScratch(r uint8) { g.scratch = append(g.scratch, r) }

// trigger returns the FPU trigger offset for an operation kind.
func trigger(kind byte) int32 {
	switch kind {
	case '*':
		return fpuOffMul
	case '+':
		return fpuOffAdd
	case '-':
		return fpuOffSub
	case '/':
		return fpuOffDiv
	}
	panic(fmt.Sprintf("kernels: unknown op %q", kind))
}

// emit generates code for e. Afterwards the value is the newest LDQ entry
// (for loads and ops) or sits in a register (for Reg). It returns the
// operand source for the consumer: the register, or QueueReg for LDQ.
func (g *gen) emit(e Expr) uint8 {
	switch e := e.(type) {
	case Reg:
		return e.R
	case LoadX:
		g.ld(regPtr, e.Off)
		return isa.QueueReg
	case LoadY:
		g.ld(regPtr2, e.Off)
		return isa.QueueReg
	case Op:
		// FIFO discipline: the operation pops A then B, so their values
		// must be requested in that order with nothing interleaved.
		// When B is compound its internal traffic would break that for
		// an in-queue A, so A is parked: a compound A is evaluated and
		// spilled to a scratch register (released as soon as this
		// operation's code is emitted, so chains of accumulating
		// operations need only one scratch per live nesting level); a
		// leaf-load A defers behind a spilled B; a register A needs no
		// spill at all.
		_, bCompound := e.B.(Op)
		if !bCompound {
			aSrc := g.emit(e.A)
			g.st(regFPU, fpuOffA)
			g.mov(isa.QueueReg, aSrc) // pops the LDQ if aSrc == r7
			bSrc := g.emit(e.B)       // register or direct load
			g.st(regFPU, trigger(e.Kind))
			g.mov(isa.QueueReg, bSrc)
			return isa.QueueReg
		}
		switch a := e.A.(type) {
		case Reg:
			g.emit(e.B)
			g.st(regFPU, fpuOffA)
			g.mov(isa.QueueReg, a.R)
			g.st(regFPU, trigger(e.Kind))
			g.mov(isa.QueueReg, isa.QueueReg) // pops B's result
		case Op:
			g.emit(a)
			r := g.takeScratch()
			g.popTo(r)
			g.emit(e.B)
			g.st(regFPU, fpuOffA)
			g.mov(isa.QueueReg, r)
			g.st(regFPU, trigger(e.Kind))
			g.mov(isa.QueueReg, isa.QueueReg)
			g.releaseScratch(r)
		default: // leaf load: evaluate and spill B instead
			g.emit(e.B)
			r := g.takeScratch()
			g.popTo(r)
			g.emit(e.A)
			g.st(regFPU, fpuOffA)
			g.mov(isa.QueueReg, isa.QueueReg) // pops A
			g.st(regFPU, trigger(e.Kind))
			g.mov(isa.QueueReg, r)
			g.releaseScratch(r)
		}
		return isa.QueueReg
	}
	panic("kernels: unknown expression node")
}

// cost returns the number of instructions emit would generate for e.
func cost(e Expr) int {
	switch e := e.(type) {
	case Reg:
		return 0
	case LoadX, LoadY:
		return 1
	case Op:
		n := 4 // two stores, two queue moves
		if _, bCompound := e.B.(Op); bCompound {
			n += cost(e.B)
			if _, aReg := e.A.(Reg); !aReg {
				n += cost(e.A) + 1 // evaluate + spill one side
			}
		} else {
			n += cost(e.A) + cost(e.B)
		}
		return n
	}
	panic("kernels: unknown expression node")
}

// Stmt is one statement of a kernel body.
type Stmt interface{ isStmt() }

// storeX writes an expression to off(r2).
type storeX struct {
	Off int32
	E   Expr
}

// storeY writes an expression to off(r3).
type storeY struct {
	Off int32
	E   Expr
}

// popReg evaluates an expression and leaves it in a register (used for
// accumulators that live across iterations).
type popReg struct {
	R uint8
	E Expr
}

// raw injects hand-written instructions (integer index arithmetic, gather
// address computation) between expression statements.
type raw struct{ ins []isa.Inst }

func (storeX) isStmt() {}
func (storeY) isStmt() {}
func (popReg) isStmt() {}
func (raw) isStmt()    {}

// StoreX writes e to element off (in words) past the primary pointer.
func StoreX(off int32, e Expr) Stmt { return storeX{Off: 4 * off, E: e} }

// StoreY writes e to element off (in words) past the secondary pointer.
func StoreY(off int32, e Expr) Stmt { return storeY{Off: 4 * off, E: e} }

// PopReg evaluates e into register r.
func PopReg(r uint8, e Expr) Stmt { return popReg{R: r, E: e} }

// Raw injects literal instructions.
func Raw(ins ...isa.Inst) Stmt { return raw{ins: ins} }

func (g *gen) emitStmt(s Stmt) {
	switch s := s.(type) {
	case storeX:
		src := g.emit(s.E)
		g.st(regPtr, s.Off)
		g.mov(isa.QueueReg, src)
	case storeY:
		src := g.emit(s.E)
		g.st(regPtr2, s.Off)
		g.mov(isa.QueueReg, src)
	case popReg:
		src := g.emit(s.E)
		if src == isa.QueueReg {
			g.popTo(s.R)
		} else if src != s.R {
			g.mov(s.R, src)
		}
	case raw:
		for _, in := range s.ins {
			g.emitInst(in)
		}
	}
}

// CompileBody lowers statements to instructions under the FIFO queue
// discipline, using the given spill registers. Generation errors (spill
// exhaustion, invalid instructions) are returned rather than panicking, so
// front ends can surface them to users.
func CompileBody(stmts []Stmt, scratch []uint8) (ins []isa.Inst, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	g := &gen{scratch: append([]uint8(nil), scratch...)}
	for _, s := range stmts {
		g.emitStmt(s)
	}
	return g.out, nil
}

// BodyCost returns the instruction count CompileBody would produce.
func BodyCost(stmts []Stmt) int {
	n := 0
	for _, s := range stmts {
		n += stmtCost(s)
	}
	return n
}

func stmtCost(s Stmt) int {
	switch s := s.(type) {
	case storeX:
		return cost(s.E) + 2
	case storeY:
		return cost(s.E) + 2
	case popReg:
		c := cost(s.E)
		if _, isReg := s.E.(Reg); !isReg {
			c++
		}
		return c
	case raw:
		return len(s.ins)
	}
	panic("kernels: unknown statement")
}
