package kernels

import (
	"pipesim/internal/isa"
)

// ax reads array element name[K+idx], where K = ptrStart + k is the
// current element index carried by the moving primary pointer. The offset
// from the pointer is simply the array offset plus idx.
func (c *ctx) ax(name string, idx int32) Expr {
	return X(c.off(name) + idx)
}

// sx stores an expression to name[K+idx].
func (c *ctx) sx(name string, idx int32, e Expr) Stmt {
	return StoreX(c.off(name)+idx, e)
}

// gather emits the indirect-addressing preamble of the particle-in-cell
// kernels: load an index (a prescaled byte offset), pop it, and point the
// secondary pointer at grid base + index.
func (c *ctx) gather(ixArray string) Stmt {
	return Raw(
		isa.Inst{Op: isa.OpLD, Ra: regPtr, Imm: 4 * c.off(ixArray)},
		isa.Inst{Op: isa.OpADDI, Rd: 6, Ra: isa.QueueReg},
		isa.Inst{Op: isa.OpADD, Rd: regPtr2, Ra: 0, Rb: 6},
	)
}

// kernelDefs returns the 14 loop definitions. extraLL11 bumps loop 11's
// iteration count (the calibration knob used to hit the paper's exact
// 150,575 executed instructions).
func kernelDefs(extraLL11 int) []kernelDef {
	advP := []advanceSpec{{reg: regPtr, delta: 4}}
	return []kernelDef{
		{
			index: 1, name: "hydro", tableIBytes: tableI[0], iters: 393,
			desc: "hydrodynamics fragment: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])",
			arrays: []array{
				{"x", 393 + 32, nil},
				{"y", 393 + 32, initLin},
				{"z", 393 + 48, initSmall},
				{"consts", 4, func(i int) uint32 { return [4]uint32{f32(1.25), f32(0.5), f32(0.25), 0}[i] }},
			},
			scratch: []uint8{regPtr2},
			setup: func(c *ctx) {
				c.ldConst(0, "consts", 0) // q
				c.ldConst(4, "consts", 1) // r
				c.ldConst(6, "consts", 2) // t
			},
			stmts: func(c *ctx) []Stmt {
				inner := Add(Mul(R(4), c.ax("z", 10)), Mul(R(6), c.ax("z", 11)))
				return []Stmt{c.sx("x", 0, Add(Mul(inner, c.ax("y", 0)), R(0)))}
			},
			advances: advP,
		},
		{
			index: 2, name: "iccg", tableIBytes: tableI[1], iters: 210,
			desc: "incomplete Cholesky conjugate gradient (banded update form)",
			arrays: []array{
				{"x", 210 + 64, initLin},
				{"z", 210 + 64, initSmall},
				{"y", 210 + 32, initFrac},
				{"consts", 2, func(i int) uint32 { return f32(0.5) }},
			},
			scratch: []uint8{0, 6},
			setup:   func(c *ctx) { c.ldConst(4, "consts", 0) },
			stmts: func(c *ctx) []Stmt {
				e := Sub(Sub(Sub(c.ax("x", 0),
					Mul(c.ax("z", 0), c.ax("x", 10))),
					Mul(c.ax("z", 10), c.ax("x", 11))),
					Mul(c.ax("z", 20), c.ax("x", 12)))
				return []Stmt{
					c.sx("x", 0, e),
					c.sx("y", 0, Add(Mul(R(4), c.ax("x", 0)), c.ax("y", 0))),
				}
			},
			advances: advP,
		},
		{
			index: 3, name: "inner-product", tableIBytes: tableI[2], iters: 669,
			desc: "inner product: q += z[k]*x[k] (register accumulator)",
			arrays: []array{
				{"x", 669 + 32, initLin},
				{"z", 669 + 32, initSmall},
				{"result", 2, nil},
				{"consts", 2, nil}, // q starts at 0.0
			},
			scratch: []uint8{0, 6},
			setup:   func(c *ctx) { c.ldConst(4, "consts", 0) },
			stmts: func(c *ctx) []Stmt {
				return []Stmt{PopReg(4, Add(Mul(c.ax("x", 0), c.ax("z", 0)), R(4)))}
			},
			advances: advP,
			epilogue: func(c *ctx) { c.storeRegTo("result", 0, 4) },
		},
		{
			index: 4, name: "banded-linear", tableIBytes: tableI[3], iters: 535,
			desc: "banded linear equations: x[k] -= y[k]*x[k+5]",
			arrays: []array{
				{"x", 535 + 48, initLin},
				{"y", 535 + 32, initSmall},
			},
			scratch: []uint8{0, 4, 6},
			stmts: func(c *ctx) []Stmt {
				return []Stmt{c.sx("x", 0, Sub(c.ax("x", 0), Mul(c.ax("y", 0), c.ax("x", 5))))}
			},
			advances: advP,
		},
		{
			index: 5, name: "tridiagonal", tableIBytes: tableI[4], iters: 563, ptrStart: 1,
			desc: "tri-diagonal elimination: x[k] = z[k]*(y[k] - x[k-1]) (true recurrence)",
			arrays: []array{
				{"x", 563 + 32, initLin},
				{"y", 563 + 32, initFrac},
				{"z", 563 + 32, initSmall},
			},
			scratch: []uint8{0, 4, 6},
			stmts: func(c *ctx) []Stmt {
				return []Stmt{c.sx("x", 0, Mul(Sub(c.ax("y", 0), c.ax("x", -1)), c.ax("z", 0)))}
			},
			advances: advP,
		},
		{
			index: 6, name: "linear-recurrence", tableIBytes: tableI[5], iters: 594, ptrStart: 1,
			desc: "general linear recurrence: w[k] += b[k]*w[k-1]",
			arrays: []array{
				{"w", 594 + 32, initSmall},
				{"b", 594 + 32, func(i int) uint32 { return f32(0.25 + 0.0001*float32(i%11)) }},
			},
			scratch: []uint8{0, 4, 6},
			stmts: func(c *ctx) []Stmt {
				return []Stmt{c.sx("w", 0, Add(Mul(c.ax("b", 0), c.ax("w", -1)), c.ax("w", 0)))}
			},
			advances: advP,
		},
		{
			index: 7, name: "state-equation", tableIBytes: tableI[6], iters: 149,
			desc: "equation of state fragment (nested Horner form)",
			arrays: []array{
				{"x", 149 + 32, nil},
				{"y", 149 + 32, initLin},
				{"z", 149 + 32, initSmall},
				{"u", 149 + 48, initFrac},
				{"consts", 2, func(i int) uint32 { return [2]uint32{f32(0.5), f32(0.25)}[i] }},
			},
			scratch: []uint8{0, regPtr2},
			setup: func(c *ctx) {
				c.ldConst(4, "consts", 0) // r
				c.ldConst(6, "consts", 1) // t
			},
			stmts: func(c *ctx) []Stmt {
				i2 := Add(Mul(R(4), c.ax("u", 1)), c.ax("u", 2))
				a2 := Add(Mul(i2, R(4)), c.ax("u", 3))
				a3 := Add(Mul(R(4), c.ax("u", 4)), c.ax("u", 5))
				comb := Mul(Add(a2, a3), R(6))
				t1 := Mul(Add(Mul(R(4), c.ax("y", 0)), c.ax("z", 0)), R(4))
				return []Stmt{c.sx("x", 0, Add(Add(comb, t1), c.ax("u", 0)))}
			},
			advances: advP,
		},
		{
			index: 8, name: "adi", tableIBytes: tableI[7], iters: 58, ptrStart: 1,
			desc: "ADI integration fragment: three coupled field updates",
			arrays: []array{
				{"u1", 58 + 32, initLin},
				{"u2", 58 + 32, initFrac},
				{"u3", 58 + 32, initSmall},
				{"du1", 58 + 32, nil},
				{"du2", 58 + 32, nil},
				{"du3", 58 + 32, nil},
				{"qa", 58 + 32, initSmall},
				{"consts", 10, func(i int) uint32 { return f32(0.125 + 0.03125*float32(i)) }},
			},
			scratch: []uint8{0, 4, 6},
			setup:   func(c *ctx) { c.setPtr2("consts", 0) },
			stmts: func(c *ctx) []Stmt {
				var ss []Stmt
				for i, u := range []string{"u1", "u2", "u3"} {
					du := []string{"du1", "du2", "du3"}[i]
					ss = append(ss, c.sx(du, 0, Sub(c.ax(u, 1), c.ax(u, -1))))
				}
				for i, u := range []string{"u1", "u2", "u3"} {
					a := int32(3 * i)
					e := Add(Mul(Y(a+0), c.ax("du1", 0)), c.ax(u, 0))
					e = Add(e, Mul(Y(a+1), c.ax("du2", 0)))
					e = Add(e, Mul(Y(a+2), c.ax("du3", 0)))
					e = Add(e, Mul(Y(9), c.ax(u, 1)))
					ss = append(ss, c.sx(u, 0, e))
				}
				ss = append(ss, c.sx("qa", 0, Add(Mul(c.ax("du1", 0), c.ax("du2", 0)), c.ax("qa", 0))))
				return ss
			},
			advances: advP,
		},
		{
			index: 9, name: "integrate-predictors", tableIBytes: tableI[8], iters: 157,
			desc: "numerical integration: px[k] = sum of weighted predictor terms",
			arrays: []array{
				{"px", 157 + 48, initLin},
				{"consts", 6, func(i int) uint32 { return f32(0.0625 * float32(i+1)) }},
			},
			scratch: []uint8{0, 4, 6},
			setup:   func(c *ctx) { c.setPtr2("consts", 0) },
			stmts: func(c *ctx) []Stmt {
				acc := Mul(Y(0), c.ax("px", 4))
				for i := int32(1); i <= 4; i++ {
					acc = Add(acc, Mul(Y(i), c.ax("px", 4+i)))
				}
				return []Stmt{c.sx("px", 0, Add(acc, c.ax("px", 2)))}
			},
			advances: advP,
		},
		{
			index: 10, name: "diff-predictors", tableIBytes: tableI[9], iters: 165,
			desc: "numerical differentiation: cumulative sums of difference tables",
			arrays: []array{
				{"cx", 165 + 48, initSmall},
				{"dx", 165 + 48, nil},
			},
			scratch: []uint8{0, 4, 6},
			stmts: func(c *ctx) []Stmt {
				acc := Add(c.ax("cx", 0), c.ax("cx", 1))
				for i := int32(2); i <= 8; i++ {
					acc = Add(acc, c.ax("cx", i))
				}
				return []Stmt{
					c.sx("dx", 0, acc),
					c.sx("dx", 1, Sub(c.ax("cx", 9), c.ax("cx", 0))),
					c.sx("dx", 2, Sub(c.ax("cx", 10), c.ax("cx", 1))),
				}
			},
			advances: advP,
		},
		{
			index: 11, name: "first-sum", tableIBytes: tableI[10], iters: 764 + extraLL11,
			desc: "first sum (prefix sum): x[k] = x[k-1] + y[k] (register accumulator)",
			// Array sizes stay fixed (with margin for the calibration
			// bump) so the data layout is independent of calibration.
			arrays: []array{
				{"x", 764 + 96, nil},
				{"y", 764 + 96, initSmall},
				{"consts", 2, nil},
			},
			scratch: []uint8{0, 6},
			setup:   func(c *ctx) { c.ldConst(4, "consts", 0) },
			stmts: func(c *ctx) []Stmt {
				return []Stmt{
					PopReg(4, Add(R(4), c.ax("y", 0))),
					c.sx("x", 0, R(4)),
				}
			},
			advances: advP,
		},
		{
			index: 12, name: "first-diff", tableIBytes: tableI[11], iters: 764,
			desc: "first difference: x[k] = y[k+1] - y[k]",
			arrays: []array{
				{"x", 764 + 32, nil},
				{"y", 764 + 48, initLin},
			},
			scratch: []uint8{0, 4, 6},
			stmts: func(c *ctx) []Stmt {
				return []Stmt{c.sx("x", 0, Sub(c.ax("y", 1), c.ax("y", 0)))}
			},
			advances: advP,
		},
		{
			index: 13, name: "pic-2d", tableIBytes: tableI[12], iters: 130,
			desc: "2-D particle in cell: gather/scatter charge deposition plus position and velocity updates",
			arrays: []array{
				{"grid", 3 * 64, func(i int) uint32 { return f32(0.03125 * float32(i%7)) }},
				{"ix", 130 + 32, func(i int) uint32 { return 12 * uint32((i*7)%64) }},
				{"ix2", 130 + 32, func(i int) uint32 { return 12 * uint32((i*13+5)%64) }},
				{"xx", 130 + 32, initLin},
				{"yy", 130 + 32, initFrac},
				{"vx", 130 + 32, initSmall},
				{"vy", 130 + 32, initSmall},
				{"consts", 2, func(i int) uint32 { return f32(0.125) }},
			},
			scratch: []uint8{6},
			setup: func(c *ctx) {
				c.ldConst(4, "consts", 0) // dt
				c.loadAddr(0, "grid", 0)
			},
			stmts: func(c *ctx) []Stmt {
				return []Stmt{
					c.gather("ix"),
					StoreY(0, Add(Y(0), Y(1))),
					c.sx("xx", 0, Add(Mul(c.ax("vx", 0), R(4)), c.ax("xx", 0))),
					c.sx("yy", 0, Add(Mul(c.ax("vy", 0), R(4)), c.ax("yy", 0))),
					c.sx("vx", 0, Add(Mul(Y(2), R(4)), c.ax("vx", 0))),
					c.sx("vy", 0, Add(Mul(Y(2), R(4)), c.ax("vy", 0))),
					c.gather("ix2"),
					StoreY(0, Add(Y(0), Y(1))),
				}
			},
			advances: advP,
		},
		{
			index: 14, name: "pic-1d", tableIBytes: tableI[13], iters: 191,
			desc: "1-D particle in cell: gather, deposit, move",
			arrays: []array{
				{"grid", 3 * 128, func(i int) uint32 { return f32(0.015625 * float32(i%11)) }},
				{"ix", 191 + 32, func(i int) uint32 { return 12 * uint32((i*11)%128) }},
				{"xx", 191 + 32, initLin},
				{"vx", 191 + 32, initSmall},
				{"ex", 191 + 48, initFrac},
				{"consts", 2, func(i int) uint32 { return f32(0.0625) }},
			},
			scratch: []uint8{6},
			setup: func(c *ctx) {
				c.ldConst(4, "consts", 0)
				c.loadAddr(0, "grid", 0)
			},
			stmts: func(c *ctx) []Stmt {
				return []Stmt{
					c.gather("ix"),
					StoreY(0, Add(Y(0), Y(1))),
					c.sx("xx", 0, Add(Mul(c.ax("vx", 0), R(4)), c.ax("xx", 0))),
					c.sx("vx", 0, Add(Mul(Y(2), R(4)), c.ax("vx", 0))),
					c.sx("ex", 0, Sub(c.ax("ex", 1), Mul(c.ax("xx", 0), R(4)))),
				}
			},
			advances: advP,
		},
	}
}
