package kernels

import (
	"fmt"
	"math"

	"pipesim/internal/isa"
	"pipesim/internal/obs"
	"pipesim/internal/program"
)

// TotalInstructions is the exact number of instructions one run of the
// benchmark executes, matching the paper ("A total of 150,575 instructions
// are executed in a single run through the benchmark program").
const TotalInstructions = 150575

// tableI lists the paper's Table I inner-loop sizes in bytes.
var tableI = [14]int{116, 204, 64, 80, 76, 72, 288, 732, 272, 260, 56, 56, 328, 224}

// LoopInfo describes one kernel for reporting.
type LoopInfo struct {
	Index      int    // 1-based loop number
	Name       string // short kernel name
	InnerBytes int    // Table I inner-loop size in bytes
	Iterations int    // calibrated iteration count
}

// TableI returns the inner-loop sizes the generated program is calibrated
// to (identical to the paper's Table I).
func TableI() []LoopInfo {
	defs := kernelDefs(0)
	out := make([]LoopInfo, len(defs))
	for i, d := range defs {
		out[i] = LoopInfo{Index: d.index, Name: d.name, InnerBytes: d.tableIBytes, Iterations: d.iters}
	}
	return out
}

// array declares one named region array.
type array struct {
	name  string
	words int
	init  func(i int) uint32
}

// advanceSpec is a pointer bump executed in the delay slots.
type advanceSpec struct {
	reg   uint8
	delta int32
}

// kernelDef declares one Livermore loop.
type kernelDef struct {
	index       int
	name        string
	desc        string
	tableIBytes int
	iters       int
	ptrStart    int32 // initial primary-pointer element (for k-1 accesses)
	arrays      []array
	scratch     []uint8 // registers free for expression spills
	setup       func(c *ctx)
	stmts       func(c *ctx) []Stmt
	advances    []advanceSpec
	epilogue    func(c *ctx)
}

// ctx carries per-kernel emission state.
type ctx struct {
	b      *program.Builder
	def    *kernelDef
	region uint32           // region base byte address
	offs   map[string]int32 // array name -> word offset within region
}

// off returns the word offset of an array within the kernel's region
// (relative to the initial primary pointer).
func (c *ctx) off(name string) int32 {
	o, ok := c.offs[name]
	if !ok {
		panic(fmt.Sprintf("kernels: ll%d references unknown array %q", c.def.index, name))
	}
	return o
}

// ldConst emits prologue code loading the array word at off into reg (two
// instructions: LD + queue pop).
func (c *ctx) ldConst(reg uint8, name string, idx int32) {
	c.b.LD(regPtr, 4*(c.off(name)+idx-c.def.ptrStart))
	c.b.RI(isa.OpADDI, reg, isa.QueueReg, 0)
}

// setPtr2 points the secondary pointer at an array (one instruction).
func (c *ctx) setPtr2(name string, idx int32) {
	c.b.RI(isa.OpADDI, regPtr2, regPtr, 4*(c.off(name)+idx-c.def.ptrStart))
}

// loadAddr loads the absolute address of an array element into reg (two
// instructions).
func (c *ctx) loadAddr(reg uint8, name string, idx int32) {
	c.b.LAAddr(reg, c.region+uint32(4*(c.off(name)+idx)))
}

// storeRegTo emits epilogue code writing reg to an array word: the primary
// pointer is re-pointed at the region, then a store pair is issued.
func (c *ctx) storeRegTo(name string, idx int32, reg uint8) {
	c.b.LAAddr(regPtr, c.region)
	c.b.ST(regPtr, 4*(c.off(name)+idx))
	c.b.RI(isa.OpADDI, isa.QueueReg, reg, 0)
}

// Counts reports the exact instruction arithmetic of a built program.
type Counts struct {
	PerKernel []KernelCount
	Filler    int // trailing NOPs before HALT
	Total     int // executed instructions including HALT
}

// KernelCount is the instruction accounting for one kernel.
type KernelCount struct {
	Index      int
	Prologue   int
	Body       int // instructions per iteration (== Table I bytes / 4)
	Iterations int
	Epilogue   int
}

// Executed returns the kernel's executed-instruction total.
func (k KernelCount) Executed() int { return k.Prologue + k.Body*k.Iterations + k.Epilogue }

// LoopBody returns the instruction words of loop `index`'s inner loop (from
// its loop label through the last delay slot), for code-density analysis.
func LoopBody(img *program.Image, index int) ([]uint32, error) {
	if index < 1 || index > len(tableI) {
		return nil, fmt.Errorf("kernels: loop %d out of range", index)
	}
	start, ok := img.Lookup(fmt.Sprintf("ll%d.loop", index))
	if !ok {
		return nil, fmt.Errorf("kernels: image has no loop symbol for loop %d", index)
	}
	n := tableI[index-1] / isa.WordBytes
	words := make([]uint32, n)
	for i := 0; i < n; i++ {
		w, ok := img.InstWord(start + uint32(4*i))
		if !ok {
			return nil, fmt.Errorf("kernels: loop %d body extends past text", index)
		}
		words[i] = w
	}
	return words, nil
}

// ArrayAddr returns the absolute byte address of element idx of the named
// array in loop `index`, for inspecting results after a run. The layout is
// independent of calibration.
func ArrayAddr(img *program.Image, index int, name string, idx int32) (uint32, error) {
	defs := kernelDefs(0)
	if index < 1 || index > len(defs) {
		return 0, fmt.Errorf("kernels: loop %d out of range", index)
	}
	base, ok := img.Lookup(fmt.Sprintf("ll%d", index))
	if !ok {
		return 0, fmt.Errorf("kernels: image has no region symbol for loop %d", index)
	}
	off := int32(0)
	for _, a := range defs[index-1].arrays {
		if a.name == name {
			return base + uint32(4*(off+idx)), nil
		}
		off += int32(a.words)
	}
	return 0, fmt.Errorf("kernels: loop %d has no array %q", index, name)
}

// LoopRanges resolves the PC range of each Livermore loop (prologue through
// epilogue) against the image's symbol table, for per-loop cycle
// attribution. Loop i spans from its ll<i>.code label to the next loop's
// label; the last loop ends at the text segment's end, so the trailing
// filler and HALT fall outside every range. Pass the image the simulator
// actually runs (Simulation/core Image()), since the native-format relayout
// moves every symbol.
func LoopRanges(img *program.Image) ([]obs.LoopRange, error) {
	defs := kernelDefs(0)
	out := make([]obs.LoopRange, 0, len(defs))
	for i, d := range defs {
		start, ok := img.Lookup(fmt.Sprintf("ll%d.code", d.index))
		if !ok {
			return nil, fmt.Errorf("kernels: image has no code symbol for loop %d", d.index)
		}
		end := img.TextEnd()
		if i+1 < len(defs) {
			next, ok := img.Lookup(fmt.Sprintf("ll%d.code", defs[i+1].index))
			if !ok {
				return nil, fmt.Errorf("kernels: image has no code symbol for loop %d", defs[i+1].index)
			}
			end = next
		}
		out = append(out, obs.LoopRange{Loop: d.index, Name: d.name, Start: start, End: end})
	}
	return out, nil
}

// Program builds the paper's benchmark: all 14 loops compiled as one
// program, each loop running to completion and falling through to the next
// (flushing the small instruction cache between loops). The build is
// calibrated so every inner loop matches Table I exactly and the executed
// instruction count equals TotalInstructions.
func Program() (*program.Image, *Counts, error) {
	// Pass 1: measure with base iteration counts.
	counts, err := buildCounts(0)
	if err != nil {
		return nil, nil, err
	}
	base := counts.Total
	deficit := TotalInstructions - base
	if deficit < 0 {
		return nil, nil, fmt.Errorf("kernels: base program executes %d instructions, over the %d target", base, TotalInstructions)
	}
	// Calibrate: extra iterations of LL11 (the smallest body) absorb most
	// of the deficit; a short run of trailing NOPs absorbs the remainder.
	ll11Body := tableI[10] / isa.WordBytes
	extraIters := deficit / ll11Body
	img, counts2, err := build(extraIters, deficit%ll11Body)
	if err != nil {
		return nil, nil, err
	}
	if counts2.Total != TotalInstructions {
		return nil, nil, fmt.Errorf("kernels: calibration produced %d instructions, want %d", counts2.Total, TotalInstructions)
	}
	return img, counts2, nil
}

// buildCounts measures the program without materializing it for callers.
func buildCounts(extraLL11 int) (*Counts, error) {
	_, c, err := build(extraLL11, 0)
	return c, err
}

// build emits the full benchmark with the given LL11 iteration bump and
// trailing filler.
func build(extraLL11, filler int) (*program.Image, *Counts, error) {
	b := program.NewBuilder()
	counts := &Counts{Filler: filler}
	// Program prologue: the FPU base pointer lives in r1 for the whole
	// run.
	b.LAAddr(regFPU, program.FPUBase)
	total := 2
	for _, def := range kernelDefs(extraLL11) {
		def := def
		kc, err := emitKernel(b, &def)
		if err != nil {
			return nil, nil, err
		}
		counts.PerKernel = append(counts.PerKernel, kc)
		total += kc.Executed()
	}
	for i := 0; i < filler; i++ {
		b.Nop()
	}
	b.Halt()
	total += filler + 1
	counts.Total = total
	img, err := b.Link()
	if err != nil {
		return nil, nil, err
	}
	return img, counts, nil
}

// KernelProgram builds a single loop as a standalone program (prologue,
// loop, epilogue, HALT), for focused tests and examples. Loops are
// numbered 1..14.
func KernelProgram(index int) (*program.Image, error) {
	defs := kernelDefs(0)
	if index < 1 || index > len(defs) {
		return nil, fmt.Errorf("kernels: loop %d out of range 1..%d", index, len(defs))
	}
	b := program.NewBuilder()
	b.LAAddr(regFPU, program.FPUBase)
	def := defs[index-1]
	if _, err := emitKernel(b, &def); err != nil {
		return nil, err
	}
	b.Halt()
	return b.Link()
}

// emitKernel lays down one kernel's data region and code.
func emitKernel(b *program.Builder, def *kernelDef) (KernelCount, error) {
	c := &ctx{b: b, def: def, offs: make(map[string]int32)}
	// Data region.
	c.region = b.DataPC()
	b.DataLabel(fmt.Sprintf("ll%d", def.index))
	off := int32(0)
	for _, a := range def.arrays {
		c.offs[a.name] = off
		for i := 0; i < a.words; i++ {
			var w uint32
			if a.init != nil {
				w = a.init(i)
			}
			b.Word(w)
		}
		off += int32(a.words)
	}
	if off*4 > 0x7000 {
		return KernelCount{}, fmt.Errorf("kernels: ll%d region %d bytes exceeds the 16-bit offset budget", def.index, off*4)
	}

	// Prologue.
	proStart := b.TextLen()
	b.Label(fmt.Sprintf("ll%d.code", def.index))
	b.LAAddr(regPtr, c.region+uint32(4*def.ptrStart))
	if def.setup != nil {
		def.setup(c)
	}
	if def.iters < 1 || def.iters > 0x7FFF {
		return KernelCount{}, fmt.Errorf("kernels: ll%d iteration count %d out of range", def.index, def.iters)
	}
	b.LI(regCounter, int32(def.iters))
	loopLabel := fmt.Sprintf("ll%d.loop", def.index)
	b.SetB(0, loopLabel, 0)
	prologue := b.TextLen() - proStart

	// Body: generate statements, then arrange the prepare-to-branch so
	// the trailing instructions and pointer advances fill the delay
	// slots (the paper reports the compiler averages 4 usable slots).
	g := &gen{scratch: append([]uint8(nil), def.scratch...)}
	for _, s := range def.stmts(c) {
		g.emitStmt(s)
	}
	body := g.out
	budget := def.tableIBytes / isa.WordBytes
	nAdv := len(def.advances)
	fixed := len(body) + 2 + nAdv // counter decrement + PBR + advances
	pads := budget - fixed
	if pads < 0 {
		return KernelCount{}, fmt.Errorf("kernels: ll%d body needs %d instructions, budget %d (Table I %dB)",
			def.index, fixed, budget, def.tableIBytes)
	}
	tail := min(3, len(body))
	if tail > isa.MaxDelaySlots-nAdv {
		tail = isa.MaxDelaySlots - nAdv
	}
	slotPad := min(pads, isa.MaxDelaySlots-nAdv-tail)
	prePad := pads - slotPad
	slots := tail + nAdv + slotPad

	bodyStart := b.TextLen()
	b.Label(loopLabel)
	for _, in := range body[:len(body)-tail] {
		b.Emit(in)
	}
	for i := 0; i < prePad; i++ {
		b.Nop()
	}
	b.RI(isa.OpADDI, regCounter, regCounter, -1)
	b.PBR(isa.CondNE, regCounter, 0, uint8(slots))
	for _, in := range body[len(body)-tail:] {
		b.Emit(in)
	}
	for _, a := range def.advances {
		b.RI(isa.OpADDI, a.reg, a.reg, a.delta)
	}
	for i := 0; i < slotPad; i++ {
		b.Nop()
	}
	bodyLen := b.TextLen() - bodyStart
	if bodyLen != budget {
		return KernelCount{}, fmt.Errorf("kernels: ll%d emitted %d body instructions, want %d", def.index, bodyLen, budget)
	}

	epiStart := b.TextLen()
	if def.epilogue != nil {
		def.epilogue(c)
	}
	epilogue := b.TextLen() - epiStart

	return KernelCount{
		Index:      def.index,
		Prologue:   prologue,
		Body:       bodyLen,
		Iterations: def.iters,
		Epilogue:   epilogue,
	}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// f32 packs a float value for data initialization.
func f32(f float32) uint32 { return math.Float32bits(f) }

// Data initializers. Values stay well inside float32 range across all
// iterations (recurrence multipliers are below one).
func initLin(i int) uint32   { return f32(0.25 + 0.001*float32(i%97)) }
func initSmall(i int) uint32 { return f32(0.0625 * float32(i%17)) }
func initFrac(i int) uint32  { return f32(0.5 + 0.25*float32(i%3)) }
