package kernels_test

import (
	"math"
	"testing"

	"pipesim/internal/core"
	"pipesim/internal/isa"
	"pipesim/internal/kernels"
	"pipesim/internal/program"
	"pipesim/internal/stats"
)

// Expected Table I values from the paper.
var wantTableI = []int{116, 204, 64, 80, 76, 72, 288, 732, 272, 260, 56, 56, 328, 224}

func buildProgram(t *testing.T) (*program.Image, *kernels.Counts) {
	t.Helper()
	img, counts, err := kernels.Program()
	if err != nil {
		t.Fatal(err)
	}
	return img, counts
}

func runProgram(t *testing.T, cfg core.Config, img *program.Image) (*core.Simulator, *stats.Sim) {
	t.Helper()
	sim, err := core.New(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return sim, st
}

func TestTableISizes(t *testing.T) {
	_, counts := buildProgram(t)
	if len(counts.PerKernel) != 14 {
		t.Fatalf("%d kernels, want 14", len(counts.PerKernel))
	}
	for i, kc := range counts.PerKernel {
		if got := kc.Body * 4; got != wantTableI[i] {
			t.Errorf("loop %d inner size = %d bytes, want %d (Table I)", i+1, got, wantTableI[i])
		}
	}
	for _, info := range kernels.TableI() {
		if info.InnerBytes != wantTableI[info.Index-1] {
			t.Errorf("TableI()[%d] = %d, want %d", info.Index, info.InnerBytes, wantTableI[info.Index-1])
		}
	}
}

func TestBuildArithmeticTotal(t *testing.T) {
	_, counts := buildProgram(t)
	if counts.Total != kernels.TotalInstructions {
		t.Fatalf("build-time total = %d, want %d", counts.Total, kernels.TotalInstructions)
	}
	if counts.Filler > 13 {
		t.Errorf("filler = %d NOPs; calibration should keep it under one LL11 body", counts.Filler)
	}
}

func TestSimulatedInstructionCountExact(t *testing.T) {
	img, _ := buildProgram(t)
	_, st := runProgram(t, core.DefaultConfig(), img)
	if st.CPU.Instructions != kernels.TotalInstructions {
		t.Fatalf("simulated retired instructions = %d, want exactly %d",
			st.CPU.Instructions, kernels.TotalInstructions)
	}
}

// readF32 reads a float32 from final simulation memory.
func readF32(t *testing.T, sim *core.Simulator, img *program.Image, loop int, name string, idx int32) float32 {
	t.Helper()
	addr, err := kernels.ArrayAddr(img, loop, name, idx)
	if err != nil {
		t.Fatal(err)
	}
	return math.Float32frombits(sim.ReadWord(addr))
}

// Data initializers mirrored from the generator.
func initLin(i int) float32   { return 0.25 + 0.001*float32(i%97) }
func initSmall(i int) float32 { return 0.0625 * float32(i%17) }
func initFrac(i int) float32  { return 0.5 + 0.25*float32(i%3) }

func TestLL1NumericalResults(t *testing.T) {
	img, counts := buildProgram(t)
	sim, _ := runProgram(t, core.DefaultConfig(), img)
	iters := counts.PerKernel[0].Iterations
	q, r, s := float32(1.25), float32(0.5), float32(0.25)
	for k := 0; k < iters; k++ {
		z10, z11 := initSmall(k+10), initSmall(k+11)
		y := initLin(k)
		want := (r*z10+s*z11)*y + q
		got := readF32(t, sim, img, 1, "x", int32(k))
		if got != want {
			t.Fatalf("LL1 x[%d] = %v, want %v", k, got, want)
		}
	}
}

func TestLL3InnerProduct(t *testing.T) {
	img, counts := buildProgram(t)
	sim, _ := runProgram(t, core.DefaultConfig(), img)
	iters := counts.PerKernel[2].Iterations
	var q float32
	for k := 0; k < iters; k++ {
		q = initLin(k)*initSmall(k) + q
	}
	got := readF32(t, sim, img, 3, "result", 0)
	if got != q {
		t.Fatalf("LL3 inner product = %v, want %v", got, q)
	}
}

func TestLL5Recurrence(t *testing.T) {
	img, counts := buildProgram(t)
	sim, _ := runProgram(t, core.DefaultConfig(), img)
	iters := counts.PerKernel[4].Iterations
	// x[k] = (y[k] - x[k-1]) * z[k], k starting at element 1.
	x := make([]float32, iters+2)
	for i := range x {
		x[i] = initLin(i)
	}
	for k := 1; k <= iters; k++ {
		x[k] = (initFrac(k) - x[k-1]) * initSmall(k)
	}
	for _, k := range []int{1, 2, iters / 2, iters} {
		got := readF32(t, sim, img, 5, "x", int32(k))
		if got != x[k] {
			t.Fatalf("LL5 x[%d] = %v, want %v (true recurrence through memory)", k, got, x[k])
		}
	}
}

func TestLL2BandedUpdate(t *testing.T) {
	img, counts := buildProgram(t)
	sim, _ := runProgram(t, core.DefaultConfig(), img)
	iters := counts.PerKernel[1].Iterations
	// Statement order per iteration (see defs.go):
	//   x[k] = ((x[k] - z[k]*x[k+10]) - z[k+10]*x[k+11]) - z[k+20]*x[k+12]
	//   y[k] = r*x[k] + y[k]
	n := iters + 64
	x := make([]float32, n+16)
	z := make([]float32, n+16)
	y := make([]float32, iters+40)
	for i := range x {
		x[i] = initLin(i)
	}
	for i := range z {
		z[i] = initSmall(i)
	}
	for i := range y {
		y[i] = initFrac(i)
	}
	r := float32(0.5)
	for k := 0; k < iters; k++ {
		x[k] = x[k] - z[k]*x[k+10]
		x[k] = x[k] - z[k+10]*x[k+11]
		x[k] = x[k] - z[k+20]*x[k+12]
		y[k] = r*x[k] + y[k]
	}
	for _, k := range []int{0, 1, iters / 2, iters - 1} {
		if got := readF32(t, sim, img, 2, "x", int32(k)); got != x[k] {
			t.Fatalf("LL2 x[%d] = %v, want %v", k, got, x[k])
		}
		if got := readF32(t, sim, img, 2, "y", int32(k)); got != y[k] {
			t.Fatalf("LL2 y[%d] = %v, want %v", k, got, y[k])
		}
	}
}

func TestLL4BandedElimination(t *testing.T) {
	img, counts := buildProgram(t)
	sim, _ := runProgram(t, core.DefaultConfig(), img)
	iters := counts.PerKernel[3].Iterations
	x := make([]float32, iters+48)
	for i := range x {
		x[i] = initLin(i)
	}
	for k := 0; k < iters; k++ {
		x[k] = x[k] - initSmall(k)*x[k+5]
	}
	for _, k := range []int{0, 7, iters - 1} {
		if got := readF32(t, sim, img, 4, "x", int32(k)); got != x[k] {
			t.Fatalf("LL4 x[%d] = %v, want %v", k, got, x[k])
		}
	}
}

func TestLL6LinearRecurrence(t *testing.T) {
	img, counts := buildProgram(t)
	sim, _ := runProgram(t, core.DefaultConfig(), img)
	iters := counts.PerKernel[5].Iterations
	// w[k] = b[k]*w[k-1] + w[k], k from 1, through memory.
	w := make([]float32, iters+33)
	for i := range w {
		w[i] = initSmall(i)
	}
	bm := func(i int) float32 { return 0.25 + 0.0001*float32(i%11) }
	for k := 1; k <= iters; k++ {
		w[k] = bm(k)*w[k-1] + w[k]
	}
	for _, k := range []int{1, 2, iters / 2, iters} {
		if got := readF32(t, sim, img, 6, "w", int32(k)); got != w[k] {
			t.Fatalf("LL6 w[%d] = %v, want %v", k, got, w[k])
		}
	}
}

func TestLL11PrefixSum(t *testing.T) {
	img, counts := buildProgram(t)
	sim, _ := runProgram(t, core.DefaultConfig(), img)
	iters := counts.PerKernel[10].Iterations
	var acc float32
	for k := 0; k < iters; k++ {
		acc = acc + initSmall(k)
		if k == 0 || k == iters-1 || k == iters/2 {
			got := readF32(t, sim, img, 11, "x", int32(k))
			if got != acc {
				t.Fatalf("LL11 x[%d] = %v, want %v", k, got, acc)
			}
		}
	}
}

func TestLL12FirstDifference(t *testing.T) {
	img, counts := buildProgram(t)
	sim, _ := runProgram(t, core.DefaultConfig(), img)
	iters := counts.PerKernel[11].Iterations
	for _, k := range []int{0, 1, iters / 3, iters - 1} {
		want := initLin(k+1) - initLin(k)
		got := readF32(t, sim, img, 12, "x", int32(k))
		if got != want {
			t.Fatalf("LL12 x[%d] = %v, want %v", k, got, want)
		}
	}
}

func TestLL13GridDeposition(t *testing.T) {
	// The 2-D PIC kernel deposits charge into gathered grid cells; the
	// touched cells must have changed from their initial values.
	img, _ := buildProgram(t)
	sim, _ := runProgram(t, core.DefaultConfig(), img)
	changed := 0
	for cell := 0; cell < 64; cell++ {
		init := float32(0.03125 * float32((3*cell)%7))
		got := readF32(t, sim, img, 13, "grid", int32(3*cell))
		if got != init {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("LL13 deposited no charge into the grid")
	}
}

// TestCrossEngineResultsIdentical runs the full benchmark under all three
// fetch strategies; performance differs, architectural results must not.
func TestCrossEngineResultsIdentical(t *testing.T) {
	img, _ := buildProgram(t)
	probe := func(sim *core.Simulator) []uint32 {
		var out []uint32
		for loop := 1; loop <= 14; loop++ {
			for _, spec := range []struct {
				name string
				idx  int32
			}{{"x", 0}, {"x", 7}} {
				addr, err := kernels.ArrayAddr(img, loop, spec.name, spec.idx)
				if err != nil {
					continue // not every loop has an "x" array
				}
				out = append(out, sim.ReadWord(addr))
			}
		}
		return out
	}
	cfgs := map[string]core.Config{}
	pipe := core.DefaultConfig()
	cfgs["pipe"] = pipe
	conv := core.DefaultConfig()
	conv.Fetch = core.FetchConventional
	cfgs["conv"] = conv
	tib := core.DefaultConfig()
	tib.Fetch = core.FetchTIB
	tib.TIBEntries = 4
	tib.TIBLineBytes = 16
	cfgs["tib"] = tib

	var ref []uint32
	for name, cfg := range cfgs {
		sim, st := runProgram(t, cfg, img)
		if st.CPU.Instructions != kernels.TotalInstructions {
			t.Fatalf("%s: %d instructions, want %d", name, st.CPU.Instructions, kernels.TotalInstructions)
		}
		got := probe(sim)
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s: memory probe %d = %#x, differs from reference %#x", name, i, got[i], ref[i])
			}
		}
	}
}

func TestKernelProgramsRunIndividually(t *testing.T) {
	for loop := 1; loop <= 14; loop++ {
		img, err := kernels.KernelProgram(loop)
		if err != nil {
			t.Fatalf("loop %d: %v", loop, err)
		}
		_, st := runProgram(t, core.DefaultConfig(), img)
		if st.CPU.Instructions == 0 {
			t.Errorf("loop %d retired nothing", loop)
		}
	}
	if _, err := kernels.KernelProgram(0); err == nil {
		t.Error("loop 0 accepted")
	}
	if _, err := kernels.KernelProgram(15); err == nil {
		t.Error("loop 15 accepted")
	}
}

func TestBranchCountsMatchIterations(t *testing.T) {
	img, counts := buildProgram(t)
	_, st := runProgram(t, core.DefaultConfig(), img)
	wantBranches, wantTaken := uint64(0), uint64(0)
	for _, kc := range counts.PerKernel {
		wantBranches += uint64(kc.Iterations)
		wantTaken += uint64(kc.Iterations - 1) // final iteration falls through
	}
	if st.CPU.Branches != wantBranches || st.CPU.TakenBranches != wantTaken {
		t.Fatalf("branches = %d/%d taken, want %d/%d",
			st.CPU.Branches, st.CPU.TakenBranches, wantBranches, wantTaken)
	}
}

// TestNativeFormatPreservesBenchmarkSemantics runs the full benchmark in
// the native 16/32-bit encoding and checks the exact instruction count and
// the LL1 numerical results against the fixed-format expectations.
func TestNativeFormatPreservesBenchmarkSemantics(t *testing.T) {
	img, counts := buildProgram(t)
	cfg := core.DefaultConfig()
	cfg.NativeFormat = true
	cfg.Mem.AccessTime = 6
	cfg.Mem.BusWidthBytes = 8
	sim, st := runProgram(t, cfg, img)
	if st.CPU.Instructions != kernels.TotalInstructions {
		t.Fatalf("native format retired %d instructions, want %d", st.CPU.Instructions, kernels.TotalInstructions)
	}
	iters := counts.PerKernel[0].Iterations
	q, r, s := float32(1.25), float32(0.5), float32(0.25)
	for _, k := range []int{0, 1, iters / 2, iters - 1} {
		z10, z11 := initSmall(k+10), initSmall(k+11)
		y := initLin(k)
		want := (r*z10+s*z11)*y + q
		got := readF32(t, sim, img, 1, "x", int32(k))
		if got != want {
			t.Fatalf("native LL1 x[%d] = %v, want %v", k, got, want)
		}
	}
}

// TestLL11BodyGolden pins the generated code of the simplest kernel so
// accidental codegen drift is caught. LL11 (first sum) has a stable,
// hand-checkable body: accumulate y[k] into r4 through the FPU, store it,
// then the counter/branch/advance frame with NOP padding.
func TestLL11BodyGolden(t *testing.T) {
	img, _ := buildProgram(t)
	words, err := kernels.LoopBody(img, 11)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, w := range words {
		got = append(got, isaString(w))
	}
	want := []string{
		"ST 0(r1)",       // FPU A <- accumulator (r4)
		"ADDI r7, r4, 0", // datum: the accumulator
		"LD 3440(r2)",    // y[k] (y sits 860 words past x in the region)
		"ST 8(r1)",       // FPU ADD trigger
		"ADDI r7, r7, 0", // datum: y[k]
		"ADDI r5, r5, -1",
		"PBR NE, r5, b0, 7",
		"ADDI r4, r7, 0", // delay slot: pop the new accumulator
		"ST 0(r2)",       // delay slot: x[k] <- accumulator
		"ADDI r7, r4, 0", // delay slot: store datum
		"ADDI r2, r2, 4", // delay slot: pointer advance
		"NOP",            // delay-slot padding to Table I's 56 bytes
		"NOP",
		"NOP",
	}
	if len(got) != len(want) {
		t.Fatalf("LL11 body length %d, want %d:\n%v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LL11 body[%d] = %q, want %q\nfull body: %v", i, got[i], want[i], got)
		}
	}
}

func isaString(w uint32) string { return isaDecode(w) }

func TestDeterministicCycles(t *testing.T) {
	img, _ := buildProgram(t)
	var prev uint64
	for i := 0; i < 2; i++ {
		_, st := runProgram(t, core.DefaultConfig(), img)
		if i > 0 && st.Cycles != prev {
			t.Fatalf("cycle counts differ across runs: %d vs %d", prev, st.Cycles)
		}
		prev = st.Cycles
	}
}

func isaDecode(w uint32) string {
	return isa.Decode(w).String()
}
