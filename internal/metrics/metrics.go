// Package metrics is a small, dependency-free metrics registry for the
// pipesim serving layer: counters, gauges and histograms, optionally
// labeled, rendered in the Prometheus text exposition format.
//
// The package exists so cmd/pipesimd can expose an operator-grade
// /metrics endpoint without pulling an external client library into a
// stdlib-only repository. It implements exactly the subset the daemon
// needs — counter/gauge/histogram families with a fixed label schema per
// family, cumulative histogram buckets, HELP/TYPE headers, deterministic
// output ordering, per-bucket trace exemplars — and nothing else (no
// summaries, no push gateways).
//
// Exemplars link a histogram bucket to one recent traced observation:
// ObserveExemplar(x, traceID) records the observation normally and
// remembers (traceID, x) on the bucket the value landed in; the text
// exposition appends an OpenMetrics-style annotation to that bucket line
// (`... 42 # {trace_id="abc"} 0.93`) so a latency spike points straight
// at a retrievable trace. Histograms that never see ObserveExemplar
// render byte-identically to before.
//
// All metric operations are safe for concurrent use and lock-free on the
// hot path: counters and gauges are single atomic words, histogram
// observations touch one atomic bucket counter plus an atomic sum.
// Rendering takes a registry-wide snapshot under a read lock, so scrapes
// never block writers for long.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// kind enumerates the metric families a registry can hold.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// value is one atomically updated float64 cell (counters and gauges, and
// histogram sums, store their state here).
type value struct{ bits atomic.Uint64 }

func (v *value) add(delta float64) {
	for {
		old := v.bits.Load()
		next := math.Float64frombits(old) + delta
		if v.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

func (v *value) set(x float64) { v.bits.Store(math.Float64bits(x)) }
func (v *value) load() float64 { return math.Float64frombits(v.bits.Load()) }

// Counter is a monotonically increasing metric.
type Counter struct{ v value }

// Inc adds one.
func (c *Counter) Inc() { c.v.add(1) }

// Add adds delta, which must not be negative (a negative delta is
// silently dropped: counters never go down).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	c.v.add(delta)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v value }

// Set replaces the gauge's value.
func (g *Gauge) Set(x float64) { g.v.set(x) }

// Inc adds one. Dec subtracts one. Add adds delta (which may be negative).
func (g *Gauge) Inc()              { g.v.add(1) }
func (g *Gauge) Dec()              { g.v.add(-1) }
func (g *Gauge) Add(delta float64) { g.v.add(delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

// Histogram counts observations into cumulative buckets, Prometheus
// style: each bucket b counts observations <= its upper bound, an
// implicit +Inf bucket counts everything, and _sum/_count accumulate the
// observed total.
type Histogram struct {
	bounds []float64 // sorted upper bounds, +Inf excluded
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    value
	// exemplars holds one slot per bucket plus a final +Inf slot,
	// last-write-wins; nil entries mean "no exemplar yet".
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar ties one observed value to the trace that produced it.
type Exemplar struct {
	TraceID string
	Value   float64
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	// Buckets are cumulative at render time; recording touches exactly
	// one counter — the first bucket whose bound admits the value.
	i := sort.SearchFloat64s(h.bounds, x)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.sum.add(x)
}

// ObserveExemplar records one observation and, when traceID is
// non-empty, remembers it as the exemplar for the bucket the value
// landed in (replacing any previous one — the freshest trace is the
// useful one when chasing a live spike).
func (h *Histogram) ObserveExemplar(x float64, traceID string) {
	i := sort.SearchFloat64s(h.bounds, x)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.sum.add(x)
	if traceID != "" && h.exemplars != nil {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: x})
	}
}

// BucketExemplar returns the current exemplar for bucket i (index
// len(bounds) is the +Inf bucket), or nil.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if h.exemplars == nil || i < 0 || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	n := h.inf.Load()
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// DefBuckets are the default latency buckets, in seconds (the classic
// Prometheus spread: 5ms to 10s).
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExponentialBuckets returns count bucket bounds starting at start and
// multiplying by factor: start, start*factor, ... It panics on a
// non-positive start, a factor <= 1 or a count < 1 (bucket layouts are
// static program configuration, not runtime input).
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("metrics: ExponentialBuckets needs start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns count bucket bounds starting at start and
// stepping by width. It panics on a non-positive width or a count < 1.
func LinearBuckets(start, width float64, count int) []float64 {
	if width <= 0 || count < 1 {
		panic("metrics: LinearBuckets needs width > 0, count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// family is one named metric with a fixed label schema; the unlabeled
// case is a family with zero label names and a single series keyed "".
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histogram families only

	mu     sync.RWMutex
	series map[string]any // label-value key -> *Counter | *Gauge | *Histogram
	order  []string       // keys in first-use order; sorted at render
}

// Registry holds metric families and renders them. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	names    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var nameOK = func(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register creates or fetches a family, panicking on a schema conflict.
// Registration happens at program start with static names, so a conflict
// is a programming error, not a runtime condition to handle.
func (r *Registry) register(name, help string, k kind, labels []string, buckets []float64) *family {
	if !nameOK(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameOK(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("metrics: %s re-registered as a different metric", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("metrics: %s re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{name: name, help: help, kind: k, labels: labels, buckets: buckets,
		series: make(map[string]any)}
	r.families[name] = f
	r.names = append(r.names, name)
	sort.Strings(r.names)
	return f
}

// get fetches or creates the series for one label-value tuple.
func (f *family) get(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	var made any
	switch f.kind {
	case kindCounter:
		made = &Counter{}
	case kindGauge:
		made = &Gauge{}
	case kindHistogram:
		h := &Histogram{bounds: f.buckets}
		h.counts = make([]atomic.Uint64, len(f.buckets))
		h.exemplars = make([]atomic.Pointer[Exemplar], len(f.buckets)+1)
		made = h
	}
	f.series[key] = made
	f.order = append(f.order, key)
	return made
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil).get(nil).(*Counter)
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil).get(nil).(*Gauge)
}

// Histogram registers (or fetches) an unlabeled histogram with the given
// bucket upper bounds (nil selects DefBuckets). Bounds must be sorted
// ascending; the +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, kindHistogram, nil, checkBuckets(name, buckets)).get(nil).(*Histogram)
}

func checkBuckets(name string, buckets []float64) []float64 {
	if buckets == nil {
		buckets = DefBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("metrics: %s bucket bounds not sorted", name))
	}
	// An explicit +Inf bound would duplicate the implicit one; drop it.
	for len(buckets) > 0 && math.IsInf(buckets[len(buckets)-1], 1) {
		buckets = buckets[:len(buckets)-1]
	}
	return buckets
}

// CounterVec is a counter family with a fixed label schema.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil)}
}

// With returns the counter for one label-value tuple, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).(*Counter) }

// GaugeVec is a gauge family with a fixed label schema.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for one label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).(*Gauge) }

// HistogramVec is a histogram family with a fixed label schema; every
// series shares the family's bucket layout.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, labels, checkBuckets(name, buckets))}
}

// With returns the histogram for one label-value tuple.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).(*Histogram) }

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP string per the text exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatFloat renders a sample value: integers without an exponent,
// everything else in Go's shortest form (Prometheus accepts both).
func formatFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return strconv.FormatFloat(x, 'f', -1, 64)
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}

// exemplarSuffix renders the OpenMetrics-style exemplar annotation for
// one bucket line, or "" when the bucket has none.
func exemplarSuffix(e *Exemplar) string {
	if e == nil {
		return ""
	}
	return ` # {trace_id="` + escapeLabel(e.TraceID) + `"} ` + formatFloat(e.Value)
}

// labelPairs renders {a="x",b="y"} for a series key; extra appends one
// more pre-rendered pair (the histogram le label).
func labelPairs(names []string, key, extra string) string {
	var parts []string
	if len(names) > 0 {
		values := strings.Split(key, "\x00")
		for i, n := range names {
			parts = append(parts, n+`="`+escapeLabel(values[i])+`"`)
		}
	}
	if extra != "" {
		parts = append(parts, extra)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders every family in the Prometheus text exposition
// format, families sorted by name and series sorted by label values, so
// the output is deterministic for golden tests and clean diffs.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	var sb strings.Builder
	for _, f := range fams {
		f.mu.RLock()
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		if f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.kind)
		for _, key := range keys {
			switch s := f.series[key].(type) {
			case *Counter:
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, labelPairs(f.labels, key, ""), formatFloat(s.Value()))
			case *Gauge:
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, labelPairs(f.labels, key, ""), formatFloat(s.Value()))
			case *Histogram:
				var cum uint64
				for i, bound := range s.bounds {
					cum += s.counts[i].Load()
					le := fmt.Sprintf("le=%q", formatFloat(bound))
					fmt.Fprintf(&sb, "%s_bucket%s %d%s\n", f.name, labelPairs(f.labels, key, le), cum, exemplarSuffix(s.BucketExemplar(i)))
				}
				cum += s.inf.Load()
				fmt.Fprintf(&sb, "%s_bucket%s %d%s\n", f.name, labelPairs(f.labels, key, `le="+Inf"`), cum, exemplarSuffix(s.BucketExemplar(len(s.bounds))))
				fmt.Fprintf(&sb, "%s_sum%s %s\n", f.name, labelPairs(f.labels, key, ""), formatFloat(s.Sum()))
				fmt.Fprintf(&sb, "%s_count%s %d\n", f.name, labelPairs(f.labels, key, ""), cum)
			}
		}
		f.mu.RUnlock()
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Snapshot flattens every series into a map for tests: plain metrics are
// keyed `name` or `name{a="x"}`, histograms expand into their rendered
// `_bucket`/`_sum`/`_count` samples. The map is a point-in-time copy.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	r.mu.RLock()
	fams := make([]*family, 0, len(r.names))
	for _, n := range r.names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()
	for _, f := range fams {
		f.mu.RLock()
		for key, raw := range f.series {
			switch s := raw.(type) {
			case *Counter:
				out[f.name+labelPairs(f.labels, key, "")] = s.Value()
			case *Gauge:
				out[f.name+labelPairs(f.labels, key, "")] = s.Value()
			case *Histogram:
				var cum uint64
				for i, bound := range s.bounds {
					cum += s.counts[i].Load()
					le := fmt.Sprintf("le=%q", formatFloat(bound))
					out[f.name+"_bucket"+labelPairs(f.labels, key, le)] = float64(cum)
				}
				cum += s.inf.Load()
				out[f.name+"_bucket"+labelPairs(f.labels, key, `le="+Inf"`)] = float64(cum)
				out[f.name+"_sum"+labelPairs(f.labels, key, "")] = s.Sum()
				out[f.name+"_count"+labelPairs(f.labels, key, "")] = float64(cum)
			}
		}
		f.mu.RUnlock()
	}
	return out
}
