package metrics

import (
	"strings"
	"sync"
	"testing"
)

// TestGoldenPrometheusText pins the exact text exposition rendering of
// every metric kind the registry supports: unlabeled and labeled
// counters, gauges and histograms, HELP/TYPE headers, label escaping,
// cumulative buckets with the implicit +Inf bound, and deterministic
// family and series ordering.
func TestGoldenPrometheusText(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("test_requests_total", "Total requests.")
	c.Add(3)
	c.Inc()

	cv := r.CounterVec("test_errors_total", "Errors by kind.", "kind")
	cv.With("deadlock").Inc()
	cv.With("invalid_config").Add(2)

	g := r.Gauge("test_in_flight", "Requests in flight.")
	g.Set(5)
	g.Dec()

	gv := r.GaugeVec("test_queue_depth", "Queue depth.", "queue", "unit")
	gv.With("ldq", `odd"label\value`).Set(7)

	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 0.5, 2.5})
	for _, x := range []float64{0.05, 0.3, 0.4, 1, 99} {
		h.Observe(x)
	}

	hv := r.HistogramVec("test_cycles", "Cycles by strategy.", []float64{100, 1000}, "strategy")
	hv.With("pipe").Observe(650)
	hv.With("pipe").Observe(5000)
	hv.With("conv").Observe(50)

	want := `# HELP test_cycles Cycles by strategy.
# TYPE test_cycles histogram
test_cycles_bucket{strategy="conv",le="100"} 1
test_cycles_bucket{strategy="conv",le="1000"} 1
test_cycles_bucket{strategy="conv",le="+Inf"} 1
test_cycles_sum{strategy="conv"} 50
test_cycles_count{strategy="conv"} 1
test_cycles_bucket{strategy="pipe",le="100"} 0
test_cycles_bucket{strategy="pipe",le="1000"} 1
test_cycles_bucket{strategy="pipe",le="+Inf"} 2
test_cycles_sum{strategy="pipe"} 5650
test_cycles_count{strategy="pipe"} 2
# HELP test_errors_total Errors by kind.
# TYPE test_errors_total counter
test_errors_total{kind="deadlock"} 1
test_errors_total{kind="invalid_config"} 2
# HELP test_in_flight Requests in flight.
# TYPE test_in_flight gauge
test_in_flight 4
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="0.5"} 3
test_latency_seconds_bucket{le="2.5"} 4
test_latency_seconds_bucket{le="+Inf"} 5
test_latency_seconds_sum 100.75
test_latency_seconds_count 5
# HELP test_queue_depth Queue depth.
# TYPE test_queue_depth gauge
test_queue_depth{queue="ldq",unit="odd\"label\\value"} 7
# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total 4
`
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("rendering mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestExemplarRendering pins the OpenMetrics-style exemplar annotation:
// ObserveExemplar tags the bucket the value landed in (last write wins,
// escaped trace ID), plain Observe never produces one, and a histogram
// that never sees an exemplar renders byte-identically to before.
func TestExemplarRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ex_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05) // no exemplar on plain Observe
	h.ObserveExemplar(0.5, "aaaa0000")
	h.ObserveExemplar(0.7, `tr"ace\id`) // replaces, and must be escaped
	h.ObserveExemplar(50, "ffff1111")   // lands in +Inf
	h.ObserveExemplar(2, "")            // empty trace ID: counted, no exemplar

	want := `# HELP ex_seconds Latency.
# TYPE ex_seconds histogram
ex_seconds_bucket{le="0.1"} 1
ex_seconds_bucket{le="1"} 3 # {trace_id="tr\"ace\\id"} 0.7
ex_seconds_bucket{le="+Inf"} 5 # {trace_id="ffff1111"} 50
ex_seconds_sum 53.25
ex_seconds_count 5
`
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("exemplar rendering mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}

	if e := h.BucketExemplar(0); e != nil {
		t.Errorf("bucket 0 exemplar = %+v, want nil", e)
	}
	if e := h.BucketExemplar(1); e == nil || e.TraceID != `tr"ace\id` || e.Value != 0.7 {
		t.Errorf("bucket 1 exemplar = %+v", e)
	}
	if e := h.BucketExemplar(99); e != nil {
		t.Errorf("out-of-range exemplar = %+v, want nil", e)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(2)
	r.GaugeVec("b", "", "x").With("y").Set(-1.5)
	h := r.Histogram("h", "", []float64{1})
	h.Observe(0.5)
	h.Observe(3)

	snap := r.Snapshot()
	for key, want := range map[string]float64{
		"a_total":             2,
		`b{x="y"}`:            -1.5,
		`h_bucket{le="1"}`:    1,
		`h_bucket{le="+Inf"}`: 2,
		"h_sum":               3.5,
		"h_count":             2,
	} {
		if got := snap[key]; got != want {
			t.Errorf("Snapshot[%q] = %v, want %v", key, got, want)
		}
	}
	// The snapshot is a copy: later updates must not appear in it.
	r.Counter("a_total", "").Inc()
	if snap["a_total"] != 2 {
		t.Errorf("snapshot mutated by a later update")
	}
}

func TestCounterNeverDecreases(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	c.Add(5)
	c.Add(-3) // dropped
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %v after negative Add, want 5", got)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "help")
	b := r.Counter("same_total", "help")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	v := r.CounterVec("vec_total", "", "l")
	if v.With("x") != v.With("x") {
		t.Error("same label tuple returned different series")
	}
	if v.With("x") == v.With("y") {
		t.Error("different label tuples share a series")
	}
}

func TestRegisterConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	for name, f := range map[string]func(){
		"kind change":  func() { r.Gauge("m", "") },
		"label change": func() { r.CounterVec("m", "", "l") },
		"bad name":     func() { r.Counter("0bad", "") },
		"bad label":    func() { r.CounterVec("ok", "", "not ok") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExponentialBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExponentialBuckets = %v, want %v", exp, want)
		}
	}
	lin := LinearBuckets(0, 2.5, 3)
	wantLin := []float64{0, 2.5, 5}
	for i := range wantLin {
		if lin[i] != wantLin[i] {
			t.Fatalf("LinearBuckets = %v, want %v", lin, wantLin)
		}
	}
}

// TestConcurrentUse hammers one registry from many goroutines while a
// scraper renders it, for the race detector (scripts/verify.sh runs the
// suite with -race).
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "")
	cv := r.CounterVec("hot_by_label_total", "", "l")
	h := r.HistogramVec("hot_hist", "", []float64{1, 2, 3}, "l")
	labels := []string{"a", "b", "c", "d"}

	var wg sync.WaitGroup
	const workers, iters = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				l := labels[(w+i)%len(labels)]
				cv.With(l).Inc()
				if i%2 == 0 {
					h.With(l).Observe(float64(i % 5))
				} else {
					h.With(l).ObserveExemplar(float64(i%5), "trace")
				}
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
			}
			r.Snapshot()
		}()
	}
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Errorf("hot_total = %v, want %v", got, workers*iters)
	}
	var total float64
	for _, l := range labels {
		total += cv.With(l).Value()
	}
	if total != workers*iters {
		t.Errorf("labeled sum = %v, want %v", total, workers*iters)
	}
	var count uint64
	for _, l := range labels {
		count += h.With(l).Count()
	}
	if count != workers*iters {
		t.Errorf("histogram count = %v, want %v", count, workers*iters)
	}
}
