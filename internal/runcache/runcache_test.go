package runcache

import (
	"reflect"
	"sync"
	"testing"

	"pipesim/internal/asm"
	"pipesim/internal/core"
	"pipesim/internal/program"
	"pipesim/internal/stats"
)

func testImage(t testing.TB) *program.Image {
	t.Helper()
	img, err := asm.Assemble(`
        li   r1, 8
        li   r2, 0
        setb b0, loop
loop:   add  r2, r2, r1
        addi r1, r1, -1
        pbr  ne, r1, b0, 2
        nop
        nop
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestKeyCanonicalizesDefaults(t *testing.T) {
	img := testImage(t)
	fp := img.Fingerprint()
	base := core.DefaultConfig()
	base.MaxCycles = 0
	base.WatchdogCycles = 0
	explicit := base
	explicit.MaxCycles = core.DefaultMaxCycles
	explicit.WatchdogCycles = core.DefaultWatchdogCycles
	if KeyFor(base, fp) != KeyFor(explicit, fp) {
		t.Error("zero MaxCycles/WatchdogCycles should hash like the explicit defaults")
	}
}

func TestKeySeparatesMachines(t *testing.T) {
	img := testImage(t)
	fp := img.Fingerprint()
	base := core.DefaultConfig()
	keys := map[Key]string{KeyFor(base, fp): "base"}
	mutations := map[string]core.Config{}
	c := base
	c.CacheBytes = 256
	mutations["cache size"] = c
	c = base
	c.Fetch = core.FetchConventional
	mutations["strategy"] = c
	c = base
	c.Mem.AccessTime = 6
	mutations["access time"] = c
	c = base
	c.TruePrefetch = !base.TruePrefetch
	mutations["prefetch policy"] = c
	c = base
	c.CPU.LDQDepth = 4
	mutations["queue depth"] = c
	for name, cfg := range mutations {
		k := KeyFor(cfg, fp)
		if prev, dup := keys[k]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		keys[k] = name
	}
	// A different program under the same configuration is a different key.
	var otherFP [32]byte
	copy(otherFP[:], fp[:])
	otherFP[0] ^= 1
	if KeyFor(base, fp) == KeyFor(base, otherFP) {
		t.Error("image fingerprint does not reach the key")
	}
}

// TestKeySeparatesIntrospection: cache introspection changes the result's
// content (Result.CacheStats), so unlike observation-only knobs it must
// reach the key — but its tuning parameter canonicalizes, and it is wiped
// entirely when introspection is off.
func TestKeySeparatesIntrospection(t *testing.T) {
	img := testImage(t)
	fp := img.Fingerprint()
	base := core.DefaultConfig()

	on := base
	on.CacheIntrospect = true
	if KeyFor(base, fp) == KeyFor(on, fp) {
		t.Error("CacheIntrospect does not reach the key: a cached plain result would satisfy an introspected request")
	}

	// The default top-N and an explicit default hash identically.
	explicit := on
	explicit.CacheTopPCs = core.DefaultCacheTopPCs
	if KeyFor(on, fp) != KeyFor(explicit, fp) {
		t.Error("zero CacheTopPCs should hash like the explicit default")
	}
	wider := on
	wider.CacheTopPCs = 50
	if KeyFor(on, fp) == KeyFor(wider, fp) {
		t.Error("CacheTopPCs does not reach the key of an introspected run")
	}

	// With introspection off the top-N is inert and must not fragment keys.
	stray := base
	stray.CacheTopPCs = 50
	if KeyFor(base, fp) != KeyFor(stray, fp) {
		t.Error("CacheTopPCs fragments keys of uninstrumented runs")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	k := func(b byte) Key { var k Key; k[0] = b; return k }
	st := func(n uint64) *stats.Sim { return &stats.Sim{Cycles: n} }
	c.Put(k(1), st(1))
	c.Put(k(2), st(2))
	if _, ok := c.Get(k(1)); !ok { // 1 is now most recently used
		t.Fatal("k1 missing before capacity was exceeded")
	}
	c.Put(k(3), st(3)) // evicts 2, the least recently used
	if _, ok := c.Get(k(2)); ok {
		t.Error("k2 survived eviction")
	}
	if _, ok := c.Get(k(1)); !ok {
		t.Error("k1 evicted although recently used")
	}
	if _, ok := c.Get(k(3)); !ok {
		t.Error("k3 missing")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Size != 2 {
		t.Errorf("counters = %+v, want 1 eviction and size 2", s)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	c := New(4)
	var k Key
	c.Put(k, &stats.Sim{Cycles: 7})
	got, ok := c.Get(k)
	if !ok || got.Cycles != 7 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	got.Cycles = 999 // mutating the copy must not reach the cache
	again, _ := c.Get(k)
	if again.Cycles != 7 {
		t.Errorf("cached value mutated through a returned copy: %d", again.Cycles)
	}
}

func TestDisabledCacheBypasses(t *testing.T) {
	c := New(4)
	var k Key
	c.Put(k, &stats.Sim{Cycles: 1})
	c.SetEnabled(false)
	if _, ok := c.Get(k); ok {
		t.Error("disabled cache served a hit")
	}
	c.Put(k, &stats.Sim{Cycles: 2})
	c.SetEnabled(true)
	if got, _ := c.Get(k); got.Cycles != 1 {
		t.Errorf("disabled Put overwrote the entry: %d", got.Cycles)
	}
}

// TestRunBitIdentical is the cache's core contract: a memoized result is
// indistinguishable from a fresh simulation, field for field.
func TestRunBitIdentical(t *testing.T) {
	img := testImage(t)
	cfg := core.DefaultConfig()
	fresh, err := runFresh(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	c := New(8)
	miss, err := c.Run(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := c.Run(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, miss) {
		t.Errorf("first cached run differs from a fresh run:\nfresh %+v\ncached %+v", fresh, miss)
	}
	if !reflect.DeepEqual(fresh, hit) {
		t.Errorf("memoized result differs from a fresh run:\nfresh %+v\nhit   %+v", fresh, hit)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("counters = %+v, want 1 hit and 1 miss", s)
	}
	if hit == miss {
		t.Error("Run returned the same pointer twice; results must be private copies")
	}
}

// TestRunConcurrent hammers one cache from many goroutines (run under
// -race by scripts/verify.sh): every caller gets the same statistics.
func TestRunConcurrent(t *testing.T) {
	img := testImage(t)
	cfg := core.DefaultConfig()
	c := New(8)
	want, err := c.Run(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := c.Run(cfg, img)
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(st, want) {
				t.Errorf("concurrent result differs: %+v", st)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRunErrorNotCached(t *testing.T) {
	img := testImage(t)
	cfg := core.DefaultConfig()
	cfg.MaxCycles = 3 // aborts long before completion
	c := New(8)
	if _, err := c.Run(cfg, img); err == nil {
		t.Fatal("expected a MaxCycles abort")
	}
	if c.Len() != 0 {
		t.Errorf("failed run was cached (len %d)", c.Len())
	}
}
