// Package runcache memoizes complete simulation results. The simulator is
// deterministic: one (configuration, program image) pair always produces
// the same statistics, so a finished run's stats.Sim can stand in for any
// repeat of the same point. The experiment catalog re-simulates many
// identical machines (Figure 6a's machine is Figure 5b's), and a serving
// daemon sees the same sweep requests over and over; both hit this cache
// instead of re-running the 150k-instruction benchmark.
//
// Keys are content-addressed: a canonical hash of the full core.Config and
// the program image's fingerprint. Configurations that denote the same
// machine (for example MaxCycles zero versus the explicit default) hash to
// the same key. Values are immutable — Get returns a copy, so no caller can
// corrupt a cached result — and eviction is least-recently-used with a
// bounded entry count.
package runcache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"pipesim/internal/core"
	"pipesim/internal/program"
	"pipesim/internal/stats"
	"pipesim/internal/tracing"
)

// Key identifies one simulated machine: a canonical hash of the complete
// configuration and the program image content.
type Key [sha256.Size]byte

// KeyFor computes the content-addressed key for running cfg over the image
// with the given fingerprint. The configuration is canonicalized first so
// equivalent configurations collide (deliberately).
func KeyFor(cfg core.Config, imageFP [sha256.Size]byte) Key {
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = core.DefaultMaxCycles
	}
	if cfg.WatchdogCycles == 0 {
		cfg.WatchdogCycles = core.DefaultWatchdogCycles
	}
	// Introspection never changes cycle counts, but it adds the Cache block
	// to the result, so it is part of the key (unlike FlightRecDepth, or
	// NoSkipAhead — skip-ahead is bit-identical by construction, so a
	// stepped and a skipping run share one cache entry). The top-PC bound
	// only matters when introspection is on.
	if !cfg.CacheIntrospect {
		cfg.CacheTopPCs = 0
	} else if cfg.CacheTopPCs == 0 {
		cfg.CacheTopPCs = core.DefaultCacheTopPCs
	}
	h := sha256.New()
	var b [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	num := func(v int) { u64(uint64(int64(v))) }
	flag := func(v bool) {
		if v {
			u64(1)
		} else {
			u64(0)
		}
	}
	// Version tag: bump when the hashed field set changes, so stale keys
	// from an older layout can never alias a new one.
	h.Write([]byte("pipesim-runcache/v2"))
	num(int(cfg.Fetch))
	num(cfg.CacheBytes)
	num(cfg.LineBytes)
	num(cfg.IQBytes)
	num(cfg.IQBBytes)
	flag(cfg.TruePrefetch)
	flag(cfg.DeepPrefetch)
	flag(cfg.NativeFormat)
	num(cfg.TIBEntries)
	num(cfg.TIBLineBytes)
	num(cfg.Mem.AccessTime)
	num(cfg.Mem.BusWidthBytes)
	flag(cfg.Mem.Pipelined)
	flag(cfg.Mem.InstrPriority)
	num(cfg.Mem.FPULatency)
	num(cfg.CPU.LAQDepth)
	num(cfg.CPU.LDQDepth)
	num(cfg.CPU.SAQDepth)
	num(cfg.CPU.SDQDepth)
	num(cfg.CPU.DCacheBytes)
	num(cfg.CPU.DCacheLineBytes)
	u64(cfg.InterruptAt)
	u64(uint64(cfg.InterruptVector))
	u64(cfg.MaxCycles)
	u64(cfg.WatchdogCycles)
	flag(cfg.CacheIntrospect)
	num(cfg.CacheTopPCs)
	h.Write(imageFP[:])
	var k Key
	h.Sum(k[:0])
	return k
}

// String renders the key as lowercase hex — the stable on-disk identity
// used by job checkpoint files (internal/jobs).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey decodes the hex form produced by Key.String.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("runcache: bad key %q: %w", s, err)
	}
	if len(b) != sha256.Size {
		return k, fmt.Errorf("runcache: bad key %q: want %d bytes, got %d", s, sha256.Size, len(b))
	}
	copy(k[:], b)
	return k, nil
}

// Counters is a point-in-time snapshot of the cache's activity. The JSON
// names are stable: cmd/experiments embeds a snapshot in its -metrics file.
type Counters struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Size      int    `json:"entries"`
}

// Tier is a persistent second-level result store under the memory cache
// (internal/runstore implements it). Lookup is consulted on a memory miss;
// Store is called write-through after a fresh simulation. Implementations
// must be safe for concurrent use and must not fail the caller — a broken
// disk is an observability problem, not a simulation error.
type Tier interface {
	Lookup(k Key) (stats.Sim, bool)
	Store(k Key, cfg core.Config, st *stats.Sim)
}

// Source reports where a cached run's result came from.
type Source int

// Result sources, from slowest to fastest path.
const (
	// SourceSimulated: the result was computed by running the simulator.
	SourceSimulated Source = iota
	// SourceMemory: served from the in-process LRU.
	SourceMemory
	// SourceStore: served from the persistent second tier (and promoted
	// into memory).
	SourceStore
)

var sourceNames = [...]string{"simulated", "memory", "store"}

// String returns the source's stable lower-case name, as surfaced in
// /v1/run responses.
func (s Source) String() string {
	if s >= 0 && int(s) < len(sourceNames) {
		return sourceNames[s]
	}
	return fmt.Sprintf("source(%d)", int(s))
}

// entry is one cached result with its LRU bookkeeping.
type entry struct {
	key Key
	st  stats.Sim
}

// Cache is a bounded, concurrency-safe memo of finished simulation
// results. The zero value is unusable; construct with New.
type Cache struct {
	enabled atomic.Bool

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	// store holds the optional persistent second tier behind a pointer
	// box, so SetStore can atomically install, replace or clear it while
	// runs are in flight (an interface value itself is not atomic).
	store atomic.Pointer[tierBox]

	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used; values are *entry
	items map[Key]*list.Element
}

// tierBox wraps a Tier for atomic.Pointer storage.
type tierBox struct{ t Tier }

// DefaultEntries bounds the process-wide Default cache. A cached stats.Sim
// is a few hundred bytes, so even the full bound is a fraction of one run's
// working set; the limit exists to keep a long-lived daemon's memory flat
// no matter how many distinct machines it is asked to simulate.
const DefaultEntries = 4096

// Default is the process-wide run cache, enabled by default. The -runcache
// flags of cmd/experiments and cmd/pipesimd toggle it.
var Default = New(DefaultEntries)

// New returns an enabled cache bounded to maxEntries results.
func New(maxEntries int) *Cache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	c := &Cache{
		max:   maxEntries,
		ll:    list.New(),
		items: make(map[Key]*list.Element),
	}
	c.enabled.Store(true)
	return c
}

// SetEnabled switches memoization on or off. Disabled, Get always misses
// (without counting) and Put discards; cached entries are kept for when the
// cache is re-enabled.
func (c *Cache) SetEnabled(on bool) { c.enabled.Store(on) }

// SetStore installs (or, with nil, removes) the persistent second tier:
// memory LRU → store → simulate. A store hit is promoted into memory; a
// fresh simulation is written through to both tiers. Disabling the cache
// (SetEnabled(false)) bypasses the store too.
func (c *Cache) SetStore(t Tier) {
	if t == nil {
		c.store.Store(nil)
		return
	}
	c.store.Store(&tierBox{t: t})
}

// tier returns the installed second tier, or nil.
func (c *Cache) tier() Tier {
	if b := c.store.Load(); b != nil {
		return b.t
	}
	return nil
}

// Enabled reports whether the cache is serving lookups.
func (c *Cache) Enabled() bool { return c.enabled.Load() }

// Get returns a copy of the cached result for k, marking it most recently
// used.
func (c *Cache) Get(k Key) (stats.Sim, bool) {
	if !c.enabled.Load() {
		return stats.Sim{}, false
	}
	c.mu.Lock()
	el, ok := c.items[k]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return stats.Sim{}, false
	}
	c.ll.MoveToFront(el)
	st := el.Value.(*entry).st
	c.mu.Unlock()
	c.hits.Add(1)
	return st, true
}

// Put stores a copy of st under k, evicting the least recently used entry
// when the cache is full. Storing an existing key refreshes it.
func (c *Cache) Put(k Key, st *stats.Sim) {
	if !c.enabled.Load() || st == nil {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		el.Value.(*entry).st = *st
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	if c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
		c.evictions.Add(1)
	}
	c.items[k] = c.ll.PushFront(&entry{key: k, st: *st})
	c.mu.Unlock()
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the hit/miss/eviction counters and current size.
func (c *Cache) Stats() Counters {
	return Counters{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Size:      c.Len(),
	}
}

// Reset drops every cached entry (counters are kept; they are monotonic by
// contract, as metric exporters depend on). Used by benchmarks to measure
// cold-versus-warm behavior.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}

// Run executes cfg over img through the cache: a hit returns the memoized
// statistics without simulating; a miss simulates, stores the result and
// returns it. Only successful runs are cached — errors always re-execute.
// The returned statistics are the caller's to keep (a private copy).
//
// Callers needing probes, tracers or any other side effect of execution
// must run core.New directly: a memoized result replays no events.
func (c *Cache) Run(cfg core.Config, img *program.Image) (*stats.Sim, error) {
	return c.RunCtx(context.Background(), cfg, img)
}

// RunCtx is Run with request-scoped tracing: when the context carries a
// span (a pipesimd request), the lookup becomes a "runcache.lookup" span
// annotated with its hit/miss outcome, and an actual simulation becomes a
// "simulate" span. On an untraced context both spans are no-ops, so the
// library path pays one context value lookup and nothing more.
func (c *Cache) RunCtx(ctx context.Context, cfg core.Config, img *program.Image) (*stats.Sim, error) {
	st, _, err := c.RunSource(ctx, cfg, img)
	return st, err
}

// RunSource is RunCtx reporting where the result came from: the memory
// LRU, the persistent store (SetStore), or a fresh simulation. A store hit
// is promoted into the memory tier; a fresh result is written through to
// both tiers, so a restarted process finds it on disk.
func (c *Cache) RunSource(ctx context.Context, cfg core.Config, img *program.Image) (*stats.Sim, Source, error) {
	if c == nil || !c.enabled.Load() {
		st, err := simulate(ctx, cfg, img)
		return st, SourceSimulated, err
	}
	_, look := tracing.StartSpan(ctx, "runcache.lookup")
	k := KeyFor(cfg, img.Fingerprint())
	if st, ok := c.Get(k); ok {
		look.SetAttr("outcome", "hit")
		look.End()
		return &st, SourceMemory, nil
	}
	if t := c.tier(); t != nil {
		if st, ok := t.Lookup(k); ok {
			c.Put(k, &st)
			look.SetAttr("outcome", "store-hit")
			look.End()
			return &st, SourceStore, nil
		}
	}
	look.SetAttr("outcome", "miss")
	look.End()
	st, err := simulate(ctx, cfg, img)
	if err != nil {
		return nil, SourceSimulated, err
	}
	c.Put(k, st)
	if t := c.tier(); t != nil {
		t.Store(k, cfg, st)
	}
	return st, SourceSimulated, nil
}

// simulate is one uncached simulation wrapped in a "simulate" span.
func simulate(ctx context.Context, cfg core.Config, img *program.Image) (*stats.Sim, error) {
	_, span := tracing.StartSpan(ctx, "simulate")
	defer span.End()
	st, err := runFresh(cfg, img)
	if err != nil {
		return nil, err
	}
	span.SetAttr("cycles", fmt.Sprint(st.Cycles))
	return st, nil
}

// runFresh is one uncached simulation.
func runFresh(cfg core.Config, img *program.Image) (*stats.Sim, error) {
	sim, err := core.New(cfg, img)
	if err != nil {
		return nil, err
	}
	return sim.Run()
}
