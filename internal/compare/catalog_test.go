package compare_test

import (
	"strings"
	"testing"

	"pipesim/internal/compare"
)

func sweepJSON(points string) []byte {
	return []byte(`{
        "schema": "pipesim-sweep/v1",
        "outcomes": [` + points + `]
    }`)
}

const goldenOutcome = `{
        "id": "figure-4", "ok": true,
        "series": [{"label": "pipe", "points": [
            {"x": 64, "cycles": 1000, "valid": true},
            {"x": 128, "cycles": 900, "valid": true},
            {"x": 256, "cycles": 800, "valid": false}
        ]}]
    }`

// TestCatalogIdentical: a catalog diffed against itself is clean, and
// invalid points never enter the comparison.
func TestCatalogIdentical(t *testing.T) {
	doc := sweepJSON(goldenOutcome)
	r, err := compare.CompareSweepJSON(doc, doc)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Clean() {
		t.Fatalf("self-compare not clean: %+v", r)
	}
	if r.PointsCompared != 2 {
		t.Errorf("points compared = %d, want 2 (the invalid point is excluded)", r.PointsCompared)
	}
	if !strings.Contains(r.Summary, "cycle-identical") {
		t.Errorf("summary = %q", r.Summary)
	}
}

// TestCatalogDrift: a changed cycle count is drift, ranked by magnitude,
// and fails the gate.
func TestCatalogDrift(t *testing.T) {
	golden := sweepJSON(goldenOutcome)
	candidate := sweepJSON(`{
        "id": "figure-4", "ok": true,
        "series": [{"label": "pipe", "points": [
            {"x": 64, "cycles": 1001, "valid": true},
            {"x": 128, "cycles": 950, "valid": true}
        ]}]
    }`)
	r, err := compare.CompareSweepJSON(golden, candidate)
	if err != nil {
		t.Fatal(err)
	}
	if r.Clean() {
		t.Fatal("drifted catalog reported clean")
	}
	if len(r.Drift) != 2 {
		t.Fatalf("drift rows = %d, want 2", len(r.Drift))
	}
	if r.Drift[0].X != 128 || r.Drift[0].Delta != 50 {
		t.Errorf("worst drift = %+v, want x=128 delta +50 first", r.Drift[0])
	}
	if !strings.Contains(r.Summary, "figure-4/pipe@128") {
		t.Errorf("summary does not name the worst point: %q", r.Summary)
	}
}

// TestCatalogMissing: losing a golden point fails the gate; gaining a new
// point only warns.
func TestCatalogMissing(t *testing.T) {
	golden := sweepJSON(goldenOutcome)
	lost := sweepJSON(`{
        "id": "figure-4", "ok": true,
        "series": [{"label": "pipe", "points": [
            {"x": 64, "cycles": 1000, "valid": true}
        ]}]
    }`)
	r, err := compare.CompareSweepJSON(golden, lost)
	if err != nil {
		t.Fatal(err)
	}
	if r.Clean() {
		t.Fatal("catalog that lost a point reported clean")
	}
	if len(r.MissingInB) != 1 || r.MissingInB[0] != "figure-4/pipe@128" {
		t.Errorf("missing_in_b = %v", r.MissingInB)
	}

	gained := sweepJSON(goldenOutcome + `, {
        "id": "figure-9", "ok": true,
        "series": [{"label": "tib", "points": [{"x": 64, "cycles": 500, "valid": true}]}]
    }`)
	r, err = compare.CompareSweepJSON(golden, gained)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Clean() {
		t.Errorf("catalog that only gained points should pass the gate: %+v", r)
	}
	if len(r.MissingInA) != 1 || r.MissingInA[0] != "figure-9/tib@64" {
		t.Errorf("missing_in_a = %v", r.MissingInA)
	}
	if !strings.Contains(r.Summary, "regenerate the golden") {
		t.Errorf("summary = %q", r.Summary)
	}
}

// TestCatalogFailedExperiment: an outcome with ok=false contributes no
// points, so its golden points show up as missing.
func TestCatalogFailedExperiment(t *testing.T) {
	golden := sweepJSON(goldenOutcome)
	failed := sweepJSON(`{
        "id": "figure-4", "ok": false, "error": "boom",
        "series": [{"label": "pipe", "points": [
            {"x": 64, "cycles": 1000, "valid": true},
            {"x": 128, "cycles": 900, "valid": true}
        ]}]
    }`)
	r, err := compare.CompareSweepJSON(golden, failed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Clean() {
		t.Fatal("failed experiment reported clean")
	}
	if len(r.MissingInB) != 2 {
		t.Errorf("missing_in_b = %v, want both points", r.MissingInB)
	}
}

// TestCatalogBadSchema rejects foreign documents on either side.
func TestCatalogBadSchema(t *testing.T) {
	good := sweepJSON(goldenOutcome)
	bad := []byte(`{"schema": "pipesim-runs/v1"}`)
	if _, err := compare.CompareSweepJSON(bad, good); err == nil {
		t.Error("foreign schema on side a accepted")
	}
	if _, err := compare.CompareSweepJSON(good, bad); err == nil {
		t.Error("foreign schema on side b accepted")
	}
}
