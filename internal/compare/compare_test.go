package compare_test

import (
	"encoding/json"
	"strings"
	"testing"

	"pipesim/internal/compare"
	"pipesim/internal/core"
	"pipesim/internal/obs"
	"pipesim/internal/stats"
	"pipesim/internal/sweep"
)

// TestAttributionInvariantSynthetic: the per-bucket deltas sum exactly to
// the cycle delta whenever each side's buckets sum to its cycles — the
// attribution invariant carried across runs, including sign-mixed deltas.
func TestAttributionInvariantSynthetic(t *testing.T) {
	a := compare.Run{
		Label:   "a",
		Cycles:  100,
		Buckets: [stats.NumCycleBuckets]uint64{40, 30, 10, 10, 5, 5},
	}
	b := compare.Run{
		Label:   "b",
		Cycles:  130,
		Buckets: [stats.NumCycleBuckets]uint64{35, 70, 5, 10, 5, 5},
	}
	r := compare.Compare(a, b)
	if r.CycleDelta != 30 {
		t.Fatalf("CycleDelta = %d, want 30", r.CycleDelta)
	}
	if got := r.AttributionDeltaSum(); got != r.CycleDelta {
		t.Errorf("attribution delta sum = %d, want %d", got, r.CycleDelta)
	}
	if len(r.Attribution) != int(stats.NumCycleBuckets) {
		t.Errorf("attribution rows = %d, want %d", len(r.Attribution), stats.NumCycleBuckets)
	}
	// fetch-starved dominates: +40 of a +30 total.
	if !strings.Contains(r.Summary, "fetch-starved") {
		t.Errorf("summary does not name the dominant bucket: %q", r.Summary)
	}
	if !strings.Contains(r.Summary, "slower") {
		t.Errorf("summary does not state the direction: %q", r.Summary)
	}
}

// TestCompareRealRuns diffs a real pipe-vs-conventional pair at a small
// cache and checks the acceptance invariant end to end, plus the 3C and
// hit-rate sections.
func TestCompareRealRuns(t *testing.T) {
	img, err := sweep.BenchmarkImage()
	if err != nil {
		t.Fatal(err)
	}
	run := func(strat core.FetchStrategy) compare.Run {
		cfg := core.DefaultConfig()
		cfg.Fetch = strat
		cfg.CacheBytes = 128
		cfg.CacheIntrospect = true
		sim, err := core.New(cfg, img)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return compare.FromSim(strat.String(), "", st, nil)
	}
	a := run(core.FetchPIPE)
	b := run(core.FetchConventional)
	r := compare.Compare(a, b)
	if r.CycleDelta == 0 {
		t.Fatal("pipe and conventional are cycle-identical at 128 B; expected a delta")
	}
	if got := r.AttributionDeltaSum(); got != r.CycleDelta {
		t.Errorf("attribution delta sum = %d, want cycle delta %d", got, r.CycleDelta)
	}
	if len(r.MissClasses) != 3 {
		t.Errorf("miss classes = %d, want 3 (both runs introspected)", len(r.MissClasses))
	}
	for _, c := range r.MissClasses {
		if int64(c.B)-int64(c.A) != c.Delta {
			t.Errorf("class %s delta %d != b-a", c.Class, c.Delta)
		}
	}
	if r.Summary == "" {
		t.Error("empty summary")
	}

	// The report is stable JSON: schema tagged, round-trips.
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back compare.Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != compare.Schema || back.CycleDelta != r.CycleDelta {
		t.Errorf("report did not round-trip: %+v", back)
	}
}

// TestPerLoopRanking: loops join by number, rank by |delta| desc, and the
// summary names the top contributor.
func TestPerLoopRanking(t *testing.T) {
	a := compare.Run{
		Label: "a", Cycles: 100, Buckets: [stats.NumCycleBuckets]uint64{100},
		PerLoop: []obs.LoopStat{
			{Loop: 1, Name: "hydro", Cycles: 50},
			{Loop: 7, Name: "equation-of-state", Cycles: 50},
		},
	}
	b := compare.Run{
		Label: "b", Cycles: 160, Buckets: [stats.NumCycleBuckets]uint64{160},
		PerLoop: []obs.LoopStat{
			{Loop: 1, Name: "hydro", Cycles: 60},
			{Loop: 7, Name: "equation-of-state", Cycles: 100, CacheMisses: 9},
		},
	}
	r := compare.Compare(a, b)
	if len(r.PerLoop) != 2 {
		t.Fatalf("per-loop rows = %d, want 2", len(r.PerLoop))
	}
	if r.PerLoop[0].Loop != 7 || r.PerLoop[0].Delta != 50 {
		t.Errorf("top loop = %+v, want loop 7 delta +50", r.PerLoop[0])
	}
	if r.PerLoop[0].MissDelta != 9 {
		t.Errorf("top loop miss delta = %d, want 9", r.PerLoop[0].MissDelta)
	}
	if !strings.Contains(r.Summary, "loop 7 (equation-of-state)") {
		t.Errorf("summary does not name the driving loop: %q", r.Summary)
	}
}

// TestIdenticalRuns: a zero delta says so plainly and attributes nothing.
func TestIdenticalRuns(t *testing.T) {
	a := compare.Run{Label: "x", Cycles: 42, Buckets: [stats.NumCycleBuckets]uint64{42}}
	r := compare.Compare(a, a)
	if r.CycleDelta != 0 || r.AttributionDeltaSum() != 0 {
		t.Fatalf("self-compare delta = %d", r.CycleDelta)
	}
	if !strings.Contains(r.Summary, "cycle-identical") {
		t.Errorf("summary = %q", r.Summary)
	}
}
