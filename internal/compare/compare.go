// Package compare is the differential performance explainer: it takes two
// finished runs and explains their cycle delta instead of just reporting
// it. The paper's whole method is comparison — the same Livermore workload
// under different fetch strategies and geometries, conclusions drawn from
// the deltas — and the simulator's exact cycle attribution makes the
// explanation exact too: every simulated cycle lands in exactly one
// bucket, so the per-bucket deltas of two runs sum to their total cycle
// delta by construction, with no "unexplained" remainder.
//
// The report (schema pipesim-compare/v1) decomposes the delta three ways:
// per attribution bucket (where did the extra cycles go), per 3C miss
// class when both runs were introspected (why did the memory system cost
// more), and per Livermore loop when both runs collected per-loop stats
// (which code is responsible). It backs `pipesim diff`, pipesimd's
// GET /v1/compare, and the CI golden-catalog drift gate (catalog.go).
package compare

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pipesim/internal/obs"
	"pipesim/internal/stats"
)

// Schema identifies the Report JSON layout. Existing names, units and
// nesting stay stable within a major version.
const Schema = "pipesim-compare/v1"

// Run is one side of a comparison: the measurements the explainer needs,
// extracted from a stats.Sim (FromSim) or assembled by a caller holding a
// public pipesim.Result.
type Run struct {
	Label        string
	Key          string // content-addressed run identity (hex), "" if unknown
	Cycles       uint64
	Instructions uint64
	Buckets      [stats.NumCycleBuckets]uint64
	CacheHits    uint64
	CacheMisses  uint64
	Cache        *stats.CacheStats // nil when the run was not introspected
	PerLoop      []obs.LoopStat    // nil when per-loop stats were not collected
}

// FromSim extracts a comparison side from raw simulation statistics.
// perloop may be nil.
func FromSim(label, key string, st *stats.Sim, perloop []obs.LoopStat) Run {
	return Run{
		Label:        label,
		Key:          key,
		Cycles:       st.Cycles,
		Instructions: st.CPU.Instructions,
		Buckets:      st.CPU.CycleBuckets,
		CacheHits:    st.Fetch.CacheHits,
		CacheMisses:  st.Fetch.CacheMisses,
		Cache:        st.Cache,
		PerLoop:      perloop,
	}
}

// RunRef is a report's description of one compared run.
type RunRef struct {
	Label        string  `json:"label,omitempty"`
	Key          string  `json:"key,omitempty"`
	Cycles       uint64  `json:"cycles"`
	Instructions uint64  `json:"instructions,omitempty"`
	CPI          float64 `json:"cpi,omitempty"`
	HitRatePct   float64 `json:"hit_rate_pct,omitempty"` // cache hit rate, percent
}

// BucketDelta is one attribution bucket's contribution to the cycle delta.
type BucketDelta struct {
	Bucket   string  `json:"bucket"`
	A        uint64  `json:"a"`
	B        uint64  `json:"b"`
	Delta    int64   `json:"delta"`     // B - A
	SharePct float64 `json:"share_pct"` // 100*Delta/CycleDelta (0 when CycleDelta is 0)
}

// ClassDelta is one 3C miss class's shift between the runs.
type ClassDelta struct {
	Class string `json:"class"`
	A     uint64 `json:"a"`
	B     uint64 `json:"b"`
	Delta int64  `json:"delta"`
}

// LoopDelta is one Livermore loop's contribution to the cycle delta,
// with its miss and stall shifts for the "why".
type LoopDelta struct {
	Loop       int     `json:"loop"`
	Name       string  `json:"name,omitempty"`
	A          uint64  `json:"a"`
	B          uint64  `json:"b"`
	Delta      int64   `json:"delta"`
	SharePct   float64 `json:"share_pct"`
	MissDelta  int64   `json:"miss_delta"`
	StallDelta int64   `json:"stall_delta"`
}

// Report is the machine-readable comparison (schema pipesim-compare/v1).
// Attribution always satisfies: sum of Delta over the buckets equals
// CycleDelta exactly (the attribution invariant carried across runs).
type Report struct {
	Schema string `json:"schema"`
	A      RunRef `json:"a"`
	B      RunRef `json:"b"`

	// CycleDelta is B.Cycles - A.Cycles: positive means B is slower.
	CycleDelta int64 `json:"cycle_delta"`
	// PctDelta is the delta as a percentage of A's cycles.
	PctDelta float64 `json:"pct_delta"`

	// Attribution decomposes the delta per cycle bucket, in bucket order.
	Attribution []BucketDelta `json:"attribution"`

	// MissClasses is present when both runs carried 3C introspection.
	MissClasses []ClassDelta `json:"miss_classes,omitempty"`
	// HitRateDeltaPct is B's cache hit rate minus A's, in percentage
	// points (present whenever either run made cache references).
	HitRateDeltaPct float64 `json:"hit_rate_delta_pct,omitempty"`

	// PerLoop ranks the loops by absolute cycle-delta contribution,
	// largest first, when both runs collected per-loop statistics.
	PerLoop []LoopDelta `json:"per_loop,omitempty"`

	// Summary is the one-paragraph human explanation.
	Summary string `json:"summary"`
}

// AttributionDeltaSum sums the per-bucket deltas — by construction equal
// to CycleDelta.
func (r *Report) AttributionDeltaSum() int64 {
	var sum int64
	for _, b := range r.Attribution {
		sum += b.Delta
	}
	return sum
}

func hitRatePct(hits, misses uint64) float64 {
	total := hits + misses
	if total == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(total)
}

func refOf(r Run) RunRef {
	ref := RunRef{
		Label:        r.Label,
		Key:          r.Key,
		Cycles:       r.Cycles,
		Instructions: r.Instructions,
		HitRatePct:   hitRatePct(r.CacheHits, r.CacheMisses),
	}
	if r.Instructions > 0 {
		ref.CPI = float64(r.Cycles) / float64(r.Instructions)
	}
	return ref
}

// sharePct is delta's share of total, in percent (0 when total is 0).
func sharePct(delta, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(delta) / float64(total)
}

// Compare builds the differential report for two runs: B relative to A.
func Compare(a, b Run) *Report {
	r := &Report{
		Schema:     Schema,
		A:          refOf(a),
		B:          refOf(b),
		CycleDelta: int64(b.Cycles) - int64(a.Cycles),
	}
	if a.Cycles > 0 {
		r.PctDelta = 100 * float64(r.CycleDelta) / float64(a.Cycles)
	}
	for i := 0; i < int(stats.NumCycleBuckets); i++ {
		av, bv := a.Buckets[i], b.Buckets[i]
		r.Attribution = append(r.Attribution, BucketDelta{
			Bucket:   stats.CycleBucket(i).String(),
			A:        av,
			B:        bv,
			Delta:    int64(bv) - int64(av),
			SharePct: sharePct(int64(bv)-int64(av), r.CycleDelta),
		})
	}
	if a.CacheHits+a.CacheMisses > 0 || b.CacheHits+b.CacheMisses > 0 {
		r.HitRateDeltaPct = hitRatePct(b.CacheHits, b.CacheMisses) - hitRatePct(a.CacheHits, a.CacheMisses)
	}
	if a.Cache != nil && b.Cache != nil {
		r.MissClasses = []ClassDelta{
			classDelta("compulsory", a.Cache.Compulsory, b.Cache.Compulsory),
			classDelta("capacity", a.Cache.Capacity, b.Cache.Capacity),
			classDelta("conflict", a.Cache.Conflict, b.Cache.Conflict),
		}
	}
	if len(a.PerLoop) > 0 && len(b.PerLoop) > 0 {
		r.PerLoop = loopDeltas(a.PerLoop, b.PerLoop, r.CycleDelta)
	}
	r.Summary = summarize(r)
	return r
}

func classDelta(name string, a, b uint64) ClassDelta {
	return ClassDelta{Class: name, A: a, B: b, Delta: int64(b) - int64(a)}
}

// loopDeltas joins the two per-loop tables by loop number and ranks the
// result by absolute cycle delta, largest first. Loops present on only
// one side (possible only with foreign workloads) count the missing side
// as zero.
func loopDeltas(a, b []obs.LoopStat, cycleDelta int64) []LoopDelta {
	type side struct{ a, b *obs.LoopStat }
	byLoop := make(map[int]*side)
	order := make([]int, 0, len(a)+len(b))
	for i := range a {
		byLoop[a[i].Loop] = &side{a: &a[i]}
		order = append(order, a[i].Loop)
	}
	for i := range b {
		s, ok := byLoop[b[i].Loop]
		if !ok {
			s = &side{}
			byLoop[b[i].Loop] = s
			order = append(order, b[i].Loop)
		}
		s.b = &b[i]
	}
	var out []LoopDelta
	for _, loop := range order {
		s := byLoop[loop]
		if s == nil {
			continue // already consumed (loop listed on both sides)
		}
		byLoop[loop] = nil
		var av, bv obs.LoopStat
		if s.a != nil {
			av = *s.a
		}
		if s.b != nil {
			bv = *s.b
		}
		name := av.Name
		if name == "" {
			name = bv.Name
		}
		d := LoopDelta{
			Loop:       loop,
			Name:       name,
			A:          av.Cycles,
			B:          bv.Cycles,
			Delta:      int64(bv.Cycles) - int64(av.Cycles),
			SharePct:   sharePct(int64(bv.Cycles)-int64(av.Cycles), cycleDelta),
			MissDelta:  int64(bv.CacheMisses) - int64(av.CacheMisses),
			StallDelta: int64(bv.StallCycles()) - int64(av.StallCycles()),
		}
		out = append(out, d)
	}
	sort.SliceStable(out, func(i, j int) bool {
		di, dj := out[i].Delta, out[j].Delta
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		return di > dj
	})
	return out
}

// summarize renders the one-paragraph human explanation: direction and
// size of the delta, the dominant attribution bucket, the dominant miss
// class shift, and the top contributing loops.
func summarize(r *Report) string {
	aName, bName := r.A.Label, r.B.Label
	if aName == "" {
		aName = "A"
	}
	if bName == "" {
		bName = "B"
	}
	if r.CycleDelta == 0 {
		return fmt.Sprintf("%s and %s are cycle-identical (%d cycles).", bName, aName, r.A.Cycles)
	}
	var sb strings.Builder
	dir := "slower"
	if r.CycleDelta < 0 {
		dir = "faster"
	}
	fmt.Fprintf(&sb, "%s is %.1f%% %s than %s (%+d cycles)", bName, math.Abs(r.PctDelta), dir, aName, r.CycleDelta)

	// Dominant bucket: the largest delta in the direction of the total.
	var top *BucketDelta
	for i := range r.Attribution {
		d := &r.Attribution[i]
		if sameSign(d.Delta, r.CycleDelta) && (top == nil || abs64(d.Delta) > abs64(top.Delta)) {
			top = d
		}
	}
	if top != nil && top.Delta != 0 {
		fmt.Fprintf(&sb, "; %+d of that is %s time (%.1f%% of the delta)", top.Delta, top.Bucket, math.Abs(top.SharePct))
	}
	if len(r.MissClasses) > 0 {
		var topC *ClassDelta
		for i := range r.MissClasses {
			c := &r.MissClasses[i]
			if topC == nil || abs64(c.Delta) > abs64(topC.Delta) {
				topC = c
			}
		}
		if topC != nil && topC.Delta != 0 {
			fmt.Fprintf(&sb, "; miss-class shift is led by %s (%+d misses)", topC.Class, topC.Delta)
		}
	}
	if len(r.PerLoop) > 0 {
		var names []string
		for _, l := range r.PerLoop {
			if !sameSign(l.Delta, r.CycleDelta) || l.Delta == 0 {
				continue
			}
			label := fmt.Sprintf("loop %d", l.Loop)
			if l.Loop == 0 {
				label = "outside the loops"
			} else if l.Name != "" {
				label = fmt.Sprintf("loop %d (%s)", l.Loop, l.Name)
			}
			names = append(names, fmt.Sprintf("%s %+d", label, l.Delta))
			if len(names) == 3 {
				break
			}
		}
		if len(names) > 0 {
			fmt.Fprintf(&sb, "; driven by %s", strings.Join(names, ", "))
		}
	}
	sb.WriteByte('.')
	return sb.String()
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func sameSign(a, b int64) bool { return (a >= 0) == (b >= 0) }
