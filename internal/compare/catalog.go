package compare

// The catalog comparer diffs two pipesim-sweep/v1 metrics documents
// (cmd/experiments -metrics) point by point. The simulator is
// deterministic, so two runs of the same catalog on the same code must
// produce identical cycle counts at every (experiment, series, x) point;
// any difference is simulated-metric drift — a semantic change to the
// simulator — as opposed to host-time noise, which lives only in the
// elapsed_seconds fields this comparer ignores. The CI golden-catalog
// gate runs the catalog, diffs it against the committed golden archive
// with `pipesim diff -fail-on-drift`, and fails loudly on any drift.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// CatalogSchema identifies the CatalogReport JSON layout.
const CatalogSchema = "pipesim-compare-catalog/v1"

// sweepMetricsSchema is the input schema this comparer accepts
// (sweep.MetricsSchema, restated here to keep the package a leaf).
const sweepMetricsSchema = "pipesim-sweep/v1"

// sweepDoc is the subset of the sweep metrics file the comparer reads.
type sweepDoc struct {
	Schema   string `json:"schema"`
	Outcomes []struct {
		ID     string `json:"id"`
		OK     bool   `json:"ok"`
		Error  string `json:"error"`
		Series []struct {
			Label  string `json:"label"`
			Points []struct {
				X      int    `json:"x"`
				Cycles uint64 `json:"cycles"`
				Valid  bool   `json:"valid"`
			} `json:"points"`
		} `json:"series"`
	} `json:"outcomes"`
}

// PointDelta is one catalog point whose simulated value drifted.
type PointDelta struct {
	Experiment string `json:"experiment"`
	Series     string `json:"series"`
	X          int    `json:"x"`
	A          uint64 `json:"a"`
	B          uint64 `json:"b"`
	Delta      int64  `json:"delta"`
}

func (p PointDelta) String() string {
	return fmt.Sprintf("%s/%s@%d: %d -> %d (%+d)", p.Experiment, p.Series, p.X, p.A, p.B, p.Delta)
}

// CatalogReport is the catalog-level comparison (schema
// pipesim-compare-catalog/v1).
type CatalogReport struct {
	Schema string `json:"schema"`

	// PointsCompared counts the (experiment, series, x) points present on
	// both sides.
	PointsCompared int `json:"points_compared"`

	// Drift lists every compared point whose value differs, sorted by
	// absolute delta descending.
	Drift []PointDelta `json:"drift,omitempty"`

	// MissingInB lists "experiment/series@x" points present in A (the
	// golden archive) but absent or invalid in B — a lost experiment is
	// drift too. MissingInA lists points new in B (an added experiment);
	// they do not fail the gate but signal the golden needs regenerating.
	MissingInB []string `json:"missing_in_b,omitempty"`
	MissingInA []string `json:"missing_in_a,omitempty"`

	Summary string `json:"summary"`
}

// Clean reports whether the gate should pass: no drifted points and
// nothing lost relative to the golden side.
func (r *CatalogReport) Clean() bool {
	return len(r.Drift) == 0 && len(r.MissingInB) == 0
}

type catalogPoint struct {
	exp, series string
	x           int
}

func (p catalogPoint) String() string { return fmt.Sprintf("%s/%s@%d", p.exp, p.series, p.x) }

// pointsOf flattens a sweep doc into its valid (experiment, series, x) →
// cycles map. Failed experiments and invalid points contribute nothing:
// a point that stopped being produced shows up as missing.
func pointsOf(doc *sweepDoc) map[catalogPoint]uint64 {
	out := make(map[catalogPoint]uint64)
	for _, o := range doc.Outcomes {
		if !o.OK {
			continue
		}
		for _, s := range o.Series {
			for _, p := range s.Points {
				if !p.Valid {
					continue
				}
				out[catalogPoint{exp: o.ID, series: s.Label, x: p.X}] = p.Cycles
			}
		}
	}
	return out
}

// CompareSweepJSON diffs two pipesim-sweep/v1 metrics documents: a is the
// reference (golden), b the candidate.
func CompareSweepJSON(a, b []byte) (*CatalogReport, error) {
	da, err := decodeSweep(a, "a")
	if err != nil {
		return nil, err
	}
	db, err := decodeSweep(b, "b")
	if err != nil {
		return nil, err
	}
	pa, pb := pointsOf(da), pointsOf(db)

	r := &CatalogReport{Schema: CatalogSchema}
	var keys []catalogPoint
	for k := range pa {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].exp != keys[j].exp {
			return keys[i].exp < keys[j].exp
		}
		if keys[i].series != keys[j].series {
			return keys[i].series < keys[j].series
		}
		return keys[i].x < keys[j].x
	})
	for _, k := range keys {
		av := pa[k]
		bv, ok := pb[k]
		if !ok {
			r.MissingInB = append(r.MissingInB, k.String())
			continue
		}
		r.PointsCompared++
		if av != bv {
			r.Drift = append(r.Drift, PointDelta{
				Experiment: k.exp, Series: k.series, X: k.x,
				A: av, B: bv, Delta: int64(bv) - int64(av),
			})
		}
	}
	var newKeys []catalogPoint
	for k := range pb {
		if _, ok := pa[k]; !ok {
			newKeys = append(newKeys, k)
		}
	}
	sort.Slice(newKeys, func(i, j int) bool { return newKeys[i].String() < newKeys[j].String() })
	for _, k := range newKeys {
		r.MissingInA = append(r.MissingInA, k.String())
	}
	sort.SliceStable(r.Drift, func(i, j int) bool { return abs64(r.Drift[i].Delta) > abs64(r.Drift[j].Delta) })
	r.Summary = summarizeCatalog(r)
	return r, nil
}

func decodeSweep(raw []byte, side string) (*sweepDoc, error) {
	var doc sweepDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("compare: decoding sweep document %s: %w", side, err)
	}
	if doc.Schema != sweepMetricsSchema {
		return nil, fmt.Errorf("compare: sweep document %s has schema %q, want %q", side, doc.Schema, sweepMetricsSchema)
	}
	return &doc, nil
}

func summarizeCatalog(r *CatalogReport) string {
	if r.Clean() && len(r.MissingInA) == 0 {
		return fmt.Sprintf("catalogs are cycle-identical across %d points.", r.PointsCompared)
	}
	var parts []string
	if len(r.Drift) > 0 {
		parts = append(parts, fmt.Sprintf("%d of %d points drifted (worst: %s)",
			len(r.Drift), r.PointsCompared, r.Drift[0].String()))
	}
	if len(r.MissingInB) > 0 {
		parts = append(parts, fmt.Sprintf("%d golden points are missing from the candidate (first: %s)",
			len(r.MissingInB), r.MissingInB[0]))
	}
	if len(r.MissingInA) > 0 {
		parts = append(parts, fmt.Sprintf("%d points are new in the candidate (regenerate the golden to adopt them)",
			len(r.MissingInA)))
	}
	return strings.Join(parts, "; ") + "."
}
