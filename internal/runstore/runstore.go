// Package runstore is the persistent tier of the run cache: a disk-backed,
// content-addressed archive of complete simulation results. Each archived
// run is one JSON file named by its runcache.Key (the sha256 of the
// canonical configuration plus the program image fingerprint), written
// atomically via temp+rename, so a crash never leaves a half-written
// record visible and replicas can share one store directory over a
// common filesystem.
//
// The store slots under internal/runcache as its second tier — memory LRU
// → disk → simulate — so a restarted daemon serves previously-simulated
// configurations from disk without re-running them, and it doubles as the
// archive behind `pipesim diff` and pipesimd's /v1/runs + /v1/compare:
// any two archived keys can be compared long after the runs happened.
//
// An index file (index.json) accelerates listing and carries per-entry
// summaries, but it is advisory only: lookups always read the entry file
// itself, and Open reconciles the index against a directory scan, so a
// crash between an entry write and the index write — or another replica
// writing into the same directory — loses nothing. Corrupt or truncated
// entry files are treated as misses and removed, never trusted.
package runstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pipesim/internal/core"
	"pipesim/internal/obs"
	"pipesim/internal/runcache"
	"pipesim/internal/stats"
)

// Schema identifies the on-disk record layout. Bump on incompatible
// change; Open ignores records with a different schema (they read as
// misses), so a store directory survives upgrades without migration.
const Schema = "pipesim-runs/v1"

// Record is one archived run: the configuration that ran, the complete
// statistics it produced, and (when the run collected them) the per-loop
// breakdown. The statistics are the same stats.Sim the run cache memoizes,
// so a record round-trips to an identical pipesim.Result.
type Record struct {
	Schema string      `json:"schema"`
	Key    string      `json:"key"` // runcache.Key hex — also the file name
	Config core.Config `json:"config"`
	Sim    stats.Sim   `json:"sim"`

	// PerLoop carries the per-Livermore-loop statistics when the archived
	// run collected them (Simulation.CollectPerLoop). Runs archived through
	// the cache tier never have them — a memoized result replays no events.
	PerLoop []obs.LoopStat `json:"per_loop,omitempty"`

	// StoredUnix is the wall-clock time the record was written (seconds).
	// It orders eviction (oldest first) and the /v1/runs listing.
	StoredUnix int64 `json:"stored_unix"`
}

// Entry is one index row: the key plus the summary fields the listing
// endpoints show without opening the record file.
type Entry struct {
	Key          string `json:"key"`
	Bytes        int64  `json:"bytes"`
	StoredUnix   int64  `json:"stored_unix"`
	Strategy     string `json:"strategy"`
	CacheBytes   int    `json:"cache_bytes"`
	LineBytes    int    `json:"line_bytes"`
	MemAccess    int    `json:"mem_access"`
	BusBytes     int    `json:"bus_bytes"`
	Cycles       uint64 `json:"cycles"`
	Instructions uint64 `json:"instructions"`
}

// Counters is a point-in-time snapshot of the store's activity since the
// process opened it. Hits/Misses/Writes/Evictions are monotonic; Entries
// and Bytes are the current occupancy.
type Counters struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Writes      uint64 `json:"writes"`
	Evictions   uint64 `json:"evictions"`
	WriteErrors uint64 `json:"write_errors,omitempty"`
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
}

// Options bounds the store. Zero values select the defaults.
type Options struct {
	// MaxEntries caps the archived run count (0 = DefaultMaxEntries).
	MaxEntries int
	// MaxBytes caps the summed entry-file size (0 = DefaultMaxBytes).
	MaxBytes int64
}

// Default garbage-collection bounds: generous for a result archive (a
// record without introspection is ~2 KB), tight enough that a store
// directory can never grow without bound.
const (
	DefaultMaxEntries = 16384
	DefaultMaxBytes   = 256 << 20
)

const indexName = "index.json"

// indexFile is the on-disk index layout.
type indexFile struct {
	Schema  string  `json:"schema"`
	Entries []Entry `json:"entries"`
}

// Store is an open archive directory. All methods are safe for concurrent
// use; writes from multiple processes sharing the directory are safe at
// the entry level (atomic rename), with each process maintaining its own
// view of the index.
type Store struct {
	dir        string
	maxEntries int
	maxBytes   int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	writes    atomic.Uint64
	evictions atomic.Uint64
	writeErrs atomic.Uint64

	mu      sync.Mutex
	entries []Entry        // oldest first (StoredUnix order, ties by scan order)
	byKey   map[string]int // key -> index into entries
	bytes   int64
}

// Open opens (creating if needed) the archive at dir and reconciles the
// index against the directory contents: entries whose file vanished are
// dropped, record files the index does not know (a crash before the index
// write, or another replica's writes) are scanned back in, and anything
// unreadable is ignored. Open never fails on corrupt store content — only
// on an unusable directory.
func Open(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	s := &Store{
		dir:        dir,
		maxEntries: opt.MaxEntries,
		maxBytes:   opt.MaxBytes,
		byKey:      make(map[string]int),
	}
	if s.maxEntries <= 0 {
		s.maxEntries = DefaultMaxEntries
	}
	if s.maxBytes <= 0 {
		s.maxBytes = DefaultMaxBytes
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.gcLocked()
	s.mu.Unlock()
	return s, nil
}

// load builds the in-memory index: the index file where it agrees with the
// directory, a record scan for everything else.
func (s *Store) load() error {
	known := make(map[string]Entry)
	if raw, err := os.ReadFile(filepath.Join(s.dir, indexName)); err == nil {
		var idx indexFile
		if json.Unmarshal(raw, &idx) == nil && idx.Schema == Schema {
			for _, e := range idx.Entries {
				known[e.Key] = e
			}
		}
	}
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	var entries []Entry
	for _, de := range names {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") || name == indexName {
			continue
		}
		key := strings.TrimSuffix(name, ".json")
		if _, err := runcache.ParseKey(key); err != nil {
			continue // temp files, foreign content
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		if e, ok := known[key]; ok && e.Bytes == info.Size() {
			entries = append(entries, e)
			continue
		}
		// Unknown (or resized) file: rebuild its index row from the record
		// itself. Unreadable records are skipped — Get would reject them too.
		rec, err := readRecord(s.entryPath(key))
		if err != nil || rec.Key != key {
			continue
		}
		entries = append(entries, entryFor(rec, info.Size()))
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].StoredUnix < entries[j].StoredUnix })
	s.entries = entries
	s.byKey = make(map[string]int, len(entries))
	s.bytes = 0
	for i, e := range entries {
		s.byKey[e.Key] = i
		s.bytes += e.Bytes
	}
	return nil
}

func entryFor(rec *Record, size int64) Entry {
	return Entry{
		Key:          rec.Key,
		Bytes:        size,
		StoredUnix:   rec.StoredUnix,
		Strategy:     rec.Config.Fetch.String(),
		CacheBytes:   rec.Config.CacheBytes,
		LineBytes:    rec.Config.LineBytes,
		MemAccess:    rec.Config.Mem.AccessTime,
		BusBytes:     rec.Config.Mem.BusWidthBytes,
		Cycles:       rec.Sim.Cycles,
		Instructions: rec.Sim.CPU.Instructions,
	}
}

// Dir returns the archive directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) entryPath(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// errBadSchema marks a structurally valid record of a different (likely
// newer) schema: a miss, but not corruption — the file is left alone.
var errBadSchema = fmt.Errorf("runstore: record schema is not %q", Schema)

// readRecord reads and validates one record file.
func readRecord(path string) (*Record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, err
	}
	if rec.Schema != Schema {
		return nil, errBadSchema
	}
	return &rec, nil
}

// Get returns the archived record for key. It always reads the entry file
// directly — never the index — so records written by other replicas into a
// shared directory are found even before a re-Open. A corrupt or
// truncated file is a miss; the bad file is removed so it cannot shadow a
// future write. A record with a foreign schema is a miss too, but is left
// on disk (it may belong to a newer replica).
func (s *Store) Get(key runcache.Key) (*Record, bool) {
	hex := key.String()
	rec, err := readRecord(s.entryPath(hex))
	if err != nil {
		if !os.IsNotExist(err) && err != errBadSchema {
			s.dropBad(hex)
		}
		s.misses.Add(1)
		return nil, false
	}
	if rec.Key != hex {
		s.dropBad(hex)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return rec, true
}

// GetHex is Get for a caller holding the hex form.
func (s *Store) GetHex(hexKey string) (*Record, bool) {
	k, err := runcache.ParseKey(hexKey)
	if err != nil {
		return nil, false
	}
	return s.Get(k)
}

// dropBad removes a corrupt entry file and its index row.
func (s *Store) dropBad(hexKey string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	os.Remove(s.entryPath(hexKey))
	if i, ok := s.byKey[hexKey]; ok {
		s.removeAtLocked(i)
		s.writeIndexLocked()
	}
}

// Put archives one cache-tier result (no per-loop data) under key.
func (s *Store) Put(key runcache.Key, cfg core.Config, st *stats.Sim) error {
	if st == nil {
		return nil
	}
	return s.PutRecord(&Record{Key: key.String(), Config: cfg, Sim: *st})
}

// PutRecord archives a complete record (rec.Key must be set; Schema and
// StoredUnix are filled in). The write is atomic — temp file, fsync,
// rename — and the index is rewritten afterwards; a crash between the two
// is healed by the next Open's directory reconciliation. Storing an
// existing key replaces it.
func (s *Store) PutRecord(rec *Record) error {
	if _, err := runcache.ParseKey(rec.Key); err != nil {
		s.writeErrs.Add(1)
		return err
	}
	rec.Schema = Schema
	if rec.StoredUnix == 0 {
		rec.StoredUnix = time.Now().Unix()
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		s.writeErrs.Add(1)
		return fmt.Errorf("runstore: encoding %s: %w", rec.Key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeAtomicLocked(s.entryPath(rec.Key), raw); err != nil {
		s.writeErrs.Add(1)
		return err
	}
	s.writes.Add(1)
	if i, ok := s.byKey[rec.Key]; ok {
		s.removeAtLocked(i)
	}
	s.byKey[rec.Key] = len(s.entries)
	s.entries = append(s.entries, entryFor(rec, int64(len(raw))))
	s.bytes += int64(len(raw))
	s.gcLocked()
	s.writeIndexLocked()
	return nil
}

// writeAtomicLocked writes data to path via temp+fsync+rename.
func (s *Store) writeAtomicLocked(path string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	} else {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("runstore: writing %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("runstore: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("runstore: %w", err)
	}
	return nil
}

// removeAtLocked deletes entry i from the in-memory index (not the file).
func (s *Store) removeAtLocked(i int) {
	s.bytes -= s.entries[i].Bytes
	delete(s.byKey, s.entries[i].Key)
	s.entries = append(s.entries[:i], s.entries[i+1:]...)
	for j := i; j < len(s.entries); j++ {
		s.byKey[s.entries[j].Key] = j
	}
}

// gcLocked evicts oldest-first until both bounds hold.
func (s *Store) gcLocked() {
	for len(s.entries) > 0 && (len(s.entries) > s.maxEntries || s.bytes > s.maxBytes) {
		victim := s.entries[0]
		os.Remove(s.entryPath(victim.Key))
		s.removeAtLocked(0)
		s.evictions.Add(1)
	}
}

// writeIndexLocked persists the advisory index (atomically; errors are
// counted but otherwise ignored — the index is rebuilt from the directory
// on the next Open).
func (s *Store) writeIndexLocked() {
	raw, err := json.Marshal(indexFile{Schema: Schema, Entries: s.entries})
	if err != nil {
		s.writeErrs.Add(1)
		return
	}
	if err := s.writeAtomicLocked(filepath.Join(s.dir, indexName), raw); err != nil {
		s.writeErrs.Add(1)
	}
}

// List returns the index rows, newest first.
func (s *Store) List() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, len(s.entries))
	for i, e := range s.entries {
		out[len(out)-1-i] = e
	}
	return out
}

// Len returns the archived run count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the summed entry-file size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Counters snapshots the store's activity counters and occupancy.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	entries, bytes := len(s.entries), s.bytes
	s.mu.Unlock()
	return Counters{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Writes:      s.writes.Load(),
		Evictions:   s.evictions.Load(),
		WriteErrors: s.writeErrs.Load(),
		Entries:     entries,
		Bytes:       bytes,
	}
}

// Lookup implements runcache.Tier: the memory cache's read-through to
// disk. Only the statistics travel back up — per-loop data stays on disk
// (the memory tier stores stats.Sim).
func (s *Store) Lookup(k runcache.Key) (stats.Sim, bool) {
	rec, ok := s.Get(k)
	if !ok {
		return stats.Sim{}, false
	}
	return rec.Sim, true
}

// Store implements runcache.Tier: the memory cache's write-through on a
// fresh simulation. Write failures are counted (Counters.WriteErrors) but
// deliberately not propagated — a full or read-only disk must not fail
// the simulation that produced the result.
func (s *Store) Store(k runcache.Key, cfg core.Config, st *stats.Sim) {
	s.Put(k, cfg, st) // error already counted in writeErrs
}
