package runstore

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"pipesim/internal/asm"
	"pipesim/internal/core"
	"pipesim/internal/obs"
	"pipesim/internal/program"
	"pipesim/internal/runcache"
	"pipesim/internal/stats"
)

func testImage(t testing.TB) *program.Image {
	t.Helper()
	img, err := asm.Assemble(`
        li   r1, 8
        li   r2, 0
        setb b0, loop
loop:   add  r2, r2, r1
        addi r1, r1, -1
        pbr  ne, r1, b0, 2
        nop
        nop
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// simulate runs one real simulation and returns everything the archive
// stores: the key, the configuration and the statistics.
func simulate(t *testing.T, mutate func(*core.Config)) (runcache.Key, core.Config, *stats.Sim) {
	t.Helper()
	img := testImage(t)
	cfg := core.DefaultConfig()
	cfg.CacheIntrospect = true
	if mutate != nil {
		mutate(&cfg)
	}
	sim, err := core.New(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return runcache.KeyFor(cfg, img.Fingerprint()), cfg, st
}

func openStore(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRoundTrip pins archive determinism: a stored record — including the
// introspection block and a per-loop table — reloads DeepEqual, both from
// the live store and after a fresh Open of the same directory.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	key, cfg, st := simulate(t, nil)
	rec := &Record{
		Key:    key.String(),
		Config: cfg,
		Sim:    *st,
		PerLoop: []obs.LoopStat{
			{Loop: 0, Name: "outside", Cycles: 10, Buckets: [stats.NumCycleBuckets]uint64{4, 3, 1, 1, 1, 0}},
			{Loop: 7, Name: "equation-of-state", Cycles: 90, Instructions: 60,
				CacheMisses: 5, MissCompulsory: 2, MissCapacity: 2, MissConflict: 1},
		},
	}
	if err := s.PutRecord(rec); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("stored record not found")
	}
	if !reflect.DeepEqual(got, rec) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, rec)
	}

	// And again through a brand-new Store over the same directory — the
	// restart path.
	s2 := openStore(t, dir, Options{})
	got2, ok := s2.Get(key)
	if !ok {
		t.Fatal("record not found after reopen")
	}
	if !reflect.DeepEqual(got2, rec) {
		t.Errorf("reopened round trip mismatch:\n got %+v\nwant %+v", got2, rec)
	}
	if s2.Len() != 1 {
		t.Errorf("reopened Len = %d, want 1", s2.Len())
	}
}

// TestTierRoundTrip pins the cache integration: a fresh simulation through
// a store-backed cache is written through to disk, and a second cache (a
// simulated process restart: cold memory, same directory) serves it from
// the store without simulating, bit-identically.
func TestTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	img := testImage(t)
	cfg := core.DefaultConfig()

	s1 := openStore(t, dir, Options{})
	c1 := runcache.New(8)
	c1.SetStore(s1)
	st1, src, err := c1.RunSource(t.Context(), cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	if src != runcache.SourceSimulated {
		t.Fatalf("first run source = %v, want simulated", src)
	}
	if n := s1.Counters().Writes; n != 1 {
		t.Fatalf("store writes = %d, want 1", n)
	}

	// "Restart": cold memory cache, fresh Store over the same directory.
	s2 := openStore(t, dir, Options{})
	c2 := runcache.New(8)
	c2.SetStore(s2)
	st2, src, err := c2.RunSource(t.Context(), cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	if src != runcache.SourceStore {
		t.Fatalf("post-restart source = %v, want store", src)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Error("store-served statistics differ from the simulated ones")
	}

	// The store hit was promoted: the next lookup is a memory hit.
	_, src, err = c2.RunSource(t.Context(), cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	if src != runcache.SourceMemory {
		t.Errorf("promoted lookup source = %v, want memory", src)
	}
}

// TestCorruptTolerance: corrupt and truncated entry files are misses (and
// are removed); a structurally valid record of a foreign schema is a miss
// but is left on disk.
func TestCorruptTolerance(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	key, cfg, st := simulate(t, nil)
	if err := s.Put(key, cfg, st); err != nil {
		t.Fatal(err)
	}
	path := s.entryPath(key.String())

	// Truncate mid-JSON.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("truncated record served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("truncated record file not removed")
	}

	// Pure garbage.
	if err := s.Put(key, cfg, st); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("corrupt record served as a hit")
	}

	// Foreign schema: miss, but the file survives (a newer replica's data).
	if err := os.WriteFile(path, []byte(`{"schema":"pipesim-runs/v999","key":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("foreign-schema record served as a hit")
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("foreign-schema record was removed: %v", err)
	}

	c := s.Counters()
	if c.Misses < 3 {
		t.Errorf("misses = %d, want >= 3", c.Misses)
	}
}

// TestOpenReconciles: the index is advisory. A deleted index is rebuilt by
// scanning; an index row whose file vanished is dropped; a record written
// behind the index's back (crash, or another replica) is found.
func TestOpenReconciles(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	key1, cfg, st := simulate(t, nil)
	key2, cfg2, st2 := simulate(t, func(c *core.Config) { c.CacheBytes = 256 })
	if err := s.Put(key1, cfg, st); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key2, cfg2, st2); err != nil {
		t.Fatal(err)
	}

	// Kill the index entirely: everything must come back from the scan.
	if err := os.Remove(filepath.Join(dir, indexName)); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, Options{})
	if s2.Len() != 2 {
		t.Fatalf("scan-rebuilt Len = %d, want 2", s2.Len())
	}
	if _, ok := s2.Get(key1); !ok {
		t.Error("key1 lost after index rebuild")
	}

	// Remove one entry file behind the index's back: the stale row is
	// dropped at Open.
	if err := os.Remove(s2.entryPath(key2.String())); err != nil {
		t.Fatal(err)
	}
	s3 := openStore(t, dir, Options{})
	if s3.Len() != 1 {
		t.Errorf("Len after losing an entry file = %d, want 1", s3.Len())
	}
	if _, ok := s3.Get(key2); ok {
		t.Error("vanished entry served as a hit")
	}
}

// TestBoundedGC: both bounds evict oldest-first.
func TestBoundedGC(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{MaxEntries: 3})
	_, cfg, st := simulate(t, nil)
	var keys []runcache.Key
	for i := 0; i < 5; i++ {
		c := cfg
		c.CacheBytes = 64 << i
		k := runcache.KeyFor(c, [32]byte{byte(i)})
		keys = append(keys, k)
		if err := s.Put(k, c, st); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if c := s.Counters(); c.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", c.Evictions)
	}
	for i, k := range keys {
		_, ok := s.Get(k)
		if want := i >= 2; ok != want {
			t.Errorf("key %d present = %v, want %v", i, ok, want)
		}
	}

	// A byte bound small enough for one record forces eviction down to a
	// single entry.
	one := s.List()[0].Bytes
	s2 := openStore(t, t.TempDir(), Options{MaxBytes: one + one/2})
	for i := 0; i < 3; i++ {
		c := cfg
		c.CacheBytes = 64 << i
		if err := s2.Put(runcache.KeyFor(c, [32]byte{byte(i)}), c, st); err != nil {
			t.Fatal(err)
		}
	}
	if s2.Len() != 1 {
		t.Errorf("byte-bounded Len = %d, want 1", s2.Len())
	}
}

// TestConcurrentWriters hammers one store from many goroutines (run under
// -race): concurrent puts of shared and distinct keys with interleaved
// gets and lists must stay consistent.
func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	_, cfg, st := simulate(t, nil)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				c := cfg
				c.CacheBytes = 64 << (i % 4) // shared across workers
				c.LineBytes = 8
				k := runcache.KeyFor(c, [32]byte{byte(i % 4)})
				if err := s.Put(k, c, st); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if _, ok := s.Get(k); !ok {
					t.Errorf("worker %d: just-written key missing", w)
					return
				}
				s.List()
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4 distinct keys", s.Len())
	}
	want := fmt.Sprintf("%d", workers*10)
	if got := fmt.Sprintf("%d", s.Counters().Writes); got != want {
		t.Errorf("writes = %s, want %s", got, want)
	}
}

// TestListNewestFirst pins the listing order and summary fields.
func TestListNewestFirst(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	_, cfg, st := simulate(t, nil)
	var last runcache.Key
	for i := 0; i < 3; i++ {
		c := cfg
		c.CacheBytes = 64 << i
		last = runcache.KeyFor(c, [32]byte{byte(i)})
		rec := &Record{Key: last.String(), Config: c, Sim: *st, StoredUnix: int64(1000 + i)}
		if err := s.PutRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	l := s.List()
	if len(l) != 3 {
		t.Fatalf("List len = %d, want 3", len(l))
	}
	if l[0].Key != last.String() {
		t.Errorf("List[0] = %s, want the newest key %s", l[0].Key, last)
	}
	if l[0].Cycles != st.Cycles || l[0].Strategy != cfg.Fetch.String() || l[0].CacheBytes != 256 {
		t.Errorf("List[0] summary = %+v", l[0])
	}
}
