// Package bench turns `go test -bench` output into a stable JSON baseline
// and compares two baselines for regressions.
//
// The JSON schema ("pipesim-bench/v1") shares its naming conventions with
// the sweep metrics schema ("pipesim-sweep/v1", internal/sweep): a schema
// tag, lower_snake field names, base units in the name (ns_per_op,
// bytes_per_op). Baselines live at the repo root as BENCH_<label>.json;
// scripts/bench.sh produces them and CI diffs against the committed seed.
package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"pipesim/internal/version"
)

// Schema tags every baseline file so downstream tooling can reject
// incompatible layouts instead of misreading them.
const Schema = "pipesim-bench/v1"

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (BenchmarkSingleRun-8 → BenchmarkSingleRun) so baselines from
	// machines with different core counts still line up.
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp appear with -benchmem.
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values by unit (for example
	// sim_cycles, cycles_per_l1_hit).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the machine-readable form of one benchmark run.
type Baseline struct {
	Schema string `json:"schema"`
	// Label names the baseline (seed, ci, dev...); it becomes the file
	// name: BENCH_<label>.json.
	Label      string      `json:"label"`
	GoVersion  string      `json:"go_version,omitempty"`
	Revision   string      `json:"revision,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Filter returns a copy of the baseline keeping only the benchmarks whose
// name matches re. CI gates use it to fail on a chosen benchmark set (the
// stable, high-signal ones) while the rest of a noisy 1-iteration smoke run
// stays advisory.
func (b *Baseline) Filter(re *regexp.Regexp) *Baseline {
	out := *b
	out.Benchmarks = nil
	for _, bm := range b.Benchmarks {
		if re.MatchString(bm.Name) {
			out.Benchmarks = append(out.Benchmarks, bm)
		}
	}
	return &out
}

// Parse reads `go test -bench` output and collects every benchmark line.
// Non-benchmark lines (package headers, PASS, ok) are ignored. Repeated
// runs of the same benchmark (-count) are averaged.
func Parse(r io.Reader) ([]Benchmark, error) {
	var (
		out   []Benchmark
		index = map[string]int{}
		runs  = map[string]int64{}
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if i, seen := index[b.Name]; seen {
			merge(&out[i], b, runs[b.Name])
			runs[b.Name]++
		} else {
			index[b.Name] = len(out)
			runs[b.Name] = 1
			out = append(out, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// parseLine parses one benchmark result line:
//
//	BenchmarkSingleRun-8  16  67213562 ns/op  14234 B/op  12 allocs/op  646861 sim_cycles
//
// ok is false for lines that start with Benchmark but are not results
// (for example a bare name on its own line when output is wrapped).
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false, nil
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b := Benchmark{Name: name, Iterations: iters}
	// The rest is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("bench %s: bad value %q in %q", name, fields[i], line)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		case "MB/s":
			// throughput is derived from ns/op; skip to keep the schema lean
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, true, nil
}

// merge folds a repeated run into the running average (n prior runs).
func merge(dst *Benchmark, b Benchmark, n int64) {
	f := float64(n)
	avg := func(old, new float64) float64 { return (old*f + new) / (f + 1) }
	dst.Iterations += b.Iterations
	dst.NsPerOp = avg(dst.NsPerOp, b.NsPerOp)
	dst.BytesPerOp = avg(dst.BytesPerOp, b.BytesPerOp)
	dst.AllocsPerOp = avg(dst.AllocsPerOp, b.AllocsPerOp)
	for unit, val := range b.Metrics {
		if dst.Metrics == nil {
			dst.Metrics = map[string]float64{}
		}
		dst.Metrics[unit] = avg(dst.Metrics[unit], val)
	}
}

// New builds a Baseline from parsed benchmarks, stamped with the build's
// version info.
func New(label string, benchmarks []Benchmark) *Baseline {
	v := version.Get()
	return &Baseline{
		Schema:     Schema,
		Label:      label,
		GoVersion:  v.GoVersion,
		Revision:   v.ShortRevision(),
		Benchmarks: benchmarks,
	}
}

// Write renders the baseline as indented JSON.
func (b *Baseline) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Read loads and validates a baseline file.
func Read(r io.Reader) (*Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("decoding baseline: %w", err)
	}
	if b.Schema != Schema {
		return nil, fmt.Errorf("baseline schema %q, want %q", b.Schema, Schema)
	}
	return &b, nil
}

// Delta is one benchmark's old-vs-new comparison.
type Delta struct {
	Name       string  `json:"name"`
	OldNsPerOp float64 `json:"old_ns_per_op"`
	NewNsPerOp float64 `json:"new_ns_per_op"`
	// PctChange is the ns/op change in percent; positive means slower.
	PctChange  float64 `json:"pct_change"`
	Regression bool    `json:"regression"`
}

// Comparison is the full diff of two baselines.
type Comparison struct {
	Threshold float64 `json:"threshold_pct"`
	Deltas    []Delta `json:"deltas"`
	// OnlyOld / OnlyNew list benchmarks present in one baseline only
	// (renamed or deleted benchmarks are surfaced, never silently dropped).
	OnlyOld []string `json:"only_old,omitempty"`
	OnlyNew []string `json:"only_new,omitempty"`
}

// Regressions returns the deltas beyond the threshold.
func (c *Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Compare diffs two baselines: a benchmark regresses when its ns/op grew
// by more than thresholdPct percent.
func Compare(old, new *Baseline, thresholdPct float64) *Comparison {
	c := &Comparison{Threshold: thresholdPct}
	oldBy := map[string]Benchmark{}
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	newSeen := map[string]bool{}
	for _, nb := range new.Benchmarks {
		newSeen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			c.OnlyNew = append(c.OnlyNew, nb.Name)
			continue
		}
		d := Delta{Name: nb.Name, OldNsPerOp: ob.NsPerOp, NewNsPerOp: nb.NsPerOp}
		if ob.NsPerOp > 0 {
			d.PctChange = (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
		}
		d.Regression = d.PctChange > thresholdPct
		c.Deltas = append(c.Deltas, d)
	}
	for _, ob := range old.Benchmarks {
		if !newSeen[ob.Name] {
			c.OnlyOld = append(c.OnlyOld, ob.Name)
		}
	}
	return c
}

// Format renders the comparison as an aligned human-readable table.
func (c *Comparison) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-40s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, d := range c.Deltas {
		mark := ""
		if d.Regression {
			mark = "  REGRESSION"
		}
		fmt.Fprintf(&sb, "%-40s %14.0f %14.0f %+8.1f%%%s\n",
			d.Name, d.OldNsPerOp, d.NewNsPerOp, d.PctChange, mark)
	}
	for _, n := range c.OnlyOld {
		fmt.Fprintf(&sb, "%-40s (removed)\n", n)
	}
	for _, n := range c.OnlyNew {
		fmt.Fprintf(&sb, "%-40s (new)\n", n)
	}
	return sb.String()
}
