package bench

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: pipesim
cpu: some machine
BenchmarkSingleRun-8   	      16	  67213562 ns/op	   14234 B/op	     123 allocs/op	    646861 sim_cycles
BenchmarkProbeOverhead/no-probe-8         	      20	  52040000 ns/op
BenchmarkProbeOverhead/counting-probe-8   	      18	  55100000 ns/op
BenchmarkSweepE2E/table1-8                	     100	    110000 ns/op	  2048 B/op	      12 allocs/op
PASS
ok  	pipesim	12.345s
`

func TestParse(t *testing.T) {
	bs, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(bs), bs)
	}
	byName := map[string]Benchmark{}
	for _, b := range bs {
		byName[b.Name] = b
	}
	sr, ok := byName["BenchmarkSingleRun"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", byName)
	}
	if sr.Iterations != 16 || sr.NsPerOp != 67213562 {
		t.Errorf("SingleRun = %+v", sr)
	}
	if sr.BytesPerOp != 14234 || sr.AllocsPerOp != 123 {
		t.Errorf("benchmem fields = %+v", sr)
	}
	if sr.Metrics["sim_cycles"] != 646861 {
		t.Errorf("custom metric = %+v", sr.Metrics)
	}
	if _, ok := byName["BenchmarkProbeOverhead/no-probe"]; !ok {
		t.Errorf("sub-benchmark names not preserved: %v", byName)
	}
	// Output is sorted by name for stable diffs.
	for i := 1; i < len(bs); i++ {
		if bs[i-1].Name > bs[i].Name {
			t.Errorf("not sorted: %s > %s", bs[i-1].Name, bs[i].Name)
		}
	}
}

func TestParseAveragesRepeatedRuns(t *testing.T) {
	bs, err := Parse(strings.NewReader(`
BenchmarkX-4 10 100 ns/op 7 extra_metric
BenchmarkX-4 10 200 ns/op 9 extra_metric
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 {
		t.Fatalf("got %d benchmarks, want 1 merged", len(bs))
	}
	if bs[0].NsPerOp != 150 || bs[0].Iterations != 20 || bs[0].Metrics["extra_metric"] != 8 {
		t.Errorf("merged = %+v", bs[0])
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	bs, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	base := New("seed", bs)
	if base.Schema != Schema || base.Label != "seed" {
		t.Errorf("baseline header = %+v", base)
	}
	var buf strings.Builder
	if err := base.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != len(bs) || got.Label != "seed" {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := Read(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Error("Read accepted a foreign schema")
	}
}

// TestCompareFlagsRegression pins the acceptance criterion: an injected
// >10% ns/op regression is detected at a 10% threshold, while noise-level
// drift and improvements are not.
func TestCompareFlagsRegression(t *testing.T) {
	old := New("seed", []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkC", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 5},
	})
	new := New("dev", []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1150}, // +15%: regression
		{Name: "BenchmarkB", NsPerOp: 1050}, // +5%: inside threshold
		{Name: "BenchmarkC", NsPerOp: 800},  // improvement
		{Name: "BenchmarkFresh", NsPerOp: 9},
	})
	c := Compare(old, new, 10)
	regs := c.Regressions()
	if len(regs) != 1 || regs[0].Name != "BenchmarkA" {
		t.Fatalf("regressions = %+v, want exactly BenchmarkA", regs)
	}
	if regs[0].PctChange < 14.9 || regs[0].PctChange > 15.1 {
		t.Errorf("pct change = %v, want ~15", regs[0].PctChange)
	}
	if len(c.OnlyOld) != 1 || c.OnlyOld[0] != "BenchmarkGone" {
		t.Errorf("only_old = %v", c.OnlyOld)
	}
	if len(c.OnlyNew) != 1 || c.OnlyNew[0] != "BenchmarkFresh" {
		t.Errorf("only_new = %v", c.OnlyNew)
	}
	table := c.Format()
	if !strings.Contains(table, "REGRESSION") || !strings.Contains(table, "BenchmarkA") {
		t.Errorf("table missing regression marker:\n%s", table)
	}

	// At a looser threshold the same diff is clean.
	if regs := Compare(old, new, 20).Regressions(); len(regs) != 0 {
		t.Errorf("regressions at 20%% = %+v, want none", regs)
	}
}
