package trace

import (
	"strings"
	"testing"

	"pipesim/internal/isa"
)

func ev(c uint64) Event {
	return Event{Cycle: c, PC: uint32(4 * c), Inst: isa.Inst{Op: isa.OpNOP}}
}

func mustRing(t *testing.T, n int) *Ring {
	t.Helper()
	r, err := NewRing(n)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRingKeepsMostRecent(t *testing.T) {
	r := mustRing(t, 3)
	for c := uint64(1); c <= 5; c++ {
		r.Record(ev(c))
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d", r.Total())
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d", len(got))
	}
	for i, want := range []uint64{3, 4, 5} {
		if got[i].Cycle != want {
			t.Errorf("event %d cycle = %d, want %d", i, got[i].Cycle, want)
		}
	}
}

func TestRingPartial(t *testing.T) {
	r := mustRing(t, 8)
	r.Record(ev(1))
	r.Record(ev(2))
	got := r.Events()
	if len(got) != 2 || got[0].Cycle != 1 || got[1].Cycle != 2 {
		t.Fatalf("events = %v", got)
	}
}

func TestRingZeroSizeRejected(t *testing.T) {
	for _, n := range []int{0, -4} {
		if r, err := NewRing(n); err == nil || r != nil {
			t.Fatalf("NewRing(%d) = %v, %v; want nil, error", n, r, err)
		}
	}
}

func TestWriterLimit(t *testing.T) {
	var sb strings.Builder
	w := &Writer{W: &sb, Limit: 2}
	for c := uint64(1); c <= 5; c++ {
		w.Record(ev(c))
	}
	lines := strings.Count(sb.String(), "\n")
	if lines != 2 {
		t.Errorf("wrote %d lines, want 2", lines)
	}
	if !strings.Contains(sb.String(), "NOP") {
		t.Error("line missing mnemonic")
	}
}

func TestMulti(t *testing.T) {
	a, b := mustRing(t, 4), mustRing(t, 4)
	m := Multi{a, b}
	m.Record(ev(7))
	if a.Total() != 1 || b.Total() != 1 {
		t.Error("multi did not fan out")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 42, PC: 0x100, Inst: isa.Inst{Op: isa.OpLI, Rd: 3, Imm: 9}}
	s := e.String()
	for _, want := range []string{"42", "00100", "LI r3, 9"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
