// Package trace provides the lightweight event-tracing facility used for
// debugging simulations and for tests that assert on dynamic instruction
// order. Producers call Record on a Recorder; two recorders are provided: a
// bounded Ring that keeps the most recent events, and a Writer that streams
// formatted events.
package trace

import (
	"fmt"
	"io"

	"pipesim/internal/isa"
)

// Event is one traced occurrence.
type Event struct {
	Cycle uint64
	PC    uint32
	Inst  isa.Inst
}

// String formats the event as one trace line.
func (e Event) String() string {
	return fmt.Sprintf("%10d  %05x  %s", e.Cycle, e.PC, e.Inst)
}

// Recorder consumes events.
type Recorder interface {
	Record(Event)
}

// Ring keeps the most recent events in a fixed-size buffer.
type Ring struct {
	buf   []Event
	next  int
	total uint64
}

// NewRing returns a ring holding up to n events. It returns an error if n
// is not positive.
func NewRing(n int) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: ring size %d must be positive", n)
	}
	return &Ring{buf: make([]Event, 0, n)}, nil
}

// Record stores the event, evicting the oldest when full.
func (r *Ring) Record(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		if r.next++; r.next == cap(r.buf) {
			r.next = 0
		}
	}
	r.total++
}

// Total returns how many events were recorded overall.
func (r *Ring) Total() uint64 { return r.total }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Writer streams formatted events to an io.Writer, optionally stopping
// after a limit (0 = unlimited).
type Writer struct {
	W     io.Writer
	Limit uint64
	n     uint64
}

// Record writes one line per event until the limit is reached.
func (w *Writer) Record(e Event) {
	if w.Limit > 0 && w.n >= w.Limit {
		return
	}
	w.n++
	fmt.Fprintln(w.W, e.String())
}

// Multi fans events out to several recorders.
type Multi []Recorder

// Record forwards the event to every recorder.
func (m Multi) Record(e Event) {
	for _, r := range m {
		r.Record(e)
	}
}
