package fetch

import (
	"testing"

	"pipesim/internal/cache"
	"pipesim/internal/isa"
	"pipesim/internal/mem"
	"pipesim/internal/program"
	"pipesim/internal/stats"
)

// harness drives an engine the way the CPU does: each cycle the memory
// ticks, then the harness consumes the engine's head (recording the PC),
// schedules PBR resolutions a fixed latency later, and ticks the engine.
type harness struct {
	t       *testing.T
	sys     *mem.System
	eng     Engine
	img     *program.Image
	cycle   uint64
	trace   []uint32 // consumed PCs
	resLat  uint64   // cycles from PBR consumption to Resolve
	resq    []scheduledResolve
	outcome func(pc uint32, in isa.Inst) (bool, uint32)
	halted  bool
}

type scheduledResolve struct {
	at     uint64
	taken  bool
	target uint32
}

func newHarness(t *testing.T, img *program.Image, eng Engine, sys *mem.System,
	outcome func(pc uint32, in isa.Inst) (bool, uint32)) *harness {
	return &harness{t: t, sys: sys, eng: eng, img: img, resLat: 3, outcome: outcome}
}

// run executes up to maxCycles or until HALT is consumed; it returns the
// consumed PC trace.
func (h *harness) run(maxCycles uint64) []uint32 {
	for h.cycle = 1; h.cycle <= maxCycles; h.cycle++ {
		h.sys.BeginCycle(h.cycle)
		h.eng.Tick()
		// CPU phase: due resolutions fire from the execute stage, then
		// the front end consumes at most one instruction.
		for len(h.resq) > 0 && h.resq[0].at <= h.cycle {
			r := h.resq[0]
			h.resq = h.resq[1:]
			h.eng.Resolve(r.taken, r.target)
		}
		if !h.halted {
			if pc, w, ok := h.eng.Head(); ok {
				h.eng.Consume()
				h.trace = append(h.trace, pc)
				in := isa.Decode(w)
				switch in.Op {
				case isa.OpHALT:
					h.halted = true
				case isa.OpPBR:
					taken, target := h.outcome(pc, in)
					h.resq = append(h.resq, scheduledResolve{at: h.cycle + h.resLat, taken: taken, target: target})
				}
			}
		}
		h.sys.EndCycle()
		if h.halted && len(h.resq) == 0 {
			return h.trace
		}
	}
	h.t.Fatalf("program did not halt in %d cycles; trace len %d", maxCycles, len(h.trace))
	return nil
}

// straightLine builds a program of n NOPs followed by HALT.
func straightLine(t *testing.T, n int) *program.Image {
	b := program.NewBuilder()
	for i := 0; i < n; i++ {
		b.Nop()
	}
	b.Halt()
	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// loopProgram builds: 2 setup instructions, then a body of bodyLen
// instructions ending with a PBR (delay slots filled by the last `slots`
// body instructions), then HALT. The PBR is the instruction at index
// 2+bodyLen-1-slots within the loop.
func loopProgram(t *testing.T, preLen, bodyLen, slots int) (*program.Image, uint32, uint32) {
	if slots > isa.MaxDelaySlots || slots >= bodyLen {
		t.Fatal("bad loop shape")
	}
	b := program.NewBuilder()
	for i := 0; i < preLen; i++ {
		b.Nop()
	}
	b.Label("loop")
	for i := 0; i < bodyLen-1-slots; i++ {
		b.Nop()
	}
	b.PBR(isa.CondNE, 1, 0, uint8(slots))
	for i := 0; i < slots; i++ {
		b.Nop()
	}
	b.Halt()
	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	loop, _ := img.Lookup("loop")
	pbrPC := loop + uint32(4*(bodyLen-1-slots))
	return img, loop, pbrPC
}

func memCfg(access, width int, pipelined bool) mem.Config {
	return mem.Config{AccessTime: access, BusWidthBytes: width, Pipelined: pipelined, InstrPriority: true, FPULatency: 4}
}

func newPipeEngine(t *testing.T, img *program.Image, mcfg mem.Config, pcfg PipeConfig, cacheBytes int) (*Pipe, *mem.System) {
	t.Helper()
	sys, err := mem.New(mcfg, img, nil)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := cache.New(cacheBytes, pcfg.LineBytes, 4)
	if err != nil {
		t.Fatal(err)
	}
	pcfg.CacheBytes = cacheBytes
	eng, err := NewPipe(pcfg, arr, img, sys, img.Entry)
	if err != nil {
		t.Fatal(err)
	}
	return eng, sys
}

func newConvEngine(t *testing.T, img *program.Image, mcfg mem.Config, cacheBytes, lineBytes int) (*Conv, *mem.System) {
	t.Helper()
	sys, err := mem.New(mcfg, img, nil)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := cache.New(cacheBytes, lineBytes, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewConv(ConvConfig{CacheBytes: cacheBytes, LineBytes: lineBytes, ChunkBytes: mcfg.BusWidthBytes}, arr, img, sys, img.Entry)
	if err != nil {
		t.Fatal(err)
	}
	return eng, sys
}

func neverTaken(pc uint32, in isa.Inst) (bool, uint32) { return false, 0 }

func checkSequentialTrace(t *testing.T, trace []uint32, n int) {
	t.Helper()
	if len(trace) != n+1 { // n NOPs + HALT
		t.Fatalf("trace length %d, want %d", len(trace), n+1)
	}
	for i, pc := range trace {
		if pc != uint32(4*i) {
			t.Fatalf("trace[%d] = %#x, want %#x", i, pc, 4*i)
		}
	}
}

func TestPipeSequentialSupply(t *testing.T) {
	img := straightLine(t, 40)
	for _, width := range []int{4, 8} {
		eng, sys := newPipeEngine(t, img, memCfg(1, width, false),
			PipeConfig{LineBytes: 16, IQBytes: 16, IQBBytes: 16, TruePrefetch: true}, 128)
		h := newHarness(t, img, eng, sys, neverTaken)
		checkSequentialTrace(t, h.run(2000), 40)
	}
}

func TestPipeSteadyStateRateFromCache(t *testing.T) {
	// Second iteration of a loop that fits in the cache must stream at
	// one instruction per cycle.
	img, loop, _ := loopProgram(t, 2, 12, 4)
	eng, sys := newPipeEngine(t, img, memCfg(6, 8, false),
		PipeConfig{LineBytes: 16, IQBytes: 16, IQBBytes: 16, TruePrefetch: true}, 128)
	iter := 0
	h := newHarness(t, img, eng, sys, func(pc uint32, in isa.Inst) (bool, uint32) {
		iter++
		return iter < 4, loop
	})
	trace := h.run(4000)
	// Find consumption cycles of the loop head in iterations 2..4 by
	// replaying: instead, check total instruction count.
	want := 2 + 4*12 + 1 // prologue + 4 iterations + HALT
	if len(trace) != want {
		t.Fatalf("trace length %d, want %d", len(trace), want)
	}
}

func TestPipeTakenBranchTrace(t *testing.T) {
	img, loop, pbrPC := loopProgram(t, 2, 12, 4)
	eng, sys := newPipeEngine(t, img, memCfg(1, 8, false),
		PipeConfig{LineBytes: 16, IQBytes: 16, IQBBytes: 16, TruePrefetch: true}, 128)
	iter := 0
	h := newHarness(t, img, eng, sys, func(pc uint32, in isa.Inst) (bool, uint32) {
		iter++
		return iter < 3, loop
	})
	trace := h.run(4000)
	// Verify the trace follows loop semantics: after the 4 delay slots
	// past each taken PBR, the next PC is the loop head.
	for i, pc := range trace {
		if pc == pbrPC && i+5 < len(trace) {
			wantNext := loop
			if iterOf(trace[:i+1], pbrPC) >= 3 {
				wantNext = pbrPC + 4*5 // fall-through past slots
			}
			if trace[i+5] != wantNext {
				t.Fatalf("after PBR at index %d: trace[%d] = %#x, want %#x", i, i+5, trace[i+5], wantNext)
			}
		}
	}
	want := 2 + 3*12 + 1
	if len(trace) != want {
		t.Fatalf("trace length %d, want %d", len(trace), want)
	}
}

func iterOf(trace []uint32, pbrPC uint32) int {
	n := 0
	for _, pc := range trace {
		if pc == pbrPC {
			n++
		}
	}
	return n
}

func TestPipeZeroSlotBranchBlocksThenRedirects(t *testing.T) {
	// PBR with 0 delay slots: supply must stall for the resolution
	// latency, then continue at the target.
	b := program.NewBuilder()
	b.Nop()                    // 0
	b.PBR(isa.CondAL, 0, 0, 0) // 4
	b.Nop()                    // 8 (fall-through, must not execute)
	b.Nop()                    // 12
	b.Label("target")          // 16
	b.Halt()                   // 16
	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	eng, sys := newPipeEngine(t, img, memCfg(1, 8, false),
		PipeConfig{LineBytes: 8, IQBytes: 8, IQBBytes: 8, TruePrefetch: true}, 64)
	h := newHarness(t, img, eng, sys, func(pc uint32, in isa.Inst) (bool, uint32) {
		return true, 16
	})
	trace := h.run(1000)
	want := []uint32{0, 4, 16}
	if len(trace) != len(want) {
		t.Fatalf("trace = %#v, want %#v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %#v, want %#v", trace, want)
		}
	}
}

func TestPipeTruePrefetchOffBlocksSpeculativeFetch(t *testing.T) {
	// The loop fits in the cache, so lookahead runs ahead of execution and
	// reaches the (missing, speculative) line past the loop end each
	// iteration while the loop-closing PBR is still queued or unresolved.
	img, loop, _ := loopProgram(t, 2, 12, 2)
	run := func(truePrefetch bool) *stats.Fetch {
		eng, sys := newPipeEngine(t, img, memCfg(6, 8, false),
			PipeConfig{LineBytes: 16, IQBytes: 16, IQBBytes: 16, TruePrefetch: truePrefetch}, 128)
		iter := 0
		h := newHarness(t, img, eng, sys, func(pc uint32, in isa.Inst) (bool, uint32) {
			iter++
			return iter < 6, loop
		})
		h.run(8000)
		return eng.Stats()
	}
	on := run(true)
	off := run(false)
	if off.PrefetchBlocks == 0 {
		t.Error("guaranteed-execution policy never blocked a prefetch")
	}
	if on.PrefetchBlocks != 0 {
		t.Errorf("true prefetch blocked %d times", on.PrefetchBlocks)
	}
}

func TestConvSequentialSupply(t *testing.T) {
	img := straightLine(t, 40)
	for _, width := range []int{4, 8} {
		eng, sys := newConvEngine(t, img, memCfg(1, width, false), 128, 16)
		h := newHarness(t, img, eng, sys, neverTaken)
		checkSequentialTrace(t, h.run(2000), 40)
	}
}

func TestConvLoopTrace(t *testing.T) {
	img, loop, _ := loopProgram(t, 2, 12, 4)
	eng, sys := newConvEngine(t, img, memCfg(1, 4, false), 128, 16)
	iter := 0
	h := newHarness(t, img, eng, sys, func(pc uint32, in isa.Inst) (bool, uint32) {
		iter++
		return iter < 5, loop
	})
	trace := h.run(8000)
	want := 2 + 5*12 + 1
	if len(trace) != want {
		t.Fatalf("trace length %d, want %d", len(trace), want)
	}
}

func TestConvAlwaysPrefetchIssuesPrefetches(t *testing.T) {
	img := straightLine(t, 40)
	eng, sys := newConvEngine(t, img, memCfg(1, 4, false), 128, 16)
	h := newHarness(t, img, eng, sys, neverTaken)
	h.run(2000)
	if eng.Stats().Prefetches == 0 {
		t.Error("always-prefetch issued no prefetches")
	}
}

func TestConvDemandReplacesQueuedPrefetch(t *testing.T) {
	// With slow memory the prefetch queue backs up; on a taken branch the
	// demand fetch must still get through (via cancel or completion).
	img, loop, _ := loopProgram(t, 2, 20, 4)
	eng, sys := newConvEngine(t, img, memCfg(6, 4, false), 256, 16)
	iter := 0
	h := newHarness(t, img, eng, sys, func(pc uint32, in isa.Inst) (bool, uint32) {
		iter++
		return iter < 3, loop
	})
	trace := h.run(20000)
	want := 2 + 3*20 + 1
	if len(trace) != want {
		t.Fatalf("trace length %d, want %d", len(trace), want)
	}
}

// TestEnginesProduceIdenticalTraces verifies both strategies execute the
// same dynamic instruction sequence (performance differs; semantics must
// not).
func TestEnginesProduceIdenticalTraces(t *testing.T) {
	img, loop, _ := loopProgram(t, 3, 14, 3)
	outcome := func() func(pc uint32, in isa.Inst) (bool, uint32) {
		iter := 0
		return func(pc uint32, in isa.Inst) (bool, uint32) {
			iter++
			return iter < 7, loop
		}
	}
	pipeEng, pipeSys := newPipeEngine(t, img, memCfg(6, 4, false),
		PipeConfig{LineBytes: 8, IQBytes: 8, IQBBytes: 8, TruePrefetch: true}, 32)
	pipeTrace := newHarness(t, img, pipeEng, pipeSys, outcome()).run(40000)

	convEng, convSys := newConvEngine(t, img, memCfg(6, 4, false), 32, 8)
	convTrace := newHarness(t, img, convEng, convSys, outcome()).run(40000)

	if len(pipeTrace) != len(convTrace) {
		t.Fatalf("trace lengths differ: pipe %d, conv %d", len(pipeTrace), len(convTrace))
	}
	for i := range pipeTrace {
		if pipeTrace[i] != convTrace[i] {
			t.Fatalf("traces diverge at %d: pipe %#x, conv %#x", i, pipeTrace[i], convTrace[i])
		}
	}
}

// TestPipeFasterThanConvOnSlowMemory is the headline qualitative claim at
// the engine level: with a small cache and slow memory, the PIPE strategy
// finishes the same work in fewer cycles.
func TestPipeFasterThanConvOnSlowMemory(t *testing.T) {
	img, loop, _ := loopProgram(t, 3, 40, 4) // loop too big for a 64-byte cache
	outcome := func() func(pc uint32, in isa.Inst) (bool, uint32) {
		iter := 0
		return func(pc uint32, in isa.Inst) (bool, uint32) {
			iter++
			return iter < 10, loop
		}
	}
	pipeEng, pipeSys := newPipeEngine(t, img, memCfg(6, 8, false),
		PipeConfig{LineBytes: 16, IQBytes: 16, IQBBytes: 16, TruePrefetch: true}, 64)
	hp := newHarness(t, img, pipeEng, pipeSys, outcome())
	hp.run(100000)
	pipeCycles := hp.cycle

	convEng, convSys := newConvEngine(t, img, memCfg(6, 8, false), 64, 16)
	hc := newHarness(t, img, convEng, convSys, outcome())
	hc.run(100000)
	convCycles := hc.cycle

	if pipeCycles >= convCycles {
		t.Errorf("PIPE %d cycles, conventional %d: PIPE should win on slow memory", pipeCycles, convCycles)
	}
}
