package fetch

import (
	"fmt"

	"pipesim/internal/cache"
	"pipesim/internal/isa"
	"pipesim/internal/mem"
	"pipesim/internal/obs"
	"pipesim/internal/program"
	"pipesim/internal/stats"
)

// ConvConfig sizes the conventional cache front end.
type ConvConfig struct {
	CacheBytes int
	LineBytes  int // tag granularity; fills are per 4-byte sub-block
	// ChunkBytes is the size of one off-chip instruction request. Hill's
	// model requests one instruction at a time; a single memory
	// transaction returns one input-bus transfer, so the natural chunk is
	// the bus width (a 4-byte bus returns exactly one instruction).
	ChunkBytes int
}

// Validate reports configuration errors.
func (c ConvConfig) Validate() error {
	if c.ChunkBytes < isa.WordBytes || c.ChunkBytes%isa.WordBytes != 0 {
		return fmt.Errorf("fetch: chunk size %d invalid", c.ChunkBytes)
	}
	if c.ChunkBytes > c.LineBytes {
		return fmt.Errorf("fetch: chunk size %d exceeds line size %d", c.ChunkBytes, c.LineBytes)
	}
	return nil
}

// Conv is the conventional instruction cache with Hill's always-prefetch
// strategy, the strongest prefetching cache in his study and the baseline
// the paper compares against. The cache is direct mapped with one-
// instruction sub-blocks and per-sub-block valid bits. The PC is presented
// every cycle and tag + array lookup complete within the cycle. On every
// reference the next sequential instruction is prefetched, even across a
// line boundary. Only one instruction-side memory request may be
// outstanding, and a new one cannot begin until the previous one finishes;
// demand fetches replace a still-queued prefetch.
type Conv struct {
	cfg   ConvConfig
	cache *cache.Cache
	img   *program.Image
	sys   *mem.System
	st    stats.Fetch
	str   streamer

	outstanding bool
	outDemand   bool
	outChunk    uint32
	outHandle   mem.Handle

	// onChunkWord/onChunkDone are the chunk-fill callbacks, built once at
	// construction: a single request may be outstanding, so the out*
	// fields describe it completely and no per-request closures are
	// needed.
	onChunkWord func(addr uint32, word uint32, seq uint64)
	onChunkDone func(seq uint64)

	// Native format: split-instruction latch (see the PIPE engine); holds
	// a first parcel that a tail-line fill might otherwise evict.
	capAddr  uint32
	capValid bool

	probe  obs.Probe
	flight *obs.FlightRecorder
	intr   *cache.Introspector
}

// SetProbe attaches an observability probe. Call before the first Tick.
func (c *Conv) SetProbe(p obs.Probe) { c.probe = p }

// SetFlightRecorder attaches the post-mortem flight recorder (nil detaches).
func (c *Conv) SetFlightRecorder(r *obs.FlightRecorder) { c.flight = r }

// SetIntrospector attaches the cache-introspection shadow models (nil
// detaches). The engine feeds it every demand reference at its own hit/miss
// accounting sites, so the shadows' per-class counts sum to CacheMisses.
func (c *Conv) SetIntrospector(in *cache.Introspector) { c.intr = in }

// emit sends an event to the flight recorder and, when attached, the probe.
func (c *Conv) emit(kind obs.Kind, addr uint32) {
	c.emitArg(kind, addr, 0)
}

// emitArg is emit with a kind-specific Arg payload (the 3C miss class on
// classified KindCacheMiss events).
func (c *Conv) emitArg(kind obs.Kind, addr, arg uint32) {
	if c.flight != nil {
		c.flight.Record(kind, addr, arg, 0)
	}
	if c.probe != nil {
		c.probe.Event(obs.Event{Kind: kind, Addr: addr, Arg: arg})
	}
}

var _ Engine = (*Conv)(nil)

// NewConv builds a conventional always-prefetch engine starting at pc.
func NewConv(cfg ConvConfig, cacheArr *cache.Cache, img *program.Image, sys *mem.System, pc uint32) (*Conv, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	wantSub := isa.WordBytes
	if img.Native {
		wantSub = isa.ParcelBytes
	}
	if cacheArr.SubBlockBytes() != wantSub {
		return nil, fmt.Errorf("fetch: conventional cache needs %d-byte sub-blocks for this image format", wantSub)
	}
	c := &Conv{cfg: cfg, cache: cacheArr, img: img, sys: sys}
	c.str.reset(pc)
	c.str.varlen = img.Native
	c.onChunkWord = func(addr uint32, _ uint32, _ uint64) {
		c.cache.FillSub(addr)
		if c.img.Native {
			c.cache.FillSub(addr + isa.ParcelBytes)
		}
	}
	c.onChunkDone = func(_ uint64) {
		c.outstanding = false
		if c.outDemand {
			c.emit(obs.KindFetchComplete, c.outChunk)
		} else {
			c.emit(obs.KindPrefetchComplete, c.outChunk)
		}
	}
	return c, nil
}

// Stats returns the engine's counters.
func (c *Conv) Stats() *stats.Fetch { return &c.st }

// DebugState renders the outstanding-request state for deadlock
// diagnostics.
func (c *Conv) DebugState() string {
	return fmt.Sprintf("conv{%s outstanding=%v demand=%v chunk %#05x}",
		c.str.String(), c.outstanding, c.outDemand, c.outChunk)
}

// Head performs this cycle's tag and array lookup for the stream PC. An
// instruction is present only when every one of its sub-blocks is valid
// (one word in the fixed format; one or two parcels in the native format).
func (c *Conv) Head() (uint32, uint32, bool) {
	pc, ok := c.str.pc()
	if !ok {
		return 0, 0, false
	}
	w, n := c.instAt(pc)
	if !c.present(pc, n) {
		return 0, 0, false
	}
	return pc, w, true
}

// present reports whether all nbytes of the instruction at addr are valid
// in the cache or held in the split-instruction latch.
func (c *Conv) present(addr, nbytes uint32) bool {
	step := uint32(c.cache.SubBlockBytes())
	for off := uint32(0); off < nbytes; off += step {
		a := addr + off
		if c.capValid && c.capAddr == a {
			continue
		}
		if !c.cache.Present(a) {
			return false
		}
	}
	return true
}

// Consume advances the stream past the supplied instruction.
func (c *Conv) Consume() {
	pc, ok := c.str.pc()
	if !ok {
		panic("fetch: Consume without a supplied instruction")
	}
	word, n := c.instAt(pc)
	if !c.present(pc, n) {
		panic("fetch: Consume without a supplied instruction")
	}
	c.st.SupplyCycles++
	c.st.CacheHits++
	if c.intr != nil {
		c.intr.Reference(pc, true)
	}
	c.emit(obs.KindCacheHit, pc)
	if c.capValid && c.capAddr == pc {
		c.capValid = false
	}
	c.str.consume(word, n)
}

// Resolve records a PBR outcome. The conventional cache keeps whatever it
// has prefetched — wrong-path sub-blocks simply stay valid.
func (c *Conv) Resolve(taken bool, target uint32) {
	c.str.resolve(taken, target)
	if taken {
		c.st.BranchFlushes++
		c.emit(obs.KindBranchFlush, target)
	}
}

// ResumePC returns the next unconsumed instruction address.
func (c *Conv) ResumePC() uint32 { return c.str.nextPC }

// Redirect abandons the stream and restarts at pc (interrupt entry/return).
// The cache keeps its contents; only the stream state resets.
func (c *Conv) Redirect(pc uint32) {
	if len(c.str.pending) > 0 {
		panic("fetch: Redirect with a pending branch")
	}
	native := c.str.varlen
	c.str.reset(pc)
	c.str.varlen = native
	c.capValid = false
}

// Tick issues at most one off-chip action: a demand fetch for a missing
// stream PC, or the always-prefetch of the next sequential instruction.
func (c *Conv) Tick() {
	if c.str.halted {
		return
	}
	pc, ok := c.str.pc()
	_, n := c.instAt(pc)
	if ok && !c.present(pc, n) {
		// Latch a resident first parcel of a split instruction before
		// demanding its tail, so the tail fill cannot evict it.
		if c.img.Native && n > uint32(c.cache.SubBlockBytes()) &&
			c.cache.Present(pc) && !c.cache.Present(pc+isa.ParcelBytes) {
			c.capAddr = pc
			c.capValid = true
		}
		// Demand the chunk holding the first missing sub-block.
		missing := pc
		step := uint32(c.cache.SubBlockBytes())
		for off := uint32(0); off < n; off += step {
			a := pc + off
			if c.capValid && c.capAddr == a {
				continue
			}
			if !c.cache.Present(a) {
				missing = a
				break
			}
		}
		c.demand(missing)
		return
	}
	// Hit (or blocked on a branch outcome): prefetch the next sequential
	// location. While blocked the sequential fall-through path is the
	// only address the hardware can guess.
	next := pc + n
	if !ok {
		next = c.str.nextPC
	}
	if !c.cache.Present(next) {
		c.prefetch(next)
	}
}

// NextEvent reports whether the next Tick can change state (see
// Engine.NextEvent). It mirrors Tick read-only: presence probes never touch
// the hit/miss counters, and the cancel-and-reissue decision is predicted
// with Handle.Queued instead of the mutating Cancel.
func (c *Conv) NextEvent() uint64 {
	if c.str.halted {
		return mem.NoEvent
	}
	pc, ok := c.str.pc()
	_, n := c.instAt(pc)
	if ok && !c.present(pc, n) {
		// Tick would latch a split first parcel the cycle the latch
		// actually changes.
		if c.img.Native && n > uint32(c.cache.SubBlockBytes()) &&
			c.cache.Present(pc) && !c.cache.Present(pc+isa.ParcelBytes) &&
			!(c.capValid && c.capAddr == pc) {
			return 0
		}
		if !c.outstanding {
			return 0 // demand would issue
		}
		// Mirror demand(): the chunk holding the first missing sub-block.
		missing := pc
		step := uint32(c.cache.SubBlockBytes())
		for off := uint32(0); off < n; off += step {
			a := pc + off
			if c.capValid && c.capAddr == a {
				continue
			}
			if !c.cache.Present(a) {
				missing = a
				break
			}
		}
		chunk := missing &^ uint32(c.cfg.ChunkBytes-1)
		if c.outDemand || c.outChunk == chunk {
			return mem.NoEvent // already on its way
		}
		if c.outHandle.Queued() {
			return 0 // Tick would cancel the queued prefetch and reissue
		}
		return mem.NoEvent // prefetch in service; must finish first
	}
	// Hit (or blocked on a branch outcome): Tick would prefetch the next
	// sequential location iff it is absent and the engine is idle.
	next := pc + n
	if !ok {
		next = c.str.nextPC
	}
	if !c.cache.Present(next) && !c.outstanding {
		return 0
	}
	return mem.NoEvent
}

// demand requests the chunk containing the missing stream PC. A queued
// (not yet accepted) prefetch is canceled in its favour; an accepted one
// must finish first.
func (c *Conv) demand(pc uint32) {
	chunk := pc &^ uint32(c.cfg.ChunkBytes-1)
	if c.outstanding {
		if c.outDemand || c.outChunk == chunk {
			return // already on its way
		}
		if !c.outHandle.Cancel() {
			return // in service; must finish first
		}
		c.outstanding = false
	}
	c.st.CacheMisses++
	c.st.LineFetches++
	class := stats.MissUnclassified
	if c.intr != nil {
		class = c.intr.Reference(pc, false)
	}
	c.emitArg(obs.KindCacheMiss, pc, uint32(class))
	c.issue(chunk, true)
}

// prefetch requests the chunk containing addr if no request is outstanding.
func (c *Conv) prefetch(addr uint32) {
	if c.outstanding {
		return
	}
	chunk := addr &^ uint32(c.cfg.ChunkBytes-1)
	c.st.Prefetches++
	c.issue(chunk, false)
}

func (c *Conv) issue(chunk uint32, demand bool) {
	kind := stats.ReqIPrefetch
	if demand {
		kind = stats.ReqIFetch
	}
	if demand {
		c.emit(obs.KindFetchIssue, chunk)
	} else {
		c.emit(obs.KindPrefetchIssue, chunk)
	}
	c.outstanding = true
	c.outDemand = demand
	c.outChunk = chunk
	r := c.sys.AllocRequest()
	r.Kind = kind
	r.Addr = chunk
	r.Size = c.cfg.ChunkBytes
	r.OnWord = c.onChunkWord
	r.OnComplete = c.onChunkDone
	c.outHandle = c.sys.Submit(r)
}

// instAt returns the instruction and byte length at addr; past the text
// segment it reads as NOP.
func (c *Conv) instAt(addr uint32) (uint32, uint32) {
	if w, n, ok := c.img.InstAt(addr); ok {
		return w, n
	}
	if c.img.Native {
		return 0, isa.ParcelBytes
	}
	return 0, isa.WordBytes
}
