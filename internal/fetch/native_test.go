package fetch

import (
	"testing"

	"pipesim/internal/cache"
	"pipesim/internal/isa"
	"pipesim/internal/mem"
	"pipesim/internal/program"
)

// nativeImage builds a program whose native layout forces two-parcel
// instructions to straddle 8-byte line boundaries: alternating 1-parcel and
// 2-parcel instructions misalign the stream immediately.
func nativeImage(t *testing.T) *program.Image {
	t.Helper()
	b := program.NewBuilder()
	for i := 0; i < 20; i++ {
		b.Nop()                      // 2 bytes
		b.RI(isa.OpADDI, 1, 1, 1000) // 4 bytes (large immediate)
	}
	b.Halt()
	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	nat, err := program.ToNative(img)
	if err != nil {
		t.Fatal(err)
	}
	return nat
}

func newNativePipe(t *testing.T, img *program.Image, mcfg mem.Config, cacheBytes, lineBytes int) (*Pipe, *mem.System) {
	t.Helper()
	sys, err := mem.New(mcfg, img, nil)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := cache.New(cacheBytes, lineBytes, isa.ParcelBytes)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewPipe(PipeConfig{
		CacheBytes: cacheBytes, LineBytes: lineBytes,
		IQBytes: lineBytes, IQBBytes: lineBytes, TruePrefetch: true,
	}, arr, img, sys, img.Entry)
	if err != nil {
		t.Fatal(err)
	}
	return eng, sys
}

// TestNativeStraddleOneLineCache is the adversarial case that motivated the
// split-instruction latch: a one-line cache with straddling instructions
// must still make progress (fetching the tail line evicts the head line).
func TestNativeStraddleOneLineCache(t *testing.T) {
	img := nativeImage(t)
	eng, sys := newNativePipe(t, img, memCfg(6, 8, false), 8, 8) // one 8-byte line
	h := newHarness(t, img, eng, sys, neverTaken)
	trace := h.run(20000)
	if len(trace) != 41 { // 40 instructions + HALT
		t.Fatalf("trace length %d, want 41", len(trace))
	}
	// PCs advance by the variable encoded lengths: 2, 4, 2, 4, ...
	want := uint32(0)
	for i, pc := range trace {
		if pc != want {
			t.Fatalf("trace[%d] = %#x, want %#x", i, pc, want)
		}
		if i%2 == 0 {
			want += 2
		} else {
			want += 4
		}
	}
}

// TestNativeConvStraddle exercises the conventional engine's latch the same
// way.
func TestNativeConvStraddle(t *testing.T) {
	img := nativeImage(t)
	sys, err := mem.New(memCfg(6, 4, false), img, nil)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := cache.New(16, 16, isa.ParcelBytes)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewConv(ConvConfig{CacheBytes: 16, LineBytes: 16, ChunkBytes: 4}, arr, img, sys, img.Entry)
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, img, eng, sys, neverTaken)
	trace := h.run(20000)
	if len(trace) != 41 {
		t.Fatalf("trace length %d, want 41", len(trace))
	}
}

// TestNativeLoopWithBranches runs a native loop and checks the delayed
// drain-time redirect still produces the correct stream.
func TestNativeLoopWithBranches(t *testing.T) {
	b := program.NewBuilder()
	b.LI(5, 4)
	b.SetB(0, "loop", 0)
	b.Label("loop")
	b.Nop()
	b.RI(isa.OpADDI, 1, 1, 900) // two parcels
	b.RI(isa.OpADDI, 5, 5, -1)
	b.PBR(isa.CondNE, 5, 0, 2)
	b.Nop()
	b.RI(isa.OpADDI, 2, 2, 700) // two parcels, straddle-prone
	b.Halt()
	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	nat, err := program.ToNative(img)
	if err != nil {
		t.Fatal(err)
	}
	eng, sys := newNativePipe(t, nat, memCfg(6, 8, false), 16, 8)
	iter := 0
	h := newHarness(t, nat, eng, sys, func(pc uint32, in isa.Inst) (bool, uint32) {
		iter++
		loop, _ := nat.Lookup("loop")
		return iter < 4, loop
	})
	trace := h.run(40000)
	want := 2 + 4*6 + 1 // prologue + 4 iterations of 6 + HALT
	if len(trace) != want {
		t.Fatalf("trace length %d, want %d", len(trace), want)
	}
}
