package fetch

import (
	"fmt"

	"pipesim/internal/cache"
	"pipesim/internal/isa"
	"pipesim/internal/mem"
	"pipesim/internal/obs"
	"pipesim/internal/program"
	"pipesim/internal/queue"
	"pipesim/internal/stats"
)

// TIBConfig sizes the Target Instruction Buffer front end.
type TIBConfig struct {
	// Entries is the number of branch targets the TIB caches.
	Entries int
	// LineBytes is both the number of instruction bytes stored per target
	// and the sequential fetch unit.
	LineBytes int
}

// Validate reports configuration errors.
func (c TIBConfig) Validate() error {
	if c.Entries < 1 {
		return fmt.Errorf("fetch: TIB entries %d must be >= 1", c.Entries)
	}
	if c.LineBytes < isa.WordBytes || c.LineBytes%isa.WordBytes != 0 {
		return fmt.Errorf("fetch: TIB line %d invalid", c.LineBytes)
	}
	return nil
}

// tibEntry caches the first n instructions at one branch target.
type tibEntry struct {
	target uint32
	words  []uint32
	valid  bool
}

// TIB is a Target Instruction Buffer front end (paper §2.1; the approach of
// the AMD29000): there is no instruction cache at all. Sequential
// instructions stream from external memory through a small fetch buffer; a
// fully associative buffer of branch targets supplies the first line of
// instructions after each taken branch while the fetch logic restarts the
// sequential stream past them. The paper cites studies showing a small TIB
// beats a small simple cache but generates large amounts of off-chip
// traffic — which this model reproduces.
type TIB struct {
	cfg TIBConfig
	img *program.Image
	sys *mem.System
	st  stats.Fetch
	str streamer

	buf       *queue.Queue[entry] // sequential fetch buffer
	fetchAddr uint32

	entries []tibEntry
	nextRep int // FIFO replacement cursor

	// An allocation in progress: the first words arriving at allocTarget
	// fill the chosen TIB entry.
	allocActive bool
	allocIdx    int
	allocNext   uint32

	inflight       bool
	inflightFrom   uint32
	inflightIns    bool
	inflightDemand bool

	// onLineWord/onLineDone are the line-fill callbacks, built once at
	// construction (single outstanding request; see the PIPE engine).
	onLineWord func(addr uint32, word uint32, seq uint64)
	onLineDone func(seq uint64)

	probe   obs.Probe
	lastBuf int
	flight  *obs.FlightRecorder
}

// SetProbe attaches an observability probe. Call before the first Tick.
func (t *TIB) SetProbe(p obs.Probe) {
	t.probe = p
	t.lastBuf = -1
}

// SetFlightRecorder attaches the post-mortem flight recorder (nil detaches).
func (t *TIB) SetFlightRecorder(r *obs.FlightRecorder) { t.flight = r }

// SetIntrospector is a no-op: the TIB front end has no shared cache array,
// so the 3C shadow models do not apply to it.
func (t *TIB) SetIntrospector(*cache.Introspector) {}

// emit sends an event to the flight recorder and, when attached, the probe.
func (t *TIB) emit(kind obs.Kind, addr uint32) {
	if t.flight != nil {
		t.flight.Record(kind, addr, 0, 0)
	}
	if t.probe != nil {
		t.probe.Event(obs.Event{Kind: kind, Addr: addr})
	}
}

var _ Engine = (*TIB)(nil)

// NewTIB builds a TIB front end starting at pc.
func NewTIB(cfg TIBConfig, img *program.Image, sys *mem.System, pc uint32) (*TIB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if img.Native {
		return nil, fmt.Errorf("fetch: the TIB front end does not support the native instruction format")
	}
	buf, err := queue.New[entry](2 * cfg.LineBytes / isa.WordBytes)
	if err != nil {
		return nil, fmt.Errorf("fetch: TIB buffer: %w", err)
	}
	t := &TIB{
		cfg:     cfg,
		img:     img,
		sys:     sys,
		buf:     buf,
		entries: make([]tibEntry, cfg.Entries),
	}
	t.str.reset(pc)
	t.fetchAddr = pc
	t.onLineWord = func(addr uint32, _ uint32, _ uint64) {
		w := t.wordAt(addr)
		if t.allocActive && addr == t.allocNext {
			e := &t.entries[t.allocIdx]
			if len(e.words) < cap(e.words) {
				e.words = append(e.words, w)
				t.allocNext += isa.WordBytes
			}
			if len(e.words) == cap(e.words) {
				t.allocActive = false
			}
		}
		if t.inflightIns && !t.buf.Full() {
			t.buf.MustPush(entry{addr: addr, word: w})
		}
	}
	t.onLineDone = func(_ uint64) {
		t.inflight = false
		if t.inflightDemand {
			t.emit(obs.KindFetchComplete, t.inflightFrom)
		} else {
			t.emit(obs.KindPrefetchComplete, t.inflightFrom)
		}
	}
	return t, nil
}

// Stats returns the engine's counters.
func (t *TIB) Stats() *stats.Fetch { return &t.st }

// DebugState renders the fetch-buffer occupancy and allocation state for
// deadlock diagnostics.
func (t *TIB) DebugState() string {
	return fmt.Sprintf("tib{%s buf %d/%d fetchAddr %#05x inflight=%v alloc=%v}",
		t.str.String(), t.buf.Len(), t.buf.Cap(), t.fetchAddr, t.inflight, t.allocActive)
}

// Head reports the next stream instruction if buffered.
func (t *TIB) Head() (uint32, uint32, bool) {
	pc, ok := t.str.pc()
	if !ok {
		return 0, 0, false
	}
	ent, ok := t.buf.Peek()
	if !ok {
		return 0, 0, false
	}
	if ent.addr != pc {
		panic(fmt.Sprintf("fetch: TIB buffer head %#x != stream PC %#x", ent.addr, pc))
	}
	return pc, ent.word, true
}

// Consume pops the buffer head and advances the stream.
func (t *TIB) Consume() {
	ent := t.buf.MustPop()
	t.st.SupplyCycles++
	if t.str.consume(ent.word, isa.WordBytes) {
		t.redirect(t.str.nextPC)
	}
}

// Resolve records a PBR outcome. Unlike the PIPE engine, the TIB front end
// keeps streaming sequentially until the stream itself redirects — it has
// no cache to prefetch targets into; the TIB covers the redirect gap.
func (t *TIB) Resolve(taken bool, target uint32) {
	if t.str.resolve(taken, target) {
		t.redirect(t.str.nextPC)
	}
	if taken {
		t.st.BranchFlushes++
		t.emit(obs.KindBranchFlush, target)
	}
}

// ResumePC returns the next unconsumed instruction address.
func (t *TIB) ResumePC() uint32 { return t.str.nextPC }

// Redirect abandons the stream and restarts at pc (interrupt entry/return).
func (t *TIB) Redirect(pc uint32) {
	if len(t.str.pending) > 0 {
		panic("fetch: Redirect with a pending branch")
	}
	t.str.reset(pc)
	t.redirect(pc)
}

// redirect restarts supply at the branch target: TIB-resident instructions
// are injected into the buffer instantly and the sequential fetch resumes
// past them; on a TIB miss everything restarts at the target and a new
// entry is allocated.
func (t *TIB) redirect(target uint32) {
	t.buf.Clear()
	t.inflightIns = false // wrong-path words must not enter the buffer
	t.allocActive = false
	if idx := t.lookup(target); idx >= 0 {
		t.st.CacheHits++
		t.emit(obs.KindCacheHit, target)
		e := &t.entries[idx]
		for i, w := range e.words {
			t.buf.MustPush(entry{addr: target + uint32(i*isa.WordBytes), word: w})
		}
		t.fetchAddr = target + uint32(len(e.words)*isa.WordBytes)
		return
	}
	t.st.CacheMisses++
	t.emit(obs.KindCacheMiss, target)
	t.fetchAddr = target
	// Allocate a TIB entry for this target (FIFO replacement) and fill it
	// from the arriving stream.
	idx := t.nextRep
	t.nextRep = (t.nextRep + 1) % len(t.entries)
	t.entries[idx] = tibEntry{target: target, words: make([]uint32, 0, t.cfg.LineBytes/isa.WordBytes), valid: true}
	t.allocActive = true
	t.allocIdx = idx
	t.allocNext = target
}

// lookup finds a valid TIB entry for target.
func (t *TIB) lookup(target uint32) int {
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].target == target {
			return i
		}
	}
	return -1
}

// Tick keeps the sequential stream flowing: one outstanding line-sized
// fetch whenever the buffer has room.
func (t *TIB) Tick() {
	if t.probe != nil {
		if n := t.buf.Len(); n != t.lastBuf {
			t.lastBuf = n
			t.probe.Event(obs.Event{Kind: obs.KindQueueDepth, Arg: uint32(obs.QueueTIB), Value: uint64(n)})
		}
	}
	if t.str.halted || t.inflight {
		return
	}
	room := t.buf.Cap() - t.buf.Len()
	lineWords := t.cfg.LineBytes / isa.WordBytes
	if room < lineWords {
		return
	}
	kind := stats.ReqIPrefetch
	demand := t.buf.Empty()
	if demand {
		kind = stats.ReqIFetch
		t.st.LineFetches++
		t.emit(obs.KindFetchIssue, t.fetchAddr)
	} else {
		t.st.Prefetches++
		t.emit(obs.KindPrefetchIssue, t.fetchAddr)
	}
	t.inflight = true
	t.inflightFrom = t.fetchAddr
	t.inflightIns = true
	t.inflightDemand = demand
	from := t.fetchAddr
	t.fetchAddr += uint32(t.cfg.LineBytes)
	r := t.sys.AllocRequest()
	r.Kind = kind
	r.Addr = from
	r.Size = t.cfg.LineBytes
	r.OnWord = t.onLineWord
	r.OnComplete = t.onLineDone
	t.sys.Submit(r)
}

// NextEvent reports whether the next Tick can change state (see
// Engine.NextEvent): the TIB issues a fetch whenever no request is in
// flight and the buffer has a line of room; otherwise it waits for the
// fill callbacks.
func (t *TIB) NextEvent() uint64 {
	if t.str.halted || t.inflight {
		return mem.NoEvent
	}
	if t.buf.Cap()-t.buf.Len() < t.cfg.LineBytes/isa.WordBytes {
		return mem.NoEvent
	}
	return 0
}

// wordAt fetches an instruction word from the program image; addresses past
// the text segment read as NOP (zero).
func (t *TIB) wordAt(addr uint32) uint32 {
	if w, ok := t.img.InstWord(addr); ok {
		return w
	}
	return 0
}
