package fetch

import (
	"testing"

	"pipesim/internal/isa"
)

func word(in isa.Inst) uint32 { return isa.Encode(in) }

func nop() uint32 { return word(isa.Inst{Op: isa.OpNOP}) }

func pbr(n uint8) uint32 {
	return word(isa.Inst{Op: isa.OpPBR, Cond: isa.CondNE, Ra: 1, Bn: 0, N: n})
}

func TestStreamerSequential(t *testing.T) {
	var s streamer
	s.reset(0x100)
	for i := 0; i < 5; i++ {
		pc, ok := s.pc()
		if !ok || pc != uint32(0x100+4*i) {
			t.Fatalf("step %d: pc = %#x, ok=%v", i, pc, ok)
		}
		if s.consume(nop(), 4) {
			t.Fatal("sequential consume reported redirect")
		}
	}
}

func TestStreamerHalt(t *testing.T) {
	var s streamer
	s.reset(0)
	s.consume(word(isa.Inst{Op: isa.OpHALT}), 4)
	if _, ok := s.pc(); ok {
		t.Fatal("stream continued past HALT")
	}
}

func TestStreamerTakenBranchEarlyResolution(t *testing.T) {
	// PBR with 2 delay slots; resolution arrives before the slots drain.
	var s streamer
	s.reset(0x100)
	s.consume(pbr(2), 4) // at 0x100, window ends at 0x10C
	if got, ok := s.oldestUnresolved(); !ok || got != 0x10C {
		t.Fatalf("oldestUnresolved = %#x,%v", got, ok)
	}
	if s.resolve(true, 0x200) {
		t.Fatal("redirect applied before slots drained")
	}
	if s.consume(nop(), 4) { // slot 1 at 0x104
		t.Fatal("redirect during slot 1")
	}
	if !s.consume(nop(), 4) { // slot 2 at 0x108: window drains, jump
		t.Fatal("no redirect after last slot")
	}
	if pc, ok := s.pc(); !ok || pc != 0x200 {
		t.Fatalf("pc after redirect = %#x,%v", pc, ok)
	}
	if _, unresolved := s.oldestUnresolved(); unresolved {
		t.Fatal("window still pending after redirect")
	}
}

func TestStreamerNotTakenContinuesSequential(t *testing.T) {
	var s streamer
	s.reset(0)
	s.consume(pbr(1), 4) // at 0
	s.resolve(false, 0x500)
	s.consume(nop(), 4) // slot at 4
	if pc, ok := s.pc(); !ok || pc != 8 {
		t.Fatalf("pc = %#x,%v; want 8 (fall through)", pc, ok)
	}
}

func TestStreamerBlocksOnLateResolution(t *testing.T) {
	var s streamer
	s.reset(0)
	s.consume(pbr(0), 4) // window ends immediately at 4
	if _, ok := s.pc(); ok {
		t.Fatal("stream not blocked awaiting resolution")
	}
	if !s.resolve(true, 0x40) {
		t.Fatal("late taken resolution did not redirect")
	}
	if pc, ok := s.pc(); !ok || pc != 0x40 {
		t.Fatalf("pc = %#x,%v", pc, ok)
	}
}

func TestStreamerLateNotTakenUnblocks(t *testing.T) {
	var s streamer
	s.reset(0)
	s.consume(pbr(0), 4)
	if s.resolve(false, 0x40) {
		t.Fatal("not-taken resolution redirected")
	}
	if pc, ok := s.pc(); !ok || pc != 4 {
		t.Fatalf("pc = %#x,%v; want 4", pc, ok)
	}
}

func TestStreamerSevenSlots(t *testing.T) {
	var s streamer
	s.reset(0)
	s.consume(pbr(7), 4)
	s.resolve(true, 0x80)
	for i := 0; i < 6; i++ {
		if s.consume(nop(), 4) {
			t.Fatalf("redirect during slot %d", i+1)
		}
	}
	if !s.consume(nop(), 4) {
		t.Fatal("no redirect after 7th slot")
	}
	if pc, _ := s.pc(); pc != 0x80 {
		t.Fatalf("pc = %#x", pc)
	}
}

func TestStreamerConsumeWhileBlockedPanics(t *testing.T) {
	var s streamer
	s.reset(0)
	s.consume(pbr(0), 4)
	defer func() {
		if recover() == nil {
			t.Fatal("consume while blocked did not panic")
		}
	}()
	s.consume(nop(), 4)
}

func TestStreamerResolveWithoutPendingPanics(t *testing.T) {
	var s streamer
	s.reset(0)
	defer func() {
		if recover() == nil {
			t.Fatal("resolve without pending did not panic")
		}
	}()
	s.resolve(true, 0)
}

func TestStreamerNestedWindowsSequential(t *testing.T) {
	// A second PBR inside the first's delay slots, both not taken:
	// everything stays sequential and both windows clear.
	var s streamer
	s.reset(0)
	s.consume(pbr(2), 4)    // window A ends at 0x0C
	s.consume(pbr(1), 4)    // slot A1; window B ends at 0x0C too
	s.resolve(false, 0x100) // A
	s.resolve(false, 0x200) // B
	s.consume(nop(), 4)     // fills A2 and B1
	if pc, ok := s.pc(); !ok || pc != 0x0C {
		t.Fatalf("pc = %#x,%v; want 0x0C", pc, ok)
	}
	if len(s.pending) != 0 {
		t.Fatalf("pending = %d, want 0", len(s.pending))
	}
}

func TestStreamerBackToBackLoops(t *testing.T) {
	// Emulate a 4-instruction loop executed 3 times: PBR at 0, slots at
	// 4,8, target 0.
	var s streamer
	s.reset(0)
	for iter := 0; iter < 3; iter++ {
		if pc, _ := s.pc(); pc != 0 {
			t.Fatalf("iter %d starts at %#x", iter, pc)
		}
		s.consume(pbr(2), 4)
		taken := iter < 2
		s.resolve(taken, 0)
		s.consume(nop(), 4)
		s.consume(nop(), 4)
	}
	if pc, ok := s.pc(); !ok || pc != 0x0C {
		t.Fatalf("final pc = %#x,%v; want 0x0C", pc, ok)
	}
}
