// Package fetch implements the instruction-supply strategies compared in
// the paper:
//
//   - Pipe: the paper's contribution — a small direct-mapped instruction
//     cache plus an Instruction Queue (IQ) and Instruction Queue Buffer
//     (IQB) with branch (PBR) lookahead and off-chip prefetch.
//   - Conv: the strongest conventional baseline — Hill's sub-blocked
//     always-prefetch cache.
//   - TIB: a Target Instruction Buffer front end (paper §2.1, AMD29000
//     style), provided as an extension baseline.
//
// All engines implement Engine and present the same protocol to the CPU:
// Head/Consume deliver the dynamic instruction stream, Resolve reports PBR
// outcomes from the execute stage, and Tick advances the engine one cycle
// (issuing off-chip requests through the shared memory system).
package fetch

import (
	"fmt"

	"pipesim/internal/cache"
	"pipesim/internal/isa"
	"pipesim/internal/obs"
	"pipesim/internal/stats"
)

// Engine is the instruction-supply interface the CPU front end consumes.
type Engine interface {
	// Head returns the next instruction of the dynamic stream, if the
	// engine can supply it this cycle.
	Head() (pc uint32, word uint32, ok bool)
	// Consume removes the instruction returned by Head. Call at most once
	// per cycle, only after Head reported ok.
	Consume()
	// Resolve delivers the outcome of the oldest unresolved PBR (called
	// by the CPU from the execute stage).
	Resolve(taken bool, target uint32)
	// Tick advances internal state by one cycle and may issue memory
	// requests. Call after the CPU's cycle work.
	Tick()
	// NextEvent reports whether the next Tick can change machine state:
	// 0 when it can (the core must keep stepping cycle by cycle), or
	// mem.NoEvent when the engine is provably idle — its state cannot
	// change until one of its memory callbacks (line-fill word or
	// completion) or CPU calls (Consume, Resolve, Redirect) mutates it.
	// The classification mirrors Tick exactly but is strictly read-only:
	// it never touches the hit/miss counters or emits events, so calling
	// it any number of times leaves results bit-identical. The core's
	// skip-ahead machinery uses it to jump over quiescent stall spans.
	NextEvent() uint64
	// Redirect abandons the current stream and restarts supply at pc.
	// Used for interrupt entry and return; the caller guarantees no PBR
	// is pending (the pipeline has drained).
	Redirect(pc uint32)
	// ResumePC returns the address of the next unconsumed instruction
	// (the interrupt resume point).
	ResumePC() uint32
	// Stats returns the engine's activity counters.
	Stats() *stats.Fetch
	// SetProbe attaches an observability probe receiving the engine's
	// typed events (cache hits/misses, fetch and prefetch issue/complete,
	// blocked prefetches, branch flushes, queue occupancy). Call before
	// the first Tick; a nil probe disables emission.
	SetProbe(p obs.Probe)
	// SetFlightRecorder attaches the always-on post-mortem event ring (a
	// concrete type, not a Probe: the recorder must stay cheap enough to
	// leave enabled on every run). Call before the first Tick; nil
	// detaches. Engines record their cache, fetch/prefetch and flush
	// events; queue-occupancy samples are deliberately excluded (too
	// frequent to be worth their ring slots).
	SetFlightRecorder(r *obs.FlightRecorder)
	// SetIntrospector attaches the cache-introspection shadow models (a
	// concrete type, like the flight recorder: the classification call
	// rides the engine's own hit/miss accounting sites, so the per-class
	// counts sum exactly to the Stats CacheMisses counter). Call before the
	// first Tick; nil detaches. Engines without a cache array (TIB) ignore
	// the call.
	SetIntrospector(in *cache.Introspector)
	// DebugState renders the engine's occupancy and cursor state in one
	// line, for deadlock and machine-check diagnostics.
	DebugState() string
}

// pendingBranch tracks one PBR between its consumption and the moment the
// stream passes its last delay slot with a known outcome.
type pendingBranch struct {
	redirectAt uint32 // first PC past the delay-slot window
	slotsLeft  int    // delay-slot instructions still to consume
	resolved   bool
	taken      bool
	target     uint32
}

// streamer computes the dynamic instruction stream: it tracks the next PC
// to supply, the delay-slot windows of consumed PBR instructions, and
// whether supply is blocked waiting for a branch outcome. Both fetch
// engines embed one; it is the part of the paper's "I-Fetch control logic"
// that is common to every strategy.
type streamer struct {
	nextPC  uint32
	pending []pendingBranch
	blocked bool // nextPC unknown: oldest window exhausted, PBR unresolved
	halted  bool // a HALT was consumed; the stream has ended
	// varlen marks a native-format stream: instruction lengths vary, so a
	// PBR's window-end address is unknowable when it is consumed; the
	// stored redirectAt is then the conservative end of the PBR itself.
	varlen bool
}

func (s *streamer) reset(pc uint32) {
	s.nextPC = pc
	s.pending = s.pending[:0]
	s.blocked = false
	s.halted = false
}

// pc returns the next PC to supply; ok is false while the stream is blocked
// on an unresolved branch or has halted.
func (s *streamer) pc() (uint32, bool) {
	return s.nextPC, !s.blocked && !s.halted
}

// oldestUnresolved returns the redirect point of the oldest unresolved PBR
// window, if any. Instructions at addresses below it on the sequential path
// are guaranteed to execute; anything at or past it is speculative. The
// PIPE engine uses this for the paper's off-chip fetch guarantee.
func (s *streamer) oldestUnresolved() (uint32, bool) {
	for _, p := range s.pending {
		if !p.resolved {
			return p.redirectAt, true
		}
	}
	return 0, false
}

// consume advances the stream past the instruction word at nextPC, whose
// encoded length is nbytes, and returns the engine-visible consequences:
// redirected reports that nextPC jumped to a branch target (stale
// sequential words must be flushed).
func (s *streamer) consume(word uint32, nbytes uint32) (redirected bool) {
	pc := s.nextPC
	if s.blocked || s.halted {
		panic("fetch: consume while stream blocked or halted")
	}
	if isa.Opcode(word>>24) == isa.OpHALT {
		s.halted = true
		return false
	}
	// Every consumed instruction — including a nested PBR — fills one
	// delay slot of each open window.
	for i := range s.pending {
		if s.pending[i].slotsLeft > 0 {
			s.pending[i].slotsLeft--
		}
	}
	if isa.WordIsBranch(word) {
		n := int(isa.WordDelaySlots(word))
		redirectAt := pc + isa.WordBytes*uint32(n+1)
		if s.varlen {
			redirectAt = pc + nbytes // conservative: window end unknown
		}
		s.pending = append(s.pending, pendingBranch{
			redirectAt: redirectAt,
			slotsLeft:  n,
		})
	}
	s.nextPC = pc + nbytes
	return s.settle()
}

// resolve records the outcome of the oldest unresolved PBR.
func (s *streamer) resolve(taken bool, target uint32) (redirected bool) {
	for i := range s.pending {
		if !s.pending[i].resolved {
			s.pending[i].resolved = true
			s.pending[i].taken = taken
			s.pending[i].target = target
			return s.settle()
		}
	}
	panic("fetch: resolve with no unresolved branch")
}

// settle applies exhausted, resolved branch windows to nextPC and updates
// the blocked state. It reports whether nextPC was redirected to a branch
// target.
func (s *streamer) settle() (redirected bool) {
	s.blocked = false
	for len(s.pending) > 0 {
		p := s.pending[0]
		if p.slotsLeft > 0 {
			break // still delivering delay slots
		}
		if !p.resolved {
			s.blocked = true // window exhausted, outcome unknown
			break
		}
		s.pending = s.pending[1:]
		if p.taken {
			s.nextPC = p.target
			redirected = true
			// Windows opened by PBRs inside the delay slots continue
			// counting in the target stream; nothing else to adjust.
		}
	}
	return redirected
}

func (s *streamer) String() string {
	return fmt.Sprintf("streamer{pc=%#x blocked=%v halted=%v pending=%d}", s.nextPC, s.blocked, s.halted, len(s.pending))
}
