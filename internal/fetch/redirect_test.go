package fetch

import (
	"strings"
	"testing"

	"pipesim/internal/isa"
)

// TestRedirectRestartsSupply: after Redirect, every engine supplies the
// stream from the new address and ResumePC tracks the next instruction.
func TestRedirectRestartsSupply(t *testing.T) {
	img := straightLine(t, 20)
	build := func(kind string) (Engine, *harness) {
		switch kind {
		case "pipe":
			eng, sys := newPipeEngine(t, img, memCfg(1, 8, false),
				PipeConfig{LineBytes: 16, IQBytes: 16, IQBBytes: 16, TruePrefetch: true}, 128)
			return eng, newHarness(t, img, eng, sys, neverTaken)
		case "conv":
			eng, sys := newConvEngine(t, img, memCfg(1, 8, false), 128, 16)
			return eng, newHarness(t, img, eng, sys, neverTaken)
		default:
			eng, sys := newTIBEngine(t, img, memCfg(1, 8, false), 2, 16)
			return eng, newHarness(t, img, eng, sys, neverTaken)
		}
	}
	for _, kind := range []string{"pipe", "conv", "tib"} {
		eng, h := build(kind)
		// Run a few cycles, consume some instructions.
		for h.cycle = 1; h.cycle <= 30; h.cycle++ {
			h.sys.BeginCycle(h.cycle)
			eng.Tick()
			if _, _, ok := eng.Head(); ok && len(h.trace) < 5 {
				eng.Consume()
				h.trace = append(h.trace, 0)
			}
			h.sys.EndCycle()
		}
		if got := eng.ResumePC(); got != 5*4 {
			t.Fatalf("%s: ResumePC = %#x after 5 consumes, want %#x", kind, got, 5*4)
		}
		// Redirect back to the start and verify supply resumes there.
		eng.Redirect(0)
		if got := eng.ResumePC(); got != 0 {
			t.Fatalf("%s: ResumePC after Redirect = %#x", kind, got)
		}
		var first uint32 = 0xFFFFFFFF
		for ; h.cycle <= 200; h.cycle++ {
			h.sys.BeginCycle(h.cycle)
			eng.Tick()
			if pc, _, ok := eng.Head(); ok {
				first = pc
				break
			}
			h.sys.EndCycle()
		}
		if first != 0 {
			t.Fatalf("%s: supply after Redirect starts at %#x, want 0", kind, first)
		}
	}
}

// TestRedirectWithPendingBranchPanics: the caller contract requires a
// drained pipeline; a pending PBR must be caught loudly.
func TestRedirectWithPendingBranchPanics(t *testing.T) {
	img, _, _ := loopProgram(t, 2, 12, 4)
	eng, sys := newPipeEngine(t, img, memCfg(1, 8, false),
		PipeConfig{LineBytes: 16, IQBytes: 16, IQBBytes: 16, TruePrefetch: true}, 128)
	h := newHarness(t, img, eng, sys, neverTaken)
	// Consume up to and including the PBR, without resolving it.
	consumed := 0
	for h.cycle = 1; h.cycle <= 200 && consumed < 15; h.cycle++ {
		h.sys.BeginCycle(h.cycle)
		eng.Tick()
		if _, w, ok := eng.Head(); ok {
			eng.Consume()
			consumed++
			if isa.WordIsBranch(w) {
				break
			}
		}
		h.sys.EndCycle()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Redirect with a pending branch did not panic")
		}
	}()
	eng.Redirect(0)
}

func TestConfigValidateErrors(t *testing.T) {
	badPipe := []PipeConfig{
		{IQBytes: 2, IQBBytes: 16, LineBytes: 16},  // IQ too small
		{IQBytes: 16, IQBBytes: 8, LineBytes: 16},  // IQB < line
		{IQBytes: 15, IQBBytes: 16, LineBytes: 16}, // not word multiple
		{IQBytes: 16, IQBBytes: 18, LineBytes: 16}, // IQB not word multiple
	}
	for _, c := range badPipe {
		if err := c.Validate(); err == nil {
			t.Errorf("PipeConfig %+v accepted", c)
		}
	}
	badConv := []ConvConfig{
		{ChunkBytes: 2, LineBytes: 16},  // chunk too small
		{ChunkBytes: 6, LineBytes: 16},  // not word multiple
		{ChunkBytes: 32, LineBytes: 16}, // chunk > line
	}
	for _, c := range badConv {
		if err := c.Validate(); err == nil {
			t.Errorf("ConvConfig %+v accepted", c)
		}
	}
}

func TestStreamerString(t *testing.T) {
	var s streamer
	s.reset(0x40)
	out := s.String()
	for _, want := range []string{"0x40", "blocked=false", "pending=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
}
