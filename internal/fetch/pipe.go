package fetch

import (
	"fmt"

	"pipesim/internal/cache"
	"pipesim/internal/isa"
	"pipesim/internal/mem"
	"pipesim/internal/obs"
	"pipesim/internal/program"
	"pipesim/internal/queue"
	"pipesim/internal/stats"
)

// PipeConfig sizes the PIPE instruction-fetch hardware. The paper's Table
// II configurations are (line, IQ, IQB) = (8,8,8), (16,16,16), (32,16,32)
// and (32,32,32) bytes.
type PipeConfig struct {
	CacheBytes int // total cache capacity
	LineBytes  int // cache line size; also the off-chip fetch unit
	IQBytes    int // Instruction Queue capacity
	IQBBytes   int // Instruction Queue Buffer capacity (>= LineBytes)
	// TruePrefetch permits off-chip prefetch of lines that are not yet
	// guaranteed to contain an executed instruction. All results presented
	// in the paper enable it; disabling it reproduces the original PIPE
	// chip policy, which the paper reports as a performance penalty.
	TruePrefetch bool
	// DeepPrefetch lets the engine refill the IQB whenever a whole line
	// of space is free rather than only when it is empty, so an IQB
	// larger than one line holds multiple lines of lookahead. The paper's
	// design refills only an empty IQB; this is a beyond-paper extension.
	DeepPrefetch bool
}

// Validate reports configuration errors.
func (c PipeConfig) Validate() error {
	if c.IQBytes < isa.WordBytes {
		return fmt.Errorf("fetch: IQ size %d too small", c.IQBytes)
	}
	if c.IQBBytes < c.LineBytes {
		return fmt.Errorf("fetch: IQB size %d smaller than line size %d", c.IQBBytes, c.LineBytes)
	}
	if c.IQBytes%isa.WordBytes != 0 || c.IQBBytes%isa.WordBytes != 0 {
		return fmt.Errorf("fetch: IQ/IQB sizes must be multiples of %d bytes", isa.WordBytes)
	}
	return nil
}

// entry is one queued instruction with its address and encoded byte length
// (always 4 in the fixed format; 2 or 4 in the native parcel format).
type entry struct {
	addr   uint32
	word   uint32
	nbytes uint32
}

// redirect records a resolved taken branch whose delay-slot window has not
// been fully fetched yet: once sequential fetch reaches From, it continues
// at To.
type redirect struct {
	from, to uint32
}

// Pipe is the paper's instruction-fetch strategy: a small direct-mapped
// instruction cache backed by the IQ and IQB. The IQ, when not empty,
// contains only instructions guaranteed to execute; the IQB holds the next
// chunk of the (possibly speculative) stream. The control logic scans for
// PBR instructions as words are consumed, stops inserting wrong-path words
// the moment a taken branch resolves, and redirects off-chip fetch to the
// branch target.
type Pipe struct {
	cfg   PipeConfig
	cache *cache.Cache
	img   *program.Image
	sys   *mem.System
	st    stats.Fetch
	str   streamer

	iq  *queue.Queue[entry]
	iqb *queue.Queue[entry]

	fetchAddr uint32     // next stream address not yet queued or in flight
	redirects []redirect // future fetch-path redirects, oldest first

	inflight       bool
	inflightLine   uint32 // line-aligned address of the in-flight request
	inflightFrom   uint32 // first address whose word enters the IQB
	inflightInsert bool   // false once a taken branch killed the insert
	inflightDemand bool   // accepted at demand (vs prefetch) priority
	inflightHandle mem.Handle

	// onLineWord/onLineDone are the line-fill callbacks, built once at
	// construction: the single-outstanding-request discipline means the
	// inflight* fields fully describe the request being serviced, so no
	// per-request closure captures are needed.
	onLineWord func(addr uint32, word uint32, seq uint64)
	onLineDone func(seq uint64)

	// Native format: a two-parcel instruction can straddle a line
	// boundary; with a tiny cache, fetching the second line may evict the
	// first. The hardware holds the already-seen first parcel in a latch,
	// modeled by capAddr/capValid.
	capAddr  uint32
	capValid bool

	// probe, when set, observes fetch events; lastIQ/lastIQB track the
	// last-emitted queue occupancies so depth events fire only on change.
	probe   obs.Probe
	lastIQ  int
	lastIQB int

	// flight is the always-on post-mortem ring (concrete type, see
	// Engine.SetFlightRecorder).
	flight *obs.FlightRecorder

	// intr, when set, is the cache-introspection shadow model fed at the
	// engine's hit/miss accounting sites (see Engine.SetIntrospector).
	intr *cache.Introspector
}

// SetProbe attaches an observability probe. Call before the first Tick.
func (p *Pipe) SetProbe(pr obs.Probe) {
	p.probe = pr
	p.lastIQ, p.lastIQB = -1, -1
}

// SetFlightRecorder attaches the post-mortem flight recorder (nil detaches).
func (p *Pipe) SetFlightRecorder(r *obs.FlightRecorder) { p.flight = r }

// SetIntrospector attaches the cache-introspection shadow models (nil
// detaches). References ride the same accounting sites as the CacheHits /
// CacheMisses counters, so the shadows' per-class totals sum to CacheMisses.
func (p *Pipe) SetIntrospector(in *cache.Introspector) { p.intr = in }

// emit sends an event to the flight recorder and, when attached, the probe.
func (p *Pipe) emit(kind obs.Kind, addr uint32) {
	p.emitArg(kind, addr, 0)
}

// emitArg is emit with a kind-specific Arg payload (the 3C miss class on
// classified KindCacheMiss events).
func (p *Pipe) emitArg(kind obs.Kind, addr, arg uint32) {
	if p.flight != nil {
		p.flight.Record(kind, addr, arg, 0)
	}
	if p.probe != nil {
		p.probe.Event(obs.Event{Kind: kind, Addr: addr, Arg: arg})
	}
}

var _ Engine = (*Pipe)(nil)

// NewPipe builds a PIPE fetch engine starting at entry pc.
func NewPipe(cfg PipeConfig, cacheArr *cache.Cache, img *program.Image, sys *mem.System, pc uint32) (*Pipe, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cacheArr.LineBytes() != cfg.LineBytes {
		return nil, fmt.Errorf("fetch: cache line %d != config line %d", cacheArr.LineBytes(), cfg.LineBytes)
	}
	iq, err := queue.New[entry](cfg.IQBytes / isa.WordBytes)
	if err != nil {
		return nil, fmt.Errorf("fetch: IQ: %w", err)
	}
	iqb, err := queue.New[entry](cfg.IQBBytes / isa.WordBytes)
	if err != nil {
		return nil, fmt.Errorf("fetch: IQB: %w", err)
	}
	p := &Pipe{
		cfg:   cfg,
		cache: cacheArr,
		img:   img,
		sys:   sys,
		iq:    iq,
		iqb:   iqb,
	}
	p.str.reset(pc)
	p.str.varlen = img.Native
	p.fetchAddr = pc
	p.onLineWord = func(addr uint32, _ uint32, _ uint64) {
		if p.img.Native {
			p.cache.FillSub(addr)
			p.cache.FillSub(addr + isa.ParcelBytes)
			p.drainNative()
			return
		}
		p.cache.FillSub(addr)
		if !p.inflightInsert || addr < p.inflightFrom {
			return
		}
		if stop, ok := p.stopAt(); ok && addr >= stop {
			return
		}
		if p.iqb.Full() {
			panic("fetch: IQB overflow during line fill")
		}
		p.iqb.MustPush(entry{addr: addr, word: p.wordAt(addr), nbytes: isa.WordBytes})
	}
	p.onLineDone = func(_ uint64) {
		if p.inflightInsert && !p.img.Native {
			p.advanceFetch(p.inflightLine + uint32(p.cfg.LineBytes))
		}
		p.inflight = false
		p.inflightInsert = false
		if p.inflightDemand {
			p.emit(obs.KindFetchComplete, p.inflightLine)
		} else {
			p.emit(obs.KindPrefetchComplete, p.inflightLine)
		}
	}
	return p, nil
}

// Stats returns the engine's counters.
func (p *Pipe) Stats() *stats.Fetch { return &p.st }

// DebugState renders the IQ/IQB occupancy and fetch cursor state for
// deadlock diagnostics.
func (p *Pipe) DebugState() string {
	return fmt.Sprintf("pipe{%s iq %d/%d iqb %d/%d fetchAddr %#05x inflight=%v(line %#05x insert=%v) redirects %d}",
		p.str.String(), p.iq.Len(), p.iq.Cap(), p.iqb.Len(), p.iqb.Cap(),
		p.fetchAddr, p.inflight, p.inflightLine, p.inflightInsert, len(p.redirects))
}

// Head reports the instruction at the head of the IQ when it matches the
// next PC of the dynamic stream.
func (p *Pipe) Head() (uint32, uint32, bool) {
	pc, ok := p.str.pc()
	if !ok {
		return 0, 0, false
	}
	ent, ok := p.iq.Peek()
	if !ok {
		return 0, 0, false
	}
	if ent.addr != pc {
		panic(fmt.Sprintf("fetch: IQ head %#x does not match stream PC %#x", ent.addr, pc))
	}
	return pc, ent.word, true
}

// Consume pops the IQ head and advances the stream.
func (p *Pipe) Consume() {
	ent := p.iq.MustPop()
	p.st.SupplyCycles++
	if p.str.consume(ent.word, ent.nbytes) {
		// The stream jumped to a branch target. In the fixed format the
		// fetch path redirected when the branch resolved, so only stale
		// words need flushing; in the native format window-end addresses
		// are unknowable early, so the whole fetch path resynchronizes
		// here.
		if p.img.Native {
			p.resyncFetch(p.str.nextPC)
		} else {
			p.flushWrongPath(p.str.nextPC)
		}
	}
}

// Resolve is called from the CPU's execute stage with the oldest PBR's
// outcome.
func (p *Pipe) Resolve(taken bool, target uint32) {
	// Identify the window being resolved before telling the streamer.
	redirectAt, ok := p.str.oldestUnresolved()
	if !ok {
		panic("fetch: Resolve without pending branch")
	}
	redirected := p.str.resolve(taken, target)
	if !taken {
		return
	}
	p.st.BranchFlushes++
	p.emit(obs.KindBranchFlush, target)
	if p.img.Native {
		// Window-end addresses are unknowable in the variable-length
		// format, so the early trim is skipped: the fetch path keeps
		// running sequentially and resynchronizes when the stream
		// reaches the window end (Consume) — the extra complication the
		// paper attributes to the two-parcel format, modeled as slightly
		// later redirects.
		if redirected {
			p.resyncFetch(target)
		}
		return
	}
	// Drop queued wrong-path words (addresses at or past the window end).
	p.trimQueue(p.iq, redirectAt)
	p.trimQueue(p.iqb, redirectAt)
	// Kill the in-flight insert if it is fetching past the window.
	if p.inflight && p.inflightInsert && p.inflightFrom >= redirectAt {
		p.inflightInsert = false
		if p.inflightHandle.Cancel() {
			p.inflight = false
		}
	}
	if p.fetchAddr >= redirectAt {
		// Everything in the window is already queued; fetch the target
		// stream next.
		p.fetchAddr = target
		p.redirects = p.redirects[:0]
	} else {
		// Delay slots remain to be fetched; remember to jump afterwards.
		p.redirects = append(p.redirects, redirect{from: redirectAt, to: target})
	}
	if redirected {
		// The stream was blocked past the window; nextPC is now the
		// target and the queues must restart there.
		p.flushWrongPath(target)
	}
}

// flushWrongPath clears queued words that do not belong to the stream
// resuming at pc.
func (p *Pipe) flushWrongPath(pc uint32) {
	if ent, ok := p.iq.Peek(); ok && ent.addr != pc {
		p.iq.Clear()
	}
	if p.iq.Empty() {
		if ent, ok := p.iqb.Peek(); ok && ent.addr != pc {
			p.iqb.Clear()
		}
	}
}

// trimQueue removes queued entries at or past limit. Entries are contiguous
// ascending addresses, so one full rotation keeps the survivors in FIFO
// order without allocating.
func (p *Pipe) trimQueue(q *queue.Queue[entry], limit uint32) {
	for n := q.Len(); n > 0; n-- {
		e := q.MustPop()
		if e.addr < limit {
			q.MustPush(e)
		}
	}
}

// resyncFetch restarts the fetch path at the branch target (native format):
// wrong-path queue entries are flushed, any in-flight insert is killed, and
// sequential fetch resumes after whatever correct-path entries remain.
func (p *Pipe) resyncFetch(target uint32) {
	p.capValid = false
	p.flushWrongPath(target)
	p.redirects = p.redirects[:0]
	if p.inflight && p.inflightInsert {
		p.inflightInsert = false
		if p.inflightHandle.Cancel() {
			p.inflight = false
		}
	}
	// Resume fetching after the last queued correct-path entry.
	next := target
	if n := p.iqb.Len(); n > 0 {
		tail, _ := p.iqb.At(n - 1)
		next = tail.addr + tail.nbytes
	} else if n := p.iq.Len(); n > 0 {
		tail, _ := p.iq.At(n - 1)
		next = tail.addr + tail.nbytes
	}
	p.fetchAddr = next
}

// ResumePC returns the next unconsumed instruction address.
func (p *Pipe) ResumePC() uint32 { return p.str.nextPC }

// Redirect abandons the stream and restarts at pc (interrupt entry/return).
func (p *Pipe) Redirect(pc uint32) {
	if len(p.str.pending) > 0 {
		panic("fetch: Redirect with a pending branch")
	}
	p.str.reset(pc)
	p.str.varlen = p.img.Native
	p.iq.Clear()
	p.iqb.Clear()
	p.redirects = p.redirects[:0]
	p.capValid = false
	if p.inflight && p.inflightInsert {
		p.inflightInsert = false
		if p.inflightHandle.Cancel() {
			p.inflight = false
		}
	}
	p.fetchAddr = pc
}

// stopAt returns the first address sequential fetch must not queue past
// (the window end of the oldest pending taken redirect).
func (p *Pipe) stopAt() (uint32, bool) {
	if len(p.redirects) > 0 {
		return p.redirects[0].from, true
	}
	return 0, false
}

// advanceFetch moves fetchAddr to next, applying any redirect reached.
func (p *Pipe) advanceFetch(next uint32) {
	p.fetchAddr = next
	for len(p.redirects) > 0 && p.fetchAddr >= p.redirects[0].from {
		p.fetchAddr = p.redirects[0].to
		p.redirects = p.redirects[1:]
	}
}

// Tick advances the fetch engine one cycle: move words from the IQB to an
// empty IQ, fill an empty IQB from the cache, and issue at most one
// off-chip request when the cache misses.
func (p *Pipe) Tick() {
	if p.str.halted {
		return
	}
	p.fillIQBFromCache()
	p.refillIQ()
	if p.probe != nil {
		p.sampleQueues()
	}
}

// NextEvent reports whether the next Tick can change state (see
// Engine.NextEvent): 0 when the IQB fill or IQ refill would act, mem.NoEvent
// when both are provably no-ops until a line-fill callback or CPU call
// arrives. Read-only: presence probes use LinePresent/Present, never the
// counting LookupLine/Lookup.
func (p *Pipe) NextEvent() uint64 {
	if p.str.halted {
		return mem.NoEvent
	}
	if p.fillActive() || p.refillActive() {
		return 0
	}
	return mem.NoEvent
}

// fillActive mirrors fillIQBFromCache read-only: would it mutate anything?
func (p *Pipe) fillActive() bool {
	if p.cfg.DeepPrefetch {
		if p.iqb.Cap()-p.iqb.Len() < p.cfg.LineBytes/isa.WordBytes {
			return false
		}
	} else if !p.iqb.Empty() {
		return false
	}
	if p.inflight && p.inflightInsert {
		return false
	}
	if p.img.Native {
		return p.fillNativeActive()
	}
	lineAddr := p.cache.LineAddr(p.fetchAddr)
	if p.inflight && p.inflightLine == lineAddr {
		return false
	}
	if p.cache.LinePresent(p.fetchAddr) {
		return true // a hit would queue words and advance the cursor
	}
	// Miss: requestLine either issues a request or counts a blocked
	// prefetch — both mutate state every cycle. Only an already
	// outstanding request makes the whole path a pure no-op.
	return !p.inflight
}

// fillNativeActive mirrors fillNative read-only.
func (p *Pipe) fillNativeActive() bool {
	if p.iqb.Full() {
		return false
	}
	_, n := p.instAt(p.fetchAddr)
	if p.parcelsPresent(p.fetchAddr, n) {
		return true // drainNative would insert
	}
	// drainNative's split-instruction latch: active only the cycle it
	// would actually change (setting it again is idempotent).
	if n > isa.ParcelBytes && p.cache.Present(p.fetchAddr) && !p.cache.Present(p.fetchAddr+isa.ParcelBytes) &&
		!(p.capValid && p.capAddr == p.fetchAddr) {
		return true
	}
	return !p.inflight // as in fillNative: requestLine, or wait for the fill
}

// refillActive mirrors refillIQ read-only.
func (p *Pipe) refillActive() bool {
	if !p.iq.Empty() || p.iqb.Empty() {
		return false
	}
	pc, ok := p.str.pc()
	if !ok {
		return false
	}
	head, _ := p.iqb.Peek()
	return head.addr == pc
}

// sampleQueues emits occupancy events for queues whose depth changed since
// the last sample.
func (p *Pipe) sampleQueues() {
	if n := p.iq.Len(); n != p.lastIQ {
		p.lastIQ = n
		p.probe.Event(obs.Event{Kind: obs.KindQueueDepth, Arg: uint32(obs.QueueIQ), Value: uint64(n)})
	}
	if n := p.iqb.Len(); n != p.lastIQB {
		p.lastIQB = n
		p.probe.Event(obs.Event{Kind: obs.KindQueueDepth, Arg: uint32(obs.QueueIQB), Value: uint64(n)})
	}
}

// refillIQ moves words from the IQB into an empty IQ ("when the IQ becomes
// empty, an attempt is made to fill it with the data contained in the
// IQB").
func (p *Pipe) refillIQ() {
	if !p.iq.Empty() || p.iqb.Empty() {
		return
	}
	pc, ok := p.str.pc()
	if !ok {
		return // blocked on a branch outcome; IQB may hold wrong-path data
	}
	head, _ := p.iqb.Peek()
	if head.addr != pc {
		// The IQB holds data for a different stream point (e.g. a branch
		// target arriving while the IQ drained); it is not valid for the
		// IQ yet.
		return
	}
	for !p.iq.Full() && !p.iqb.Empty() {
		p.iq.MustPush(p.iqb.MustPop())
	}
}

// fillIQBFromCache keeps the IQB supplied: when it is empty (or, with
// DeepPrefetch, whenever a full line of space is free) and no insert is in
// flight, look up the line containing fetchAddr in the on-chip cache; on a
// hit queue its words, on a miss go off-chip.
func (p *Pipe) fillIQBFromCache() {
	if p.cfg.DeepPrefetch {
		if p.iqb.Cap()-p.iqb.Len() < p.cfg.LineBytes/isa.WordBytes {
			return
		}
	} else if !p.iqb.Empty() {
		return
	}
	if p.inflight && p.inflightInsert {
		return // words are already streaming into the IQB
	}
	if p.img.Native {
		p.fillNative()
		return
	}
	lineAddr := p.cache.LineAddr(p.fetchAddr)
	if p.inflight && p.inflightLine == lineAddr {
		return // that very line is on its way
	}
	if p.cache.LookupLine(p.fetchAddr) {
		p.st.CacheHits++
		if p.intr != nil {
			p.intr.Reference(p.fetchAddr, true)
		}
		p.emit(obs.KindCacheHit, p.fetchAddr)
		stop, hasStop := p.stopAt()
		lineEnd := lineAddr + uint32(p.cfg.LineBytes)
		for a := p.fetchAddr; a < lineEnd; a += isa.WordBytes {
			if hasStop && a >= stop {
				break
			}
			p.iqb.MustPush(entry{addr: a, word: p.wordAt(a), nbytes: isa.WordBytes})
		}
		p.advanceFetch(lineEnd)
		return
	}
	p.requestLine(lineAddr)
}

// requestLine issues an off-chip fetch for the full line at lineAddr,
// inserting words from fetchAddr onward into the IQB as they arrive.
func (p *Pipe) requestLine(lineAddr uint32) {
	if p.inflight {
		return // single outstanding instruction-side request
	}
	// Demand means decode is (about to be) starved for this very address;
	// anything else is lookahead and competes at prefetch priority.
	pc, streamOK := p.str.pc()
	demand := streamOK && p.iq.Empty() && p.iqb.Empty() && p.fetchAddr == pc
	if !demand && !p.cfg.TruePrefetch {
		// Original PIPE chip policy: only fetch a line guaranteed to
		// contain at least one instruction that will execute. The control
		// logic scans the IQ (and IQB) for PBR words; the guaranteed
		// sequential path ends at the first unresolved branch's window
		// end.
		if limit, bounded := p.guaranteeEnd(); bounded && p.fetchAddr >= limit {
			p.st.PrefetchBlocks++
			p.emit(obs.KindPrefetchBlocked, p.fetchAddr)
			return
		}
	}
	p.st.CacheMisses++
	class := stats.MissUnclassified
	if p.intr != nil {
		class = p.intr.Reference(p.fetchAddr, false)
	}
	p.emitArg(obs.KindCacheMiss, p.fetchAddr, uint32(class))
	kind := stats.ReqIPrefetch
	if demand {
		kind = stats.ReqIFetch
		p.st.LineFetches++
		p.emit(obs.KindFetchIssue, lineAddr)
	} else {
		p.st.Prefetches++
		p.emit(obs.KindPrefetchIssue, lineAddr)
	}
	p.inflight = true
	p.inflightLine = lineAddr
	p.inflightFrom = p.fetchAddr
	p.inflightInsert = true
	p.inflightDemand = demand
	r := p.sys.AllocRequest()
	r.Kind = kind
	r.Addr = lineAddr
	r.Size = p.cfg.LineBytes
	r.OnWord = p.onLineWord
	r.OnComplete = p.onLineDone
	p.inflightHandle = p.sys.Submit(r)
}

// instAt returns the instruction and its byte length at addr in this
// image's format; past the text segment it reads as NOP.
func (p *Pipe) instAt(addr uint32) (uint32, uint32) {
	if w, n, ok := p.img.InstAt(addr); ok {
		return w, n
	}
	if p.img.Native {
		return 0, isa.ParcelBytes
	}
	return 0, isa.WordBytes
}

// parcelsPresent reports whether every parcel of the instruction at addr is
// valid in the cache or held in the split-instruction latch.
func (p *Pipe) parcelsPresent(addr, nbytes uint32) bool {
	for off := uint32(0); off < nbytes; off += isa.ParcelBytes {
		a := addr + off
		if p.capValid && p.capAddr == a {
			continue
		}
		if !p.cache.Present(a) {
			return false
		}
	}
	return true
}

// drainNative moves cache-resident instructions at fetchAddr into the IQB
// (native format). It returns whether it inserted anything. At most one
// line's worth of bytes moves per call, matching the single cache port.
func (p *Pipe) drainNative() bool {
	inserted := false
	budget := p.cfg.LineBytes
	for budget > 0 {
		if p.iqb.Full() {
			break
		}
		w, n := p.instAt(p.fetchAddr)
		if !p.parcelsPresent(p.fetchAddr, n) {
			// Latch the first parcel of a split instruction while it is
			// resident, so fetching its tail line cannot lose it.
			if n > isa.ParcelBytes && p.cache.Present(p.fetchAddr) && !p.cache.Present(p.fetchAddr+isa.ParcelBytes) {
				p.capAddr = p.fetchAddr
				p.capValid = true
			}
			break
		}
		p.iqb.MustPush(entry{addr: p.fetchAddr, word: w, nbytes: n})
		if p.capValid && p.capAddr == p.fetchAddr {
			p.capValid = false
		}
		p.fetchAddr += n
		budget -= int(n)
		inserted = true
	}
	return inserted
}

// fillNative keeps the IQB supplied in the native format: insert whatever
// is cache-resident at the fetch cursor; otherwise request the line holding
// the first missing parcel.
func (p *Pipe) fillNative() {
	start := p.fetchAddr
	if p.drainNative() {
		p.st.CacheHits++
		if p.intr != nil {
			p.intr.Reference(start, true)
		}
		p.emit(obs.KindCacheHit, start)
		return
	}
	if p.iqb.Full() {
		return
	}
	// Find the first missing parcel of the instruction at the cursor
	// (the split-instruction latch counts as present).
	_, n := p.instAt(p.fetchAddr)
	missing := p.fetchAddr
	for off := uint32(0); off < n; off += isa.ParcelBytes {
		a := p.fetchAddr + off
		if p.capValid && p.capAddr == a {
			continue
		}
		if !p.cache.Present(a) {
			missing = a
			break
		}
	}
	lineAddr := p.cache.LineAddr(missing)
	if p.inflight {
		return // single outstanding instruction-side request
	}
	p.requestLine(lineAddr)
}

// guaranteeEnd returns the first sequential address past the point where
// execution is guaranteed to reach, mirroring the paper's control logic:
//
//   - for a PBR that has been issued but not resolved ("a PBR instruction
//     in execution"), the hardware knows its delay-slot count, so the
//     guaranteed region extends to the end of its window;
//   - a PBR still sitting in the IQ or IQB merely flags that a branch is
//     coming — the scan uses a single opcode bit, so nothing past the
//     branch word itself is guaranteed until it issues.
//
// With no branch in sight the sequential path is unbounded.
func (p *Pipe) guaranteeEnd() (uint32, bool) {
	if redirectAt, unresolved := p.str.oldestUnresolved(); unresolved {
		return redirectAt, true
	}
	for _, q := range [...]*queue.Queue[entry]{p.iq, p.iqb} {
		for i := 0; i < q.Len(); i++ {
			e, _ := q.At(i)
			if isa.WordIsBranch(e.word) {
				return e.addr + isa.WordBytes, true
			}
		}
	}
	return 0, false
}

// wordAt fetches an instruction word from the program image; addresses past
// the text segment read as NOP (zero), matching the zero-filled memory.
func (p *Pipe) wordAt(addr uint32) uint32 {
	if w, ok := p.img.InstWord(addr); ok {
		return w
	}
	return 0
}
