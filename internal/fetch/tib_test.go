package fetch

import (
	"testing"

	"pipesim/internal/isa"
	"pipesim/internal/mem"
	"pipesim/internal/program"
)

func newTIBEngine(t *testing.T, img *program.Image, mcfg mem.Config, entries, lineBytes int) (*TIB, *mem.System) {
	t.Helper()
	sys, err := mem.New(mcfg, img, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewTIB(TIBConfig{Entries: entries, LineBytes: lineBytes}, img, sys, img.Entry)
	if err != nil {
		t.Fatal(err)
	}
	return eng, sys
}

func TestTIBConfigValidate(t *testing.T) {
	bad := []TIBConfig{
		{Entries: 0, LineBytes: 16},
		{Entries: 4, LineBytes: 0},
		{Entries: 4, LineBytes: 6},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", c)
		}
	}
	if err := (TIBConfig{Entries: 1, LineBytes: 4}).Validate(); err != nil {
		t.Errorf("minimal config rejected: %v", err)
	}
}

func TestTIBSequentialSupply(t *testing.T) {
	img := straightLine(t, 30)
	eng, sys := newTIBEngine(t, img, memCfg(1, 8, false), 4, 16)
	h := newHarness(t, img, eng, sys, neverTaken)
	checkSequentialTrace(t, h.run(2000), 30)
}

func TestTIBLoopTraceAndHitsOnSecondIteration(t *testing.T) {
	img, loop, _ := loopProgram(t, 2, 12, 4)
	eng, sys := newTIBEngine(t, img, memCfg(6, 8, false), 4, 16)
	iter := 0
	h := newHarness(t, img, eng, sys, func(pc uint32, in isa.Inst) (bool, uint32) {
		iter++
		return iter < 5, loop
	})
	trace := h.run(20000)
	want := 2 + 5*12 + 1
	if len(trace) != want {
		t.Fatalf("trace length %d, want %d", len(trace), want)
	}
	st := eng.Stats()
	// First taken branch misses the TIB (allocation), the remaining three
	// hit the cached target line.
	if st.CacheMisses == 0 {
		t.Error("no TIB allocation recorded")
	}
	if st.CacheHits < 3 {
		t.Errorf("TIB hits = %d, want >= 3 (target cached after first iteration)", st.CacheHits)
	}
}

func TestTIBCapacityEviction(t *testing.T) {
	// Two alternating targets with a 1-entry TIB: every redirect misses
	// after the other target evicted it.
	b := program.NewBuilder()
	b.Nop() // 0
	b.Label("top")
	b.PBR(isa.CondAL, 0, 0, 1) // always taken, alternating target
	b.Nop()
	b.Nop()
	b.Label("a") // target A
	b.PBR(isa.CondAL, 0, 0, 1)
	b.Nop()
	b.Nop()
	b.Label("bb") // target B
	b.PBR(isa.CondNE, 1, 0, 1)
	b.Nop()
	b.Halt()
	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	aAddr, _ := img.Lookup("a")
	bAddr, _ := img.Lookup("bb")
	// Script: top -> a -> bb (then halt).
	targets := []uint32{aAddr, bAddr, 0}
	i := 0
	outcome := func(pc uint32, in isa.Inst) (bool, uint32) {
		tgt := targets[i]
		i++
		return tgt != 0, tgt
	}
	eng, sys := newTIBEngine(t, img, memCfg(1, 8, false), 1, 8)
	h := newHarness(t, img, eng, sys, outcome)
	h.run(4000)
	if eng.Stats().CacheMisses < 2 {
		t.Errorf("misses = %d; distinct targets must each allocate", eng.Stats().CacheMisses)
	}
}

func TestTIBGeneratesHeavyTraffic(t *testing.T) {
	// The paper warns a TIB "implies large amounts of off-chip accessing":
	// compare instruction-side requests against a PIPE cache on the same
	// looping workload.
	img, loop, _ := loopProgram(t, 2, 12, 4)
	outcome := func() func(pc uint32, in isa.Inst) (bool, uint32) {
		iter := 0
		return func(pc uint32, in isa.Inst) (bool, uint32) {
			iter++
			return iter < 20, loop
		}
	}
	tibEng, tibSys := newTIBEngine(t, img, memCfg(1, 8, false), 4, 16)
	newHarness(t, img, tibEng, tibSys, outcome()).run(20000)

	pipeEng, pipeSys := newPipeEngine(t, img, memCfg(1, 8, false),
		PipeConfig{LineBytes: 16, IQBytes: 16, IQBBytes: 16, TruePrefetch: true}, 128)
	newHarness(t, img, pipeEng, pipeSys, outcome()).run(20000)

	tibReqs := tibEng.Stats().LineFetches + tibEng.Stats().Prefetches
	pipeReqs := pipeEng.Stats().LineFetches + pipeEng.Stats().Prefetches
	if tibReqs <= 2*pipeReqs {
		t.Errorf("TIB issued %d requests vs PIPE %d; expected far more off-chip traffic", tibReqs, pipeReqs)
	}
}

func TestTIBHaltStopsFetching(t *testing.T) {
	img := straightLine(t, 4)
	eng, sys := newTIBEngine(t, img, memCfg(1, 8, false), 2, 8)
	h := newHarness(t, img, eng, sys, neverTaken)
	h.run(1000)
	before := eng.Stats().LineFetches + eng.Stats().Prefetches
	for c := h.cycle; c < h.cycle+50; c++ {
		sys.BeginCycle(c)
		eng.Tick()
		sys.EndCycle()
	}
	after := eng.Stats().LineFetches + eng.Stats().Prefetches
	if after != before {
		t.Errorf("TIB kept fetching after HALT: %d -> %d", before, after)
	}
}
