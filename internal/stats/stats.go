// Package stats defines the counters collected during simulation. Counters
// live here, in a leaf package, so that the memory system, fetch engines and
// CPU can all record into one shared structure without import cycles.
package stats

import "fmt"

// ReqKind classifies off-chip memory traffic for arbitration accounting.
type ReqKind int

// Request kinds, in the order used for reporting.
const (
	ReqDataLoad  ReqKind = iota // CPU load (LAQ head)
	ReqDataStore                // CPU store (SAQ+SDQ pair), incl. FPU operand stores
	ReqFPUResult                // floating-point result return transfer
	ReqIFetch                   // instruction demand fetch
	ReqIPrefetch                // instruction prefetch
	NumReqKinds
)

var reqKindNames = [...]string{"data-load", "data-store", "fpu-result", "ifetch", "iprefetch"}

// String returns a short name for the request kind.
func (k ReqKind) String() string {
	if k >= 0 && int(k) < len(reqKindNames) {
		return reqKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Mem counts memory-system activity.
type Mem struct {
	Accepted       [NumReqKinds]uint64 // requests accepted by the interface
	WordsDelivered uint64              // 32-bit words returned on the input bus
	InputBusCycles uint64              // cycles the input bus carried data
	StoreWords     uint64              // words written to memory or the FPU
	FPUOps         uint64              // floating-point operations started
}

// Fetch counts instruction-supply activity for one fetch engine.
type Fetch struct {
	CacheHits      uint64 // lookups satisfied by the on-chip cache
	CacheMisses    uint64 // lookups that went (or wanted to go) off-chip
	LineFetches    uint64 // demand line/word fetches issued off-chip
	Prefetches     uint64 // prefetch requests issued off-chip
	PrefetchBlocks uint64 // prefetches blocked by the execution guarantee
	SupplyCycles   uint64 // cycles an instruction was handed to decode
	StarvedCycles  uint64 // cycles decode wanted an instruction and got none
	BranchFlushes  uint64 // taken branches that discarded queued words
}

// CycleBucket classifies one simulated cycle by what the issue stage did,
// for exact cycle attribution: the CPU assigns every cycle of a run to
// exactly one bucket, so the buckets always sum to the run's total cycle
// count (the invariant the observability layer is built on).
type CycleBucket int

// Attribution buckets. The issue stage is the arbiter: a cycle in which an
// instruction issues is CycleIssue regardless of what the memory system or
// fetch engine were doing at the same time.
const (
	CycleIssue        CycleBucket = iota // an instruction moved from issue to execute
	CycleFetchStarved                    // nothing to issue: instruction supply empty
	CycleLDQWait                         // issue blocked reading an empty Load Data Queue
	CycleQueueFull                       // issue blocked on a full LAQ/SAQ/SDQ
	CycleDrain                           // post-HALT cycles draining memory traffic
	CycleOther                           // interrupt-entry drain, front-end halt bubbles, execution faults
	NumCycleBuckets
)

var cycleBucketNames = [...]string{
	"issue", "fetch-starved", "ldq-wait", "queue-full", "drain", "other",
}

// String returns a short name for the bucket.
func (b CycleBucket) String() string {
	if b >= 0 && int(b) < len(cycleBucketNames) {
		return cycleBucketNames[b]
	}
	return fmt.Sprintf("bucket(%d)", int(b))
}

// CPU counts pipeline activity.
type CPU struct {
	Instructions    uint64 // retired instructions (includes NOPs and HALT)
	Branches        uint64 // retired PBR instructions
	TakenBranches   uint64
	Loads           uint64 // LD instructions retired
	Stores          uint64 // ST instructions retired
	StallLDQEmpty   uint64 // issue stalls waiting on the load data queue
	StallQueueFull  uint64 // issue stalls on a full LAQ/SAQ/SDQ/LDQ reservation
	StallFetchEmpty uint64 // cycles issue had no instruction to consider
	DCacheHits      uint64 // loads served by the optional on-chip data cache
	DCacheMisses    uint64 // loads that went to the bus despite the data cache

	// CycleBuckets is the exact cycle attribution: every simulated cycle
	// is classified into exactly one bucket, so the entries sum to the
	// run's total cycle count.
	CycleBuckets [NumCycleBuckets]uint64
}

// MissClass classifies one instruction-cache miss per the standard 3C
// model (Hill): compulsory misses would occur even in an infinite cache,
// capacity misses would occur even in a fully-associative LRU cache of the
// same size, and the remainder are conflicts of the direct-mapped mapping.
// MissUnclassified marks events recorded while introspection was off (and
// is the zero Arg of every pre-introspection KindCacheMiss event).
type MissClass uint8

// Miss classes, in reporting order.
const (
	MissUnclassified MissClass = iota
	MissCompulsory
	MissCapacity
	MissConflict
	NumMissClasses
)

var missClassNames = [...]string{"unclassified", "compulsory", "capacity", "conflict"}

// String returns the class's lower-case name.
func (m MissClass) String() string {
	if int(m) < len(missClassNames) {
		return missClassNames[m]
	}
	return fmt.Sprintf("class(%d)", int(m))
}

// CacheSetStats is the introspection heatmap entry for one cache set
// (frame) of the direct-mapped array.
type CacheSetStats struct {
	Accesses      uint64 `json:"accesses"`       // demand references that indexed this set
	Misses        uint64 `json:"misses"`         // references that went off chip
	Evictions     uint64 `json:"evictions"`      // resident lines displaced by a different tag
	DeadEvictions uint64 `json:"dead_evictions"` // evicted lines never referenced after their fill
}

// CacheHotPC is one entry of the hot miss-PC table: a fetch address ranked
// by how many cache misses it caused.
type CacheHotPC struct {
	PC     uint32 `json:"pc"`
	Misses uint64 `json:"misses"`
}

// CacheStats is the cache-introspection block: the 3C classification of
// every miss, the per-set heatmap, eviction/dead-line totals and the hot
// miss PCs. Collected only when core.Config.CacheIntrospect is on; the
// per-class counts sum exactly to the fetch engine's CacheMisses counter.
type CacheStats struct {
	Compulsory    uint64          `json:"compulsory"`
	Capacity      uint64          `json:"capacity"`
	Conflict      uint64          `json:"conflict"`
	Evictions     uint64          `json:"evictions"`
	DeadEvictions uint64          `json:"dead_evictions"`
	Sets          []CacheSetStats `json:"sets"`
	HotPCs        []CacheHotPC    `json:"hot_pcs,omitempty"`
}

// Misses sums the three miss classes.
func (c *CacheStats) Misses() uint64 { return c.Compulsory + c.Capacity + c.Conflict }

// Sim aggregates everything measured in one run.
type Sim struct {
	Cycles uint64 // total cycles to run the program to completion (the
	// paper's performance metric)
	Mem   Mem
	Fetch Fetch
	CPU   CPU

	// Cache holds the cache-introspection block when the run collected it
	// (core.Config.CacheIntrospect); nil otherwise. The snapshot is
	// immutable after the run, so sharing the pointer across stats.Sim
	// copies (the run cache stores values) is safe.
	Cache *CacheStats
}

// CPI returns cycles per instruction, or 0 before any instruction retires.
func (s *Sim) CPI() float64 {
	if s.CPU.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.CPU.Instructions)
}
