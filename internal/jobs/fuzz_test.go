package jobs

import (
	"bytes"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzJobCheckpoint feeds arbitrary bytes to the checkpoint reader: no
// input may crash it or make it return an error (corruption is recovered
// from, not fatal), and every record it does return must carry the
// identity fields recovery depends on. When the input happens to be a
// valid checkpoint, re-appending the parsed records must read back the
// same point set (round trip).
func FuzzJobCheckpoint(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"point":"conv/128","key":"` + strings.Repeat("ab", 32) + `","cycles":42,"valid":true,"elapsed_s":0.1,"attempts":1}` + "\n"))
	f.Add([]byte(`{"point":"a","key":"k","cycles":1,"valid":true}` + "\n" + `{"point":"b","key":`))
	f.Add([]byte(`{"cycles":1}` + "\n"))
	f.Add([]byte(`not json at all`))
	f.Add([]byte("{\"point\":\"x\",\"key\":\"y\"}\n\x00\xff\xfe\n"))

	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.ckpt.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		recs, err := ReadCheckpoint(path, log)
		if err != nil {
			t.Fatalf("ReadCheckpoint must recover, not fail: %v", err)
		}
		for _, r := range recs {
			if r.Point == "" || r.Key == "" {
				t.Fatalf("record without identity escaped the reader: %+v", r)
			}
		}

		// Round trip: appending what we parsed must parse back to the
		// same identities in the same order.
		rt := filepath.Join(dir, "rt.ckpt.jsonl")
		ck, err := OpenCheckpoint(rt)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := ck.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		ck.Close()
		got, err := ReadCheckpoint(rt, log)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(recs) {
			t.Fatalf("round trip: %d records in, %d out", len(recs), len(got))
		}
		for i := range recs {
			if got[i].Point != recs[i].Point || got[i].Key != recs[i].Key ||
				got[i].Cycles != recs[i].Cycles || got[i].Valid != recs[i].Valid ||
				!bytes.Equal(got[i].Series, recs[i].Series) {
				t.Fatalf("round trip record %d: %+v != %+v", i, got[i], recs[i])
			}
		}
	})
}
