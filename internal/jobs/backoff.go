package jobs

import (
	"context"
	"math/rand"
	"time"
)

// BackoffPolicy schedules retries of failed experiment points:
// exponential growth from Base, capped at Cap, with equal jitter (the
// delay for attempt n is drawn uniformly from [d/2, d) where
// d = min(Cap, Base<<n)) so a burst of transient failures does not retry
// in lockstep. The zero value selects the defaults.
type BackoffPolicy struct {
	Base time.Duration // first retry delay (default 100ms)
	Cap  time.Duration // upper bound on any delay (default 5s)
}

// Backoff defaults.
const (
	DefaultBackoffBase = 100 * time.Millisecond
	DefaultBackoffCap  = 5 * time.Second
)

// withDefaults resolves zero fields.
func (p BackoffPolicy) withDefaults() BackoffPolicy {
	if p.Base <= 0 {
		p.Base = DefaultBackoffBase
	}
	if p.Cap <= 0 {
		p.Cap = DefaultBackoffCap
	}
	if p.Cap < p.Base {
		p.Cap = p.Base
	}
	return p
}

// Delay returns the jittered delay before retry attempt n (0-based: the
// delay between the first failure and the second try). rng may be nil for
// the global source; tests pass a seeded one for determinism. The result
// is always in [Base/2, Cap).
func (p BackoffPolicy) Delay(attempt int, rng *rand.Rand) time.Duration {
	p = p.withDefaults()
	d := p.Cap
	// Base<<attempt overflows past 62 shifts; the cap is reached long
	// before that for any sane policy, so saturate instead of shifting.
	if attempt < 62 {
		if shifted := p.Base << uint(attempt); shifted > 0 && shifted < p.Cap {
			d = shifted
		}
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	var j time.Duration
	if rng != nil {
		j = time.Duration(rng.Int63n(int64(half)))
	} else {
		j = time.Duration(rand.Int63n(int64(half)))
	}
	return half + j
}

// sleepCtx waits d or until the context is cancelled, returning the
// context's error in the latter case. A non-positive d returns nil
// immediately (still honoring an already-cancelled context).
func sleepCtx(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
