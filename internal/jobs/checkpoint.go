// Checkpoint files make sweep jobs durable: every completed experiment
// point is appended to a per-job JSONL file as soon as it finishes, keyed
// by the runcache sha256 content hash of the machine it simulated. A
// daemon (or CLI sweep) that dies mid-job replays the file on restart and
// re-simulates only the missing points. Appends are single-write plus
// fsync, so a crash can at worst truncate the final record — which the
// reader detects and discards rather than failing the whole recovery.
package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"sync"

	"pipesim/internal/sweep"
)

// CheckpointSchema identifies the checkpoint record layout. Bump it when
// a field changes meaning, so stale files are ignored instead of
// misread.
const CheckpointSchema = "pipesim-job-ckpt/v1"

// PointResult is one completed experiment point: the unit of checkpoint
// durability and of the job API's partial results. Key, Cycles, Valid,
// Attr and Series are deterministic for a given machine (the soak test
// asserts an interrupted-and-resumed job reproduces them bit-identically);
// ElapsedS, Attempts and FromCheckpoint describe how this process obtained
// the result and are excluded from that comparison.
type PointResult struct {
	// Point is the job-scoped point ID ("conv/128", "exp:fig5b").
	Point string `json:"point"`
	// Key is the sha256 content hash identifying the simulated machine
	// (runcache.Key hex for grid points; a derived content hash for
	// catalog experiments).
	Key string `json:"key"`
	// Cycles is the point's total simulated cycle count (summed over
	// series for catalog experiments).
	Cycles uint64 `json:"cycles"`
	// Valid is false for cells the figures leave blank (cache smaller
	// than the line size); such points are recorded without simulating.
	Valid bool `json:"valid"`
	// Attr is the point's exact cycle attribution, when it carried
	// statistics.
	Attr *sweep.BucketTotals `json:"attr,omitempty"`
	// Series is the compact replayable result (sweep.CompactJSON) for
	// catalog-experiment points, so a resumed CLI sweep can still print
	// its tables.
	Series json.RawMessage `json:"series,omitempty"`
	// ElapsedS is the wall-clock seconds this attempt took.
	ElapsedS float64 `json:"elapsed_s"`
	// Attempts is how many tries the point needed (1 = first try).
	Attempts int `json:"attempts"`
	// FromCheckpoint marks a result replayed from disk rather than
	// simulated by this process.
	FromCheckpoint bool `json:"from_checkpoint,omitempty"`
	// Seq is the point's index in the job's outcome log (events.go),
	// persisted so a restarted manager rebinds the same SSE event IDs to
	// the same points — the anchor for Last-Event-ID resume across
	// crashes. Zero in records written before the event layer existed.
	Seq int `json:"seq,omitempty"`
}

// Checkpoint is an append-only JSONL file of completed point results.
// Append is safe for concurrent use: parallel point workers checkpoint
// each result the moment it completes.
type Checkpoint struct {
	path string
	mu   sync.Mutex
	f    *os.File
}

// OpenCheckpoint opens (creating if needed) the checkpoint file for
// appending.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: opening checkpoint: %w", err)
	}
	return &Checkpoint{path: path, f: f}, nil
}

// Append durably records one completed point: a single write of the JSON
// line followed by fsync, so the record either exists completely or (after
// a crash mid-write) is a trailing fragment ReadCheckpoint discards.
func (c *Checkpoint) Append(r PointResult) error {
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("jobs: encoding checkpoint record: %w", err)
	}
	b = append(b, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.f.Write(b); err != nil {
		return fmt.Errorf("jobs: appending checkpoint record: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("jobs: syncing checkpoint: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (c *Checkpoint) Close() error { return c.f.Close() }

// ReadCheckpoint replays a checkpoint file. A missing file is an empty
// checkpoint. A truncated or corrupt record — a crash mid-append — is
// discarded with a logged warning instead of failing the whole recovery:
// the worst case is re-simulating the one point whose record was lost.
// Records missing their identity key are likewise dropped.
func ReadCheckpoint(path string, log *slog.Logger) ([]PointResult, error) {
	if log == nil {
		log = slog.Default()
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("jobs: reading checkpoint: %w", err)
	}
	var out []PointResult
	lines := bytes.Split(data, []byte{'\n'})
	for i, line := range lines {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var r PointResult
		if err := json.Unmarshal(line, &r); err != nil {
			log.Warn("discarding corrupt checkpoint record (crash mid-write?)",
				"path", path, "line", i+1, "err", err)
			continue
		}
		if r.Key == "" || r.Point == "" {
			log.Warn("discarding checkpoint record without identity",
				"path", path, "line", i+1)
			continue
		}
		out = append(out, r)
	}
	return out, nil
}
