// Package jobs is the durable sweep-job subsystem behind the daemon's
// POST /v1/jobs API and the experiments CLI's -resume flag. A job expands
// a declarative spec into experiment points, executes them on the
// fault-isolated sweep runner with per-point retry and exponential
// backoff, and appends every completed point to a per-job JSONL
// checkpoint keyed by the runcache content hash — so a daemon crash or
// drain loses at most the points in flight, and a restarted manager
// resumes exactly the missing ones. Admission is bounded: a full queue
// sheds load (HTTP 429) before the hot loop starves.
package jobs

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sort"
	"time"

	"pipesim/internal/core"
	"pipesim/internal/program"
	"pipesim/internal/runcache"
	"pipesim/internal/sweep"
)

// State is a job's position in its lifecycle:
//
//	queued → running → done | failed | cancelled
//	            ↑
//	       recovering   (a restarted daemon found the job interrupted)
//
// done means every point succeeded; failed means the job finished but
// some points exhausted their retry budget (the results of the points
// that did succeed are still served — fail partial, not total).
type State string

// Job lifecycle states.
const (
	StateQueued     State = "queued"
	StateRunning    State = "running"
	StateRecovering State = "recovering"
	StateDone       State = "done"
	StateFailed     State = "failed"
	StateCancelled  State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// valid reports whether s is a known state (manifests are read back from
// disk, where anything may sit).
func (s State) valid() bool {
	switch s {
	case StateQueued, StateRunning, StateRecovering, StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Spec declares a job's work: catalog experiments, a figure-style grid,
// or both. The zero value is invalid — at least one source of points is
// required.
type Spec struct {
	// Experiments lists sweep catalog experiment IDs; each is one point.
	Experiments []string `json:"experiments,omitempty"`
	// Grid expands into one point per (variant, cache size) cell.
	Grid *GridSpec `json:"grid,omitempty"`
	// MaxAttempts bounds tries per point (default DefaultMaxAttempts).
	MaxAttempts int `json:"max_attempts,omitempty"`
	// RetryBudget bounds total retries across the whole job (default
	// 2 × point count). Exhausting it fails every still-pending retry.
	RetryBudget int `json:"retry_budget,omitempty"`
}

// GridSpec is a cache-size sweep grid: the paper's Figures 4-6 shape.
type GridSpec struct {
	// Variants names the machines ("conv" or Table II names); empty
	// selects all of them.
	Variants []string `json:"variants,omitempty"`
	// CacheSizes is the x axis; empty selects the figures' sizes.
	CacheSizes []int `json:"cache_sizes,omitempty"`
	// AccessTime is the memory access time T (default 6).
	AccessTime int `json:"access_time,omitempty"`
	// BusBytes is the input bus width (default 8).
	BusBytes int `json:"bus_bytes,omitempty"`
	// Pipelined selects the pipelined memory system.
	Pipelined bool `json:"pipelined,omitempty"`
	// NoPrefetch disables true prefetch (the original-chip policy).
	NoPrefetch bool `json:"no_prefetch,omitempty"`
}

// DefaultMaxAttempts is the per-point try bound when the spec does not
// set one: one initial run plus two retries.
const DefaultMaxAttempts = 3

// maxJobPoints bounds a single job's expansion so one request cannot
// queue unbounded work.
const maxJobPoints = 4096

// withDefaults resolves the grid's zero fields.
func (g GridSpec) withDefaults() GridSpec {
	if len(g.Variants) == 0 {
		g.Variants = sweep.GridVariants()
	}
	if len(g.CacheSizes) == 0 {
		g.CacheSizes = append([]int(nil), sweep.CacheSizes...)
	}
	if g.AccessTime == 0 {
		g.AccessTime = 6
	}
	if g.BusBytes == 0 {
		g.BusBytes = 8
	}
	return g
}

// point is one unit of job work: a stable in-job ID, the content-hash
// identity its checkpoint record carries, and the body that produces the
// result. Invalid grid cells carry run bodies that record without
// simulating.
type point struct {
	id  string
	key runcache.Key
	run func(ctx context.Context) (PointResult, error)
}

// expand resolves the spec into its ordered point list. It validates
// experiment IDs and grid parameters, and needs the shared benchmark
// image (to fingerprint point identities), so the first call may pay the
// image build; the daemon warms it at boot.
func expand(spec Spec) ([]point, error) {
	if len(spec.Experiments) == 0 && spec.Grid == nil {
		return nil, fmt.Errorf("jobs: empty spec: name experiments or a grid")
	}
	if spec.MaxAttempts < 0 || spec.RetryBudget < 0 {
		return nil, fmt.Errorf("jobs: max_attempts and retry_budget must be >= 0")
	}
	img, err := sweep.BenchmarkImage()
	if err != nil {
		return nil, err
	}
	fp := img.Fingerprint()
	var pts []point
	seen := map[string]bool{}
	add := func(p point) error {
		if seen[p.id] {
			return fmt.Errorf("jobs: duplicate point %q", p.id)
		}
		seen[p.id] = true
		pts = append(pts, p)
		return nil
	}
	for _, id := range spec.Experiments {
		e, ok := sweep.Lookup(id)
		if !ok {
			return nil, fmt.Errorf("jobs: unknown experiment %q (GET /v1/experiments lists them)", id)
		}
		if err := add(catalogPoint(e, fp)); err != nil {
			return nil, err
		}
	}
	if spec.Grid != nil {
		g := spec.Grid.withDefaults()
		for _, size := range g.CacheSizes {
			if size <= 0 {
				return nil, fmt.Errorf("jobs: bad grid cache size %d", size)
			}
		}
		for _, variant := range g.Variants {
			for _, size := range g.CacheSizes {
				cfg, valid, err := sweep.GridConfig(variant, size, g.AccessTime, g.BusBytes, g.Pipelined, !g.NoPrefetch)
				if err != nil {
					return nil, err
				}
				id := fmt.Sprintf("%s/%d", variant, size)
				if err := add(gridPoint(id, cfg, valid, img)); err != nil {
					return nil, err
				}
			}
		}
	}
	if len(pts) > maxJobPoints {
		return nil, fmt.Errorf("jobs: spec expands to %d points (max %d)", len(pts), maxJobPoints)
	}
	return pts, nil
}

// gridPoint is one (variant, cache size) cell. Its checkpoint key is the
// runcache key of the exact configuration, so the identity is shared with
// the in-memory memo and stable across processes.
func gridPoint(id string, cfg core.Config, valid bool, img *program.Image) point {
	k := runcache.KeyFor(cfg, img.Fingerprint())
	return point{id: id, key: k, run: func(ctx context.Context) (PointResult, error) {
		pr := PointResult{Point: id, Key: k.String()}
		if !valid {
			return pr, nil
		}
		st, err := runcache.Default.RunCtx(ctx, cfg, img)
		if err != nil {
			return pr, err
		}
		pr.Cycles = st.Cycles
		pr.Valid = true
		attr := sweep.StatsTotals(st)
		pr.Attr = &attr
		return pr, nil
	}}
}

// catalogPoint wraps one catalog experiment as a job point.
func catalogPoint(e sweep.Experiment, fp [sha256.Size]byte) point {
	k := CatalogKey(e.ID, fp)
	return point{id: "exp:" + e.ID, key: k, run: func(ctx context.Context) (PointResult, error) {
		pr := PointResult{Point: "exp:" + e.ID, Key: k.String()}
		res, err := e.Run(ctx)
		if err != nil {
			return pr, err
		}
		for _, s := range res.Series {
			for _, p := range s.Points {
				if p.Valid {
					pr.Cycles += p.Cycles
				}
			}
		}
		pr.Valid = true
		if t, ok := sweep.ResultTotals(res); ok {
			pr.Attr = &t
		}
		if pr.Series, err = res.CompactJSON(); err != nil {
			return pr, err
		}
		return pr, nil
	}}
}

// CatalogKey is the checkpoint identity of a catalog experiment run over
// the image with the given fingerprint: a sha256 content hash in the same
// key space the grid points draw from runcache.KeyFor (the leading
// version tag keeps the two families from colliding).
func CatalogKey(expID string, imageFP [sha256.Size]byte) runcache.Key {
	h := sha256.New()
	h.Write([]byte("pipesim-job-point/v1\x00"))
	h.Write([]byte(expID))
	h.Write([]byte{0})
	h.Write(imageFP[:])
	var k runcache.Key
	h.Sum(k[:0])
	return k
}

// ManifestSchema identifies the on-disk job manifest layout.
const ManifestSchema = "pipesim-job/v1"

// FailedPoint is a point that exhausted its retry budget; the job fails
// partial, not total, and this records why.
type FailedPoint struct {
	Point    string `json:"point"`
	Error    string `json:"error"`
	Attempts int    `json:"attempts"`
}

// Manifest is the durable job record, written atomically on every state
// transition. Together with the checkpoint file it is everything a
// restarted daemon needs to resume the job.
type Manifest struct {
	Schema       string        `json:"schema"`
	ID           string        `json:"id"`
	State        State         `json:"state"`
	Spec         Spec          `json:"spec"`
	Created      time.Time     `json:"created"`
	Updated      time.Time     `json:"updated"`
	TotalPoints  int           `json:"total_points"`
	FailedPoints []FailedPoint `json:"failed_points,omitempty"`
	Error        string        `json:"error,omitempty"`
}

// View is a job snapshot for the API: the manifest plus live progress.
// Results holds the completed points in expansion order (partial while
// running).
type View struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Started reports whether this process began executing the job, i.e.
	// whether Hooks.JobStart fired for it. Hooks.JobEnd consumers use it
	// to keep gauge-style metrics paired; it is process-local state, not
	// part of the HTTP API.
	Started         bool          `json:"-"`
	Created         time.Time     `json:"created"`
	Updated         time.Time     `json:"updated"`
	TotalPoints     int           `json:"total_points"`
	CompletedPoints int           `json:"completed_points"`
	ResumedPoints   int           `json:"resumed_points"`
	RetriesUsed     int           `json:"retries_used"`
	FailedPoints    []FailedPoint `json:"failed_points,omitempty"`
	Error           string        `json:"error,omitempty"`
	Results         []PointResult `json:"results,omitempty"`
}

// job is the in-memory runtime state; the manager guards it with its own
// lock.
type job struct {
	man       Manifest
	points    []point
	done      map[string]PointResult // by point ID
	resumed   int                    // points replayed from checkpoint
	retries   int                    // total retries spent
	started   bool                   // this process fired JobStart for it
	cancelled bool
	cancel    context.CancelFunc // non-nil while running

	// The outcome log (see events.go): terminal point outcomes in index
	// order, the ledger behind exactly-once SSE delivery.
	outcomeLog []PointOutcome
	logged     map[string]int // point ID -> log index
	nextIdx    int            // next log index to assign (1-based)
}

// view snapshots the job. Caller holds the manager lock.
func (j *job) view(withResults bool) *View {
	v := &View{
		ID:              j.man.ID,
		State:           j.man.State,
		Started:         j.started,
		Created:         j.man.Created,
		Updated:         j.man.Updated,
		TotalPoints:     j.man.TotalPoints,
		CompletedPoints: len(j.done),
		ResumedPoints:   j.resumed,
		RetriesUsed:     j.retries,
		FailedPoints:    append([]FailedPoint(nil), j.man.FailedPoints...),
		Error:           j.man.Error,
	}
	if withResults {
		if len(j.points) > 0 {
			for _, p := range j.points {
				if r, ok := j.done[p.id]; ok {
					v.Results = append(v.Results, r)
				}
			}
		} else {
			// A terminal job loaded from disk keeps no expansion; order
			// the replayed results by point ID for stability.
			for _, r := range j.done {
				v.Results = append(v.Results, r)
			}
			sort.Slice(v.Results, func(a, b int) bool { return v.Results[a].Point < v.Results[b].Point })
		}
	}
	return v
}

// maxAttempts resolves the job's per-point try bound.
func (j *job) maxAttempts() int {
	if j.man.Spec.MaxAttempts > 0 {
		return j.man.Spec.MaxAttempts
	}
	return DefaultMaxAttempts
}

// retryBudget resolves the job's total retry budget.
func (j *job) retryBudget() int {
	if j.man.Spec.RetryBudget > 0 {
		return j.man.Spec.RetryBudget
	}
	return 2 * j.man.TotalPoints
}
