package jobs

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// TestBackoffDelayBounds drives the policy through a table of attempts and
// asserts every sampled delay is inside the documented equal-jitter window
// [d/2, d) where d = min(Cap, Base<<attempt).
func TestBackoffDelayBounds(t *testing.T) {
	p := BackoffPolicy{Base: 100 * time.Millisecond, Cap: 5 * time.Second}
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		attempt int
		full    time.Duration // uncapped d for the attempt
	}{
		{0, 100 * time.Millisecond},
		{1, 200 * time.Millisecond},
		{2, 400 * time.Millisecond},
		{3, 800 * time.Millisecond},
		{5, 3200 * time.Millisecond},
		{6, 5 * time.Second},  // 6.4s capped
		{10, 5 * time.Second}, // deep into the cap
		{63, 5 * time.Second}, // shift overflow territory must stay capped
		{500, 5 * time.Second},
	}
	for _, tc := range cases {
		for i := 0; i < 200; i++ {
			d := p.Delay(tc.attempt, rng)
			if d < tc.full/2 || d >= tc.full {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)",
					tc.attempt, d, tc.full/2, tc.full)
			}
		}
	}
}

// TestBackoffDelayJittered asserts the delay actually varies: a fixed
// backoff synchronizes retry herds, which is what the jitter exists to
// break up.
func TestBackoffDelayJittered(t *testing.T) {
	p := BackoffPolicy{Base: 100 * time.Millisecond, Cap: 5 * time.Second}
	rng := rand.New(rand.NewSource(7))
	seen := map[time.Duration]bool{}
	for i := 0; i < 100; i++ {
		seen[p.Delay(3, rng)] = true
	}
	if len(seen) < 10 {
		t.Fatalf("want jittered delays, got only %d distinct values in 100 draws", len(seen))
	}
}

// TestBackoffDefaults exercises the zero-value policy: it must still
// produce sane bounded delays rather than zeros or panics.
func TestBackoffDefaults(t *testing.T) {
	var p BackoffPolicy
	for attempt := 0; attempt < 100; attempt++ {
		d := p.Delay(attempt, nil)
		if d <= 0 || d >= DefaultBackoffCap {
			t.Fatalf("attempt %d: default policy delay %v outside (0, %v)",
				attempt, d, DefaultBackoffCap)
		}
	}
}

// TestSleepCtxHonorsCancellation asserts a backoff sleep aborts promptly
// when the job is cancelled instead of holding the executor for the full
// delay.
func TestSleepCtxHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := sleepCtx(ctx, time.Hour); err == nil {
		t.Fatal("want context error from cancelled sleep")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled sleep took %v", elapsed)
	}

	// And a zero/negative delay returns immediately without touching the
	// timer path at all.
	if err := sleepCtx(context.Background(), 0); err != nil {
		t.Fatalf("zero sleep: %v", err)
	}
}
