package jobs

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pipesim/internal/eventbus"
)

// collectEvents drains a subscriber into a slice (buffered events only).
func collectEvents(s *eventbus.Subscriber) []eventbus.Event {
	var out []eventbus.Event
	for {
		ev, ok := s.Pop()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

// TestJobPublishesLifecycleAndOutcomes runs a small job to completion
// with a bus attached and checks the event trail: queued → start → one
// point.ok + ckpt.append per point (with dense, unique outcome-log
// indexes) → end, plus sweep.experiment progress from the runner
// underneath.
func TestJobPublishesLifecycleAndOutcomes(t *testing.T) {
	bus := eventbus.New()
	sub := bus.Subscribe(eventbus.SubOptions{Buffer: 1024})
	defer sub.Close()

	m := newTestManager(t, Options{Events: bus})
	v, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m, v.ID)
	if fin.State != StateDone {
		t.Fatalf("job finished %s (%s)", fin.State, fin.Error)
	}

	kinds := map[string]int{}
	indexes := map[int]string{}
	for _, ev := range collectEvents(sub) {
		if ev.Job != v.ID {
			t.Errorf("event %s carries job %q, want %q", ev.Kind, ev.Job, v.ID)
		}
		kinds[ev.Kind]++
		if ev.Kind == KindPointOK {
			o := ev.Data.(PointOutcome)
			if o.Outcome != PointOK || o.Cycles == 0 || !o.Valid {
				t.Errorf("point.ok payload: %+v", o)
			}
			if prev, dup := indexes[o.Index]; dup {
				t.Errorf("index %d used by both %s and %s", o.Index, prev, o.Point)
			}
			indexes[o.Index] = o.Point
		}
	}
	for kind, want := range map[string]int{
		KindJobQueued: 1, KindJobStart: 1, KindJobEnd: 1,
		KindPointOK: 4, KindCkptAppend: 4, "sweep.experiment": 4,
	} {
		if kinds[kind] != want {
			t.Errorf("saw %d %s events, want %d (all: %v)", kinds[kind], kind, want, kinds)
		}
	}
	// Indexes are the dense ledger 1..4.
	for i := 1; i <= 4; i++ {
		if _, ok := indexes[i]; !ok {
			t.Errorf("no point.ok carried index %d (got %v)", i, indexes)
		}
	}

	// The checkpoint records persist the same indexes (Seq), and the
	// Outcomes accessor serves the same ledger.
	recs, err := ReadCheckpoint(m.ckptPath(v.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if indexes[r.Seq] != r.Point {
			t.Errorf("checkpoint %s has seq %d; the bus published that index for %q",
				r.Point, r.Seq, indexes[r.Seq])
		}
	}
	log, view, err := m.Outcomes(v.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 4 || view.State != StateDone {
		t.Fatalf("Outcomes returned %d entries, state %s", len(log), view.State)
	}
	for i, e := range log {
		if e.Index != i+1 || e.Outcome != PointOK {
			t.Errorf("log entry %d = %+v", i, e)
		}
		if indexes[e.Index] != e.Point {
			t.Errorf("log entry %d binds %s, bus published %s", e.Index, e.Point, indexes[e.Index])
		}
	}
	// The after cursor cuts exactly.
	tail, _, err := m.Outcomes(v.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 2 || tail[0].Index != 3 {
		t.Fatalf("Outcomes(after=2) = %+v", tail)
	}
	if _, _, err := m.Outcomes("nope", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("Outcomes on unknown job: %v", err)
	}
}

// TestRetryAndFailureEvents drives one point through retries into
// terminal failure and checks the transient/ledger split: retry events
// carry no index, the single point.failed does, and the failed entry is
// in the outcome log.
func TestRetryAndFailureEvents(t *testing.T) {
	bus := eventbus.New()
	sub := bus.Subscribe(eventbus.SubOptions{Buffer: 1024, Kinds: []string{"point", "job"}})
	defer sub.Close()

	failing := "conv/128"
	m := newTestManager(t, Options{
		Events:       bus,
		PointWorkers: 1,
		InjectFault: func(jobID, pointID string, attempt int) error {
			if pointID == failing {
				return errors.New("injected fault")
			}
			return nil
		},
	})
	v, err := m.Submit(Spec{
		Grid:        &GridSpec{Variants: []string{"conv"}, CacheSizes: []int{128, 256}},
		MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m, v.ID)
	if fin.State != StateFailed || len(fin.FailedPoints) != 1 {
		t.Fatalf("job finished %s with %d failed points", fin.State, len(fin.FailedPoints))
	}

	var retries, failed, backoffs int
	for _, ev := range collectEvents(sub) {
		switch ev.Kind {
		case KindPointRetry:
			o := ev.Data.(PointOutcome)
			if o.Index != 0 || o.Error == "" {
				t.Errorf("retry event should be transient with an error: %+v", o)
			}
			retries++
		case KindPointFailed:
			o := ev.Data.(PointOutcome)
			if o.Index == 0 || o.Point != failing || o.Attempts != 3 {
				t.Errorf("point.failed payload: %+v", o)
			}
			failed++
		case KindJobBackoff:
			b := ev.Data.(BackoffEvent)
			if b.Pending < 1 || b.Round < 1 {
				t.Errorf("backoff payload: %+v", b)
			}
			backoffs++
		case KindJobEnd:
			e := ev.Data.(JobEvent)
			if e.State != StateFailed || e.FailedPoints != 1 {
				t.Errorf("job.end payload: %+v", e)
			}
		}
	}
	if retries != 2 || failed != 1 {
		t.Errorf("saw %d retries and %d failures, want 2 and 1", retries, failed)
	}
	if backoffs != 2 {
		t.Errorf("saw %d backoff events, want 2 (one per retry round)", backoffs)
	}

	// The ledger holds 3 entries: 2 ok + 1 failed... the failing point
	// plus the passing one. (2 cache sizes: one ok, one failed.)
	log, _, err := m.Outcomes(v.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	var okN, failN int
	for _, e := range log {
		switch e.Outcome {
		case PointOK:
			okN++
		case PointFailed:
			failN++
		default:
			t.Errorf("unexpected ledger outcome %q", e.Outcome)
		}
	}
	if okN != 1 || failN != 1 {
		t.Errorf("ledger has %d ok / %d failed, want 1/1 (%+v)", okN, failN, log)
	}
}

// TestOutcomeLogSurvivesKillResume is the event-layer extension of
// TestJobSoakKillResume: the outcome-log indexes a consumer saw before
// the "crash" must bind to the same points after recovery, so that a
// Last-Event-ID resume delivers exactly the missing outcomes — no
// duplicates, no gaps.
func TestOutcomeLogSurvivesKillResume(t *testing.T) {
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	spec := testSpec()
	dir := t.TempDir()
	saveJobsDirArtifact(t, "events-soak-jobs-dir", dir)

	busA := eventbus.New()
	subA := busA.Subscribe(eventbus.SubOptions{Buffer: 1024, Kinds: []string{"point"}})

	var calls atomic.Int64
	var reachedOnce sync.Once
	reached := make(chan struct{})
	release := make(chan struct{})
	mA, err := New(Options{
		Dir:          dir,
		PointWorkers: 1,
		Backoff:      fastBackoff,
		Logger:       log,
		Events:       busA,
		InjectFault: func(jobID, pointID string, attempt int) error {
			if calls.Add(1) <= 2 {
				return nil
			}
			reachedOnce.Do(func() { close(reached) })
			<-release
			return errors.New("injected worker kill")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	<-reached
	closeCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	closeErr := make(chan error, 1)
	go func() { closeErr <- mA.Close(closeCtx) }()
	for mA.ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-closeErr; err != nil {
		t.Fatalf("draining the chaos manager: %v", err)
	}

	// What the pre-crash consumer observed: point.ok events with ledger
	// indexes.
	seen := map[int]string{} // index -> point
	lastID := 0
	for _, ev := range collectEvents(subA) {
		if ev.Kind != KindPointOK {
			continue
		}
		o := ev.Data.(PointOutcome)
		seen[o.Index] = o.Point
		if o.Index > lastID {
			lastID = o.Index
		}
	}
	subA.Close()
	if len(seen) != 2 {
		t.Fatalf("pre-crash consumer saw %d point.ok events, want 2 (%v)", len(seen), seen)
	}

	// The checkpoint carries those same indexes.
	recs, err := ReadCheckpoint(filepath.Join(dir, v.ID+".ckpt.jsonl"), log)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if seen[r.Seq] != r.Point {
			t.Errorf("checkpoint seq %d -> %s; consumer saw index %d as %q",
				r.Seq, r.Point, r.Seq, seen[r.Seq])
		}
	}

	// "Restart": recover on a fresh manager + fresh bus and resume the
	// consumer from lastID, the Last-Event-ID workflow.
	busB := eventbus.New()
	subB := busB.Subscribe(eventbus.SubOptions{Buffer: 1024, Kinds: []string{"point"}, Job: v.ID})
	defer subB.Close()
	mB := newTestManager(t, Options{Dir: dir, Events: busB})
	if _, err := mB.Recover(); err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, mB, v.ID)
	if fin.State != StateDone {
		t.Fatalf("resumed job finished %s (%s)", fin.State, fin.Error)
	}

	// Replay the ledger past the consumer's cursor...
	replay, _, err := mB.Outcomes(v.ID, lastID)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range replay {
		if prev, dup := seen[e.Index]; dup {
			t.Errorf("replayed index %d already seen as %q", e.Index, prev)
		}
		seen[e.Index] = e.Point
	}
	// ...and fold in the live events, deduplicating by index exactly as
	// the SSE handler does. point.resumed events re-announce replayed
	// entries under their original indexes, so they must all dedupe.
	for _, ev := range collectEvents(subB) {
		o, ok := ev.Data.(PointOutcome)
		if !ok || o.Index == 0 {
			continue
		}
		if p, dup := seen[o.Index]; dup {
			if p != o.Point {
				t.Errorf("live index %d -> %s conflicts with %q", o.Index, o.Point, p)
			}
			continue // already delivered: dedupe by index
		}
		if o.Index <= lastID {
			t.Errorf("live event index %d at or below the cursor %d was never seen", o.Index, lastID)
			continue
		}
		seen[o.Index] = o.Point
	}

	// Exactly once: all four points, indexes 1..4, no conflicts.
	if len(seen) != 4 {
		t.Fatalf("consumer union saw %d outcomes, want 4: %v", len(seen), seen)
	}
	points := map[string]bool{}
	for i := 1; i <= 4; i++ {
		p, ok := seen[i]
		if !ok {
			t.Errorf("no outcome with index %d", i)
			continue
		}
		if points[p] {
			t.Errorf("point %s observed under two indexes", p)
		}
		points[p] = true
	}
}

// TestTerminalJobLedgerReloads checks that a finished job reloaded by a
// fresh manager serves its outcome log (from checkpoint Seq), so SSE
// replays of finished jobs keep their original event IDs.
func TestTerminalJobLedgerReloads(t *testing.T) {
	dir := t.TempDir()
	m1 := newTestManager(t, Options{Dir: dir})
	v, err := m1.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, m1, v.ID); fin.State != StateDone {
		t.Fatalf("setup job finished %s", fin.State)
	}
	log1, _, err := m1.Outcomes(v.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Options{Dir: dir})
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	log2, view, err := m2.Outcomes(v.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if view.State != StateDone {
		t.Fatalf("reloaded job state %s", view.State)
	}
	if len(log2) != len(log1) {
		t.Fatalf("reloaded ledger has %d entries, original %d", len(log2), len(log1))
	}
	for i := range log2 {
		if log2[i].Index != log1[i].Index || log2[i].Point != log1[i].Point {
			t.Errorf("ledger entry %d: reloaded (%d,%s), original (%d,%s)",
				i, log2[i].Index, log2[i].Point, log1[i].Index, log1[i].Point)
		}
		if log2[i].Outcome != PointResumed || !log2[i].FromCheckpoint {
			t.Errorf("reloaded entry %d not marked resumed-from-checkpoint: %+v", i, log2[i])
		}
	}
}
