// Telemetry events and the per-job outcome log. The manager publishes
// its lifecycle to an optional eventbus.Bus (Options.Events) — job
// admission, start, backoff, end; one event per point outcome; one per
// checkpoint append — and keeps, per job, an ordered log of the
// *terminal* point outcomes ("ok", "resumed", "failed"). Log entries
// carry a dense 1-based Index that doubles as the SSE event ID on the
// daemon's GET /v1/jobs/{id}/events stream, and the index is persisted
// into each checkpoint record (PointResult.Seq), so a consumer that
// reconnects with Last-Event-ID after a daemon crash resumes exactly
// where it left off: the rebuilt log binds the same indexes to the same
// points. Transient events (retries, backoff waits, lifecycle) are
// published without an index — they are observability, not ledger.
package jobs

import (
	"sort"

	"pipesim/internal/eventbus"
)

// Event kinds published by the manager. Subscribers may filter by exact
// kind or by dotted prefix ("job" matches every job.* kind).
const (
	KindJobQueued     = "job.queued"
	KindJobStart      = "job.start"
	KindJobRecovering = "job.recovering"
	KindJobBackoff    = "job.backoff"
	KindJobEnd        = "job.end"
	KindPointOK       = "point.ok"
	KindPointResumed  = "point.resumed"
	KindPointRetry    = "point.retry"
	KindPointFailed   = "point.failed"
	KindCkptAppend    = "ckpt.append"
)

// PointOutcome is one entry of a job's outcome log and the payload of
// every point.* event. Terminal outcomes ("ok", "resumed", "failed")
// carry a log Index and are delivered exactly once per consumer;
// transient "retry" events have Index 0.
type PointOutcome struct {
	// Index is the 1-based position in the job's outcome log (0 for
	// transient events that are not part of the log).
	Index int `json:"index,omitempty"`
	// Point is the job-scoped point ID ("conv/128", "exp:fig5b").
	Point string `json:"point"`
	// Outcome is "ok", "resumed", "retry" or "failed" (the Hooks.Point
	// labels).
	Outcome string `json:"outcome"`
	// Cycles/Valid mirror the point's result for successful outcomes.
	Cycles uint64 `json:"cycles,omitempty"`
	Valid  bool   `json:"valid,omitempty"`
	// Attempts is how many tries the point has consumed so far.
	Attempts int `json:"attempts,omitempty"`
	// Error describes the failure for "retry" and "failed" outcomes.
	Error string `json:"error,omitempty"`
	// ElapsedS is the wall-clock seconds of the completing attempt.
	ElapsedS float64 `json:"elapsed_s,omitempty"`
	// FromCheckpoint marks an outcome replayed from the checkpoint file
	// rather than simulated by this process.
	FromCheckpoint bool `json:"from_checkpoint,omitempty"`
}

// JobEvent is the payload of the job.* lifecycle events: a compact
// progress snapshot.
type JobEvent struct {
	State           State  `json:"state"`
	TotalPoints     int    `json:"total_points"`
	CompletedPoints int    `json:"completed_points"`
	ResumedPoints   int    `json:"resumed_points,omitempty"`
	RetriesUsed     int    `json:"retries_used,omitempty"`
	FailedPoints    int    `json:"failed_points,omitempty"`
	Error           string `json:"error,omitempty"`
}

// BackoffEvent is the payload of job.backoff: the job is sleeping before
// its next retry round.
type BackoffEvent struct {
	Round   int   `json:"round"`
	DelayMS int64 `json:"delay_ms"`
	Pending int   `json:"pending"`
}

// CkptEvent is the payload of ckpt.append: one point result hit the
// durable checkpoint.
type CkptEvent struct {
	Point string `json:"point"`
	Seq   int    `json:"seq"`
}

// outcomeFromRecord shapes a checkpoint record as the "resumed" outcome
// it replays as.
func outcomeFromRecord(r PointResult) PointOutcome {
	return PointOutcome{
		Point:          r.Point,
		Outcome:        PointResumed,
		Cycles:         r.Cycles,
		Valid:          r.Valid,
		Attempts:       r.Attempts,
		ElapsedS:       r.ElapsedS,
		FromCheckpoint: true,
	}
}

// publish sends one event to the configured bus; a nil bus means
// telemetry is off and costs one predictable branch.
func (m *Manager) publish(kind, jobID string, data any) {
	if m.opt.Events == nil {
		return
	}
	m.opt.Events.Publish(eventbus.Event{Kind: kind, Job: jobID, Data: data})
}

// jobEventLocked snapshots the lifecycle payload. Caller holds mu.
func jobEventLocked(j *job) JobEvent {
	return JobEvent{
		State:           j.man.State,
		TotalPoints:     j.man.TotalPoints,
		CompletedPoints: len(j.done),
		ResumedPoints:   j.resumed,
		RetriesUsed:     j.retries,
		FailedPoints:    len(j.man.FailedPoints),
		Error:           j.man.Error,
	}
}

// logOutcomeLocked appends one terminal outcome to the job's log,
// assigning the next index, unless the point already has an entry — a
// point abandoned by the per-point timeout can complete a stale attempt
// after the round retried it, and the ledger records only the first
// terminal outcome. It returns the entry (with its index bound) and
// whether it was fresh; only fresh entries are published. Caller holds
// mu.
func (j *job) logOutcomeLocked(e PointOutcome) (PointOutcome, bool) {
	if idx, ok := j.logged[e.Point]; ok {
		e.Index = idx
		return e, false
	}
	if j.nextIdx == 0 {
		j.nextIdx = 1
	}
	e.Index = j.nextIdx
	j.nextIdx++
	if j.logged == nil {
		j.logged = make(map[string]int)
	}
	j.logged[e.Point] = e.Index
	j.outcomeLog = append(j.outcomeLog, e)
	return e, true
}

// bindLogEntryLocked inserts one replayed outcome at its persisted index
// (PointResult.Seq), falling back to a fresh index for records written
// before Seq existed or with a colliding index. Used only while
// rebuilding a log from a checkpoint; call finishLogRebuildLocked after
// the batch. Caller holds mu.
func (j *job) bindLogEntryLocked(e PointOutcome, seq int) {
	if _, ok := j.logged[e.Point]; ok {
		return
	}
	if j.logged == nil {
		j.logged = make(map[string]int)
	}
	if seq > 0 && !j.indexInUseLocked(seq) {
		e.Index = seq
	} else {
		// Legacy or duplicate record: park it past every known index;
		// finishLogRebuildLocked renumbers nothing, it only sorts, so the
		// binding stays stable once assigned.
		e.Index = j.maxIndexLocked() + 1
	}
	j.logged[e.Point] = e.Index
	j.outcomeLog = append(j.outcomeLog, e)
}

func (j *job) indexInUseLocked(idx int) bool {
	for _, n := range j.logged {
		if n == idx {
			return true
		}
	}
	return false
}

func (j *job) maxIndexLocked() int {
	max := 0
	for _, n := range j.logged {
		if n > max {
			max = n
		}
	}
	return max
}

// finishLogRebuildLocked sorts the rebuilt log by index and positions
// the next-index counter after it. Caller holds mu.
func (j *job) finishLogRebuildLocked() {
	sort.Slice(j.outcomeLog, func(a, b int) bool {
		return j.outcomeLog[a].Index < j.outcomeLog[b].Index
	})
	j.nextIdx = j.maxIndexLocked() + 1
}

// Outcomes returns the job's outcome-log entries with Index > after
// (after = 0 returns the whole log) together with a summary snapshot of
// the job. The log holds every terminal point outcome in index order, so
// an SSE stream that replays it and then follows live point events —
// deduplicating by index — observes each outcome exactly once, across
// process restarts included.
func (m *Manager) Outcomes(id string, after int) ([]PointOutcome, *View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	// The log is sorted by index: binary-search the cut.
	i := sort.Search(len(j.outcomeLog), func(i int) bool {
		return j.outcomeLog[i].Index > after
	})
	out := append([]PointOutcome(nil), j.outcomeLog[i:]...)
	return out, j.view(false), nil
}
