package jobs

import (
	"bytes"
	"context"
	"errors"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// saveJobsDirArtifact copies the job state directory (manifests and
// checkpoints) into PIPESIM_ARTIFACT_DIR when the test fails, so CI's
// post-mortem upload carries the exact durable state the assertion was
// looking at.
func saveJobsDirArtifact(t *testing.T, name, dir string) {
	t.Cleanup(func() {
		out := os.Getenv("PIPESIM_ARTIFACT_DIR")
		if out == "" || !t.Failed() {
			return
		}
		dst := filepath.Join(out, name)
		if err := os.MkdirAll(dst, 0o755); err != nil {
			t.Logf("artifact dir: %v", err)
			return
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Logf("reading jobs dir for artifact: %v", err)
			return
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Logf("copying artifact %s: %v", e.Name(), err)
				continue
			}
			if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
				t.Logf("writing artifact %s: %v", e.Name(), err)
			}
		}
		t.Logf("saved job state artifact to %s", dst)
	})
}

// samePointResult compares the deterministic fields of two point results
// — identity, cycle counts, attribution and series bytes. ElapsedS,
// Attempts and FromCheckpoint describe how the result was obtained and
// legitimately differ between an interrupted-and-resumed job and an
// uninterrupted one.
func samePointResult(a, b PointResult) bool {
	if a.Point != b.Point || a.Key != b.Key || a.Cycles != b.Cycles || a.Valid != b.Valid {
		return false
	}
	if (a.Attr == nil) != (b.Attr == nil) {
		return false
	}
	if a.Attr != nil && *a.Attr != *b.Attr {
		return false
	}
	return bytes.Equal(a.Series, b.Series)
}

// TestJobSoakKillResume is the chaos soak test for the durable job
// subsystem: a sweep job's workers are killed mid-sweep by fault
// injection, the manager is drained (the process "crashes" gracefully),
// and a fresh manager over the same state directory recovers and resumes
// the job. The resumed job must (a) serve at least one point from the
// checkpoint instead of re-simulating it and (b) produce results
// bit-identical to an uninterrupted run of the same spec.
func TestJobSoakKillResume(t *testing.T) {
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	spec := testSpec()

	// Uninterrupted baseline in its own state dir.
	baseMgr := newTestManager(t, Options{})
	bv, err := baseMgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	baseline := waitTerminal(t, baseMgr, bv.ID)
	if baseline.State != StateDone {
		t.Fatalf("baseline job finished %s (error %q)", baseline.State, baseline.Error)
	}

	// Chaos run: one sequential worker; the first two points succeed (and
	// checkpoint), then the fault hook kills every later attempt while the
	// test drains the manager mid-sweep.
	dir := t.TempDir()
	saveJobsDirArtifact(t, "soak-jobs-dir", dir)
	var calls atomic.Int64
	var reachedOnce sync.Once
	reached := make(chan struct{})
	release := make(chan struct{})
	mA, err := New(Options{
		Dir:          dir,
		PointWorkers: 1,
		Backoff:      fastBackoff,
		Logger:       log,
		InjectFault: func(jobID, pointID string, attempt int) error {
			if calls.Add(1) <= 2 {
				return nil
			}
			reachedOnce.Do(func() { close(reached) })
			<-release
			return errors.New("injected worker kill")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the job has two points durably checkpointed and is held
	// inside the third, then drain. The kill is released only after the
	// drain began, so the interrupted round observes a cancelled context
	// and leaves the unfinished points pending for recovery.
	<-reached
	closeCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	closeErr := make(chan error, 1)
	go func() { closeErr <- mA.Close(closeCtx) }()
	for mA.ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-closeErr; err != nil {
		t.Fatalf("draining the chaos manager: %v", err)
	}

	// The interrupted job's durable state: a non-terminal manifest (so the
	// next process recovers it) and exactly the completed points in the
	// checkpoint.
	recs, err := ReadCheckpoint(filepath.Join(dir, v.ID+".ckpt.jsonl"), log)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("interrupted job checkpointed %d points, want 2", len(recs))
	}

	// "Restart": a fresh manager over the same directory recovers the job.
	mB := newTestManager(t, Options{Dir: dir})
	resumed, err := mB.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("Recover resumed %d jobs, want 1", resumed)
	}
	fin := waitTerminal(t, mB, v.ID)
	if fin.State != StateDone {
		t.Fatalf("resumed job finished %s (error %q), want done", fin.State, fin.Error)
	}

	// At least one point (here: exactly two) was served from the
	// checkpoint rather than re-simulated.
	if fin.ResumedPoints < 1 {
		t.Error("no point was served from the checkpoint")
	}
	fromCkpt := 0
	for _, r := range fin.Results {
		if r.FromCheckpoint {
			fromCkpt++
		}
	}
	if fromCkpt != 2 {
		t.Errorf("%d results marked from_checkpoint, want 2", fromCkpt)
	}

	// Bit-identical aggregate results: every deterministic field of every
	// point matches the uninterrupted baseline, point for point.
	if len(fin.Results) != len(baseline.Results) {
		t.Fatalf("resumed job has %d results, baseline %d", len(fin.Results), len(baseline.Results))
	}
	for i := range fin.Results {
		if !samePointResult(fin.Results[i], baseline.Results[i]) {
			t.Errorf("point %d diverged after resume:\n  resumed:  %+v\n  baseline: %+v",
				i, fin.Results[i], baseline.Results[i])
		}
	}
}

// TestRecoverSkipsForeignAndTerminal asserts recovery only resumes
// genuinely interrupted jobs: finished jobs are loaded for listing (with
// their results) but not re-run, and files that are not job manifests are
// ignored.
func TestRecoverSkipsForeignAndTerminal(t *testing.T) {
	dir := t.TempDir()

	// A finished job from a "previous process".
	m1 := newTestManager(t, Options{Dir: dir})
	v, err := m1.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m1, v.ID)
	if fin.State != StateDone {
		t.Fatalf("setup job finished %s", fin.State)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Close m1 now so the two managers do not share the executor; the
	// t.Cleanup close becomes a no-op second drain.
	if err := m1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Junk that must not confuse recovery.
	if err := os.WriteFile(filepath.Join(dir, "junk.job.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "foreign.job.json"),
		[]byte(`{"schema":"other/v1","id":"foreign","state":"running"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Options{Dir: dir})
	resumed, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 {
		t.Fatalf("Recover resumed %d jobs, want 0 (nothing was interrupted)", resumed)
	}
	got, err := m2.Get(v.ID)
	if err != nil {
		t.Fatalf("finished job lost across restart: %v", err)
	}
	if got.State != StateDone || got.CompletedPoints != 4 {
		t.Errorf("reloaded job: state %s, completed %d", got.State, got.CompletedPoints)
	}
	if len(got.Results) != 4 {
		t.Errorf("reloaded job serves %d results, want 4 from its checkpoint", len(got.Results))
	}
	for _, r := range got.Results {
		if !r.FromCheckpoint {
			t.Errorf("reloaded result %s not marked from_checkpoint", r.Point)
		}
	}
}
