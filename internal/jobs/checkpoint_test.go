package jobs

import (
	"bytes"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pipesim/internal/sweep"
)

func testLogger(buf *bytes.Buffer) *slog.Logger {
	return slog.New(slog.NewTextHandler(buf, nil))
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.ckpt.jsonl")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []PointResult{
		{Point: "conv/128", Key: strings.Repeat("ab", 32), Cycles: 12345, Valid: true,
			Attr: &sweep.BucketTotals{Issue: 100, FetchStarved: 20}, Attempts: 1},
		{Point: "conv/64", Key: strings.Repeat("cd", 32), Valid: false, Attempts: 1},
		{Point: "exp:fig5a", Key: strings.Repeat("ef", 32), Cycles: 999, Valid: true,
			Series: []byte(`{"x_label":"cache","series":[]}`), Attempts: 3},
	}
	for _, r := range want {
		if err := ck.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadCheckpoint(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Point != want[i].Point || got[i].Key != want[i].Key ||
			got[i].Cycles != want[i].Cycles || got[i].Valid != want[i].Valid ||
			got[i].Attempts != want[i].Attempts {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if got[0].Attr == nil || got[0].Attr.Issue != 100 {
		t.Errorf("record 0 lost its attribution: %+v", got[0].Attr)
	}
	if string(got[2].Series) != string(want[2].Series) {
		t.Errorf("record 2 series: got %s", got[2].Series)
	}
}

func TestReadCheckpointMissingFile(t *testing.T) {
	got, err := ReadCheckpoint(filepath.Join(t.TempDir(), "nope.jsonl"), nil)
	if err != nil || got != nil {
		t.Fatalf("missing file: got %v, %v; want nil, nil", got, err)
	}
}

// TestReadCheckpointTruncatedTail simulates a crash mid-append: the last
// record is cut off. The reader must keep every complete record, discard
// the fragment, and say so in the log.
func TestReadCheckpointTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.ckpt.jsonl")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []PointResult{
		{Point: "a/64", Key: strings.Repeat("11", 32), Cycles: 1, Valid: true},
		{Point: "a/128", Key: strings.Repeat("22", 32), Cycles: 2, Valid: true},
		{Point: "a/256", Key: strings.Repeat("33", 32), Cycles: 3, Valid: true},
	} {
		if err := ck.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	ck.Close()

	// Chop the file mid-way through the final record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := bytes.LastIndexByte(bytes.TrimRight(data, "\n"), '{')
	if err := os.WriteFile(path, data[:cut+10], 0o644); err != nil {
		t.Fatal(err)
	}

	var logBuf bytes.Buffer
	got, err := ReadCheckpoint(path, testLogger(&logBuf))
	if err != nil {
		t.Fatalf("truncated tail must not fail the read: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want the 2 complete ones", len(got))
	}
	if got[0].Point != "a/64" || got[1].Point != "a/128" {
		t.Fatalf("wrong surviving records: %+v", got)
	}
	if !strings.Contains(logBuf.String(), "corrupt checkpoint record") {
		t.Errorf("want a logged warning about the discarded record, log was: %s", logBuf.String())
	}
}

// TestReadCheckpointCorruptMiddle asserts a corrupt record in the middle
// (bit rot, editor accident) is skipped without losing its neighbours.
func TestReadCheckpointCorruptMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.ckpt.jsonl")
	lines := []string{
		`{"point":"a/64","key":"` + strings.Repeat("11", 32) + `","cycles":1,"valid":true,"elapsed_s":0,"attempts":1}`,
		`{"point":"a/128","key":`, // malformed
		`{"point":"a/256","key":"` + strings.Repeat("33", 32) + `","cycles":3,"valid":true,"elapsed_s":0,"attempts":1}`,
		`{"cycles":9,"valid":true}`, // parses, but no identity — dropped
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	got, err := ReadCheckpoint(path, testLogger(&logBuf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Point != "a/64" || got[1].Point != "a/256" {
		t.Fatalf("got %+v, want the two well-formed records", got)
	}
	log := logBuf.String()
	if !strings.Contains(log, "corrupt checkpoint record") || !strings.Contains(log, "without identity") {
		t.Errorf("want warnings for both discarded lines, log was: %s", log)
	}
}
