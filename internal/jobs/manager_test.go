package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"testing"
	"time"

	"pipesim/internal/core"
)

// testSpec is a small real grid: one machine variant, four cache sizes.
// Each point is a full Livermore benchmark run (~60ms, memoized by the
// run cache across tests in this binary).
func testSpec() Spec {
	return Spec{Grid: &GridSpec{Variants: []string{"conv"}, CacheSizes: []int{128, 256, 512, 1024}}}
}

// fastBackoff keeps test retries from sleeping for real.
var fastBackoff = BackoffPolicy{Base: time.Millisecond, Cap: 5 * time.Millisecond}

func newTestManager(t *testing.T, opt Options) *Manager {
	t.Helper()
	if opt.Dir == "" {
		opt.Dir = t.TempDir()
	}
	if opt.Logger == nil {
		opt.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if opt.Backoff == (BackoffPolicy{}) {
		opt.Backoff = fastBackoff
	}
	m, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Close(ctx); err != nil {
			t.Errorf("closing manager: %v", err)
		}
	})
	return m
}

// waitTerminal polls until the job finishes and returns its final view
// with results.
func waitTerminal(t *testing.T, m *Manager, id string) *View {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return nil
}

func TestJobRunsToDone(t *testing.T) {
	m := newTestManager(t, Options{})
	v, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateQueued || v.TotalPoints != 4 {
		t.Fatalf("submitted view: %+v", v)
	}
	fin := waitTerminal(t, m, v.ID)
	if fin.State != StateDone {
		t.Fatalf("state %s (error %q), want done", fin.State, fin.Error)
	}
	if fin.CompletedPoints != 4 || len(fin.Results) != 4 {
		t.Fatalf("completed %d, results %d, want 4", fin.CompletedPoints, len(fin.Results))
	}
	for i, r := range fin.Results {
		if r.Key == "" || r.Point == "" || !r.Valid || r.Cycles == 0 || r.Attr == nil {
			t.Errorf("result %d incomplete: %+v", i, r)
		}
	}
	// Results come back in expansion order.
	want := []string{"conv/128", "conv/256", "conv/512", "conv/1024"}
	for i, r := range fin.Results {
		if r.Point != want[i] {
			t.Errorf("result %d is %s, want %s", i, r.Point, want[i])
		}
	}

	// The durable record agrees: terminal manifest plus one checkpoint
	// line per point.
	data, err := os.ReadFile(m.manifestPath(v.ID))
	if err != nil {
		t.Fatal(err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	if man.State != StateDone || man.Schema != ManifestSchema || man.ID != v.ID {
		t.Errorf("manifest on disk: %+v", man)
	}
	recs, err := ReadCheckpoint(m.ckptPath(v.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Errorf("checkpoint has %d records, want 4", len(recs))
	}
}

// TestJobRetrySucceeds injects one transient failure: the point must be
// retried with backoff and the job still finish clean.
func TestJobRetrySucceeds(t *testing.T) {
	m := newTestManager(t, Options{
		InjectFault: func(jobID, pointID string, attempt int) error {
			if pointID == "conv/256" && attempt == 1 {
				return errors.New("injected transient fault")
			}
			return nil
		},
	})
	v, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m, v.ID)
	if fin.State != StateDone {
		t.Fatalf("state %s (error %q), want done despite the transient fault", fin.State, fin.Error)
	}
	if fin.RetriesUsed < 1 {
		t.Errorf("retries used %d, want >= 1", fin.RetriesUsed)
	}
	for _, r := range fin.Results {
		if r.Point == "conv/256" && r.Attempts != 2 {
			t.Errorf("conv/256 took %d attempts, want 2", r.Attempts)
		}
	}
}

// TestJobFailsPartial injects a permanent failure on one point: the job
// fails, but every other point's result is still delivered.
func TestJobFailsPartial(t *testing.T) {
	m := newTestManager(t, Options{
		InjectFault: func(jobID, pointID string, attempt int) error {
			if pointID == "conv/512" {
				return errors.New("injected permanent fault")
			}
			return nil
		},
	})
	v, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m, v.ID)
	if fin.State != StateFailed {
		t.Fatalf("state %s, want failed", fin.State)
	}
	if len(fin.FailedPoints) != 1 || fin.FailedPoints[0].Point != "conv/512" {
		t.Fatalf("failed points: %+v", fin.FailedPoints)
	}
	if got := fin.FailedPoints[0].Attempts; got != DefaultMaxAttempts {
		t.Errorf("failed point burned %d attempts, want %d", got, DefaultMaxAttempts)
	}
	if fin.CompletedPoints != 3 || len(fin.Results) != 3 {
		t.Errorf("want the 3 healthy points' results, got %d", len(fin.Results))
	}
	if fin.Error == "" {
		t.Error("failed job must carry an error summary")
	}
}

// blockGate blocks the executor inside a chosen point attempt so tests
// can hold jobs in running/queued states deterministically.
type blockGate struct {
	reached chan struct{}
	release chan struct{}
	once    sync.Once
}

func newBlockGate() *blockGate {
	return &blockGate{reached: make(chan struct{}), release: make(chan struct{})}
}

func (g *blockGate) inject(jobID, pointID string, attempt int) error {
	g.once.Do(func() { close(g.reached) })
	<-g.release
	return nil
}

func (g *blockGate) open() {
	select {
	case <-g.release:
	default:
		close(g.release)
	}
}

// TestAdmissionControl fills the bounded queue and asserts overflow is
// shed with ErrQueueFull while every admitted job still completes.
func TestAdmissionControl(t *testing.T) {
	gate := newBlockGate()
	defer gate.open()
	m := newTestManager(t, Options{
		QueueLimit:  2,
		InjectFault: gate.inject,
	})

	// First job starts executing and blocks on the gate; second sits in
	// the queue. Both hold admission slots.
	v1, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-gate.reached
	v2, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}

	// The queue is at its bound: the next submission is shed.
	if _, err := m.Submit(testSpec()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	if d := m.QueueDepth(); d != 1 {
		t.Errorf("queue depth %d, want 1 (one job waiting behind the runner)", d)
	}

	// Shed load is load the system refused, not load it lost: release the
	// gate and both admitted jobs run to completion.
	gate.open()
	for _, id := range []string{v1.ID, v2.ID} {
		if fin := waitTerminal(t, m, id); fin.State != StateDone {
			t.Errorf("job %s finished %s (error %q), want done", id, fin.State, fin.Error)
		}
	}

	// With the queue drained, admission opens again.
	v4, err := m.Submit(testSpec())
	if err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	if fin := waitTerminal(t, m, v4.ID); fin.State != StateDone {
		t.Errorf("post-drain job finished %s, want done", fin.State)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	gate := newBlockGate()
	defer gate.open()
	m := newTestManager(t, Options{InjectFault: gate.inject})

	running, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-gate.reached
	queued, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}

	// A queued job cancels immediately.
	v, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateCancelled {
		t.Fatalf("queued job state after cancel: %s", v.State)
	}

	// A running job cancels once its in-flight points settle.
	if _, err := m.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	gate.open()
	if fin := waitTerminal(t, m, running.ID); fin.State != StateCancelled {
		t.Errorf("running job state after cancel: %s", fin.State)
	}

	// Cancelling again is a conflict; cancelling nonsense is not found.
	if _, err := m.Cancel(running.ID); !errors.Is(err, ErrTerminal) {
		t.Errorf("re-cancel: err = %v, want ErrTerminal", err)
	}
	if _, err := m.Cancel("j-nope-1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown: err = %v, want ErrNotFound", err)
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	m := newTestManager(t, Options{})
	cases := []Spec{
		{}, // no work at all
		{Experiments: []string{"no-such-experiment"}},
		{Grid: &GridSpec{Variants: []string{"no-such-variant"}}},
		{Grid: &GridSpec{CacheSizes: []int{-1}}},
		{Grid: &GridSpec{}, MaxAttempts: -1},
	}
	for i, spec := range cases {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("case %d: bad spec %+v was admitted", i, spec)
		} else if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDraining) {
			t.Errorf("case %d: bad spec misreported as shed load: %v", i, err)
		}
	}
	if got := len(m.List()); got != 0 {
		t.Errorf("%d jobs registered from rejected specs", got)
	}
}

func TestListOrder(t *testing.T) {
	gate := newBlockGate()
	defer gate.open()
	m := newTestManager(t, Options{QueueLimit: 8, InjectFault: gate.inject})
	var ids []string
	for i := 0; i < 3; i++ {
		v, err := m.Submit(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	vs := m.List()
	if len(vs) != 3 {
		t.Fatalf("List returned %d jobs, want 3", len(vs))
	}
	for i, v := range vs {
		if v.ID != ids[i] {
			t.Errorf("List[%d] = %s, want %s (oldest first)", i, v.ID, ids[i])
		}
	}
	gate.open()
}

func TestDrainingRejectsSubmit(t *testing.T) {
	dir := t.TempDir()
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	m, err := New(Options{Dir: dir, Logger: log, Backoff: fastBackoff})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(testSpec()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after Close: err = %v, want ErrDraining", err)
	}
}

func TestRetryableErr(t *testing.T) {
	if retryableErr(&core.DeadlockError{}) {
		t.Error("a watchdog deadlock is deterministic and must not be retried")
	}
	if !retryableErr(errors.New("injected infrastructure fault")) {
		t.Error("unrecognized errors are transient until attempts run out")
	}
	if !retryableErr(fmt.Errorf("wrapped: %w", context.DeadlineExceeded)) {
		t.Error("timeouts are the transient failure this subsystem absorbs")
	}
}

// TestHooksPairing asserts the lifecycle hooks stay balanced on every
// path: JobEnd fires exactly once per terminal transition — including a
// job cancelled while still queued, which never fired JobStart — and
// View.Started lets a gauge incremented on JobStart pair its decrements
// so it can never go negative.
func TestHooksPairing(t *testing.T) {
	type event struct {
		start   bool
		started bool
		state   State
		id      string
	}
	var evMu sync.Mutex
	var events []event
	gate := newBlockGate()
	defer gate.open()
	m := newTestManager(t, Options{
		InjectFault: gate.inject,
		Hooks: Hooks{
			JobStart: func(v *View) {
				evMu.Lock()
				events = append(events, event{start: true, started: v.Started, id: v.ID})
				evMu.Unlock()
			},
			JobEnd: func(v *View) {
				evMu.Lock()
				events = append(events, event{started: v.Started, state: v.State, id: v.ID})
				evMu.Unlock()
			},
		},
	})

	running, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-gate.reached
	queued, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Cancel the queued job: it goes terminal without ever starting.
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	gate.open()
	if fin := waitTerminal(t, m, running.ID); fin.State != StateDone {
		t.Fatalf("running job finished %s, want done", fin.State)
	}

	evMu.Lock()
	defer evMu.Unlock()
	counts := map[string]struct{ starts, ends int }{}
	gauge := 0
	for _, e := range events {
		c := counts[e.id]
		if e.start {
			c.starts++
			gauge++
		} else {
			c.ends++
			if e.started {
				gauge--
			}
		}
		counts[e.id] = c
		if gauge < 0 {
			t.Fatalf("active gauge went negative: events %+v", events)
		}
		if !e.start && e.id == queued.ID {
			if e.started {
				t.Error("cancelled-while-queued job reported Started=true at JobEnd")
			}
			if e.state != StateCancelled {
				t.Errorf("queued job ended %s, want cancelled", e.state)
			}
		}
	}
	if gauge != 0 {
		t.Errorf("active gauge settled at %d, want 0 (events %+v)", gauge, events)
	}
	if c := counts[running.ID]; c.starts != 1 || c.ends != 1 {
		t.Errorf("running job fired %d starts / %d ends, want 1/1", c.starts, c.ends)
	}
	if c := counts[queued.ID]; c.starts != 0 || c.ends != 1 {
		t.Errorf("queued-cancelled job fired %d starts / %d ends, want 0/1", c.starts, c.ends)
	}
}

// TestSubmitSkipsExistingManifestID plants a manifest where the next
// submission would land and asserts the manager regenerates the ID
// instead of clobbering the on-disk job history.
func TestSubmitSkipsExistingManifestID(t *testing.T) {
	m := newTestManager(t, Options{})
	next := fmt.Sprintf("j-%s-%d", m.startID, m.seq.Load()+1)
	planted := m.manifestPath(next)
	if err := os.WriteFile(planted, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	v, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if v.ID == next {
		t.Fatalf("Submit reused ID %s that already had a manifest on disk", next)
	}
	data, err := os.ReadFile(planted)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{}" {
		t.Errorf("planted manifest was clobbered: %q", data)
	}
}

// TestTimedOutPointRetriesWithoutCrash wedges one point past the
// per-point deadline: the sweep runner abandons its goroutine (which may
// finish later, concurrently with the manager's bookkeeping — run under
// -race this exercises that synchronization) and the manager must retry
// the point and finish the job cleanly.
func TestTimedOutPointRetriesWithoutCrash(t *testing.T) {
	// Warm the run cache so every point is memoized and far faster than
	// the deadline; only the injected wedge exceeds it.
	warm := newTestManager(t, Options{})
	wv, err := warm.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, warm, wv.ID); fin.State != StateDone {
		t.Fatalf("warm-up job finished %s, want done", fin.State)
	}

	m := newTestManager(t, Options{
		PointTimeout: 100 * time.Millisecond,
		InjectFault: func(jobID, pointID string, attempt int) error {
			if pointID == "conv/512" && attempt == 1 {
				time.Sleep(400 * time.Millisecond) // wedge past the deadline
			}
			return nil
		},
	})
	v, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m, v.ID)
	if fin.State != StateDone {
		t.Fatalf("job finished %s (error %q), want done after retrying the wedged point", fin.State, fin.Error)
	}
	if fin.RetriesUsed < 1 {
		t.Error("the timed-out point should have burned a retry")
	}
	for _, r := range fin.Results {
		if r.Point == "conv/512" && r.Attempts != 2 {
			t.Errorf("wedged point recorded %d attempts, want 2", r.Attempts)
		}
	}
	// Let the abandoned goroutine run its course before the test tears
	// the manager down, so the race detector sees both sides.
	time.Sleep(500 * time.Millisecond)
}
