package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pipesim/internal/core"
	"pipesim/internal/eventbus"
	"pipesim/internal/sweep"
)

// Admission and lookup errors. The daemon maps ErrQueueFull to HTTP 429
// and ErrDraining to 503, both with Retry-After; anything else from
// Submit is the client's spec (400).
var (
	ErrQueueFull = errors.New("jobs: queue full")
	ErrDraining  = errors.New("jobs: draining, not accepting jobs")
	ErrNotFound  = errors.New("jobs: no such job")
	ErrTerminal  = errors.New("jobs: job already finished")
)

// DefaultQueueLimit bounds the admission queue when Options does not.
const DefaultQueueLimit = 16

// Hooks observe job lifecycle events for metrics and tracing. All hooks
// are optional and are called outside the manager's lock.
type Hooks struct {
	// JobStart fires when a job begins (or resumes) executing.
	JobStart func(v *View)
	// JobEnd fires exactly once when a job reaches a terminal state,
	// whether or not the job ever started executing (a job cancelled
	// while still queued, or one that failed before its checkpoint
	// replay, is terminal without a JobStart). View.Started tells the
	// two apart so gauge-style metrics stay paired with JobStart. JobEnd
	// does not fire for a job interrupted by drain — that job is still
	// live and will resume after restart.
	JobEnd func(v *View)
	// Point fires once per point event with one of the outcomes "ok",
	// "resumed" (served from checkpoint), "retry" or "failed".
	Point func(jobID, outcome string)
}

// Point outcome labels for Hooks.Point.
const (
	PointOK      = "ok"
	PointResumed = "resumed"
	PointRetry   = "retry"
	PointFailed  = "failed"
)

// Options configures a Manager.
type Options struct {
	// Dir is the durable state directory: one <id>.job.json manifest and
	// one <id>.ckpt.jsonl checkpoint per job. Required.
	Dir string
	// QueueLimit bounds jobs admitted but not yet finished with the
	// executor (default DefaultQueueLimit). Submissions beyond it are
	// shed with ErrQueueFull. Recovery is exempt: durable work always
	// resumes.
	QueueLimit int
	// PointWorkers is the per-daemon concurrent-points limit (default
	// one per CPU).
	PointWorkers int
	// PointTimeout is the per-point deadline (0 = none); a timed-out
	// point counts as a transient failure and is retried.
	PointTimeout time.Duration
	// Backoff schedules retries; zero value selects the defaults.
	Backoff BackoffPolicy
	// Logger receives job lifecycle records (nil = slog.Default).
	Logger *slog.Logger
	// Hooks observe lifecycle events (metrics, tracing).
	Hooks Hooks
	// InjectFault, when set, is consulted before every point attempt
	// (attempt is 1-based); a non-nil return fails the attempt. Chaos
	// and soak tests only.
	InjectFault func(jobID, pointID string, attempt int) error
	// Events, when set, receives the manager's telemetry: job lifecycle,
	// per-point outcomes, retries, backoff waits and checkpoint appends
	// (see events.go for kinds and payloads). Publishing never blocks
	// job execution.
	Events *eventbus.Bus
}

// Manager owns the durable job queue: admission, execution on the
// fault-isolated sweep runner, checkpointing, retry, recovery and drain.
type Manager struct {
	opt Options
	log *slog.Logger

	ctx  context.Context // cancelled by Close: interrupts jobs for drain
	stop context.CancelFunc
	wg   sync.WaitGroup

	draining atomic.Bool
	seq      atomic.Uint64
	startID  string

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // insertion order, for List
	pending []string // admitted job IDs awaiting the executor
	kick    chan struct{}
}

// New starts a manager over dir (created if missing) with one executor
// goroutine. Call Recover before serving to resume interrupted jobs, and
// Close to drain.
func New(opt Options) (*Manager, error) {
	if opt.Dir == "" {
		return nil, errors.New("jobs: Options.Dir is required")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating state dir: %w", err)
	}
	if opt.QueueLimit <= 0 {
		opt.QueueLimit = DefaultQueueLimit
	}
	if opt.PointWorkers <= 0 {
		opt.PointWorkers = runtime.NumCPU()
	}
	opt.Backoff = opt.Backoff.withDefaults()
	if opt.Logger == nil {
		opt.Logger = slog.Default()
	}
	// Job IDs embed a random per-process instance tag so IDs minted by
	// different daemon lifetimes over the same state dir never collide —
	// a reused ID would silently clobber the prior job's manifest and
	// append unrelated records to its checkpoint.
	var inst [8]byte
	if _, err := rand.Read(inst[:]); err != nil {
		return nil, fmt.Errorf("jobs: seeding instance id: %w", err)
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		opt:     opt,
		log:     opt.Logger,
		ctx:     ctx,
		stop:    stop,
		startID: hex.EncodeToString(inst[:]),
		jobs:    make(map[string]*job),
		kick:    make(chan struct{}, 1),
	}
	m.wg.Add(1)
	go m.runLoop()
	return m, nil
}

func (m *Manager) manifestPath(id string) string {
	return filepath.Join(m.opt.Dir, id+".job.json")
}

func (m *Manager) ckptPath(id string) string {
	return filepath.Join(m.opt.Dir, id+".ckpt.jsonl")
}

// Submit admits one job: the spec is validated and expanded, the manifest
// written, and the job queued. ErrQueueFull and ErrDraining report shed
// load; any other error means the spec itself is bad.
func (m *Manager) Submit(spec Spec) (*View, error) {
	if m.draining.Load() {
		return nil, ErrDraining
	}
	pts, err := expand(spec)
	if err != nil {
		return nil, err
	}
	now := time.Now().UTC()
	j := &job{
		man: Manifest{
			Schema:      ManifestSchema,
			State:       StateQueued,
			Spec:        spec,
			Created:     now,
			Updated:     now,
			TotalPoints: len(pts),
		},
		points: pts,
		done:   make(map[string]PointResult),
	}

	m.mu.Lock()
	// Admission control: the bound covers everything the executor has
	// not finished — queued and running both hold a slot — so a stalled
	// executor sheds load instead of growing an unbounded backlog.
	if m.unfinishedLocked() >= m.opt.QueueLimit {
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	// Defense in depth against cross-restart ID reuse: never adopt an ID
	// that already has a manifest on disk, it would overwrite that job's
	// history.
	id := fmt.Sprintf("j-%s-%d", m.startID, m.seq.Add(1))
	for {
		if _, err := os.Stat(m.manifestPath(id)); err != nil {
			break
		}
		m.log.Warn("job id collides with an existing manifest, regenerating", "id", id)
		id = fmt.Sprintf("j-%s-%d", m.startID, m.seq.Add(1))
	}
	j.man.ID = id
	if err := m.writeManifestLocked(j); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.pending = append(m.pending, id)
	v := j.view(false)
	ev := jobEventLocked(j)
	m.mu.Unlock()

	m.wake()
	m.publish(KindJobQueued, id, ev)
	m.log.Info("job admitted", "job", id, "points", len(pts))
	return v, nil
}

// unfinishedLocked counts jobs not yet terminal. Caller holds mu.
func (m *Manager) unfinishedLocked() int {
	n := 0
	for _, j := range m.jobs {
		if !j.man.State.Terminal() {
			n++
		}
	}
	return n
}

// QueueDepth reports admitted jobs the executor has not started.
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// Get returns a snapshot of one job, including its partial results.
func (m *Manager) Get(id string) (*View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.view(true), nil
}

// List returns summary snapshots of every known job, oldest first.
func (m *Manager) List() []*View {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*View, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].view(false))
	}
	return out
}

// Cancel stops a job: a queued job goes terminal immediately, a running
// one has its context cancelled (in-flight points finish and checkpoint,
// then the job exits as cancelled).
func (m *Manager) Cancel(id string) (*View, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	if j.man.State.Terminal() {
		v := j.view(false)
		m.mu.Unlock()
		return v, ErrTerminal
	}
	j.cancelled = true
	if j.cancel != nil {
		j.cancel() // running: the executor finalizes the state
		v := j.view(false)
		m.mu.Unlock()
		m.log.Info("job cancelled", "job", id)
		return v, nil
	}
	m.mu.Unlock()
	// Queued: finalize here so the terminal transition fires JobEnd like
	// every other; if the executor reaches the job concurrently, finalize
	// runs exactly once (it is a no-op on an already-terminal job).
	m.finalize(j, m.log.With("job", id), nil)
	m.mu.Lock()
	v := j.view(false)
	m.mu.Unlock()
	m.log.Info("job cancelled", "job", id)
	return v, nil
}

// Recover scans the state directory and resumes every job that was
// interrupted (manifest still queued/running/recovering): the job is
// marked recovering and re-queued; its checkpoint replay happens when the
// executor picks it up. Terminal jobs are loaded for listing. Recovery
// bypasses the admission bound — durable work always resumes. Returns the
// number of jobs resumed.
func (m *Manager) Recover() (int, error) {
	paths, err := filepath.Glob(filepath.Join(m.opt.Dir, "*.job.json"))
	if err != nil {
		return 0, fmt.Errorf("jobs: scanning state dir: %w", err)
	}
	resumed := 0
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			m.log.Warn("skipping unreadable job manifest", "path", path, "err", err)
			continue
		}
		var man Manifest
		if err := json.Unmarshal(data, &man); err != nil {
			m.log.Warn("skipping corrupt job manifest", "path", path, "err", err)
			continue
		}
		if man.Schema != ManifestSchema || man.ID == "" || !man.State.valid() {
			m.log.Warn("skipping foreign or malformed job manifest", "path", path, "schema", man.Schema)
			continue
		}
		if m.manifestPath(man.ID) != path {
			m.log.Warn("skipping job manifest whose filename disagrees with its id",
				"path", path, "id", man.ID)
			continue
		}
		m.mu.Lock()
		if _, ok := m.jobs[man.ID]; ok {
			m.mu.Unlock()
			continue
		}
		j := &job{man: man, done: make(map[string]PointResult)}
		if man.State.Terminal() {
			// Load its results so GET /v1/jobs/{id} still serves them, and
			// rebuild the outcome log so an SSE stream over the finished job
			// replays its history with the original event IDs.
			recs, err := ReadCheckpoint(m.ckptPath(man.ID), m.log)
			if err != nil {
				m.log.Warn("loading finished job's checkpoint", "job", man.ID, "err", err)
			}
			for _, r := range recs {
				r.FromCheckpoint = true
				j.done[r.Point] = r
				j.bindLogEntryLocked(outcomeFromRecord(r), r.Seq)
			}
			j.finishLogRebuildLocked()
			m.jobs[man.ID] = j
			m.order = append(m.order, man.ID)
			m.mu.Unlock()
			continue
		}
		pts, err := expand(man.Spec)
		if err != nil {
			// The spec no longer expands (catalog drift across versions):
			// fail it durably — through finalize, so JobEnd fires — rather
			// than wedging recovery.
			m.jobs[man.ID] = j
			m.order = append(m.order, man.ID)
			m.mu.Unlock()
			m.finalize(j, m.log.With("job", man.ID), fmt.Errorf("recovery: %w", err))
			m.log.Warn("recovered job no longer expands, failing it", "job", man.ID, "err", err)
			continue
		}
		j.points = pts
		m.setStateLocked(j, StateRecovering)
		ev := jobEventLocked(j)
		m.jobs[man.ID] = j
		m.order = append(m.order, man.ID)
		m.pending = append(m.pending, man.ID)
		m.mu.Unlock()
		resumed++
		m.publish(KindJobRecovering, man.ID, ev)
		m.log.Info("recovered interrupted job", "job", man.ID, "points", len(pts))
	}
	if resumed > 0 {
		m.wake()
	}
	return resumed, nil
}

// Close drains the manager: admission stops, the running job's context is
// cancelled so in-flight points finish and checkpoint, and the executor
// exits. An interrupted job's manifest stays non-terminal, so the next
// process's Recover resumes it. The context bounds the wait.
func (m *Manager) Close(ctx context.Context) error {
	m.draining.Store(true)
	m.stop()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain deadline exceeded: %w", ctx.Err())
	}
}

// wake nudges the executor without blocking.
func (m *Manager) wake() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// runLoop is the executor: jobs run one at a time (the per-point worker
// pool inside each job is the concurrency knob) until Close.
func (m *Manager) runLoop() {
	defer m.wg.Done()
	for {
		j := m.next()
		if j == nil {
			return
		}
		m.runJob(j)
	}
}

// next blocks until a job is pending or the manager closes.
func (m *Manager) next() *job {
	for {
		m.mu.Lock()
		if len(m.pending) > 0 {
			id := m.pending[0]
			m.pending = m.pending[1:]
			j := m.jobs[id]
			m.mu.Unlock()
			if j != nil {
				return j
			}
			continue
		}
		m.mu.Unlock()
		select {
		case <-m.ctx.Done():
			return nil
		case <-m.kick:
		}
	}
}

// setStateLocked transitions a job and persists its manifest. Caller
// holds mu; manifest-write failures are logged, not fatal (the in-memory
// state machine continues — durability is degraded, not correctness).
func (m *Manager) setStateLocked(j *job, s State) {
	j.man.State = s
	j.man.Updated = time.Now().UTC()
	if err := m.writeManifestLocked(j); err != nil {
		m.log.Error("persisting job manifest", "job", j.man.ID, "state", s, "err", err)
	}
}

// writeManifestLocked atomically persists the manifest (temp + rename, so
// a crash never leaves a half-written manifest). Caller holds mu.
func (m *Manager) writeManifestLocked(j *job) error {
	data, err := json.MarshalIndent(j.man, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: encoding manifest: %w", err)
	}
	path := m.manifestPath(j.man.ID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("jobs: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: committing manifest: %w", err)
	}
	return nil
}

// runJob executes one job to a terminal state — or to interruption by
// drain, in which case the manifest deliberately stays non-terminal for
// the next process to recover.
func (m *Manager) runJob(j *job) {
	m.mu.Lock()
	id := j.man.ID
	if j.man.State.Terminal() {
		m.mu.Unlock()
		return
	}
	if j.cancelled {
		m.mu.Unlock()
		m.finalize(j, m.log.With("job", id), nil)
		return
	}
	jctx, cancel := context.WithCancel(m.ctx)
	j.cancel = cancel
	m.mu.Unlock()
	defer cancel()

	log := m.log.With("job", id)

	// Replay the checkpoint: every point whose content hash is already
	// recorded is completed without re-simulating.
	recs, err := ReadCheckpoint(m.ckptPath(id), log)
	if err != nil {
		m.finalize(j, log, fmt.Errorf("replaying checkpoint: %w", err))
		return
	}
	byKey := make(map[string]PointResult, len(recs))
	for _, r := range recs {
		byKey[r.Key] = r
	}
	var replayed []PointOutcome
	m.mu.Lock()
	for _, p := range j.points {
		if _, ok := j.done[p.id]; ok {
			continue
		}
		if r, ok := byKey[p.key.String()]; ok {
			r.FromCheckpoint = true
			j.done[p.id] = r
			j.resumed++
			// Rebind the outcome log at the persisted index: the SSE event
			// IDs this process emits for replayed points match the ones the
			// previous process emitted, which is what makes Last-Event-ID
			// resume exact across a crash.
			j.bindLogEntryLocked(outcomeFromRecord(r), r.Seq)
		}
	}
	j.finishLogRebuildLocked()
	replayed = append(replayed, j.outcomeLog...)
	j.started = true // from here on, finalize's JobEnd has a JobStart to pair with
	m.setStateLocked(j, StateRunning)
	startView := j.view(false)
	startEv := jobEventLocked(j)
	m.mu.Unlock()

	for range replayed {
		m.point(id, PointResumed)
	}
	if h := m.opt.Hooks.JobStart; h != nil {
		h(startView)
	}
	m.publish(KindJobStart, id, startEv)
	for _, e := range replayed {
		m.publish(KindPointResumed, id, e)
	}
	log.Info("job starting", "points", startView.TotalPoints,
		"resumed", startView.ResumedPoints, "workers", m.opt.PointWorkers)

	ckpt, err := OpenCheckpoint(m.ckptPath(id))
	if err != nil {
		m.finalize(j, log, err)
		return
	}
	defer ckpt.Close()

	// Round-based retry: each round runs every pending point through the
	// fault-isolated sweep runner; transient failures with attempts and
	// budget to spare retry next round after an exponential, jittered
	// backoff. Retries therefore back off in lockstep per round — the
	// delay for round r is Backoff.Delay(r).
	attempts := make(map[string]int)
	var pending []point
	for _, p := range j.points {
		if _, ok := j.done[p.id]; !ok {
			pending = append(pending, p)
		}
	}
	interrupted := false
	for round := 0; len(pending) > 0 && !interrupted; round++ {
		if round > 0 {
			d := m.opt.Backoff.Delay(round-1, nil)
			m.publish(KindJobBackoff, id, BackoffEvent{
				Round: round, DelayMS: d.Milliseconds(), Pending: len(pending),
			})
			if err := sleepCtx(jctx, d); err != nil {
				break
			}
		}
		pending = m.runRound(jctx, j, ckpt, log, pending, attempts)
		interrupted = jctx.Err() != nil
	}
	m.finalize(j, log, nil)
}

// runRound executes one batch of pending points and returns the points to
// retry next round.
func (m *Manager) runRound(jctx context.Context, j *job, ckpt *Checkpoint, log *slog.Logger,
	pts []point, attempts map[string]int) []point {

	id := j.man.ID
	var prMu sync.Mutex
	prs := make(map[string]PointResult, len(pts))
	// This round's attempt numbers, frozen before any worker starts. The
	// fault hook and the point bodies run on worker goroutines — and, for
	// a point the per-point timeout abandoned, possibly after the round
	// ends — so they must never read the mutable attempts map.
	tries := make(map[string]int, len(pts))
	for _, p := range pts {
		tries[p.id] = attempts[p.id] + 1
	}
	exps := make([]sweep.Experiment, 0, len(pts))
	for _, p := range pts {
		p := p
		try := tries[p.id]
		exps = append(exps, sweep.Experiment{
			ID:    p.id,
			Title: p.id,
			Run: func(ctx context.Context) (*sweep.Result, error) {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				start := time.Now()
				pr, err := p.run(ctx)
				if err != nil {
					return nil, err
				}
				pr.Attempts = try
				pr.ElapsedS = time.Since(start).Seconds()
				// Reserve the outcome-log slot before the checkpoint write so
				// the persisted Seq always equals the index any subscriber
				// saw; a stale attempt of an already-logged point (abandoned
				// by the per-point timeout, completing after its retry) reuses
				// the first index and publishes nothing.
				m.mu.Lock()
				entry, fresh := j.logOutcomeLocked(PointOutcome{
					Point: p.id, Outcome: PointOK, Cycles: pr.Cycles,
					Valid: pr.Valid, Attempts: try, ElapsedS: pr.ElapsedS,
				})
				m.mu.Unlock()
				pr.Seq = entry.Index
				// Checkpoint here, not after the round: the record must hit
				// disk the moment the point completes, so a hard kill
				// mid-round loses only in-flight points, never finished ones.
				if err := ckpt.Append(pr); err != nil {
					// The result survives in memory; only durability of this
					// one point is lost. Keep going.
					log.Error("appending checkpoint record", "point", p.id, "err", err)
				}
				prMu.Lock()
				prs[p.id] = pr
				prMu.Unlock()
				if fresh {
					m.publish(KindPointOK, id, entry)
					m.publish(KindCkptAppend, id, CkptEvent{Point: p.id, Seq: entry.Index})
				}
				return nil, nil
			},
		})
	}
	opt := sweep.Options{
		Workers:  m.opt.PointWorkers,
		Timeout:  m.opt.PointTimeout,
		Context:  jctx,
		Events:   m.opt.Events,
		EventJob: id,
	}
	if inject := m.opt.InjectFault; inject != nil {
		opt.InjectFault = func(pointID string) error {
			return inject(id, pointID, tries[pointID])
		}
	}
	sum := sweep.RunAll(exps, opt)

	// Snapshot the round's results under the lock: a point abandoned by
	// the per-point timeout still has its goroutine running and may write
	// prs after RunAll returns. Every point that finished in time is
	// already in the map.
	prMu.Lock()
	completed := make(map[string]PointResult, len(prs))
	for pid, pr := range prs {
		completed[pid] = pr
	}
	prMu.Unlock()

	maxAttempts := j.maxAttempts()
	budget := j.retryBudget()
	var retry []point
	for i, o := range sum.Outcomes {
		p := pts[i]
		try := tries[p.id]
		if o.Err == nil {
			pr := completed[p.id]
			attempts[p.id] = try
			m.mu.Lock()
			j.done[p.id] = pr
			m.mu.Unlock()
			m.point(id, PointOK)
			continue
		}
		if jctx.Err() != nil {
			// Cancelled or draining: the unfinished points stay pending
			// for recovery; they are neither failed nor retried.
			continue
		}
		attempts[p.id] = try
		m.mu.Lock()
		canRetry := retryableErr(o.Err) && try < maxAttempts && j.retries < budget
		if canRetry {
			j.retries++
		}
		m.mu.Unlock()
		if canRetry {
			log.Warn("point failed, will retry", "point", p.id, "attempt", try, "err", o.Err)
			m.point(id, PointRetry)
			m.publish(KindPointRetry, id, PointOutcome{
				Point: p.id, Outcome: PointRetry, Attempts: try, Error: o.Err.Error(),
			})
			retry = append(retry, p)
			continue
		}
		log.Error("point failed terminally", "point", p.id, "attempts", try, "err", o.Err)
		m.mu.Lock()
		j.man.FailedPoints = append(j.man.FailedPoints, FailedPoint{
			Point:    p.id,
			Error:    o.Err.Error(),
			Attempts: try,
		})
		entry, fresh := j.logOutcomeLocked(PointOutcome{
			Point: p.id, Outcome: PointFailed, Attempts: try, Error: o.Err.Error(),
		})
		m.mu.Unlock()
		m.point(id, PointFailed)
		if fresh {
			m.publish(KindPointFailed, id, entry)
		}
	}
	return retry
}

// finalize settles the job's terminal state — or deliberately leaves it
// non-terminal when the manager is draining, so the next process recovers
// and resumes it. Every terminal transition in the manager goes through
// here, and the first caller wins: JobEnd fires exactly once per job.
func (m *Manager) finalize(j *job, log *slog.Logger, fatal error) {
	m.mu.Lock()
	if j.man.State.Terminal() {
		// Already finalized (a queued-job Cancel racing the executor);
		// the transition and its JobEnd fired elsewhere.
		m.mu.Unlock()
		return
	}
	j.cancel = nil
	switch {
	case fatal != nil:
		j.man.Error = fatal.Error()
		m.setStateLocked(j, StateFailed)
	case j.cancelled:
		m.setStateLocked(j, StateCancelled)
	case m.ctx.Err() != nil:
		// Drain interrupt: keep the manifest non-terminal (running) so
		// recovery resumes it. Completed points are already checkpointed.
		m.setStateLocked(j, StateRunning)
		done := len(j.done)
		total := j.man.TotalPoints
		m.mu.Unlock()
		log.Info("job interrupted by drain; checkpointed for recovery",
			"done", done, "total", total)
		return
	case len(j.man.FailedPoints) > 0:
		j.man.Error = fmt.Sprintf("%d of %d points failed", len(j.man.FailedPoints), j.man.TotalPoints)
		m.setStateLocked(j, StateFailed)
	default:
		m.setStateLocked(j, StateDone)
	}
	v := j.view(false)
	ev := jobEventLocked(j)
	m.mu.Unlock()
	if h := m.opt.Hooks.JobEnd; h != nil {
		h(v)
	}
	m.publish(KindJobEnd, v.ID, ev)
	log.Info("job finished", "state", v.State, "completed", v.CompletedPoints,
		"failed", len(v.FailedPoints), "retries", v.RetriesUsed, "resumed", v.ResumedPoints)
}

// point invokes the per-point hook.
func (m *Manager) point(jobID, outcome string) {
	if h := m.opt.Hooks.Point; h != nil {
		h(jobID, outcome)
	}
}

// retryableErr classifies a point failure: timeouts and machine checks
// are transient (a wedged or crashed worker — the very failures this
// subsystem exists to absorb), as is anything unrecognized (injected
// faults, infrastructure errors); bounded attempts make that default
// harmless. A watchdog deadlock is a deterministic property of the
// simulated machine and never retried.
func retryableErr(err error) bool {
	var dl *core.DeadlockError
	return !errors.As(err, &dl)
}
