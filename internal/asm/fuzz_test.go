package asm

import "testing"

// FuzzAssemble checks the assembler never panics and that accepted programs
// disassemble without error.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"halt\n",
		"li r1, 5\nadd r2, r1, r1\nhalt\n",
		"x: setb b0, x\npbr al, r0, b0, 0\nhalt\n",
		"ld 4(r2)\nst -4(r3)\nmov r7, r1\nhalt\n",
		".data\nw: .word 1,2\nf: .float 1.5\n",
		"bank\nhalt\n",
		"li r1, 0x7FFF\nlui r2, 0xF\nhalt\n",
		"bogus operands here\n",
		"add r1 r2 r3\n",
		": :\n",
		"la r1, missing\nhalt\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		img, err := Assemble(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		_ = img.Disassemble()
	})
}
