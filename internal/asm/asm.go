// Package asm implements a small two-pass assembler for PIPE assembly text.
// It exists so that users of the library (and the cmd/pipeasm tool and the
// examples) can write workloads by hand instead of through the programmatic
// Builder API.
//
// Syntax overview (case-insensitive mnemonics, ';', '#' or '//' comments):
//
//	        .text                 ; section directives (text is default)
//	start:  li    r1, 100         ; labels end with ':'
//	        la    r2, vec         ; pseudo: load 20-bit address (LUI+ORI)
//	        setb  b0, loop        ; branch registers are b0..b7
//	loop:   ld    8(r2)           ; load from offset(base) -> LAQ
//	        add   r3, r7, r3      ; r7 pops the load data queue
//	        addi  r1, r1, -1
//	        pbr   ne, r1, b0, 2   ; cond, tested reg, branch reg, delay slots
//	        addi  r2, r2, 4       ; delay slot 1
//	        nop                   ; delay slot 2
//	        bank                  ; exchange foreground/background registers
//	        halt
//	        .data
//	vec:    .word 1, 2, 3, 0x10
//	fs:     .float 1.5, -2.25
//	        .space 16             ; 16 zero words
//
// Label operands may carry a +offset or -offset suffix (e.g. "vec+8").
//
// The assembler predefines symbols for the memory-mapped FPU so kernels can
// write `la r1, FPU_A` instead of building the address by hand: FPU_A (the
// operand-A latch), FPU_MUL, FPU_ADD, FPU_SUB and FPU_DIV (the operand-B
// trigger addresses). These names are reserved; defining them as labels is
// an error.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"pipesim/internal/isa"
	"pipesim/internal/program"
)

// Error describes an assembly error at a source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

// ErrorList is the set of errors found in one Assemble call.
type ErrorList []*Error

func (el ErrorList) Error() string {
	if len(el) == 1 {
		return el[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", el[0], len(el)-1)
}

type assembler struct {
	b      *program.Builder
	errs   ErrorList
	inData bool
	line   int
}

// predefined are the reserved symbols every program can reference.
var predefined = map[string]uint32{
	"FPU_A":   program.FPUBase + 0,
	"FPU_MUL": program.FPUBase + 4,
	"FPU_ADD": program.FPUBase + 8,
	"FPU_SUB": program.FPUBase + 12,
	"FPU_DIV": program.FPUBase + 16,
}

// Assemble translates PIPE assembly source into a linked program image.
func Assemble(src string) (*program.Image, error) {
	a := &assembler{b: program.NewBuilder()}
	for name, addr := range predefined {
		a.b.DefineSymbol(name, addr)
	}
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		a.doLine(raw)
	}
	if len(a.errs) > 0 {
		return nil, a.errs
	}
	img, err := a.b.Link()
	if err != nil {
		return nil, err
	}
	return img, nil
}

func (a *assembler) errf(format string, args ...any) {
	a.errs = append(a.errs, &Error{Line: a.line, Msg: fmt.Sprintf(format, args...)})
}

func stripComment(s string) string {
	for _, marker := range []string{";", "#", "//"} {
		if i := strings.Index(s, marker); i >= 0 {
			s = s[:i]
		}
	}
	return s
}

func (a *assembler) doLine(raw string) {
	s := strings.TrimSpace(stripComment(raw))
	if s == "" {
		return
	}
	// Labels: one or more "name:" prefixes.
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		name := strings.TrimSpace(s[:i])
		if !isIdent(name) {
			a.errf("invalid label %q", name)
			return
		}
		if a.inData {
			a.b.DataLabel(name)
		} else {
			a.b.Label(name)
		}
		s = strings.TrimSpace(s[i+1:])
	}
	if s == "" {
		return
	}
	fields := strings.SplitN(s, " ", 2)
	mnem := strings.ToUpper(fields[0])
	var rest string
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	if strings.HasPrefix(mnem, ".") {
		a.directive(mnem, rest)
		return
	}
	if a.inData {
		a.errf("instruction %s in .data section", mnem)
		return
	}
	a.instruction(mnem, rest)
}

func (a *assembler) directive(name, rest string) {
	switch name {
	case ".TEXT":
		a.inData = false
	case ".DATA":
		a.inData = true
	case ".WORD":
		if !a.inData {
			a.errf(".word outside .data section")
			return
		}
		for _, f := range splitOperands(rest) {
			v, err := parseInt(f)
			if err != nil {
				a.errf(".word operand %q: %v", f, err)
				return
			}
			a.b.Word(uint32(v))
		}
	case ".FLOAT":
		if !a.inData {
			a.errf(".float outside .data section")
			return
		}
		for _, f := range splitOperands(rest) {
			v, err := strconv.ParseFloat(f, 32)
			if err != nil {
				a.errf(".float operand %q: %v", f, err)
				return
			}
			a.b.Float(float32(v))
		}
	case ".SPACE":
		if !a.inData {
			a.errf(".space outside .data section")
			return
		}
		n, err := parseInt(rest)
		if err != nil || n < 0 {
			a.errf(".space wants a non-negative word count, got %q", rest)
			return
		}
		a.b.Space(int(n))
	default:
		a.errf("unknown directive %s", name)
	}
}

var r3ops = map[string]isa.Opcode{
	"ADD": isa.OpADD, "SUB": isa.OpSUB, "AND": isa.OpAND, "OR": isa.OpOR,
	"XOR": isa.OpXOR, "SLL": isa.OpSLL, "SRL": isa.OpSRL, "SRA": isa.OpSRA,
}

var riops = map[string]isa.Opcode{
	"ADDI": isa.OpADDI, "ANDI": isa.OpANDI, "ORI": isa.OpORI, "XORI": isa.OpXORI,
	"SLLI": isa.OpSLLI, "SRLI": isa.OpSRLI, "SRAI": isa.OpSRAI,
}

var condsByName = map[string]isa.Cond{
	"AL": isa.CondAL, "EQ": isa.CondEQ, "NE": isa.CondNE,
	"LT": isa.CondLT, "GE": isa.CondGE, "GT": isa.CondGT, "LE": isa.CondLE,
}

func (a *assembler) instruction(mnem, rest string) {
	ops := splitOperands(rest)
	switch {
	case mnem == "NOP":
		a.need(ops, 0) // emits even on arity error to keep addresses stable
		a.b.Nop()
	case mnem == "HALT":
		a.need(ops, 0)
		a.b.Halt()
	case mnem == "BANK":
		a.need(ops, 0)
		a.b.Emit(isa.Inst{Op: isa.OpBANK})
	case r3ops[mnem] != 0:
		if !a.need(ops, 3) {
			return
		}
		rd, ok1 := a.dataReg(ops[0])
		ra, ok2 := a.dataReg(ops[1])
		rb, ok3 := a.dataReg(ops[2])
		if ok1 && ok2 && ok3 {
			a.b.R3(r3ops[mnem], rd, ra, rb)
		}
	case riops[mnem] != 0:
		if !a.need(ops, 3) {
			return
		}
		rd, ok1 := a.dataReg(ops[0])
		ra, ok2 := a.dataReg(ops[1])
		imm, ok3 := a.imm16(ops[2])
		if ok1 && ok2 && ok3 {
			a.b.RI(riops[mnem], rd, ra, imm)
		}
	case mnem == "LI" || mnem == "LUI":
		if !a.need(ops, 2) {
			return
		}
		rd, ok1 := a.dataReg(ops[0])
		imm, ok2 := a.imm16(ops[1])
		if ok1 && ok2 {
			op := isa.OpLI
			if mnem == "LUI" {
				op = isa.OpLUI
			}
			a.b.RI(op, rd, 0, imm)
		}
	case mnem == "MOV":
		if !a.need(ops, 2) {
			return
		}
		rd, ok1 := a.dataReg(ops[0])
		ra, ok2 := a.dataReg(ops[1])
		if ok1 && ok2 {
			a.b.Mov(rd, ra)
		}
	case mnem == "LD" || mnem == "ST":
		if !a.need(ops, 1) {
			return
		}
		off, base, ok := a.memOperand(ops[0])
		if !ok {
			return
		}
		if mnem == "LD" {
			a.b.LD(base, off)
		} else {
			a.b.ST(base, off)
		}
	case mnem == "LA":
		if !a.need(ops, 2) {
			return
		}
		rd, ok := a.dataReg(ops[0])
		if !ok {
			return
		}
		label, off, err := parseLabelRef(ops[1])
		if err != nil {
			a.errf("LA: %v", err)
			// keep two-slot width so labels stay aligned
			a.b.Nop()
			a.b.Nop()
			return
		}
		a.b.LA(rd, label, off)
	case mnem == "SETB":
		if !a.need(ops, 2) {
			return
		}
		bn, ok := a.branchReg(ops[0])
		if !ok {
			return
		}
		if v, err := parseInt(ops[1]); err == nil {
			a.b.SetBAddr(bn, uint32(v))
			return
		}
		label, off, err := parseLabelRef(ops[1])
		if err != nil {
			a.errf("SETB: %v", err)
			return
		}
		a.b.SetB(bn, label, off)
	case mnem == "SETBR":
		if !a.need(ops, 2) {
			return
		}
		bn, ok1 := a.branchReg(ops[0])
		ra, ok2 := a.dataReg(ops[1])
		if ok1 && ok2 {
			a.b.Emit(isa.Inst{Op: isa.OpSETBR, Bn: bn, Ra: ra})
		}
	case mnem == "PBR":
		if !a.need(ops, 4) {
			return
		}
		cond, okc := condsByName[strings.ToUpper(ops[0])]
		if !okc {
			a.errf("PBR: unknown condition %q", ops[0])
			return
		}
		ra, ok1 := a.dataReg(ops[1])
		bn, ok2 := a.branchReg(ops[2])
		n, err := parseInt(ops[3])
		if err != nil || n < 0 || n > isa.MaxDelaySlots {
			a.errf("PBR: delay-slot count %q out of range 0..%d", ops[3], isa.MaxDelaySlots)
			return
		}
		if ok1 && ok2 {
			a.b.PBR(cond, ra, bn, uint8(n))
		}
	default:
		a.errf("unknown mnemonic %s", mnem)
	}
}

func (a *assembler) need(ops []string, n int) bool {
	if len(ops) != n {
		a.errf("want %d operand(s), got %d", n, len(ops))
		return false
	}
	return true
}

func (a *assembler) dataReg(s string) (uint8, bool) {
	s = strings.ToLower(strings.TrimSpace(s))
	if len(s) == 2 && s[0] == 'r' && s[1] >= '0' && s[1] <= '7' {
		return s[1] - '0', true
	}
	a.errf("invalid data register %q (want r0..r7)", s)
	return 0, false
}

func (a *assembler) branchReg(s string) (uint8, bool) {
	s = strings.ToLower(strings.TrimSpace(s))
	if len(s) == 2 && s[0] == 'b' && s[1] >= '0' && s[1] <= '7' {
		return s[1] - '0', true
	}
	a.errf("invalid branch register %q (want b0..b7)", s)
	return 0, false
}

func (a *assembler) imm16(s string) (int32, bool) {
	v, err := parseInt(s)
	if err != nil {
		a.errf("invalid immediate %q", s)
		return 0, false
	}
	if v < -0x8000 || v > 0xFFFF {
		a.errf("immediate %d out of range", v)
		return 0, false
	}
	if v > 0x7FFF { // allow unsigned 16-bit spellings like 0xFFFF
		v = int64(int16(v))
	}
	return int32(v), true
}

// memOperand parses "offset(rN)" or "(rN)".
func (a *assembler) memOperand(s string) (off int32, base uint8, ok bool) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		a.errf("invalid memory operand %q (want offset(rN))", s)
		return 0, 0, false
	}
	offStr := strings.TrimSpace(s[:open])
	var v int64
	if offStr != "" {
		var err error
		v, err = parseInt(offStr)
		if err != nil || v < -0x8000 || v > 0x7FFF {
			a.errf("invalid memory offset %q", offStr)
			return 0, 0, false
		}
	}
	base, ok = a.dataReg(s[open+1 : len(s)-1])
	return int32(v), base, ok
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseInt(s string) (int64, error) {
	return strconv.ParseInt(strings.TrimSpace(s), 0, 64)
}

// parseLabelRef parses "name", "name+N" or "name-N".
func parseLabelRef(s string) (label string, off int32, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", 0, fmt.Errorf("empty label reference")
	}
	sep := strings.IndexAny(s[1:], "+-")
	if sep >= 0 {
		sep++ // index into s
		v, perr := parseInt(s[sep:])
		if perr != nil {
			return "", 0, fmt.Errorf("bad label offset in %q", s)
		}
		label, off = s[:sep], int32(v)
	} else {
		label = s
	}
	if !isIdent(label) {
		return "", 0, fmt.Errorf("invalid label %q", label)
	}
	return label, off, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
