package asm

import (
	"math"
	"strings"
	"testing"

	"pipesim/internal/isa"
	"pipesim/internal/program"
)

func mustAssemble(t *testing.T, src string) *program.Image {
	t.Helper()
	img, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return img
}

func TestAssembleSmallProgram(t *testing.T) {
	img := mustAssemble(t, `
        ; a tiny loop
start:  li    r1, 3
        setb  b0, loop
loop:   addi  r1, r1, -1
        pbr   ne, r1, b0, 0
        halt
`)
	if len(img.Text) != 5 {
		t.Fatalf("text len = %d, want 5", len(img.Text))
	}
	in := isa.Decode(img.Text[3])
	if in.Op != isa.OpPBR || in.Cond != isa.CondNE || in.Ra != 1 || in.Bn != 0 || in.N != 0 {
		t.Errorf("PBR decoded as %v", in)
	}
	setb := isa.Decode(img.Text[1])
	if loopAddr, _ := img.Lookup("loop"); uint32(setb.Imm) != loopAddr {
		t.Errorf("SETB target = %#x, want %#x", setb.Imm, loopAddr)
	}
}

func TestAssembleAllMnemonics(t *testing.T) {
	img := mustAssemble(t, `
        add  r1, r2, r3
        sub  r1, r2, r3
        and  r1, r2, r3
        or   r1, r2, r3
        xor  r1, r2, r3
        sll  r1, r2, r3
        srl  r1, r2, r3
        sra  r1, r2, r3
        addi r1, r2, -5
        andi r1, r2, 0xff
        ori  r1, r2, 1
        xori r1, r2, 2
        slli r1, r2, 3
        srli r1, r2, 4
        srai r1, r2, 5
        li   r6, -100
        lui  r6, 0x7
        mov  r5, r4
        ld   12(r2)
        ld   (r3)
        st   -4(r2)
        la   r2, buf
        setb b3, 0x100
        setbr b4, r5
        pbr  al, r0, b3, 7
        nop
        halt
        .data
buf:    .word 1
`)
	wantOps := []isa.Opcode{
		isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpSLL, isa.OpSRL, isa.OpSRA,
		isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI, isa.OpSLLI, isa.OpSRLI, isa.OpSRAI,
		isa.OpLI, isa.OpLUI, isa.OpADDI, // mov = addi
		isa.OpLD, isa.OpLD, isa.OpST,
		isa.OpLUI, isa.OpORI, // la = lui+ori
		isa.OpSETB, isa.OpSETBR, isa.OpPBR, isa.OpNOP, isa.OpHALT,
	}
	if len(img.Text) != len(wantOps) {
		t.Fatalf("text len = %d, want %d", len(img.Text), len(wantOps))
	}
	for i, want := range wantOps {
		if got := isa.Decode(img.Text[i]).Op; got != want {
			t.Errorf("inst %d op = %s, want %s", i, got, want)
		}
	}
}

func TestAssembleDataSection(t *testing.T) {
	img := mustAssemble(t, `
        halt
        .data
ints:   .word 1, 2, 0x10
f:      .float 2.5
        .space 2
after:  .word 9
`)
	want := []uint32{1, 2, 16, math.Float32bits(2.5), 0, 0, 9}
	if len(img.Data) != len(want) {
		t.Fatalf("data len = %d, want %d", len(img.Data), len(want))
	}
	for i, w := range want {
		if img.Data[i] != w {
			t.Errorf("data[%d] = %#x, want %#x", i, img.Data[i], w)
		}
	}
	if a, _ := img.Lookup("after"); a != program.DataBase+6*4 {
		t.Errorf("after = %#x", a)
	}
}

func TestAssembleLabelWithOffset(t *testing.T) {
	img := mustAssemble(t, `
        setb b0, tgt+8
        setb b1, tgt-4
tgt:    nop
        halt
`)
	tgt, _ := img.Lookup("tgt")
	if in := isa.Decode(img.Text[0]); uint32(in.Imm) != tgt+8 {
		t.Errorf("tgt+8 = %#x, want %#x", in.Imm, tgt+8)
	}
	if in := isa.Decode(img.Text[1]); uint32(in.Imm) != tgt-4 {
		t.Errorf("tgt-4 = %#x, want %#x", in.Imm, tgt-4)
	}
}

func TestAssembleComments(t *testing.T) {
	img := mustAssemble(t, `
        li r1, 1   ; semicolon
        li r2, 2   # hash
        li r3, 3   // slashes
        halt
`)
	if len(img.Text) != 4 {
		t.Fatalf("text len = %d, want 4", len(img.Text))
	}
}

func TestAssembleMultipleLabelsOneLine(t *testing.T) {
	img := mustAssemble(t, "a: b: halt\n")
	aa, _ := img.Lookup("a")
	bb, _ := img.Lookup("b")
	if aa != bb {
		t.Errorf("a=%#x b=%#x, want equal", aa, bb)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"frob r1, r2\nhalt\n", "unknown mnemonic"},
		{"add r1, r2\nhalt\n", "want 3 operand"},
		{"add r1, r2, r9\nhalt\n", "invalid data register"},
		{"li r1, 99999\nhalt\n", "out of range"},
		{"ld r1\nhalt\n", "invalid memory operand"},
		{"pbr zz, r1, b0, 0\nhalt\n", "unknown condition"},
		{"pbr ne, r1, b0, 9\nhalt\n", "out of range"},
		{"setb x0, loop\nhalt\n", "invalid branch register"},
		{".word 5\nhalt\n", ".word outside .data"},
		{".bogus\nhalt\n", "unknown directive"},
		{"9lbl: halt\n", "invalid label"},
		{"setb b0, missing\nhalt\n", "missing"},
		{"halt\n.data\nx: add r1, r2, r3\n", "in .data section"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Assemble(%q) error = %v, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestErrorListReportsLineNumbers(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus1\nnop\nbogus2\n halt\n")
	el, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if len(el) != 2 || el[0].Line != 3 || el[1].Line != 5 {
		t.Fatalf("errors = %v", el)
	}
	if !strings.Contains(el.Error(), "1 more error") {
		t.Errorf("ErrorList.Error() = %q", el.Error())
	}
}

func TestAssembleUnsignedImmediateSpelling(t *testing.T) {
	img := mustAssemble(t, "andi r1, r2, 0xFFFF\nhalt\n")
	in := isa.Decode(img.Text[0])
	if in.Imm != -1 {
		t.Errorf("0xFFFF immediate decodes to %d, want -1 (same bits)", in.Imm)
	}
}

func TestAssembleEmptySource(t *testing.T) {
	if _, err := Assemble("; nothing\n"); err == nil {
		t.Fatal("empty program assembled without error")
	}
}

func TestPredefinedFPUSymbols(t *testing.T) {
	img := mustAssemble(t, `
        la   r1, FPU_A
        la   r2, FPU_MUL
        halt
`)
	lui := isa.Decode(img.Text[0])
	ori := isa.Decode(img.Text[1])
	got := uint32(lui.Imm)<<16 | uint32(ori.Imm)&0xFFFF
	if got != program.FPUBase {
		t.Errorf("FPU_A resolves to %#x, want %#x", got, program.FPUBase)
	}
	lui2 := isa.Decode(img.Text[2])
	ori2 := isa.Decode(img.Text[3])
	got2 := uint32(lui2.Imm)<<16 | uint32(ori2.Imm)&0xFFFF
	if got2 != program.FPUBase+4 {
		t.Errorf("FPU_MUL resolves to %#x, want %#x", got2, program.FPUBase+4)
	}
	// Reserved names cannot be redefined.
	if _, err := Assemble("FPU_A: halt\n"); err == nil {
		t.Error("redefining FPU_A succeeded")
	}
}
