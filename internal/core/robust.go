package core

// This file is the robustness layer: the machine-check error path and the
// forward-progress watchdog. Together they make Simulator.Run total —
// internal inconsistencies (panics escaping the substrates) and silent
// deadlocks surface as structured, diagnosable errors instead of crashing
// the caller or burning cycles until MaxCycles.

import (
	"fmt"
	"strings"

	"pipesim/internal/obs"
	"pipesim/internal/trace"
)

// RetireTraceDepth is how many recently retired instructions the simulator
// keeps for machine-check and deadlock diagnostics.
const RetireTraceDepth = 32

// DefaultWatchdogCycles is the forward-progress watchdog window used when
// Config.WatchdogCycles is zero: the longest a run may go without retiring
// an instruction before it is declared deadlocked. It is far above any
// legitimate stall (the worst validated memory configuration drains its
// request queues in well under a quarter of this) yet far below the
// MaxCycles runaway guard, so deadlocks are reported in seconds, not hours.
const DefaultWatchdogCycles = 1_000_000

// DefaultMaxCycles is the runaway-run guard used when Config.MaxCycles is
// zero. Exported so result memoization (internal/runcache) can canonicalize
// configurations: a zero and an explicit default are the same machine.
const DefaultMaxCycles = 500_000_000

// MachineCheckError reports a simulator bug: a panic escaped the internal
// packages during Run. It carries enough context — cycle, PC, strategy, the
// offending configuration and the tail of the retirement trace — to
// reproduce and diagnose the fault without a debugger. Callers sweeping
// many configurations can log it and move on; the process never crashes.
type MachineCheckError struct {
	PanicValue   any           // the recovered panic value
	Stack        string        // goroutine stack captured at the recovery point
	Cycle        uint64        // cycle during which the panic escaped
	PC           uint32        // PC of the most recently retired instruction
	Instructions uint64        // instructions retired before the fault
	Strategy     string        // fetch strategy name
	Config       Config        // the offending configuration
	Trace        []trace.Event // recently retired instructions, oldest first
	Recent       []obs.Event   // flight-recorder tail: recent probe events, oldest first
}

// Error summarizes the machine check in one line.
func (e *MachineCheckError) Error() string {
	return fmt.Sprintf("core: machine check at cycle %d (pc %#05x, %d retired, strategy %s): %v",
		e.Cycle, e.PC, e.Instructions, e.Strategy, e.PanicValue)
}

// Detail renders the full diagnostic report: the summary line, the retained
// retirement trace and the capture-point stack.
func (e *MachineCheckError) Detail() string {
	var sb strings.Builder
	sb.WriteString(e.Error())
	sb.WriteString("\nconfig: ")
	fmt.Fprintf(&sb, "%+v", e.Config)
	if len(e.Trace) > 0 {
		fmt.Fprintf(&sb, "\nlast %d retired instructions:\n", len(e.Trace))
		for _, ev := range e.Trace {
			sb.WriteString("  ")
			sb.WriteString(ev.String())
			sb.WriteByte('\n')
		}
	}
	writeRecent(&sb, e.Recent)
	if e.Stack != "" {
		sb.WriteString("stack:\n")
		sb.WriteString(e.Stack)
	}
	return sb.String()
}

// flightDetailTail caps how much of the flight-recorder snapshot a Detail
// report prints: the full ring (default 256 entries) belongs in the JSON /
// Chrome-trace surfaces, not a terminal dump.
const flightDetailTail = 32

// writeRecent renders the tail of the flight-recorder snapshot.
func writeRecent(sb *strings.Builder, recent []obs.Event) {
	if len(recent) == 0 {
		return
	}
	tail := recent
	if len(tail) > flightDetailTail {
		fmt.Fprintf(sb, "flight recorder (%d earlier events omitted):\n", len(recent)-flightDetailTail)
		tail = tail[len(tail)-flightDetailTail:]
	} else {
		sb.WriteString("flight recorder:\n")
	}
	for _, ev := range tail {
		sb.WriteString("  ")
		sb.WriteString(ev.String())
		sb.WriteByte('\n')
	}
}

// DeadlockError reports that the forward-progress watchdog fired: the run
// retired no instruction for a full watchdog window, long before MaxCycles.
// The fetch-engine, CPU and memory-system state strings describe where the
// machine is stuck (e.g. an issue stall on an empty Load Data Queue with no
// load in flight).
type DeadlockError struct {
	Cycle        uint64        // cycle at which the watchdog fired
	LastProgress uint64        // last cycle that retired an instruction (0 = never)
	Window       uint64        // the watchdog window that elapsed
	Instructions uint64        // instructions retired before the stall
	Strategy     string        // fetch strategy name
	FetchState   string        // fetch-engine occupancy and cursor state
	CPUState     string        // architectural queue occupancy and pipeline state
	MemState     string        // memory-system queue occupancy
	Trace        []trace.Event // recently retired instructions, oldest first
	Recent       []obs.Event   // flight-recorder tail: recent probe events, oldest first
}

// Error summarizes the deadlock in one line.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("core: no forward progress for %d cycles (cycle %d, last retirement at cycle %d, %d retired, strategy %s)",
		e.Window, e.Cycle, e.LastProgress, e.Instructions, e.Strategy)
}

// Detail renders the full deadlock diagnosis.
func (e *DeadlockError) Detail() string {
	var sb strings.Builder
	sb.WriteString(e.Error())
	fmt.Fprintf(&sb, "\nfetch: %s\ncpu:   %s\nmem:   %s\n", e.FetchState, e.CPUState, e.MemState)
	if len(e.Trace) > 0 {
		fmt.Fprintf(&sb, "last %d retired instructions:\n", len(e.Trace))
		for _, ev := range e.Trace {
			sb.WriteString("  ")
			sb.WriteString(ev.String())
			sb.WriteByte('\n')
		}
	}
	writeRecent(&sb, e.Recent)
	return sb.String()
}

// machineCheck wraps a recovered panic in a MachineCheckError with the
// run's current context.
func (s *Simulator) machineCheck(p any, stack []byte) *MachineCheckError {
	e := &MachineCheckError{
		PanicValue:   p,
		Stack:        string(stack),
		Cycle:        s.cycle,
		Instructions: s.st.CPU.Instructions,
		Strategy:     s.cfg.Fetch.String(),
		Config:       s.cfg,
		Trace:        s.ring.Events(),
		Recent:       s.flight.Events(),
	}
	if n := len(e.Trace); n > 0 {
		e.PC = e.Trace[n-1].PC
	}
	return e
}

// deadlock builds the watchdog's diagnosis of a stalled run.
func (s *Simulator) deadlock(cycle, lastProgress, window uint64) *DeadlockError {
	return &DeadlockError{
		Cycle:        cycle,
		LastProgress: lastProgress,
		Window:       window,
		Instructions: s.st.CPU.Instructions,
		Strategy:     s.cfg.Fetch.String(),
		FetchState:   s.eng.DebugState(),
		CPUState:     s.cpu.DebugState(),
		MemState:     s.sys.DebugState(),
		Trace:        s.ring.Events(),
		Recent:       s.flight.Events(),
	}
}
