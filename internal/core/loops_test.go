package core

// White-box tests for the retirement-stream loop tracker: SetLoopRanges
// sorts its copy of the ranges and trackLoop resolves each PC with a binary
// search, so the lookup must agree with a plain linear scan for every PC —
// inside a range, in the gaps between ranges, and at both boundary
// addresses of each range.

import (
	"testing"

	"pipesim/internal/obs"
)

// recorderProbe keeps the emitted loop-transition events in order.
type recorderProbe struct{ events []obs.Event }

func (p *recorderProbe) Event(e obs.Event) { p.events = append(p.events, e) }

// loopSim builds a bare Simulator with just the fields trackLoop touches.
func loopSim(ranges []obs.LoopRange) (*Simulator, *recorderProbe) {
	p := &recorderProbe{}
	s := &Simulator{probe: p}
	s.SetLoopRanges(ranges)
	return s, p
}

func TestSetLoopRangesSortsItsCopy(t *testing.T) {
	in := []obs.LoopRange{
		{Loop: 3, Start: 0x300, End: 0x340},
		{Loop: 1, Start: 0x100, End: 0x140},
		{Loop: 2, Start: 0x200, End: 0x240},
	}
	s, _ := loopSim(in)
	for i := 1; i < len(s.loops); i++ {
		if s.loops[i-1].Start >= s.loops[i].Start {
			t.Fatalf("ranges not sorted by Start: %+v", s.loops)
		}
	}
	// The caller's slice must be untouched (it was copied, not sorted in
	// place).
	if in[0].Loop != 3 {
		t.Error("SetLoopRanges sorted the caller's slice")
	}
	s.SetLoopRanges(nil)
	if s.loops != nil {
		t.Error("empty input should clear the ranges")
	}
}

// lookupLinear is the reference implementation: scan every range.
func lookupLinear(ranges []obs.LoopRange, pc uint32) int {
	for _, r := range ranges {
		if pc >= r.Start && pc < r.End {
			return r.Loop
		}
	}
	return 0
}

// lookup drives trackLoop once on a fresh tracker and reads back which loop
// it decided pc belongs to.
func lookup(ranges []obs.LoopRange, pc uint32) int {
	s, _ := loopSim(ranges)
	s.trackLoop(pc)
	return s.curLoop
}

func TestTrackLoopMatchesLinearScan(t *testing.T) {
	// Disjoint, deliberately unsorted, with gaps and adjacent ranges.
	ranges := []obs.LoopRange{
		{Loop: 4, Start: 0x400, End: 0x480},
		{Loop: 1, Start: 0x010, End: 0x040},
		{Loop: 3, Start: 0x240, End: 0x400}, // adjacent to loop 4
		{Loop: 2, Start: 0x100, End: 0x140},
	}
	var pcs []uint32
	for _, r := range ranges {
		pcs = append(pcs, r.Start, r.Start+4, r.End-4, r.End, r.End+4)
		if r.Start >= 4 {
			pcs = append(pcs, r.Start-4)
		}
	}
	pcs = append(pcs, 0, 0x0c, 0x1f0, 0x7fc, 0xffff_fffc)
	for _, pc := range pcs {
		want := lookupLinear(ranges, pc)
		if got := lookup(ranges, pc); got != want {
			t.Errorf("pc %#x: binary search found loop %d, linear scan %d", pc, got, want)
		}
	}
}

func TestTrackLoopEmitsTransitions(t *testing.T) {
	ranges := []obs.LoopRange{
		{Loop: 1, Start: 0x100, End: 0x140},
		{Loop: 2, Start: 0x140, End: 0x180},
	}
	s, p := loopSim(ranges)
	for _, pc := range []uint32{0x0f0, 0x100, 0x13c, 0x140, 0x180} {
		s.trackLoop(pc)
	}
	// outside → enter 1 → (stay) → exit 1 + enter 2 → exit 2.
	want := []obs.Event{
		{Kind: obs.KindLoopEnter, Arg: 1},
		{Kind: obs.KindLoopExit, Arg: 1},
		{Kind: obs.KindLoopEnter, Arg: 2},
		{Kind: obs.KindLoopExit, Arg: 2},
	}
	if len(p.events) != len(want) {
		t.Fatalf("events = %+v, want %d transitions", p.events, len(want))
	}
	for i, e := range p.events {
		if e.Kind != want[i].Kind || e.Arg != want[i].Arg {
			t.Errorf("event %d = {%v %d}, want {%v %d}", i, e.Kind, e.Arg, want[i].Kind, want[i].Arg)
		}
	}
}
