package core_test

// The skip-vs-step differential suite. Event-driven skip-ahead
// (core.Config.NoSkipAhead = false, the default) must be a pure wall-clock
// optimization: every statistic a run produces — cycle count, per-bucket
// attribution, fetch-engine counters, memory traffic, 3C miss classes —
// must be bit-identical to the same machine stepped cycle by cycle. These
// tests sweep the full Livermore benchmark and synthetic programs across
// the strategy/geometry/memory matrix and DeepEqual the complete stats.Sim
// from both paths.

import (
	"math/rand"
	"reflect"
	"testing"

	"pipesim/internal/core"
	"pipesim/internal/kernels"
	"pipesim/internal/program"
	"pipesim/internal/synth"
)

// diffConfigs is the machine matrix the suite sweeps: every fetch
// strategy, the paper's cache sizes around the knee (64/128/256 B), both
// prefetch policies, slow and fast memory, and the introspection layer
// (which must classify identically when spans are folded).
func diffConfigs() []core.Config {
	base := core.DefaultConfig()
	mk := func(mut func(*core.Config)) core.Config {
		c := base
		mut(&c)
		return c
	}
	return []core.Config{
		base, // PIPE 16-16, 128 B, 1-cycle memory
		mk(func(c *core.Config) { // the benchmark configuration
			c.TruePrefetch = true
			c.Mem.AccessTime = 6
			c.Mem.BusWidthBytes = 8
			c.Mem.InstrPriority = true
			c.Mem.FPULatency = 4
		}),
		mk(func(c *core.Config) { c.CacheBytes = 64 }),
		mk(func(c *core.Config) { // 32-32 geometry, 256 B
			c.CacheBytes = 256
			c.LineBytes = 32
			c.IQBytes = 32
			c.IQBBytes = 32
		}),
		mk(func(c *core.Config) { c.DeepPrefetch = true }),
		mk(func(c *core.Config) { c.NativeFormat = true }),
		mk(func(c *core.Config) {
			c.Fetch = core.FetchConventional
			c.Mem.AccessTime = 6
			c.Mem.BusWidthBytes = 8
		}),
		mk(func(c *core.Config) {
			c.Fetch = core.FetchConventional
			c.Mem.Pipelined = true
		}),
		mk(func(c *core.Config) {
			c.Fetch = core.FetchTIB
			c.TIBEntries = 4
			c.TIBLineBytes = 16
		}),
		mk(func(c *core.Config) { // folded spans must classify misses identically
			c.CacheIntrospect = true
			c.Mem.AccessTime = 6
			c.Mem.BusWidthBytes = 8
		}),
	}
}

// runDiff runs cfg over img stepped and skipping and returns both stats
// plus the number of cycles the skipping run elided.
func runDiff(t *testing.T, cfg core.Config, img *program.Image) (skipped uint64) {
	t.Helper()
	stepCfg := cfg
	stepCfg.NoSkipAhead = true
	stepSim, err := core.New(stepCfg, img)
	if err != nil {
		t.Fatalf("New(step): %v", err)
	}
	stepSt, err := stepSim.Run()
	if err != nil {
		t.Fatalf("Run(step): %v", err)
	}
	skipCfg := cfg
	skipCfg.NoSkipAhead = false
	skipSim, err := core.New(skipCfg, img)
	if err != nil {
		t.Fatalf("New(skip): %v", err)
	}
	skipSt, err := skipSim.Run()
	if err != nil {
		t.Fatalf("Run(skip): %v", err)
	}
	if !reflect.DeepEqual(stepSt, skipSt) {
		t.Errorf("skip-ahead changed results (%d cycles folded):\nstep %+v\nskip %+v",
			skipSim.SkippedCycles(), stepSt, skipSt)
	}
	if stepSim.SkippedCycles() != 0 {
		t.Errorf("NoSkipAhead run still folded %d cycles", stepSim.SkippedCycles())
	}
	return skipSim.SkippedCycles()
}

// TestSkipDifferentialLivermore sweeps the full Livermore benchmark (all
// 14 kernels) across the machine matrix.
func TestSkipDifferentialLivermore(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark runs")
	}
	img, _, err := kernels.Program()
	if err != nil {
		t.Fatal(err)
	}
	var folded uint64
	for i, cfg := range diffConfigs() {
		folded += runDiff(t, cfg, img)
		if t.Failed() {
			t.Fatalf("config %d (%v) diverged", i, cfg.Fetch)
		}
	}
	if folded == 0 {
		t.Error("no config folded any cycles: the suite is not exercising skip-ahead")
	}
}

// TestSkipDifferentialSynth covers program shapes the Livermore catalog
// does not: tiny loops, delay-slot extremes, store-heavy bodies and
// random control flow from pinned seeds.
func TestSkipDifferentialSynth(t *testing.T) {
	var imgs []*program.Image
	for _, spec := range []synth.LoopSpec{
		{BodyInstr: 6, Iterations: 40},
		{BodyInstr: 12, Iterations: 30, Loads: 2, DelaySlots: 3},
		{BodyInstr: 16, Iterations: 25, Loads: 2, Stores: 2, DelaySlots: 1},
		{BodyInstr: 24, Iterations: 20, Loads: 4, Stores: 3, DelaySlots: 7},
	} {
		img, err := synth.Loop(spec)
		if err != nil {
			t.Fatal(err)
		}
		imgs = append(imgs, img)
	}
	for seed := int64(1); seed <= 3; seed++ {
		img, err := synth.Random(rand.New(rand.NewSource(seed)), synth.RandomOptions{})
		if err != nil {
			t.Fatal(err)
		}
		imgs = append(imgs, img)
	}
	var folded uint64
	for i, img := range imgs {
		for j, cfg := range diffConfigs() {
			folded += runDiff(t, cfg, img)
			if t.Failed() {
				t.Fatalf("program %d, config %d diverged", i, j)
			}
		}
	}
	if folded == 0 {
		t.Error("no synth run folded any cycles: the suite is not exercising skip-ahead")
	}
}

// TestSkipDifferentialInterrupt pins the clamp semantics: an interrupt
// scheduled mid-stall must fire at the same cycle whether the run stepped
// to it or jumped to it.
func TestSkipDifferentialInterrupt(t *testing.T) {
	img, err := synth.Loop(synth.LoopSpec{BodyInstr: 12, Iterations: 50, Loads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The vector points at the loop entry; the handler contract is not
	// honored by a synthetic loop, so keep the run bounded and compare
	// whatever statistics the two paths produce — identical divergence is
	// still identity.
	for _, at := range []uint64{50, 137, 999} {
		cfg := core.DefaultConfig()
		cfg.Mem.AccessTime = 6
		cfg.Mem.BusWidthBytes = 8
		cfg.InterruptAt = at
		cfg.InterruptVector = img.Entry
		cfg.MaxCycles = 200_000
		cfg.WatchdogCycles = 50_000
		stepCfg := cfg
		stepCfg.NoSkipAhead = true
		stepSim, err := core.New(stepCfg, img)
		if err != nil {
			t.Fatal(err)
		}
		stepSt, stepErr := stepSim.Run()
		skipSim, err := core.New(cfg, img)
		if err != nil {
			t.Fatal(err)
		}
		skipSt, skipErr := skipSim.Run()
		if (stepErr == nil) != (skipErr == nil) {
			t.Fatalf("InterruptAt=%d: step err %v, skip err %v", at, stepErr, skipErr)
		}
		if stepErr != nil {
			if stepErr.Error() != skipErr.Error() {
				t.Errorf("InterruptAt=%d: error diverged:\nstep %v\nskip %v", at, stepErr, skipErr)
			}
			continue
		}
		if !reflect.DeepEqual(stepSt, skipSt) {
			t.Errorf("InterruptAt=%d: results diverged:\nstep %+v\nskip %+v", at, stepSt, skipSt)
		}
	}
}
