package core_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pipesim/internal/asm"
	"pipesim/internal/core"
	"pipesim/internal/obs"
	"pipesim/internal/program"
	"pipesim/internal/trace"
)

// saveFlightArtifact writes the flight-recorder tail as Chrome-trace JSON
// when the test fails and PIPESIM_ARTIFACT_DIR is set, so CI uploads the
// post-mortem for inspection in Perfetto.
func saveFlightArtifact(t *testing.T, name string, events []obs.Event) {
	t.Cleanup(func() {
		dir := os.Getenv("PIPESIM_ARTIFACT_DIR")
		if dir == "" || !t.Failed() {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("artifact dir: %v", err)
			return
		}
		var buf bytes.Buffer
		if err := obs.WriteFlightTrace(&buf, events); err != nil {
			t.Logf("artifact %s: %v", name, err)
			return
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Logf("artifact %s: %v", name, err)
			return
		}
		t.Logf("post-mortem artifact written to %s", path)
	})
}

// stuckProgram reads R7 with no load ever dispatched: the issue stage
// blocks forever on the empty Load Data Queue — a genuine machine-level
// deadlock (the program is wrong, not the simulator).
func stuckProgram(t *testing.T) *program.Image {
	t.Helper()
	img, err := asm.Assemble(`
        li   r1, 1
        add  r2, r7, r1
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestWatchdogReportsDeadlock(t *testing.T) {
	for _, strat := range []core.FetchStrategy{core.FetchPIPE, core.FetchConventional, core.FetchTIB} {
		t.Run(strat.String(), func(t *testing.T) {
			cfg := core.DefaultConfig()
			cfg.Fetch = strat
			cfg.TIBEntries = 4
			cfg.TIBLineBytes = 16
			cfg.WatchdogCycles = 2_000
			cfg.MaxCycles = 50_000_000
			sim, err := core.New(cfg, stuckProgram(t))
			if err != nil {
				t.Fatal(err)
			}
			_, err = sim.Run()
			var dl *core.DeadlockError
			if !errors.As(err, &dl) {
				t.Fatalf("Run err = %v, want *DeadlockError", err)
			}
			if dl.Cycle >= cfg.MaxCycles {
				t.Errorf("watchdog fired at cycle %d, not before MaxCycles", dl.Cycle)
			}
			if dl.Cycle-dl.LastProgress < cfg.WatchdogCycles {
				t.Errorf("window %d smaller than configured %d", dl.Cycle-dl.LastProgress, cfg.WatchdogCycles)
			}
			if dl.Strategy != strat.String() {
				t.Errorf("strategy = %q, want %q", dl.Strategy, strat.String())
			}
			// The diagnosis must carry machine state from every layer and
			// the retirement trace showing the LI that did retire.
			if dl.FetchState == "" || dl.CPUState == "" || dl.MemState == "" {
				t.Errorf("incomplete diagnosis: %+v", dl)
			}
			if !strings.Contains(dl.CPUState, "ldq 0/") {
				t.Errorf("CPU state does not show the empty LDQ: %s", dl.CPUState)
			}
			if len(dl.Trace) == 0 {
				t.Error("deadlock diagnosis has no retirement trace")
			}
			detail := dl.Detail()
			for _, want := range []string{"no forward progress", "fetch:", "cpu:", "mem:", "LI"} {
				if !strings.Contains(detail, want) {
					t.Errorf("Detail() missing %q:\n%s", want, detail)
				}
			}
		})
	}
}

// TestWatchdogDefaultsAreSane checks the zero-value window is large but
// below the MaxCycles default.
func TestWatchdogDefaultsAreSane(t *testing.T) {
	if core.DefaultWatchdogCycles >= 500_000_000 {
		t.Error("default watchdog not below the MaxCycles default")
	}
	if core.DefaultWatchdogCycles < 100_000 {
		t.Error("default watchdog small enough to trip on legitimate stalls")
	}
}

// panicRecorder panics when it sees a retirement, simulating an internal
// inconsistency detected mid-cycle deep inside the simulator.
type panicRecorder struct{ after uint64 }

func (p *panicRecorder) Record(e trace.Event) {
	if e.Cycle >= p.after {
		panic("injected simulator fault")
	}
}

func TestRunRecoversPanicsAsMachineCheck(t *testing.T) {
	cfg := core.DefaultConfig()
	sim, err := core.New(cfg, smallProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	sim.SetRetireTracer(&panicRecorder{after: 20})
	_, err = sim.Run()
	var mce *core.MachineCheckError
	if !errors.As(err, &mce) {
		t.Fatalf("Run err = %v, want *MachineCheckError", err)
	}
	if mce.Cycle == 0 {
		t.Error("machine check lost the cycle number")
	}
	if mce.Strategy != "pipe" {
		t.Errorf("strategy = %q", mce.Strategy)
	}
	if got := mce.PanicValue; got != "injected simulator fault" {
		t.Errorf("panic value = %v", got)
	}
	if len(mce.Trace) == 0 {
		t.Error("machine check carries no retirement trace")
	}
	if mce.PC == 0 {
		t.Error("machine check lost the PC")
	}
	if !strings.Contains(mce.Stack, "Record") {
		t.Error("stack does not show the faulting frame")
	}
	for _, want := range []string{"machine check", "cycle", "pipe", "injected simulator fault"} {
		if !strings.Contains(mce.Error(), want) {
			t.Errorf("Error() missing %q: %s", want, mce.Error())
		}
	}
	detail := mce.Detail()
	for _, want := range []string{"config:", "last", "stack:"} {
		if !strings.Contains(detail, want) {
			t.Errorf("Detail() missing %q", want)
		}
	}
}

// TestRunStillCompletesWithUserTracer guards the ring/user-tracer fan-out:
// installing a tracer must not perturb results.
func TestRunStillCompletesWithUserTracer(t *testing.T) {
	base, err := core.New(core.DefaultConfig(), smallProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	stBase, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	traced, err := core.New(core.DefaultConfig(), smallProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	ring, err := trace.NewRing(64)
	if err != nil {
		t.Fatal(err)
	}
	traced.SetRetireTracer(ring)
	stTraced, err := traced.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stBase.Cycles != stTraced.Cycles || stBase.CPU.Instructions != stTraced.CPU.Instructions {
		t.Errorf("tracer changed the run: %d/%d cycles, %d/%d instructions",
			stBase.Cycles, stTraced.Cycles, stBase.CPU.Instructions, stTraced.CPU.Instructions)
	}
	if ring.Total() != stTraced.CPU.Instructions {
		t.Errorf("user tracer saw %d retirements of %d", ring.Total(), stTraced.CPU.Instructions)
	}
}

// TestDeadlockErrorCarriesFlightRecorder checks the watchdog's post-mortem
// includes the flight recorder's recent-event tail, both as structured
// events and rendered into Detail().
func TestDeadlockErrorCarriesFlightRecorder(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.WatchdogCycles = 2_000
	sim, err := core.New(cfg, stuckProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run()
	var dl *core.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run err = %v, want *DeadlockError", err)
	}
	if len(dl.Recent) == 0 {
		t.Fatal("deadlock error carries no flight-recorder events")
	}
	saveFlightArtifact(t, "deadlock-flight.json", dl.Recent)
	// The stuck program retires its LI before wedging, so the ring holds at
	// least one retirement with a cycle stamp.
	sawRetire := false
	for _, e := range dl.Recent {
		if e.Kind.String() == "retire" {
			sawRetire = true
		}
	}
	if !sawRetire {
		t.Errorf("flight recorder has no retire events: %v", dl.Recent)
	}
	detail := dl.Detail()
	for _, want := range []string{"flight recorder", "retire pc="} {
		if !strings.Contains(detail, want) {
			t.Errorf("Detail() missing %q:\n%s", want, detail)
		}
	}
}

// TestMachineCheckErrorCarriesFlightRecorder checks a recovered panic's
// post-mortem includes the flight-recorder tail.
func TestMachineCheckErrorCarriesFlightRecorder(t *testing.T) {
	cfg := core.DefaultConfig()
	sim, err := core.New(cfg, smallProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	sim.SetRetireTracer(&panicRecorder{after: 20})
	_, err = sim.Run()
	var mce *core.MachineCheckError
	if !errors.As(err, &mce) {
		t.Fatalf("Run err = %v, want *MachineCheckError", err)
	}
	if len(mce.Recent) == 0 {
		t.Fatal("machine check carries no flight-recorder events")
	}
	saveFlightArtifact(t, "machinecheck-flight.json", mce.Recent)
	detail := mce.Detail()
	for _, want := range []string{"flight recorder", "stack:"} {
		if !strings.Contains(detail, want) {
			t.Errorf("Detail() missing %q:\n%s", want, detail)
		}
	}
}

// TestFlightRecorderDisabled checks a negative depth switches the recorder
// off: errors then carry no events.
func TestFlightRecorderDisabled(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.FlightRecDepth = -1
	cfg.WatchdogCycles = 2_000
	sim, err := core.New(cfg, stuckProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.FlightEvents(); got != nil {
		t.Errorf("disabled recorder returned events: %v", got)
	}
	_, err = sim.Run()
	var dl *core.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run err = %v, want *DeadlockError", err)
	}
	if len(dl.Recent) != 0 {
		t.Errorf("disabled recorder still snapshotted %d events", len(dl.Recent))
	}
	if strings.Contains(dl.Detail(), "flight recorder") {
		t.Error("Detail() renders a flight-recorder section with the recorder off")
	}
}
