package core_test

// Determinism is the precondition for memoizing simulation results
// (internal/runcache): one (configuration, image) pair must always produce
// the same statistics, run after run and across concurrent runs. These
// tests pin that property on the full Livermore benchmark so a
// nondeterminism bug (map iteration, shared mutable state between
// Simulators, a data race) fails loudly here instead of silently serving
// wrong cached results.

import (
	"reflect"
	"sync"
	"testing"

	"pipesim/internal/core"
	"pipesim/internal/kernels"
	"pipesim/internal/stats"
)

func runOnce(t testing.TB, cfg core.Config) *stats.Sim {
	t.Helper()
	img, _, err := kernels.Program()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := core.New(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark run")
	}
	for _, cfg := range []core.Config{
		core.DefaultConfig(),
		func() core.Config {
			c := core.DefaultConfig()
			c.Fetch = core.FetchConventional
			c.Mem.AccessTime = 6
			c.Mem.BusWidthBytes = 8
			return c
		}(),
	} {
		a := runOnce(t, cfg)
		b := runOnce(t, cfg)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("strategy %v: two identical runs differ:\nfirst  %+v\nsecond %+v",
				cfg.Fetch, a, b)
		}
	}
}

func TestDeterministicUnderConcurrency(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark runs")
	}
	cfg := core.DefaultConfig()
	want := runOnce(t, cfg)
	img, _, err := kernels.Program()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]*stats.Sim, 8)
	errs := make([]error, len(results))
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sim, err := core.New(cfg, img)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = sim.Run()
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if errs[i] != nil {
			t.Errorf("concurrent run %d: %v", i, errs[i])
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("concurrent run %d differs:\ngot  %+v\nwant %+v", i, got, want)
		}
	}
}
