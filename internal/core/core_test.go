package core_test

import (
	"strings"
	"testing"

	"pipesim/internal/asm"
	"pipesim/internal/core"
	"pipesim/internal/isa"
	"pipesim/internal/program"
	"pipesim/internal/trace"
)

func smallProgram(t *testing.T) *program.Image {
	t.Helper()
	img, err := asm.Assemble(`
        li   r1, 4
        li   r2, 0
        setb b0, loop
loop:   add  r2, r2, r1
        addi r1, r1, -1
        pbr  ne, r1, b0, 2
        nop
        nop
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestStrategyString(t *testing.T) {
	cases := map[core.FetchStrategy]string{
		core.FetchPIPE:         "pipe",
		core.FetchConventional: "conventional",
		core.FetchTIB:          "tib",
		core.FetchStrategy(9):  "strategy(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MaxCycles = 5 // far too few to finish
	sim, err := core.New(cfg, smallProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil || !strings.Contains(err.Error(), "no completion") {
		t.Fatalf("Run err = %v, want MaxCycles abort", err)
	}
}

func TestInvalidConfigsRejected(t *testing.T) {
	img := smallProgram(t)
	bad := []func(*core.Config){
		func(c *core.Config) { c.CacheBytes = 0 },
		func(c *core.Config) { c.LineBytes = 0 },
		func(c *core.Config) { c.CacheBytes = 100 },      // not a power of two
		func(c *core.Config) { c.Mem.AccessTime = 0 },    // memory invalid
		func(c *core.Config) { c.Mem.BusWidthBytes = 5 }, // bus invalid
		func(c *core.Config) { c.IQBytes = 0 },           // PIPE queue invalid
		func(c *core.Config) { c.IQBBytes = 8 },          // IQB < line
		func(c *core.Config) { c.CPU.LDQDepth = 0 },      // CPU queues invalid
		func(c *core.Config) { c.Fetch = core.FetchStrategy(42) },
		func(c *core.Config) { c.Fetch = core.FetchTIB; c.TIBEntries = 0 },
	}
	for i, mutate := range bad {
		cfg := core.DefaultConfig()
		mutate(&cfg)
		if _, err := core.New(cfg, img); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRetireTracerSeesDynamicStream(t *testing.T) {
	cfg := core.DefaultConfig()
	sim, err := core.New(cfg, smallProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	ring, err := trace.NewRing(1024)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetRetireTracer(ring)
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	events := ring.Events()
	if uint64(len(events)) != st.CPU.Instructions {
		t.Fatalf("traced %d events, retired %d instructions", len(events), st.CPU.Instructions)
	}
	// Cycles strictly increase; one retirement per cycle at most.
	for i := 1; i < len(events); i++ {
		if events[i].Cycle <= events[i-1].Cycle {
			t.Fatalf("non-monotonic retire cycles at %d: %d then %d", i, events[i-1].Cycle, events[i].Cycle)
		}
	}
	// The last event is the HALT.
	if events[len(events)-1].Inst.Op != isa.OpHALT {
		t.Errorf("last retired op = %s, want HALT", events[len(events)-1].Inst.Op)
	}
	// The loop body retires 4 times: count the PBRs.
	pbrs := 0
	for _, e := range events {
		if e.Inst.Op == isa.OpPBR {
			pbrs++
		}
	}
	if pbrs != 4 {
		t.Errorf("traced %d PBRs, want 4", pbrs)
	}
}

func TestWriterTraceFormat(t *testing.T) {
	cfg := core.DefaultConfig()
	sim, err := core.New(cfg, smallProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sim.SetRetireTracer(&trace.Writer{W: &sb, Limit: 3})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("wrote %d lines, want 3", len(lines))
	}
	if !strings.Contains(lines[0], "LI r1, 4") {
		t.Errorf("first traced line = %q", lines[0])
	}
}

func TestStrategiesAgreeOnArchitecture(t *testing.T) {
	// Same program, three engines: identical retired instruction streams.
	var streams [][]uint32
	for _, strat := range []core.FetchStrategy{core.FetchPIPE, core.FetchConventional, core.FetchTIB} {
		cfg := core.DefaultConfig()
		cfg.Fetch = strat
		cfg.TIBEntries = 2
		cfg.TIBLineBytes = 16
		cfg.Mem.AccessTime = 3
		sim, err := core.New(cfg, smallProgram(t))
		if err != nil {
			t.Fatal(err)
		}
		ring, err := trace.NewRing(4096)
		if err != nil {
			t.Fatal(err)
		}
		sim.SetRetireTracer(ring)
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		var pcs []uint32
		for _, e := range ring.Events() {
			pcs = append(pcs, e.PC)
		}
		streams = append(streams, pcs)
	}
	for i := 1; i < len(streams); i++ {
		if len(streams[i]) != len(streams[0]) {
			t.Fatalf("stream %d length %d != %d", i, len(streams[i]), len(streams[0]))
		}
		for j := range streams[0] {
			if streams[i][j] != streams[0][j] {
				t.Fatalf("stream %d diverges at %d: %#x vs %#x", i, j, streams[i][j], streams[0][j])
			}
		}
	}
}
