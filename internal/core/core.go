// Package core composes the substrates — memory system, on-chip cache,
// fetch engine and CPU — into a runnable simulator, mirroring the paper's
// simulation setup (Figure 3): the processor chip connected by an input and
// an output bus to a large external cache (100% hit) and an external
// floating point unit.
package core

import (
	"fmt"
	"runtime/debug"
	"sort"

	"pipesim/internal/cache"
	"pipesim/internal/cpu"
	"pipesim/internal/fetch"
	"pipesim/internal/isa"
	"pipesim/internal/mem"
	"pipesim/internal/obs"
	"pipesim/internal/program"
	"pipesim/internal/stats"
	"pipesim/internal/trace"
)

// FetchStrategy selects the instruction-supply strategy under test.
type FetchStrategy int

const (
	// FetchPIPE is the paper's contribution: instruction cache + IQ + IQB.
	FetchPIPE FetchStrategy = iota
	// FetchConventional is Hill's always-prefetch sub-blocked cache.
	FetchConventional
	// FetchTIB is the Target Instruction Buffer front end (extension).
	FetchTIB
)

// String names the strategy.
func (f FetchStrategy) String() string {
	switch f {
	case FetchPIPE:
		return "pipe"
	case FetchConventional:
		return "conventional"
	case FetchTIB:
		return "tib"
	}
	return fmt.Sprintf("strategy(%d)", int(f))
}

// Config is a complete simulation configuration.
type Config struct {
	Fetch FetchStrategy

	// On-chip instruction cache geometry.
	CacheBytes int
	LineBytes  int

	// PIPE-specific queue sizes (Table II) and prefetch policy.
	IQBytes      int
	IQBBytes     int
	TruePrefetch bool
	DeepPrefetch bool

	// NativeFormat runs the program in the PIPE chip's 16/32-bit
	// two-parcel instruction encoding (paper simulation parameter 1)
	// instead of the fixed 32-bit format used for all presented results.
	// The image is relaid at parcel granularity; the cache tracks 2-byte
	// sub-blocks. Not supported by the TIB front end.
	NativeFormat bool

	// TIB-specific size (extension).
	TIBEntries   int
	TIBLineBytes int

	Mem mem.Config
	CPU cpu.Config

	// InterruptAt raises the single-level interrupt at the given cycle
	// (0 = never); fetch redirects to InterruptVector at the next clean
	// instruction boundary. See the cpu package for the entry/return
	// protocol.
	InterruptAt     uint64
	InterruptVector uint32

	// MaxCycles aborts a run that fails to complete (simulator-bug guard).
	// Zero selects a generous default.
	MaxCycles uint64

	// WatchdogCycles is the forward-progress watchdog window: a run that
	// retires no instruction for this many consecutive cycles is declared
	// deadlocked and returns a DeadlockError with a diagnosis of the
	// fetch-engine, CPU and memory-system state, long before MaxCycles
	// would fire. Zero selects DefaultWatchdogCycles.
	WatchdogCycles uint64

	// FlightRecDepth sizes the always-on flight recorder: the ring of
	// recent probe events snapshotted into MachineCheckError and
	// DeadlockError for post-mortem diagnosis. Zero selects
	// obs.DefaultFlightRecDepth (on by default); a negative value disables
	// recording. Purely observational — it never changes simulation
	// results, so runcache deliberately excludes it from its keys.
	FlightRecDepth int

	// CacheIntrospect enables the cache-introspection layer: 3C miss
	// classification via shadow models, per-set heatmaps with
	// dead-on-eviction tracking, and the hot miss-PC table, reported in
	// stats.Sim.Cache. Off by default. Introspection never changes cycle
	// counts, but it does add content to the result, so runcache includes
	// it (unlike FlightRecDepth). Ignored by the TIB front end, which has
	// no shared cache array.
	CacheIntrospect bool

	// CacheTopPCs bounds the hot miss-PC table when introspection is on.
	// Zero selects DefaultCacheTopPCs; negative keeps every PC.
	CacheTopPCs int

	// NoSkipAhead disables the event-driven fast path: with it set, Run
	// steps every cycle unconditionally instead of jumping over spans in
	// which every unit is provably quiescent. Results are bit-identical
	// either way — the skipped cycles are folded into the same attribution
	// buckets and stall counters the stepped path would have incremented —
	// so the knob exists only for differential testing and debugging, and
	// runcache deliberately excludes it from its keys. Skip-ahead also
	// turns itself off while a probe is attached, keeping the per-cycle
	// event stream (KindCycle, queue depths) exact for timeline and
	// per-loop collectors.
	NoSkipAhead bool
}

// DefaultCacheTopPCs is the hot miss-PC table size used when
// CacheIntrospect is set and CacheTopPCs is zero.
const DefaultCacheTopPCs = 10

// DefaultConfig returns the configuration used as the paper's baseline
// presentation point: the PIPE 16-16 arrangement, instruction priority,
// true prefetch, 1-cycle non-pipelined memory, 4-byte bus.
func DefaultConfig() Config {
	return Config{
		Fetch:        FetchPIPE,
		CacheBytes:   128,
		LineBytes:    16,
		IQBytes:      16,
		IQBBytes:     16,
		TruePrefetch: true,
		Mem: mem.Config{
			AccessTime:    1,
			BusWidthBytes: 4,
			Pipelined:     false,
			InstrPriority: true,
			FPULatency:    4,
		},
		CPU: cpu.DefaultConfig(),
	}
}

// Validate reports configuration errors beyond what the substrates check.
func (c Config) Validate() error {
	if c.CacheBytes <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("core: cache %dB line %dB invalid", c.CacheBytes, c.LineBytes)
	}
	return nil
}

// Simulator is one configured run over one program.
type Simulator struct {
	cfg Config
	img *program.Image
	sys *mem.System
	eng fetch.Engine
	cpu *cpu.CPU
	st  stats.Sim
	ran bool

	cycle   uint64      // current cycle, for machine-check context
	ring    *trace.Ring // tail of the retirement stream, for diagnostics
	userRec trace.Recorder

	probe    obs.Probe       // stamped user probe, or nil
	loops    []obs.LoopRange // configured loop ranges, by ascending Start
	curLoop  int             // loop number the retirement stream is inside (0 = outside)
	loopSeen bool            // a retirement has initialized curLoop

	flight *obs.FlightRecorder // always-on post-mortem ring, nil when disabled
	intr   *cache.Introspector // cache introspection, nil when disabled

	skipped uint64 // cycles elided by skip-ahead (diagnostics/tests only)
}

// New builds a simulator for the image.
func New(cfg Config, img *program.Image) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = DefaultMaxCycles
	}
	s := &Simulator{cfg: cfg, img: img}
	var err error
	if cfg.NativeFormat && !img.Native {
		img, err = program.ToNative(img)
		if err != nil {
			return nil, err
		}
		s.img = img
	}
	s.sys, err = mem.New(cfg.Mem, img, &s.st.Mem)
	if err != nil {
		return nil, err
	}
	subBlock := isa.WordBytes
	if img.Native {
		subBlock = isa.ParcelBytes
	}
	arr, err := cache.New(cfg.CacheBytes, cfg.LineBytes, subBlock)
	if err != nil {
		return nil, err
	}
	switch cfg.Fetch {
	case FetchPIPE:
		s.eng, err = fetch.NewPipe(fetch.PipeConfig{
			CacheBytes:   cfg.CacheBytes,
			LineBytes:    cfg.LineBytes,
			IQBytes:      cfg.IQBytes,
			IQBBytes:     cfg.IQBBytes,
			TruePrefetch: cfg.TruePrefetch,
			DeepPrefetch: cfg.DeepPrefetch,
		}, arr, img, s.sys, img.Entry)
	case FetchConventional:
		s.eng, err = fetch.NewConv(fetch.ConvConfig{
			CacheBytes: cfg.CacheBytes,
			LineBytes:  cfg.LineBytes,
			ChunkBytes: cfg.Mem.BusWidthBytes,
		}, arr, img, s.sys, img.Entry)
	case FetchTIB:
		s.eng, err = fetch.NewTIB(fetch.TIBConfig{
			Entries:   cfg.TIBEntries,
			LineBytes: cfg.TIBLineBytes,
		}, img, s.sys, img.Entry)
	default:
		err = fmt.Errorf("core: unknown fetch strategy %d", cfg.Fetch)
	}
	if err != nil {
		return nil, err
	}
	if cfg.CacheIntrospect && cfg.Fetch != FetchTIB {
		topN := cfg.CacheTopPCs
		if topN == 0 {
			topN = DefaultCacheTopPCs
		}
		s.intr = cache.NewIntrospector(cfg.CacheBytes, cfg.LineBytes, topN)
		// Evictions surface as KindCacheEvict probe/flight events. The
		// closure reads the recorder and probe fields at call time, so it
		// is safe to build before either is attached.
		s.intr.OnEvict = func(set int, lineAddr uint32, dead bool) {
			var val uint64
			if dead {
				val = 1
			}
			if s.flight != nil {
				s.flight.Record(obs.KindCacheEvict, lineAddr, uint32(set), val)
			}
			if s.probe != nil {
				s.probe.Event(obs.Event{Kind: obs.KindCacheEvict, Addr: lineAddr, Arg: uint32(set), Value: val})
			}
		}
		arr.SetIntrospector(s.intr)
		s.eng.SetIntrospector(s.intr)
	}
	s.cpu, err = cpu.New(cfg.CPU, s.eng, s.sys, &s.st.CPU)
	if err != nil {
		return nil, err
	}
	if !img.Native {
		// Share the image's predecoded text so consuming an instruction
		// skips the per-fetch decode (native parcel addresses do not
		// index the fixed-format table).
		s.cpu.SetDecodeTable(img.Decoded())
	}
	s.ring, err = trace.NewRing(RetireTraceDepth)
	if err != nil {
		return nil, err
	}
	// The flight recorder is on by default (FlightRecDepth < 0 disables):
	// the fetch engine and memory system write their fault-relevant events
	// into it directly, and retirements are recorded below.
	if cfg.FlightRecDepth >= 0 {
		s.flight = obs.NewFlightRecorder(cfg.FlightRecDepth, &s.cycle)
		s.sys.SetFlightRecorder(s.flight)
		s.eng.SetFlightRecorder(s.flight)
	}
	// The diagnostic ring and flight recorder always observe retirements.
	// The CPU writes them directly — they are the common configuration,
	// and an OnRetire closure per retirement is measurable — while a user
	// tracer or probe installs the full hook lazily at Run.
	s.cpu.SetRetireSinks(s.ring, s.flight)
	return s, nil
}

// installRetireHook attaches the OnRetire closure serving the optional
// observers (user tracer, probe with loop tracking). Called at the top of
// Run, once both are finally known; left nil when neither is attached so
// retirement stays on the direct-sink fast path.
func (s *Simulator) installRetireHook() {
	if s.userRec == nil && s.probe == nil {
		s.cpu.OnRetire = nil
		return
	}
	s.cpu.OnRetire = func(cycle uint64, pc uint32, in isa.Inst) {
		if s.userRec != nil {
			s.userRec.Record(trace.Event{Cycle: cycle, PC: pc, Inst: in})
		}
		if s.probe != nil {
			if s.loops != nil {
				s.trackLoop(pc)
			}
			s.probe.Event(obs.Event{Kind: obs.KindRetire, Addr: pc})
		}
	}
}

// SetProbe attaches p to every instrumented component — memory system,
// fetch engine, CPU and the core's own retirement/loop tracking — wrapped
// in an obs.Stamper sharing the simulator clock, so every event carries the
// cycle it occurred in. Call before Run; a nil probe detaches.
func (s *Simulator) SetProbe(p obs.Probe) {
	if p == nil {
		s.probe = nil
		s.sys.SetProbe(nil)
		s.eng.SetProbe(nil)
		s.cpu.SetProbe(nil)
		return
	}
	stamped := &obs.Stamper{Clock: &s.cycle, Target: p}
	s.probe = stamped
	s.sys.SetProbe(stamped)
	s.eng.SetProbe(stamped)
	s.cpu.SetProbe(stamped)
}

// SetLoopRanges configures the PC ranges the retirement stream is matched
// against; transitions emit KindLoopEnter/KindLoopExit to the attached
// probe. Call before Run, with ranges resolved against Image(). Ranges must
// not overlap (loop bodies are disjoint code regions); they are copied and
// kept sorted by Start so every retirement resolves its loop with a binary
// search instead of a scan over all ranges.
func (s *Simulator) SetLoopRanges(ranges []obs.LoopRange) {
	if len(ranges) == 0 {
		s.loops = nil
		return
	}
	s.loops = append([]obs.LoopRange(nil), ranges...)
	sort.Slice(s.loops, func(i, j int) bool { return s.loops[i].Start < s.loops[j].Start })
}

// trackLoop emits loop-transition events when the retirement PC moves
// between configured ranges. A loop's enter event precedes the retire event
// of its first instruction, so collectors attribute that instruction — and
// the rest of the cycle — to the loop being entered.
func (s *Simulator) trackLoop(pc uint32) {
	// The ranges are sorted by Start and disjoint: the only candidate is
	// the last range starting at or before pc.
	loop := 0
	lo, hi := 0, len(s.loops)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.loops[mid].Start <= pc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 && pc < s.loops[lo-1].End {
		loop = s.loops[lo-1].Loop
	}
	if s.loopSeen && loop == s.curLoop {
		return
	}
	if s.loopSeen && s.curLoop != 0 {
		s.probe.Event(obs.Event{Kind: obs.KindLoopExit, Arg: uint32(s.curLoop)})
	}
	s.curLoop = loop
	s.loopSeen = true
	if loop != 0 {
		s.probe.Event(obs.Event{Kind: obs.KindLoopEnter, Arg: uint32(loop)})
	}
}

// FlightEvents returns a snapshot of the flight recorder's retained events,
// oldest first (nil when recording is disabled). Call after Run: the
// snapshot must not race with the run goroutine.
func (s *Simulator) FlightEvents() []obs.Event { return s.flight.Events() }

// Image returns the program image the simulator actually runs — after any
// native-format relayout — so callers can resolve symbols (for example
// Livermore loop ranges) against the final address map.
func (s *Simulator) Image() *program.Image { return s.img }

// Run executes the program to completion (HALT retired and all memory
// traffic drained) and returns the collected statistics. Run may be called
// once per Simulator.
//
// Run is total: it never panics. A panic escaping the internal packages —
// a simulator bug — is recovered and returned as a *MachineCheckError
// carrying the cycle, PC, strategy, configuration and the tail of the
// retirement trace. A run that stops retiring instructions trips the
// forward-progress watchdog (Config.WatchdogCycles) and returns a
// *DeadlockError diagnosing the stuck machine state.
func (s *Simulator) Run() (st *stats.Sim, err error) {
	if s.ran {
		return nil, fmt.Errorf("core: Run called twice")
	}
	s.ran = true
	defer func() {
		if p := recover(); p != nil {
			st, err = nil, s.machineCheck(p, debug.Stack())
		}
	}()
	s.installRetireHook()
	watchdog := s.cfg.WatchdogCycles
	if watchdog == 0 {
		watchdog = DefaultWatchdogCycles
	}
	var (
		lastRetired  uint64 // retirement count at the last progress cycle
		lastProgress uint64 // most recent cycle that retired an instruction
	)
	// Skip-ahead turns itself off while a probe is attached: collectors
	// consuming the per-cycle event stream (KindCycle, queue depths) need
	// every cycle replayed exactly, not folded.
	skip := !s.cfg.NoSkipAhead && s.probe == nil
	for cycle := uint64(1); ; cycle++ {
		s.cycle = cycle
		s.sys.BeginCycle(cycle)
		s.eng.Tick()
		if s.cfg.InterruptAt != 0 && cycle == s.cfg.InterruptAt {
			s.cpu.RaiseInterrupt(s.cfg.InterruptVector)
		}
		s.cpu.Tick()
		s.sys.EndCycle()
		if err := s.cpu.Err(); err != nil {
			return nil, err
		}
		if s.cpu.Halted() && s.cpu.Drained() && s.sys.Drained() {
			s.st.Cycles = cycle
			break
		}
		if s.st.CPU.Instructions != lastRetired {
			lastRetired = s.st.CPU.Instructions
			lastProgress = cycle
		} else if !s.cpu.Halted() && cycle-lastProgress >= watchdog {
			return nil, s.deadlock(cycle, lastProgress, watchdog)
		}
		if cycle >= s.cfg.MaxCycles {
			return nil, fmt.Errorf("core: no completion within %d cycles (instructions retired: %d)",
				s.cfg.MaxCycles, s.st.CPU.Instructions)
		}
		if !skip {
			continue
		}
		// Event-driven skip-ahead: when the CPU is in a foldable stall and
		// the fetch engine is quiescent, the whole machine's state until
		// the memory system's next event is a pure function of counter
		// arithmetic. Jump the clock there directly, folding the skipped
		// span into exactly the counters the stepped path would have
		// incremented. The jump target is clamped to the interrupt cycle,
		// the watchdog deadline and MaxCycles so those paths fire at
		// identical cycle numbers with identical diagnostics.
		if !s.cpu.MaybeStalled() {
			continue // the ticked cycle was active: next one cannot fold
		}
		prof := s.cpu.StallProfile()
		if prof == cpu.StallNone {
			continue
		}
		if s.eng.NextEvent() == 0 {
			continue
		}
		target := s.sys.NextEvent()
		if s.cfg.InterruptAt > cycle && s.cfg.InterruptAt < target {
			target = s.cfg.InterruptAt
		}
		if !s.cpu.Halted() {
			if deadline := lastProgress + watchdog; deadline > cycle && deadline < target {
				target = deadline
			}
		}
		if s.cfg.MaxCycles < target {
			target = s.cfg.MaxCycles
		}
		if target <= cycle+1 {
			continue // the next cycle has an event anyway: nothing to elide
		}
		n := target - cycle - 1
		s.cpu.FoldStall(prof, n)
		s.skipped += n
		cycle = target - 1
	}
	s.st.Fetch = *s.eng.Stats()
	if s.intr != nil {
		s.st.Cache = s.intr.Stats()
	}
	return &s.st, nil
}

// SkippedCycles reports how many cycles the run elided via event-driven
// skip-ahead: Result cycle counts include them (they are folded into the
// attribution buckets), wall-clock work does not. Zero when skip-ahead was
// disabled, a probe was attached, or no fold opportunity arose. Diagnostic
// only — call after Run.
func (s *Simulator) SkippedCycles() uint64 { return s.skipped }

// SetRetireTracer installs a recorder observing every retired instruction.
// Call before Run.
func (s *Simulator) SetRetireTracer(rec trace.Recorder) {
	s.userRec = rec
}

// ReadWord returns the final memory word at addr (after Run), letting
// examples and tests verify kernel results.
func (s *Simulator) ReadWord(addr uint32) uint32 { return s.sys.ReadWord(addr) }

// Reg returns a CPU register value (after Run).
func (s *Simulator) Reg(r int) int32 { return s.cpu.Reg(r) }
