package isa

import (
	"testing"
	"testing/quick"
)

func TestParcelLen(t *testing.T) {
	cases := []struct {
		in   Inst
		want int
	}{
		{Inst{Op: OpNOP}, 1},
		{Inst{Op: OpHALT}, 1},
		{Inst{Op: OpADD, Rd: 1, Ra: 2, Rb: 3}, 1},
		{Inst{Op: OpADDI, Rd: 1, Ra: 1, Imm: 4}, 1},  // short immediate
		{Inst{Op: OpADDI, Rd: 1, Ra: 1, Imm: 8}, 2},  // too big for 3 bits
		{Inst{Op: OpADDI, Rd: 1, Ra: 1, Imm: -1}, 2}, // negative
		{Inst{Op: OpLI, Rd: 1, Imm: 7}, 1},
		{Inst{Op: OpLD, Ra: 2, Imm: 0}, 1},
		{Inst{Op: OpLD, Ra: 2, Imm: 40}, 2},
		{Inst{Op: OpST, Ra: 2, Imm: 4}, 1},
		{Inst{Op: OpSETB, Bn: 0, Imm: 0x20}, 2},
		{Inst{Op: OpSETBR, Bn: 1, Ra: 2}, 1},
		{Inst{Op: OpPBR, Cond: CondNE, Ra: 1, Bn: 0, N: 4}, 1},
	}
	for _, c := range cases {
		if got := ParcelLen(c.in); got != c.want {
			t.Errorf("ParcelLen(%v) = %d, want %d", c.in, got, c.want)
		}
		if got := len(EncodeParcels(c.in)); got != c.want {
			t.Errorf("len(EncodeParcels(%v)) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParcelRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: OpNOP},
		{Op: OpHALT},
		{Op: OpADD, Rd: 7, Ra: 6, Rb: 5},
		{Op: OpSRA, Rd: 0, Ra: 1, Rb: 2},
		{Op: OpADDI, Rd: 2, Ra: 2, Imm: 4},
		{Op: OpADDI, Rd: 2, Ra: 2, Imm: -30000},
		{Op: OpANDI, Rd: 3, Ra: 4, Imm: 0x7FFF},
		{Op: OpLI, Rd: 6, Imm: 0},
		{Op: OpLUI, Rd: 6, Imm: 7},
		{Op: OpLD, Ra: 2, Imm: 3},
		{Op: OpLD, Ra: 2, Imm: 4096},
		{Op: OpST, Ra: 3, Imm: -8},
		{Op: OpSETB, Bn: 7, Imm: 0x7FFFF},
		{Op: OpSETB, Bn: 0, Imm: 0},
		{Op: OpSETBR, Bn: 3, Ra: 5},
		{Op: OpPBR, Cond: CondLE, Ra: 6, Bn: 7, N: 7},
		{Op: OpPBR, Cond: CondAL, Ra: 0, Bn: 0, N: 0},
	}
	for _, in := range cases {
		ps := EncodeParcels(in)
		got, n, err := DecodeParcels(ps)
		if err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		if n != len(ps) {
			t.Errorf("%v: consumed %d parcels, encoded %d", in, n, len(ps))
		}
		if got != in {
			t.Errorf("round trip %v -> %v", in, got)
		}
	}
}

func TestParcelBranchBit(t *testing.T) {
	pbr := EncodeParcels(Inst{Op: OpPBR, Cond: CondNE, Ra: 1, Bn: 2, N: 3})
	if !ParcelIsBranch(pbr[0]) {
		t.Error("PBR parcel not branch-class")
	}
	for _, in := range []Inst{{Op: OpADD, Rd: 1, Ra: 2, Rb: 3}, {Op: OpNOP}, {Op: OpSETB, Bn: 1, Imm: 8}} {
		if ParcelIsBranch(EncodeParcels(in)[0]) {
			t.Errorf("%v parcel reported as branch", in)
		}
	}
}

func TestParcelErrors(t *testing.T) {
	if _, _, err := DecodeParcels(nil); err == nil {
		t.Error("empty stream decoded")
	}
	// Truncated two-parcel instruction.
	full := EncodeParcels(Inst{Op: OpADDI, Rd: 1, Ra: 1, Imm: 100})
	if _, _, err := DecodeParcels(full[:1]); err == nil {
		t.Error("truncated stream decoded")
	}
	// Invalid opcode index.
	if _, _, err := DecodeParcels([]uint16{uint16(30) << 10}); err == nil {
		t.Error("invalid parcel opcode decoded")
	}
	// SETB beyond 19-bit reach panics at encode.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("20-bit SETB encoded in parcels without panic")
			}
		}()
		EncodeParcels(Inst{Op: OpSETB, Bn: 0, Imm: 0x80000})
	}()
}

func TestNativeBytes(t *testing.T) {
	words := []uint32{
		Encode(Inst{Op: OpADD, Rd: 1, Ra: 2, Rb: 3}),       // 2 bytes
		Encode(Inst{Op: OpADDI, Rd: 2, Ra: 2, Imm: 4}),     // 2
		Encode(Inst{Op: OpLD, Ra: 2, Imm: 400}),            // 4
		Encode(Inst{Op: OpPBR, Cond: CondNE, Ra: 1, N: 2}), // 2
	}
	n, err := NativeBytes(words)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("NativeBytes = %d, want 10", n)
	}
	if _, err := NativeBytes([]uint32{0x5500_0000}); err == nil {
		t.Error("invalid word accepted")
	}
}

// TestQuickParcelRoundTrip mirrors the fixed-format property test for the
// native encoding.
func TestQuickParcelRoundTrip(t *testing.T) {
	f := func(opIdx uint8, rd, ra, rb uint8, imm int16, addr uint32, cond, bn, n uint8) bool {
		ops := []Opcode{
			OpNOP, OpHALT, OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA,
			OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI, OpLI, OpLUI,
			OpLD, OpST, OpSETB, OpSETBR, OpPBR,
		}
		in := Inst{Op: ops[int(opIdx)%len(ops)]}
		switch in.Op {
		case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA:
			in.Rd, in.Ra, in.Rb = rd%8, ra%8, rb%8
		case OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI, OpLI, OpLUI, OpLD, OpST:
			in.Rd, in.Ra, in.Imm = rd%8, ra%8, int32(imm)
		case OpSETB:
			in.Bn, in.Imm = bn%8, int32(addr%0x80000)
		case OpSETBR:
			in.Bn, in.Ra = bn%8, ra%8
		case OpPBR:
			in.Cond, in.Bn, in.N, in.Ra = Cond(cond%uint8(condMax)), bn%8, n%8, ra%8
		}
		got, consumed, err := DecodeParcels(EncodeParcels(in))
		return err == nil && got == in && consumed == ParcelLen(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
