package isa

import "fmt"

// Native PIPE instruction encoding: instructions are one or two 16-bit
// parcels (paper Figure 2). The fixed 32-bit format (isa.Encode) is what
// every presented result uses — "a different instruction format was chosen
// in order to make comparisons to other machines ... more realistic" — but
// the real chip's denser 16/32-bit format is the paper's simulation
// parameter (1), so it is implemented here and used by the code-density
// experiment.
//
// Parcel 0 layout (bit 15 is the branch-class bit, checkable without
// decoding, exactly as in the fixed format):
//
//	non-branch: [15]=0 [14:10]=op5 [9:7]=f1 [6:4]=f2 [3:1]=f3 [0]=ext
//	branch:     [15]=1 [14:12]=cond [11:9]=bn [8:6]=n [5:3]=ra [2:0]=0
//
// Field use by format:
//
//	R-type:  f1=rd f2=ra f3=rb, ext=0                     (1 parcel)
//	I-type:  f1=rd f2=ra; ext=0 -> imm = f3 (0..7)        (1 parcel)
//	                      ext=1 -> imm16 in parcel 1      (2 parcels)
//	LD/ST:   like I-type (f1 unused)
//	SETB:    f1=bn f2=addr[18:16], ext=1, parcel1=addr[15:0]
//	SETBR:   f1=bn f2=ra, ext=0
//	NOP/HALT: ext=0, fields zero
//
// The register fields sit in the same positions for every format, which is
// what lets the real PIPE decode logic stay simple.

// parcelOp compresses the 8-bit opcode space into the 5-bit field.
var parcelOps = []Opcode{
	OpNOP, OpHALT, OpBANK,
	OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA,
	OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI, OpLI, OpLUI,
	OpLD, OpST, OpSETB, OpSETBR,
}

var parcelOpIndex = func() map[Opcode]uint16 {
	m := make(map[Opcode]uint16, len(parcelOps))
	for i, op := range parcelOps {
		m[op] = uint16(i)
	}
	return m
}()

// ParcelBranchBit is the single bit of the first parcel that identifies a
// branch-class instruction.
const ParcelBranchBit uint16 = 0x8000

// ParcelIsBranch reports whether a first parcel encodes a PBR.
func ParcelIsBranch(p uint16) bool { return p&ParcelBranchBit != 0 }

// ParcelLen returns how many 16-bit parcels the instruction occupies in the
// native encoding.
func ParcelLen(in Inst) int {
	switch in.Op {
	case OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI, OpLI, OpLUI, OpLD, OpST:
		if in.Imm >= 0 && in.Imm <= 7 {
			return 1
		}
		return 2
	case OpSETB:
		return 2
	default:
		return 1
	}
}

// EncodeParcels packs the instruction into its native parcels. It panics on
// invalid instructions (use Validate first) and on SETB addresses beyond
// the encoding's 19-bit reach.
func EncodeParcels(in Inst) []uint16 {
	if err := Validate(in); err != nil {
		panic("isa.EncodeParcels: " + err.Error())
	}
	if in.Op == OpPBR {
		p := ParcelBranchBit |
			uint16(in.Cond)<<12 | uint16(in.Bn)<<9 | uint16(in.N)<<6 | uint16(in.Ra)<<3
		return []uint16{p}
	}
	opIdx, ok := parcelOpIndex[in.Op]
	if !ok {
		panic(fmt.Sprintf("isa.EncodeParcels: opcode %s has no parcel encoding", in.Op))
	}
	p0 := opIdx << 10
	field := func(shift uint, v uint8) { p0 |= uint16(v&7) << shift }
	switch in.Op {
	case OpNOP, OpHALT, OpBANK:
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA:
		field(7, in.Rd)
		field(4, in.Ra)
		field(1, in.Rb)
	case OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI, OpLI, OpLUI, OpLD, OpST:
		field(7, in.Rd)
		field(4, in.Ra)
		if in.Imm >= 0 && in.Imm <= 7 {
			field(1, uint8(in.Imm))
			return []uint16{p0}
		}
		p0 |= 1 // ext
		return []uint16{p0, uint16(uint32(in.Imm) & 0xFFFF)}
	case OpSETB:
		if in.Imm < 0 || in.Imm > 0x7FFFF {
			panic(fmt.Sprintf("isa.EncodeParcels: SETB address %#x exceeds the 19-bit native reach", in.Imm))
		}
		field(7, in.Bn)
		field(4, uint8(in.Imm>>16))
		p0 |= 1 // ext
		return []uint16{p0, uint16(uint32(in.Imm) & 0xFFFF)}
	case OpSETBR:
		field(7, in.Bn)
		field(4, in.Ra)
	}
	return []uint16{p0}
}

// DecodeParcels decodes an instruction from the head of a parcel stream,
// returning the instruction and how many parcels it consumed.
func DecodeParcels(ps []uint16) (Inst, int, error) {
	if len(ps) == 0 {
		return Inst{}, 0, fmt.Errorf("isa: empty parcel stream")
	}
	p0 := ps[0]
	if ParcelIsBranch(p0) {
		in := Inst{
			Op:   OpPBR,
			Cond: Cond(p0 >> 12 & 7),
			Bn:   uint8(p0 >> 9 & 7),
			N:    uint8(p0 >> 6 & 7),
			Ra:   uint8(p0 >> 3 & 7),
		}
		if err := Validate(in); err != nil {
			return Inst{}, 0, err
		}
		return in, 1, nil
	}
	opIdx := int(p0 >> 10 & 0x1F)
	if opIdx >= len(parcelOps) {
		return Inst{}, 0, fmt.Errorf("isa: invalid parcel opcode %d", opIdx)
	}
	op := parcelOps[opIdx]
	f1 := uint8(p0 >> 7 & 7)
	f2 := uint8(p0 >> 4 & 7)
	f3 := uint8(p0 >> 1 & 7)
	ext := p0&1 != 0
	in := Inst{Op: op}
	need := 1
	switch op {
	case OpNOP, OpHALT, OpBANK:
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA:
		in.Rd, in.Ra, in.Rb = f1, f2, f3
	case OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI, OpLI, OpLUI, OpLD, OpST:
		in.Rd, in.Ra = f1, f2
		if ext {
			need = 2
			if len(ps) < 2 {
				return Inst{}, 0, fmt.Errorf("isa: truncated two-parcel instruction")
			}
			in.Imm = int32(int16(ps[1]))
		} else {
			in.Imm = int32(f3)
		}
	case OpSETB:
		in.Bn = f1
		need = 2
		if len(ps) < 2 {
			return Inst{}, 0, fmt.Errorf("isa: truncated SETB")
		}
		in.Imm = int32(f2)<<16 | int32(ps[1])
	case OpSETBR:
		in.Bn, in.Ra = f1, f2
	}
	if err := Validate(in); err != nil {
		return Inst{}, 0, err
	}
	return in, need, nil
}

// NativeBytes returns the byte size of a word-encoded instruction sequence
// in the native parcel encoding.
func NativeBytes(words []uint32) (int, error) {
	total := 0
	for _, w := range words {
		in, err := DecodeChecked(w)
		if err != nil {
			return 0, err
		}
		total += ParcelLen(in) * ParcelBytes
	}
	return total, nil
}
