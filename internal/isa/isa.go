// Package isa defines the PIPE instruction set architecture used throughout
// the simulator: opcodes, register names, the fixed 32-bit instruction
// encoding used for all results presented in the paper, and the 16/32-bit
// two-parcel "native" PIPE encoding kept as an extension (paper simulation
// parameter 1).
//
// The ISA is a register-to-register load/store architecture modeled on the
// PIPE processor (Farrens & Pleszkun, ISCA 1989):
//
//   - Eight 32-bit foreground data registers R0..R7. R7 is the architectural
//     queue register: reading R7 pops the head of the Load Data Queue (LDQ),
//     writing R7 pushes onto the tail of the Store Data Queue (SDQ).
//   - Eight branch registers B0..B7 holding branch target addresses, loaded
//     by SETB/SETBR ahead of the branch itself.
//   - Memory access only through LD (enqueue a load address on the LAQ) and
//     ST (enqueue a store address on the SAQ); store data arrives via R7.
//   - A generalized delayed branch, PBR ("prepare to branch"), carrying a
//     3-bit count of delay slots (0..7) that execute unconditionally.
//
// A single opcode bit (the branch-class bit, bit 7 of the opcode field)
// identifies PBR instructions, so fetch hardware can scan raw instruction
// words in the instruction queue for upcoming branches, exactly as the PIPE
// cache control logic does in the paper.
package isa

import "fmt"

// WordBytes is the size in bytes of one instruction in the fixed 32-bit
// format. All results presented in the paper use this format.
const WordBytes = 4

// ParcelBytes is the size of one parcel (16 bits) in the native PIPE
// encoding, where instructions are one or two parcels long.
const ParcelBytes = 2

// NumDataRegs is the number of visible data registers (R0..R7).
const NumDataRegs = 8

// NumBranchRegs is the number of branch registers (B0..B7).
const NumBranchRegs = 8

// QueueReg is the register number of the architectural queue register R7.
// Reads pop the LDQ; writes push the SDQ.
const QueueReg = 7

// MaxDelaySlots is the largest delay-slot count a PBR instruction can carry
// (3-bit field).
const MaxDelaySlots = 7

// Opcode identifies an instruction's operation. Opcodes with BranchClassBit
// set are branch-class (PBR) instructions.
type Opcode uint8

// BranchClassBit is the single opcode bit that identifies a branch-class
// instruction. The PIPE fetch logic scans instruction-queue words for this
// bit to find upcoming PBRs.
const BranchClassBit Opcode = 0x80

// Instruction opcodes.
const (
	OpNOP  Opcode = 0x00 // no operation
	OpHALT Opcode = 0x01 // stop simulation; the program is complete

	// Three-operand register instructions (R-type): rd := ra OP rb.
	OpADD Opcode = 0x02
	OpSUB Opcode = 0x03
	OpAND Opcode = 0x04
	OpOR  Opcode = 0x05
	OpXOR Opcode = 0x06
	OpSLL Opcode = 0x07 // shift left logical by rb&31
	OpSRL Opcode = 0x08 // shift right logical by rb&31
	OpSRA Opcode = 0x09 // shift right arithmetic by rb&31

	// Immediate instructions (I-type): rd := ra OP signExtend(imm16).
	OpADDI Opcode = 0x10
	OpANDI Opcode = 0x11
	OpORI  Opcode = 0x12
	OpXORI Opcode = 0x13
	OpSLLI Opcode = 0x14 // shift left logical by imm&31
	OpSRLI Opcode = 0x15 // shift right logical by imm&31
	OpSRAI Opcode = 0x16 // shift right arithmetic by imm&31
	OpLI   Opcode = 0x17 // rd := signExtend(imm16)
	OpLUI  Opcode = 0x18 // rd := imm16 << 16

	// Memory instructions. LD enqueues (ra+imm16) on the Load Address
	// Queue; the returned word is later read through R7. ST enqueues
	// (ra+imm16) on the Store Address Queue; the datum is the next value
	// written to R7 (i.e. pushed on the Store Data Queue).
	OpLD Opcode = 0x20
	OpST Opcode = 0x21

	// Branch-register setup. SETB loads branch register bn with a 20-bit
	// absolute byte address; SETBR copies data register ra into bn.
	OpSETB  Opcode = 0x30
	OpSETBR Opcode = 0x31

	// OpBANK exchanges the foreground and background register sets
	// (R0..R6; the queue register R7 is shared hardware and is not
	// banked). The PIPE architecture provides the second bank "to
	// improve the speed of subroutine calling".
	OpBANK Opcode = 0x33

	// OpPBR is the prepare-to-branch instruction: if condition Cond holds
	// for register ra, control transfers to the address in branch register
	// bn after N more instructions (the delay slots) have executed.
	OpPBR Opcode = 0x80
)

// IsBranch reports whether the opcode is branch-class (a PBR).
func (op Opcode) IsBranch() bool { return op&BranchClassBit != 0 }

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool {
	_, ok := opNames[op]
	return ok
}

var opNames = map[Opcode]string{
	OpNOP: "NOP", OpHALT: "HALT",
	OpADD: "ADD", OpSUB: "SUB", OpAND: "AND", OpOR: "OR", OpXOR: "XOR",
	OpSLL: "SLL", OpSRL: "SRL", OpSRA: "SRA",
	OpADDI: "ADDI", OpANDI: "ANDI", OpORI: "ORI", OpXORI: "XORI",
	OpSLLI: "SLLI", OpSRLI: "SRLI", OpSRAI: "SRAI", OpLI: "LI", OpLUI: "LUI",
	OpLD: "LD", OpST: "ST",
	OpSETB: "SETB", OpSETBR: "SETBR", OpBANK: "BANK",
	OpPBR: "PBR",
}

// String returns the assembler mnemonic for the opcode.
func (op Opcode) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("OP(%#02x)", uint8(op))
}

// Cond is a PBR branch condition, evaluated against a single data register.
type Cond uint8

// Branch conditions. All compare the tested register against zero.
const (
	CondAL Cond = iota // always taken; the register is ignored
	CondEQ             // taken if ra == 0
	CondNE             // taken if ra != 0
	CondLT             // taken if ra < 0 (signed)
	CondGE             // taken if ra >= 0 (signed)
	CondGT             // taken if ra > 0 (signed)
	CondLE             // taken if ra <= 0 (signed)
	condMax
)

var condNames = [...]string{"AL", "EQ", "NE", "LT", "GE", "GT", "LE"}

// Valid reports whether c is a defined condition.
func (c Cond) Valid() bool { return c < condMax }

// String returns the assembler name of the condition.
func (c Cond) String() string {
	if c.Valid() {
		return condNames[c]
	}
	return fmt.Sprintf("COND(%d)", uint8(c))
}

// Holds evaluates the condition against a register value.
func (c Cond) Holds(v int32) bool {
	switch c {
	case CondAL:
		return true
	case CondEQ:
		return v == 0
	case CondNE:
		return v != 0
	case CondLT:
		return v < 0
	case CondGE:
		return v >= 0
	case CondGT:
		return v > 0
	case CondLE:
		return v <= 0
	}
	return false
}

// Inst is a decoded instruction. Fields not used by the opcode's format are
// zero.
type Inst struct {
	Op   Opcode
	Rd   uint8 // destination data register (R-type, I-type)
	Ra   uint8 // first source data register / tested register for PBR
	Rb   uint8 // second source data register (R-type)
	Imm  int32 // sign-extended 16-bit immediate, or 20-bit address for SETB
	Cond Cond  // PBR condition
	Bn   uint8 // branch register (PBR, SETB, SETBR)
	N    uint8 // PBR delay-slot count (0..7)
}

// Format classes of the fixed 32-bit encoding.
//
//	R-type:  op[31:24] rd[23:20] ra[19:16] rb[15:12] 0[11:0]
//	I-type:  op[31:24] rd[23:20] ra[19:16] imm16[15:0]
//	SETB:    op[31:24] bn[23:20] addr20[19:0]
//	SETBR:   op[31:24] bn[23:20] ra[19:16] 0[15:0]
//	PBR:     op[31:24] cond[23:20] bn[19:16] n[15:12] ra[11:8] 0[7:0]
//
// Reads and writes of the queue register R7 follow the architectural queue
// semantics regardless of format.

// Encode packs the instruction into a 32-bit word in the fixed format.
// It panics if a field is out of range; use Validate first for untrusted
// input.
func Encode(in Inst) uint32 {
	if err := Validate(in); err != nil {
		panic("isa.Encode: " + err.Error())
	}
	w := uint32(in.Op) << 24
	switch in.Op {
	case OpNOP, OpHALT, OpBANK:
		// no operands
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA:
		w |= uint32(in.Rd)<<20 | uint32(in.Ra)<<16 | uint32(in.Rb)<<12
	case OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI, OpLI, OpLUI, OpLD, OpST:
		w |= uint32(in.Rd)<<20 | uint32(in.Ra)<<16 | uint32(uint16(in.Imm))
	case OpSETB:
		w |= uint32(in.Bn)<<20 | (uint32(in.Imm) & 0xFFFFF)
	case OpSETBR:
		w |= uint32(in.Bn)<<20 | uint32(in.Ra)<<16
	case OpPBR:
		w |= uint32(in.Cond)<<20 | uint32(in.Bn)<<16 | uint32(in.N)<<12 | uint32(in.Ra)<<8
	}
	return w
}

// Decode unpacks a 32-bit word into an instruction. Unknown opcodes yield an
// Inst whose Op does not Validate; callers that execute instructions should
// check Validate or use DecodeChecked.
func Decode(w uint32) Inst {
	op := Opcode(w >> 24)
	in := Inst{Op: op}
	switch op {
	case OpNOP, OpHALT, OpBANK:
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA:
		in.Rd = uint8(w >> 20 & 0xF)
		in.Ra = uint8(w >> 16 & 0xF)
		in.Rb = uint8(w >> 12 & 0xF)
	case OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI, OpLI, OpLUI, OpLD, OpST:
		in.Rd = uint8(w >> 20 & 0xF)
		in.Ra = uint8(w >> 16 & 0xF)
		in.Imm = int32(int16(w & 0xFFFF))
	case OpSETB:
		in.Bn = uint8(w >> 20 & 0xF)
		in.Imm = int32(w & 0xFFFFF)
	case OpSETBR:
		in.Bn = uint8(w >> 20 & 0xF)
		in.Ra = uint8(w >> 16 & 0xF)
	case OpPBR:
		in.Cond = Cond(w >> 20 & 0xF)
		in.Bn = uint8(w >> 16 & 0xF)
		in.N = uint8(w >> 12 & 0xF)
		in.Ra = uint8(w >> 8 & 0xF)
	}
	return in
}

// DecodeChecked decodes w and reports an error for undefined opcodes or
// out-of-range fields.
func DecodeChecked(w uint32) (Inst, error) {
	in := Decode(w)
	if err := Validate(in); err != nil {
		return Inst{}, fmt.Errorf("isa: word %#08x: %w", w, err)
	}
	return in, nil
}

// Validate reports whether the instruction's fields are in range for its
// opcode.
func Validate(in Inst) error {
	if !in.Op.Valid() {
		return fmt.Errorf("invalid opcode %#02x", uint8(in.Op))
	}
	checkReg := func(name string, r uint8) error {
		if r >= NumDataRegs {
			return fmt.Errorf("%s: register R%d out of range (0..%d)", name, r, NumDataRegs-1)
		}
		return nil
	}
	switch in.Op {
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA:
		for _, c := range []struct {
			n string
			r uint8
		}{{"rd", in.Rd}, {"ra", in.Ra}, {"rb", in.Rb}} {
			if err := checkReg(c.n, c.r); err != nil {
				return err
			}
		}
	case OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI, OpLI, OpLUI, OpLD, OpST:
		if err := checkReg("rd", in.Rd); err != nil {
			return err
		}
		if err := checkReg("ra", in.Ra); err != nil {
			return err
		}
		if in.Imm < -0x8000 || in.Imm > 0x7FFF {
			return fmt.Errorf("immediate %d out of 16-bit range", in.Imm)
		}
	case OpSETB:
		if in.Bn >= NumBranchRegs {
			return fmt.Errorf("branch register B%d out of range", in.Bn)
		}
		if in.Imm < 0 || in.Imm > 0xFFFFF {
			return fmt.Errorf("SETB address %#x out of 20-bit range", in.Imm)
		}
	case OpSETBR:
		if in.Bn >= NumBranchRegs {
			return fmt.Errorf("branch register B%d out of range", in.Bn)
		}
		if err := checkReg("ra", in.Ra); err != nil {
			return err
		}
	case OpPBR:
		if !in.Cond.Valid() {
			return fmt.Errorf("invalid condition %d", uint8(in.Cond))
		}
		if in.Bn >= NumBranchRegs {
			return fmt.Errorf("branch register B%d out of range", in.Bn)
		}
		if in.N > MaxDelaySlots {
			return fmt.Errorf("delay-slot count %d out of range (0..%d)", in.N, MaxDelaySlots)
		}
		if err := checkReg("ra", in.Ra); err != nil {
			return err
		}
	}
	return nil
}

// ReadsLDQ reports whether executing the instruction pops the Load Data
// Queue, i.e. whether it reads R7 as a source operand.
func (in Inst) ReadsLDQ() bool {
	switch in.Op {
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA:
		return in.Ra == QueueReg || in.Rb == QueueReg
	case OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI, OpLD, OpST:
		return in.Ra == QueueReg
	case OpSETBR:
		return in.Ra == QueueReg
	case OpPBR:
		return in.Cond != CondAL && in.Ra == QueueReg
	}
	return false
}

// WritesSDQ reports whether executing the instruction pushes the Store Data
// Queue, i.e. whether it writes R7 as a destination.
func (in Inst) WritesSDQ() bool {
	switch in.Op {
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA,
		OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI, OpLI, OpLUI:
		return in.Rd == QueueReg
	}
	return false
}

// HasDest reports whether the instruction writes a data register (including
// R7, which is an SDQ push rather than a register write).
func (in Inst) HasDest() bool {
	switch in.Op {
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA,
		OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI, OpLI, OpLUI:
		return true
	}
	return false
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	switch in.Op {
	case OpNOP, OpHALT, OpBANK:
		return in.Op.String()
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Ra, in.Rb)
	case OpLI, OpLUI:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Rd, in.Imm)
	case OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Ra, in.Imm)
	case OpLD, OpST:
		return fmt.Sprintf("%s %d(r%d)", in.Op, in.Imm, in.Ra)
	case OpSETB:
		return fmt.Sprintf("SETB b%d, %#x", in.Bn, in.Imm)
	case OpSETBR:
		return fmt.Sprintf("SETBR b%d, r%d", in.Bn, in.Ra)
	case OpPBR:
		return fmt.Sprintf("PBR %s, r%d, b%d, %d", in.Cond, in.Ra, in.Bn, in.N)
	}
	return fmt.Sprintf("%s ???", in.Op)
}

// WordIsBranch reports whether a raw instruction word encodes a branch-class
// instruction, using only the branch-class opcode bit. This is the check the
// PIPE instruction-fetch control logic performs when scanning the IQ.
func WordIsBranch(w uint32) bool { return Opcode(w >> 24).IsBranch() }

// WordDelaySlots extracts the delay-slot count from a raw branch-class word.
// The result is meaningful only when WordIsBranch(w) is true.
func WordDelaySlots(w uint32) uint8 { return uint8(w >> 12 & 0xF) }
