package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeBranchClass(t *testing.T) {
	if !OpPBR.IsBranch() {
		t.Error("OpPBR must be branch-class")
	}
	for _, op := range []Opcode{OpNOP, OpHALT, OpADD, OpADDI, OpLD, OpST, OpSETB, OpSETBR} {
		if op.IsBranch() {
			t.Errorf("%s must not be branch-class", op)
		}
	}
}

func TestEncodeDecodeRoundTripAll(t *testing.T) {
	cases := []Inst{
		{Op: OpNOP},
		{Op: OpHALT},
		{Op: OpADD, Rd: 1, Ra: 2, Rb: 3},
		{Op: OpSUB, Rd: 7, Ra: 0, Rb: 7},
		{Op: OpAND, Rd: 4, Ra: 5, Rb: 6},
		{Op: OpOR, Rd: 0, Ra: 0, Rb: 0},
		{Op: OpXOR, Rd: 3, Ra: 3, Rb: 3},
		{Op: OpSLL, Rd: 1, Ra: 2, Rb: 3},
		{Op: OpSRL, Rd: 1, Ra: 2, Rb: 3},
		{Op: OpSRA, Rd: 1, Ra: 2, Rb: 3},
		{Op: OpADDI, Rd: 2, Ra: 1, Imm: -1},
		{Op: OpADDI, Rd: 2, Ra: 1, Imm: 0x7FFF},
		{Op: OpADDI, Rd: 2, Ra: 1, Imm: -0x8000},
		{Op: OpANDI, Rd: 2, Ra: 1, Imm: 255},
		{Op: OpORI, Rd: 2, Ra: 1, Imm: 16},
		{Op: OpXORI, Rd: 2, Ra: 1, Imm: -16},
		{Op: OpSLLI, Rd: 2, Ra: 1, Imm: 31},
		{Op: OpSRLI, Rd: 2, Ra: 1, Imm: 1},
		{Op: OpSRAI, Rd: 2, Ra: 1, Imm: 2},
		{Op: OpLI, Rd: 6, Imm: -12345},
		{Op: OpLUI, Rd: 6, Imm: 0x7ABC},
		{Op: OpLD, Ra: 3, Imm: 40},
		{Op: OpST, Ra: 3, Imm: -4},
		{Op: OpSETB, Bn: 7, Imm: 0xFFFFF},
		{Op: OpSETB, Bn: 0, Imm: 0},
		{Op: OpSETBR, Bn: 3, Ra: 5},
		{Op: OpPBR, Cond: CondNE, Bn: 2, N: 7, Ra: 4},
		{Op: OpPBR, Cond: CondAL, Bn: 0, N: 0, Ra: 0},
		{Op: OpPBR, Cond: CondLE, Bn: 7, N: 3, Ra: 6},
	}
	for _, in := range cases {
		w := Encode(in)
		got, err := DecodeChecked(w)
		if err != nil {
			t.Fatalf("%v: decode error: %v", in, err)
		}
		if got != in {
			t.Errorf("round trip %v -> %#08x -> %v", in, w, got)
		}
	}
}

func TestEncodePanicsOnInvalid(t *testing.T) {
	bad := []Inst{
		{Op: Opcode(0x55)},
		{Op: OpADD, Rd: 8},
		{Op: OpADDI, Rd: 1, Imm: 0x8000},
		{Op: OpADDI, Rd: 1, Imm: -0x8001},
		{Op: OpSETB, Bn: 8},
		{Op: OpSETB, Bn: 0, Imm: 0x100000},
		{Op: OpSETB, Bn: 0, Imm: -1},
		{Op: OpPBR, Cond: Cond(12)},
		{Op: OpPBR, N: 8},
		{Op: OpPBR, Bn: 9},
	}
	for _, in := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Encode(%+v) did not panic", in)
				}
			}()
			Encode(in)
		}()
	}
}

func TestDecodeCheckedRejectsUnknownOpcode(t *testing.T) {
	if _, err := DecodeChecked(0x5500_0000); err == nil {
		t.Fatal("unknown opcode decoded without error")
	}
}

func TestCondHolds(t *testing.T) {
	cases := []struct {
		c    Cond
		v    int32
		want bool
	}{
		{CondAL, 0, true}, {CondAL, -5, true},
		{CondEQ, 0, true}, {CondEQ, 1, false},
		{CondNE, 0, false}, {CondNE, -1, true},
		{CondLT, -1, true}, {CondLT, 0, false}, {CondLT, 1, false},
		{CondGE, 0, true}, {CondGE, -1, false}, {CondGE, 5, true},
		{CondGT, 1, true}, {CondGT, 0, false},
		{CondLE, 0, true}, {CondLE, 1, false}, {CondLE, -3, true},
	}
	for _, c := range cases {
		if got := c.c.Holds(c.v); got != c.want {
			t.Errorf("%s.Holds(%d) = %v, want %v", c.c, c.v, got, c.want)
		}
	}
	if Cond(99).Holds(0) {
		t.Error("invalid condition must not hold")
	}
}

func TestQueueRegisterSemantics(t *testing.T) {
	cases := []struct {
		in        Inst
		readsLDQ  bool
		writesSDQ bool
	}{
		{Inst{Op: OpADD, Rd: 1, Ra: 7, Rb: 2}, true, false},
		{Inst{Op: OpADD, Rd: 1, Ra: 2, Rb: 7}, true, false},
		{Inst{Op: OpADD, Rd: 7, Ra: 1, Rb: 2}, false, true},
		{Inst{Op: OpADD, Rd: 7, Ra: 7, Rb: 7}, true, true},
		{Inst{Op: OpADDI, Rd: 7, Ra: 0, Imm: 0}, false, true},
		{Inst{Op: OpADDI, Rd: 0, Ra: 7, Imm: 0}, true, false},
		{Inst{Op: OpLI, Rd: 7, Imm: 1}, false, true},
		{Inst{Op: OpLD, Ra: 7, Imm: 0}, true, false},
		{Inst{Op: OpLD, Ra: 2, Imm: 0}, false, false},
		{Inst{Op: OpST, Ra: 7, Imm: 0}, true, false},
		{Inst{Op: OpPBR, Cond: CondNE, Ra: 7}, true, false},
		{Inst{Op: OpPBR, Cond: CondAL, Ra: 7}, false, false},
		{Inst{Op: OpSETBR, Bn: 1, Ra: 7}, true, false},
		{Inst{Op: OpNOP}, false, false},
	}
	for _, c := range cases {
		if got := c.in.ReadsLDQ(); got != c.readsLDQ {
			t.Errorf("%v ReadsLDQ = %v, want %v", c.in, got, c.readsLDQ)
		}
		if got := c.in.WritesSDQ(); got != c.writesSDQ {
			t.Errorf("%v WritesSDQ = %v, want %v", c.in, got, c.writesSDQ)
		}
	}
}

func TestHasDest(t *testing.T) {
	if !(Inst{Op: OpADD, Rd: 3}).HasDest() {
		t.Error("ADD has a destination")
	}
	for _, in := range []Inst{{Op: OpLD}, {Op: OpST}, {Op: OpPBR}, {Op: OpNOP}, {Op: OpSETB}} {
		if in.HasDest() {
			t.Errorf("%s must not report a destination", in.Op)
		}
	}
}

func TestWordBranchScan(t *testing.T) {
	pbr := Encode(Inst{Op: OpPBR, Cond: CondNE, Bn: 1, N: 5, Ra: 2})
	if !WordIsBranch(pbr) {
		t.Fatal("PBR word not detected as branch")
	}
	if n := WordDelaySlots(pbr); n != 5 {
		t.Fatalf("WordDelaySlots = %d, want 5", n)
	}
	add := Encode(Inst{Op: OpADD, Rd: 1, Ra: 2, Rb: 3})
	if WordIsBranch(add) {
		t.Fatal("ADD word detected as branch")
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpADD, Rd: 1, Ra: 2, Rb: 3}, "ADD r1, r2, r3"},
		{Inst{Op: OpADDI, Rd: 1, Ra: 2, Imm: -4}, "ADDI r1, r2, -4"},
		{Inst{Op: OpLI, Rd: 5, Imm: 9}, "LI r5, 9"},
		{Inst{Op: OpLD, Ra: 2, Imm: 8}, "LD 8(r2)"},
		{Inst{Op: OpST, Ra: 3, Imm: -8}, "ST -8(r3)"},
		{Inst{Op: OpPBR, Cond: CondNE, Ra: 1, Bn: 2, N: 4}, "PBR NE, r1, b2, 4"},
		{Inst{Op: OpNOP}, "NOP"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
	if s := Opcode(0x66).String(); !strings.Contains(s, "66") {
		t.Errorf("unknown opcode String = %q", s)
	}
}

// TestQuickRoundTrip generates random valid instructions and checks that
// Encode/Decode is the identity on them.
func TestQuickRoundTrip(t *testing.T) {
	ops := []Opcode{
		OpNOP, OpHALT, OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA,
		OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI, OpLI, OpLUI,
		OpLD, OpST, OpSETB, OpSETBR, OpPBR,
	}
	f := func(opIdx uint8, rd, ra, rb uint8, imm int16, addr uint32, cond, bn, n uint8) bool {
		in := Inst{Op: ops[int(opIdx)%len(ops)]}
		switch in.Op {
		case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA:
			in.Rd, in.Ra, in.Rb = rd%8, ra%8, rb%8
		case OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI, OpLI, OpLUI, OpLD, OpST:
			in.Rd, in.Ra, in.Imm = rd%8, ra%8, int32(imm)
		case OpSETB:
			in.Bn, in.Imm = bn%8, int32(addr%0x100000)
		case OpSETBR:
			in.Bn, in.Ra = bn%8, ra%8
		case OpPBR:
			in.Cond, in.Bn, in.N, in.Ra = Cond(cond%uint8(condMax)), bn%8, n%8, ra%8
		}
		got, err := DecodeChecked(Encode(in))
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
