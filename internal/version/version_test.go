package version

import (
	"strings"
	"testing"
)

// TestGet runs under `go test`, where the toolchain stamps build info for
// the test binary: the module path must come through, and the Go version
// is always present.
func TestGet(t *testing.T) {
	i := Get()
	if i.Module != "pipesim" {
		t.Errorf("Module = %q, want pipesim", i.Module)
	}
	if !strings.HasPrefix(i.GoVersion, "go") {
		t.Errorf("GoVersion = %q", i.GoVersion)
	}
	if i.Version == "" {
		t.Error("Version is empty")
	}
}

func TestShortRevision(t *testing.T) {
	cases := []struct {
		in   Info
		want string
	}{
		{Info{}, "unknown"},
		{Info{Revision: "abc"}, "abc"},
		{Info{Revision: "0123456789abcdef0123", Dirty: false}, "0123456789ab"},
		{Info{Revision: "0123456789abcdef0123", Dirty: true}, "0123456789ab+dirty"},
	}
	for _, c := range cases {
		if got := c.in.ShortRevision(); got != c.want {
			t.Errorf("ShortRevision(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStringContainsEveryField(t *testing.T) {
	s := Info{Module: "pipesim", Version: "v1.2.3", Revision: "deadbeefcafe0000",
		Dirty: true, Time: "2026-01-02T03:04:05Z", GoVersion: "go1.24.0"}.String()
	for _, want := range []string{"pipesim", "v1.2.3", "deadbeefcafe+dirty", "2026-01-02", "go1.24.0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
