// Package version reports what binary is running: module path and
// version plus the VCS revision and dirty bit stamped by the go
// toolchain. Every pipesim command exposes it behind a -version flag and
// the daemon logs it at startup, so a benchmark baseline or a metrics
// dashboard can always be traced back to the exact commit that produced
// it.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// Info describes the running binary.
type Info struct {
	// Module is the main module path ("pipesim").
	Module string `json:"module"`
	// Version is the main module version ("(devel)" for a plain build).
	Version string `json:"version"`
	// Revision is the VCS revision the binary was built from, empty when
	// the build carried no VCS metadata (e.g. `go test` or a build
	// outside a checkout).
	Revision string `json:"revision,omitempty"`
	// Dirty reports uncommitted changes in the build's working tree.
	Dirty bool `json:"dirty,omitempty"`
	// Time is the commit timestamp (RFC 3339), when stamped.
	Time string `json:"time,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// Get reads the running binary's build information. It degrades
// gracefully: a binary built without build info still reports the Go
// version.
func Get() Info {
	info := Info{Version: "(unknown)", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Module = bi.Main.Path
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		case "vcs.time":
			info.Time = s.Value
		}
	}
	return info
}

// ShortRevision returns the first 12 characters of the revision, with a
// "+dirty" suffix when the tree was modified, or "unknown" when no VCS
// metadata was stamped.
func (i Info) ShortRevision() string {
	rev := i.Revision
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if i.Dirty {
		rev += "+dirty"
	}
	return rev
}

// String renders the multi-line report printed by the -version flags.
func (i Info) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module    %s\n", i.Module)
	fmt.Fprintf(&sb, "version   %s\n", i.Version)
	fmt.Fprintf(&sb, "revision  %s\n", i.ShortRevision())
	if i.Time != "" {
		fmt.Fprintf(&sb, "built     %s\n", i.Time)
	}
	fmt.Fprintf(&sb, "go        %s", i.GoVersion)
	return sb.String()
}
