// Package queue provides the fixed-capacity FIFO ring buffer used for every
// hardware queue in the simulator: the architectural Load Address, Load
// Data, Store Address and Store Data queues, the Instruction Queue and
// Instruction Queue Buffer of the PIPE cache, and internal bus queues.
//
// Queues are deliberately bounded: a full queue is a structural hazard that
// stalls the producer, exactly as in hardware. All operations are O(1).
package queue

import "fmt"

// Queue is a bounded FIFO of values of type T backed by a ring buffer.
// The zero value is unusable; construct with New.
type Queue[T any] struct {
	buf  []T
	head int // index of the oldest element
	n    int // number of elements
}

// New returns an empty queue with the given capacity. It returns an error
// if capacity is not positive, since a zero-capacity hardware queue cannot
// exist; constructors propagate the error instead of crashing the caller.
func New[T any](capacity int) (*Queue[T], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("queue: capacity %d must be positive", capacity)
	}
	return &Queue[T]{buf: make([]T, capacity)}, nil
}

// Cap returns the queue's fixed capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int { return q.n }

// Empty reports whether the queue holds no elements.
func (q *Queue[T]) Empty() bool { return q.n == 0 }

// Full reports whether the queue is at capacity.
func (q *Queue[T]) Full() bool { return q.n == len(q.buf) }

// wrap reduces an index in [0, 2*cap) onto the ring. Every index the queue
// computes is head+k with head < cap and k <= cap, so one conditional
// subtraction replaces a hardware divide on the hot path.
func (q *Queue[T]) wrap(i int) int {
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	return i
}

// Push appends v at the tail. It reports false (and leaves the queue
// unchanged) when the queue is full.
func (q *Queue[T]) Push(v T) bool {
	if q.Full() {
		return false
	}
	q.buf[q.wrap(q.head+q.n)] = v
	q.n++
	return true
}

// MustPush appends v and panics if the queue is full. Use it where the
// caller has already checked Full as part of the stall logic, so overflow
// indicates a simulator bug.
func (q *Queue[T]) MustPush(v T) {
	if !q.Push(v) {
		panic("queue: push to full queue")
	}
}

// Peek returns the head element without removing it. It reports false when
// the queue is empty.
func (q *Queue[T]) Peek() (T, bool) {
	if q.Empty() {
		var zero T
		return zero, false
	}
	return q.buf[q.head], true
}

// At returns the i-th element from the head (At(0) == Peek) without removing
// it. It reports false when i is out of range. Fetch control logic uses At
// to scan queued instruction words for branches.
func (q *Queue[T]) At(i int) (T, bool) {
	if i < 0 || i >= q.n {
		var zero T
		return zero, false
	}
	return q.buf[q.wrap(q.head+i)], true
}

// Pop removes and returns the head element. It reports false when the queue
// is empty.
func (q *Queue[T]) Pop() (T, bool) {
	if q.Empty() {
		var zero T
		return zero, false
	}
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // release any references
	q.head = q.wrap(q.head + 1)
	q.n--
	return v, true
}

// MustPop removes and returns the head element and panics if the queue is
// empty.
func (q *Queue[T]) MustPop() T {
	v, ok := q.Pop()
	if !ok {
		panic("queue: pop from empty queue")
	}
	return v
}

// Clear removes all elements.
func (q *Queue[T]) Clear() {
	var zero T
	for i := range q.buf {
		q.buf[i] = zero
	}
	q.head = 0
	q.n = 0
}

// Slice returns the queued elements in FIFO order in a freshly allocated
// slice. Intended for tests and diagnostics.
func (q *Queue[T]) Slice() []T {
	out := make([]T, q.n)
	for i := 0; i < q.n; i++ {
		out[i] = q.buf[q.wrap(q.head+i)]
	}
	return out
}
