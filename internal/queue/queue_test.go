package queue

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew[T any](t *testing.T, capacity int) *Queue[T] {
	t.Helper()
	q, err := New[T](capacity)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestNewRejectsNonPositiveCapacity(t *testing.T) {
	for _, c := range []int{0, -1, -100} {
		if q, err := New[int](c); err == nil || q != nil {
			t.Errorf("New(%d) = %v, %v; want nil, error", c, q, err)
		}
	}
}

func TestPushPopFIFO(t *testing.T) {
	q := mustNew[int](t, 4)
	for i := 1; i <= 4; i++ {
		if !q.Push(i) {
			t.Fatalf("Push(%d) failed on non-full queue", i)
		}
	}
	if !q.Full() {
		t.Fatal("queue should be full after 4 pushes")
	}
	if q.Push(5) {
		t.Fatal("Push succeeded on full queue")
	}
	for i := 1; i <= 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v; want %d,true", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop succeeded on empty queue")
	}
}

func TestWrapAround(t *testing.T) {
	q := mustNew[int](t, 3)
	// Fill, drain partially, refill repeatedly to force head wrapping.
	next, expect := 0, 0
	for round := 0; round < 20; round++ {
		for !q.Full() {
			q.MustPush(next)
			next++
		}
		for k := 0; k < 2; k++ {
			if v := q.MustPop(); v != expect {
				t.Fatalf("round %d: pop = %d, want %d", round, v, expect)
			}
			expect++
		}
	}
}

func TestPeekAndAt(t *testing.T) {
	q := mustNew[string](t, 4)
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue reported ok")
	}
	q.MustPush("a")
	q.MustPush("b")
	q.MustPush("c")
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("Peek = %q,%v; want a,true", v, ok)
	}
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if v, ok := q.At(i); !ok || v != w {
			t.Fatalf("At(%d) = %q,%v; want %q,true", i, v, ok, w)
		}
	}
	if _, ok := q.At(3); ok {
		t.Fatal("At(3) beyond length reported ok")
	}
	if _, ok := q.At(-1); ok {
		t.Fatal("At(-1) reported ok")
	}
	// Peek must not consume.
	if q.Len() != 3 {
		t.Fatalf("Len = %d after peeks, want 3", q.Len())
	}
}

func TestClear(t *testing.T) {
	q := mustNew[int](t, 2)
	q.MustPush(1)
	q.MustPush(2)
	q.Clear()
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("queue not empty after Clear")
	}
	q.MustPush(9)
	if v := q.MustPop(); v != 9 {
		t.Fatalf("pop after clear = %d, want 9", v)
	}
}

func TestMustPopPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPop on empty queue did not panic")
		}
	}()
	mustNew[int](t, 1).MustPop()
}

func TestMustPushPanicsOnFull(t *testing.T) {
	q := mustNew[int](t, 1)
	q.MustPush(1)
	defer func() {
		if recover() == nil {
			t.Fatal("MustPush on full queue did not panic")
		}
	}()
	q.MustPush(2)
}

func TestSlice(t *testing.T) {
	q := mustNew[int](t, 4)
	q.MustPush(1)
	q.MustPush(2)
	q.MustPop()
	q.MustPush(3)
	q.MustPush(4)
	q.MustPush(5) // forces wrap with capacity 4
	got := q.Slice()
	want := []int{2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("Slice len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestQuickFIFOOrder drives a queue with a random push/pop sequence and
// checks it against a reference slice implementation.
func TestQuickFIFOOrder(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		rng := rand.New(rand.NewSource(seed))
		q, err := New[int](capacity)
		if err != nil {
			return false
		}
		var ref []int
		next := 0
		for op := 0; op < 500; op++ {
			if rng.Intn(2) == 0 {
				pushed := q.Push(next)
				if pushed != (len(ref) < capacity) {
					return false
				}
				if pushed {
					ref = append(ref, next)
				}
				next++
			} else {
				v, ok := q.Pop()
				if ok != (len(ref) > 0) {
					return false
				}
				if ok {
					if v != ref[0] {
						return false
					}
					ref = ref[1:]
				}
			}
			if q.Len() != len(ref) || q.Empty() != (len(ref) == 0) || q.Full() != (len(ref) == capacity) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
