package program

import (
	"testing"

	"pipesim/internal/isa"
)

func buildFixed(t *testing.T) *Image {
	t.Helper()
	b := NewBuilder()
	b.Label("start")
	b.LI(1, 3)                  // 1 parcel (imm 3 fits)
	b.RI(isa.OpADDI, 2, 1, 100) // 2 parcels
	b.SetB(0, "loop", 0)        // 2 parcels
	b.Label("loop")
	b.R3(isa.OpADD, 2, 2, 1)   // 1 parcel
	b.RI(isa.OpADDI, 1, 1, -1) // 2 parcels
	b.PBR(isa.CondNE, 1, 0, 1) // 1 parcel
	b.Nop()                    // 1 parcel
	b.Halt()
	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestToNativeLayoutAndInstAt(t *testing.T) {
	img := buildFixed(t)
	nat, err := ToNative(img)
	if err != nil {
		t.Fatal(err)
	}
	if !nat.Native {
		t.Fatal("image not marked native")
	}
	// Expected parcel lengths: LI=2? LI imm 3 fits 3 bits -> 1 parcel (2B).
	wantLens := []uint32{2, 4, 4, 2, 4, 2, 2, 2}
	addr := TextBase
	for i, want := range wantLens {
		w, n, ok := nat.InstAt(addr)
		if !ok {
			t.Fatalf("InstAt(%#x) failed at instruction %d", addr, i)
		}
		if n != want {
			t.Fatalf("instruction %d: length %d, want %d", i, n, want)
		}
		if isa.Decode(w) != isa.Decode(img.Text[i]) && isa.Decode(img.Text[i]).Op != isa.OpSETB {
			t.Fatalf("instruction %d decoded differently", i)
		}
		addr += n
	}
	if nat.NativeTextEnd() != addr {
		t.Errorf("NativeTextEnd = %#x, want %#x", nat.NativeTextEnd(), addr)
	}
	// Non-boundary lookups fail.
	if _, _, ok := nat.InstAt(TextBase + 1); ok {
		t.Error("InstAt on odd address succeeded")
	}
	if _, _, ok := nat.InstAt(nat.NativeTextEnd()); ok {
		t.Error("InstAt past end succeeded")
	}
}

func TestToNativeRelocatesSETBAndSymbols(t *testing.T) {
	img := buildFixed(t)
	nat, err := ToNative(img)
	if err != nil {
		t.Fatal(err)
	}
	// "loop" was at fixed 12 (instruction 3); native address = 2+4+4 = 10... TextBase relative.
	wantLoop := TextBase + 2 + 4 + 4
	if got, _ := nat.Lookup("loop"); got != wantLoop {
		t.Errorf("loop symbol = %#x, want %#x", got, wantLoop)
	}
	// The SETB instruction's immediate must point at the new loop address.
	_, _, _ = nat.InstAt(TextBase)
	var setb isa.Inst
	for _, w := range nat.Text {
		if in := isa.Decode(w); in.Op == isa.OpSETB {
			setb = in
		}
	}
	if uint32(setb.Imm) != wantLoop {
		t.Errorf("SETB target = %#x, want %#x", setb.Imm, wantLoop)
	}
}

func TestToNativeRAMWords(t *testing.T) {
	img := buildFixed(t)
	nat, err := ToNative(img)
	if err != nil {
		t.Fatal(err)
	}
	ram := nat.RAMWords()
	// First instruction (LI r1, 3) is one parcel in the low half of word 0.
	ps := isa.EncodeParcels(isa.Decode(img.Text[0]))
	if uint16(ram[0]&0xFFFF) != ps[0] {
		t.Errorf("ram[0] low = %#x, want parcel %#x", ram[0]&0xFFFF, ps[0])
	}
	// Fixed image RAM is the text itself.
	if &img.RAMWords()[0] != &img.Text[0] {
		t.Error("fixed RAMWords should alias Text")
	}
}

func TestToNativeRejectsTextAddressPairs(t *testing.T) {
	b := NewBuilder()
	b.Label("x")
	b.Nop()
	b.LAAddr(3, TextBase+4) // LUI/ORI pair pointing into text
	b.Halt()
	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ToNative(img); err == nil {
		t.Fatal("text-targeting LUI/ORI pair accepted")
	}
}

func TestToNativeIdempotent(t *testing.T) {
	img := buildFixed(t)
	nat, err := ToNative(img)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ToNative(nat)
	if err != nil {
		t.Fatal(err)
	}
	if again != nat {
		t.Error("ToNative on a native image should return it unchanged")
	}
}
