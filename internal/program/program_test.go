package program

import (
	"math"
	"strings"
	"testing"

	"pipesim/internal/isa"
)

func TestBuilderBasicLink(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	b.LI(1, 42)
	b.R3(isa.OpADD, 2, 1, 1)
	b.Halt()
	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != TextBase {
		t.Errorf("Entry = %#x, want %#x", img.Entry, TextBase)
	}
	if len(img.Text) != 3 {
		t.Fatalf("Text len = %d, want 3", len(img.Text))
	}
	if a, ok := img.Lookup("start"); !ok || a != TextBase {
		t.Errorf("Lookup(start) = %#x,%v", a, ok)
	}
	in, err := isa.DecodeChecked(img.Text[0])
	if err != nil || in.Op != isa.OpLI || in.Rd != 1 || in.Imm != 42 {
		t.Errorf("Text[0] = %v, %v", in, err)
	}
}

func TestBuilderForwardAndBackwardSETB(t *testing.T) {
	b := NewBuilder()
	b.SetB(0, "loop", 0)  // forward reference
	b.SetB(1, "start", 0) // backward... also forward (defined below at same addr)
	b.Label("start")      // at PC 8
	b.Label("loop")       // same address
	b.LI(1, 1)            // loop body
	b.SetB(2, "loop", 8)  // with offset
	b.Halt()
	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	in0 := isa.Decode(img.Text[0])
	if in0.Op != isa.OpSETB || uint32(in0.Imm) != 8 {
		t.Errorf("SETB0 target = %#x, want 8", in0.Imm)
	}
	in2 := isa.Decode(img.Text[3])
	if uint32(in2.Imm) != 16 {
		t.Errorf("SETB2 target = %#x, want 16 (loop+8)", in2.Imm)
	}
}

func TestBuilderLA(t *testing.T) {
	b := NewBuilder()
	b.LA(3, "vec", 4)
	b.Halt()
	b.DataLabel("vec")
	b.Word(7, 8, 9)
	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	lui := isa.Decode(img.Text[0])
	ori := isa.Decode(img.Text[1])
	if lui.Op != isa.OpLUI || ori.Op != isa.OpORI {
		t.Fatalf("LA pair = %v / %v", lui, ori)
	}
	want := DataBase + 4
	got := uint32(lui.Imm)<<16 | uint32(ori.Imm)&0xFFFF
	if got != want {
		t.Errorf("LA resolves to %#x, want %#x", got, want)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.SetB(0, "nowhere", 0)
	b.Halt()
	if _, err := b.Link(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("Link err = %v, want undefined label", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder()
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Halt()
	if _, err := b.Link(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("Link err = %v, want duplicate label", err)
	}
}

func TestBuilderInvalidInstructionDeferred(t *testing.T) {
	b := NewBuilder()
	b.Emit(isa.Inst{Op: isa.OpADD, Rd: 12}) // bad register
	b.Halt()
	if len(b.Errors()) == 0 {
		t.Fatal("invalid instruction not recorded")
	}
	if _, err := b.Link(); err == nil {
		t.Fatal("Link succeeded despite invalid instruction")
	}
}

func TestBuilderEmptyText(t *testing.T) {
	if _, err := NewBuilder().Link(); err == nil {
		t.Fatal("empty program linked without error")
	}
}

func TestDataEmitters(t *testing.T) {
	b := NewBuilder()
	b.Halt()
	b.DataLabel("a")
	b.Word(1, 2)
	b.DataLabel("f")
	b.Float(1.5)
	b.Space(3)
	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Data) != 6 {
		t.Fatalf("Data len = %d, want 6", len(img.Data))
	}
	if img.Data[2] != math.Float32bits(1.5) {
		t.Errorf("float word = %#x", img.Data[2])
	}
	if a, _ := img.Lookup("f"); a != DataBase+8 {
		t.Errorf("f = %#x, want %#x", a, DataBase+8)
	}
	for i := 3; i < 6; i++ {
		if img.Data[i] != 0 {
			t.Errorf("space word %d = %#x, want 0", i, img.Data[i])
		}
	}
}

func TestInstWord(t *testing.T) {
	b := NewBuilder()
	b.LI(1, 5)
	b.Halt()
	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := img.InstWord(TextBase); !ok || isa.Decode(w).Op != isa.OpLI {
		t.Error("InstWord(entry) failed")
	}
	if _, ok := img.InstWord(TextBase + 2); ok {
		t.Error("unaligned InstWord succeeded")
	}
	if _, ok := img.InstWord(img.TextEnd()); ok {
		t.Error("InstWord past end succeeded")
	}
}

func TestDisassembleContainsLabelsAndMnemonics(t *testing.T) {
	b := NewBuilder()
	b.Label("entry")
	b.LI(2, 3)
	b.Halt()
	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	d := img.Disassemble()
	for _, want := range []string{"entry:", "LI r2, 3", "HALT"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestNegativeSpaceRejected(t *testing.T) {
	b := NewBuilder()
	b.Halt()
	b.Space(-1)
	if _, err := b.Link(); err == nil {
		t.Fatal("negative space linked without error")
	}
}
