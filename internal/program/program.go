// Package program defines the linked program image the simulator executes:
// a text segment of fixed 32-bit instruction words, a preloaded data
// segment, an entry point, and a symbol table. It also provides Builder, the
// low-level code generator shared by the assembler (internal/asm) and the
// Livermore-loop workload generator (internal/kernels).
package program

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"pipesim/internal/isa"
)

// Memory layout. The PIPE address space in this model is a 20-bit byte
// address space (1 MiB): text at the bottom, data in the middle, and the
// memory-mapped floating point unit at the top (see internal/mem).
const (
	TextBase uint32 = 0x00000 // base byte address of the text segment
	DataBase uint32 = 0x40000 // base byte address of the data segment
	FPUBase  uint32 = 0x7F000 // base byte address of the FPU registers
	AddrMask uint32 = 0xFFFFF // 20-bit address space
)

// Image is a linked, executable program.
type Image struct {
	// Text holds the instruction words in program order, always in the
	// fixed 32-bit encoding (decode with isa.Decode). For fixed-format
	// images the instruction at byte address TextBase+4*i is Text[i];
	// native images place instruction i at its parcel address instead
	// (see InstAt).
	Text []uint32
	// Data holds the preloaded data segment starting at DataBase, as
	// 32-bit words; the word at byte address DataBase+4*i is Data[i].
	Data []uint32
	// Entry is the byte address of the first instruction.
	Entry uint32
	// Symbols maps label names to byte addresses.
	Symbols map[string]uint32

	// Native marks an image laid out in the 16/32-bit parcel format
	// (paper simulation parameter 1); see ToNative.
	Native      bool
	nativeAddrs []uint32 // instruction start addresses (ascending)
	nativeLens  []uint8  // instruction byte lengths (2 or 4)
	nativeRAM   []uint32 // packed parcels as word-addressed memory

	// Lazily built derived state. Images are immutable once linked, so
	// both are computed at most once and shared by every simulation
	// running the image, including concurrent ones.
	decodeOnce sync.Once
	decoded    []isa.Inst
	fpOnce     sync.Once
	fp         [sha256.Size]byte
}

// TextEnd returns the byte address one past the last instruction.
func (im *Image) TextEnd() uint32 { return TextBase + uint32(len(im.Text))*isa.WordBytes }

// InstWord returns the instruction word at byte address addr, or false if
// addr is outside the text segment or unaligned.
func (im *Image) InstWord(addr uint32) (uint32, bool) {
	if addr%isa.WordBytes != 0 || addr < TextBase || addr >= im.TextEnd() {
		return 0, false
	}
	return im.Text[(addr-TextBase)/isa.WordBytes], true
}

// Decoded returns the text segment predecoded into isa.Inst form: the
// instruction at byte address TextBase+4*i is Decoded()[i]. The table is
// built once per image and shared read-only across all simulations of it,
// so the per-fetch decode disappears from the simulator's hot loop. Only
// meaningful for fixed-format images; native images keep decoding from the
// queued instruction word (their text indices are not parcel addresses).
func (im *Image) Decoded() []isa.Inst {
	im.decodeOnce.Do(func() {
		tbl := make([]isa.Inst, len(im.Text))
		for i, w := range im.Text {
			tbl[i] = isa.Decode(w)
		}
		im.decoded = tbl
	})
	return im.decoded
}

// Fingerprint returns a content hash identifying everything about the image
// that can influence a simulation: the text and data segments, the entry
// point and the layout format. Two images with equal fingerprints produce
// identical runs under identical configurations (the simulator is
// deterministic), which is what makes results memoizable. Symbols are
// deliberately excluded: they name addresses but never change execution.
func (im *Image) Fingerprint() [sha256.Size]byte {
	im.fpOnce.Do(func() {
		h := sha256.New()
		var buf [8]byte
		writeU32 := func(v uint32) {
			binary.LittleEndian.PutUint32(buf[:4], v)
			h.Write(buf[:4])
		}
		writeU64 := func(v uint64) {
			binary.LittleEndian.PutUint64(buf[:8], v)
			h.Write(buf[:8])
		}
		writeU64(uint64(len(im.Text)))
		for _, w := range im.Text {
			writeU32(w)
		}
		writeU64(uint64(len(im.Data)))
		for _, w := range im.Data {
			writeU32(w)
		}
		writeU32(im.Entry)
		if im.Native {
			writeU32(1)
		} else {
			writeU32(0)
		}
		h.Sum(im.fp[:0])
	})
	return im.fp
}

// Lookup returns the address of a symbol.
func (im *Image) Lookup(name string) (uint32, bool) {
	a, ok := im.Symbols[name]
	return a, ok
}

// Disassemble renders the text segment with addresses and symbols, for
// debugging and the llgen/pipeasm tools.
func (im *Image) Disassemble() string {
	byAddr := make(map[uint32][]string)
	for name, a := range im.Symbols {
		byAddr[a] = append(byAddr[a], name)
	}
	for _, names := range byAddr {
		sort.Strings(names)
	}
	var out []byte
	for i, w := range im.Text {
		addr := TextBase + uint32(i)*isa.WordBytes
		for _, name := range byAddr[addr] {
			out = append(out, fmt.Sprintf("%s:\n", name)...)
		}
		out = append(out, fmt.Sprintf("  %05x:  %08x  %s\n", addr, w, isa.Decode(w))...)
	}
	return string(out)
}

// Builder incrementally assembles an Image. Instructions are appended with
// Emit and friends; labels may be referenced before they are defined (SETB
// and LA record fixups resolved at Link time). Data words are appended to
// the data segment with Word, Float and Space.
//
// The zero Builder is not ready; construct with NewBuilder.
type Builder struct {
	text    []uint32
	data    []uint32
	symbols map[string]uint32
	fixups  []fixup
	errs    []error
}

type fixupKind int

const (
	fixSETB fixupKind = iota // patch 20-bit address field of a SETB word
	fixLUI                   // patch the LUI half of an LA pair
	fixORI                   // patch the ORI half of an LA pair
)

type fixup struct {
	textIndex int
	label     string
	offset    int32
	kind      fixupKind
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{symbols: make(map[string]uint32)}
}

// PC returns the byte address of the next instruction to be emitted.
func (b *Builder) PC() uint32 { return TextBase + uint32(len(b.text))*isa.WordBytes }

// DataPC returns the byte address of the next data word to be emitted.
func (b *Builder) DataPC() uint32 { return DataBase + uint32(len(b.data))*isa.WordBytes }

// errf records a deferred error reported by Link.
func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Label defines name at the current text position.
func (b *Builder) Label(name string) {
	b.defineSymbol(name, b.PC())
}

// DataLabel defines name at the current data position.
func (b *Builder) DataLabel(name string) {
	b.defineSymbol(name, b.DataPC())
}

// DefineSymbol binds name to an absolute address (used by the assembler's
// predefined FPU symbols).
func (b *Builder) DefineSymbol(name string, addr uint32) {
	b.defineSymbol(name, addr)
}

func (b *Builder) defineSymbol(name string, addr uint32) {
	if name == "" {
		b.errf("empty label name")
		return
	}
	if _, dup := b.symbols[name]; dup {
		b.errf("duplicate label %q", name)
		return
	}
	b.symbols[name] = addr
}

// Emit appends one instruction. Invalid instructions are recorded as errors
// and reported by Link.
func (b *Builder) Emit(in isa.Inst) {
	if err := isa.Validate(in); err != nil {
		b.errf("at %#05x: %v: %v", b.PC(), in, err)
		b.text = append(b.text, isa.Encode(isa.Inst{Op: isa.OpNOP}))
		return
	}
	b.text = append(b.text, isa.Encode(in))
}

// Convenience emitters used heavily by the kernel generator.

// Nop emits a NOP.
func (b *Builder) Nop() { b.Emit(isa.Inst{Op: isa.OpNOP}) }

// Halt emits a HALT.
func (b *Builder) Halt() { b.Emit(isa.Inst{Op: isa.OpHALT}) }

// R3 emits a three-register instruction rd := ra op rb.
func (b *Builder) R3(op isa.Opcode, rd, ra, rb uint8) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Ra: ra, Rb: rb})
}

// RI emits an immediate instruction rd := ra op imm.
func (b *Builder) RI(op isa.Opcode, rd, ra uint8, imm int32) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Ra: ra, Imm: imm})
}

// LI emits rd := imm (16-bit signed).
func (b *Builder) LI(rd uint8, imm int32) { b.Emit(isa.Inst{Op: isa.OpLI, Rd: rd, Imm: imm}) }

// Mov emits rd := ra (as ADDI rd, ra, 0).
func (b *Builder) Mov(rd, ra uint8) { b.RI(isa.OpADDI, rd, ra, 0) }

// LD emits a load from imm(ra): the address is pushed on the LAQ and the
// datum later read through R7.
func (b *Builder) LD(ra uint8, imm int32) { b.Emit(isa.Inst{Op: isa.OpLD, Ra: ra, Imm: imm}) }

// ST emits a store to imm(ra): the address is pushed on the SAQ; the datum
// is the next value written to R7.
func (b *Builder) ST(ra uint8, imm int32) { b.Emit(isa.Inst{Op: isa.OpST, Ra: ra, Imm: imm}) }

// SetB emits SETB bn, label(+offset). The label may be defined later.
func (b *Builder) SetB(bn uint8, label string, offset int32) {
	b.fixups = append(b.fixups, fixup{textIndex: len(b.text), label: label, offset: offset, kind: fixSETB})
	b.Emit(isa.Inst{Op: isa.OpSETB, Bn: bn, Imm: 0})
}

// SetBAddr emits SETB bn with an absolute address.
func (b *Builder) SetBAddr(bn uint8, addr uint32) {
	b.Emit(isa.Inst{Op: isa.OpSETB, Bn: bn, Imm: int32(addr & AddrMask)})
}

// PBR emits a prepare-to-branch with n delay slots, testing cond on ra,
// targeting branch register bn.
func (b *Builder) PBR(cond isa.Cond, ra, bn, n uint8) {
	b.Emit(isa.Inst{Op: isa.OpPBR, Cond: cond, Ra: ra, Bn: bn, N: n})
}

// LA emits a two-instruction sequence loading the 20-bit address of
// label(+offset) into rd (LUI+ORI). The label may be defined later.
func (b *Builder) LA(rd uint8, label string, offset int32) {
	b.fixups = append(b.fixups, fixup{textIndex: len(b.text), label: label, offset: offset, kind: fixLUI})
	b.Emit(isa.Inst{Op: isa.OpLUI, Rd: rd, Imm: 0})
	b.fixups = append(b.fixups, fixup{textIndex: len(b.text), label: label, offset: offset, kind: fixORI})
	b.Emit(isa.Inst{Op: isa.OpORI, Rd: rd, Ra: rd, Imm: 0})
}

// LAAddr emits the same LUI+ORI pair for an absolute address. The ORI
// immediate carries the raw low 16 bits (logical immediates zero-extend at
// execution), encoded in the int16 view the instruction format stores.
func (b *Builder) LAAddr(rd uint8, addr uint32) {
	addr &= AddrMask
	b.RI(isa.OpLUI, rd, 0, int32(addr>>16))
	b.RI(isa.OpORI, rd, rd, int32(int16(addr&0xFFFF)))
}

// Word appends 32-bit words to the data segment.
func (b *Builder) Word(ws ...uint32) { b.data = append(b.data, ws...) }

// Float appends IEEE-754 single-precision values to the data segment.
func (b *Builder) Float(fs ...float32) {
	for _, f := range fs {
		b.data = append(b.data, math.Float32bits(f))
	}
}

// Space appends n zero words to the data segment.
func (b *Builder) Space(n int) {
	if n < 0 {
		b.errf("negative .space %d", n)
		return
	}
	b.data = append(b.data, make([]uint32, n)...)
}

// TextLen returns the number of instructions emitted so far.
func (b *Builder) TextLen() int { return len(b.text) }

// Link resolves fixups and returns the finished image. The entry point is
// the first instruction.
func (b *Builder) Link() (*Image, error) {
	for _, f := range b.fixups {
		addr, ok := b.symbols[f.label]
		if !ok {
			b.errf("undefined label %q", f.label)
			continue
		}
		target := (addr + uint32(f.offset)) & AddrMask
		w := b.text[f.textIndex]
		switch f.kind {
		case fixSETB:
			w = w&^uint32(0xFFFFF) | target
		case fixLUI:
			w = w&^uint32(0xFFFF) | target>>16
		case fixORI:
			w = w&^uint32(0xFFFF) | target&0xFFFF
		}
		b.text[f.textIndex] = w
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("program: %d error(s), first: %w", len(b.errs), b.errs[0])
	}
	if len(b.text) == 0 {
		return nil, fmt.Errorf("program: empty text segment")
	}
	syms := make(map[string]uint32, len(b.symbols))
	for k, v := range b.symbols {
		syms[k] = v
	}
	return &Image{
		Text:    append([]uint32(nil), b.text...),
		Data:    append([]uint32(nil), b.data...),
		Entry:   TextBase,
		Symbols: syms,
	}, nil
}

// Errors returns the deferred build errors accumulated so far (nil if none).
// Link also reports them; Errors is useful for tests.
func (b *Builder) Errors() []error { return b.errs }
