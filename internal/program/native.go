package program

import (
	"fmt"
	"sort"

	"pipesim/internal/isa"
)

// Native-format support: the paper's simulation parameter (1) compares the
// fixed 32-bit instruction format (used for all presented results) against
// the PIPE chip's 16/32-bit two-parcel format. A native image keeps the
// same instruction sequence but lays the instructions out at their parcel
// addresses, so the fetch path sees the denser code.
//
// Images are fixed-format by default; ToNative derives the native layout.

// InstAt returns the instruction word starting at addr together with its
// byte length in this image's format. For fixed-format images this is
// InstWord with a length of 4; for native images addresses are instruction
// boundaries in the parcel layout and lengths are 2 or 4.
func (im *Image) InstAt(addr uint32) (word uint32, nbytes uint32, ok bool) {
	if !im.Native {
		w, ok := im.InstWord(addr)
		return w, isa.WordBytes, ok
	}
	i := sort.Search(len(im.nativeAddrs), func(i int) bool { return im.nativeAddrs[i] >= addr })
	if i >= len(im.nativeAddrs) || im.nativeAddrs[i] != addr {
		return 0, 0, false
	}
	return im.Text[i], uint32(im.nativeLens[i]), true
}

// NativeTextEnd returns one past the last instruction byte in the native
// layout (TextEnd for fixed images).
func (im *Image) NativeTextEnd() uint32 {
	if !im.Native {
		return im.TextEnd()
	}
	n := len(im.nativeAddrs)
	return im.nativeAddrs[n-1] + uint32(im.nativeLens[n-1])
}

// RAMWords returns the text segment as it appears in word-addressed memory:
// the fixed words for a fixed image, or the packed parcels for a native
// image. The memory system preloads this at TextBase.
func (im *Image) RAMWords() []uint32 {
	if !im.Native {
		return im.Text
	}
	return im.nativeRAM
}

// ToNative derives the native-format layout of a fixed-format image: the
// same instruction sequence packed at parcel granularity, with SETB targets
// into the text segment relocated to the new instruction addresses. Text
// symbols are relocated too. It fails if an instruction cannot be encoded
// natively (SETB beyond the 19-bit reach) or if a SETB targets a byte that
// is not an instruction boundary.
func ToNative(im *Image) (*Image, error) {
	if im.Native {
		return im, nil
	}
	n := len(im.Text)
	addrs := make([]uint32, n)
	lens := make([]uint8, n)
	oldToNew := make(map[uint32]uint32, n)
	pos := TextBase
	for i, w := range im.Text {
		in, err := isa.DecodeChecked(w)
		if err != nil {
			return nil, fmt.Errorf("program: instruction %d: %v", i, err)
		}
		l := uint8(isa.ParcelLen(in) * isa.ParcelBytes)
		addrs[i] = pos
		lens[i] = l
		oldToNew[TextBase+uint32(i*isa.WordBytes)] = pos
		pos += uint32(l)
	}
	textEndOld := im.TextEnd()
	remap := func(a uint32) (uint32, bool) {
		if a >= textEndOld {
			return a, true // data/FPU addresses are unchanged
		}
		na, ok := oldToNew[a]
		return na, ok
	}
	// Relocate SETB targets (the only text references our generators
	// emit; LUI/ORI address pairs must not point into text).
	text := make([]uint32, n)
	copy(text, im.Text)
	for i, w := range text {
		in := isa.Decode(w)
		switch in.Op {
		case isa.OpSETB:
			na, ok := remap(uint32(in.Imm))
			if !ok {
				return nil, fmt.Errorf("program: SETB at instruction %d targets %#x, not an instruction boundary", i, in.Imm)
			}
			if na > 0x7FFFF {
				return nil, fmt.Errorf("program: native SETB target %#x exceeds the 19-bit reach", na)
			}
			in.Imm = int32(na)
			text[i] = isa.Encode(in)
		case isa.OpLUI:
			// Guard against LUI/ORI address pairs that point into the
			// text segment; those cannot be relocated reliably (address
			// pairs target data or the FPU in all generated programs).
			// A computed value of zero is allowed: it is register
			// clearing, not an address.
			if i+1 < n {
				next := isa.Decode(text[i+1])
				if next.Op == isa.OpORI && next.Rd == in.Rd && next.Ra == in.Rd {
					a := uint32(in.Imm)<<16 | uint32(next.Imm)&0xFFFF
					if a > TextBase && a < textEndOld {
						return nil, fmt.Errorf("program: LUI/ORI pair at instruction %d targets text %#x; cannot relocate", i, a)
					}
				}
			}
		}
		// Check native encodability.
		if _, err := safeEncodeParcels(isa.Decode(text[i])); err != nil {
			return nil, fmt.Errorf("program: instruction %d: %v", i, err)
		}
	}
	// Pack parcels into word-addressed RAM.
	totalBytes := int(pos - TextBase)
	ram := make([]uint32, (totalBytes+3)/4)
	for i, w := range text {
		ps, _ := safeEncodeParcels(isa.Decode(w))
		for k, p := range ps {
			byteOff := int(addrs[i]-TextBase) + k*isa.ParcelBytes
			// Little-endian parcel packing: the parcel at byte offset 0
			// occupies the low half of word 0.
			if byteOff%4 == 0 {
				ram[byteOff/4] |= uint32(p)
			} else {
				ram[byteOff/4] |= uint32(p) << 16
			}
		}
	}
	syms := make(map[string]uint32, len(im.Symbols))
	for name, a := range im.Symbols {
		na, ok := remap(a)
		if !ok {
			return nil, fmt.Errorf("program: symbol %q at %#x is not an instruction boundary", name, a)
		}
		syms[name] = na
	}
	out := &Image{
		Text:        text,
		Data:        im.Data,
		Entry:       TextBase,
		Symbols:     syms,
		Native:      true,
		nativeAddrs: addrs,
		nativeLens:  lens,
		nativeRAM:   ram,
	}
	return out, nil
}

// safeEncodeParcels converts EncodeParcels panics into errors.
func safeEncodeParcels(in isa.Inst) (ps []uint16, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return isa.EncodeParcels(in), nil
}
