package tracing

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, ok := ParseTraceparent(valid)
	if !ok {
		t.Fatalf("valid header rejected: %q", valid)
	}
	if got := tc.TraceID.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace ID = %s", got)
	}
	if got := tc.SpanID.String(); got != "00f067aa0ba902b7" {
		t.Errorf("span ID = %s", got)
	}
	if !tc.Sampled {
		t.Error("sampled flag lost")
	}

	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"00-ZZf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // non-hex
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("accepted invalid traceparent %q", h)
		}
	}
	// Future versions may carry trailing fields.
	if _, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-future"); !ok {
		t.Error("rejected a forward-compatible future-version header")
	}
}

func TestTraceLifecycle(t *testing.T) {
	tr := New(4)
	ctx, root := tr.StartTrace(context.Background(), "POST /v1/run", "req-1", TraceContext{})
	if SpanFrom(ctx) != root {
		t.Fatal("context does not carry the root span")
	}
	_, child := StartSpan(ctx, "run")
	child.SetAttr("cycles", "123")
	child.End()
	root.End()

	td, ok := tr.Get("req-1")
	if !ok {
		t.Fatal("finished trace not retained")
	}
	if td.Schema != Schema || td.RequestID != "req-1" || td.RemoteParent {
		t.Errorf("trace header wrong: %+v", td)
	}
	if len(td.Spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(td.Spans))
	}
	var rootData, childData *SpanData
	for i := range td.Spans {
		if td.Spans[i].SpanID == td.RootSpanID {
			rootData = &td.Spans[i]
		} else {
			childData = &td.Spans[i]
		}
	}
	if rootData == nil || childData == nil {
		t.Fatalf("root/child not distinguishable: %+v", td.Spans)
	}
	if childData.ParentID != rootData.SpanID {
		t.Errorf("child parent = %s, want the root %s", childData.ParentID, rootData.SpanID)
	}
	// Durations must be consistent: the child is contained in the root, and
	// the trace's duration is the root's.
	if childData.StartUS < rootData.StartUS || childData.DurUS > rootData.DurUS {
		t.Errorf("child span not contained in root: child %d+%dus, root %d+%dus",
			childData.StartUS, childData.DurUS, rootData.StartUS, rootData.DurUS)
	}
	if td.DurUS != rootData.DurUS {
		t.Errorf("trace duration %dus != root span %dus", td.DurUS, rootData.DurUS)
	}
	if len(childData.Attrs) != 1 || childData.Attrs[0].Key != "cycles" {
		t.Errorf("child attrs lost: %+v", childData.Attrs)
	}
}

func TestRemoteParentJoinsCallerTrace(t *testing.T) {
	parent, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	tr := New(4)
	_, root := tr.StartTrace(context.Background(), "req", "req-2", parent)
	if root.TraceID() != parent.TraceID {
		t.Errorf("trace did not join the caller's trace ID")
	}
	root.End()
	td, _ := tr.Get("req-2")
	if !td.RemoteParent {
		t.Error("remote_parent not flagged")
	}
	if td.Spans[0].ParentID != parent.SpanID.String() {
		t.Errorf("root parent = %s, want the caller's span %s", td.Spans[0].ParentID, parent.SpanID)
	}
}

func TestNoopSpansOnUntracedContext(t *testing.T) {
	ctx := context.Background()
	ctx2, span := StartSpan(ctx, "anything")
	if span != nil {
		t.Fatal("untraced StartSpan must return the nil no-op span")
	}
	if ctx2 != ctx {
		t.Error("untraced StartSpan must not grow the context")
	}
	// All nil-span methods must be safe no-ops.
	span.SetAttr("k", "v")
	span.End()
	if span.Name() != "" || span.Duration() != 0 || !span.TraceID().IsZero() {
		t.Error("nil span must read as zero values")
	}
}

func TestTracerLRUEviction(t *testing.T) {
	tr := New(2)
	for i := 0; i < 3; i++ {
		_, root := tr.StartTrace(context.Background(), "req", fmt.Sprintf("req-%d", i), TraceContext{})
		root.End()
	}
	if tr.Len() != 2 {
		t.Fatalf("retained %d traces, want the capacity 2", tr.Len())
	}
	if _, ok := tr.Get("req-0"); ok {
		t.Error("oldest trace not evicted")
	}
	for _, id := range []string{"req-1", "req-2"} {
		if _, ok := tr.Get(id); !ok {
			t.Errorf("trace %s evicted early", id)
		}
	}
	// A repeated request ID replaces, not duplicates.
	_, root := tr.StartTrace(context.Background(), "req", "req-2", TraceContext{})
	root.End()
	if tr.Len() != 2 {
		t.Errorf("repeat request ID grew the LRU to %d", tr.Len())
	}
}

func TestMaxSpansCap(t *testing.T) {
	tr := New(1)
	ctx, root := tr.StartTrace(context.Background(), "req", "req-big", TraceContext{})
	for i := 0; i < MaxSpansPerTrace+10; i++ {
		_, s := StartSpan(ctx, "stage")
		s.End()
	}
	root.End()
	td, _ := tr.Get("req-big")
	if len(td.Spans) != MaxSpansPerTrace {
		t.Errorf("exported %d spans, want the cap %d", len(td.Spans), MaxSpansPerTrace)
	}
	// The root ended after the cap was hit, so it is among the dropped.
	if td.DroppedSpans != 11 {
		t.Errorf("dropped %d spans, want 11", td.DroppedSpans)
	}
}

func TestOnSpanEndHook(t *testing.T) {
	tr := New(1)
	var names []string
	tr.OnSpanEnd(func(s *Span) { names = append(names, s.Name()) })
	ctx, root := tr.StartTrace(context.Background(), "req", "req-h", TraceContext{})
	_, s := StartSpan(ctx, "stage")
	s.End()
	s.End() // second End must not re-fire
	root.End()
	if len(names) != 2 || names[0] != "stage" || names[1] != "req" {
		t.Errorf("hook saw %v, want [stage req]", names)
	}
	if s.Duration() <= 0 {
		t.Error("ended span has no duration")
	}
}

func TestWriteChromeAndBreakdown(t *testing.T) {
	tr := New(1)
	ctx, root := tr.StartTrace(context.Background(), "req", "req-c", TraceContext{})
	_, a := StartSpan(ctx, "decode")
	a.End()
	_, b := StartSpan(ctx, "run")
	time.Sleep(2 * time.Millisecond)
	b.End()
	root.End()
	td, _ := tr.Get("req-c")

	var buf bytes.Buffer
	if err := td.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not Chrome-trace JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Errorf("chrome export has %d events, want 3", len(doc.TraceEvents))
	}

	breakdown := td.SpanBreakdown()
	if !strings.Contains(breakdown, "run=") || !strings.Contains(breakdown, "decode=") {
		t.Errorf("breakdown missing stages: %q", breakdown)
	}
	if strings.Contains(breakdown, "req=") {
		t.Errorf("breakdown includes the root span: %q", breakdown)
	}
	if !strings.HasPrefix(breakdown, "run=") {
		t.Errorf("breakdown not longest-first: %q", breakdown)
	}

	buf.Reset()
	if err := td.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back TraceData
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("native JSON does not round-trip: %v", err)
	}
	if back.TraceID != td.TraceID || len(back.Spans) != 3 {
		t.Errorf("round-trip lost data: %+v", back)
	}
}

func TestNilTracerGet(t *testing.T) {
	var tr *Tracer
	if _, ok := tr.Get("x"); ok {
		t.Error("nil tracer returned a trace")
	}
	if tr.Len() != 0 {
		t.Error("nil tracer has nonzero length")
	}
}
