// Package tracing is a dependency-free request-scoped span tracer, in the
// Dapper / OpenTelemetry mold but scaled to this repository's needs: a
// pipesimd request becomes one trace; the stages it passes through —
// decode, validation, simulation run, runcache lookup, each sweep
// experiment — become spans with monotonic-clock durations and
// parent/child links. Completed traces are kept in a bounded LRU keyed by
// request ID and exported as JSON (GET /v1/trace/{id}) or Chrome-trace
// format, and a per-span completion hook feeds stage-latency histograms in
// internal/metrics.
//
// Propagation is context-based and nil-safe: StartSpan on a context with
// no tracer returns a no-op span, so library code (sweep, runcache) can be
// instrumented unconditionally without the daemon attached — the cost is
// one context value lookup per instrumented call, nothing per simulated
// cycle. Inbound W3C traceparent headers are honored: a request carrying
// one joins the caller's trace ID, so pipesim spans line up under the
// caller's distributed trace.
package tracing

import (
	"container/list"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Schema tags exported traces, bumped when the JSON layout changes.
const Schema = "pipesim-trace/v1"

// MaxSpansPerTrace caps one trace's span count: a runaway sweep cannot
// balloon a trace past ~512 spans; further spans still run (and fire the
// OnSpanEnd hook) but are dropped from the export, counted in
// TraceData.DroppedSpans.
const MaxSpansPerTrace = 512

// DefaultTraceCapacity bounds the completed-trace LRU of a tracer built
// with New. At ~100 bytes a span and a few dozen spans per trace, the
// default keeps memory flat regardless of traffic.
const DefaultTraceCapacity = 256

// TraceID and SpanID are W3C Trace Context identifiers.
type TraceID [16]byte

// SpanID is the 8-byte span identifier.
type SpanID [8]byte

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports the invalid all-zeros ID.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports the invalid all-zeros ID.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// TraceContext is the inbound propagation state parsed from a W3C
// traceparent header: the caller's trace ID and the caller span the
// request's root span becomes a child of.
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// ParseTraceparent parses a W3C traceparent header
// ("00-<32 hex>-<16 hex>-<2 hex>"). It accepts any version byte except ff,
// per the spec's forward-compatibility rule, and rejects all-zero IDs.
func ParseTraceparent(h string) (TraceContext, bool) {
	var tc TraceContext
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tc, false
	}
	var version [1]byte
	if _, err := hex.Decode(version[:], []byte(h[0:2])); err != nil || version[0] == 0xff {
		return tc, false
	}
	if version[0] == 0 && len(h) != 55 {
		return tc, false // version 00 has no trailing fields
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(h[3:35])); err != nil {
		return tc, false
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(h[36:52])); err != nil {
		return tc, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return tc, false
	}
	if tc.TraceID.IsZero() || tc.SpanID.IsZero() {
		return tc, false
	}
	tc.Sampled = flags[0]&1 != 0
	return tc, true
}

// Attr is one key/value annotation on a span. Values are strings: span
// attributes are for humans reading a trace, not for metric math.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Tracer creates traces and retains completed ones in a bounded LRU keyed
// by request ID. Safe for concurrent use.
type Tracer struct {
	capacity int
	onEnd    atomic.Value // func(*Span)

	mu    sync.Mutex
	ll    *list.List               // front = most recently completed; values are *TraceData
	items map[string]*list.Element // by request ID
}

// New returns a tracer retaining up to capacity completed traces
// (capacity <= 0 selects DefaultTraceCapacity).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// OnSpanEnd installs a hook called synchronously whenever any span of this
// tracer ends — the bridge to stage-latency metrics. The hook must be safe
// for concurrent use; nil removes it.
func (t *Tracer) OnSpanEnd(fn func(*Span)) { t.onEnd.Store(fn) }

// StartTrace begins a new trace rooted at a span named name, keyed by
// requestID. A non-zero parent (from ParseTraceparent) joins the caller's
// trace: the trace keeps the caller's trace ID and the root span links to
// the caller's span. The returned context carries the root span for
// StartSpan callees.
func (t *Tracer) StartTrace(ctx context.Context, name, requestID string, parent TraceContext) (context.Context, *Span) {
	tr := &liveTrace{tracer: t, requestID: requestID, start: time.Now()}
	if parent.TraceID.IsZero() {
		tr.id = randomTraceID()
	} else {
		tr.id = parent.TraceID
		tr.remote = true
	}
	root := &Span{tr: tr, id: randomSpanID(), parent: parent.SpanID, name: name, start: tr.start}
	tr.root = root
	return WithSpan(ctx, root), root
}

// Get returns the completed trace for requestID, marking it most recently
// used. Nil-safe: a nil tracer never has traces.
func (t *Tracer) Get(requestID string) (*TraceData, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.items[requestID]
	if !ok {
		return nil, false
	}
	t.ll.MoveToFront(el)
	return el.Value.(*TraceData), true
}

// Len returns how many completed traces are retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ll.Len()
}

// keep inserts a finalized trace, evicting the least recently used beyond
// capacity. A repeated request ID replaces the previous trace.
func (t *Tracer) keep(d *TraceData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.items[d.RequestID]; ok {
		el.Value = d
		t.ll.MoveToFront(el)
		return
	}
	if t.ll.Len() >= t.capacity {
		oldest := t.ll.Back()
		t.ll.Remove(oldest)
		delete(t.items, oldest.Value.(*TraceData).RequestID)
	}
	t.items[d.RequestID] = t.ll.PushFront(d)
}

// liveTrace accumulates one in-flight trace.
type liveTrace struct {
	tracer    *Tracer
	id        TraceID
	requestID string
	start     time.Time
	remote    bool // trace ID inherited from an inbound traceparent

	root *Span // set by StartTrace before any use

	mu      sync.Mutex
	spans   []SpanData
	dropped int
}

// Span is one timed operation within a trace. End it exactly once; all
// methods are safe on a nil span (the no-op span StartSpan returns when no
// tracer is attached), so instrumented code needs no conditionals.
type Span struct {
	tr     *liveTrace
	id     SpanID
	parent SpanID
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	dur   time.Duration
	ended bool
}

// Name returns the span's operation name ("" on the no-op span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's monotonic duration, valid after End.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// TraceID returns the containing trace's ID (zero on the no-op span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.tr.id
}

// SetAttr annotates the span. Safe at any point before or after End (late
// attributes on the root span still export: finalization snapshots happen
// at End, so prefer setting attributes before ending).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End stops the span's clock (monotonic, via time.Since), fires the
// tracer's OnSpanEnd hook, and records the span into its trace. Ending the
// root span finalizes the trace into the tracer's LRU. Second and later
// calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	data := SpanData{
		SpanID:  s.id.String(),
		Name:    s.name,
		StartUS: s.start.Sub(s.tr.start).Microseconds(),
		DurUS:   s.dur.Microseconds(),
		Attrs:   append([]Attr(nil), s.attrs...),
	}
	s.mu.Unlock()
	if !s.parent.IsZero() {
		data.ParentID = s.parent.String()
	}

	tr := s.tr
	tr.mu.Lock()
	if len(tr.spans) < MaxSpansPerTrace {
		tr.spans = append(tr.spans, data)
	} else {
		tr.dropped++
	}
	tr.mu.Unlock()

	if fn, _ := tr.tracer.onEnd.Load().(func(*Span)); fn != nil {
		fn(s)
	}
	if s == tr.root {
		tr.finalize()
	}
}

// finalize freezes the accumulated spans into a TraceData and hands it to
// the tracer's LRU. Called once, from the root span's End.
func (tr *liveTrace) finalize() {
	tr.mu.Lock()
	d := &TraceData{
		Schema:       Schema,
		TraceID:      tr.id.String(),
		RootSpanID:   tr.root.id.String(),
		RequestID:    tr.requestID,
		RemoteParent: tr.remote,
		Start:        tr.start.UTC().Format(time.RFC3339Nano),
		DurUS:        tr.root.Duration().Microseconds(),
		Spans:        tr.spans,
		DroppedSpans: tr.dropped,
	}
	tr.spans = nil
	tr.mu.Unlock()
	tr.tracer.keep(d)
}

// SpanData is the exported form of one completed span. Start offsets are
// microseconds from the trace's start, durations are monotonic
// microseconds — the two sum consistently with the trace's DurUS.
type SpanData struct {
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_span_id,omitempty"`
	Name     string `json:"name"`
	StartUS  int64  `json:"start_us"`
	DurUS    int64  `json:"duration_us"`
	Attrs    []Attr `json:"attrs,omitempty"`
}

// TraceData is one completed trace as served by GET /v1/trace/{id}.
type TraceData struct {
	Schema       string     `json:"schema"`
	TraceID      string     `json:"trace_id"`
	RootSpanID   string     `json:"root_span_id"`
	RequestID    string     `json:"request_id"`
	RemoteParent bool       `json:"remote_parent,omitempty"`
	Start        string     `json:"start"`
	DurUS        int64      `json:"duration_us"`
	Spans        []SpanData `json:"spans"`
	DroppedSpans int        `json:"dropped_spans,omitempty"`
}

// WriteJSON writes the trace in its native (OTLP-style) JSON form.
func (d *TraceData) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// chromeSpan mirrors the Chrome trace event format's complete ("X") event.
type chromeSpan struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome writes the trace as Chrome-trace JSON (chrome://tracing /
// Perfetto): each span a complete event at its start offset. All spans
// share one thread row; the UI nests them by time containment, which
// matches the parent/child structure for synchronous stage spans.
func (d *TraceData) WriteChrome(w io.Writer) error {
	events := make([]chromeSpan, 0, len(d.Spans)+1)
	for _, s := range d.Spans {
		dur := s.DurUS
		if dur <= 0 {
			dur = 1
		}
		args := map[string]string{"span_id": s.SpanID}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeSpan{
			Name: s.Name, Ph: "X", Ts: s.StartUS, Dur: dur, Pid: 1, Tid: 1, Args: args,
		})
	}
	out := struct {
		TraceEvents     []chromeSpan `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ms"}
	data, err := json.Marshal(out)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// SpanBreakdown summarizes a trace's non-root spans as "name=duration"
// terms, longest first — the payload of pipesimd's slow-request log line.
func (d *TraceData) SpanBreakdown() string {
	type term struct {
		name string
		dur  int64
	}
	terms := make([]term, 0, len(d.Spans))
	for _, s := range d.Spans {
		if s.SpanID == d.RootSpanID {
			continue
		}
		terms = append(terms, term{s.Name, s.DurUS})
	}
	sort.SliceStable(terms, func(i, j int) bool { return terms[i].dur > terms[j].dur })
	var sb []byte
	for i, t := range terms {
		if i > 0 {
			sb = append(sb, ' ')
		}
		sb = fmt.Appendf(sb, "%s=%s", t.name, time.Duration(t.dur)*time.Microsecond)
	}
	return string(sb)
}

// randomTraceID and randomSpanID draw non-zero identifiers from the
// process-wide PRNG; math/rand/v2's global generator is seeded per process
// and safe for concurrent use, and trace IDs need uniqueness, not secrecy.
func randomTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		put64(id[0:8], rand.Uint64())
		put64(id[8:16], rand.Uint64())
	}
	return id
}

func randomSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		put64(id[:], rand.Uint64())
	}
	return id
}

func put64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(56-8*i)))
	}
}
