package tracing

// Context propagation. Spans travel down call stacks in a context.Context;
// instrumented library code (sweep's runner, runcache's lookup) calls
// StartSpan unconditionally and gets a no-op span when nothing upstream
// started a trace. That keeps the instrumentation free of daemon imports
// and makes its cost on untraced paths one context value lookup per call —
// never per cycle, never per event.

import (
	"context"
	"time"
)

// ctxKey is the private context key type for the current span.
type ctxKey struct{}

// WithSpan returns a context carrying s as the current span.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFrom returns the current span, or nil (the no-op span) when the
// context carries none.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's current span and returns a
// context carrying the child. With no current span — an untraced call
// path — it returns ctx unchanged and the nil no-op span, whose methods
// (SetAttr, End, Duration) all no-op, so callers never branch.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := &Span{
		tr:     parent.tr,
		id:     randomSpanID(),
		parent: parent.id,
		name:   name,
		start:  time.Now(),
	}
	return WithSpan(ctx, child), child
}
