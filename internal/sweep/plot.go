package sweep

import (
	"fmt"
	"strings"
)

// plotGlyphs marks the series in a Plot, in order.
var plotGlyphs = []byte{'c', '1', '2', '3', '4', '5', '6', '7', '8', '9'}

// Plot renders the result as an ASCII chart: the x axis is the experiment's
// sweep variable (log-spaced positions as given), the y axis is cycles,
// and each series draws with its own glyph (legend below). Useful for
// eyeballing the figures in a terminal; the paper's curve shapes —
// crossovers, knees, compression — are all visible at this resolution.
func (r *Result) Plot() string {
	axis := r.axis()
	if len(axis) == 0 {
		return r.Title + "\n(no data)\n"
	}
	// Y range over valid points.
	var lo, hi uint64 = ^uint64(0), 0
	for _, s := range r.Series {
		for _, p := range s.Points {
			if !p.Valid {
				continue
			}
			if p.Cycles < lo {
				lo = p.Cycles
			}
			if p.Cycles > hi {
				hi = p.Cycles
			}
		}
	}
	if hi == 0 || lo == ^uint64(0) {
		return r.Title + "\n(no data)\n"
	}
	if lo == hi {
		hi = lo + 1
	}

	const rows = 16
	colWidth := 6
	cols := len(axis) * colWidth
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	rowOf := func(c uint64) int {
		// Row 0 is the top (hi); rows-1 the bottom (lo).
		f := float64(c-lo) / float64(hi-lo)
		row := int(float64(rows-1) * (1 - f))
		if row < 0 {
			row = 0
		}
		if row >= rows {
			row = rows - 1
		}
		return row
	}
	colOf := func(x int) int {
		for i, ax := range axis {
			if ax == x {
				return i*colWidth + colWidth/2
			}
		}
		return 0
	}
	for si, s := range r.Series {
		g := plotGlyphs[si%len(plotGlyphs)]
		for _, p := range s.Points {
			if !p.Valid {
				continue
			}
			row, col := rowOf(p.Cycles), colOf(p.CacheBytes)
			if grid[row][col] == ' ' {
				grid[row][col] = g
			} else if grid[row][col] != g {
				grid[row][col] = '*' // overlapping series
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", r.Title)
	for i, line := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%8d", hi)
		case rows - 1:
			label = fmt.Sprintf("%8d", lo)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(line))
	}
	sb.WriteString("         +")
	sb.WriteString(strings.Repeat("-", cols))
	sb.WriteByte('\n')
	sb.WriteString("          ")
	for _, x := range axis {
		fmt.Fprintf(&sb, "%*d", colWidth, x)
	}
	fmt.Fprintf(&sb, "   (%s)\n", r.XLabel)
	sb.WriteString("legend: ")
	for si, s := range r.Series {
		if si > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%c=%s", plotGlyphs[si%len(plotGlyphs)], s.Label)
	}
	sb.WriteString("  (*=overlap)\n")
	return sb.String()
}
