package sweep

import (
	"strings"
	"testing"
)

func TestPlotNoData(t *testing.T) {
	empty := &Result{Title: "empty figure"}
	if got := empty.Plot(); got != "empty figure\n(no data)\n" {
		t.Errorf("empty result Plot = %q", got)
	}
	// Points exist but none are valid: same degenerate rendering.
	invalid := &Result{
		Title: "all invalid",
		Series: []Series{{Label: "pipe", Points: []Point{
			{CacheBytes: 8, Cycles: 100, Valid: false},
			{CacheBytes: 16, Cycles: 200, Valid: false},
		}}},
	}
	if got := invalid.Plot(); got != "all invalid\n(no data)\n" {
		t.Errorf("invalid-only result Plot = %q", got)
	}
}

func TestPlotDegenerateRange(t *testing.T) {
	// Every valid point has the same cycle count: lo == hi must not divide
	// by zero, and the single value labels the bottom row.
	r := &Result{
		Title:  "flat",
		XLabel: "cache bytes",
		Series: []Series{{Label: "pipe", Points: []Point{
			{CacheBytes: 32, Cycles: 500, Valid: true},
			{CacheBytes: 64, Cycles: 500, Valid: true},
		}}},
	}
	out := r.Plot()
	if !strings.Contains(out, "     500 |") {
		t.Errorf("flat plot missing lo label:\n%s", out)
	}
	if !strings.Contains(out, "     501 |") {
		t.Errorf("flat plot missing widened hi label:\n%s", out)
	}
	if n := strings.Count(gridArea(out), "c"); n != 2 {
		t.Errorf("flat plot has %d series glyphs, want 2:\n%s", n, out)
	}
}

// gridArea strips each line to the chart area right of the y-axis '|', so
// glyph searches cannot match axis labels or legend text.
func gridArea(out string) string {
	var sb strings.Builder
	for _, l := range strings.Split(out, "\n") {
		if _, grid, ok := strings.Cut(l, "|"); ok {
			sb.WriteString(grid)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func TestPlotAxisLegendAndGlyphs(t *testing.T) {
	r := &Result{
		Title:  "figure 5a",
		XLabel: "cache bytes",
		Series: []Series{
			{Label: "conventional", Points: []Point{
				{CacheBytes: 64, Cycles: 1000, Valid: true},
				{CacheBytes: 128, Cycles: 400, Valid: true},
				{CacheBytes: 4, Cycles: 0, Valid: false}, // must not widen the axis row glyphs
			}},
			{Label: "pipe", Points: []Point{
				{CacheBytes: 64, Cycles: 600, Valid: true},
				{CacheBytes: 128, Cycles: 800, Valid: true},
			}},
		},
	}
	out := r.Plot()
	lines := strings.Split(out, "\n")
	if lines[0] != "figure 5a" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.Contains(out, "    1000 |") {
		t.Errorf("hi label missing:\n%s", out)
	}
	if !strings.Contains(out, "     400 |") {
		t.Errorf("lo label missing:\n%s", out)
	}
	// Axis row lists every x value, including the invalid point's.
	var axisRow string
	for _, l := range lines {
		if strings.Contains(l, "(cache bytes)") {
			axisRow = l
		}
	}
	if axisRow == "" {
		t.Fatalf("no axis row in:\n%s", out)
	}
	for _, x := range []string{"4", "64", "128"} {
		if !strings.Contains(axisRow, x) {
			t.Errorf("axis row %q missing x value %s", axisRow, x)
		}
	}
	if !strings.Contains(out, "legend: c=conventional, 1=pipe  (*=overlap)") {
		t.Errorf("legend line wrong:\n%s", out)
	}
	// The curves cross between 64 and 128: each series plots both its
	// glyphs, with conventional above pipe at 64 and below at 128.
	var cRows, oneRows []int
	for i, l := range lines {
		_, grid, ok := strings.Cut(l, "|")
		if !ok {
			continue
		}
		if strings.ContainsRune(grid, 'c') {
			cRows = append(cRows, i)
		}
		if strings.ContainsRune(grid, '1') {
			oneRows = append(oneRows, i)
		}
	}
	if len(cRows) != 2 || len(oneRows) != 2 {
		t.Fatalf("got %d 'c' rows and %d '1' rows, want 2 each:\n%s", len(cRows), len(oneRows), out)
	}
	// Row 0 is the top: 1000 cycles. The conventional point at 64 B must
	// render above (smaller row index than) the pipe point at 64 B.
	if cRows[0] >= oneRows[0] {
		t.Errorf("crossover not visible: 'c' first at row %d, '1' at row %d:\n%s", cRows[0], oneRows[0], out)
	}
}

func TestPlotOverlapMarker(t *testing.T) {
	r := &Result{
		Title:  "overlap",
		XLabel: "cache bytes",
		Series: []Series{
			{Label: "a", Points: []Point{
				{CacheBytes: 16, Cycles: 100, Valid: true},
				{CacheBytes: 32, Cycles: 900, Valid: true},
			}},
			{Label: "b", Points: []Point{
				{CacheBytes: 16, Cycles: 100, Valid: true}, // same cell as series a
				{CacheBytes: 32, Cycles: 100, Valid: true},
			}},
		},
	}
	out := r.Plot()
	if !strings.Contains(gridArea(out), "*") {
		t.Errorf("coincident points not marked with '*':\n%s", out)
	}
	// A series overlapping itself keeps its own glyph.
	self := &Result{
		Title:  "self",
		XLabel: "x",
		Series: []Series{{Label: "a", Points: []Point{
			{CacheBytes: 16, Cycles: 100, Valid: true},
			{CacheBytes: 16, Cycles: 101, Valid: true},
			{CacheBytes: 32, Cycles: 5000, Valid: true},
		}}},
	}
	if out := self.Plot(); strings.Contains(gridArea(out), "*") {
		t.Errorf("same-series overlap wrongly marked with '*':\n%s", out)
	}
}
