// Package sweep defines the paper's experiments: for every figure and
// table in the evaluation section there is a runnable experiment that
// sweeps the relevant parameters over the Livermore-loop benchmark and
// produces the same rows/series the paper reports.
package sweep

import (
	"context"

	"fmt"
	"sort"
	"strings"
	"sync"

	"pipesim/internal/core"
	"pipesim/internal/isa"
	"pipesim/internal/kernels"
	"pipesim/internal/mem"
	"pipesim/internal/program"
	"pipesim/internal/runcache"
	"pipesim/internal/stats"
	"pipesim/internal/synth"
	"pipesim/internal/trace"
)

// CacheSizes is the cache-size axis of the paper's figures.
var CacheSizes = []int{16, 32, 64, 128, 256, 512}

// PipeVariant is one Table II IQ/IQB configuration.
type PipeVariant struct {
	Name string
	Line int
	IQ   int
	IQB  int
}

// TableII lists the paper's simulated IQ and IQB configurations.
var TableII = []PipeVariant{
	{Name: "8-8", Line: 8, IQ: 8, IQB: 8},
	{Name: "16-16", Line: 16, IQ: 16, IQB: 16},
	{Name: "16-32", Line: 32, IQ: 16, IQB: 32},
	{Name: "32-32", Line: 32, IQ: 32, IQB: 32},
}

// ConvLineBytes is the conventional cache's line (tag) granularity used in
// the comparisons; fills are per-instruction sub-blocks.
const ConvLineBytes = 16

// Point is one simulation result in a series.
type Point struct {
	CacheBytes int
	Cycles     uint64
	Valid      bool // false when cache size < line size (no such machine)
	Stats      *stats.Sim
}

// Series is one curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Result is a rendered experiment.
type Result struct {
	ID          string
	Title       string
	Description string
	XLabel      string
	Series      []Series
}

// benchImage caches the built benchmark (it is immutable across runs). The
// once guard makes the cache safe under the parallel sweep runner.
var (
	benchOnce  sync.Once
	benchImage *program.Image
	benchErr   error
)

// BenchmarkImage returns the shared Livermore benchmark image. It is safe
// for concurrent use: the image is built once and never mutated.
func BenchmarkImage() (*program.Image, error) {
	benchOnce.Do(func() {
		benchImage, _, benchErr = kernels.Program()
	})
	return benchImage, benchErr
}

// runPoint simulates one configuration point through the content-addressed
// run cache: repeated points (figures share machines, daemons repeat
// sweeps) return the memoized statistics without re-simulating. Experiments
// that attach tracers or probes must not use it — a cached result replays
// no events — and call core.New directly instead.
func runPoint(ctx context.Context, cfg core.Config, img *program.Image) (*stats.Sim, error) {
	return runcache.Default.RunCtx(ctx, cfg, img)
}

// memConfig assembles the paper's memory-system settings.
func memConfig(accessTime, busWidth int, pipelined bool) mem.Config {
	return mem.Config{
		AccessTime:    accessTime,
		BusWidthBytes: busWidth,
		Pipelined:     pipelined,
		InstrPriority: true,
		FPULatency:    4,
	}
}

// RunPipe simulates one PIPE configuration point on the benchmark.
func RunPipe(ctx context.Context, v PipeVariant, cacheBytes int, mcfg mem.Config, truePrefetch bool) (*stats.Sim, error) {
	img, err := BenchmarkImage()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Fetch:        core.FetchPIPE,
		CacheBytes:   cacheBytes,
		LineBytes:    v.Line,
		IQBytes:      v.IQ,
		IQBBytes:     v.IQB,
		TruePrefetch: truePrefetch,
		Mem:          mcfg,
		CPU:          core.DefaultConfig().CPU,
	}
	return runPoint(ctx, cfg, img)
}

// RunConv simulates one conventional-cache point on the benchmark.
func RunConv(ctx context.Context, cacheBytes int, mcfg mem.Config) (*stats.Sim, error) {
	img, err := BenchmarkImage()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Fetch:      core.FetchConventional,
		CacheBytes: cacheBytes,
		LineBytes:  ConvLineBytes,
		Mem:        mcfg,
		CPU:        core.DefaultConfig().CPU,
	}
	return runPoint(ctx, cfg, img)
}

// runPipeIntro is RunPipe with cache introspection enabled: the figure
// experiments run their points introspected so sweep summaries can report
// the 3C miss-class breakdown. Kept separate from RunPipe — introspection
// keys differently in the run cache, and the benchmark baselines
// (BenchmarkSingleRun) measure the uninstrumented path.
func runPipeIntro(ctx context.Context, v PipeVariant, cacheBytes int, mcfg mem.Config, truePrefetch bool) (*stats.Sim, error) {
	img, err := BenchmarkImage()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Fetch:           core.FetchPIPE,
		CacheBytes:      cacheBytes,
		LineBytes:       v.Line,
		IQBytes:         v.IQ,
		IQBBytes:        v.IQB,
		TruePrefetch:    truePrefetch,
		Mem:             mcfg,
		CPU:             core.DefaultConfig().CPU,
		CacheIntrospect: true,
	}
	return runPoint(ctx, cfg, img)
}

// runConvIntro is RunConv with cache introspection enabled (see
// runPipeIntro).
func runConvIntro(ctx context.Context, cacheBytes int, mcfg mem.Config) (*stats.Sim, error) {
	img, err := BenchmarkImage()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Fetch:           core.FetchConventional,
		CacheBytes:      cacheBytes,
		LineBytes:       ConvLineBytes,
		Mem:             mcfg,
		CPU:             core.DefaultConfig().CPU,
		CacheIntrospect: true,
	}
	return runPoint(ctx, cfg, img)
}

// RunTIB simulates a Target Instruction Buffer point on the benchmark.
func RunTIB(ctx context.Context, entries, lineBytes int, mcfg mem.Config) (*stats.Sim, error) {
	img, err := BenchmarkImage()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Fetch:        core.FetchTIB,
		CacheBytes:   16, // unused by the TIB engine but validated
		LineBytes:    16,
		TIBEntries:   entries,
		TIBLineBytes: lineBytes,
		Mem:          mcfg,
		CPU:          core.DefaultConfig().CPU,
	}
	return runPoint(ctx, cfg, img)
}

// GridVariants lists the machine variants a grid sweep can name: the
// conventional cache plus every Table II PIPE arrangement. The order is
// the figures' presentation order.
func GridVariants() []string {
	out := []string{"conv"}
	for _, v := range TableII {
		out = append(out, v.Name)
	}
	return out
}

// GridConfig assembles the full core configuration for one figure-style
// grid point: a named variant ("conv" or a Table II name) at one cache
// size under the paper's memory-system settings. valid is false when the
// cache is smaller than the variant's line size (no such machine — the
// figures leave those cells blank). The returned configuration is exactly
// what RunConv/RunPipe simulate, so its runcache key identifies the point
// across processes (job checkpoints rely on that).
func GridConfig(variant string, cacheBytes, accessTime, busBytes int, pipelined, truePrefetch bool) (cfg core.Config, valid bool, err error) {
	mcfg := memConfig(accessTime, busBytes, pipelined)
	if variant == "conv" {
		cfg = core.Config{
			Fetch:      core.FetchConventional,
			CacheBytes: cacheBytes,
			LineBytes:  ConvLineBytes,
			Mem:        mcfg,
			CPU:        core.DefaultConfig().CPU,
		}
		return cfg, cacheBytes >= ConvLineBytes, nil
	}
	for _, v := range TableII {
		if v.Name != variant {
			continue
		}
		cfg = core.Config{
			Fetch:        core.FetchPIPE,
			CacheBytes:   cacheBytes,
			LineBytes:    v.Line,
			IQBytes:      v.IQ,
			IQBBytes:     v.IQB,
			TruePrefetch: truePrefetch,
			Mem:          mcfg,
			CPU:          core.DefaultConfig().CPU,
		}
		return cfg, cacheBytes >= v.Line, nil
	}
	return cfg, false, fmt.Errorf("sweep: unknown grid variant %q (want conv or a Table II name)", variant)
}

// figure runs one cache-size sweep: the conventional cache plus the four
// Table II PIPE configurations.
func figure(ctx context.Context, id, title string, accessTime, busWidth int, pipelined bool) (*Result, error) {
	mcfg := memConfig(accessTime, busWidth, pipelined)
	res := &Result{
		ID:    id,
		Title: title,
		Description: fmt.Sprintf("total cycles for the 150,575-instruction Livermore benchmark; "+
			"memory access time %d, input bus %d bytes, pipelined=%v, instruction priority, true prefetch",
			accessTime, busWidth, pipelined),
		XLabel: "cache size (bytes)",
	}
	conv := Series{Label: "conv"}
	for _, size := range CacheSizes {
		if size < ConvLineBytes {
			conv.Points = append(conv.Points, Point{CacheBytes: size})
			continue
		}
		st, err := runConvIntro(ctx, size, mcfg)
		if err != nil {
			return nil, err
		}
		conv.Points = append(conv.Points, Point{CacheBytes: size, Cycles: st.Cycles, Valid: true, Stats: st})
	}
	res.Series = append(res.Series, conv)
	for _, v := range TableII {
		s := Series{Label: v.Name}
		for _, size := range CacheSizes {
			if size < v.Line {
				s.Points = append(s.Points, Point{CacheBytes: size})
				continue
			}
			st, err := runPipeIntro(ctx, v, size, mcfg, true)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{CacheBytes: size, Cycles: st.Cycles, Valid: true, Stats: st})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context) (*Result, error)
}

// Experiments returns every experiment, keyed by figure/table identifier.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table I: inner loop sizes", Run: runTable1},
		{ID: "table2", Title: "Table II: simulated IQ and IQB configurations", Run: runTable2},
		{ID: "fig4a", Title: "Figure 4a: T=1, non-pipelined, bus 4B", Run: func(ctx context.Context) (*Result, error) {
			return figure(ctx, "fig4a", "Figure 4a", 1, 4, false)
		}},
		{ID: "fig4b", Title: "Figure 4b: T=1, non-pipelined, bus 8B", Run: func(ctx context.Context) (*Result, error) {
			return figure(ctx, "fig4b", "Figure 4b", 1, 8, false)
		}},
		{ID: "fig5a", Title: "Figure 5a: T=6, non-pipelined, bus 4B", Run: func(ctx context.Context) (*Result, error) {
			return figure(ctx, "fig5a", "Figure 5a", 6, 4, false)
		}},
		{ID: "fig5b", Title: "Figure 5b: T=6, non-pipelined, bus 8B", Run: func(ctx context.Context) (*Result, error) {
			return figure(ctx, "fig5b", "Figure 5b", 6, 8, false)
		}},
		{ID: "fig6a", Title: "Figure 6a: T=6, bus 8B, non-pipelined (= Figure 5b)", Run: func(ctx context.Context) (*Result, error) {
			return figure(ctx, "fig6a", "Figure 6a", 6, 8, false)
		}},
		{ID: "fig6b", Title: "Figure 6b: T=6, bus 8B, pipelined", Run: func(ctx context.Context) (*Result, error) {
			return figure(ctx, "fig6b", "Figure 6b", 6, 8, true)
		}},
		{ID: "access2", Title: "Claim: T=2 behaves like T=6 (bus 4B)", Run: func(ctx context.Context) (*Result, error) {
			return figure(ctx, "access2", "Access time 2, bus 4B", 2, 4, false)
		}},
		{ID: "access3", Title: "Claim: T=3 behaves like T=6 (bus 4B)", Run: func(ctx context.Context) (*Result, error) {
			return figure(ctx, "access3", "Access time 3, bus 4B", 3, 4, false)
		}},
		{ID: "format", Title: "Extension: native 16/32-bit instruction format code density", Run: runFormat},
		{ID: "formatsim", Title: "Parameter 1: native 16/32-bit format, simulated timing", Run: runFormatSim},
		{ID: "noprefetch", Title: "Ablation: original-chip fetch guarantee (no true prefetch)", Run: runNoPrefetch},
		{ID: "priority", Title: "Ablation: instruction vs data priority at the memory interface", Run: runPriority},
		{ID: "tib", Title: "Extension: Target Instruction Buffer front end", Run: runTIBExp},
		{ID: "dcache", Title: "Extension: spending future density on an on-chip data cache", Run: runDCache},
		{ID: "knee", Title: "Analysis: the knee — cycles vs inner-loop size at a fixed cache", Run: runKnee},
		{ID: "perloop", Title: "Analysis: cycles spent in each Livermore loop", Run: runPerLoop},
		{ID: "iqsize", Title: "Parameters 7-8: IQ and IQB size sensitivity at a fixed line size", Run: runIQSize},
		{ID: "slots", Title: "Analysis: delay-slot count vs cycles (the PBR argument)", Run: runSlots},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func runTable1(ctx context.Context) (*Result, error) {
	res := &Result{ID: "table1", Title: "Table I", XLabel: "loop number",
		Description: "inner loop sizes in bytes (generated workload vs the paper)"}
	s := Series{Label: "bytes"}
	for _, info := range kernels.TableI() {
		s.Points = append(s.Points, Point{CacheBytes: info.Index, Cycles: uint64(info.InnerBytes), Valid: true})
	}
	res.Series = []Series{s}
	return res, nil
}

func runTable2(ctx context.Context) (*Result, error) {
	res := &Result{ID: "table2", Title: "Table II", XLabel: "configuration",
		Description: "line / IQ / IQB sizes in bytes"}
	for _, v := range TableII {
		res.Series = append(res.Series, Series{Label: v.Name, Points: []Point{
			{CacheBytes: v.Line, Cycles: uint64(v.IQ), Valid: true},
			{CacheBytes: v.IQB, Cycles: uint64(v.IQB), Valid: true},
		}})
	}
	return res, nil
}

// runFormat is the paper's simulation parameter (1): the fixed 32-bit
// instruction format (used for all presented results) versus the PIPE
// chip's native 16/32-bit two-parcel format. The effect of the denser
// format is static: each inner loop occupies fewer bytes, so a given cache
// holds more of it. The experiment reports Table I in both encodings.
func runFormat(ctx context.Context) (*Result, error) {
	img, err := BenchmarkImage()
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "format", Title: "Instruction-format code density",
		Description: "inner loop sizes: fixed 32-bit format vs the native 16/32-bit parcel format",
		XLabel:      "loop number"}
	fixed := Series{Label: "fixed-32 (B)"}
	native := Series{Label: "native (B)"}
	for _, info := range kernels.TableI() {
		words, err := kernels.LoopBody(img, info.Index)
		if err != nil {
			return nil, err
		}
		nb, err := isa.NativeBytes(words)
		if err != nil {
			return nil, err
		}
		fixed.Points = append(fixed.Points, Point{CacheBytes: info.Index, Cycles: uint64(info.InnerBytes), Valid: true})
		native.Points = append(native.Points, Point{CacheBytes: info.Index, Cycles: uint64(nb), Valid: true})
	}
	res.Series = []Series{fixed, native}
	return res, nil
}

// runFormatSim simulates the paper's parameter (1) dynamically: the same
// benchmark in the fixed 32-bit format versus the chip's native 16/32-bit
// parcel format, for the PIPE 16-16 machine and the conventional cache.
// The denser encoding acts like a larger effective cache.
func runFormatSim(ctx context.Context) (*Result, error) {
	img, err := BenchmarkImage()
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "formatsim", Title: "Instruction format, simulated (T=6, bus 8B)",
		Description: "total cycles, fixed 32-bit vs native 16/32-bit encoding of the same benchmark",
		XLabel:      "cache size (bytes)"}
	for _, v := range []struct {
		label  string
		fetch  core.FetchStrategy
		line   int
		native bool
	}{
		{"pipe fixed", core.FetchPIPE, 16, false},
		{"pipe native", core.FetchPIPE, 16, true},
		{"conv fixed", core.FetchConventional, ConvLineBytes, false},
		{"conv native", core.FetchConventional, ConvLineBytes, true},
	} {
		s := Series{Label: v.label}
		for _, size := range CacheSizes {
			if size < v.line {
				s.Points = append(s.Points, Point{CacheBytes: size})
				continue
			}
			cfg := core.Config{
				Fetch:        v.fetch,
				CacheBytes:   size,
				LineBytes:    v.line,
				IQBytes:      16,
				IQBBytes:     16,
				TruePrefetch: true,
				NativeFormat: v.native,
				Mem:          memConfig(6, 8, false),
				CPU:          core.DefaultConfig().CPU,
			}
			st, err := runPoint(ctx, cfg, img)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{CacheBytes: size, Cycles: st.Cycles, Valid: true, Stats: st})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

func runNoPrefetch(ctx context.Context) (*Result, error) {
	res := &Result{ID: "noprefetch", Title: "True prefetch ablation",
		Description: "PIPE 16-16; the original chip policy only fetches lines guaranteed to execute",
		XLabel:      "cache size (bytes)"}
	v := TableII[1] // 16-16
	for _, mode := range []struct {
		label string
		tp    bool
		T     int
	}{
		{"T=1 true-prefetch", true, 1},
		{"T=1 guaranteed-only", false, 1},
		{"T=6 true-prefetch", true, 6},
		{"T=6 guaranteed-only", false, 6},
	} {
		s := Series{Label: mode.label}
		for _, size := range CacheSizes {
			if size < v.Line {
				s.Points = append(s.Points, Point{CacheBytes: size})
				continue
			}
			st, err := RunPipe(ctx, v, size, memConfig(mode.T, 8, false), mode.tp)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{CacheBytes: size, Cycles: st.Cycles, Valid: true, Stats: st})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

func runPriority(ctx context.Context) (*Result, error) {
	res := &Result{ID: "priority", Title: "Memory-interface priority ablation",
		Description: "PIPE 16-16 and conventional, T=6, bus 8B, non-pipelined",
		XLabel:      "cache size (bytes)"}
	for _, pr := range []struct {
		label string
		instr bool
	}{{"pipe instr-priority", true}, {"pipe data-priority", false}} {
		s := Series{Label: pr.label}
		mcfg := memConfig(6, 8, false)
		mcfg.InstrPriority = pr.instr
		for _, size := range CacheSizes {
			if size < 16 {
				s.Points = append(s.Points, Point{CacheBytes: size})
				continue
			}
			st, err := RunPipe(ctx, TableII[1], size, mcfg, true)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{CacheBytes: size, Cycles: st.Cycles, Valid: true, Stats: st})
		}
		res.Series = append(res.Series, s)
	}
	for _, pr := range []struct {
		label string
		instr bool
	}{{"conv instr-priority", true}, {"conv data-priority", false}} {
		s := Series{Label: pr.label}
		mcfg := memConfig(6, 8, false)
		mcfg.InstrPriority = pr.instr
		for _, size := range CacheSizes {
			if size < ConvLineBytes {
				s.Points = append(s.Points, Point{CacheBytes: size})
				continue
			}
			st, err := RunConv(ctx, size, mcfg)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{CacheBytes: size, Cycles: st.Cycles, Valid: true, Stats: st})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

func runTIBExp(ctx context.Context) (*Result, error) {
	res := &Result{ID: "tib", Title: "TIB front end",
		Description: "cycles vs TIB target-line size (4 entries) at T=1 and T=6, bus 8B; " +
			"the loop workload has one live branch target at a time, so capacity beyond " +
			"one entry does not matter — line size (how many instructions each target " +
			"supplies during redirect) does",
		XLabel: "TIB line bytes"}
	for _, T := range []int{1, 6} {
		for _, entries := range []int{1, 4} {
			s := Series{Label: fmt.Sprintf("T=%d e=%d", T, entries)}
			for _, lineBytes := range []int{8, 16, 32, 64} {
				st, err := RunTIB(ctx, entries, lineBytes, memConfig(T, 8, false))
				if err != nil {
					return nil, err
				}
				s.Points = append(s.Points, Point{CacheBytes: lineBytes, Cycles: st.Cycles, Valid: true, Stats: st})
			}
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

// runDCache explores the paper's concluding suggestion: "the higher
// densities achieved in the mature technology can be used to expand the
// on-chip cache to include data". With the I-cache held at the PIPE 16-16
// arrangement, transistors go into a small data cache instead of a larger
// instruction cache; the sweep compares both uses of the same extra bytes.
func runDCache(ctx context.Context) (*Result, error) {
	img, err := BenchmarkImage()
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "dcache", Title: "On-chip data cache (paper's future-density suggestion)",
		Description: "PIPE 16-16, T=6, bus 8B, non-pipelined; equal total on-chip cache bytes " +
			"spent either all on instructions or split between an instruction and a data cache",
		XLabel: "total on-chip cache bytes"}
	mcfg := memConfig(6, 8, false)
	run := func(icache, dcache int) (uint64, error) {
		cfg := core.Config{
			Fetch:        core.FetchPIPE,
			CacheBytes:   icache,
			LineBytes:    16,
			IQBytes:      16,
			IQBBytes:     16,
			TruePrefetch: true,
			Mem:          mcfg,
			CPU:          core.DefaultConfig().CPU,
		}
		cfg.CPU.DCacheBytes = dcache
		st, err := runPoint(ctx, cfg, img)
		if err != nil {
			return 0, err
		}
		return st.Cycles, nil
	}
	iSeries := Series{Label: "all i-cache"}
	dSeries := Series{Label: "i+d split"}
	for _, total := range []int{128, 256, 512, 1024} {
		ic, err := run(total, 0)
		if err != nil {
			return nil, err
		}
		iSeries.Points = append(iSeries.Points, Point{CacheBytes: total, Cycles: ic, Valid: true})
		dc, err := run(total/2, total/2)
		if err != nil {
			return nil, err
		}
		dSeries.Points = append(dSeries.Points, Point{CacheBytes: total, Cycles: dc, Valid: true})
	}
	res.Series = []Series{iSeries, dSeries}
	return res, nil
}

// runKnee isolates the paper's explanation for the knee of the cache-size
// curves ("the knee of the curve corresponds to the size of most of the
// inner loops"): a single synthetic loop of varying byte size runs on a
// fixed 128-byte cache. Cycles per iteration jump when the loop stops
// fitting.
func runKnee(ctx context.Context) (*Result, error) {
	res := &Result{ID: "knee", Title: "Cycles per iteration vs inner-loop size (128B cache)",
		Description: "synthetic loop, 500 iterations, T=6, bus 8B, non-pipelined; " +
			"the cost step sits at the cache size, explaining the knee of Figures 4-6",
		XLabel: "loop size (bytes)"}
	mcfg := memConfig(6, 8, false)
	for _, strat := range []struct {
		label string
		fetch core.FetchStrategy
	}{{"pipe 16-16", core.FetchPIPE}, {"conv", core.FetchConventional}} {
		s := Series{Label: strat.label}
		for _, bodyInstr := range []int{12, 16, 24, 32, 40, 48, 64, 96, 128} {
			img, err := synth.Loop(synth.LoopSpec{
				BodyInstr: bodyInstr, Iterations: 500, Loads: 2, Stores: 1, DelaySlots: 4,
			})
			if err != nil {
				return nil, err
			}
			cfg := core.Config{
				Fetch:        strat.fetch,
				CacheBytes:   128,
				LineBytes:    16,
				IQBytes:      16,
				IQBBytes:     16,
				TruePrefetch: true,
				Mem:          mcfg,
				CPU:          core.DefaultConfig().CPU,
			}
			st, err := runPoint(ctx, cfg, img)
			if err != nil {
				return nil, err
			}
			perIter := st.Cycles / 500
			s.Points = append(s.Points, Point{CacheBytes: bodyInstr * 4, Cycles: perIter, Valid: true, Stats: st})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// runPerLoop breaks the benchmark's cycle count down per Livermore loop
// (the paper reports only the total; the breakdown shows which loop shapes
// each strategy handles well). Cache 128B, T=6, bus 8B — the paper's most
// contested regime.
func runPerLoop(ctx context.Context) (*Result, error) {
	img, err := BenchmarkImage()
	if err != nil {
		return nil, err
	}
	// Loop-start PCs, in program order; the program ends at HALT.
	var starts []uint32
	for i := 1; i <= 14; i++ {
		pc, ok := img.Lookup(fmt.Sprintf("ll%d.code", i))
		if !ok {
			return nil, fmt.Errorf("sweep: missing ll%d.code symbol", i)
		}
		starts = append(starts, pc)
	}
	res := &Result{ID: "perloop", Title: "Cycles per Livermore loop (128B cache, T=6, bus 8B)",
		Description: "cycle count attributed to each loop, per fetch strategy",
		XLabel:      "loop number"}
	for _, strat := range []struct {
		label string
		fetch core.FetchStrategy
		line  int
	}{{"pipe 16-16", core.FetchPIPE, 16}, {"conv", core.FetchConventional, ConvLineBytes}} {
		cfg := core.Config{
			Fetch:        strat.fetch,
			CacheBytes:   128,
			LineBytes:    strat.line,
			IQBytes:      16,
			IQBBytes:     16,
			TruePrefetch: true,
			Mem:          memConfig(6, 8, false),
			CPU:          core.DefaultConfig().CPU,
		}
		sim, err := core.New(cfg, img)
		if err != nil {
			return nil, err
		}
		entered := make([]uint64, len(starts))
		sim.SetRetireTracer(recorderFunc(func(e trace.Event) {
			for i, pc := range starts {
				if e.PC == pc && entered[i] == 0 {
					entered[i] = e.Cycle
				}
			}
		}))
		st, err := sim.Run()
		if err != nil {
			return nil, err
		}
		s := Series{Label: strat.label}
		for i := range starts {
			end := st.Cycles
			if i+1 < len(starts) {
				end = entered[i+1]
			}
			s.Points = append(s.Points, Point{CacheBytes: i + 1, Cycles: end - entered[i], Valid: true})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// runSlots tests the prepare-to-branch argument of paper §3.1.3: the
// compiler can usually fill about four delay slots, and enough slots make
// branch-resolution latency — and, with a fast memory, even target-fetch
// latency — disappear. A fixed synthetic loop runs with 0..7 delay slots.
func runSlots(ctx context.Context) (*Result, error) {
	res := &Result{ID: "slots", Title: "Cycles vs PBR delay-slot count",
		Description: "synthetic 24-instruction loop, 2000 iterations, PIPE 16-16, 128B cache; " +
			"delay slots hide the branch resolution latency",
		XLabel: "delay slots"}
	for _, T := range []int{1, 6} {
		s := Series{Label: fmt.Sprintf("T=%d", T)}
		for slots := 0; slots <= isa.MaxDelaySlots; slots++ {
			img, err := synth.Loop(synth.LoopSpec{
				BodyInstr: 24, Iterations: 2000, Loads: 2, Stores: 1, DelaySlots: slots,
			})
			if err != nil {
				return nil, err
			}
			cfg := core.Config{
				Fetch:           core.FetchPIPE,
				CacheBytes:      128,
				LineBytes:       16,
				IQBytes:         16,
				IQBBytes:        16,
				TruePrefetch:    true,
				CacheIntrospect: true,
				Mem:             memConfig(T, 8, false),
				CPU:             core.DefaultConfig().CPU,
			}
			st, err := runPoint(ctx, cfg, img)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{CacheBytes: slots, Cycles: st.Cycles, Valid: true, Stats: st})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// recorderFunc adapts a function to the trace.Recorder interface.
type recorderFunc func(trace.Event)

func (f recorderFunc) Record(e trace.Event) { f(e) }

// runIQSize sweeps the paper's last two simulation parameters — the IQ and
// IQB sizes — beyond the four Table II points, at a fixed 16-byte line.
func runIQSize(ctx context.Context) (*Result, error) {
	res := &Result{ID: "iqsize", Title: "IQ/IQB size sensitivity (line 16B, T=6, bus 8B)",
		Description: "total cycles vs cache size for IQ/IQB combinations at a fixed line size",
		XLabel:      "cache size (bytes)"}
	img, err := BenchmarkImage()
	if err != nil {
		return nil, err
	}
	combos := []struct {
		v    PipeVariant
		deep bool
	}{
		{PipeVariant{Name: "iq8/iqb16", Line: 16, IQ: 8, IQB: 16}, false},
		{PipeVariant{Name: "iq16/iqb16", Line: 16, IQ: 16, IQB: 16}, false},
		{PipeVariant{Name: "iq16/iqb32", Line: 16, IQ: 16, IQB: 32}, false},
		{PipeVariant{Name: "iq32/iqb32", Line: 16, IQ: 32, IQB: 32}, false},
		{PipeVariant{Name: "iqb32 deep", Line: 16, IQ: 16, IQB: 32}, true},
		{PipeVariant{Name: "iqb64 deep", Line: 16, IQ: 16, IQB: 64}, true},
	}
	mcfg := memConfig(6, 8, false)
	for _, c := range combos {
		s := Series{Label: c.v.Name}
		for _, size := range []int{32, 64, 128, 256} {
			cfg := core.Config{
				Fetch:        core.FetchPIPE,
				CacheBytes:   size,
				LineBytes:    c.v.Line,
				IQBytes:      c.v.IQ,
				IQBBytes:     c.v.IQB,
				TruePrefetch: true,
				DeepPrefetch: c.deep,
				Mem:          mcfg,
				CPU:          core.DefaultConfig().CPU,
			}
			st, err := runPoint(ctx, cfg, img)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{CacheBytes: size, Cycles: st.Cycles, Valid: true, Stats: st})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// CSV renders the result as comma-separated values with a header row, for
// plotting tools.
func (r *Result) CSV() string {
	var sb strings.Builder
	sb.WriteString(csvEscape(r.XLabel))
	for _, s := range r.Series {
		sb.WriteByte(',')
		sb.WriteString(csvEscape(s.Label))
	}
	sb.WriteByte('\n')
	for _, x := range r.axis() {
		fmt.Fprintf(&sb, "%d", x)
		for _, s := range r.Series {
			sb.WriteByte(',')
			for _, p := range s.Points {
				if p.CacheBytes == x && p.Valid {
					fmt.Fprintf(&sb, "%d", p.Cycles)
				}
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// axis returns the sorted x values appearing in any series.
func (r *Result) axis() []int {
	xs := map[int]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			xs[p.CacheBytes] = true
		}
	}
	var axis []int
	for x := range xs {
		axis = append(axis, x)
	}
	sort.Ints(axis)
	return axis
}

// Format renders the result as an aligned text table, one row per x value,
// one column per series.
func (r *Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", r.Title)
	if r.Description != "" {
		fmt.Fprintf(&sb, "  %s\n", r.Description)
	}
	axis := r.axis()
	fmt.Fprintf(&sb, "%-22s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&sb, "%14s", s.Label)
	}
	sb.WriteByte('\n')
	for _, x := range axis {
		fmt.Fprintf(&sb, "%-22d", x)
		for _, s := range r.Series {
			cell := ""
			for _, p := range s.Points {
				if p.CacheBytes == x {
					if p.Valid {
						cell = fmt.Sprintf("%d", p.Cycles)
					} else {
						cell = "-"
					}
				}
			}
			fmt.Fprintf(&sb, "%14s", cell)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
