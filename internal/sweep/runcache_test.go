package sweep

import (
	"context"
	"testing"

	"pipesim/internal/mem"
	"pipesim/internal/runcache"
)

// TestFig5bFig6aIdenticalSeries: Figure 6a is the same machine as Figure 5b
// (the paper re-plots it at a different scale), so the two experiments must
// produce identical cycle series point for point — and with the run cache
// on, the second figure is answered from memoized results instead of
// re-simulating thirty configuration points.
func TestFig5bFig6aIdenticalSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweeps")
	}
	before := runcache.Default.Stats()
	a := fig(t, "fig5b")
	b := fig(t, "fig6a")
	if len(a.Series) != len(b.Series) {
		t.Fatalf("fig5b has %d series, fig6a %d", len(a.Series), len(b.Series))
	}
	for i := range a.Series {
		sa, sb := a.Series[i], b.Series[i]
		if sa.Label != sb.Label {
			t.Fatalf("series %d: label %q vs %q", i, sa.Label, sb.Label)
		}
		if len(sa.Points) != len(sb.Points) {
			t.Fatalf("series %q: %d points vs %d", sa.Label, len(sa.Points), len(sb.Points))
		}
		for j := range sa.Points {
			pa, pb := sa.Points[j], sb.Points[j]
			if pa.Valid != pb.Valid || pa.Cycles != pb.Cycles || pa.CacheBytes != pb.CacheBytes {
				t.Errorf("series %q point %d: fig5b {%d %d %v} != fig6a {%d %d %v}",
					sa.Label, j, pa.CacheBytes, pa.Cycles, pa.Valid, pb.CacheBytes, pb.Cycles, pb.Valid)
			}
		}
	}
	// The shared points were deduplicated through the run cache. Other
	// tests may have warmed it first (fig results are cached per test
	// binary), so only require that hits advanced — never that this test
	// saw the misses itself.
	after := runcache.Default.Stats()
	if runcache.Default.Enabled() && after.Hits == before.Hits {
		t.Error("identical fig5b/fig6a points produced no run-cache hits")
	}
}

// TestGoldenCyclesMatchSeed pins the simulated cycle counts of the paper's
// central figure to the values recorded in BENCH_seed.json before any
// performance work. Optimizations may make the simulator faster, never
// different: these numbers are the bit-identical contract every hot-loop
// change and every cache hit must honor.
func TestGoldenCyclesMatchSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	r := fig(t, "fig5b")
	golden := map[string]map[int]uint64{
		// BENCH_seed.json, BenchmarkFigure5b metrics.
		"16-16": {16: 775093, 32: 775093, 64: 706309, 128: 646861, 256: 576816, 512: 552595},
		"conv":  {16: 949810, 32: 949810, 64: 830017, 128: 725701, 256: 603558, 512: 561634},
		"8-8":   {16: 919434, 32: 919434, 64: 777732, 128: 709953, 256: 595289, 512: 559373},
		"32-32": {32: 711592, 64: 680493, 128: 620132, 256: 567092, 512: 549528},
	}
	for label, points := range golden {
		s := series(t, r, label)
		for size, want := range points {
			if got := at(t, s, size); got != want {
				t.Errorf("%s at %dB: %d cycles, want seed value %d", label, size, got, want)
			}
		}
	}
}

// TestRunPipeCachedMatchesFresh runs one sweep point with the cache
// disabled and then twice with it enabled: all three results must be
// bit-identical, proving memoization never substitutes an approximate
// result.
func TestRunPipeCachedMatchesFresh(t *testing.T) {
	mcfg := mem.Config{AccessTime: 6, BusWidthBytes: 8, InstrPriority: true, FPULatency: 4}
	v := TableII[1]
	runcache.Default.SetEnabled(false)
	fresh, err := RunPipe(context.Background(), v, 128, mcfg, true)
	runcache.Default.SetEnabled(true)
	if err != nil {
		t.Fatal(err)
	}
	miss, err := RunPipe(context.Background(), v, 128, mcfg, true)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := RunPipe(context.Background(), v, 128, mcfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if *fresh != *miss || *fresh != *hit {
		t.Errorf("cached results differ from fresh:\nfresh %+v\nmiss  %+v\nhit   %+v", fresh, miss, hit)
	}
}
