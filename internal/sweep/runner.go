package sweep

// This file is the fault-isolated parallel sweep runner. The paper's
// results come from sweeping a large parameter space; one bad point must
// not abort the whole experiment set. Each experiment runs on a worker
// goroutine behind its own panic recovery and deadline, and the runner
// returns every outcome — results for the experiments that finished,
// structured errors for the ones that did not.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"pipesim/internal/eventbus"
	"pipesim/internal/runcache"
	"pipesim/internal/stats"
	"pipesim/internal/tracing"
)

// Options tunes the parallel runner. The zero value runs every experiment
// with one worker per CPU and no deadline.
type Options struct {
	// Workers is the number of concurrent experiments (<= 0 selects
	// runtime.NumCPU).
	Workers int
	// Timeout is the per-experiment deadline (<= 0 disables it). A timed
	// out experiment is reported as a *TimeoutError; its goroutine is
	// abandoned (experiment bodies are pure CPU work with no handle to
	// cancel, exactly like a wedged simulation) and the sweep moves on.
	Timeout time.Duration
	// Progress, when set, is called once per finished experiment with its
	// outcome and the running completion count. Calls are serialized on the
	// collector goroutine (no locking needed) but arrive in completion
	// order, not submission order.
	Progress func(o Outcome, done, total int)
	// Context, when set, is passed to every experiment body. A context
	// carrying a tracing span (a pipesimd sweep request) gets one child
	// span per experiment, named "experiment:<id>"; nil means
	// context.Background.
	Context context.Context
	// InjectFault, when set, is called inside each experiment's isolated
	// goroutine immediately before the body runs; a non-nil return is
	// reported as that experiment's error without running it. It exists
	// for chaos and soak testing only (killing selected points mid-sweep
	// to exercise checkpoint recovery); production callers leave it nil.
	InjectFault func(id string) error
	// Events, when set, receives one "sweep.experiment" event per
	// finished experiment (published from the collector goroutine, in
	// completion order, alongside Progress). Publishing never blocks:
	// the bus drops on slow consumers, so the sweep is unaffected by who
	// is watching.
	Events *eventbus.Bus
	// EventJob stamps published events with an owning job ID (set by the
	// durable-job layer; empty for ad-hoc sweeps).
	EventJob string
}

// KindExperiment is the event-bus kind of the per-experiment progress
// events RunAll publishes (see Options.Events).
const KindExperiment = "sweep.experiment"

// ExperimentEvent is the payload of a KindExperiment bus event.
type ExperimentEvent struct {
	ID       string  `json:"id"`
	Done     int     `json:"done"`
	Total    int     `json:"total"`
	OK       bool    `json:"ok"`
	Error    string  `json:"error,omitempty"`
	ElapsedS float64 `json:"elapsed_s"`
}

// TimeoutError reports an experiment that exceeded the per-run deadline.
type TimeoutError struct {
	ID      string
	Timeout time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("sweep: experiment %s exceeded the %s deadline", e.ID, e.Timeout)
}

// PanicError reports an experiment that panicked outside the simulator core
// (the core converts its own panics to machine-check errors; this catches
// everything else, e.g. a bug in workload generation or result rendering).
type PanicError struct {
	ID    string
	Value any
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: experiment %s panicked: %v", e.ID, e.Value)
}

// Outcome is the result of one experiment under the runner: exactly one of
// Result and Err is set.
type Outcome struct {
	Experiment Experiment
	Result     *Result
	Err        error
	Elapsed    time.Duration
}

// Summary collects every outcome of one sweep, in the order the experiments
// were submitted.
type Summary struct {
	Outcomes []Outcome
	Elapsed  time.Duration

	// RunCache optionally carries the run cache's counters as of the end
	// of the sweep (cmd/experiments sets it from runcache.Default.Stats());
	// WriteJSON surfaces it so catalog metrics record how much simulation
	// the cache absorbed.
	RunCache *runcache.Counters
}

// Failed returns the outcomes that did not produce a result.
func (s *Summary) Failed() []Outcome {
	var out []Outcome
	for _, o := range s.Outcomes {
		if o.Err != nil {
			out = append(out, o)
		}
	}
	return out
}

// Passed returns how many experiments completed successfully.
func (s *Summary) Passed() int { return len(s.Outcomes) - len(s.Failed()) }

// Err returns nil when every experiment passed, otherwise one error
// summarizing every failure.
func (s *Summary) Err() error {
	failed := s.Failed()
	if len(failed) == 0 {
		return nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "sweep: %d of %d experiments failed:", len(failed), len(s.Outcomes))
	for _, o := range failed {
		fmt.Fprintf(&sb, "\n  %s: %v", o.Experiment.ID, o.Err)
	}
	return fmt.Errorf("%s", sb.String())
}

// String renders the pass/fail table.
func (s *Summary) String() string {
	var sb strings.Builder
	for _, o := range s.Outcomes {
		status := "ok  "
		if o.Err != nil {
			status = "FAIL"
		}
		fmt.Fprintf(&sb, "%s %-12s %8.2fs", status, o.Experiment.ID, o.Elapsed.Seconds())
		if o.Err != nil {
			fmt.Fprintf(&sb, "  %v", o.Err)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%d/%d passed in %.2fs\n", s.Passed(), len(s.Outcomes), s.Elapsed.Seconds())
	return sb.String()
}

// RunAll runs every experiment on a bounded worker pool, isolating each in
// its own goroutine with panic recovery and an optional deadline. It always
// returns a complete Summary: a failing — even crashing — experiment costs
// exactly its own slot, and every other result is still delivered.
func RunAll(exps []Experiment, opt Options) *Summary {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	start := time.Now()
	sum := &Summary{Outcomes: make([]Outcome, len(exps))}
	if len(exps) == 0 {
		return sum
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	type job struct {
		idx int
		exp Experiment
	}
	jobs := make(chan job)
	done := make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			for j := range jobs {
				t0 := time.Now()
				res, err := runIsolated(ctx, j.exp, opt.Timeout, opt.InjectFault)
				sum.Outcomes[j.idx] = Outcome{
					Experiment: j.exp,
					Result:     res,
					Err:        err,
					Elapsed:    time.Since(t0),
				}
				done <- j.idx
			}
		}()
	}
	go func() {
		for i, e := range exps {
			jobs <- job{idx: i, exp: e}
		}
		close(jobs)
	}()
	for n := 1; n <= len(exps); n++ {
		idx := <-done
		if opt.Progress != nil {
			opt.Progress(sum.Outcomes[idx], n, len(exps))
		}
		if opt.Events != nil {
			o := sum.Outcomes[idx]
			ev := ExperimentEvent{
				ID:       o.Experiment.ID,
				Done:     n,
				Total:    len(exps),
				OK:       o.Err == nil,
				ElapsedS: o.Elapsed.Seconds(),
			}
			if o.Err != nil {
				ev.Error = o.Err.Error()
			}
			opt.Events.Publish(eventbus.Event{Kind: KindExperiment, Job: opt.EventJob, Data: ev})
		}
	}
	sum.Elapsed = time.Since(start)
	return sum
}

// BucketTotals is cycle attribution with stable lower_snake JSON names,
// shared by the sweep metrics file (Summary.WriteJSON), the benchmark
// baselines (scripts/bench.sh) and the daemon's attribution counters —
// one schema across every serving-facing surface (see EXPERIMENTS.md).
// The fields mirror stats.CycleBucket and sum to the attributed cycles.
type BucketTotals struct {
	Issue        uint64 `json:"issue"`
	FetchStarved uint64 `json:"fetch_starved"`
	LDQWait      uint64 `json:"ldq_wait"`
	QueueFull    uint64 `json:"queue_full"`
	Drain        uint64 `json:"drain"`
	Other        uint64 `json:"other"`
}

// Total sums the buckets.
func (t BucketTotals) Total() uint64 {
	return t.Issue + t.FetchStarved + t.LDQWait + t.QueueFull + t.Drain + t.Other
}

// add accumulates one run's exact cycle attribution.
func (t *BucketTotals) add(b [stats.NumCycleBuckets]uint64) {
	t.Issue += b[stats.CycleIssue]
	t.FetchStarved += b[stats.CycleFetchStarved]
	t.LDQWait += b[stats.CycleLDQWait]
	t.QueueFull += b[stats.CycleQueueFull]
	t.Drain += b[stats.CycleDrain]
	t.Other += b[stats.CycleOther]
}

// merge accumulates another totals value.
func (t *BucketTotals) merge(o BucketTotals) {
	t.Issue += o.Issue
	t.FetchStarved += o.FetchStarved
	t.LDQWait += o.LDQWait
	t.QueueFull += o.QueueFull
	t.Drain += o.Drain
	t.Other += o.Other
}

// BucketTotals sums the cycle attribution of every simulated point of the
// outcome that carried full statistics. The second result is false when
// no point did (table-style experiments whose numbers are not cycle
// counts, or a failed experiment).
func (o *Outcome) BucketTotals() (BucketTotals, bool) {
	if o.Result == nil {
		return BucketTotals{}, false
	}
	return ResultTotals(o.Result)
}

// ResultTotals sums the cycle attribution of every point of a result that
// carried full statistics; ok is false when no point did.
func ResultTotals(r *Result) (t BucketTotals, ok bool) {
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.Stats == nil {
				continue
			}
			t.add(p.Stats.CPU.CycleBuckets)
			ok = true
		}
	}
	return t, ok
}

// StatsTotals is the attribution of one simulated point.
func StatsTotals(st *stats.Sim) BucketTotals {
	var t BucketTotals
	t.add(st.CPU.CycleBuckets)
	return t
}

// CacheTotals aggregates the cache-introspection miss classes and eviction
// counts across simulated points, with the same stable lower_snake JSON
// names as the per-run Result.CacheStats block. Per-set heatmaps are
// per-machine data and are deliberately not aggregated here.
type CacheTotals struct {
	Compulsory    uint64 `json:"compulsory"`
	Capacity      uint64 `json:"capacity"`
	Conflict      uint64 `json:"conflict"`
	Evictions     uint64 `json:"evictions"`
	DeadEvictions uint64 `json:"dead_evictions"`
}

// Misses sums the three miss classes.
func (t CacheTotals) Misses() uint64 { return t.Compulsory + t.Capacity + t.Conflict }

// add accumulates one run's introspection block.
func (t *CacheTotals) add(c *stats.CacheStats) {
	t.Compulsory += c.Compulsory
	t.Capacity += c.Capacity
	t.Conflict += c.Conflict
	t.Evictions += c.Evictions
	t.DeadEvictions += c.DeadEvictions
}

// merge accumulates another totals value.
func (t *CacheTotals) merge(o CacheTotals) {
	t.Compulsory += o.Compulsory
	t.Capacity += o.Capacity
	t.Conflict += o.Conflict
	t.Evictions += o.Evictions
	t.DeadEvictions += o.DeadEvictions
}

// CacheTotals sums the miss-class breakdown of every simulated point of the
// outcome that ran with cache introspection. The second result is false
// when no point did (introspection off, a table-style experiment, or a
// failed experiment).
func (o *Outcome) CacheTotals() (CacheTotals, bool) {
	if o.Result == nil {
		return CacheTotals{}, false
	}
	return ResultCacheTotals(o.Result)
}

// ResultCacheTotals sums the miss classes of every introspected point of a
// result; ok is false when no point carried an introspection block.
func ResultCacheTotals(r *Result) (t CacheTotals, ok bool) {
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.Stats == nil || p.Stats.Cache == nil {
				continue
			}
			t.add(p.Stats.Cache)
			ok = true
		}
	}
	return t, ok
}

// jsonPoint, jsonSeries and jsonOutcome shape the machine-readable sweep
// metrics: stable lower_snake field names, durations in seconds, errors as
// strings. The full per-point stats structures are deliberately omitted —
// the metrics file is for dashboards and regression tracking, not replay.
type jsonPoint struct {
	X      int    `json:"x"`
	Cycles uint64 `json:"cycles"`
	Valid  bool   `json:"valid"`
}

type jsonSeries struct {
	Label  string      `json:"label"`
	Points []jsonPoint `json:"points"`
}

type jsonOutcome struct {
	ID             string        `json:"id"`
	Title          string        `json:"title"`
	OK             bool          `json:"ok"`
	Error          string        `json:"error,omitempty"`
	ElapsedSeconds float64       `json:"elapsed_seconds"`
	Attribution    *BucketTotals `json:"attribution,omitempty"`
	Cache          *CacheTotals  `json:"cache,omitempty"`
	XLabel         string        `json:"x_label,omitempty"`
	Series         []jsonSeries  `json:"series,omitempty"`
}

type jsonSummary struct {
	Schema         string             `json:"schema"`
	Total          int                `json:"total"`
	Passed         int                `json:"passed"`
	ElapsedSeconds float64            `json:"elapsed_seconds"`
	Attribution    *BucketTotals      `json:"attribution,omitempty"`
	Cache          *CacheTotals       `json:"cache,omitempty"`
	RunCache       *runcache.Counters `json:"runcache,omitempty"`
	Outcomes       []jsonOutcome      `json:"outcomes"`
}

// MetricsSchema identifies the WriteJSON layout. New fields may be added;
// existing names, units and nesting stay stable within a major version
// (documented field-by-field in EXPERIMENTS.md).
const MetricsSchema = "pipesim-sweep/v1"

// WriteJSON writes the sweep's machine-readable metrics: per-experiment
// status, wall-clock time, cycle-attribution buckets and result series,
// plus the aggregate counts and the attribution summed over the whole
// sweep. The format is stable for scripting (see EXPERIMENTS.md) and
// shares its attribution naming with the BENCH_*.json baselines.
func (s *Summary) WriteJSON(w io.Writer) error {
	out := jsonSummary{
		Schema:         MetricsSchema,
		Total:          len(s.Outcomes),
		Passed:         s.Passed(),
		ElapsedSeconds: s.Elapsed.Seconds(),
		Outcomes:       make([]jsonOutcome, 0, len(s.Outcomes)),
	}
	var sweepTotals BucketTotals
	anyTotals := false
	var sweepCache CacheTotals
	anyCache := false
	for _, o := range s.Outcomes {
		jo := jsonOutcome{
			ID:             o.Experiment.ID,
			Title:          o.Experiment.Title,
			OK:             o.Err == nil,
			ElapsedSeconds: o.Elapsed.Seconds(),
		}
		if o.Err != nil {
			jo.Error = o.Err.Error()
		}
		if t, ok := o.BucketTotals(); ok {
			bt := t
			jo.Attribution = &bt
			sweepTotals.merge(t)
			anyTotals = true
		}
		if t, ok := o.CacheTotals(); ok {
			ct := t
			jo.Cache = &ct
			sweepCache.merge(t)
			anyCache = true
		}
		if o.Result != nil {
			jo.XLabel = o.Result.XLabel
			for _, sr := range o.Result.Series {
				js := jsonSeries{Label: sr.Label, Points: make([]jsonPoint, 0, len(sr.Points))}
				for _, p := range sr.Points {
					js.Points = append(js.Points, jsonPoint{X: p.CacheBytes, Cycles: p.Cycles, Valid: p.Valid})
				}
				jo.Series = append(jo.Series, js)
			}
		}
		out.Outcomes = append(out.Outcomes, jo)
	}
	if anyTotals {
		out.Attribution = &sweepTotals
	}
	if anyCache {
		out.Cache = &sweepCache
	}
	out.RunCache = s.RunCache
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// runIsolated executes one experiment body behind panic recovery and an
// optional deadline. When ctx carries a tracing span the experiment gets a
// child span; the span ends when the body returns, even if the sweep has
// already timed the experiment out and moved on. The fault hook runs
// inside the isolated goroutine, so a panicking hook is contained too.
func runIsolated(ctx context.Context, e Experiment, timeout time.Duration, inject func(id string) error) (*Result, error) {
	type reply struct {
		res *Result
		err error
	}
	// Buffered so an abandoned (timed out) experiment can still finish and
	// let its goroutine exit.
	ch := make(chan reply, 1)
	go func() {
		ctx, span := tracing.StartSpan(ctx, "experiment:"+e.ID)
		defer span.End()
		defer func() {
			if p := recover(); p != nil {
				span.SetAttr("panic", fmt.Sprint(p))
				ch <- reply{err: &PanicError{ID: e.ID, Value: p, Stack: string(debug.Stack())}}
			}
		}()
		if inject != nil {
			if err := inject(e.ID); err != nil {
				span.SetAttr("error", err.Error())
				ch <- reply{err: err}
				return
			}
		}
		res, err := e.Run(ctx)
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		ch <- reply{res: res, err: err}
	}()
	if timeout <= 0 {
		r := <-ch
		return r.res, r.err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.res, r.err
	case <-timer.C:
		return nil, &TimeoutError{ID: e.ID, Timeout: timeout}
	}
}

// CompactJSON renders the deterministic, replayable core of a result —
// the x label and every series as (x, cycles, valid) triples, the same
// shape WriteJSON embeds per outcome. Wall-clock times and raw statistics
// are deliberately excluded, so the bytes are bit-identical across runs of
// the same machine; job checkpoints (internal/jobs) and the experiments
// CLI's -resume flag depend on that.
func (r *Result) CompactJSON() (json.RawMessage, error) {
	c := compactResult{Title: r.Title, Description: r.Description, XLabel: r.XLabel}
	for _, sr := range r.Series {
		js := jsonSeries{Label: sr.Label, Points: make([]jsonPoint, 0, len(sr.Points))}
		for _, p := range sr.Points {
			js.Points = append(js.Points, jsonPoint{X: p.CacheBytes, Cycles: p.Cycles, Valid: p.Valid})
		}
		c.Series = append(c.Series, js)
	}
	return json.Marshal(c)
}

// ResultFromCompact rebuilds a renderable Result from its CompactJSON
// bytes. Per-point statistics are gone (a replayed result carries none),
// but Format, CSV and Plot all work.
func ResultFromCompact(raw json.RawMessage, id, title string) (*Result, error) {
	var c compactResult
	if err := json.Unmarshal(raw, &c); err != nil {
		return nil, fmt.Errorf("sweep: decoding compact result: %w", err)
	}
	res := &Result{ID: id, Title: title, XLabel: c.XLabel}
	if c.Title != "" {
		res.Title = c.Title
	}
	res.Description = c.Description
	for _, js := range c.Series {
		s := Series{Label: js.Label}
		for _, p := range js.Points {
			s.Points = append(s.Points, Point{CacheBytes: p.X, Cycles: p.Cycles, Valid: p.Valid})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// compactResult is the CompactJSON layout (stable: pipesim-job-ckpt/v1).
type compactResult struct {
	Title       string       `json:"title,omitempty"`
	Description string       `json:"description,omitempty"`
	XLabel      string       `json:"x_label,omitempty"`
	Series      []jsonSeries `json:"series,omitempty"`
}

// SortByID orders outcomes by experiment ID (RunAll already preserves
// submission order; this is for callers that merge several sweeps).
func SortByID(outcomes []Outcome) {
	sort.Slice(outcomes, func(i, j int) bool {
		return outcomes[i].Experiment.ID < outcomes[j].Experiment.ID
	})
}
