package sweep

import (
	"context"
	"sync"
	"testing"
)

// figCache runs each experiment at most once per test binary; the figures
// are deterministic and several tests read the same ones.
var (
	figMu    sync.Mutex
	figCache = map[string]*Result{}
)

func fig(t *testing.T, id string) *Result {
	t.Helper()
	figMu.Lock()
	defer figMu.Unlock()
	if r, ok := figCache[id]; ok {
		return r
	}
	exp, ok := Lookup(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	r, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	figCache[id] = r
	return r
}

// series returns the named curve of a result.
func series(t *testing.T, r *Result, label string) Series {
	t.Helper()
	for _, s := range r.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("%s: no series %q", r.ID, label)
	return Series{}
}

// at returns the cycles of a series at one cache size.
func at(t *testing.T, s Series, size int) uint64 {
	t.Helper()
	for _, p := range s.Points {
		if p.CacheBytes == size && p.Valid {
			return p.Cycles
		}
	}
	t.Fatalf("series %q has no valid point at %d bytes", s.Label, size)
	return 0
}

func TestExperimentRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "table2", "fig4a", "fig4b", "fig5a", "fig5b", "fig6a", "fig6b", "noprefetch", "priority", "tib"} {
		if !ids[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
	if _, ok := Lookup("nonexistent"); ok {
		t.Error("Lookup found a nonexistent experiment")
	}
}

// TestEveryExperimentRunsAndRenders executes the full registry once (the
// claim tests below share the cached results) and checks both renderers
// produce sane output for each.
func TestEveryExperimentRunsAndRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, e := range Experiments() {
		r := fig(t, e.ID)
		if len(r.Series) == 0 {
			t.Errorf("%s: no series", e.ID)
			continue
		}
		txt := r.Format()
		csv := r.CSV()
		if len(txt) == 0 || len(csv) == 0 {
			t.Errorf("%s: empty render", e.ID)
		}
		// The CSV header names every series.
		header := csv[:indexOf(csv, "\n")]
		for _, s := range r.Series {
			if !contains(header, csvLabel(s.Label)) {
				t.Errorf("%s: CSV header %q missing series %q", e.ID, header, s.Label)
			}
		}
		for _, s := range r.Series {
			for _, p := range s.Points {
				if p.Valid && p.Cycles == 0 && e.ID != "table2" {
					t.Errorf("%s/%s: zero-cycle point at x=%d", e.ID, s.Label, p.CacheBytes)
				}
			}
		}
	}
}

// csvLabel mirrors the CSV escaping for lookup purposes.
func csvLabel(s string) string {
	if !contains(s, ",") {
		return s
	}
	return `"` + s + `"`
}

func TestTable1MatchesPaper(t *testing.T) {
	r := fig(t, "table1")
	want := []uint64{116, 204, 64, 80, 76, 72, 288, 732, 272, 260, 56, 56, 328, 224}
	s := r.Series[0]
	if len(s.Points) != 14 {
		t.Fatalf("%d loops", len(s.Points))
	}
	for i, p := range s.Points {
		if p.Cycles != want[i] {
			t.Errorf("loop %d = %d bytes, want %d", i+1, p.Cycles, want[i])
		}
	}
}

// TestClaimPipeWinsWheneverMemoryIsSlow is the paper's central result: "For
// a memory access time larger than 1 clock cycle, all PIPE configurations
// always perform better than the conventional cache."
func TestClaimPipeWinsWheneverMemoryIsSlow(t *testing.T) {
	for _, id := range []string{"fig5a", "fig5b", "fig6b", "access2", "access3"} {
		r := fig(t, id)
		conv := series(t, r, "conv")
		for _, v := range TableII {
			s := series(t, r, v.Name)
			for _, size := range CacheSizes {
				if size < v.Line || size < ConvLineBytes {
					continue
				}
				if at(t, s, size) >= at(t, conv, size) {
					t.Errorf("%s: PIPE %s (%d cycles) not faster than conventional (%d) at %dB",
						id, v.Name, at(t, s, size), at(t, conv, size), size)
				}
			}
		}
	}
}

// TestClaimConvWinsOnlyAtT1Bus4 checks the flip side: with a 1-cycle memory
// and a 4-byte bus the conventional cache beats at least some PIPE
// configuration (the paper's only such regime).
func TestClaimConvWinsOnlyAtT1Bus4(t *testing.T) {
	r := fig(t, "fig4a")
	conv := series(t, r, "conv")
	beatsSome := false
	for _, v := range TableII {
		s := series(t, r, v.Name)
		for _, size := range CacheSizes {
			if size < v.Line || size < ConvLineBytes {
				continue
			}
			if at(t, conv, size) < at(t, s, size) {
				beatsSome = true
			}
		}
	}
	if !beatsSome {
		t.Error("conventional cache should win somewhere at T=1, bus 4B")
	}
}

// TestClaimBusWidthMattersBelowTheKnee: "the bus width can have a dramatic
// impact on performance for cache sizes less than 128 bytes" — and the
// effect grows with memory access time.
func TestClaimBusWidthMattersBelowTheKnee(t *testing.T) {
	narrow := fig(t, "fig5a")
	wide := fig(t, "fig5b")
	for _, label := range []string{"conv", "16-16"} {
		n := at(t, series(t, narrow, label), 32)
		w := at(t, series(t, wide, label), 32)
		if w >= n {
			t.Errorf("%s at 32B: 8-byte bus (%d) not faster than 4-byte (%d)", label, w, n)
		}
	}
	// Once the cache is large, width matters much less (paper: "once the
	// cache size has grown to 256 bytes, the bus width does not make a
	// significant difference").
	for _, label := range []string{"conv", "16-16"} {
		n := at(t, series(t, narrow, label), 512)
		w := at(t, series(t, wide, label), 512)
		gain := float64(n-w) / float64(n)
		if gain > 0.10 {
			t.Errorf("%s at 512B: bus width still changes cycles by %.0f%%", label, gain*100)
		}
	}
}

// TestClaimPipeLessSensitiveToBusWidth: at T=6 with small caches, the PIPE
// configurations lose less from a narrow bus than the conventional cache.
func TestClaimPipeLessSensitiveToBusWidth(t *testing.T) {
	narrow := fig(t, "fig5a")
	wide := fig(t, "fig5b")
	sensitivity := func(label string, size int) float64 {
		n := at(t, series(t, narrow, label), size)
		w := at(t, series(t, wide, label), size)
		return float64(n) / float64(w)
	}
	convSens := sensitivity("conv", 32)
	pipeSens := sensitivity("16-16", 32)
	if pipeSens >= convSens {
		t.Errorf("PIPE 16-16 bus sensitivity %.3f not below conventional %.3f", pipeSens, convSens)
	}
}

// TestClaimPipelinedMemoryShiftsAndCompresses: Figure 6b's curves sit below
// Figure 6a's at every point, and the spread between best and worst
// configurations shrinks.
func TestClaimPipelinedMemoryShiftsAndCompresses(t *testing.T) {
	nonPipe := fig(t, "fig6a")
	pipelined := fig(t, "fig6b")
	var spreadNon, spreadPipe float64
	for _, label := range []string{"conv", "8-8", "16-16", "16-32", "32-32"} {
		for _, size := range CacheSizes {
			sn := series(t, nonPipe, label)
			sp := series(t, pipelined, label)
			var n, p uint64
			for _, pt := range sn.Points {
				if pt.CacheBytes == size && pt.Valid {
					n = pt.Cycles
				}
			}
			for _, pt := range sp.Points {
				if pt.CacheBytes == size && pt.Valid {
					p = pt.Cycles
				}
			}
			if n == 0 || p == 0 {
				continue
			}
			if p >= n {
				t.Errorf("%s at %dB: pipelined (%d) not below non-pipelined (%d)", label, size, p, n)
			}
		}
	}
	minMax := func(r *Result, size int) (uint64, uint64) {
		lo, hi := ^uint64(0), uint64(0)
		for _, s := range r.Series {
			for _, p := range s.Points {
				if p.CacheBytes == size && p.Valid {
					if p.Cycles < lo {
						lo = p.Cycles
					}
					if p.Cycles > hi {
						hi = p.Cycles
					}
				}
			}
		}
		return lo, hi
	}
	lo, hi := minMax(nonPipe, 64)
	spreadNon = float64(hi-lo) / float64(lo)
	lo, hi = minMax(pipelined, 64)
	spreadPipe = float64(hi-lo) / float64(lo)
	if spreadPipe >= spreadNon {
		t.Errorf("pipelined spread %.3f not compressed below non-pipelined %.3f", spreadPipe, spreadNon)
	}
}

// TestClaimBestLineSizeFlipsWithMemorySpeed: 8-byte lines win at a 1-cycle
// access time; 16/32-byte lines win at 6 cycles (paper, Figures 4 vs 6).
func TestClaimBestLineSizeFlipsWithMemorySpeed(t *testing.T) {
	fast := fig(t, "fig4b")
	slow := fig(t, "fig5b")
	if a, b := at(t, series(t, fast, "8-8"), 64), at(t, series(t, fast, "32-32"), 64); a >= b {
		t.Errorf("T=1: 8-8 (%d) should beat 32-32 (%d)", a, b)
	}
	if a, b := at(t, series(t, slow, "32-32"), 64), at(t, series(t, slow, "8-8"), 64); a >= b {
		t.Errorf("T=6: 32-32 (%d) should beat 8-8 (%d)", a, b)
	}
}

// TestClaimSmallPipeCacheRivalsLargeConventional: "using a 16 or 32 byte
// cache with an IQ and IQB one can achieve close to the performance of a
// 512 byte cache" (Figure 4b).
func TestClaimSmallPipeCacheRivalsLargeConventional(t *testing.T) {
	r := fig(t, "fig4b")
	small := at(t, series(t, r, "8-8"), 16)
	large := at(t, series(t, r, "conv"), 512)
	if ratio := float64(small) / float64(large); ratio > 1.12 {
		t.Errorf("PIPE 8-8 with a 16B cache is %.2fx a 512B conventional cache; want within ~10%%", ratio)
	}
}

// TestClaimCurvesConvergeAtLargeCaches: all strategies approach the same
// data-bound floor as the cache grows.
func TestClaimCurvesConvergeAtLargeCaches(t *testing.T) {
	for _, id := range []string{"fig4a", "fig5b", "fig6b"} {
		r := fig(t, id)
		var lo, hi uint64 = ^uint64(0), 0
		for _, s := range r.Series {
			c := at(t, s, 512)
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if spread := float64(hi-lo) / float64(lo); spread > 0.05 {
			t.Errorf("%s: 512B spread %.1f%%, want convergence within 5%%", id, spread*100)
		}
	}
}

// TestClaimMonotoneImprovementWithCacheSize: bigger caches never hurt, for
// every strategy and memory speed.
func TestClaimMonotoneImprovementWithCacheSize(t *testing.T) {
	for _, id := range []string{"fig4a", "fig4b", "fig5a", "fig5b", "fig6b"} {
		r := fig(t, id)
		for _, s := range r.Series {
			var prev uint64
			for _, p := range s.Points {
				if !p.Valid {
					continue
				}
				if prev != 0 && p.Cycles > prev+prev/50 { // 2% tolerance for conflict noise
					t.Errorf("%s %s: %dB (%d cycles) worse than smaller cache (%d)",
						id, s.Label, p.CacheBytes, p.Cycles, prev)
				}
				prev = p.Cycles
			}
		}
	}
}

// TestAblationTruePrefetch: the guaranteed-execution policy of the original
// chip never beats true prefetch, and costs measurably at some point.
func TestAblationTruePrefetch(t *testing.T) {
	r := fig(t, "noprefetch")
	someCost := false
	for _, T := range []string{"T=1", "T=6"} {
		on := series(t, r, T+" true-prefetch")
		off := series(t, r, T+" guaranteed-only")
		for _, size := range CacheSizes {
			if size < 16 {
				continue
			}
			a, b := at(t, on, size), at(t, off, size)
			if b+b/100 < a {
				t.Errorf("%s at %dB: guaranteed-only (%d) beats true prefetch (%d)", T, size, b, a)
			}
			if b > a {
				someCost = true
			}
		}
	}
	if !someCost {
		t.Error("disallowing true prefetch never cost a cycle; the paper reports a penalty")
	}
}

// TestKneeSitsAtCacheSize: cycles per iteration are flat while the loop
// fits in the 128-byte cache and step up sharply past it, with PIPE
// degrading more gracefully than the conventional cache.
func TestKneeSitsAtCacheSize(t *testing.T) {
	r := fig(t, "knee")
	pipe := series(t, r, "pipe 16-16")
	conv := series(t, r, "conv")
	perInstr := func(s Series, size int) float64 {
		return float64(at(t, s, size)) / float64(size/4)
	}
	// Fitting loops run near one cycle per instruction for both.
	for _, size := range []int{48, 96} {
		for _, s := range []Series{pipe, conv} {
			if cpi := perInstr(s, size); cpi > 2.0 {
				t.Errorf("%s at %dB (fits): %.2f cycles/instr, want near 1", s.Label, size, cpi)
			}
		}
	}
	// Non-fitting loops cost much more...
	for _, s := range []Series{pipe, conv} {
		if perInstr(s, 192) < 1.5*perInstr(s, 96) {
			t.Errorf("%s: no knee between 96B and 192B", s.Label)
		}
	}
	// ...and PIPE degrades more gracefully past the knee.
	for _, size := range []int{192, 256, 512} {
		if at(t, pipe, size) >= at(t, conv, size) {
			t.Errorf("at %dB: PIPE (%d) not faster than conventional (%d) past the knee",
				size, at(t, pipe, size), at(t, conv, size))
		}
	}
}

// TestDCacheCrossover: the paper's future-density suggestion pays off once
// the instruction cache already covers the loops.
func TestDCacheCrossover(t *testing.T) {
	r := fig(t, "dcache")
	iOnly := series(t, r, "all i-cache")
	split := series(t, r, "i+d split")
	if at(t, split, 128) <= at(t, iOnly, 128) {
		t.Error("at 128 total bytes the split machine should not win yet (i-cache too small)")
	}
	if at(t, split, 1024) >= at(t, iOnly, 1024) {
		t.Error("at 1024 total bytes the data cache should win")
	}
}

// TestFormatSimNativeActsLikeBiggerCache: the simulated native format beats
// the fixed format at every cache size (denser code = larger effective
// cache) and roughly matches the fixed format one cache size up.
func TestFormatSimNativeActsLikeBiggerCache(t *testing.T) {
	r := fig(t, "formatsim")
	for _, pair := range [][2]string{{"pipe fixed", "pipe native"}, {"conv fixed", "conv native"}} {
		fixed := series(t, r, pair[0])
		native := series(t, r, pair[1])
		for _, size := range CacheSizes {
			if size < 16 {
				continue
			}
			f, n := at(t, fixed, size), at(t, native, size)
			if n >= f {
				t.Errorf("%s at %dB: native (%d) not faster than fixed (%d)", pair[1], size, n, f)
			}
		}
		// Native at 64B should be at least as good as fixed at 128B.
		if at(t, native, 64) > at(t, fixed, 128) {
			t.Errorf("%s: native@64B (%d) worse than fixed@128B (%d); density should buy a cache size",
				pair[1], at(t, native, 64), at(t, fixed, 128))
		}
	}
}

// TestFormatDensity: the native 16/32-bit encoding is substantially denser.
func TestFormatDensity(t *testing.T) {
	r := fig(t, "format")
	fixed := series(t, r, "fixed-32 (B)")
	native := series(t, r, "native (B)")
	for i := range fixed.Points {
		f, n := fixed.Points[i].Cycles, native.Points[i].Cycles
		if n >= f {
			t.Errorf("loop %d: native %dB not smaller than fixed %dB", i+1, n, f)
		}
		if float64(n) < 0.5*float64(f) {
			t.Errorf("loop %d: native %dB implausibly below half of fixed %dB", i+1, n, f)
		}
	}
}

// TestPerLoopAdvantageComesFromNonFittingLoops: loops that fit the 128-byte
// cache cost both strategies about the same; every loop that does not fit
// costs the conventional cache measurably more (the knee argument seen from
// the other side).
func TestPerLoopAdvantageComesFromNonFittingLoops(t *testing.T) {
	r := fig(t, "perloop")
	pipe := series(t, r, "pipe 16-16")
	conv := series(t, r, "conv")
	fitting := map[int]bool{1: true, 3: true, 4: true, 5: true, 6: true, 11: true, 12: true}
	for loop := 1; loop <= 14; loop++ {
		p, c := at(t, pipe, loop), at(t, conv, loop)
		ratio := float64(c) / float64(p)
		if fitting[loop] {
			if ratio > 1.02 {
				t.Errorf("loop %d fits the cache but conv/pipe = %.3f; should be near 1", loop, ratio)
			}
		} else {
			if ratio < 1.05 {
				t.Errorf("loop %d does not fit but conv/pipe = %.3f; PIPE should win clearly", loop, ratio)
			}
		}
	}
}

// TestDelaySlotsHideResolutionLatency: each slot recovers cycles until the
// PBR resolution latency is covered, then the curve is flat (paper §3.1.3).
func TestDelaySlotsHideResolutionLatency(t *testing.T) {
	r := fig(t, "slots")
	for _, s := range r.Series {
		var prev uint64
		for i, p := range s.Points {
			if i > 0 && p.Cycles > prev {
				t.Errorf("%s: %d slots (%d cycles) worse than %d slots (%d)",
					s.Label, p.CacheBytes, p.Cycles, p.CacheBytes-1, prev)
			}
			prev = p.Cycles
		}
		first, last := s.Points[0].Cycles, s.Points[len(s.Points)-1].Cycles
		if first <= last {
			t.Errorf("%s: slots saved nothing (%d -> %d)", s.Label, first, last)
		}
		// Flat tail: 4..7 slots identical.
		if s.Points[4].Cycles != s.Points[7].Cycles {
			t.Errorf("%s: curve not flat once resolution is covered", s.Label)
		}
	}
}

// TestFormatRendersAllSeries sanity-checks the text renderer.
func TestFormatRendersAllSeries(t *testing.T) {
	r := fig(t, "table1")
	out := r.Format()
	if len(out) == 0 {
		t.Fatal("empty render")
	}
	for _, want := range []string{"Table I", "bytes", "116", "732"} {
		if !contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPlotRendersLegendAndScale(t *testing.T) {
	r := fig(t, "table1")
	out := r.Plot()
	for _, want := range []string{"legend:", "bytes", "732", "56", "loop number"} {
		if !contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	empty := &Result{Title: "empty", XLabel: "x"}
	if out := empty.Plot(); !contains(out, "no data") {
		t.Errorf("empty plot = %q", out)
	}
	flat := &Result{Title: "flat", XLabel: "x", Series: []Series{{
		Label:  "s",
		Points: []Point{{CacheBytes: 1, Cycles: 5, Valid: true}, {CacheBytes: 2, Cycles: 5, Valid: true}},
	}}}
	if out := flat.Plot(); !contains(out, "s") {
		t.Errorf("flat plot = %q", out)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
