package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"pipesim/internal/stats"
)

// fake builds a lightweight experiment for runner tests (no simulation;
// the bodies ignore the context, so they keep the plain signature).
func fake(id string, run func() (*Result, error)) Experiment {
	return Experiment{ID: id, Title: "fake " + id, Run: func(context.Context) (*Result, error) { return run() }}
}

func passing(id string) Experiment {
	return fake(id, func() (*Result, error) { return &Result{ID: id}, nil })
}

func TestRunAllIsolatesFailures(t *testing.T) {
	exps := []Experiment{
		passing("ok1"),
		fake("boom", func() (*Result, error) { panic("experiment bug") }),
		fake("err", func() (*Result, error) { return nil, errors.New("bad point") }),
		passing("ok2"),
	}
	sum := RunAll(exps, Options{Workers: 2})
	if len(sum.Outcomes) != len(exps) {
		t.Fatalf("got %d outcomes, want %d", len(sum.Outcomes), len(exps))
	}
	// Submission order is preserved regardless of completion order.
	for i, o := range sum.Outcomes {
		if o.Experiment.ID != exps[i].ID {
			t.Errorf("outcome %d is %s, want %s", i, o.Experiment.ID, exps[i].ID)
		}
	}
	if sum.Passed() != 2 || len(sum.Failed()) != 2 {
		t.Errorf("passed %d failed %d, want 2/2", sum.Passed(), len(sum.Failed()))
	}
	// The panic is wrapped, attributed and carries the stack.
	var pe *PanicError
	if !errors.As(sum.Outcomes[1].Err, &pe) {
		t.Fatalf("outcome[1].Err = %v, want *PanicError", sum.Outcomes[1].Err)
	}
	if pe.ID != "boom" || pe.Value != "experiment bug" || !strings.Contains(pe.Stack, "runner_test") {
		t.Errorf("panic not attributed: %+v", pe)
	}
	// Successful experiments still delivered their results.
	if sum.Outcomes[0].Result == nil || sum.Outcomes[3].Result == nil {
		t.Error("passing experiments lost their results")
	}
	if err := sum.Err(); err == nil || !strings.Contains(err.Error(), "2 of 4") {
		t.Errorf("Summary.Err() = %v", err)
	}
	table := sum.String()
	for _, want := range []string{"ok  ", "FAIL", "boom", "2/4 passed"} {
		if !strings.Contains(table, want) {
			t.Errorf("summary table missing %q:\n%s", want, table)
		}
	}
}

func TestRunAllEmptyAndAllPass(t *testing.T) {
	if sum := RunAll(nil, Options{}); len(sum.Outcomes) != 0 || sum.Err() != nil {
		t.Errorf("empty sweep: %+v", sum)
	}
	exps := make([]Experiment, 20)
	for i := range exps {
		exps[i] = passing(fmt.Sprintf("e%02d", i))
	}
	sum := RunAll(exps, Options{Workers: 8})
	if sum.Err() != nil {
		t.Fatalf("Err() = %v", sum.Err())
	}
	if sum.Passed() != len(exps) {
		t.Errorf("passed %d of %d", sum.Passed(), len(exps))
	}
}

func TestRunAllTimeout(t *testing.T) {
	release := make(chan struct{})
	exps := []Experiment{
		passing("fast"),
		fake("stuck", func() (*Result, error) { <-release; return &Result{}, nil }),
	}
	sum := RunAll(exps, Options{Workers: 2, Timeout: 50 * time.Millisecond})
	close(release) // let the abandoned goroutine exit
	var te *TimeoutError
	if !errors.As(sum.Outcomes[1].Err, &te) {
		t.Fatalf("stuck outcome err = %v, want *TimeoutError", sum.Outcomes[1].Err)
	}
	if te.ID != "stuck" || te.Timeout != 50*time.Millisecond {
		t.Errorf("timeout not attributed: %+v", te)
	}
	if sum.Outcomes[0].Err != nil {
		t.Errorf("fast experiment caught in the deadline: %v", sum.Outcomes[0].Err)
	}
	if !strings.Contains(te.Error(), "deadline") {
		t.Errorf("Error() = %q", te.Error())
	}
}

func TestSortByID(t *testing.T) {
	out := []Outcome{
		{Experiment: Experiment{ID: "fig5"}},
		{Experiment: Experiment{ID: "fig4a"}},
		{Experiment: Experiment{ID: "table1"}},
	}
	SortByID(out)
	got := []string{out[0].Experiment.ID, out[1].Experiment.ID, out[2].Experiment.ID}
	want := []string{"fig4a", "fig5", "table1"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestRunAllProgress(t *testing.T) {
	exps := []Experiment{
		passing("a"),
		fake("bad", func() (*Result, error) { return nil, errors.New("nope") }),
		passing("c"),
	}
	var (
		calls []string
		dones []int
	)
	sum := RunAll(exps, Options{Workers: 2, Progress: func(o Outcome, done, total int) {
		// Serialized on the collector goroutine: appending without a lock
		// here is itself part of the contract under test (go test -race).
		status := "ok"
		if o.Err != nil {
			status = "fail"
		}
		calls = append(calls, o.Experiment.ID+":"+status)
		dones = append(dones, done)
		if total != len(exps) {
			t.Errorf("total = %d, want %d", total, len(exps))
		}
	}})
	if len(calls) != len(exps) {
		t.Fatalf("progress called %d times, want %d (calls: %v)", len(calls), len(exps), calls)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Errorf("done counts = %v, want 1..%d in order", dones, len(exps))
			break
		}
	}
	seen := map[string]bool{}
	for _, c := range calls {
		seen[c] = true
	}
	for _, want := range []string{"a:ok", "bad:fail", "c:ok"} {
		if !seen[want] {
			t.Errorf("progress calls %v missing %q", calls, want)
		}
	}
	if sum.Passed() != 2 {
		t.Errorf("passed = %d, want 2", sum.Passed())
	}
}

func TestSummaryWriteJSON(t *testing.T) {
	exps := []Experiment{
		fake("fig5a", func() (*Result, error) {
			return &Result{
				ID: "fig5a", XLabel: "cache bytes",
				Series: []Series{{Label: "pipe", Points: []Point{
					{CacheBytes: 64, Cycles: 1234, Valid: true},
					{CacheBytes: 4, Valid: false},
				}}},
			}, nil
		}),
		fake("broken", func() (*Result, error) { return nil, errors.New("machine check") }),
	}
	sum := RunAll(exps, Options{Workers: 1})
	var buf strings.Builder
	if err := sum.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Total          int     `json:"total"`
		Passed         int     `json:"passed"`
		ElapsedSeconds float64 `json:"elapsed_seconds"`
		Outcomes       []struct {
			ID             string  `json:"id"`
			OK             bool    `json:"ok"`
			Error          string  `json:"error"`
			ElapsedSeconds float64 `json:"elapsed_seconds"`
			XLabel         string  `json:"x_label"`
			Series         []struct {
				Label  string `json:"label"`
				Points []struct {
					X      int    `json:"x"`
					Cycles uint64 `json:"cycles"`
					Valid  bool   `json:"valid"`
				} `json:"points"`
			} `json:"series"`
		} `json:"outcomes"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatalf("metrics are not valid JSON: %v\n%s", err, buf.String())
	}
	if decoded.Total != 2 || decoded.Passed != 1 {
		t.Errorf("total/passed = %d/%d, want 2/1", decoded.Total, decoded.Passed)
	}
	if len(decoded.Outcomes) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(decoded.Outcomes))
	}
	ok, bad := decoded.Outcomes[0], decoded.Outcomes[1]
	if !ok.OK || ok.ID != "fig5a" || ok.XLabel != "cache bytes" {
		t.Errorf("passing outcome = %+v", ok)
	}
	if len(ok.Series) != 1 || len(ok.Series[0].Points) != 2 {
		t.Fatalf("series shape = %+v", ok.Series)
	}
	p := ok.Series[0].Points[0]
	if p.X != 64 || p.Cycles != 1234 || !p.Valid {
		t.Errorf("point = %+v, want x=64 cycles=1234 valid", p)
	}
	if bad.OK || bad.Error != "machine check" {
		t.Errorf("failing outcome = %+v", bad)
	}
}

// TestSummaryWriteJSONAttribution pins the schema tag and the
// cycle-attribution aggregation: experiments whose points carry stats get
// per-experiment bucket totals with the documented lower_snake names, the
// summary carries the sweep-wide sum, and stat-less experiments omit the
// field entirely.
func TestSummaryWriteJSONAttribution(t *testing.T) {
	withStats := func(id string, issue, starved uint64) Experiment {
		return fake(id, func() (*Result, error) {
			st := &stats.Sim{}
			st.CPU.CycleBuckets[stats.CycleIssue] = issue
			st.CPU.CycleBuckets[stats.CycleFetchStarved] = starved
			st.Cycles = issue + starved
			return &Result{ID: id, Series: []Series{{Label: "s", Points: []Point{
				{CacheBytes: 128, Cycles: st.Cycles, Valid: true, Stats: st},
			}}}}, nil
		})
	}
	sum := RunAll([]Experiment{
		withStats("a", 100, 7),
		withStats("b", 50, 3),
		passing("tableonly"),
	}, Options{Workers: 1})

	var buf strings.Builder
	if err := sum.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Schema      string `json:"schema"`
		Attribution *struct {
			Issue        uint64 `json:"issue"`
			FetchStarved uint64 `json:"fetch_starved"`
		} `json:"attribution"`
		Outcomes []struct {
			ID          string          `json:"id"`
			Attribution json.RawMessage `json:"attribution"`
		} `json:"outcomes"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Schema != MetricsSchema {
		t.Errorf("schema = %q, want %q", decoded.Schema, MetricsSchema)
	}
	if decoded.Attribution == nil {
		t.Fatal("summary attribution missing")
	}
	if decoded.Attribution.Issue != 150 || decoded.Attribution.FetchStarved != 10 {
		t.Errorf("summary attribution = %+v, want issue=150 fetch_starved=10", decoded.Attribution)
	}
	byID := map[string]json.RawMessage{}
	for _, o := range decoded.Outcomes {
		byID[o.ID] = o.Attribution
	}
	if len(byID["a"]) == 0 || len(byID["b"]) == 0 {
		t.Error("per-experiment attribution missing on stat-carrying outcomes")
	}
	if len(byID["tableonly"]) != 0 {
		t.Errorf("stat-less outcome emitted attribution: %s", byID["tableonly"])
	}

	// The BucketTotals helper is the daemon's metrics source; pin its
	// direct behaviour too.
	tot, ok := sum.Outcomes[0].BucketTotals()
	if !ok || tot.Total() != 107 {
		t.Errorf("BucketTotals = %+v ok=%v, want total 107", tot, ok)
	}
	if _, ok := sum.Outcomes[2].BucketTotals(); ok {
		t.Error("BucketTotals ok on a stat-less outcome")
	}
}

// TestSummaryWriteJSONCache pins the cache-introspection aggregation:
// experiments whose points ran with Config.CacheStats get per-experiment
// miss-class totals under "cache", the summary carries the sweep-wide sum,
// and uninstrumented experiments omit the field.
func TestSummaryWriteJSONCache(t *testing.T) {
	withCache := func(id string, comp, capa, conf uint64) Experiment {
		return fake(id, func() (*Result, error) {
			st := &stats.Sim{}
			st.Cache = &stats.CacheStats{
				Compulsory: comp, Capacity: capa, Conflict: conf,
				Evictions: comp + capa + conf, DeadEvictions: conf,
			}
			return &Result{ID: id, Series: []Series{{Label: "s", Points: []Point{
				{CacheBytes: 64, Cycles: 1, Valid: true, Stats: st},
			}}}}, nil
		})
	}
	sum := RunAll([]Experiment{
		withCache("a", 10, 200, 30),
		withCache("b", 5, 100, 15),
		passing("plain"),
	}, Options{Workers: 1})

	var buf strings.Builder
	if err := sum.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Cache *struct {
			Compulsory    uint64 `json:"compulsory"`
			Capacity      uint64 `json:"capacity"`
			Conflict      uint64 `json:"conflict"`
			Evictions     uint64 `json:"evictions"`
			DeadEvictions uint64 `json:"dead_evictions"`
		} `json:"cache"`
		Outcomes []struct {
			ID    string          `json:"id"`
			Cache json.RawMessage `json:"cache"`
		} `json:"outcomes"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Cache == nil {
		t.Fatal("summary cache totals missing")
	}
	if decoded.Cache.Compulsory != 15 || decoded.Cache.Capacity != 300 || decoded.Cache.Conflict != 45 {
		t.Errorf("summary cache = %+v, want 15/300/45", decoded.Cache)
	}
	if decoded.Cache.Evictions != 360 || decoded.Cache.DeadEvictions != 45 {
		t.Errorf("summary evictions = %d/%d, want 360/45", decoded.Cache.Evictions, decoded.Cache.DeadEvictions)
	}
	byID := map[string]json.RawMessage{}
	for _, o := range decoded.Outcomes {
		byID[o.ID] = o.Cache
	}
	if len(byID["a"]) == 0 || len(byID["b"]) == 0 {
		t.Error("per-experiment cache totals missing on introspected outcomes")
	}
	if len(byID["plain"]) != 0 {
		t.Errorf("uninstrumented outcome emitted cache totals: %s", byID["plain"])
	}

	// Pin the helper the daemon folds from directly.
	ct, ok := sum.Outcomes[0].CacheTotals()
	if !ok || ct.Misses() != 240 {
		t.Errorf("CacheTotals = %+v ok=%v, want 240 misses", ct, ok)
	}
	if _, ok := sum.Outcomes[2].CacheTotals(); ok {
		t.Error("CacheTotals ok on an uninstrumented outcome")
	}
}
