package sweep

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// fake builds a lightweight experiment for runner tests (no simulation).
func fake(id string, run func() (*Result, error)) Experiment {
	return Experiment{ID: id, Title: "fake " + id, Run: run}
}

func passing(id string) Experiment {
	return fake(id, func() (*Result, error) { return &Result{ID: id}, nil })
}

func TestRunAllIsolatesFailures(t *testing.T) {
	exps := []Experiment{
		passing("ok1"),
		fake("boom", func() (*Result, error) { panic("experiment bug") }),
		fake("err", func() (*Result, error) { return nil, errors.New("bad point") }),
		passing("ok2"),
	}
	sum := RunAll(exps, Options{Workers: 2})
	if len(sum.Outcomes) != len(exps) {
		t.Fatalf("got %d outcomes, want %d", len(sum.Outcomes), len(exps))
	}
	// Submission order is preserved regardless of completion order.
	for i, o := range sum.Outcomes {
		if o.Experiment.ID != exps[i].ID {
			t.Errorf("outcome %d is %s, want %s", i, o.Experiment.ID, exps[i].ID)
		}
	}
	if sum.Passed() != 2 || len(sum.Failed()) != 2 {
		t.Errorf("passed %d failed %d, want 2/2", sum.Passed(), len(sum.Failed()))
	}
	// The panic is wrapped, attributed and carries the stack.
	var pe *PanicError
	if !errors.As(sum.Outcomes[1].Err, &pe) {
		t.Fatalf("outcome[1].Err = %v, want *PanicError", sum.Outcomes[1].Err)
	}
	if pe.ID != "boom" || pe.Value != "experiment bug" || !strings.Contains(pe.Stack, "runner_test") {
		t.Errorf("panic not attributed: %+v", pe)
	}
	// Successful experiments still delivered their results.
	if sum.Outcomes[0].Result == nil || sum.Outcomes[3].Result == nil {
		t.Error("passing experiments lost their results")
	}
	if err := sum.Err(); err == nil || !strings.Contains(err.Error(), "2 of 4") {
		t.Errorf("Summary.Err() = %v", err)
	}
	table := sum.String()
	for _, want := range []string{"ok  ", "FAIL", "boom", "2/4 passed"} {
		if !strings.Contains(table, want) {
			t.Errorf("summary table missing %q:\n%s", want, table)
		}
	}
}

func TestRunAllEmptyAndAllPass(t *testing.T) {
	if sum := RunAll(nil, Options{}); len(sum.Outcomes) != 0 || sum.Err() != nil {
		t.Errorf("empty sweep: %+v", sum)
	}
	exps := make([]Experiment, 20)
	for i := range exps {
		exps[i] = passing(fmt.Sprintf("e%02d", i))
	}
	sum := RunAll(exps, Options{Workers: 8})
	if sum.Err() != nil {
		t.Fatalf("Err() = %v", sum.Err())
	}
	if sum.Passed() != len(exps) {
		t.Errorf("passed %d of %d", sum.Passed(), len(exps))
	}
}

func TestRunAllTimeout(t *testing.T) {
	release := make(chan struct{})
	exps := []Experiment{
		passing("fast"),
		fake("stuck", func() (*Result, error) { <-release; return &Result{}, nil }),
	}
	sum := RunAll(exps, Options{Workers: 2, Timeout: 50 * time.Millisecond})
	close(release) // let the abandoned goroutine exit
	var te *TimeoutError
	if !errors.As(sum.Outcomes[1].Err, &te) {
		t.Fatalf("stuck outcome err = %v, want *TimeoutError", sum.Outcomes[1].Err)
	}
	if te.ID != "stuck" || te.Timeout != 50*time.Millisecond {
		t.Errorf("timeout not attributed: %+v", te)
	}
	if sum.Outcomes[0].Err != nil {
		t.Errorf("fast experiment caught in the deadline: %v", sum.Outcomes[0].Err)
	}
	if !strings.Contains(te.Error(), "deadline") {
		t.Errorf("Error() = %q", te.Error())
	}
}

func TestSortByID(t *testing.T) {
	out := []Outcome{
		{Experiment: Experiment{ID: "fig5"}},
		{Experiment: Experiment{ID: "fig4a"}},
		{Experiment: Experiment{ID: "table1"}},
	}
	SortByID(out)
	got := []string{out[0].Experiment.ID, out[1].Experiment.ID, out[2].Experiment.ID}
	want := []string{"fig4a", "fig5", "table1"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}
