// Tests for the observability layer's public surface: the cycle-attribution
// invariant (every simulated cycle lands in exactly one bucket), per-loop
// statistics, the probe event stream, and the Chrome-trace timeline format.
package pipesim_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"pipesim"
)

// eventCounter is a minimal user-written probe exercising the public Probe
// surface: it tallies events per kind and checks cycle stamps never move
// backwards.
type eventCounter struct {
	t         *testing.T
	counts    map[pipesim.ProbeKind]uint64
	lastCycle uint64
}

func newEventCounter(t *testing.T) *eventCounter {
	return &eventCounter{t: t, counts: make(map[pipesim.ProbeKind]uint64)}
}

func (c *eventCounter) Event(e pipesim.ProbeEvent) {
	c.counts[e.Kind]++
	if e.Cycle < c.lastCycle {
		c.t.Errorf("event %v at cycle %d after cycle %d: clock went backwards", e.Kind, e.Cycle, c.lastCycle)
	}
	c.lastCycle = e.Cycle
}

// TestCycleAttributionInvariant runs the full benchmark under every fetch
// strategy and every Table II arrangement and checks the observability
// layer's core guarantees:
//
//   - the attribution buckets sum exactly to the run's total cycles;
//   - exactly one KindCycle event is emitted per simulated cycle;
//   - the per-Livermore-loop cycle counts sum exactly to the total, and the
//     per-loop instruction counts to the retired-instruction total;
//   - the previously dropped supply/starvation and bus counters are
//     populated and consistent.
func TestCycleAttributionInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full-benchmark sweep")
	}
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []pipesim.Strategy{
		pipesim.StrategyPIPE, pipesim.StrategyConventional, pipesim.StrategyTIB,
	} {
		for _, variant := range []string{"8-8", "16-16", "16-32", "32-32"} {
			t.Run(string(strategy)+"/"+variant, func(t *testing.T) {
				t.Parallel()
				cfg, err := pipesim.TableIIConfig(variant)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Strategy = strategy
				sim, err := pipesim.NewSimulation(cfg, prog)
				if err != nil {
					t.Fatal(err)
				}
				counter := newEventCounter(t)
				sim.Observe(counter)
				if err := sim.CollectPerLoop(); err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run()
				if err != nil {
					t.Fatal(err)
				}
				if got := res.Attribution.Total(); got != res.Cycles {
					t.Errorf("attribution buckets sum to %d, want Cycles = %d (%+v)",
						got, res.Cycles, res.Attribution)
				}
				if got := counter.counts[pipesim.EventCycle]; got != res.Cycles {
					t.Errorf("KindCycle events = %d, want one per cycle = %d", got, res.Cycles)
				}
				if got := counter.counts[pipesim.EventRetire]; got != res.Instructions {
					t.Errorf("KindRetire events = %d, want %d", got, res.Instructions)
				}
				if res.PerLoop == nil {
					t.Fatal("CollectPerLoop set but Result.PerLoop is nil")
				}
				var loopCycles, loopInstr uint64
				for _, l := range res.PerLoop {
					loopCycles += l.Cycles
					loopInstr += l.Instructions
					if got := l.Cycles - l.StallCycles(); l.StallCycles() > l.Cycles {
						t.Errorf("loop %d: stall cycles %d exceed cycles %d (issue %d)",
							l.Loop, l.StallCycles(), l.Cycles, got)
					}
				}
				if loopCycles != res.Cycles {
					t.Errorf("per-loop cycles sum to %d, want %d", loopCycles, res.Cycles)
				}
				if loopInstr != res.Instructions {
					t.Errorf("per-loop instructions sum to %d, want %d", loopInstr, res.Instructions)
				}
				for _, l := range res.PerLoop[1:] {
					if l.Instructions == 0 {
						t.Errorf("loop %d (%s) retired no instructions", l.Loop, l.Name)
					}
				}
				// The resurrected counters must be populated and consistent.
				if res.SupplyCycles != res.Instructions {
					t.Errorf("SupplyCycles = %d, want one per retired instruction = %d",
						res.SupplyCycles, res.Instructions)
				}
				if res.StarvedCycles != res.StallFetchEmpty {
					t.Errorf("StarvedCycles = %d, want StallFetchEmpty = %d",
						res.StarvedCycles, res.StallFetchEmpty)
				}
				if res.InputBusCycles == 0 || res.InputBusCycles > res.Cycles {
					t.Errorf("InputBusCycles = %d out of range (0, %d]", res.InputBusCycles, res.Cycles)
				}
				if res.StoreWords == 0 {
					t.Error("StoreWords = 0, want store traffic on the benchmark")
				}
			})
		}
	}
}

// TestAttributionNativeFormat checks the invariants survive the
// native-format relayout, where every loop symbol moves: the per-loop
// ranges must be resolved against the relocated image.
func TestAttributionNativeFormat(t *testing.T) {
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipesim.DefaultConfig()
	cfg.NativeFormat = true
	sim, err := pipesim.NewSimulation(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CollectPerLoop(); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Attribution.Total(); got != res.Cycles {
		t.Errorf("attribution buckets sum to %d, want %d", got, res.Cycles)
	}
	var loopCycles, loopInstr uint64
	for _, l := range res.PerLoop {
		loopCycles += l.Cycles
		loopInstr += l.Instructions
	}
	if loopCycles != res.Cycles {
		t.Errorf("per-loop cycles sum to %d, want %d", loopCycles, res.Cycles)
	}
	if loopInstr != res.Instructions {
		t.Errorf("per-loop instructions sum to %d, want %d", loopInstr, res.Instructions)
	}
	for _, l := range res.PerLoop[1:] {
		if l.Instructions == 0 {
			t.Errorf("native format: loop %d (%s) retired no instructions (stale PC ranges?)", l.Loop, l.Name)
		}
	}
}

// TestAttributionUnobserved checks the always-on attribution needs no probe
// and is unperturbed by one: bucket counts must be identical with and
// without an attached probe.
func TestAttributionUnobserved(t *testing.T) {
	prog, err := pipesim.LivermoreKernel(3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipesim.DefaultConfig()
	plain, err := pipesim.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.Attribution.Total(); got != plain.Cycles {
		t.Errorf("unobserved attribution sums to %d, want %d", got, plain.Cycles)
	}
	sim, err := pipesim.NewSimulation(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	sim.Observe(newEventCounter(t))
	observed, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Attribution != observed.Attribution {
		t.Errorf("probe changed attribution: %+v vs %+v", plain.Attribution, observed.Attribution)
	}
	if plain.Cycles != observed.Cycles {
		t.Errorf("probe changed cycle count: %d vs %d", plain.Cycles, observed.Cycles)
	}
}

// chromeTraceFile mirrors the Chrome trace event format's JSON object form
// for validation.
type chromeTraceFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   uint64         `json:"ts"`
		Dur  uint64         `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		S    string         `json:"s"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestTimelineChromeTraceFormat validates the timeline export against the
// Chrome trace event format: the required top-level object shape, legal
// phase codes, metadata records, and the structural invariant that the
// pipeline-attribution spans tile the whole run (durations sum to Cycles).
func TestTimelineChromeTraceFormat(t *testing.T) {
	prog, err := pipesim.LivermoreKernel(3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipesim.DefaultConfig()
	cfg.CacheBytes = 64 // small enough to miss: fetch spans and bus counters appear
	sim, err := pipesim.NewSimulation(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	tl := pipesim.NewTimeline()
	sim.Observe(tl)
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var trace chromeTraceFile
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", trace.DisplayTimeUnit)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var (
		phases        = map[string]bool{"M": true, "X": true, "C": true, "i": true}
		metaNames     = map[string]int{}
		pipelineSpans uint64
		fetchSpans    int
		counters      int
	)
	for i, e := range trace.TraceEvents {
		if e.Name == "" {
			t.Fatalf("event %d has no name", i)
		}
		if !phases[e.Ph] {
			t.Fatalf("event %d (%s) has illegal phase %q", i, e.Name, e.Ph)
		}
		switch e.Ph {
		case "M":
			metaNames[e.Name]++
		case "X":
			if e.Dur == 0 {
				t.Errorf("complete event %d (%s) has zero duration", i, e.Name)
			}
			switch e.Tid {
			case 1:
				pipelineSpans += e.Dur
			case 2:
				fetchSpans++
			}
		case "C":
			counters++
			if len(e.Args) == 0 {
				t.Errorf("counter event %d (%s) has no args (no value series)", i, e.Name)
			}
		case "i":
			if e.S == "" {
				t.Errorf("instant event %d (%s) has no scope", i, e.Name)
			}
		}
	}
	if metaNames["process_name"] != 1 || metaNames["thread_name"] != 3 {
		t.Errorf("metadata records = %v, want 1 process_name and 3 thread_name", metaNames)
	}
	if pipelineSpans != res.Cycles {
		t.Errorf("pipeline attribution spans cover %d cycles, want %d", pipelineSpans, res.Cycles)
	}
	if fetchSpans == 0 {
		t.Error("no demand-fetch/prefetch spans despite a missing cache")
	}
	if counters == 0 {
		t.Error("no counter samples (queue occupancy / input bus)")
	}
}

// TestObserveMulti checks that several probes attached to one simulation
// each receive the full event stream.
func TestObserveMulti(t *testing.T) {
	prog, err := pipesim.LivermoreKernel(11)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := pipesim.NewSimulation(pipesim.DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	a, b := newEventCounter(t), newEventCounter(t)
	sim.Observe(a)
	sim.Observe(b)
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.counts[pipesim.EventCycle] != res.Cycles || b.counts[pipesim.EventCycle] != res.Cycles {
		t.Errorf("probes saw %d and %d cycle events, want %d each",
			a.counts[pipesim.EventCycle], b.counts[pipesim.EventCycle], res.Cycles)
	}
	if a.counts[pipesim.EventRetire] != b.counts[pipesim.EventRetire] {
		t.Errorf("probes disagree on retires: %d vs %d",
			a.counts[pipesim.EventRetire], b.counts[pipesim.EventRetire])
	}
}
