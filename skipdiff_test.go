package pipesim_test

// Public-API half of the skip-vs-step differential suite (the
// strategy/geometry matrix lives in internal/core). These tests pin the
// contract Config.NoSkipAhead documents: the complete Result — including
// per-loop statistics and the cache-introspection block — is bit-identical
// whether the core skips or steps, and an arbitrary validated Config keeps
// that property (the fuzz target shares FuzzConfig's corpus).

import (
	"errors"
	"reflect"
	"testing"

	"pipesim"
)

// TestSkipAheadResultIdentical runs the Livermore benchmark through the
// public API with everything optional switched on — per-loop collection
// and cache introspection — and compares the full Result.
func TestSkipAheadResultIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark runs")
	}
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		t.Fatal(err)
	}
	run := func(noSkip bool) *pipesim.Result {
		cfg := pipesim.DefaultConfig()
		cfg.MemAccessTime = 6
		cfg.BusWidthBytes = 8
		cfg.CacheStats = true
		cfg.NoSkipAhead = noSkip
		sim, err := pipesim.NewSimulation(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.CollectPerLoop(); err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	step, skip := run(true), run(false)
	if !reflect.DeepEqual(step, skip) {
		t.Errorf("NoSkipAhead changed the Result:\nstep %+v\nskip %+v", step, skip)
	}
}

// FuzzSkipDiff fuzzes machine configurations (FuzzConfig's corpus shape)
// and asserts every validated one produces identical Results skipped and
// stepped on the architectural smoke kernel.
func FuzzSkipDiff(f *testing.F) {
	seed := func(c pipesim.Config) {
		f.Add(string(c.Strategy), c.CacheBytes, c.LineBytes, c.IQBytes, c.IQBBytes,
			c.TIBEntries, c.TIBLineBytes, c.MemAccessTime, c.BusWidthBytes, c.FPULatency,
			c.LAQDepth, c.LDQDepth, c.SAQDepth, c.SDQDepth, c.DCacheBytes, c.DCacheLineBytes,
			c.TruePrefetch, c.DeepPrefetch, c.NativeFormat, c.PipelinedMemory, c.InstrPriority)
	}
	seed(pipesim.DefaultConfig())
	for _, name := range []string{"8-8", "16-16", "16-32", "32-32"} {
		cfg, err := pipesim.TableIIConfig(name)
		if err != nil {
			f.Fatal(err)
		}
		seed(cfg)
	}
	conv := pipesim.DefaultConfig()
	conv.Strategy = pipesim.StrategyConventional
	conv.MemAccessTime, conv.BusWidthBytes = 6, 8
	seed(conv)
	tib := pipesim.DefaultConfig()
	tib.Strategy = pipesim.StrategyTIB
	seed(tib)

	f.Fuzz(func(t *testing.T, strategy string, cacheBytes, lineBytes, iqBytes, iqbBytes,
		tibEntries, tibLineBytes, memAccessTime, busWidthBytes, fpuLatency,
		laq, ldq, saq, sdq, dcacheBytes, dcacheLineBytes int,
		truePrefetch, deepPrefetch, nativeFormat, pipelinedMemory, instrPriority bool) {
		cfg := pipesim.Config{
			Strategy:        pipesim.Strategy(strategy),
			CacheBytes:      cacheBytes,
			LineBytes:       lineBytes,
			IQBytes:         iqBytes,
			IQBBytes:        iqbBytes,
			TruePrefetch:    truePrefetch,
			DeepPrefetch:    deepPrefetch,
			NativeFormat:    nativeFormat,
			TIBEntries:      tibEntries,
			TIBLineBytes:    tibLineBytes,
			MemAccessTime:   memAccessTime,
			BusWidthBytes:   busWidthBytes,
			PipelinedMemory: pipelinedMemory,
			InstrPriority:   instrPriority,
			FPULatency:      fpuLatency,
			LAQDepth:        laq,
			LDQDepth:        ldq,
			SAQDepth:        saq,
			SDQDepth:        sdq,
			DCacheBytes:     dcacheBytes,
			DCacheLineBytes: dcacheLineBytes,
			MaxCycles:       2_000_000,
			WatchdogCycles:  200_000,
		}
		if err := cfg.Validate(); err != nil {
			if !errors.Is(err, pipesim.ErrInvalidConfig) {
				t.Fatalf("Validate error not tagged ErrInvalidConfig: %v", err)
			}
			return
		}
		stepCfg := cfg
		stepCfg.NoSkipAhead = true
		step, stepErr := pipesim.Run(stepCfg, fuzzKernel(t))
		skip, skipErr := pipesim.Run(cfg, fuzzKernel(t))
		if (stepErr == nil) != (skipErr == nil) {
			t.Fatalf("skip-ahead changed the outcome: step err %v, skip err %v\nconfig: %+v",
				stepErr, skipErr, cfg)
		}
		if stepErr != nil {
			return // both failed identically enough; FuzzConfig owns failure triage
		}
		if !reflect.DeepEqual(step, skip) {
			t.Fatalf("skip-ahead changed the Result:\nstep %+v\nskip %+v\nconfig: %+v",
				step, skip, cfg)
		}
	})
}
