#!/bin/sh
# Benchmark-baseline pipeline: run the repo's benchmarks, normalise the
# output into the stable pipesim-bench/v1 JSON schema, and write
# BENCH_<label>.json at the repo root.
#
#   scripts/bench.sh                      # full run, label "dev"
#   scripts/bench.sh --label seed         # full run, writes BENCH_seed.json
#   scripts/bench.sh --short              # CI smoke: key benchmarks, 1 iter
#   scripts/bench.sh compare OLD NEW      # diff two baselines (exit 1 on
#                                         # >threshold regression)
#   scripts/bench.sh compare --warn-only OLD NEW
#
# Environment:
#   BENCH_THRESHOLD   regression threshold in percent (default 10)
set -eu
cd "$(dirname "$0")/.."

THRESHOLD="${BENCH_THRESHOLD:-10}"

if [ "${1:-}" = "compare" ]; then
    shift
    exec go run ./cmd/benchjson compare -threshold "$THRESHOLD" "$@"
fi

LABEL=dev
SHORT=0
while [ $# -gt 0 ]; do
    case "$1" in
        --label) LABEL="$2"; shift 2 ;;
        --short) SHORT=1; shift ;;
        *) echo "bench.sh: unknown argument $1" >&2; exit 2 ;;
    esac
done

OUT="BENCH_${LABEL}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

if [ "$SHORT" = 1 ]; then
    # CI smoke: one iteration of the key end-to-end benchmarks — enough to
    # prove they run and produce a parseable baseline, not a timing source.
    echo "== go test -bench (short)" >&2
    go test -run '^$' -bench 'SingleRun|ProbeOverhead|RunHookOverhead|SweepE2E|FlightRecorderOverhead|SpanOverhead|MissClassOverhead' \
        -benchtime 1x -benchmem ./... | tee "$RAW"
else
    echo "== go test -bench (full)" >&2
    go test -run '^$' -bench . -benchmem ./... | tee "$RAW"
fi

go run ./cmd/benchjson format -label "$LABEL" -o "$OUT" < "$RAW"
echo "bench.sh: wrote $OUT" >&2
