#!/bin/sh
# Benchmark-baseline pipeline: run the repo's benchmarks, normalise the
# output into the stable pipesim-bench/v1 JSON schema, and write
# BENCH_<label>.json at the repo root.
#
#   scripts/bench.sh                      # full run, label "dev"
#   scripts/bench.sh --label seed         # full run, writes BENCH_seed.json
#   scripts/bench.sh --short              # CI smoke: key benchmarks, 1 iter
#   scripts/bench.sh compare OLD NEW      # diff two baselines (exit 1 on
#                                         # >threshold regression)
#   scripts/bench.sh compare NEW          # baseline resolved automatically
#   scripts/bench.sh compare --warn-only OLD NEW
#
# Environment:
#   BENCH_THRESHOLD   regression threshold in percent (default 10)
#   BENCH_BASELINE    compare baseline when OLD is omitted; defaults to the
#                     most recently committed BENCH_*.json, so promoting a
#                     new baseline is one `git add`, not a script edit
set -eu
cd "$(dirname "$0")/.."

THRESHOLD="${BENCH_THRESHOLD:-10}"

# newest_baseline prints the committed BENCH_*.json with the most recent
# commit date (last-modifying commit, not mtime: checkouts reset mtimes).
newest_baseline() {
    git ls-files 'BENCH_*.json' | while IFS= read -r f; do
        printf '%s %s\n' "$(git log -1 --format=%ct -- "$f")" "$f"
    done | sort -rn | head -n1 | cut -d' ' -f2-
}

if [ "${1:-}" = "compare" ]; then
    shift
    njson=0
    for a in "$@"; do
        case "$a" in *.json) njson=$((njson + 1)) ;; esac
    done
    if [ "$njson" -eq 1 ]; then
        BASE="${BENCH_BASELINE:-}"
        [ -n "$BASE" ] || BASE="$(newest_baseline)"
        if [ -z "$BASE" ]; then
            echo "bench.sh: no BENCH_BASELINE set and no committed BENCH_*.json found" >&2
            exit 2
        fi
        echo "bench.sh: comparing against baseline $BASE" >&2
        # The single .json operand is the NEW file and (per the usage
        # above) the last argument; splice the resolved baseline in just
        # before it: flags... OLD NEW.
        n=$#
        i=0
        for a in "$@"; do
            i=$((i + 1))
            [ "$i" -eq "$n" ] && set -- "$@" "$BASE"
            set -- "$@" "$a"
        done
        shift "$n"
    fi
    exec go run ./cmd/benchjson compare -threshold "$THRESHOLD" "$@"
fi

LABEL=dev
SHORT=0
while [ $# -gt 0 ]; do
    case "$1" in
        --label) LABEL="$2"; shift 2 ;;
        --short) SHORT=1; shift ;;
        *) echo "bench.sh: unknown argument $1" >&2; exit 2 ;;
    esac
done

OUT="BENCH_${LABEL}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

if [ "$SHORT" = 1 ]; then
    # CI smoke: one iteration of the key end-to-end benchmarks — enough to
    # prove they run and produce a parseable baseline, not a timing source.
    echo "== go test -bench (short)" >&2
    go test -run '^$' -bench 'SingleRun|ProbeOverhead|RunHookOverhead|SweepE2E|FlightRecorderOverhead|SpanOverhead|MissClassOverhead' \
        -benchtime 1x -benchmem ./... | tee "$RAW"
else
    echo "== go test -bench (full)" >&2
    go test -run '^$' -bench . -benchmem ./... | tee "$RAW"
fi

go run ./cmd/benchjson format -label "$LABEL" -o "$OUT" < "$RAW"
echo "bench.sh: wrote $OUT" >&2
