#!/bin/sh
# Repository verification: vet, the full test suite under the race detector
# (the parallel sweep runner and the benchmark-image cache are exercised
# concurrently), and every fuzz target's seed corpus (run automatically by
# `go test`, including in -short mode).
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go test -race"
go test -race ./...

echo "verify: OK"
