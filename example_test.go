package pipesim_test

import (
	"fmt"
	"math"

	"pipesim"
)

// ExampleRun executes the paper's Livermore benchmark on the default
// machine and prints the exact executed-instruction count.
func ExampleRun() {
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		panic(err)
	}
	res, err := pipesim.Run(pipesim.DefaultConfig(), prog)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Instructions)
	// Output: 150575
}

// ExampleAssemble runs a hand-written PIPE assembly program and reads a
// register result.
func ExampleAssemble() {
	prog, err := pipesim.Assemble(`
        li   r1, 6
        li   r2, 7
        add  r3, r1, r2
        halt
`)
	if err != nil {
		panic(err)
	}
	sim, err := pipesim.NewSimulation(pipesim.DefaultConfig(), prog)
	if err != nil {
		panic(err)
	}
	if _, err := sim.Run(); err != nil {
		panic(err)
	}
	fmt.Println(sim.Reg(3))
	// Output: 13
}

// ExampleCompileKernel compiles the kernel-description language and
// verifies a float32 result computed by the simulated external FPU.
func ExampleCompileKernel() {
	compiled, err := pipesim.CompileKernel(`
array x[20]
array y[20] = fill(1.5)
loop 10 {
  x[k] = y[k] * y[k]
}
`)
	if err != nil {
		panic(err)
	}
	sim, err := pipesim.NewSimulation(pipesim.DefaultConfig(), compiled.Program)
	if err != nil {
		panic(err)
	}
	if _, err := sim.Run(); err != nil {
		panic(err)
	}
	addr, _ := compiled.ArrayAddr("x", 4)
	fmt.Println(math.Float32frombits(sim.ReadWord(addr)))
	// Output: 2.25
}

// ExampleTableIIConfig compares two of the paper's Table II configurations
// on slow memory.
func ExampleTableIIConfig() {
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		panic(err)
	}
	for _, name := range []string{"8-8", "32-32"} {
		cfg, err := pipesim.TableIIConfig(name)
		if err != nil {
			panic(err)
		}
		cfg.CacheBytes = 64
		cfg.MemAccessTime = 6
		cfg.BusWidthBytes = 8
		res, err := pipesim.Run(cfg, prog)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d\n", name, res.Cycles)
	}
	// Output:
	// 8-8: 777732
	// 32-32: 680493
}
