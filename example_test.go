package pipesim_test

import (
	"fmt"
	"math"

	"pipesim"
)

// ExampleRun executes the paper's Livermore benchmark on the default
// machine and prints the exact executed-instruction count.
func ExampleRun() {
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		panic(err)
	}
	res, err := pipesim.Run(pipesim.DefaultConfig(), prog)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Instructions)
	// Output: 150575
}

// ExampleAssemble runs a hand-written PIPE assembly program and reads a
// register result.
func ExampleAssemble() {
	prog, err := pipesim.Assemble(`
        li   r1, 6
        li   r2, 7
        add  r3, r1, r2
        halt
`)
	if err != nil {
		panic(err)
	}
	sim, err := pipesim.NewSimulation(pipesim.DefaultConfig(), prog)
	if err != nil {
		panic(err)
	}
	if _, err := sim.Run(); err != nil {
		panic(err)
	}
	fmt.Println(sim.Reg(3))
	// Output: 13
}

// ExampleCompileKernel compiles the kernel-description language and
// verifies a float32 result computed by the simulated external FPU.
func ExampleCompileKernel() {
	compiled, err := pipesim.CompileKernel(`
array x[20]
array y[20] = fill(1.5)
loop 10 {
  x[k] = y[k] * y[k]
}
`)
	if err != nil {
		panic(err)
	}
	sim, err := pipesim.NewSimulation(pipesim.DefaultConfig(), compiled.Program)
	if err != nil {
		panic(err)
	}
	if _, err := sim.Run(); err != nil {
		panic(err)
	}
	addr, _ := compiled.ArrayAddr("x", 4)
	fmt.Println(math.Float32frombits(sim.ReadWord(addr)))
	// Output: 2.25
}

// ExampleTableIIConfig compares two of the paper's Table II configurations
// on slow memory.
func ExampleTableIIConfig() {
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		panic(err)
	}
	for _, name := range []string{"8-8", "32-32"} {
		cfg, err := pipesim.TableIIConfig(name)
		if err != nil {
			panic(err)
		}
		cfg.CacheBytes = 64
		cfg.MemAccessTime = 6
		cfg.BusWidthBytes = 8
		res, err := pipesim.Run(cfg, prog)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d\n", name, res.Cycles)
	}
	// Output:
	// 8-8: 777732
	// 32-32: 680493
}

// ExampleSimulation_CollectPerLoop attributes every cycle of the benchmark:
// first to an attribution bucket (the buckets always sum to the total), then
// to the Livermore loop that was retiring when the cycle was spent.
func ExampleSimulation_CollectPerLoop() {
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		panic(err)
	}
	sim, err := pipesim.NewSimulation(pipesim.DefaultConfig(), prog)
	if err != nil {
		panic(err)
	}
	if err := sim.CollectPerLoop(); err != nil {
		panic(err)
	}
	res, err := sim.Run()
	if err != nil {
		panic(err)
	}
	a := res.Attribution
	fmt.Printf("cycles %d = issue %d + fetch-starved %d + ldq-wait %d + other %d\n",
		res.Cycles, a.Issue, a.FetchStarved, a.LDQWait,
		a.QueueFull+a.Drain+a.Other)
	var sum uint64
	for _, l := range res.PerLoop {
		sum += l.Cycles
	}
	fmt.Printf("per-loop cycles sum: %d\n", sum)
	l := res.PerLoop[2] // loop 2, the incomplete Cholesky conjugate gradient
	fmt.Printf("%s: %d cycles, %d instructions\n", l.Name, l.Cycles, l.Instructions)
	// Output:
	// cycles 284147 = issue 150575 + fetch-starved 6720 + ldq-wait 126850 + other 2
	// per-loop cycles sum: 284147
	// iccg: 23950 cycles, 10716 instructions
}

// ExampleSimulation_Observe attaches a custom probe counting taken-branch
// flushes as they happen.
func ExampleSimulation_Observe() {
	prog, err := pipesim.LivermoreKernel(3) // inner product
	if err != nil {
		panic(err)
	}
	sim, err := pipesim.NewSimulation(pipesim.DefaultConfig(), prog)
	if err != nil {
		panic(err)
	}
	flushes := 0
	sim.Observe(pipesim.ProbeFunc(func(e pipesim.ProbeEvent) {
		if e.Kind == pipesim.EventBranchFlush {
			flushes++
		}
	}))
	res, err := sim.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println(flushes == int(res.BranchFlushes))
	// Output: true
}
