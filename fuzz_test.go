package pipesim_test

import (
	"errors"
	"sync"
	"testing"

	"pipesim"
)

// fuzzKernelSrc is a small but complete workload: an integer
// read-modify-write reduction over the data queues, a counted
// prepare-to-branch loop with a delay slot, and one memory-mapped FPU
// multiply. It exercises every architectural path a configuration can
// perturb while finishing in a few hundred cycles on sane machines.
const fuzzKernelSrc = `
        la    r2, vec
        li    r5, 8
        li    r4, 0
        setb  b0, loop
loop:   ld    0(r2)             ; vec[i]
        mov   r3, r7
        add   r4, r4, r3
        st    0(r2)             ; vec[i] = running sum
        mov   r7, r4
        addi  r5, r5, -1
        pbr   ne, r5, b0, 1
        addi  r2, r2, 4
        la    r1, FPU_A
        la    r6, fa
        ld    0(r6)
        st    0(r1)             ; FPU A <- fa
        mov   r7, r7
        ld    4(r6)
        st    4(r1)             ; FPU MUL <- fb, start multiply
        mov   r7, r7
        la    r3, prod
        st    0(r3)             ; prod <- product (returned via the LDQ)
        mov   r7, r7
        halt
        .data
vec:    .word 1, 2, 3, 4, 5, 6, 7, 8
fa:     .float 1.5
fb:     .float 2.0
prod:   .word 0
`

var (
	fuzzOnce sync.Once
	fuzzProg *pipesim.Program
	fuzzErr  error
)

func fuzzKernel(t *testing.T) *pipesim.Program {
	t.Helper()
	fuzzOnce.Do(func() { fuzzProg, fuzzErr = pipesim.Assemble(fuzzKernelSrc) })
	if fuzzErr != nil {
		t.Fatal(fuzzErr)
	}
	return fuzzProg
}

// FuzzConfig is the acceptance test for the hardened public API: an
// arbitrary Config must either fail Validate with a structured error, or —
// if Validate accepts it — run a real kernel to completion with no panic,
// no deadlock and no machine check.
func FuzzConfig(f *testing.F) {
	seed := func(c pipesim.Config) {
		f.Add(string(c.Strategy), c.CacheBytes, c.LineBytes, c.IQBytes, c.IQBBytes,
			c.TIBEntries, c.TIBLineBytes, c.MemAccessTime, c.BusWidthBytes, c.FPULatency,
			c.LAQDepth, c.LDQDepth, c.SAQDepth, c.SDQDepth, c.DCacheBytes, c.DCacheLineBytes,
			c.TruePrefetch, c.DeepPrefetch, c.NativeFormat, c.PipelinedMemory, c.InstrPriority)
	}
	seed(pipesim.DefaultConfig())
	for _, name := range []string{"8-8", "16-16", "16-32", "32-32"} {
		cfg, err := pipesim.TableIIConfig(name)
		if err != nil {
			f.Fatal(err)
		}
		seed(cfg)
	}
	conv := pipesim.DefaultConfig()
	conv.Strategy = pipesim.StrategyConventional
	conv.MemAccessTime, conv.BusWidthBytes = 6, 8
	seed(conv)
	tib := pipesim.DefaultConfig()
	tib.Strategy = pipesim.StrategyTIB
	seed(tib)
	native := pipesim.DefaultConfig()
	native.NativeFormat = true
	seed(native)
	dcache := pipesim.DefaultConfig()
	dcache.DCacheBytes, dcache.DCacheLineBytes = 256, 16
	dcache.PipelinedMemory = true
	seed(dcache)

	f.Fuzz(func(t *testing.T, strategy string, cacheBytes, lineBytes, iqBytes, iqbBytes,
		tibEntries, tibLineBytes, memAccessTime, busWidthBytes, fpuLatency,
		laq, ldq, saq, sdq, dcacheBytes, dcacheLineBytes int,
		truePrefetch, deepPrefetch, nativeFormat, pipelinedMemory, instrPriority bool) {
		cfg := pipesim.Config{
			Strategy:        pipesim.Strategy(strategy),
			CacheBytes:      cacheBytes,
			LineBytes:       lineBytes,
			IQBytes:         iqBytes,
			IQBBytes:        iqbBytes,
			TruePrefetch:    truePrefetch,
			DeepPrefetch:    deepPrefetch,
			NativeFormat:    nativeFormat,
			TIBEntries:      tibEntries,
			TIBLineBytes:    tibLineBytes,
			MemAccessTime:   memAccessTime,
			BusWidthBytes:   busWidthBytes,
			PipelinedMemory: pipelinedMemory,
			InstrPriority:   instrPriority,
			FPULatency:      fpuLatency,
			LAQDepth:        laq,
			LDQDepth:        ldq,
			SAQDepth:        saq,
			SDQDepth:        sdq,
			DCacheBytes:     dcacheBytes,
			DCacheLineBytes: dcacheLineBytes,
			// Harness bounds: a validated machine must finish the kernel
			// well inside these (the worst extreme-but-valid geometry
			// measured needs ~150k cycles); anything else is a finding.
			MaxCycles:      2_000_000,
			WatchdogCycles: 200_000,
		}
		if err := cfg.Validate(); err != nil {
			if !errors.Is(err, pipesim.ErrInvalidConfig) {
				t.Fatalf("Validate error not tagged ErrInvalidConfig: %v", err)
			}
			// The constructor must agree with Validate.
			if _, err := pipesim.NewSimulation(cfg, fuzzKernel(t)); err == nil {
				t.Fatalf("NewSimulation accepted a config Validate rejected: %+v", cfg)
			}
			return
		}
		res, err := pipesim.Run(cfg, fuzzKernel(t))
		if err != nil {
			var mce *pipesim.MachineCheckError
			if errors.As(err, &mce) {
				t.Fatalf("validated config machine-checked:\n%s", mce.Detail())
			}
			var dl *pipesim.DeadlockError
			if errors.As(err, &dl) {
				t.Fatalf("validated config deadlocked:\n%s", dl.Detail())
			}
			t.Fatalf("validated config failed to run: %v\nconfig: %+v", err, cfg)
		}
		if res.Instructions == 0 {
			t.Fatalf("run retired no instructions: %+v", cfg)
		}
	})
}
