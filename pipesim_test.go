package pipesim_test

import (
	"math"
	"strings"
	"testing"

	"pipesim"
)

func TestDefaultConfigRunsQuickstart(t *testing.T) {
	prog, err := pipesim.Assemble(`
        li   r1, 5
        li   r2, 0
        setb b0, loop
loop:   add  r2, r2, r1
        addi r1, r1, -1
        pbr  ne, r1, b0, 2
        nop
        nop
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := pipesim.NewSimulation(pipesim.DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sim.Reg(2) != 15 {
		t.Errorf("sum = %d, want 15", sim.Reg(2))
	}
	if res.Cycles == 0 || res.Instructions == 0 {
		t.Error("empty result")
	}
	if res.CPI() <= 0 {
		t.Error("CPI not positive")
	}
}

func TestTableIIConfig(t *testing.T) {
	cases := map[string][3]int{
		"8-8":   {8, 8, 8},
		"16-16": {16, 16, 16},
		"16-32": {32, 16, 32},
		"32-32": {32, 32, 32},
	}
	for name, want := range cases {
		cfg, err := pipesim.TableIIConfig(name)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.LineBytes != want[0] || cfg.IQBytes != want[1] || cfg.IQBBytes != want[2] {
			t.Errorf("%s: got %d/%d/%d", name, cfg.LineBytes, cfg.IQBytes, cfg.IQBBytes)
		}
	}
	if _, err := pipesim.TableIIConfig("64-64"); err == nil {
		t.Error("unknown configuration accepted")
	}
}

func TestLivermoreProgramMetadata(t *testing.T) {
	prog, loops, err := pipesim.LivermoreProgram()
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 14 {
		t.Fatalf("%d loops", len(loops))
	}
	wantBytes := []int{116, 204, 64, 80, 76, 72, 288, 732, 272, 260, 56, 56, 328, 224}
	for i, l := range loops {
		if l.InnerBytes != wantBytes[i] {
			t.Errorf("loop %d: %d bytes, want %d", l.Index, l.InnerBytes, wantBytes[i])
		}
	}
	if prog.Instructions() == 0 {
		t.Error("empty program")
	}
	if !strings.Contains(prog.Disassemble(), "PBR") {
		t.Error("disassembly missing PBR")
	}
}

func TestLivermoreBenchmarkInstructionCount(t *testing.T) {
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipesim.Run(pipesim.DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != pipesim.BenchmarkInstructions {
		t.Fatalf("instructions = %d, want %d", res.Instructions, pipesim.BenchmarkInstructions)
	}
}

func TestAllStrategiesRunBenchmark(t *testing.T) {
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []pipesim.Strategy{pipesim.StrategyPIPE, pipesim.StrategyConventional, pipesim.StrategyTIB} {
		cfg := pipesim.DefaultConfig()
		cfg.Strategy = strat
		res, err := pipesim.Run(cfg, prog)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if res.Instructions != pipesim.BenchmarkInstructions {
			t.Errorf("%s: %d instructions", strat, res.Instructions)
		}
	}
	bad := pipesim.DefaultConfig()
	bad.Strategy = "bogus"
	if _, err := pipesim.Run(bad, prog); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestLivermoreKernelAndArrayAddr(t *testing.T) {
	prog, err := pipesim.LivermoreKernel(12)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := pipesim.NewSimulation(pipesim.DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	addr, err := pipesim.LivermoreArrayAddr(prog, 12, "x", 0)
	if err != nil {
		t.Fatal(err)
	}
	// x[0] = y[1]-y[0] with y = 0.25+0.001*(i%97).
	want := float32(0.25+0.001*1) - float32(0.25)
	if got := math.Float32frombits(sim.ReadWord(addr)); got != want {
		t.Errorf("LL12 x[0] = %v, want %v", got, want)
	}
	if _, err := pipesim.LivermoreKernel(99); err == nil {
		t.Error("kernel 99 accepted")
	}
	if _, err := pipesim.LivermoreArrayAddr(prog, 12, "nosuch", 0); err == nil {
		t.Error("unknown array accepted")
	}
}

func TestResultTrafficBreakdown(t *testing.T) {
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipesim.DefaultConfig()
	cfg.MemAccessTime = 6
	cfg.BusWidthBytes = 8
	res, err := pipesim.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemAccepted["data-load"] == 0 || res.MemAccepted["data-store"] == 0 {
		t.Errorf("no data traffic recorded: %v", res.MemAccepted)
	}
	if res.FPUOps == 0 {
		t.Error("no FPU operations recorded")
	}
	if res.Loads == 0 || res.Stores == 0 || res.Branches == 0 {
		t.Errorf("pipeline counters empty: %+v", res)
	}
	if res.StallLDQEmpty == 0 {
		t.Error("no load-data stalls at a 6-cycle access time")
	}
}

func TestNativeFormatPublicAPI(t *testing.T) {
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipesim.DefaultConfig()
	cfg.MemAccessTime = 6
	cfg.BusWidthBytes = 8
	cfg.CacheBytes = 64
	fixed, err := pipesim.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NativeFormat = true
	native, err := pipesim.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if native.Instructions != fixed.Instructions {
		t.Fatalf("instruction counts differ: %d vs %d", native.Instructions, fixed.Instructions)
	}
	if native.Cycles >= fixed.Cycles {
		t.Errorf("native format (%d cycles) not faster than fixed (%d) at a small cache",
			native.Cycles, fixed.Cycles)
	}
	// TIB rejects the native format.
	cfg.Strategy = pipesim.StrategyTIB
	if _, err := pipesim.Run(cfg, prog); err == nil {
		t.Error("TIB accepted the native format")
	}
}

func TestDeepPrefetchAndDCachePublicAPI(t *testing.T) {
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipesim.DefaultConfig()
	cfg.MemAccessTime = 6
	cfg.BusWidthBytes = 8
	cfg.CacheBytes = 32
	cfg.IQBBytes = 32
	cfg.DeepPrefetch = true
	deep, err := pipesim.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if deep.Instructions != pipesim.BenchmarkInstructions {
		t.Errorf("deep prefetch changed the instruction count: %d", deep.Instructions)
	}
	cfg.DeepPrefetch = false
	cfg.IQBBytes = 16
	cfg.DCacheBytes = 256
	dc, err := pipesim.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if dc.DCacheHits == 0 {
		t.Error("data cache recorded no hits on the benchmark")
	}
}

func TestCompileKernelPublicAPI(t *testing.T) {
	compiled, err := pipesim.CompileKernel(`
const a = 2.0
array x[30] = fill(3.0)
array y[30]
loop 20 {
  y[k] = a * x[k]
}
`)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := pipesim.NewSimulation(pipesim.DefaultConfig(), compiled.Program)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	addr, ok := compiled.ArrayAddr("y", 10)
	if !ok {
		t.Fatal("ArrayAddr failed")
	}
	if got := math.Float32frombits(sim.ReadWord(addr)); got != 6.0 {
		t.Errorf("y[10] = %v, want 6", got)
	}
	if _, err := pipesim.CompileKernel("syntax error here"); err == nil {
		t.Error("bad source compiled")
	}
}

func TestHeadlineClaimSmallCacheSlowMemory(t *testing.T) {
	// The paper's central comparison at the library level: at T=6 with a
	// small cache, every Table II PIPE configuration must beat the
	// conventional cache.
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		t.Fatal(err)
	}
	base := pipesim.DefaultConfig()
	base.MemAccessTime = 6
	base.BusWidthBytes = 8
	base.CacheBytes = 32

	conv := base
	conv.Strategy = pipesim.StrategyConventional
	conv.LineBytes = 16
	convRes, err := pipesim.Run(conv, prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"8-8", "16-16", "16-32", "32-32"} {
		cfg, err := pipesim.TableIIConfig(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg.MemAccessTime = 6
		cfg.BusWidthBytes = 8
		cfg.CacheBytes = 32
		res, err := pipesim.Run(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles >= convRes.Cycles {
			t.Errorf("PIPE %s (%d cycles) not faster than conventional (%d) at T=6, 32B cache",
				name, res.Cycles, convRes.Cycles)
		}
	}
}
