// Package pipesim is a cycle-accurate simulator of the PIPE single-chip
// processor and its instruction-fetch strategies, reproducing Farrens &
// Pleszkun, "Improving Performance of Small On-Chip Instruction Caches"
// (ISCA 1989).
//
// The library models the complete system of the paper's Figure 3: a
// five-stage decoupled processor with architectural load/store queues, a
// small on-chip instruction cache, separate input and output busses to a
// large external cache (100% hit rate), and a memory-mapped external
// floating point unit. Three instruction-supply strategies are provided:
//
//   - StrategyPIPE — the paper's contribution: instruction cache +
//     Instruction Queue (IQ) + Instruction Queue Buffer (IQB) with
//     prepare-to-branch lookahead and off-chip prefetch;
//   - StrategyConventional — Hill's always-prefetch sub-blocked cache, the
//     strongest conventional baseline in the paper;
//   - StrategyTIB — a Target Instruction Buffer front end (paper §2.1).
//
// Quick start:
//
//	prog, _, err := pipesim.LivermoreProgram()
//	if err != nil { ... }
//	cfg := pipesim.DefaultConfig()
//	res, err := pipesim.Run(cfg, prog)
//	fmt.Println(res.Cycles, res.CPI())
//
// The workload is the paper's benchmark: the first 14 Lawrence Livermore
// Loops, calibrated so each inner loop matches the paper's Table I byte
// sizes exactly and one run executes exactly 150,575 instructions. Custom
// workloads can be written in PIPE assembly (Assemble) or in the
// kernel-description language (CompileKernel).
//
// Every knob of the paper's simulation study is a Config field: cache and
// line size, the IQ/IQB sizes of Table II, memory access time, bus width,
// memory pipelining, arbitration priority, the off-chip prefetch policy,
// and the instruction format (fixed 32-bit or the chip's native 16/32-bit
// parcels). Beyond-paper extensions — an on-chip data cache, deeper IQB
// lookahead, and the architecture's single-level interrupt — are off by
// default.
package pipesim

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"pipesim/internal/asm"
	"pipesim/internal/core"
	"pipesim/internal/cpu"
	"pipesim/internal/kernels"
	"pipesim/internal/mem"
	"pipesim/internal/minic"
	"pipesim/internal/obs"
	"pipesim/internal/program"
	"pipesim/internal/runcache"
	"pipesim/internal/runstore"
	"pipesim/internal/stats"
	"pipesim/internal/trace"
)

// Strategy names an instruction-fetch strategy.
type Strategy string

// Available strategies.
const (
	StrategyPIPE         Strategy = "pipe"
	StrategyConventional Strategy = "conventional"
	StrategyTIB          Strategy = "tib"
)

// Config selects one simulated machine. The zero value is not runnable;
// start from DefaultConfig.
type Config struct {
	// Strategy picks the instruction-fetch front end.
	Strategy Strategy

	// CacheBytes and LineBytes shape the on-chip instruction cache. For
	// the PIPE strategy LineBytes is also the off-chip fetch unit; for
	// the conventional strategy it is the tag granularity (fills are
	// per-instruction sub-blocks).
	CacheBytes int
	LineBytes  int

	// IQBytes and IQBBytes size the PIPE Instruction Queue and
	// Instruction Queue Buffer (paper Table II).
	IQBytes  int
	IQBBytes int

	// TruePrefetch permits the PIPE engine to fetch lines off-chip before
	// they are guaranteed to contain an executed instruction. All results
	// presented in the paper enable it; disabling reproduces the original
	// PIPE chip policy.
	TruePrefetch bool

	// DeepPrefetch (beyond-paper extension) refills the IQB whenever a
	// full line of space is free instead of only when empty, so an IQB
	// larger than one line provides real lookahead.
	DeepPrefetch bool

	// NativeFormat runs the workload in the PIPE chip's native 16/32-bit
	// two-parcel instruction encoding (paper simulation parameter 1)
	// instead of the fixed 32-bit format the presented results use. Code
	// is ~40% denser, so a given cache holds more of each loop. Not
	// supported with StrategyTIB.
	NativeFormat bool

	// TIBEntries and TIBLineBytes size the Target Instruction Buffer.
	TIBEntries   int
	TIBLineBytes int

	// MemAccessTime is the external memory access time in cycles (the
	// paper sweeps 1, 2, 3 and 6).
	MemAccessTime int
	// BusWidthBytes is the input (return) bus width (4 or 8 in the
	// paper).
	BusWidthBytes int
	// PipelinedMemory lets the memory accept a new request every cycle.
	PipelinedMemory bool
	// InstrPriority gives instruction fetches priority over data at the
	// memory interface (selected for all presented results).
	InstrPriority bool
	// FPULatency is the external floating-point operation time (the
	// paper holds it at 4).
	FPULatency int

	// Queue depths of the architectural data queues.
	LAQDepth, LDQDepth, SAQDepth, SDQDepth int

	// DCacheBytes enables a small on-chip data cache (0 = none; the
	// paper's machine has none — its conclusion proposes spending future
	// density on exactly this). Write-through, word-allocating, one-cycle
	// hits.
	DCacheBytes     int
	DCacheLineBytes int

	// InterruptAt raises the PIPE architecture's single-level interrupt
	// at the given cycle (0 = never): at the next clean instruction
	// boundary the CPU saves the resume address in B7, switches to the
	// background register bank and redirects fetch to InterruptVector.
	// The handler must not touch R7 or the data queues and returns with
	// `bank` followed by `pbr al, r0, b7, 0`.
	InterruptAt     uint64
	InterruptVector uint32

	// MaxCycles aborts runaway simulations; zero selects a generous
	// default.
	MaxCycles uint64

	// WatchdogCycles is the forward-progress watchdog window: a run that
	// retires no instruction for this many consecutive cycles is declared
	// deadlocked and returns a *DeadlockError diagnosing the stuck
	// machine state — long before MaxCycles would fire. Zero selects a
	// default (one million cycles) that no legitimate stall approaches.
	WatchdogCycles uint64

	// FlightRecorderDepth sizes the always-on flight recorder: a bounded
	// ring of recent probe events (cache activity, fetches, prefetches,
	// flushes, bus transfers, memory accepts, retirements) that every run
	// keeps for post-mortem diagnosis. On a machine check or deadlock the
	// ring's tail is snapshotted into the error (MachineCheckError /
	// DeadlockError .Recent, rendered by Detail); after any run it is
	// readable via Simulation.RecentEvents. Zero selects the default depth
	// (256 events); a negative value disables recording. The recorder is
	// observational only — it never changes simulation results — and its
	// always-on cost is ~3% of an unobserved run (see
	// BenchmarkFlightRecorderOverhead).
	FlightRecorderDepth int

	// CacheStats enables the cache-introspection layer: every
	// instruction-cache miss is classified as compulsory, capacity or
	// conflict (the standard 3C method, via an infinite shadow cache and an
	// equal-capacity fully-associative LRU shadow), per-set
	// access/miss/eviction heatmaps with dead-on-eviction tracking are
	// collected, and the hottest miss PCs are tabulated. The results land
	// in Result.CacheStats; the per-class counts sum exactly to
	// Result.CacheMisses. Introspection is purely observational — cycle
	// counts are bit-identical with it on or off — and off by default (the
	// off cost is one nil check per fetch reference, see
	// BenchmarkMissClassOverhead). Ignored with StrategyTIB, which has no
	// cache array.
	CacheStats bool

	// CacheTopPCs bounds the hot miss-PC table when CacheStats is on:
	// zero selects the default (10), negative keeps every missing PC.
	// Must be left zero when CacheStats is off.
	CacheTopPCs int

	// NoSkipAhead disables the event-driven cycle skip-ahead and steps
	// every cycle individually. Skip-ahead elides only cycles proven to
	// be pure counter arithmetic, so results are bit-identical either
	// way (the differential suite asserts this across the full kernel
	// catalog); the switch exists for A/B timing measurements and as a
	// belt-and-braces escape hatch. Attaching a probe (Run*WithProbe)
	// disables skip-ahead automatically, with or without this flag.
	NoSkipAhead bool
}

// DefaultConfig returns the paper's baseline presentation point: the PIPE
// 16-16 configuration, 128-byte cache, true prefetch, instruction priority,
// 1-cycle non-pipelined memory with a 4-byte bus, 4-cycle FPU.
func DefaultConfig() Config {
	return Config{
		Strategy:      StrategyPIPE,
		CacheBytes:    128,
		LineBytes:     16,
		IQBytes:       16,
		IQBBytes:      16,
		TruePrefetch:  true,
		TIBEntries:    4,
		TIBLineBytes:  16,
		MemAccessTime: 1,
		BusWidthBytes: 4,
		InstrPriority: true,
		FPULatency:    4,
		LAQDepth:      8,
		LDQDepth:      8,
		SAQDepth:      8,
		SDQDepth:      8,
	}
}

// TableIIConfig returns DefaultConfig with the named Table II IQ/IQB
// arrangement: "8-8", "16-16", "16-32" or "32-32".
func TableIIConfig(name string) (Config, error) {
	cfg := DefaultConfig()
	switch name {
	case "8-8":
		cfg.LineBytes, cfg.IQBytes, cfg.IQBBytes = 8, 8, 8
	case "16-16":
		cfg.LineBytes, cfg.IQBytes, cfg.IQBBytes = 16, 16, 16
	case "16-32":
		cfg.LineBytes, cfg.IQBytes, cfg.IQBBytes = 32, 16, 32
	case "32-32":
		cfg.LineBytes, cfg.IQBytes, cfg.IQBBytes = 32, 32, 32
	default:
		return Config{}, fmt.Errorf("pipesim: unknown Table II configuration %q", name)
	}
	return cfg, nil
}

// toCore translates the public configuration to the internal one.
func (c Config) toCore() (core.Config, error) {
	var strat core.FetchStrategy
	switch c.Strategy {
	case StrategyPIPE:
		strat = core.FetchPIPE
	case StrategyConventional:
		strat = core.FetchConventional
	case StrategyTIB:
		strat = core.FetchTIB
	default:
		return core.Config{}, fmt.Errorf("pipesim: unknown strategy %q", c.Strategy)
	}
	return core.Config{
		Fetch:        strat,
		CacheBytes:   c.CacheBytes,
		LineBytes:    c.LineBytes,
		IQBytes:      c.IQBytes,
		IQBBytes:     c.IQBBytes,
		TruePrefetch: c.TruePrefetch,
		DeepPrefetch: c.DeepPrefetch,
		NativeFormat: c.NativeFormat,
		TIBEntries:   c.TIBEntries,
		TIBLineBytes: c.TIBLineBytes,
		Mem: mem.Config{
			AccessTime:    c.MemAccessTime,
			BusWidthBytes: c.BusWidthBytes,
			Pipelined:     c.PipelinedMemory,
			InstrPriority: c.InstrPriority,
			FPULatency:    c.FPULatency,
		},
		CPU: cpu.Config{
			LAQDepth:        c.LAQDepth,
			LDQDepth:        c.LDQDepth,
			SAQDepth:        c.SAQDepth,
			SDQDepth:        c.SDQDepth,
			DCacheBytes:     c.DCacheBytes,
			DCacheLineBytes: c.DCacheLineBytes,
		},
		InterruptAt:     c.InterruptAt,
		InterruptVector: c.InterruptVector,
		MaxCycles:       c.MaxCycles,
		WatchdogCycles:  c.WatchdogCycles,
		FlightRecDepth:  c.FlightRecorderDepth,
		CacheIntrospect: c.CacheStats,
		CacheTopPCs:     c.CacheTopPCs,
		NoSkipAhead:     c.NoSkipAhead,
	}, nil
}

// MachineCheckError reports a simulator bug: a panic escaping the internal
// packages during a run is recovered and wrapped with the cycle, PC,
// strategy, offending configuration and the tail of the retirement trace
// (its Detail method renders the full report). Simulation never crashes the
// calling process; extract with errors.As.
type MachineCheckError = core.MachineCheckError

// DeadlockError reports that the forward-progress watchdog fired: the run
// retired no instruction for a full WatchdogCycles window. It carries a
// diagnosis of the fetch-engine, CPU-queue and memory-system state at the
// moment the watchdog tripped. Extract with errors.As.
type DeadlockError = core.DeadlockError

// Program is an executable PIPE program image.
type Program struct {
	img *program.Image
}

// LoopInfo describes one Livermore loop of the benchmark workload.
type LoopInfo = kernels.LoopInfo

// BenchmarkInstructions is the exact executed-instruction count of the
// Livermore benchmark, matching the paper.
const BenchmarkInstructions = kernels.TotalInstructions

// LivermoreProgram builds the paper's benchmark program (the first 14
// Lawrence Livermore Loops) and returns it along with per-loop metadata.
func LivermoreProgram() (*Program, []LoopInfo, error) {
	img, _, err := kernels.Program()
	if err != nil {
		return nil, nil, err
	}
	return &Program{img: img}, kernels.TableI(), nil
}

// LivermoreKernel builds a single Livermore loop (1..14) as a standalone
// program.
func LivermoreKernel(index int) (*Program, error) {
	img, err := kernels.KernelProgram(index)
	if err != nil {
		return nil, err
	}
	return &Program{img: img}, nil
}

// Assemble translates PIPE assembly source into a program. See the
// internal/asm package documentation (or cmd/pipeasm -help) for the syntax.
func Assemble(src string) (*Program, error) {
	img, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	return &Program{img: img}, nil
}

// Compiled is a program produced by the kernel-description language
// compiler, with symbol information for inspecting results.
type Compiled struct {
	// Program is the runnable image.
	Program *Program
	unit    *minic.Unit
}

// CompileKernel compiles kernel-description-language source (see the
// internal/minic package documentation or cmd/pipekc -help for the syntax:
// const/array declarations plus counted loops of float32 array
// assignments) into a runnable program. It plays the role of the paper's
// Fortran compiler for custom workloads.
func CompileKernel(src string) (*Compiled, error) {
	u, err := minic.Compile(src)
	if err != nil {
		return nil, err
	}
	return &Compiled{Program: &Program{img: u.Image}, unit: u}, nil
}

// ArrayAddr returns the byte address of array element name[idx] for use
// with Simulation.ReadWord.
func (c *Compiled) ArrayAddr(name string, idx int) (uint32, bool) {
	return c.unit.ArrayAddr(name, idx)
}

// Disassemble renders the program's text segment.
func (p *Program) Disassemble() string { return p.img.Disassemble() }

// Lookup returns the byte address of an assembly label.
func (p *Program) Lookup(symbol string) (uint32, bool) { return p.img.Lookup(symbol) }

// Instructions returns the static instruction count of the text segment.
func (p *Program) Instructions() int { return len(p.img.Text) }

// Result collects everything measured in one run. Cycles is the paper's
// performance metric: the total number of cycles to execute the program to
// completion (including draining all memory traffic).
type Result struct {
	// Key is the run's content-addressed identity: the lowercase hex of
	// the sha256 over the canonical configuration and the program image
	// fingerprint (the same key the run cache, the persistent run store
	// and the job checkpoints use). Two runs with the same key are the
	// same machine on the same program and — the simulator being
	// deterministic — produce identical results, so the key is the handle
	// for `pipesim diff` and pipesimd's /v1/compare. Empty on results not
	// produced by Simulation.Run or RunArchived.
	Key string `json:"key,omitempty"`

	Cycles       uint64
	Instructions uint64

	// Pipeline activity.
	Branches      uint64
	TakenBranches uint64
	Loads         uint64
	Stores        uint64

	// Issue-stall attribution.
	StallLDQEmpty   uint64 // waiting on the load data queue (memory latency)
	StallQueueFull  uint64 // a full architectural queue
	StallFetchEmpty uint64 // instruction supply starved

	// Optional data-cache activity (zero when DCacheBytes is 0).
	DCacheHits   uint64
	DCacheMisses uint64

	// Fetch-engine activity.
	CacheHits      uint64
	CacheMisses    uint64
	DemandFetches  uint64
	Prefetches     uint64
	PrefetchBlocks uint64
	BranchFlushes  uint64
	SupplyCycles   uint64 // cycles the engine handed decode an instruction
	StarvedCycles  uint64 // cycles decode wanted an instruction and got none

	// Off-chip traffic by class.
	MemAccepted    map[string]uint64
	WordsDelivered uint64
	InputBusCycles uint64 // cycles the input bus carried data (bus utilization = InputBusCycles/Cycles)
	StoreWords     uint64 // words written to memory or the FPU over the output bus
	FPUOps         uint64

	// Attribution is the exact per-cycle classification of the run: every
	// simulated cycle lands in exactly one bucket, so Attribution.Total()
	// always equals Cycles.
	Attribution Attribution

	// PerLoop holds per-Livermore-loop statistics when the simulation was
	// built with Simulation.CollectPerLoop: index 0 is the region outside
	// every loop (prologue, trailing filler, drain), followed by loops 1-14.
	// Nil otherwise.
	PerLoop []LoopStat

	// CacheStats holds the cache-introspection report — 3C miss
	// classification, per-set heatmap, eviction counts and hot miss PCs —
	// when Config.CacheStats was set. Nil otherwise.
	CacheStats *CacheStats `json:"cache_stats,omitempty"`
}

// CacheStats is the cache-introspection report of one run (see
// Config.CacheStats). Compulsory + Capacity + Conflict equals the run's
// Result.CacheMisses exactly: the shadow models observe the fetch engine's
// own hit/miss accounting sites.
type CacheStats struct {
	// Miss classes per the standard 3C model: Compulsory misses touch a
	// line never referenced before (no cache avoids them); Conflict misses
	// would have hit in a fully-associative cache of the same capacity
	// (the direct-mapped placement is at fault); Capacity misses miss in
	// both (the working set simply exceeds the cache).
	Compulsory uint64 `json:"compulsory"`
	Capacity   uint64 `json:"capacity"`
	Conflict   uint64 `json:"conflict"`

	// Evictions counts tag replacements in the array; DeadEvictions the
	// subset that displaced a line never referenced after its fill (wasted
	// fetch bandwidth).
	Evictions     uint64 `json:"evictions"`
	DeadEvictions uint64 `json:"dead_evictions"`

	// Sets is the per-set (cache frame) heatmap, indexed by set number.
	Sets []CacheSetStats `json:"sets"`

	// HotPCs lists the instruction addresses missing most often, sorted by
	// miss count descending, bounded by Config.CacheTopPCs. Loop and Label
	// are filled when the program carries Livermore loop symbols.
	HotPCs []CacheHotPC `json:"hot_pcs,omitempty"`
}

// Misses sums the three miss classes; by construction it equals
// Result.CacheMisses.
func (c *CacheStats) Misses() uint64 { return c.Compulsory + c.Capacity + c.Conflict }

// CacheSetStats is one cache set's row of the introspection heatmap.
type CacheSetStats struct {
	Accesses      uint64 `json:"accesses"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	DeadEvictions uint64 `json:"dead_evictions"`
}

// CacheHotPC is one entry of the hot miss-PC table.
type CacheHotPC struct {
	PC     uint32 `json:"pc"`
	Misses uint64 `json:"misses"`
	Loop   int    `json:"loop,omitempty"`  // Livermore loop number, 0 when unresolved
	Label  string `json:"label,omitempty"` // kernel name, empty when unresolved
}

// Attribution classifies every cycle of a run by what the issue stage did.
// The issue stage is the arbiter: a cycle in which an instruction issues is
// Issue regardless of what the memory system or fetch engine were doing at
// the same time. The fields sum to the run's total cycle count exactly.
type Attribution struct {
	Issue        uint64 // an instruction moved from issue to execute
	FetchStarved uint64 // nothing to issue: instruction supply empty
	LDQWait      uint64 // issue blocked reading an empty Load Data Queue
	QueueFull    uint64 // issue blocked on a full LAQ/SAQ/SDQ
	Drain        uint64 // post-HALT cycles draining memory traffic
	Other        uint64 // interrupt-entry drain, front-end halt bubbles, faults
}

// Total sums the buckets; by construction it equals Result.Cycles.
func (a Attribution) Total() uint64 {
	return a.Issue + a.FetchStarved + a.LDQWait + a.QueueFull + a.Drain + a.Other
}

func attributionFrom(b [stats.NumCycleBuckets]uint64) Attribution {
	return Attribution{
		Issue:        b[stats.CycleIssue],
		FetchStarved: b[stats.CycleFetchStarved],
		LDQWait:      b[stats.CycleLDQWait],
		QueueFull:    b[stats.CycleQueueFull],
		Drain:        b[stats.CycleDrain],
		Other:        b[stats.CycleOther],
	}
}

// CPI returns cycles per instruction.
func (r *Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

func resultFrom(st *stats.Sim) *Result {
	accepted := make(map[string]uint64, stats.NumReqKinds)
	for k := stats.ReqKind(0); k < stats.NumReqKinds; k++ {
		accepted[k.String()] = st.Mem.Accepted[k]
	}
	return &Result{
		Cycles:          st.Cycles,
		Instructions:    st.CPU.Instructions,
		Branches:        st.CPU.Branches,
		TakenBranches:   st.CPU.TakenBranches,
		Loads:           st.CPU.Loads,
		Stores:          st.CPU.Stores,
		StallLDQEmpty:   st.CPU.StallLDQEmpty,
		StallQueueFull:  st.CPU.StallQueueFull,
		StallFetchEmpty: st.CPU.StallFetchEmpty,
		DCacheHits:      st.CPU.DCacheHits,
		DCacheMisses:    st.CPU.DCacheMisses,
		CacheHits:       st.Fetch.CacheHits,
		CacheMisses:     st.Fetch.CacheMisses,
		DemandFetches:   st.Fetch.LineFetches,
		Prefetches:      st.Fetch.Prefetches,
		PrefetchBlocks:  st.Fetch.PrefetchBlocks,
		BranchFlushes:   st.Fetch.BranchFlushes,
		SupplyCycles:    st.Fetch.SupplyCycles,
		StarvedCycles:   st.Fetch.StarvedCycles,
		MemAccepted:     accepted,
		WordsDelivered:  st.Mem.WordsDelivered,
		InputBusCycles:  st.Mem.InputBusCycles,
		StoreWords:      st.Mem.StoreWords,
		FPUOps:          st.Mem.FPUOps,
		Attribution:     attributionFrom(st.CPU.CycleBuckets),
		CacheStats:      cacheStatsFrom(st.Cache),
	}
}

// cacheStatsFrom converts the internal introspection block to the public
// mirror (nil in, nil out: introspection off).
func cacheStatsFrom(cs *stats.CacheStats) *CacheStats {
	if cs == nil {
		return nil
	}
	out := &CacheStats{
		Compulsory:    cs.Compulsory,
		Capacity:      cs.Capacity,
		Conflict:      cs.Conflict,
		Evictions:     cs.Evictions,
		DeadEvictions: cs.DeadEvictions,
		Sets:          make([]CacheSetStats, len(cs.Sets)),
	}
	for i, s := range cs.Sets {
		out.Sets[i] = CacheSetStats{
			Accesses:      s.Accesses,
			Misses:        s.Misses,
			Evictions:     s.Evictions,
			DeadEvictions: s.DeadEvictions,
		}
	}
	for _, h := range cs.HotPCs {
		out.HotPCs = append(out.HotPCs, CacheHotPC{PC: h.PC, Misses: h.Misses})
	}
	return out
}

// Run executes the program under the configuration and returns the
// measurements.
func Run(cfg Config, prog *Program) (*Result, error) {
	sim, err := NewSimulation(cfg, prog)
	if err != nil {
		return nil, err
	}
	return sim.Run()
}

// RunSource reports where a RunArchived result came from.
type RunSource string

// Result sources, slowest path first.
const (
	// RunSimulated: the simulator actually ran.
	RunSimulated RunSource = "simulated"
	// RunFromMemory: served from the in-process run cache.
	RunFromMemory RunSource = "memory"
	// RunFromStore: served from the persistent run store (-store-dir)
	// without re-simulating.
	RunFromStore RunSource = "store"
)

// runSourceOf translates the cache-layer source.
func runSourceOf(src runcache.Source) RunSource {
	switch src {
	case runcache.SourceMemory:
		return RunFromMemory
	case runcache.SourceStore:
		return RunFromStore
	default:
		return RunSimulated
	}
}

// RunArchived executes the program through the process-wide run cache and
// its persistent tier: memory LRU → run store (runcache.Default.SetStore)
// → simulate, returning where the result came from. The simulator is
// deterministic, so a served result is identical to a fresh run of the
// same key. A fresh simulation is written through to both tiers (and
// fires the run hook; served results do not — nothing ran).
//
// Cached results replay no events, so probes, tracers and per-loop
// collection need NewSimulation + Run instead. Under the native-format
// relayout the hot miss-PC table keeps raw addresses (loop labels resolve
// against the relaid-out image only a live Simulation holds).
func RunArchived(ctx context.Context, cfg Config, prog *Program) (*Result, RunSource, error) {
	if err := cfg.Validate(); err != nil {
		return nil, RunSimulated, err
	}
	ccfg, err := cfg.toCore()
	if err != nil {
		return nil, RunSimulated, err
	}
	start := time.Now()
	st, src, err := runcache.Default.RunSource(ctx, ccfg, prog.img)
	source := runSourceOf(src)
	if err != nil {
		fireRunHook(cfg, nil, err, time.Since(start))
		return nil, source, err
	}
	res := resultFrom(st)
	res.Key = runcache.KeyFor(ccfg, prog.img.Fingerprint()).String()
	if !cfg.NativeFormat {
		resolveHotPCs(res, prog.img)
	}
	if source == RunSimulated {
		fireRunHook(cfg, res, nil, time.Since(start))
	}
	return res, source, nil
}

// Probe consumes the simulator's typed observability event stream: one
// KindCycle event per simulated cycle carrying the attribution bucket, plus
// cache hits/misses, fetch and prefetch issue/complete pairs, branch
// flushes, queue-occupancy samples, input-bus activity, retirements and
// Livermore-loop transitions. Attach with Simulation.Observe before Run.
// Probes are called synchronously from inside the simulated cycle and must
// not mutate simulator state.
type Probe = obs.Probe

// ProbeFunc adapts a plain function to the Probe interface.
type ProbeFunc = obs.ProbeFunc

// ProbeEvent is one typed occurrence: the kind, the cycle it happened in,
// and kind-specific payload fields (see the Kind constants' documentation).
type ProbeEvent = obs.Event

// ProbeKind enumerates the event types a Probe receives.
type ProbeKind = obs.Kind

// Probe event kinds.
const (
	EventCycle            = obs.KindCycle
	EventCacheHit         = obs.KindCacheHit
	EventCacheMiss        = obs.KindCacheMiss
	EventFetchIssue       = obs.KindFetchIssue
	EventFetchComplete    = obs.KindFetchComplete
	EventPrefetchIssue    = obs.KindPrefetchIssue
	EventPrefetchComplete = obs.KindPrefetchComplete
	EventPrefetchBlocked  = obs.KindPrefetchBlocked
	EventBranchFlush      = obs.KindBranchFlush
	EventQueueDepth       = obs.KindQueueDepth
	EventBusBusy          = obs.KindBusBusy
	EventMemAccept        = obs.KindMemAccept
	EventRetire           = obs.KindRetire
	EventLoopEnter        = obs.KindLoopEnter
	EventLoopExit         = obs.KindLoopExit
	EventCacheEvict       = obs.KindCacheEvict
)

// Timeline is a Probe rendering the event stream as a Chrome-trace /
// Perfetto timeline (load the written JSON in chrome://tracing or
// https://ui.perfetto.dev): spans for the pipeline's cycle attribution,
// off-chip fetches, prefetches and Livermore loops; counters for queue
// occupancy and input-bus words; instants for branch flushes and blocked
// prefetches. Build with NewTimeline, attach with Simulation.Observe, run,
// then WriteTo.
type Timeline = obs.Timeline

// NewTimeline returns an empty timeline probe.
func NewTimeline() *Timeline { return obs.NewTimeline() }

// LoopStat aggregates the activity attributed to one Livermore loop — see
// Result.PerLoop.
type LoopStat = obs.LoopStat

// Simulation is one configured machine loaded with a program, for callers
// that want to attach observability probes or inspect memory after the run.
type Simulation struct {
	cfg     Config
	ccfg    core.Config
	key     runcache.Key
	inner   *core.Simulator
	probes  obs.Multi
	perloop *obs.PerLoop
	last    *stats.Sim // raw statistics of the completed run (for Archive)
}

// NewSimulation builds a machine for the program. The configuration is
// checked with Validate first, so every invalid field is reported as an
// error before any machine state is built.
func NewSimulation(cfg Config, prog *Program) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ccfg, err := cfg.toCore()
	if err != nil {
		return nil, err
	}
	inner, err := core.New(ccfg, prog.img)
	if err != nil {
		return nil, err
	}
	return &Simulation{
		cfg:   cfg,
		ccfg:  ccfg,
		key:   runcache.KeyFor(ccfg, prog.img.Fingerprint()),
		inner: inner,
	}, nil
}

// Key returns the simulation's content-addressed identity (see Result.Key),
// available before Run.
func (s *Simulation) Key() string { return s.key.String() }

// Observe attaches a probe to the simulation's event stream. Call before
// Run; multiple probes may be attached and each receives every event. The
// no-probe fast path costs one nil check per event site, so an unobserved
// simulation runs at full speed.
func (s *Simulation) Observe(p Probe) {
	s.probes = append(s.probes, p)
	s.inner.SetProbe(s.probes)
}

// CollectPerLoop arranges per-Livermore-loop statistics: loop PC ranges are
// resolved against the image the simulator actually runs (correct under the
// native-format relayout), loop transitions are watched on the retirement
// stream, and Result.PerLoop is populated after Run. The program must carry
// the benchmark's loop symbols (LivermoreProgram does); call before Run.
func (s *Simulation) CollectPerLoop() error {
	if s.perloop != nil {
		return nil
	}
	ranges, err := kernels.LoopRanges(s.inner.Image())
	if err != nil {
		return err
	}
	s.inner.SetLoopRanges(ranges)
	s.perloop = obs.NewPerLoop(ranges)
	s.Observe(s.perloop)
	return nil
}

// RunInfo describes one completed run for RunHook observers: the
// configuration that ran, the wall-clock time it took, and exactly one of
// Result and Err.
type RunInfo struct {
	Config  Config
	Result  *Result // nil when the run failed
	Err     error   // nil when the run succeeded
	Elapsed time.Duration
}

// RunHook observes every completed run in the process — a metrics sink
// for serving layers (cmd/pipesimd records per-strategy cycle histograms
// and attribution totals through it). Hooks run synchronously on the
// goroutine that called Run, after the simulation finished; they must be
// safe for concurrent use when runs are concurrent.
type RunHook func(RunInfo)

// runHook holds the installed hook; a typed nil inside the atomic.Value
// is avoided by only storing non-nil wrappers and flagging emptiness.
var runHook atomic.Value // RunHook

// SetRunHook installs (or, with nil, removes) the process-wide run hook.
// The unset path costs one atomic load per Run — nothing per simulated
// cycle — so an unhooked library runs at full speed (see
// BenchmarkRunHookOverhead).
func SetRunHook(h RunHook) { runHook.Store(h) }

func fireRunHook(cfg Config, res *Result, err error, elapsed time.Duration) {
	if h, _ := runHook.Load().(RunHook); h != nil {
		h(RunInfo{Config: cfg, Result: res, Err: err, Elapsed: elapsed})
	}
}

// Run executes to completion (once per Simulation).
func (s *Simulation) Run() (*Result, error) {
	start := time.Now()
	st, err := s.inner.Run()
	if err != nil {
		fireRunHook(s.cfg, nil, err, time.Since(start))
		return nil, err
	}
	s.last = st
	res := resultFrom(st)
	res.Key = s.key.String()
	if s.perloop != nil {
		res.PerLoop = s.perloop.Stats()
	}
	resolveHotPCs(res, s.inner.Image())
	fireRunHook(s.cfg, res, nil, time.Since(start))
	return res, nil
}

// Archive writes the completed run — statistics plus any collected
// per-loop breakdown — into the persistent run store under its
// content-addressed key, making it a referencable side for `pipesim diff`
// and /v1/compare. Call after a successful Run.
func (s *Simulation) Archive(store *runstore.Store) error {
	if s.last == nil {
		return fmt.Errorf("pipesim: Archive before a successful Run")
	}
	rec := &runstore.Record{Key: s.key.String(), Config: s.ccfg, Sim: *s.last}
	if s.perloop != nil {
		rec.PerLoop = s.perloop.Stats()
	}
	return store.PutRecord(rec)
}

// resolveHotPCs labels the hot miss-PC table with Livermore loop numbers
// and kernel names, resolved against the image the simulator ran (correct
// under the native-format relayout). Programs without the benchmark's loop
// symbols keep the raw addresses (the resolution error is deliberately
// ignored).
func resolveHotPCs(res *Result, img *program.Image) {
	if res.CacheStats == nil || len(res.CacheStats.HotPCs) == 0 {
		return
	}
	ranges, err := kernels.LoopRanges(img)
	if err != nil {
		return
	}
	for i := range res.CacheStats.HotPCs {
		pc := res.CacheStats.HotPCs[i].PC
		for _, r := range ranges {
			if pc >= r.Start && pc < r.End {
				res.CacheStats.HotPCs[i].Loop = r.Loop
				res.CacheStats.HotPCs[i].Label = r.Name
				break
			}
		}
	}
}

// RecentEvents returns a snapshot of the flight recorder's retained events,
// oldest first — the same tail a MachineCheckError or DeadlockError would
// carry, available even after a successful run. Nil when the recorder was
// disabled (Config.FlightRecorderDepth < 0). Call after Run.
func (s *Simulation) RecentEvents() []ProbeEvent { return s.inner.FlightEvents() }

// WriteFlightTrace renders a flight-recorder snapshot (RecentEvents, or the
// Recent field of a MachineCheckError/DeadlockError) as Chrome-trace JSON
// loadable in chrome://tracing or https://ui.perfetto.dev. Unlike a full
// Timeline it covers only the ring's bounded tail, but it needs no probe
// attached up front — the post-mortem path of cmd/pipesim -flightrec-dump.
func WriteFlightTrace(w io.Writer, events []ProbeEvent) error {
	return obs.WriteFlightTrace(w, events)
}

// TraceTo streams every retired instruction (cycle, PC, disassembly) to w,
// stopping after limit lines (0 = unlimited). Call before Run.
func (s *Simulation) TraceTo(w io.Writer, limit uint64) {
	s.inner.SetRetireTracer(&trace.Writer{W: w, Limit: limit})
}

// ReadWord returns the final memory word at a 4-byte-aligned address.
func (s *Simulation) ReadWord(addr uint32) uint32 { return s.inner.ReadWord(addr) }

// Reg returns a data register's final value.
func (s *Simulation) Reg(r int) int32 { return s.inner.Reg(r) }

// LivermoreArrayAddr returns the address of array element name[idx] of
// Livermore loop `loop` within a program built by LivermoreProgram, for
// inspecting kernel results.
func LivermoreArrayAddr(prog *Program, loop int, name string, idx int32) (uint32, error) {
	return kernels.ArrayAddr(prog.img, loop, name, idx)
}
