package pipesim_test

import (
	"errors"
	"strings"
	"testing"

	"pipesim"
)

// TestValidateAcceptsPaperConfigs checks that every configuration the paper
// presents passes validation.
func TestValidateAcceptsPaperConfigs(t *testing.T) {
	if err := pipesim.DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig: %v", err)
	}
	for _, name := range []string{"8-8", "16-16", "16-32", "32-32"} {
		cfg, err := pipesim.TableIIConfig(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("TableIIConfig(%s): %v", name, err)
		}
		for _, T := range []int{1, 2, 3, 6} {
			for _, bus := range []int{4, 8} {
				cfg.MemAccessTime, cfg.BusWidthBytes = T, bus
				if err := cfg.Validate(); err != nil {
					t.Errorf("%s T=%d bus=%d: %v", name, T, bus, err)
				}
			}
		}
	}
	conv := pipesim.DefaultConfig()
	conv.Strategy = pipesim.StrategyConventional
	if err := conv.Validate(); err != nil {
		t.Errorf("conventional: %v", err)
	}
	tib := pipesim.DefaultConfig()
	tib.Strategy = pipesim.StrategyTIB
	if err := tib.Validate(); err != nil {
		t.Errorf("tib: %v", err)
	}
}

// TestValidateRules exercises every individual validation rule.
func TestValidateRules(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*pipesim.Config)
		want   string // substring of the field error
	}{
		{"unknown strategy", func(c *pipesim.Config) { c.Strategy = "oracle" }, "Strategy"},
		{"zero cache", func(c *pipesim.Config) { c.CacheBytes = 0 }, "CacheBytes"},
		{"negative cache", func(c *pipesim.Config) { c.CacheBytes = -128 }, "CacheBytes"},
		{"non-pow2 cache", func(c *pipesim.Config) { c.CacheBytes = 96 }, "CacheBytes"},
		{"oversized cache", func(c *pipesim.Config) { c.CacheBytes = pipesim.MaxCacheBytes * 2 }, "CacheBytes"},
		{"zero line", func(c *pipesim.Config) { c.LineBytes = 0 }, "LineBytes"},
		{"non-pow2 line", func(c *pipesim.Config) { c.LineBytes = 24; c.IQBBytes = 32 }, "LineBytes"},
		{"sub-word line", func(c *pipesim.Config) { c.LineBytes = 2 }, "LineBytes"},
		{"line exceeds cache", func(c *pipesim.Config) { c.CacheBytes = 16; c.LineBytes = 32; c.IQBBytes = 32 }, "LineBytes"},
		{"zero IQ", func(c *pipesim.Config) { c.IQBytes = 0 }, "IQBytes"},
		{"ragged IQ", func(c *pipesim.Config) { c.IQBytes = 10 }, "IQBytes"},
		{"oversized IQ", func(c *pipesim.Config) { c.IQBytes = pipesim.MaxQueueBytes * 2 }, "IQBytes"},
		{"zero IQB", func(c *pipesim.Config) { c.IQBBytes = 0 }, "IQBBytes"},
		{"ragged IQB", func(c *pipesim.Config) { c.IQBBytes = 18 }, "IQBBytes"},
		{"IQB below line (Table II)", func(c *pipesim.Config) { c.LineBytes = 32; c.IQBBytes = 16 }, "IQBBytes"},
		{"bus exceeds conv line", func(c *pipesim.Config) {
			c.Strategy = pipesim.StrategyConventional
			c.LineBytes = 4
			c.BusWidthBytes = 8
		}, "LineBytes"},
		{"zero TIB entries", func(c *pipesim.Config) { c.Strategy = pipesim.StrategyTIB; c.TIBEntries = 0 }, "TIBEntries"},
		{"oversized TIB entries", func(c *pipesim.Config) {
			c.Strategy = pipesim.StrategyTIB
			c.TIBEntries = pipesim.MaxTIBEntries + 1
		}, "TIBEntries"},
		{"ragged TIB line", func(c *pipesim.Config) { c.Strategy = pipesim.StrategyTIB; c.TIBLineBytes = 6 }, "TIBLineBytes"},
		{"TIB with native format", func(c *pipesim.Config) { c.Strategy = pipesim.StrategyTIB; c.NativeFormat = true }, "NativeFormat"},
		{"zero access time", func(c *pipesim.Config) { c.MemAccessTime = 0 }, "MemAccessTime"},
		{"oversized access time", func(c *pipesim.Config) { c.MemAccessTime = pipesim.MaxMemAccessTime + 1 }, "MemAccessTime"},
		{"bad bus width", func(c *pipesim.Config) { c.BusWidthBytes = 6 }, "BusWidthBytes"},
		{"16-byte bus rejected", func(c *pipesim.Config) { c.BusWidthBytes = 16 }, "BusWidthBytes"},
		{"zero FPU latency", func(c *pipesim.Config) { c.FPULatency = 0 }, "FPULatency"},
		{"zero LAQ", func(c *pipesim.Config) { c.LAQDepth = 0 }, "LAQDepth"},
		{"zero LDQ", func(c *pipesim.Config) { c.LDQDepth = 0 }, "LDQDepth"},
		{"zero SAQ", func(c *pipesim.Config) { c.SAQDepth = 0 }, "SAQDepth"},
		{"negative SDQ", func(c *pipesim.Config) { c.SDQDepth = -1 }, "SDQDepth"},
		{"oversized LAQ", func(c *pipesim.Config) { c.LAQDepth = pipesim.MaxQueueDepth + 1 }, "LAQDepth"},
		{"non-pow2 dcache", func(c *pipesim.Config) { c.DCacheBytes = 100 }, "DCacheBytes"},
		{"dcache line exceeds dcache", func(c *pipesim.Config) { c.DCacheBytes = 8 }, "DCacheLineBytes"},
		{"ragged dcache line", func(c *pipesim.Config) { c.DCacheBytes = 64; c.DCacheLineBytes = 12 }, "DCacheLineBytes"},
		{"dcache line without dcache", func(c *pipesim.Config) { c.DCacheLineBytes = 16 }, "DCacheLineBytes"},
		{"misaligned interrupt vector", func(c *pipesim.Config) { c.InterruptAt = 100; c.InterruptVector = 2 }, "InterruptVector"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := pipesim.DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", cfg)
			}
			if !errors.Is(err, pipesim.ErrInvalidConfig) {
				t.Errorf("error does not wrap ErrInvalidConfig: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name field %q", err, tc.want)
			}
		})
	}
}

// TestValidateReportsAllFields checks that one call reports every offending
// field at once.
func TestValidateReportsAllFields(t *testing.T) {
	cfg := pipesim.DefaultConfig()
	cfg.CacheBytes = 7
	cfg.MemAccessTime = 0
	cfg.LAQDepth = 0
	err := cfg.Validate()
	if err == nil {
		t.Fatal("Validate accepted a triply-invalid config")
	}
	for _, field := range []string{"CacheBytes", "MemAccessTime", "LAQDepth"} {
		if !strings.Contains(err.Error(), field) {
			t.Errorf("joined error misses %s: %v", field, err)
		}
	}
}

// TestNewSimulationRejectsInvalidConfig checks that the public constructor
// validates before building any machine state.
func TestNewSimulationRejectsInvalidConfig(t *testing.T) {
	prog, err := pipesim.Assemble("halt\n")
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipesim.DefaultConfig()
	cfg.CacheBytes = 0
	if _, err := pipesim.NewSimulation(cfg, prog); !errors.Is(err, pipesim.ErrInvalidConfig) {
		t.Fatalf("NewSimulation err = %v, want ErrInvalidConfig", err)
	}
	if _, err := pipesim.Run(cfg, prog); !errors.Is(err, pipesim.ErrInvalidConfig) {
		t.Fatalf("Run err = %v, want ErrInvalidConfig", err)
	}
}
