// Kernellang writes a workload in the kernel-description language — a
// damped wave update with a true recurrence — compiles it with the built-in
// compiler, runs it on two machines, and verifies the numerical results
// against a float32 reference computed in Go. The simulated FPU performs
// real IEEE-754 single-precision arithmetic, so results match bit for bit.
package main

import (
	"fmt"
	"log"
	"math"

	"pipesim"
)

const src = `
# damped update with a one-element recurrence
const damp = 0.75
array u[260] = linear(1.0, 0.01)
array f[260] = cycle(0.125, 7)

loop 250 {
  u[k] = damp * u[k-1] + f[k]
}
`

func main() {
	compiled, err := pipesim.CompileKernel(src)
	if err != nil {
		log.Fatal(err)
	}

	for _, access := range []int{1, 6} {
		cfg := pipesim.DefaultConfig()
		cfg.MemAccessTime = access
		cfg.BusWidthBytes = 8
		sim, err := pipesim.NewSimulation(cfg, compiled.Program)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}

		// Float32 reference, same operation order as the compiled code:
		// damp*u[k-1] first, then + f[k].
		u := make([]float32, 260)
		for i := range u {
			u[i] = 1.0 + 0.01*float32(i)
		}
		exact := 0
		var val float32
		for k := 1; k <= 250; k++ {
			f := 0.125 * float32(k%7)
			u[k] = 0.75*u[k-1] + f
			addr, _ := compiled.ArrayAddr("u", k)
			val = math.Float32frombits(sim.ReadWord(addr))
			if val == u[k] {
				exact++
			}
		}
		fmt.Printf("T=%d: %d cycles (CPI %.2f), %d/250 elements bit-exact vs the Go reference\n",
			access, res.Cycles, res.CPI(), exact)
	}
}
