// Cachesweep reproduces one of the paper's figures programmatically through
// the public API: total cycles versus cache size at a 6-cycle memory access
// time with an 8-byte bus (Figure 5b/6a), for the conventional cache and
// all four Table II PIPE configurations.
package main

import (
	"fmt"
	"log"

	"pipesim"
)

func main() {
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		log.Fatal(err)
	}

	sizes := []int{16, 32, 64, 128, 256, 512}
	variants := []string{"8-8", "16-16", "16-32", "32-32"}

	fmt.Println("Figure 5b: total cycles, memory access time 6, 8-byte bus, non-pipelined")
	fmt.Printf("%-12s %12s", "cache", "conv")
	for _, v := range variants {
		fmt.Printf(" %12s", v)
	}
	fmt.Println()

	for _, size := range sizes {
		fmt.Printf("%-12d", size)

		conv := pipesim.DefaultConfig()
		conv.Strategy = pipesim.StrategyConventional
		conv.CacheBytes = size
		conv.MemAccessTime = 6
		conv.BusWidthBytes = 8
		if size >= conv.LineBytes {
			res, err := pipesim.Run(conv, prog)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12d", res.Cycles)
		} else {
			fmt.Printf(" %12s", "-")
		}

		for _, v := range variants {
			cfg, err := pipesim.TableIIConfig(v)
			if err != nil {
				log.Fatal(err)
			}
			cfg.CacheBytes = size
			cfg.MemAccessTime = 6
			cfg.BusWidthBytes = 8
			if size < cfg.LineBytes {
				fmt.Printf(" %12s", "-")
				continue
			}
			res, err := pipesim.Run(cfg, prog)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12d", res.Cycles)
		}
		fmt.Println()
	}
	fmt.Println("\nEvery PIPE configuration beats the conventional cache at every size")
	fmt.Println("once memory is slower than one cycle — the paper's central result.")
}
