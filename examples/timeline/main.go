// Timeline: run the Livermore benchmark with the observability layer
// attached — a Chrome-trace timeline plus per-loop statistics — and explain
// where every cycle went.
//
// The exported trace loads in chrome://tracing or https://ui.perfetto.dev:
// the "pipeline" thread shows the issue stage's per-cycle attribution
// coalesced into spans, "ifetch" the off-chip demand fetches and prefetches,
// "loops" which Livermore loop was retiring, and counter tracks sample the
// queue occupancies and input-bus words.
package main

import (
	"fmt"
	"log"
	"os"

	"pipesim"
)

func main() {
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		log.Fatal(err)
	}

	// The paper's interesting regime: slow memory, small cache — roughly
	// half the loops fit, the rest starve the pipeline.
	cfg := pipesim.DefaultConfig()
	cfg.CacheBytes = 128
	cfg.MemAccessTime = 6
	cfg.BusWidthBytes = 8

	sim, err := pipesim.NewSimulation(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.CollectPerLoop(); err != nil {
		log.Fatal(err)
	}
	tl := pipesim.NewTimeline()
	sim.Observe(tl)

	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	out := "timeline.json"
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tl.WriteTo(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("PIPE 16-16, %dB cache, T=%d, %dB bus: %d instructions in %d cycles (CPI %.3f)\n",
		cfg.CacheBytes, cfg.MemAccessTime, cfg.BusWidthBytes,
		res.Instructions, res.Cycles, res.CPI())

	// Every cycle of the run lands in exactly one attribution bucket.
	a := res.Attribution
	fmt.Printf("\nwhere the cycles went (buckets sum to %d):\n", a.Total())
	for _, b := range []struct {
		name string
		n    uint64
	}{
		{"issuing instructions", a.Issue},
		{"fetch-starved (cache too small)", a.FetchStarved},
		{"waiting on load data", a.LDQWait},
		{"store/address queues full", a.QueueFull},
		{"draining at halt", a.Drain},
		{"other", a.Other},
	} {
		fmt.Printf("  %-33s %8d  (%5.1f%%)\n", b.name, b.n, 100*float64(b.n)/float64(res.Cycles))
	}

	// The same attribution, resolved per Livermore loop: which loops fit
	// the cache and which pay for it.
	fmt.Printf("\nper-loop breakdown:\n")
	fmt.Printf("  %-21s %9s %7s %8s %10s\n", "loop", "cycles", "stall%", "misses", "bus words")
	for _, l := range res.PerLoop {
		name := l.Name
		if l.Loop == 0 {
			name = "(outside)"
		}
		fmt.Printf("  %-21s %9d %6.1f%% %8d %10d\n",
			name, l.Cycles, 100*float64(l.StallCycles())/float64(l.Cycles),
			l.CacheMisses, l.OffChipWords)
	}

	fmt.Printf("\nwrote %d trace events to %s — open it in chrome://tracing or https://ui.perfetto.dev\n",
		tl.Events(), out)
}
