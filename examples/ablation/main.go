// Ablation explores the two design knobs the paper calls out around its
// fetch strategy:
//
//  1. true off-chip prefetch versus the original PIPE chip's policy of only
//     fetching lines guaranteed to contain an executed instruction;
//  2. instruction-over-data versus data-over-instruction priority at the
//     external memory interface.
package main

import (
	"fmt"
	"log"

	"pipesim"
)

func run(cfg pipesim.Config, prog *pipesim.Program) *pipesim.Result {
	res, err := pipesim.Run(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		log.Fatal(err)
	}

	base := pipesim.DefaultConfig()
	base.MemAccessTime = 6
	base.BusWidthBytes = 8
	base.CacheBytes = 64

	fmt.Println("PIPE 16-16, 64B cache, T=6, 8B bus — true prefetch ablation")
	on := run(base, prog)
	off := base
	off.TruePrefetch = false
	offRes := run(off, prog)
	fmt.Printf("  true prefetch:    %8d cycles\n", on.Cycles)
	fmt.Printf("  guaranteed only:  %8d cycles (+%d, %d prefetches blocked)\n",
		offRes.Cycles, offRes.Cycles-on.Cycles, offRes.PrefetchBlocks)

	fmt.Println("\nmemory-interface priority ablation (same machine)")
	instr := run(base, prog)
	data := base
	data.InstrPriority = false
	dataRes := run(data, prog)
	fmt.Printf("  instruction priority: %8d cycles\n", instr.Cycles)
	fmt.Printf("  data priority:        %8d cycles\n", dataRes.Cycles)
	fmt.Println("\nThe queues make instruction priority nearly free: a data request is")
	fmt.Println("issued well before its value is needed, so an instruction fetch can")
	fmt.Println("jump ahead without stalling the pipeline (paper §2.2).")
}
