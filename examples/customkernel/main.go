// Customkernel shows how to write your own workload in PIPE assembly,
// exercise the architectural queues and the memory-mapped FPU directly, and
// verify the numerical results from final memory.
//
// The kernel computes a dot product of two 64-element vectors entirely
// through the decoupled machinery: LD pushes addresses on the load address
// queue, R7 pops returned data, and a pair of stores to the FPU triggers
// each multiply, exactly as in the paper ("a pair of data stores ... will
// cause a multiply to occur").
package main

import (
	"fmt"
	"log"
	"math"

	"pipesim"
)

const src = `
; dot = sum a[i]*b[i], i = 0..63
; r1 = fpu base, r2 = moving pointer, r4 = accumulator, r5 = counter
        la    r1, FPU_A         ; predefined symbol (MUL at +4, ADD at +8)
        la    r2, a
        li    r5, 64
        la    r6, zero
        ld    0(r6)
        mov   r4, r7            ; accumulator = 0.0
        setb  b0, loop
loop:   ld    0(r2)             ; a[i]
        ld    256(r2)           ; b[i]  (vector b sits 64 words after a)
        st    0(r1)             ; FPU A <- a[i]
        mov   r7, r7
        st    4(r1)             ; FPU MUL <- b[i], start multiply
        mov   r7, r7
        st    0(r1)             ; FPU A <- product
        mov   r7, r7
        st    8(r1)             ; FPU ADD <- accumulator
        mov   r7, r4
        mov   r4, r7            ; accumulator = product + accumulator
        addi  r5, r5, -1
        pbr   ne, r5, b0, 1
        addi  r2, r2, 4
        la    r3, dot
        st    0(r3)
        mov   r7, r4            ; store the result
        halt
        .data
a:      .float 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0
        .float 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0
        .float 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0
        .float 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0
        .float 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0
        .float 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0
        .float 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0
        .float 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0
b:      .float 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5
        .float 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5
        .float 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5
        .float 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5
        .float 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5
        .float 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5
        .float 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5
        .float 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5
dot:    .word 0
zero:   .float 0.0
`

func main() {
	prog, err := pipesim.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}

	for _, strat := range []pipesim.Strategy{pipesim.StrategyPIPE, pipesim.StrategyConventional} {
		cfg := pipesim.DefaultConfig()
		cfg.Strategy = strat
		cfg.MemAccessTime = 6
		cfg.BusWidthBytes = 8
		cfg.CacheBytes = 32 // the loop does not fit: off-chip fetch every pass

		sim, err := pipesim.NewSimulation(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}

		addr, _ := prog.Lookup("dot")
		dot := math.Float32frombits(sim.ReadWord(addr))
		// Expected: sum over 8 repeats of (1..8)*0.5 = 8 * 18 = 144.
		fmt.Printf("%-14s dot = %6.1f (expect 144.0)   %7d cycles  CPI %.2f\n",
			strat, dot, res.Cycles, res.CPI())
	}
}
