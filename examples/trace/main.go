// Trace demonstrates the instruction-trace facility: it assembles a tiny
// program whose behaviour depends on every major mechanism — the
// architectural queues, the memory-mapped FPU, and a prepare-to-branch with
// delay slots — and prints each retired instruction with its cycle number,
// so the decoupling is visible: watch the gap the R7 read causes while the
// FPU result is still in flight, and how the delay slots absorb the branch
// resolution latency.
package main

import (
	"fmt"
	"log"
	"os"

	"pipesim"
)

const src = `
; square the numbers 1..3 through the external FPU
        la    r1, FPU_A        ; predefined FPU symbol (MUL trigger at +4)
        la    r2, vals
        la    r3, out
        li    r5, 3
        setb  b0, loop
loop:   ld    0(r2)            ; v
        ld    0(r2)            ; v again (second operand)
        st    0(r1)            ; FPU A <- v
        mov   r7, r7
        st    4(r1)            ; FPU MUL <- v
        mov   r7, r7
        st    0(r3)            ; out[k] <- v*v
        mov   r7, r7
        addi  r5, r5, -1
        pbr   ne, r5, b0, 2
        addi  r2, r2, 4
        addi  r3, r3, 4
        halt
        .data
vals:   .float 1.0, 2.0, 3.0
out:    .word 0, 0, 0
`

func main() {
	prog, err := pipesim.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	cfg := pipesim.DefaultConfig()
	cfg.MemAccessTime = 6
	cfg.BusWidthBytes = 8

	sim, err := pipesim.NewSimulation(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("     cycle  pc     instruction")
	sim.TraceTo(os.Stdout, 60)
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d instructions, %d cycles (CPI %.2f)\n",
		res.Instructions, res.Cycles, res.CPI())
	fmt.Printf("stall breakdown: %d cycles waiting for load data, %d starved for instructions\n",
		res.StallLDQEmpty, res.StallFetchEmpty)
}
