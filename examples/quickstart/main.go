// Quickstart: build the paper's Livermore-loop benchmark, run it on the
// default machine (PIPE 16-16 fetch, 128-byte cache, 1-cycle memory), and
// print the headline measurements.
package main

import (
	"fmt"
	"log"

	"pipesim"
)

func main() {
	prog, loops, err := pipesim.LivermoreProgram()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload: the first 14 Lawrence Livermore Loops (paper Table I)")
	for _, l := range loops {
		fmt.Printf("  loop %2d %-22s inner %3d bytes, %d iterations\n",
			l.Index, l.Name, l.InnerBytes, l.Iterations)
	}

	cfg := pipesim.DefaultConfig()
	res, err := pipesim.Run(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPIPE 16-16, %dB cache, T=%d, %dB bus:\n",
		cfg.CacheBytes, cfg.MemAccessTime, cfg.BusWidthBytes)
	fmt.Printf("  %d instructions in %d cycles (CPI %.3f)\n",
		res.Instructions, res.Cycles, res.CPI())
	fmt.Printf("  %d loads, %d stores, %d floating-point operations off-chip\n",
		res.Loads, res.Stores, res.FPUOps)

	// Compare against the conventional always-prefetch cache on the same
	// machine.
	cfg.Strategy = pipesim.StrategyConventional
	conv, err := pipesim.Run(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconventional always-prefetch cache, same machine:\n")
	fmt.Printf("  %d cycles (CPI %.3f)\n", conv.Cycles, conv.CPI())
	fmt.Printf("\nPIPE/conventional cycle ratio at T=1, 4B bus: %.3f\n",
		float64(res.Cycles)/float64(conv.Cycles))
	fmt.Println("(a 1-cycle memory with a 4-byte bus is the one regime where the")
	fmt.Println(" conventional cache can win — exactly as the paper reports)")

	// The paper's headline regime: slow memory, small cache.
	slow := pipesim.DefaultConfig()
	slow.MemAccessTime = 6
	slow.BusWidthBytes = 8
	slow.CacheBytes = 32
	pipeSlow, err := pipesim.Run(slow, prog)
	if err != nil {
		log.Fatal(err)
	}
	slow.Strategy = pipesim.StrategyConventional
	convSlow, err := pipesim.Run(slow, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith a 6-cycle memory and a 32-byte cache:\n")
	fmt.Printf("  PIPE 16-16:    %d cycles\n", pipeSlow.Cycles)
	fmt.Printf("  conventional:  %d cycles (%.2fx slower)\n",
		convSlow.Cycles, float64(convSlow.Cycles)/float64(pipeSlow.Cycles))
}
