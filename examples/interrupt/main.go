// Interrupt demonstrates the PIPE architecture's single-level interrupt
// and the purpose of the background register bank: an FPU-heavy loop is
// interrupted mid-flight; the handler runs entirely on the second register
// set and returns, and the computation finishes bit-identically.
//
// Note the handler contract of a decoupled machine: the load data queue is
// shared state, and the interrupted context has loads in flight, so the
// handler must not touch R7 or issue loads/stores — it works in its own
// registers only. (A handler may use memory when it can guarantee the
// interrupted code has nothing queued; see internal/cpu's interrupt
// tests.)
package main

import (
	"fmt"
	"log"
	"math"

	"pipesim"
)

const src = `
; main: sum of squares 1..60 via the FPU
        la    r1, FPU_A
        la    r2, vals
        la    r3, acc
        li    r5, 60
        setb  b0, loop
loop:   ld    0(r2)
        ld    0(r2)
        st    0(r1)            ; FPU A <- v
        mov   r7, r7
        st    4(r1)            ; multiply
        mov   r7, r7
        st    0(r1)            ; FPU A <- v*v
        mov   r7, r7
        ld    0(r3)
        st    8(r1)            ; add the accumulator
        mov   r7, r7
        st    0(r3)
        mov   r7, r7           ; acc += v*v
        addi  r5, r5, -1
        pbr   ne, r5, b0, 1
        addi  r2, r2, 4
        halt

; handler: register-only work on the background bank (the interrupted
; context has loads in flight, so the shared R7 queue is off limits)
isr:    li    r1, 0
        addi  r1, r1, 1        ; handler work
        addi  r1, r1, 1
        bank                   ; restore the interrupted register set
        pbr   al, r0, b7, 0    ; B7 holds the resume address

        .data
vals:   .float 1,2,3,4,5,6,7,8,9,10,1,2,3,4,5,6,7,8,9,10
        .float 1,2,3,4,5,6,7,8,9,10,1,2,3,4,5,6,7,8,9,10
        .float 1,2,3,4,5,6,7,8,9,10,1,2,3,4,5,6,7,8,9,10
acc:    .float 0.0
`

func main() {
	prog, err := pipesim.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	isr, _ := prog.Lookup("isr")
	accAddr, _ := prog.Lookup("acc")

	var baseInstr uint64
	for _, at := range []uint64{0, 300} {
		cfg := pipesim.DefaultConfig()
		cfg.MemAccessTime = 3
		cfg.InterruptAt = at
		cfg.InterruptVector = isr
		sim, err := pipesim.NewSimulation(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		acc := sim.ReadWord(accAddr)
		label := "no interrupt"
		if at != 0 {
			label = fmt.Sprintf("interrupt at cycle %d", at)
		}
		fmt.Printf("%-24s sum of squares = %v, %d cycles, %d instructions\n",
			label, math.Float32frombits(acc), res.Cycles, res.Instructions)
		if at == 0 {
			baseInstr = res.Instructions
		} else {
			fmt.Printf("%-24s handler instructions retired: %d\n", "",
				res.Instructions-baseInstr)
		}
	}
	fmt.Println("\nThe sum is identical with and without the interrupt: the handler ran")
	fmt.Println("on the background register bank and never touched the main context.")
}
