package pipesim

import (
	"errors"
	"fmt"
)

// Upper bounds accepted by Config.Validate. They are guardrails for
// programmatic sweeps over arbitrary user input: far beyond anything the
// paper simulates (an on-chip cache of the era is a few hundred bytes),
// but small enough that a hostile or fuzzed configuration cannot make the
// simulator allocate unbounded memory or spin for hours.
const (
	// MaxCacheBytes bounds CacheBytes and DCacheBytes.
	MaxCacheBytes = 1 << 22
	// MaxLineBytes bounds LineBytes, DCacheLineBytes and TIBLineBytes.
	MaxLineBytes = 1 << 12
	// MaxQueueBytes bounds IQBytes and IQBBytes.
	MaxQueueBytes = 1 << 16
	// MaxMemAccessTime bounds MemAccessTime.
	MaxMemAccessTime = 4096
	// MaxFPULatency bounds FPULatency.
	MaxFPULatency = 4096
	// MaxQueueDepth bounds the architectural queue depths.
	MaxQueueDepth = 1 << 16
	// MaxTIBEntries bounds TIBEntries.
	MaxTIBEntries = 4096
	// MaxCacheTopPCs bounds CacheTopPCs.
	MaxCacheTopPCs = 1 << 16
)

// ErrInvalidConfig tags every error returned by Config.Validate, so callers
// can distinguish configuration mistakes from run-time failures with
// errors.Is(err, pipesim.ErrInvalidConfig).
var ErrInvalidConfig = errors.New("invalid configuration")

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Validate checks every Config field against the machine the simulator can
// model and returns all violations at once (one error per offending field,
// joined). It enforces the paper's structural relations — power-of-two
// cache geometry, the Table II requirement that the IQB holds at least one
// full line, a 4- or 8-byte input bus — plus strategy-specific rules and
// sanity bounds that keep arbitrary inputs from exhausting memory.
//
// NewSimulation (and therefore Run) calls Validate, so an invalid
// configuration always surfaces as an error, never as a crash deep inside
// the simulator.
func (c Config) Validate() error {
	var errs []error
	bad := func(field, format string, args ...any) {
		errs = append(errs, fmt.Errorf("%s: %s", field, fmt.Sprintf(format, args...)))
	}

	switch c.Strategy {
	case StrategyPIPE, StrategyConventional, StrategyTIB:
	default:
		bad("Strategy", "unknown strategy %q (want %q, %q or %q)",
			c.Strategy, StrategyPIPE, StrategyConventional, StrategyTIB)
	}

	// On-chip cache geometry. Every strategy validates it (the TIB front
	// end ignores the array but the machine still instantiates it).
	cacheOK := true
	if !isPow2(c.CacheBytes) || c.CacheBytes > MaxCacheBytes {
		bad("CacheBytes", "%d must be a power of two in [1, %d]", c.CacheBytes, MaxCacheBytes)
		cacheOK = false
	}
	if !isPow2(c.LineBytes) || c.LineBytes < 4 || c.LineBytes > MaxLineBytes {
		bad("LineBytes", "%d must be a power of two in [4, %d]", c.LineBytes, MaxLineBytes)
		cacheOK = false
	}
	if cacheOK && c.LineBytes > c.CacheBytes {
		bad("LineBytes", "line %d bytes does not fit the %d-byte cache", c.LineBytes, c.CacheBytes)
	}

	switch c.Strategy {
	case StrategyPIPE:
		// Table II relations: the IQ holds at least one instruction, the
		// IQB at least one full line (it receives whole line fills), and
		// both are word-granular hardware.
		if c.IQBytes < 4 || c.IQBytes%4 != 0 || c.IQBytes > MaxQueueBytes {
			bad("IQBytes", "%d must be a multiple of 4 in [4, %d]", c.IQBytes, MaxQueueBytes)
		}
		if c.IQBBytes < 4 || c.IQBBytes%4 != 0 || c.IQBBytes > MaxQueueBytes {
			bad("IQBBytes", "%d must be a multiple of 4 in [4, %d]", c.IQBBytes, MaxQueueBytes)
		} else if c.LineBytes >= 4 && c.IQBBytes < c.LineBytes {
			bad("IQBBytes", "IQB %d bytes must hold at least one %d-byte line (Table II)", c.IQBBytes, c.LineBytes)
		}
	case StrategyConventional:
		// The off-chip fetch unit is one bus transfer, which must fit
		// inside the tag granularity.
		if c.BusWidthBytes > c.LineBytes && c.LineBytes >= 4 {
			bad("LineBytes", "line %d bytes smaller than the %d-byte bus fetch unit", c.LineBytes, c.BusWidthBytes)
		}
	case StrategyTIB:
		if c.TIBEntries < 1 || c.TIBEntries > MaxTIBEntries {
			bad("TIBEntries", "%d must be in [1, %d]", c.TIBEntries, MaxTIBEntries)
		}
		if c.TIBLineBytes < 4 || c.TIBLineBytes%4 != 0 || c.TIBLineBytes > MaxLineBytes {
			bad("TIBLineBytes", "%d must be a multiple of 4 in [4, %d]", c.TIBLineBytes, MaxLineBytes)
		}
		if c.NativeFormat {
			bad("NativeFormat", "the TIB front end does not support the native instruction format")
		}
	}

	if c.MemAccessTime < 1 || c.MemAccessTime > MaxMemAccessTime {
		bad("MemAccessTime", "%d must be in [1, %d]", c.MemAccessTime, MaxMemAccessTime)
	}
	if c.BusWidthBytes != 4 && c.BusWidthBytes != 8 {
		bad("BusWidthBytes", "%d not supported (the paper's input bus is 4 or 8 bytes)", c.BusWidthBytes)
	}
	if c.FPULatency < 1 || c.FPULatency > MaxFPULatency {
		bad("FPULatency", "%d must be in [1, %d]", c.FPULatency, MaxFPULatency)
	}

	for _, q := range []struct {
		name  string
		depth int
	}{
		{"LAQDepth", c.LAQDepth},
		{"LDQDepth", c.LDQDepth},
		{"SAQDepth", c.SAQDepth},
		{"SDQDepth", c.SDQDepth},
	} {
		if q.depth < 1 || q.depth > MaxQueueDepth {
			bad(q.name, "%d must be in [1, %d]", q.depth, MaxQueueDepth)
		}
	}

	if c.DCacheBytes != 0 {
		line := c.DCacheLineBytes
		if line == 0 {
			line = 16 // the data cache's documented default tag granularity
		}
		dcOK := true
		if !isPow2(c.DCacheBytes) || c.DCacheBytes > MaxCacheBytes {
			bad("DCacheBytes", "%d must be 0 (no data cache) or a power of two in [4, %d]", c.DCacheBytes, MaxCacheBytes)
			dcOK = false
		}
		if !isPow2(line) || line < 4 || line > MaxLineBytes {
			bad("DCacheLineBytes", "%d must be 0 (default 16) or a power of two in [4, %d]", c.DCacheLineBytes, MaxLineBytes)
			dcOK = false
		}
		if dcOK && line > c.DCacheBytes {
			bad("DCacheLineBytes", "line %d bytes does not fit the %d-byte data cache", line, c.DCacheBytes)
		}
	} else if c.DCacheLineBytes != 0 {
		bad("DCacheLineBytes", "set without DCacheBytes")
	}

	if c.CacheStats {
		if c.CacheTopPCs > MaxCacheTopPCs {
			bad("CacheTopPCs", "%d must be at most %d", c.CacheTopPCs, MaxCacheTopPCs)
		}
	} else if c.CacheTopPCs != 0 {
		bad("CacheTopPCs", "set without CacheStats")
	}

	if c.InterruptAt != 0 {
		align := uint32(4)
		if c.NativeFormat {
			align = 2 // parcel granularity
		}
		if c.InterruptVector%align != 0 {
			bad("InterruptVector", "%#x must be %d-byte aligned", c.InterruptVector, align)
		}
	}

	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("pipesim: %w: %w", ErrInvalidConfig, errors.Join(errs...))
}
