// Command pipekc compiles the kernel-description language to PIPE programs
// and optionally runs them, playing the role of the paper's Fortran
// compiler for custom workloads.
//
//	pipekc kernel.kl            # compile, print the disassembly
//	pipekc -run kernel.kl       # compile and simulate (default machine)
//	pipekc -run -access 6 -bus 8 kernel.kl
//
// Language summary (see the library documentation for details):
//
//	const q = 1.25
//	array x[500]
//	array y[500] = linear(0.25, 0.001)
//	loop 400 {
//	  x[k] = q + y[k] * (q * x[k+10])
//	}
package main

import (
	"flag"
	"fmt"
	"os"

	"pipesim"
)

func main() {
	var (
		run    = flag.Bool("run", false, "simulate the compiled program and print measurements")
		access = flag.Int("access", 1, "memory access time (with -run)")
		bus    = flag.Int("bus", 4, "input bus width in bytes (with -run)")
		cache  = flag.Int("cache", 128, "instruction cache size (with -run)")
		native = flag.Bool("native", false, "run in the native 16/32-bit instruction format (with -run)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pipekc [-run] file.kl")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	compiled, err := pipesim.CompileKernel(string(src))
	if err != nil {
		fail(err)
	}
	if !*run {
		fmt.Print(compiled.Program.Disassemble())
		return
	}
	cfg := pipesim.DefaultConfig()
	cfg.MemAccessTime = *access
	cfg.BusWidthBytes = *bus
	cfg.CacheBytes = *cache
	cfg.NativeFormat = *native
	res, err := pipesim.Run(cfg, compiled.Program)
	if err != nil {
		fail(err)
	}
	fmt.Printf("cycles        %d\n", res.Cycles)
	fmt.Printf("instructions  %d\n", res.Instructions)
	fmt.Printf("CPI           %.3f\n", res.CPI())
	fmt.Printf("fpu ops       %d\n", res.FPUOps)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "pipekc: %v\n", err)
	os.Exit(1)
}
