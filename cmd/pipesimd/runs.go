package main

// The run-archive endpoints expose the persistent run store (-store-dir):
//
//	GET /v1/runs            list archived runs, newest first
//	GET /v1/runs/{key}      one archived record (config + full statistics)
//	GET /v1/compare?a=&b=   pipesim-compare/v1 differential report
//
// Without -store-dir all three answer 503 unavailable.

import (
	"errors"
	"fmt"
	"net/http"

	"pipesim/internal/compare"
	"pipesim/internal/runcache"
	"pipesim/internal/runstore"
)

var errNoStore = errors.New("run archive disabled (start pipesimd with -store-dir)")

// runsListResponse is the GET /v1/runs body.
type runsListResponse struct {
	Count   int              `json:"count"`
	Bytes   int64            `json:"bytes"`
	Entries []runstore.Entry `json:"entries"`
}

func (s *server) handleRunsList(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.fail(w, r, errKindUnavailable, errNoStore)
		return
	}
	writeJSON(w, http.StatusOK, runsListResponse{
		Count:   s.store.Len(),
		Bytes:   s.store.Bytes(),
		Entries: s.store.List(),
	})
}

func (s *server) handleRunGet(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.fail(w, r, errKindUnavailable, errNoStore)
		return
	}
	rec, kind, err := s.storedRun(r.PathValue("key"))
	if err != nil {
		s.fail(w, r, kind, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *server) handleCompare(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.fail(w, r, errKindUnavailable, errNoStore)
		return
	}
	q := r.URL.Query()
	ra, kind, err := s.storedRun(q.Get("a"))
	if err != nil {
		s.fail(w, r, kind, fmt.Errorf("a: %w", err))
		return
	}
	rb, kind, err := s.storedRun(q.Get("b"))
	if err != nil {
		s.fail(w, r, kind, fmt.Errorf("b: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, compare.Compare(compareSide(ra), compareSide(rb)))
}

// storedRun resolves one run key to its archived record, with the error
// taxonomy kind on failure.
func (s *server) storedRun(raw string) (*runstore.Record, string, error) {
	if raw == "" {
		return nil, errKindBadRequest, errors.New("missing run key")
	}
	key, err := runcache.ParseKey(raw)
	if err != nil {
		return nil, errKindBadRequest, err
	}
	rec, ok := s.store.Get(key)
	if !ok {
		return nil, errKindNotFound, fmt.Errorf("run %s.. not archived", raw[:12])
	}
	return rec, "", nil
}

// compareSide adapts an archived record to a comparison side, labelled by
// its strategy and cache size.
func compareSide(rec *runstore.Record) compare.Run {
	label := fmt.Sprintf("%s/%dB", rec.Config.Fetch, rec.Config.CacheBytes)
	return compare.FromSim(label, rec.Key, &rec.Sim, rec.PerLoop)
}
