package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pipesim"
	"pipesim/internal/tracing"
)

// postWithHeaders is post with extra request headers.
func postWithHeaders(t *testing.T, url, body string, hdrs map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdrs {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// getTrace polls /v1/trace/{id}: the trace is finalized by the middleware's
// deferred root-span End, which can land a moment after the response.
func getTrace(t *testing.T, base, id string) (resp *http.Response, body string) {
	t.Helper()
	for i := 0; i < 50; i++ {
		resp, body = get(t, base+"/v1/trace/"+id)
		if resp.StatusCode == http.StatusOK {
			return resp, body
		}
		time.Sleep(2 * time.Millisecond)
	}
	return resp, body
}

func TestClientRequestIDHonored(t *testing.T) {
	_, ts := newTestServer(t)

	resp, _ := postWithHeaders(t, ts.URL+"/v1/run", `{"asm": `+quote(smallLoop)+`}`,
		map[string]string{"X-Request-Id": "client-id-42"})
	if got := resp.Header.Get("X-Request-Id"); got != "client-id-42" {
		t.Errorf("sane client ID not honored: got %q", got)
	}

	// Hostile or oversized IDs are replaced with a generated one.
	for name, bad := range map[string]string{
		"slash":    "../../etc",
		"space":    "two words",
		"oversize": strings.Repeat("a", 65),
		"header":   "x:injection",
	} {
		resp, _ := postWithHeaders(t, ts.URL+"/v1/run", `{"asm": `+quote(smallLoop)+`}`,
			map[string]string{"X-Request-Id": bad})
		got := resp.Header.Get("X-Request-Id")
		if got == bad || got == "" {
			t.Errorf("%s: bad client ID %q not replaced (got %q)", name, bad, got)
		}
	}
}

func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	traceparent := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	resp, body := postWithHeaders(t, ts.URL+"/v1/run", `{"asm": `+quote(smallLoop)+`}`,
		map[string]string{"X-Request-Id": "traced-run-1", "traceparent": traceparent})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run = %d\n%s", resp.StatusCode, body)
	}

	resp, body = getTrace(t, ts.URL, "traced-run-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace = %d\n%s", resp.StatusCode, body)
	}
	traceBody := body
	saveFailureArtifact(t, "trace-endpoint.json", func() []byte { return []byte(traceBody) })
	var td tracing.TraceData
	if err := json.Unmarshal([]byte(body), &td); err != nil {
		t.Fatalf("trace not JSON: %v\n%s", err, body)
	}
	if td.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace did not join the caller's trace: %s", td.TraceID)
	}
	if !td.RemoteParent {
		t.Error("remote_parent not set for a traceparent-carrying request")
	}
	if td.RequestID != "traced-run-1" {
		t.Errorf("request ID = %q", td.RequestID)
	}

	// The request must decompose into the expected stages, each contained
	// in the root span's duration.
	var root *tracing.SpanData
	for i := range td.Spans {
		if td.Spans[i].SpanID == td.RootSpanID {
			root = &td.Spans[i]
		}
	}
	if root == nil {
		t.Fatal("trace has no root span")
	}
	stages := map[string]bool{}
	for i := range td.Spans {
		s := &td.Spans[i]
		if s.SpanID == td.RootSpanID {
			continue
		}
		stages[s.Name] = true
		if s.StartUS+s.DurUS > root.StartUS+td.DurUS+1000 {
			t.Errorf("span %s (%d+%dus) extends past the trace (%dus)", s.Name, s.StartUS, s.DurUS, td.DurUS)
		}
	}
	if root.ParentID != "00f067aa0ba902b7" {
		t.Errorf("root span parent = %q, want the caller's span", root.ParentID)
	}
	for _, want := range []string{"decode", "build", "run"} {
		if !stages[want] {
			t.Errorf("trace missing stage %q (have %v)", want, stages)
		}
	}
	if td.DurUS != root.DurUS {
		t.Errorf("trace duration %dus != root span duration %dus", td.DurUS, root.DurUS)
	}

	// Chrome export of the same trace.
	resp, body = get(t, ts.URL+"/v1/trace/traced-run-1?format=chrome")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "traceEvents") {
		t.Errorf("chrome trace = %d\n%s", resp.StatusCode, body)
	}
	if resp, body := get(t, ts.URL+"/v1/trace/traced-run-1?format=svg"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad format = %d\n%s", resp.StatusCode, body)
	}

	// Unknown request ID.
	resp, body = get(t, ts.URL+"/v1/trace/no-such-request")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace = %d, want 404\n%s", resp.StatusCode, body)
	}
	if ae := decodeErr(t, body); ae.Kind != errKindNotFound {
		t.Errorf("kind = %q, want %q", ae.Kind, errKindNotFound)
	}
}

func TestStageMetricsFromSpans(t *testing.T) {
	s, ts := newTestServer(t)
	post(t, ts.URL+"/v1/run", `{"asm": `+quote(smallLoop)+`}`)
	snap := s.metrics.reg.Snapshot()
	for _, stage := range []string{"decode", "build", "run"} {
		if got := snap[`pipesimd_stage_seconds_count{stage="`+stage+`"}`]; got != 1 {
			t.Errorf("stage_seconds{stage=%q} count = %v, want 1", stage, got)
		}
	}
}

func TestDeadlockErrorCarriesRecentEvents(t *testing.T) {
	_, ts := newTestServer(t)

	resp, body := postWithHeaders(t, ts.URL+"/v1/run",
		`{"asm": `+quote(deadlockAsm)+`, "config": {"WatchdogCycles": 2000}}`,
		map[string]string{"X-Request-Id": "wedged-1"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("deadlock run = %d\n%s", resp.StatusCode, body)
	}
	deadlockBody := body
	saveFailureArtifact(t, "deadlock-error.json", func() []byte { return []byte(deadlockBody) })
	ae := decodeErr(t, body)
	if ae.Kind != errKindDeadlock {
		t.Fatalf("kind = %q (%s)", ae.Kind, ae.Error)
	}
	if ae.RequestID != "wedged-1" {
		t.Errorf("error body request_id = %q, want wedged-1", ae.RequestID)
	}
	if len(ae.RecentEvents) == 0 {
		t.Fatal("deadlock error body carries no flight-recorder events")
	}
	sawRetire := false
	for _, e := range ae.RecentEvents {
		if e.Kind == "retire" {
			sawRetire = true
		}
	}
	if !sawRetire {
		t.Errorf("recent events have no retirements: %+v", ae.RecentEvents)
	}

	// The same post-mortem is archived for operators.
	resp, body = get(t, ts.URL+"/debug/flightrecorder")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flightrecorder = %d", resp.StatusCode)
	}
	var entries []flightEntry
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatalf("flightrecorder not JSON: %v\n%s", err, body)
	}
	if len(entries) != 1 {
		t.Fatalf("archived %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.RequestID != "wedged-1" || e.Kind != errKindDeadlock || len(e.Events) == 0 {
		t.Errorf("archived entry wrong: %+v", e)
	}
}

func TestRunDeadlineKind(t *testing.T) {
	s, err := newServer(slog.New(slog.NewTextHandler(io.Discard, nil)), serverOptions{
		runLimit: time.Nanosecond,
	})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	t.Cleanup(func() { pipesim.SetRunHook(nil) })
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	resp, body := post(t, ts.URL+"/v1/run", `{}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("deadline run = %d\n%s", resp.StatusCode, body)
	}
	ae := decodeErr(t, body)
	if ae.Kind != errKindDeadline {
		t.Fatalf("kind = %q, want %q (%s)", ae.Kind, errKindDeadline, ae.Error)
	}
	if !strings.Contains(ae.Error, "-run-timeout") {
		t.Errorf("deadline error does not name the flag: %q", ae.Error)
	}
	// The deadline is its own taxonomy bucket, distinct from the sweep
	// runner's per-experiment timeout.
	snap := s.metrics.reg.Snapshot()
	if got := snap[`pipesimd_errors_total{kind="deadline"}`]; got != 1 {
		t.Errorf("deadline errors = %v, want 1", got)
	}
	if got := snap[`pipesimd_errors_total{kind="timeout"}`]; got != 0 {
		t.Errorf("timeout errors = %v, want 0", got)
	}
}

func TestSlowRequestLogging(t *testing.T) {
	var sb strings.Builder
	logMu := &syncWriter{w: &sb}
	s, err := newServer(slog.New(slog.NewTextHandler(logMu, nil)), serverOptions{
		runLimit:  time.Minute,
		slowLimit: time.Nanosecond, // everything is slow
	})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	t.Cleanup(func() { pipesim.SetRunHook(nil) })
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	post(t, ts.URL+"/v1/run", `{"asm": `+quote(smallLoop)+`}`)
	// The slow-request line is written by the middleware's deferred hook;
	// poll briefly for it.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(logMu.String(), "slow request") {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	logged := logMu.String()
	if !strings.Contains(logged, "slow request") {
		t.Fatalf("no slow-request line logged:\n%s", logged)
	}
	if !strings.Contains(logged, "run=") {
		t.Errorf("slow-request line has no span breakdown:\n%s", logged)
	}
}

// syncWriter serializes writes between the handler goroutine and the test.
type syncWriter struct {
	mu sync.Mutex
	w  *strings.Builder
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func (s *syncWriter) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.String()
}

// saveFailureArtifact writes a post-mortem file when the test fails and
// PIPESIM_ARTIFACT_DIR is set, so CI uploads the flight-recorder / trace
// JSON the failing assertion was looking at.
func saveFailureArtifact(t *testing.T, name string, body func() []byte) {
	t.Cleanup(func() {
		dir := os.Getenv("PIPESIM_ARTIFACT_DIR")
		if dir == "" || !t.Failed() {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("artifact dir: %v", err)
			return
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, body(), 0o644); err != nil {
			t.Logf("artifact %s: %v", name, err)
			return
		}
		t.Logf("post-mortem artifact written to %s", path)
	})
}
