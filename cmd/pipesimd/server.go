package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pipesim"
	"pipesim/internal/sweep"
	"pipesim/internal/version"
)

// server is the pipesimd HTTP surface: simulation and sweep execution on
// top of the fault-isolated runner, plus the operator endpoints
// (/metrics, /healthz, /readyz, /debug/pprof, /version).
type server struct {
	log     *slog.Logger
	metrics *daemonMetrics
	mux     *http.ServeMux

	// ready gates /readyz: set once the benchmark image is warmed,
	// cleared when shutdown starts so load balancers drain the instance.
	ready atomic.Bool

	// reqSeq numbers requests; combined with the process start stamp it
	// yields a unique request ID for log correlation.
	reqSeq   atomic.Uint64
	startID  string
	maxBody  int64         // request body cap for /v1/run
	runLimit time.Duration // per-run and per-sweep-experiment deadline
	workers  int           // sweep worker cap (0 = one per CPU)
}

// newServer wires the handler tree. The returned server installs the
// process-wide run hook, so every simulation it executes feeds the
// metrics registry.
func newServer(log *slog.Logger, opts serverOptions) *server {
	s := &server{
		log:      log,
		metrics:  newDaemonMetrics(),
		mux:      http.NewServeMux(),
		startID:  fmt.Sprintf("%x", time.Now().UnixNano()&0xffffff),
		maxBody:  opts.maxBody,
		runLimit: opts.runLimit,
		workers:  opts.workers,
	}
	if s.maxBody <= 0 {
		s.maxBody = 1 << 20
	}
	pipesim.SetRunHook(s.metrics.observeRun)

	s.handle("POST /v1/run", "/v1/run", s.handleRun)
	s.handle("GET /v1/sweep", "/v1/sweep", s.handleSweep)
	s.handle("GET /v1/experiments", "/v1/experiments", s.handleExperiments)
	s.handle("GET /metrics", "/metrics", s.handleMetrics)
	s.handle("GET /healthz", "/healthz", s.handleHealthz)
	s.handle("GET /readyz", "/readyz", s.handleReadyz)
	s.handle("GET /version", "/version", s.handleVersion)

	// Profiling hooks: the stock net/http/pprof handlers on our own mux
	// (the daemon never touches http.DefaultServeMux).
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// serverOptions carries the tunables from the command line into newServer.
type serverOptions struct {
	maxBody  int64
	runLimit time.Duration
	workers  int
}

// warm builds the shared Livermore benchmark image (the expensive lazy
// initialisation every benchmark run needs) and flips the readiness gate.
func (s *server) warm() error {
	if _, err := sweep.BenchmarkImage(); err != nil {
		return err
	}
	s.ready.Store(true)
	return nil
}

// drain clears readiness: /readyz starts failing so load balancers stop
// sending traffic while in-flight requests finish.
func (s *server) drain() { s.ready.Store(false) }

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// statusWriter records the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

type ctxKey int

const logKey ctxKey = 0

// reqLog returns the request-scoped logger installed by handle.
func reqLog(r *http.Request) *slog.Logger {
	if l, ok := r.Context().Value(logKey).(*slog.Logger); ok {
		return l
	}
	return slog.Default()
}

// handle registers one instrumented route: request counting and latency
// by route pattern (never by raw URL, so cardinality stays bounded), the
// in-flight gauge, a generated request ID, and a request-scoped logger
// carried in the context.
func (s *server) handle(pattern, route string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		id := s.startID + "-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
		l := s.log.With("request_id", id, "method", r.Method, "path", r.URL.Path)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		s.metrics.inFlight.Inc()
		start := time.Now()
		defer func() {
			elapsed := time.Since(start)
			s.metrics.inFlight.Dec()
			s.metrics.requests.With(route, strconv.Itoa(sw.code)).Inc()
			s.metrics.latency.With(route).Observe(elapsed.Seconds())
			l.Info("request served", "code", sw.code, "elapsed", elapsed.Round(time.Microsecond))
		}()
		w.Header().Set("X-Request-Id", id)
		h(sw, r.WithContext(context.WithValue(r.Context(), logKey, l)))
	})
}

// apiError is the JSON error envelope every failing endpoint returns.
type apiError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// errorKind maps an error to its taxonomy label (PR-1 error model).
func errorKind(err error) string {
	var dl *pipesim.DeadlockError
	var mc *pipesim.MachineCheckError
	var to *sweep.TimeoutError
	var pe *sweep.PanicError
	switch {
	case errors.Is(err, pipesim.ErrInvalidConfig):
		return errKindInvalidConfig
	case errors.As(err, &dl):
		return errKindDeadlock
	case errors.As(err, &mc):
		return errKindMachineCheck
	case errors.As(err, &to):
		return errKindTimeout
	case errors.As(err, &pe):
		return errKindPanic
	default:
		return errKindInternal
	}
}

// httpStatus maps an error kind to a status code: configuration mistakes
// are the client's fault, everything else is the simulator's.
func httpStatus(kind string) int {
	switch kind {
	case errKindBadRequest, errKindInvalidConfig:
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// fail counts, logs and renders one error response.
func (s *server) fail(w http.ResponseWriter, r *http.Request, kind string, err error) {
	s.metrics.errors.With(kind).Inc()
	code := httpStatus(kind)
	reqLog(r).Error("request failed", "kind", kind, "code", code, "err", err)
	writeJSON(w, code, apiError{Error: err.Error(), Kind: kind})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// runRequest is the /v1/run request body. Config is an overlay on the
// base machine: absent fields keep their base values, so a request can be
// as small as {} (the paper's default presentation point) or name a
// Table II arrangement and tweak one knob.
type runRequest struct {
	// TableII selects the base configuration by Table II name ("8-8",
	// "16-16", "16-32", "32-32"); empty selects DefaultConfig.
	TableII string `json:"table_ii,omitempty"`
	// Config overlays fields (pipesim.Config JSON field names) on the base.
	Config json.RawMessage `json:"config,omitempty"`
	// Asm runs a PIPE assembly program instead of the Livermore benchmark.
	Asm string `json:"asm,omitempty"`
	// Kernel runs a single Livermore loop (1..14).
	Kernel int `json:"kernel,omitempty"`
	// PerLoop collects per-Livermore-loop statistics (benchmark only).
	PerLoop bool `json:"per_loop,omitempty"`
}

// runResponse is the /v1/run success body.
type runResponse struct {
	RequestID      string          `json:"request_id"`
	ElapsedSeconds float64         `json:"elapsed_seconds"`
	Result         *pipesim.Result `json:"result"`
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req runRequest
	if err := dec.Decode(&req); err != nil {
		s.fail(w, r, errKindBadRequest, fmt.Errorf("decoding request body: %w", err))
		return
	}

	cfg := pipesim.DefaultConfig()
	if req.TableII != "" {
		var err error
		if cfg, err = pipesim.TableIIConfig(req.TableII); err != nil {
			s.fail(w, r, errKindBadRequest, err)
			return
		}
	}
	if len(req.Config) > 0 {
		cdec := json.NewDecoder(strings.NewReader(string(req.Config)))
		cdec.DisallowUnknownFields()
		if err := cdec.Decode(&cfg); err != nil {
			s.fail(w, r, errKindBadRequest, fmt.Errorf("decoding config overlay: %w", err))
			return
		}
	}

	var (
		prog *pipesim.Program
		err  error
	)
	switch {
	case req.Asm != "" && req.Kernel != 0:
		s.fail(w, r, errKindBadRequest, errors.New("asm and kernel are mutually exclusive"))
		return
	case req.Asm != "":
		prog, err = pipesim.Assemble(req.Asm)
	case req.Kernel != 0:
		prog, err = pipesim.LivermoreKernel(req.Kernel)
	default:
		prog, _, err = pipesim.LivermoreProgram()
	}
	if err != nil {
		s.fail(w, r, errKindBadRequest, err)
		return
	}

	sim, err := pipesim.NewSimulation(cfg, prog)
	if err != nil {
		s.fail(w, r, errorKind(err), err)
		return
	}
	if req.PerLoop {
		if err := sim.CollectPerLoop(); err != nil {
			s.fail(w, r, errKindBadRequest, fmt.Errorf("per_loop: %w", err))
			return
		}
	}
	reqLog(r).Info("run starting", "strategy", cfg.Strategy, "cache_bytes", cfg.CacheBytes,
		"line_bytes", cfg.LineBytes, "mem_access", cfg.MemAccessTime, "bus_bytes", cfg.BusWidthBytes)

	start := time.Now()
	res, err := runWithDeadline(sim, s.runLimit)
	if err != nil {
		s.fail(w, r, errorKind(err), err)
		return
	}
	writeJSON(w, http.StatusOK, runResponse{
		RequestID:      w.Header().Get("X-Request-Id"),
		ElapsedSeconds: time.Since(start).Seconds(),
		Result:         res,
	})
}

// runWithDeadline executes the simulation with an optional wall-clock
// deadline, mirroring the sweep runner's isolation: a run that exceeds it
// is reported as a timeout and its goroutine abandoned (the watchdog
// still bounds truly wedged machines).
func runWithDeadline(sim *pipesim.Simulation, limit time.Duration) (*pipesim.Result, error) {
	if limit <= 0 {
		return sim.Run()
	}
	type reply struct {
		res *pipesim.Result
		err error
	}
	ch := make(chan reply, 1)
	go func() {
		res, err := sim.Run()
		ch <- reply{res, err}
	}()
	timer := time.NewTimer(limit)
	defer timer.Stop()
	select {
	case rp := <-ch:
		return rp.res, rp.err
	case <-timer.C:
		return nil, &sweep.TimeoutError{ID: "run", Timeout: limit}
	}
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	exps := sweep.Experiments()
	if raw := q.Get("exp"); raw != "" {
		exps = exps[:0:0]
		for _, id := range strings.Split(raw, ",") {
			e, ok := sweep.Lookup(strings.TrimSpace(id))
			if !ok {
				s.fail(w, r, errKindBadRequest, fmt.Errorf("unknown experiment %q (GET /v1/experiments lists them)", id))
				return
			}
			exps = append(exps, e)
		}
	}
	opt := sweep.Options{Workers: s.workers, Timeout: s.runLimit}
	if raw := q.Get("parallel"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			s.fail(w, r, errKindBadRequest, fmt.Errorf("bad parallel %q", raw))
			return
		}
		opt.Workers = n
	}
	if raw := q.Get("timeout"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d < 0 {
			s.fail(w, r, errKindBadRequest, fmt.Errorf("bad timeout %q", raw))
			return
		}
		opt.Timeout = d
	}
	l := reqLog(r)
	l.Info("sweep starting", "experiments", len(exps), "workers", opt.Workers, "timeout", opt.Timeout)
	opt.Progress = func(o sweep.Outcome, done, total int) {
		if o.Err != nil {
			l.Warn("sweep experiment failed", "experiment", o.Experiment.ID,
				"done", done, "total", total, "err", o.Err)
		} else {
			l.Debug("sweep experiment finished", "experiment", o.Experiment.ID,
				"done", done, "total", total, "elapsed", o.Elapsed.Round(time.Millisecond))
		}
	}

	sum := sweep.RunAll(exps, opt)
	for _, o := range sum.Outcomes {
		if o.Err != nil {
			s.metrics.sweepExperiments.With("fail").Inc()
			s.metrics.errors.With(errorKind(o.Err)).Inc()
			continue
		}
		s.metrics.sweepExperiments.With("ok").Inc()
		if t, ok := o.BucketTotals(); ok {
			s.metrics.addSweepAttribution(t)
		}
	}

	w.Header().Set("Content-Type", "application/json")
	if sum.Err() != nil {
		// Partial failure: the summary still carries every outcome, and
		// the per-outcome ok/error fields say which failed.
		w.WriteHeader(http.StatusInternalServerError)
	}
	if err := sum.WriteJSON(w); err != nil {
		l.Error("writing sweep summary", "err", err)
	}
}

func (s *server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type item struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var out []item
	for _, e := range sweep.Experiments() {
		out = append(out, item{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.syncRunCache()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.reg.WritePrometheus(w); err != nil {
		reqLog(r).Error("rendering metrics", "err", err)
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, version.Get())
}
