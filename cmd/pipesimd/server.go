package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pipesim"
	"pipesim/internal/eventbus"
	"pipesim/internal/jobs"
	"pipesim/internal/obs"
	"pipesim/internal/runcache"
	"pipesim/internal/runstore"
	"pipesim/internal/sweep"
	"pipesim/internal/tracing"
	"pipesim/internal/version"
)

// server is the pipesimd HTTP surface: simulation and sweep execution on
// top of the fault-isolated runner, plus the operator endpoints
// (/metrics, /healthz, /readyz, /debug/pprof, /version).
type server struct {
	log     *slog.Logger
	metrics *daemonMetrics
	mux     *http.ServeMux

	// tracer retains each request's span trace for GET /v1/trace/{id};
	// flights archives failed runs' flight-recorder tails for
	// GET /debug/flightrecorder.
	tracer  *tracing.Tracer
	flights *flightArchive

	// jobs is the durable sweep-job manager (-jobs-dir); nil disables
	// the /v1/jobs API.
	jobs *jobs.Manager

	// store is the persistent run archive (-store-dir): installed under
	// the run cache as its second tier and served on /v1/runs and
	// /v1/compare. Nil disables all three.
	store *runstore.Store

	// bus is the telemetry event bus behind GET /v1/events and
	// GET /v1/jobs/{id}/events; the job manager and sweep handler publish
	// into it. Closed by drain so every SSE stream ends cleanly.
	bus          *eventbus.Bus
	eventsBuffer int           // per-subscriber ring capacity (0 = bus default)
	sseHeartbeat time.Duration // SSE heartbeat-comment interval

	// ready gates /readyz: set once the benchmark image is warmed,
	// cleared when shutdown starts so load balancers drain the instance.
	ready atomic.Bool

	// draining is set when shutdown begins: work-accepting endpoints
	// (POST /v1/jobs, GET /v1/sweep) answer 503 + Retry-After instead of
	// accepting work the drain deadline would kill.
	draining atomic.Bool

	// reqSeq numbers requests; combined with the process start stamp it
	// yields a unique request ID for log correlation.
	reqSeq    atomic.Uint64
	startID   string
	maxBody   int64         // request body cap for /v1/run
	runLimit  time.Duration // per-run and per-sweep-experiment deadline
	workers   int           // sweep worker cap (0 = one per CPU)
	slowLimit time.Duration // slow-request log threshold (0 = off)
}

// newServer wires the handler tree. The returned server installs the
// process-wide run hook, so every simulation it executes feeds the
// metrics registry.
func newServer(log *slog.Logger, opts serverOptions) (*server, error) {
	s := &server{
		log:          log,
		metrics:      newDaemonMetrics(),
		mux:          http.NewServeMux(),
		tracer:       tracing.New(0),
		flights:      newFlightArchive(0),
		startID:      fmt.Sprintf("%x", time.Now().UnixNano()&0xffffff),
		bus:          eventbus.New(),
		eventsBuffer: opts.eventsBuffer,
		sseHeartbeat: opts.sseHeartbeat,
		maxBody:      opts.maxBody,
		runLimit:     opts.runLimit,
		workers:      opts.workers,
		slowLimit:    opts.slowLimit,
	}
	if s.maxBody <= 0 {
		s.maxBody = 1 << 20
	}
	pipesim.SetRunHook(s.metrics.observeRun)
	s.tracer.OnSpanEnd(s.metrics.observeSpan)

	if opts.storeDir != "" {
		store, err := runstore.Open(opts.storeDir, runstore.Options{
			MaxEntries: opts.storeEntries,
			MaxBytes:   opts.storeBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("opening run store: %w", err)
		}
		s.store = store
		runcache.Default.SetStore(store)
		log.Info("run store open", "dir", opts.storeDir, "entries", store.Len(), "bytes", store.Bytes())
	}

	if opts.jobsDir != "" {
		m, err := s.newJobManager(opts)
		if err != nil {
			return nil, err
		}
		s.jobs = m
	}

	s.handle("POST /v1/run", "/v1/run", s.handleRun)
	s.handle("GET /v1/runs", "/v1/runs", s.handleRunsList)
	s.handle("GET /v1/runs/{key}", "/v1/runs/key", s.handleRunGet)
	s.handle("GET /v1/compare", "/v1/compare", s.handleCompare)
	s.handle("GET /v1/sweep", "/v1/sweep", s.handleSweep)
	s.handle("POST /v1/jobs", "/v1/jobs", s.handleJobSubmit)
	s.handle("GET /v1/jobs", "/v1/jobs", s.handleJobList)
	s.handle("GET /v1/jobs/{id}", "/v1/jobs/id", s.handleJobGet)
	s.handle("DELETE /v1/jobs/{id}", "/v1/jobs/id", s.handleJobCancel)
	s.handle("GET /v1/jobs/{id}/events", "/v1/jobs/id/events", s.handleJobEvents)
	s.handle("GET /v1/events", "/v1/events", s.handleEvents)
	s.handle("GET /v1/experiments", "/v1/experiments", s.handleExperiments)
	s.handle("GET /v1/trace/{id}", "/v1/trace", s.handleTrace)
	s.handle("GET /debug/flightrecorder", "/debug/flightrecorder", s.handleFlightRecorder)
	s.handle("GET /metrics", "/metrics", s.handleMetrics)
	s.handle("GET /healthz", "/healthz", s.handleHealthz)
	s.handle("GET /readyz", "/readyz", s.handleReadyz)
	s.handle("GET /version", "/version", s.handleVersion)

	// Profiling hooks: the stock net/http/pprof handlers on our own mux
	// (the daemon never touches http.DefaultServeMux).
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s, nil
}

// serverOptions carries the tunables from the command line into newServer.
type serverOptions struct {
	maxBody   int64
	runLimit  time.Duration
	workers   int
	slowLimit time.Duration

	// Persistent run archive (empty storeDir disables it).
	storeDir     string
	storeEntries int   // GC bound on archived records (0 = default)
	storeBytes   int64 // GC bound on archive bytes (0 = default)

	// Telemetry streaming (GET /v1/events).
	eventsBuffer int           // per-SSE-subscriber ring capacity (0 = 256)
	sseHeartbeat time.Duration // heartbeat-comment interval (0 = 15s)

	// Durable job subsystem (empty jobsDir disables it).
	jobsDir    string
	jobsQueue  int
	jobsPoints int
	// jobsFault is the chaos fault-injection hook, threaded through to
	// jobs.Options.InjectFault. Tests only.
	jobsFault func(jobID, pointID string, attempt int) error
}

// warm builds the shared Livermore benchmark image (the expensive lazy
// initialisation every benchmark run needs) and flips the readiness gate.
func (s *server) warm() error {
	if _, err := sweep.BenchmarkImage(); err != nil {
		return err
	}
	s.ready.Store(true)
	return nil
}

// drain starts the shutdown path: /readyz fails so load balancers stop
// routing here, and the work-accepting endpoints shed new sweeps and jobs
// with 503 + Retry-After instead of admitting work the drain deadline
// would kill. In-flight requests and the running job finish (the job by
// checkpointing; jobs.Manager.Close interrupts it).
// Closing the event bus wakes every SSE stream, which delivers its
// buffered events, writes a terminal "end" frame and returns — so the
// http.Server's Shutdown is not held open by long-lived streams.
func (s *server) drain() {
	s.ready.Store(false)
	s.draining.Store(true)
	s.bus.Close()
	// Detach the persistent tier so nothing writes through it while the
	// process winds down; archived records are already safely on disk.
	if s.store != nil {
		runcache.Default.SetStore(nil)
	}
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// statusWriter records the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so SSE handlers can stream
// through the instrumentation wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

type ctxKey int

const logKey ctxKey = 0

// reqLog returns the request-scoped logger installed by handle.
func reqLog(r *http.Request) *slog.Logger {
	if l, ok := r.Context().Value(logKey).(*slog.Logger); ok {
		return l
	}
	return slog.Default()
}

// maxClientRequestID caps an honored client-supplied X-Request-Id.
const maxClientRequestID = 64

// clientRequestID returns the request's sanitized X-Request-Id: the header
// value when it is non-empty, at most maxClientRequestID bytes and drawn
// from [A-Za-z0-9._-], otherwise "" (the caller generates one). The charset
// check keeps hostile IDs out of logs, trace keys and response headers.
func clientRequestID(r *http.Request) string {
	id := r.Header.Get("X-Request-Id")
	if id == "" || len(id) > maxClientRequestID {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}

// handle registers one instrumented route: request counting and latency
// by route pattern (never by raw URL, so cardinality stays bounded), the
// in-flight gauge, the request ID (client-supplied when sane, generated
// otherwise), a request-scoped logger, and a trace rooted at this request
// — joined to the caller's trace when the request carries a W3C
// traceparent header. The finished trace is retrievable at
// GET /v1/trace/{request_id}; requests slower than -slow-ms additionally
// log their span breakdown.
func (s *server) handle(pattern, route string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		id := clientRequestID(r)
		if id == "" {
			id = s.startID + "-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
		}
		l := s.log.With("request_id", id, "method", r.Method, "path", r.URL.Path)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		parent, _ := tracing.ParseTraceparent(r.Header.Get("traceparent"))
		ctx, root := s.tracer.StartTrace(r.Context(), r.Method+" "+route, id, parent)
		s.metrics.inFlight.Inc()
		start := time.Now()
		defer func() {
			elapsed := time.Since(start)
			s.metrics.inFlight.Dec()
			s.metrics.requests.With(route, strconv.Itoa(sw.code)).Inc()
			s.metrics.latency.With(route).Observe(elapsed.Seconds())
			root.SetAttr("code", strconv.Itoa(sw.code))
			root.End()
			l.Info("request served", "code", sw.code, "elapsed", elapsed.Round(time.Microsecond))
			if s.slowLimit > 0 && elapsed >= s.slowLimit {
				if td, ok := s.tracer.Get(id); ok {
					l.Warn("slow request", "elapsed", elapsed.Round(time.Millisecond),
						"threshold", s.slowLimit, "trace_id", td.TraceID, "spans", td.SpanBreakdown())
				}
			}
		}()
		w.Header().Set("X-Request-Id", id)
		h(sw, r.WithContext(context.WithValue(ctx, logKey, l)))
	})
}

// apiError is the JSON error envelope every failing endpoint returns. The
// request ID is echoed so a client can quote it when pulling the request's
// trace or flight-recorder entry; RecentEvents carries the flight
// recorder's tail when the failure snapshotted one (deadlock or machine
// check).
type apiError struct {
	Error        string            `json:"error"`
	Kind         string            `json:"kind"`
	RequestID    string            `json:"request_id,omitempty"`
	RecentEvents []obs.EventRecord `json:"recent_events,omitempty"`
}

// errorKind maps an error to its taxonomy label (PR-1 error model).
func errorKind(err error) string {
	var dl *pipesim.DeadlockError
	var mc *pipesim.MachineCheckError
	var de *deadlineError
	var to *sweep.TimeoutError
	var pe *sweep.PanicError
	switch {
	case errors.Is(err, pipesim.ErrInvalidConfig):
		return errKindInvalidConfig
	case errors.As(err, &dl):
		return errKindDeadlock
	case errors.As(err, &mc):
		return errKindMachineCheck
	case errors.As(err, &de):
		return errKindDeadline
	case errors.As(err, &to):
		return errKindTimeout
	case errors.As(err, &pe):
		return errKindPanic
	default:
		return errKindInternal
	}
}

// httpStatus maps an error kind to a status code: configuration mistakes
// are the client's fault, everything else is the simulator's.
func httpStatus(kind string) int {
	switch kind {
	case errKindBadRequest, errKindInvalidConfig:
		return http.StatusBadRequest
	case errKindNotFound:
		return http.StatusNotFound
	case errKindQueueFull:
		return http.StatusTooManyRequests
	case errKindUnavailable:
		return http.StatusServiceUnavailable
	case errKindConflict:
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// flightEvents extracts a failed run's flight-recorder snapshot, or nil
// for error kinds that carry none (a timed-out run's goroutine is
// abandoned mid-flight, so its recorder is still being written — only
// errors from a completed run end carry a stable tail).
func flightEvents(err error) []pipesim.ProbeEvent {
	var dl *pipesim.DeadlockError
	var mc *pipesim.MachineCheckError
	switch {
	case errors.As(err, &dl):
		return dl.Recent
	case errors.As(err, &mc):
		return mc.Recent
	}
	return nil
}

// fail counts, logs and renders one error response. Failures that carry a
// flight-recorder snapshot return it in the body and archive it for
// GET /debug/flightrecorder.
func (s *server) fail(w http.ResponseWriter, r *http.Request, kind string, err error) {
	s.metrics.errors.With(kind).Inc()
	code := httpStatus(kind)
	id := w.Header().Get("X-Request-Id")
	resp := apiError{Error: err.Error(), Kind: kind, RequestID: id}
	if events := flightEvents(err); len(events) > 0 {
		resp.RecentEvents = obs.Records(events)
		s.flights.add(id, kind, err, events)
	}
	reqLog(r).Error("request failed", "kind", kind, "code", code, "err", err)
	writeJSON(w, code, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// runRequest is the /v1/run request body. Config is an overlay on the
// base machine: absent fields keep their base values, so a request can be
// as small as {} (the paper's default presentation point) or name a
// Table II arrangement and tweak one knob.
type runRequest struct {
	// TableII selects the base configuration by Table II name ("8-8",
	// "16-16", "16-32", "32-32"); empty selects DefaultConfig.
	TableII string `json:"table_ii,omitempty"`
	// Config overlays fields (pipesim.Config JSON field names) on the base.
	Config json.RawMessage `json:"config,omitempty"`
	// Asm runs a PIPE assembly program instead of the Livermore benchmark.
	Asm string `json:"asm,omitempty"`
	// Kernel runs a single Livermore loop (1..14).
	Kernel int `json:"kernel,omitempty"`
	// PerLoop collects per-Livermore-loop statistics (benchmark only).
	PerLoop bool `json:"per_loop,omitempty"`
}

// runResponse is the /v1/run success body. Key is the run's
// content-addressed identity (also in result.key) — quote it to
// GET /v1/runs/{key} or GET /v1/compare; Source says where the result came
// from: "simulated", "memory" (run cache) or "store" (-store-dir archive).
type runResponse struct {
	RequestID      string          `json:"request_id"`
	ElapsedSeconds float64         `json:"elapsed_seconds"`
	Key            string          `json:"key,omitempty"`
	Source         string          `json:"source,omitempty"`
	Result         *pipesim.Result `json:"result"`
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	req, kind, err := decodeRunRequest(ctx, w, r, s.maxBody)
	if err != nil {
		s.fail(w, r, kind, err)
		return
	}
	cfg, prog, kind, err := buildRunConfig(ctx, req)
	if err != nil {
		s.fail(w, r, kind, err)
		return
	}
	reqLog(r).Info("run starting", "strategy", cfg.Strategy, "cache_bytes", cfg.CacheBytes,
		"line_bytes", cfg.LineBytes, "mem_access", cfg.MemAccessTime, "bus_bytes", cfg.BusWidthBytes)

	start := time.Now()
	var (
		res    *pipesim.Result
		source pipesim.RunSource
	)
	if req.PerLoop {
		// Observed runs replay events, so they bypass the caches; archive
		// the result explicitly so it is referencable for comparisons.
		var sim *pipesim.Simulation
		sim, kind, err = observedSimulation(ctx, cfg, prog)
		if err != nil {
			s.fail(w, r, kind, err)
			return
		}
		res, err = s.runSim(ctx, sim)
		source = pipesim.RunSimulated
		if err == nil && s.store != nil {
			if aerr := sim.Archive(s.store); aerr != nil {
				reqLog(r).Warn("archiving run", "err", aerr)
			}
		}
	} else {
		res, source, err = s.runArchived(ctx, cfg, prog)
	}
	if err != nil {
		s.fail(w, r, errorKind(err), err)
		return
	}
	writeJSON(w, http.StatusOK, runResponse{
		RequestID:      w.Header().Get("X-Request-Id"),
		ElapsedSeconds: time.Since(start).Seconds(),
		Key:            res.Key,
		Source:         string(source),
		Result:         res,
	})
}

// decodeRunRequest reads and decodes the /v1/run body under a "decode"
// span. A non-nil error comes with its taxonomy kind.
func decodeRunRequest(ctx context.Context, w http.ResponseWriter, r *http.Request, maxBody int64) (runRequest, string, error) {
	_, span := tracing.StartSpan(ctx, "decode")
	defer span.End()
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req runRequest
	if err := dec.Decode(&req); err != nil {
		return req, errKindBadRequest, fmt.Errorf("decoding request body: %w", err)
	}
	return req, "", nil
}

// buildRunConfig resolves the request's base configuration, overlay and
// program — one "build" span covering everything between decode and the
// run itself.
func buildRunConfig(ctx context.Context, req runRequest) (pipesim.Config, *pipesim.Program, string, error) {
	_, span := tracing.StartSpan(ctx, "build")
	defer span.End()
	cfg := pipesim.DefaultConfig()
	if req.TableII != "" {
		var err error
		if cfg, err = pipesim.TableIIConfig(req.TableII); err != nil {
			return cfg, nil, errKindBadRequest, err
		}
	}
	if len(req.Config) > 0 {
		cdec := json.NewDecoder(strings.NewReader(string(req.Config)))
		cdec.DisallowUnknownFields()
		if err := cdec.Decode(&cfg); err != nil {
			return cfg, nil, errKindBadRequest, fmt.Errorf("decoding config overlay: %w", err)
		}
	}

	var (
		prog *pipesim.Program
		err  error
	)
	switch {
	case req.Asm != "" && req.Kernel != 0:
		return cfg, nil, errKindBadRequest, errors.New("asm and kernel are mutually exclusive")
	case req.Asm != "":
		prog, err = pipesim.Assemble(req.Asm)
	case req.Kernel != 0:
		prog, err = pipesim.LivermoreKernel(req.Kernel)
	default:
		prog, _, err = pipesim.LivermoreProgram()
	}
	if err != nil {
		return cfg, nil, errKindBadRequest, err
	}
	return cfg, prog, "", nil
}

// observedSimulation constructs (validating) a per-loop-collecting
// simulation for requests that need the live event stream.
func observedSimulation(ctx context.Context, cfg pipesim.Config, prog *pipesim.Program) (*pipesim.Simulation, string, error) {
	sim, err := pipesim.NewSimulation(cfg, prog)
	if err != nil {
		return nil, errorKind(err), err
	}
	if err := sim.CollectPerLoop(); err != nil {
		return nil, errKindBadRequest, fmt.Errorf("per_loop: %w", err)
	}
	return sim, "", nil
}

// runSim executes the simulation under a "run" span and the -run-timeout
// deadline.
func (s *server) runSim(ctx context.Context, sim *pipesim.Simulation) (*pipesim.Result, error) {
	_, span := tracing.StartSpan(ctx, "run")
	defer span.End()
	res, err := runWithDeadline(sim, s.runLimit)
	if err != nil {
		span.SetAttr("error", err.Error())
		return nil, err
	}
	span.SetAttr("cycles", strconv.FormatUint(res.Cycles, 10))
	return res, nil
}

// runArchived executes through the two-tier run cache (memory → -store-dir
// archive → simulate) under a "run" span and the -run-timeout deadline.
func (s *server) runArchived(ctx context.Context, cfg pipesim.Config, prog *pipesim.Program) (*pipesim.Result, pipesim.RunSource, error) {
	_, span := tracing.StartSpan(ctx, "run")
	defer span.End()
	type reply struct {
		res *pipesim.Result
		src pipesim.RunSource
		err error
	}
	var rp reply
	if s.runLimit <= 0 {
		rp.res, rp.src, rp.err = pipesim.RunArchived(ctx, cfg, prog)
	} else {
		ch := make(chan reply, 1)
		go func() {
			res, src, err := pipesim.RunArchived(ctx, cfg, prog)
			ch <- reply{res, src, err}
		}()
		timer := time.NewTimer(s.runLimit)
		defer timer.Stop()
		select {
		case rp = <-ch:
		case <-timer.C:
			return nil, pipesim.RunSimulated, &deadlineError{Limit: s.runLimit}
		}
	}
	if rp.err != nil {
		span.SetAttr("error", rp.err.Error())
		return nil, rp.src, rp.err
	}
	span.SetAttr("cycles", strconv.FormatUint(rp.res.Cycles, 10))
	span.SetAttr("source", string(rp.src))
	return rp.res, rp.src, nil
}

// deadlineError reports a /v1/run simulation that exceeded the daemon's
// -run-timeout wall-clock deadline. It is its own taxonomy kind
// ("deadline") so operators can tell serving deadlines from the sweep
// runner's per-experiment timeouts.
type deadlineError struct {
	Limit time.Duration
}

func (e *deadlineError) Error() string {
	return fmt.Sprintf("run exceeded the %s serving deadline (-run-timeout)", e.Limit)
}

// runWithDeadline executes the simulation with an optional wall-clock
// deadline, mirroring the sweep runner's isolation: a run that exceeds it
// is reported as a *deadlineError and its goroutine abandoned (the
// watchdog still bounds truly wedged machines).
func runWithDeadline(sim *pipesim.Simulation, limit time.Duration) (*pipesim.Result, error) {
	if limit <= 0 {
		return sim.Run()
	}
	type reply struct {
		res *pipesim.Result
		err error
	}
	ch := make(chan reply, 1)
	go func() {
		res, err := sim.Run()
		ch <- reply{res, err}
	}()
	timer := time.NewTimer(limit)
	defer timer.Stop()
	select {
	case rp := <-ch:
		return rp.res, rp.err
	case <-timer.C:
		return nil, &deadlineError{Limit: limit}
	}
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterDraining))
		s.fail(w, r, errKindUnavailable, errors.New("draining: not accepting sweeps"))
		return
	}
	q := r.URL.Query()
	exps := sweep.Experiments()
	if raw := q.Get("exp"); raw != "" {
		exps = exps[:0:0]
		for _, id := range strings.Split(raw, ",") {
			e, ok := sweep.Lookup(strings.TrimSpace(id))
			if !ok {
				s.fail(w, r, errKindBadRequest, fmt.Errorf("unknown experiment %q (GET /v1/experiments lists them)", id))
				return
			}
			exps = append(exps, e)
		}
	}
	opt := sweep.Options{Workers: s.workers, Timeout: s.runLimit, Context: r.Context(), Events: s.bus}
	if raw := q.Get("parallel"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			s.fail(w, r, errKindBadRequest, fmt.Errorf("bad parallel %q", raw))
			return
		}
		opt.Workers = n
	}
	if raw := q.Get("timeout"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d < 0 {
			s.fail(w, r, errKindBadRequest, fmt.Errorf("bad timeout %q", raw))
			return
		}
		opt.Timeout = d
	}
	l := reqLog(r)
	l.Info("sweep starting", "experiments", len(exps), "workers", opt.Workers, "timeout", opt.Timeout)
	opt.Progress = func(o sweep.Outcome, done, total int) {
		if o.Err != nil {
			l.Warn("sweep experiment failed", "experiment", o.Experiment.ID,
				"done", done, "total", total, "err", o.Err)
		} else {
			l.Debug("sweep experiment finished", "experiment", o.Experiment.ID,
				"done", done, "total", total, "elapsed", o.Elapsed.Round(time.Millisecond))
		}
	}

	sum := sweep.RunAll(exps, opt)
	reqID := w.Header().Get("X-Request-Id")
	for _, o := range sum.Outcomes {
		if o.Err != nil {
			s.metrics.sweepExperiments.With("fail").Inc()
			kind := errorKind(o.Err)
			s.metrics.errors.With(kind).Inc()
			// A deadlocked or machine-checked experiment carries its
			// flight-recorder tail; the summary JSON only has the error
			// string, so archive the events for /debug/flightrecorder.
			if events := flightEvents(o.Err); len(events) > 0 {
				s.flights.add(reqID+"/"+o.Experiment.ID, kind, o.Err, events)
			}
			continue
		}
		s.metrics.sweepExperiments.With("ok").Inc()
		if t, ok := o.BucketTotals(); ok {
			s.metrics.addSweepAttribution(t)
		}
		if t, ok := o.CacheTotals(); ok {
			s.metrics.addSweepCache(t)
		}
	}

	w.Header().Set("Content-Type", "application/json")
	if sum.Err() != nil {
		// Partial failure: the summary still carries every outcome, and
		// the per-outcome ok/error fields say which failed.
		w.WriteHeader(http.StatusInternalServerError)
	}
	if err := sum.WriteJSON(w); err != nil {
		l.Error("writing sweep summary", "err", err)
	}
}

// handleTrace serves a retained request trace: the native JSON form by
// default, Chrome-trace JSON with ?format=chrome (load in Perfetto or
// chrome://tracing).
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	td, ok := s.tracer.Get(id)
	if !ok {
		s.fail(w, r, errKindNotFound,
			fmt.Errorf("no retained trace for request id %q (the LRU keeps the most recent %d)", id, tracing.DefaultTraceCapacity))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		if err := td.WriteJSON(w); err != nil {
			reqLog(r).Error("writing trace", "err", err)
		}
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		if err := td.WriteChrome(w); err != nil {
			reqLog(r).Error("writing trace", "err", err)
		}
	default:
		s.fail(w, r, errKindBadRequest, fmt.Errorf("bad format %q (want json or chrome)", format))
	}
}

// handleFlightRecorder serves the archived flight-recorder tails of failed
// runs, newest first.
func (s *server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.flights.snapshot())
}

func (s *server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type item struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var out []item
	for _, e := range sweep.Experiments() {
		out = append(out, item{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.syncRunCache()
	s.metrics.syncRunStore(s.store)
	s.metrics.syncEventBus(s.bus)
	if s.jobs != nil {
		s.metrics.jobsQueued.Set(float64(s.jobs.QueueDepth()))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.reg.WritePrometheus(w); err != nil {
		reqLog(r).Error("rendering metrics", "err", err)
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, version.Get())
}
