package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pipesim/internal/jobs"
)

// jobsTestServer starts a daemon with the durable jobs subsystem enabled.
func jobsTestServer(t *testing.T, opts serverOptions) (*server, string) {
	t.Helper()
	if opts.runLimit == 0 {
		opts.runLimit = time.Minute
	}
	if opts.jobsDir == "" {
		opts.jobsDir = t.TempDir()
	}
	s, ts := newTestServerOpts(t, opts)
	return s, ts.URL
}

// smallJobSpec is a 2-point grid: quick enough to run for real in
// handler tests.
const smallJobSpec = `{"grid":{"variants":["conv"],"cache_sizes":[128,256]}}`

func postJSON(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb bytes.Buffer
	sb.ReadFrom(resp.Body)
	return resp, sb.String()
}

func waitJobDone(t *testing.T, base, id string) jobs.View {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := get(t, base+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job: %d %s", resp.StatusCode, body)
		}
		var v jobs.View
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("decoding job view: %v\n%s", err, body)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return jobs.View{}
}

func TestJobsSubmitPollDone(t *testing.T) {
	_, base := jobsTestServer(t, serverOptions{})

	resp, body := postJSON(t, base+"/v1/jobs", smallJobSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v jobs.View
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.TotalPoints != 2 {
		t.Fatalf("accepted view: %+v", v)
	}

	fin := waitJobDone(t, base, v.ID)
	if fin.State != jobs.StateDone || fin.CompletedPoints != 2 || len(fin.Results) != 2 {
		t.Fatalf("final view: %+v", fin)
	}
	for _, r := range fin.Results {
		if r.Key == "" || r.Cycles == 0 || !r.Valid {
			t.Errorf("result incomplete: %+v", r)
		}
	}

	// The job shows up in the listing.
	resp, body = get(t, base+"/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d %s", resp.StatusCode, body)
	}
	var list struct {
		Jobs []jobs.View `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != v.ID {
		t.Fatalf("listing: %+v", list)
	}
}

func TestJobsDisabledWithoutDir(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/jobs", smallJobSpec)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit without -jobs-dir: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "-jobs-dir") {
		t.Errorf("error should tell the operator the fix: %s", body)
	}
}

func TestJobsBadSpecRejected(t *testing.T) {
	_, base := jobsTestServer(t, serverOptions{})
	for _, body := range []string{
		`{`,
		`{}`,
		`{"experiments":["nope"]}`,
		`{"grid":{"variants":["nope"]}}`,
		`{"unknown_field":1}`,
	} {
		resp, out := postJSON(t, base+"/v1/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q: %d %s, want 400", body, resp.StatusCode, out)
		}
	}
}

// TestJobsAdmissionControl fills the admission queue (the executor is
// held inside a point by the fault gate) and asserts overflow gets 429 +
// Retry-After while the admitted jobs still complete.
func TestJobsAdmissionControl(t *testing.T) {
	reached := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	_, base := jobsTestServer(t, serverOptions{
		jobsQueue: 2,
		jobsFault: func(jobID, pointID string, attempt int) error {
			once.Do(func() { close(reached) })
			<-release
			return nil
		},
	})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	var admitted []string
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, base+"/v1/jobs", smallJobSpec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
		var v jobs.View
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatal(err)
		}
		admitted = append(admitted, v.ID)
		if i == 0 {
			<-reached // first job is now held mid-point
		}
	}

	resp, body := postJSON(t, base+"/v1/jobs", smallJobSpec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d %s, want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != fmt.Sprint(retryAfterQueueFull) {
		t.Errorf("Retry-After = %q, want %d", ra, retryAfterQueueFull)
	}
	if !strings.Contains(body, "queue full") {
		t.Errorf("429 body: %s", body)
	}

	// Shed load did not hurt admitted work: release the gate, both finish.
	close(release)
	for _, id := range admitted {
		if fin := waitJobDone(t, base, id); fin.State != jobs.StateDone {
			t.Errorf("admitted job %s finished %s (error %q), want done", id, fin.State, fin.Error)
		}
	}
}

func TestJobsCancelAndErrors(t *testing.T) {
	reached := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	_, base := jobsTestServer(t, serverOptions{
		jobsFault: func(jobID, pointID string, attempt int) error {
			once.Do(func() { close(reached) })
			<-release
			return nil
		},
	})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	resp, body := postJSON(t, base+"/v1/jobs", smallJobSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v jobs.View
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	<-reached

	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+v.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", dresp.StatusCode)
	}
	close(release)
	if fin := waitJobDone(t, base, v.ID); fin.State != jobs.StateCancelled {
		t.Errorf("state after cancel: %s", fin.State)
	}

	// Cancelling again conflicts; unknown IDs are 404 on both verbs.
	req, _ = http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+v.ID, nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusConflict {
		t.Errorf("re-cancel: %d, want 409", dresp.StatusCode)
	}
	if gresp, _ := get(t, base+"/v1/jobs/j-nope-1"); gresp.StatusCode != http.StatusNotFound {
		t.Errorf("get unknown job: %d, want 404", gresp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, base+"/v1/jobs/j-nope-1", nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown job: %d, want 404", dresp.StatusCode)
	}
}

// TestDrainShedsWork is the shutdown-path test: once drain() runs (the
// SIGTERM path), new sweeps and job submissions are refused with 503 +
// Retry-After instead of being accepted and then killed by the drain
// deadline — while read-only endpoints keep serving.
func TestDrainShedsWork(t *testing.T) {
	s, base := jobsTestServer(t, serverOptions{})

	// Before drain both endpoints accept work.
	resp, body := postJSON(t, base+"/v1/jobs", smallJobSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pre-drain submit: %d %s", resp.StatusCode, body)
	}
	var v jobs.View
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, base, v.ID)

	s.drain()

	resp, body = postJSON(t, base+"/v1/jobs", smallJobSpec)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %d %s, want 503", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != fmt.Sprint(retryAfterDraining) {
		t.Errorf("submit Retry-After = %q, want %d", ra, retryAfterDraining)
	}

	resp, body = get(t, base+"/v1/sweep?exp=fig5a")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining sweep: %d %s, want 503", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != fmt.Sprint(retryAfterDraining) {
		t.Errorf("sweep Retry-After = %q, want %d", ra, retryAfterDraining)
	}

	// Draining sheds new work but keeps serving status: the finished job
	// is still queryable for clients collecting their results.
	if gresp, _ := get(t, base+"/v1/jobs/"+v.ID); gresp.StatusCode != http.StatusOK {
		t.Errorf("job status during drain: %d, want 200", gresp.StatusCode)
	}
	if gresp, _ := get(t, base+"/readyz"); gresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: %d, want 503", gresp.StatusCode)
	}
}

// TestJobsMetricsExported asserts the job metric families reach /metrics
// with the expected names and labels.
func TestJobsMetricsExported(t *testing.T) {
	_, base := jobsTestServer(t, serverOptions{})
	resp, body := postJSON(t, base+"/v1/jobs", smallJobSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v jobs.View
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, base, v.ID)

	_, metrics := get(t, base+"/metrics")
	for _, want := range []string{
		`pipesimd_jobs_submitted_total{outcome="accepted"} 1`,
		`pipesimd_jobs_finished_total{state="done"} 1`,
		`pipesimd_job_points_total{outcome="ok"} 2`,
		`pipesimd_jobs_queue_depth 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestJobTraceRetained asserts a finished job left a retrievable trace
// under its job-scoped request ID.
func TestJobTraceRetained(t *testing.T) {
	_, base := jobsTestServer(t, serverOptions{})
	resp, body := postJSON(t, base+"/v1/jobs", smallJobSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v jobs.View
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, base, v.ID)

	tresp, tbody := get(t, base+"/v1/trace/job-"+v.ID)
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("job trace: %d %s", tresp.StatusCode, tbody)
	}
	if !strings.Contains(tbody, "job:"+v.ID) {
		t.Errorf("trace body lacks the job root span: %s", tbody)
	}
}
